package perfpred

// One testing.B benchmark per table and figure in the paper's
// evaluation, plus the ablation benches DESIGN.md calls out. Each
// bench regenerates its experiment end to end through the harness
// (calibration is memoised inside the shared suite, so the first bench
// to need an artifact pays for it and the cost shows up where it
// belongs conceptually: the §8.5 delay discussion).
//
// Run with:
//
//	go test -bench=. -benchmem
//
// and read the regenerated rows with:
//
//	go run ./cmd/experiments

import (
	"io"
	"testing"
)

// benchSuite is shared across benchmarks; the seed matches
// cmd/experiments' default so printed tables and benched tables agree.
var benchSuite = NewSuite(17)

func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := benchSuite.Run(name)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", name)
		}
	}
}

// BenchmarkTable1HistoricalParameters regenerates Table 1: the
// historical method's relationship-1 parameters for all three servers.
func BenchmarkTable1HistoricalParameters(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2LQNCalibration regenerates Table 2: the layered
// queuing processing-time parameters calibrated on AppServF.
func BenchmarkTable2LQNCalibration(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkThroughputGradient regenerates the §4.1 gradient
// experiment (m ≈ 0.14 across servers).
func BenchmarkThroughputGradient(b *testing.B) { runExperiment(b, "gradient") }

// BenchmarkFigure2MeanResponseTime regenerates figure 2: mean RT
// predictions for all methods on all servers versus measurements.
func BenchmarkFigure2MeanResponseTime(b *testing.B) { runExperiment(b, "figure2") }

// BenchmarkFigure3DataPointSpacing regenerates figure 3: accuracy as
// the client spacing between historical data points grows.
func BenchmarkFigure3DataPointSpacing(b *testing.B) { runExperiment(b, "figure3") }

// BenchmarkFigure4HeterogeneousWorkload regenerates figure 4:
// buy-mix response-time predictions for the new server.
func BenchmarkFigure4HeterogeneousWorkload(b *testing.B) { runExperiment(b, "figure4") }

// BenchmarkPercentilePredictions regenerates the §7.1 90th-percentile
// experiment.
func BenchmarkPercentilePredictions(b *testing.B) { runExperiment(b, "percentiles") }

// BenchmarkCacheModelling regenerates the §7.2 session-cache study.
func BenchmarkCacheModelling(b *testing.B) { runExperiment(b, "cache") }

// BenchmarkMaxClientsSearch regenerates the §8.2 capacity-query cost
// comparison (layered search vs historical inversion).
func BenchmarkMaxClientsSearch(b *testing.B) { runExperiment(b, "search") }

// BenchmarkFigure5SLAFailures and BenchmarkFigure6ServerUsage share
// one experiment: the figure-5/6 load sweeps at three slack levels.
func BenchmarkFigure5SLAFailures(b *testing.B) { runExperiment(b, "figure5-6") }

// BenchmarkFigure6ServerUsage regenerates the same sweep; the usage
// columns are figure 6.
func BenchmarkFigure6ServerUsage(b *testing.B) { runExperiment(b, "figure5-6") }

// BenchmarkFigure7SlackSweep regenerates figure 7: averaged cost
// metrics as slack goes 1.1 → 0.
func BenchmarkFigure7SlackSweep(b *testing.B) { runExperiment(b, "figure7") }

// BenchmarkFigure8TradeOff regenerates figure 8: the fine
// failure/saving trade-off for slack 1.1 → 0.9.
func BenchmarkFigure8TradeOff(b *testing.B) { runExperiment(b, "figure8") }

// BenchmarkUniformInaccuracy regenerates the §9.1 uniform-error
// compensation experiment (slack = y ⇒ 0% failures).
func BenchmarkUniformInaccuracy(b *testing.B) { runExperiment(b, "uniform") }

// BenchmarkPredictionDelay regenerates the §8.5 per-method
// prediction-delay comparison.
func BenchmarkPredictionDelay(b *testing.B) { runExperiment(b, "delay") }

// BenchmarkDataQuantity regenerates the §4.2 data-quantity study
// (accuracy vs nldp/nudp and ns).
func BenchmarkDataQuantity(b *testing.B) { runExperiment(b, "data-quantity") }

// BenchmarkPercentileDirect regenerates the §8.2 direct-vs-extrapolated
// percentile comparison.
func BenchmarkPercentileDirect(b *testing.B) { runExperiment(b, "percentile-direct") }

// BenchmarkStabilisation regenerates the §8.2 cold-start settling
// study.
func BenchmarkStabilisation(b *testing.B) { runExperiment(b, "stabilisation") }

// BenchmarkClusterRouting regenerates the §2 application-tier routing
// study.
func BenchmarkClusterRouting(b *testing.B) { runExperiment(b, "cluster") }

// BenchmarkOpenWorkload regenerates the §8.1 constant-rate workload
// validation.
func BenchmarkOpenWorkload(b *testing.B) { runExperiment(b, "open") }

// BenchmarkBottleneck regenerates the §8.1 implicit critical-section
// queue study (historical absorbs it; LQN needs it profiled).
func BenchmarkBottleneck(b *testing.B) { runExperiment(b, "bottleneck") }

// BenchmarkEvaluationMatrix regenerates the §8 capability matrix.
func BenchmarkEvaluationMatrix(b *testing.B) { runExperiment(b, "matrix") }

// BenchmarkProvider regenerates the §2 multi-application
// server-transfer study.
func BenchmarkProvider(b *testing.B) { runExperiment(b, "provider") }

// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationTransition: transition phase-in vs hard switch.
func BenchmarkAblationTransition(b *testing.B) { runExperiment(b, "ablation-transition") }

// BenchmarkAblationMVA: Schweitzer AMVA vs exact MVA.
func BenchmarkAblationMVA(b *testing.B) { runExperiment(b, "ablation-mva") }

// BenchmarkAblationConvergence: 20ms vs 1e-6s convergence criteria.
func BenchmarkAblationConvergence(b *testing.B) { runExperiment(b, "ablation-convergence") }

// BenchmarkAblationLastServer: Algorithm 1's last-server exception.
func BenchmarkAblationLastServer(b *testing.B) { runExperiment(b, "ablation-lastserver") }

// BenchmarkAblationTaskLayering: flattened vs task-layered solving on
// a thread-pool-bound scenario.
func BenchmarkAblationTaskLayering(b *testing.B) { runExperiment(b, "ablation-layers") }

// Micro-benchmarks for the §8.5 claims in isolation: the historical
// prediction is nanoseconds-scale, a layered solve is orders of
// magnitude slower, and a full simulated measurement dwarfs both —
// which is exactly why prediction methods exist.

func BenchmarkHistoricalPredictionMicro(b *testing.B) {
	m, err := benchSuite.HistModel(AppServF())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(float64(100 + i%2000))
	}
}

func BenchmarkLQNSolveMicro(b *testing.B) {
	demands, err := benchSuite.LQNDemands()
	if err != nil {
		b.Fatal(err)
	}
	model, err := NewTradeModel(AppServF(), CaseStudyDB(), demands, TypicalWorkload(1200))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveLQN(model, LQNOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatedMeasurementMicro(b *testing.B) {
	opt := MeasureOptions{Seed: 2, WarmUp: 10, Duration: 30}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Measure(AppServF(), TypicalWorkload(400), opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllExperiments regenerates the entire evaluation in one
// go — the "reproduce the paper" button.
func BenchmarkRunAllExperiments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := RunAllExperiments(benchSuite, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
