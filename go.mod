module perfpred

go 1.22
