# Verification tiers for the perfpred reproduction.
#
#   make test   — tier 1: build everything and run the full test suite.
#   make race   — race tier: the concurrent Suite, worker pool,
#                 event-core and multi-shard fleet paths under the race
#                 detector (short).
#   make bench  — the performance evidence: event-core micro-benchmarks
#                 (flat allocation counts per event), the LQN solver
#                 fast-path benchmarks, the figure-scale sweep, the
#                 zero-alloc request-loop benchmarks, and the
#                 BENCH_lqn.json / BENCH_trade.json snapshots (commit
#                 them to extend the perf trajectory).
#   make bench-sim — the sharded-engine evidence: calendar-queue vs
#                 heap scheduler microbenchmarks, the shard-count
#                 scaling sweep with its built-in determinism check,
#                 and the 1M-client headline, snapshotted to
#                 BENCH_sim.json (commit it).
#   make bench-fleet — the in-loop resource-manager evidence: per-scorer
#                 routing cost (allocation-free or the run aborts), the
#                 Algorithm-1-vs-plan-oblivious A/B table, warm-started
#                 replan latencies and the routed 1M-client headline,
#                 snapshotted to BENCH_fleet.json (commit it).
#   make metrics-smoke — observability tier: run two quick experiments
#                 with -report and assert the snapshot parses and the
#                 solver, simulator and cache counters actually moved.
#   make bench-serve — the serving evidence: run the predload self
#                 load-test against an in-process service (cold vs warm,
#                 coalesced burst, sustained closed-loop, overload
#                 shedding), snapshotted to BENCH_serve.json (commit it).
#   make serve-smoke — end-to-end serving smoke: build predserve, spawn
#                 it on an ephemeral port, verify a cold build, cache-hit
#                 counter movement over /metrics, and a clean SIGTERM
#                 drain.
#   make bench-scenario — the declarative-scenario evidence: the
#                 flash-sale transient-error study (per-window HYDRA /
#                 LQN / hybrid error vs simulated truth), the
#                 steady-window consistency and legacy bit-equality
#                 check, the 1/2/4-shard determinism fingerprint and
#                 the generated-traffic burstiness self-check,
#                 snapshotted to BENCH_scenario.json (commit it).
#   make bench-regress — the four-family evidence: HYDRA / LQN /
#                 hybrid / regression accuracy-vs-startup-cost table
#                 against one simulated-truth oracle, the training-set
#                 -size accuracy curve, the worker-count fit
#                 determinism fingerprint and the regression-planned
#                 cost-performance frontier, snapshotted to
#                 BENCH_regress.json (commit it).

GO ?= go

.PHONY: test race bench bench-sim bench-fleet bench-serve bench-scenario bench-regress serve-smoke metrics-smoke

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./internal/parallel
	$(GO) test -race -run 'TestSuiteConcurrent|TestSuiteParallelHybrid|TestFigure2ShapeHolds' ./internal/bench
	$(GO) test -race -run 'TestEngine|TestStation|TestMeasureCurve' ./internal/sim ./internal/trade
	$(GO) test -race -run 'TestCoordinator|TestSharded' ./internal/sim ./internal/trade
	$(GO) test -race -run 'TestFleet' ./internal/fleet
	$(GO) test -race -run 'TestConcurrentServing|TestColdStampedeBuildsOnce|TestOverloadShedsNotCollapses|TestGracefulShutdownDrains' ./internal/serve
	$(GO) test -race ./internal/scenario
	$(GO) test -race -run 'TestScenario|TestFleetScenario' ./internal/trade ./internal/fleet
	$(GO) test -race -run 'TestTrainDeterministicAcrossWorkers' ./internal/regress

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSchedule|BenchmarkRunDrain|BenchmarkStationSubmit' -benchmem ./internal/sim
	$(GO) test -run '^$$' -bench BenchmarkMeasureCurve -benchtime 2x ./internal/trade
	$(GO) test -run '^$$' -bench 'BenchmarkRequestLoop|BenchmarkCollect|BenchmarkTransientCurve' -benchmem ./internal/trade
	$(GO) test -run '^$$' -bench 'BenchmarkSolve' -benchmem ./internal/lqn
	$(GO) test -run '^$$' -bench 'BenchmarkHybridBuild|BenchmarkBuildRelationship3' -benchmem ./internal/hybrid
	$(GO) run ./cmd/lqnbench -out BENCH_lqn.json
	$(GO) run ./cmd/tradebench -bench -out BENCH_trade.json

bench-sim:
	$(GO) test -run '^$$' -bench 'BenchmarkCalendar|BenchmarkShard' -benchmem ./internal/sim
	$(GO) run ./cmd/simbench -out BENCH_sim.json

bench-fleet:
	$(GO) run ./cmd/fleetbench -out BENCH_fleet.json

bench-serve:
	$(GO) run ./cmd/predload -out BENCH_serve.json

bench-scenario:
	$(GO) run ./cmd/scenariobench -out BENCH_scenario.json

bench-regress:
	$(GO) run ./cmd/regressbench -out BENCH_regress.json

serve-smoke:
	$(GO) build -o /tmp/perfpred-predserve ./cmd/predserve
	$(GO) run ./cmd/predload -smoke -serve-bin /tmp/perfpred-predserve

metrics-smoke:
	$(GO) run ./cmd/experiments -report /tmp/perfpred-metrics.json gradient cache > /dev/null
	$(GO) run ./cmd/obscheck -in /tmp/perfpred-metrics.json \
		lqn_solver_solves lqn_solver_mva_iterations \
		sim_events_fired trade_requests_completed \
		sessioncache_solves trade_cache_hits
