// Cache study: the paper's §7.2 extension — application-server main
// memory as an LRU cache over per-client session data. The example
// measures the real (simulated) LRU across cache sizes, fits the
// historical method's cache-size relationship, and contrasts it with
// the layered fixed-point attempt that needs a distributional
// assumption the solver cannot supply.
package main

import (
	"fmt"
	"log"

	"perfpred"
)

func main() {
	const clients = 400
	const sessionBytes = 4096.0
	workingSet := clients * sessionBytes

	measure := func(capacity float64) *perfpred.SimResult {
		cfg := perfpred.SimConfig{
			Server:   perfpred.AppServF(),
			DB:       perfpred.CaseStudyDB(),
			Demands:  perfpred.CaseStudyDemands(),
			Load:     perfpred.TypicalWorkload(clients),
			Seed:     3,
			WarmUp:   30,
			Duration: 120,
			Cache: &perfpred.SimCacheConfig{
				SizeBytes:        int64(capacity),
				SessionBytesMean: sessionBytes,
				MissExtraDBCalls: 1,
			},
		}
		res, err := perfpred.RunSim(cfg)
		check(err)
		return res
	}

	// Historical method: two observations calibrate the cache-size
	// variable; the model then predicts unseen sizes.
	fmt.Println("calibrating the historical cache-size relationship...")
	calFracs := []float64{0.2, 0.85}
	var points []perfpred.CachePoint
	for _, f := range calFracs {
		res := measure(f * workingSet)
		points = append(points, perfpred.CachePoint{
			CapacityBytes: f * workingSet,
			MissRate:      res.CacheMissRate,
		})
		fmt.Printf("  cache=%3.0f%% of working set: measured miss rate %.3f\n", f*100, res.CacheMissRate)
	}
	missModel, err := perfpred.FitMissRateModel(points)
	check(err)

	fmt.Println("\ncache-size sweep (miss rates):")
	fmt.Println("cache%  measured  historical  equal-access  lqn-fixed-point")
	for _, f := range []float64{0.1, 0.35, 0.6, 0.95} {
		capacity := f * workingSet
		meas := measure(capacity)
		histMiss := missModel.Predict(capacity)
		naive := perfpred.EqualAccessMissRate(clients, sessionBytes, capacity)
		fp, err := perfpred.SolveLQNWithCache(perfpred.AppServF(), perfpred.CaseStudyDB(),
			perfpred.CaseStudyDemands(), perfpred.TypicalWorkload(clients),
			capacity, sessionBytes, 1, 0, perfpred.LQNOptions{})
		check(err)
		fmt.Printf("%5.0f%%  %8.3f  %10.3f  %12.3f  %15.3f\n",
			f*100, meas.CacheMissRate, histMiss, naive, fp.MissRate)
	}

	// The point of §7.2: what the layered attempt had to assume.
	fp, err := perfpred.SolveLQNWithCache(perfpred.AppServF(), perfpred.CaseStudyDB(),
		perfpred.CaseStudyDemands(), perfpred.TypicalWorkload(clients),
		0.3*workingSet, sessionBytes, 1, 0, perfpred.LQNOptions{})
	check(err)
	fmt.Printf("\nlayered fixed point converged=%v in %d iterations\n", fp.Converged, fp.Iterations)
	fmt.Printf("assumption it needed: %s\n", fp.AssumptionNote)

	// Performance impact: fold the predicted miss rate into effective
	// demands and re-solve — the modelling route all three methods can
	// share once a miss rate is known.
	eff, err := perfpred.EffectiveDemand(perfpred.CaseStudyDemands()[perfpred.Browse],
		missModel.Predict(0.3*workingSet), 1, 0)
	check(err)
	fmt.Printf("\neffective browse demand at 30%% cache: %.2f db calls/request (vs 1.14 uncached)\n",
		eff.DBCallsPerRequest)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
