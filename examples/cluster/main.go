// Cluster: the paper's §2 system model end to end — a heterogeneous
// tier of application servers sharing one database server (one FIFO
// queue per app server at the database), driven through three
// workload-manager routing policies, plus an open constant-rate
// stream mixed into the closed client load (§8.1).
package main

import (
	"fmt"
	"log"

	"perfpred"
)

func main() {
	tier := []perfpred.ServerArch{
		perfpred.AppServS(),
		perfpred.AppServF(),
		perfpred.AppServVF(),
	}
	fmt.Println("application tier: AppServS + AppServF + AppServVF (shared DB)")
	fmt.Println("capacity if perfectly divided: 86+186+320 = 592 req/s")

	// Part 1 — routing policy shoot-out near tier saturation.
	fmt.Println("\nrouting policies at 3600 clients (typical workload):")
	fmt.Println("policy      meanRT      tierX    U(S)  U(F)  U(VF)")
	for _, routing := range []perfpred.RoutingPolicy{
		perfpred.RouteSticky, perfpred.RouteRoundRobin, perfpred.RouteLeastBusy,
	} {
		cfg := perfpred.SimConfig{
			Servers:  tier,
			Routing:  routing,
			DB:       perfpred.CaseStudyDB(),
			Demands:  perfpred.CaseStudyDemands(),
			Load:     perfpred.TypicalWorkload(3600),
			Seed:     7,
			WarmUp:   30,
			Duration: 120,
		}
		res, err := perfpred.RunSim(cfg)
		check(err)
		fmt.Printf("%-10s  %7.1fms  %6.1f/s  %5.2f %5.2f %5.2f\n",
			routing, res.MeanRT*1000, res.Throughput,
			res.PerServer[0].Utilization, res.PerServer[1].Utilization, res.PerServer[2].Utilization)
	}

	// Part 2 — mixed open + closed workload on the tier: a constant
	// 150 req/s stream (think: an API integration) alongside 2000
	// interactive clients.
	stream := perfpred.ServiceClass{
		Name: "api-stream",
		Mix:  perfpred.Mix{perfpred.Browse: 1},
	}
	cfg := perfpred.SimConfig{
		Servers: tier,
		Routing: perfpred.RouteLeastBusy,
		DB:      perfpred.CaseStudyDB(),
		Demands: perfpred.CaseStudyDemands(),
		Load: perfpred.Workload{
			{Class: perfpred.BrowseClass(0), Clients: 2000},
			{Class: stream, ArrivalRate: 150},
		},
		Seed:     7,
		WarmUp:   30,
		Duration: 120,
	}
	res, err := perfpred.RunSim(cfg)
	check(err)
	fmt.Println("\nmixed workload (2000 closed clients + 150 req/s open stream, least-busy):")
	for name, c := range res.PerClass {
		fmt.Printf("  %-10s  RT %7.1fms  X %6.1f/s  (n=%d)\n", name, c.MeanRT*1000, c.Throughput, c.Completed)
	}
	fmt.Printf("  db utilisation %.2f\n", res.DBUtilization)

	// Part 3 — the layered model predicts the single-server mixed case
	// analytically; compare on AppServF alone.
	single := perfpred.Workload{
		{Class: perfpred.BrowseClass(0), Clients: 700},
		{Class: stream, ArrivalRate: 60},
	}
	meas, err := perfpred.RunSim(perfpred.SimConfig{
		Server: perfpred.AppServF(), DB: perfpred.CaseStudyDB(),
		Demands: perfpred.CaseStudyDemands(), Load: single,
		Seed: 7, WarmUp: 30, Duration: 120,
	})
	check(err)
	pred, err := perfpred.PredictTrade(perfpred.AppServF(), perfpred.CaseStudyDemands(), single, perfpred.LQNOptions{})
	check(err)
	fmt.Println("\nmixed open+closed on AppServF: measured vs layered prediction")
	fmt.Printf("  closed browse: %7.1fms measured, %7.1fms predicted\n",
		meas.PerClass["browse"].MeanRT*1000, pred.Classes["browse"].ResponseTime*1000)
	fmt.Printf("  open stream:   %7.1fms measured, %7.1fms predicted\n",
		meas.PerClass["api-stream"].MeanRT*1000, pred.Classes["api-stream"].ResponseTime*1000)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
