// Capacity planning: the paper's §2 motivation — decide whether a
// proposed server upgrade meets SLA goals *before* buying hardware.
// The new architecture exists only as a max-throughput benchmark; the
// example sizes a browse/buy workload across candidate fleets and
// compares upgrade options, exercising relationship 2 and 3 and the
// max-clients inversion.
package main

import (
	"fmt"
	"log"

	"perfpred"
)

func main() {
	opt := perfpred.MeasureOptions{Seed: 9, WarmUp: 30, Duration: 120}

	// Calibrate established servers (as a production system would have
	// already done from its monitoring history).
	fmt.Println("calibrating established servers from history...")
	models := map[string]*perfpred.HistoricalModel{}
	var est []*perfpred.HistoricalModel
	var gradient float64
	for _, arch := range []perfpred.ServerArch{perfpred.AppServF(), perfpred.AppServVF()} {
		xMax, err := perfpred.MeasureMaxThroughput(arch, 0, opt)
		check(err)
		nStar := xMax / 0.14
		counts := []int{int(0.3 * nStar), int(0.55 * nStar), int(1.2 * nStar), int(1.5 * nStar)}
		curve, err := perfpred.MeasureCurve(arch, counts, 0, opt)
		check(err)
		var dps []perfpred.DataPoint
		var tps []perfpred.ThroughputPoint
		for _, p := range curve {
			dps = append(dps, perfpred.DataPoint{Clients: float64(p.Clients), MeanRT: p.Res.MeanRT})
			if float64(p.Clients) < 0.66*nStar {
				tps = append(tps, perfpred.ThroughputPoint{Clients: float64(p.Clients), Throughput: p.Res.Throughput})
			}
		}
		if gradient == 0 {
			gradient, err = perfpred.CalibrateGradient(tps)
			check(err)
		}
		m, err := perfpred.CalibrateHistorical(arch, xMax, gradient, dps)
		check(err)
		models[arch.Name] = m
		est = append(est, m)
	}
	rel2, err := perfpred.FitRelationship2(est)
	check(err)

	// The upgrade candidate arrives as a one-number benchmark.
	xS, err := perfpred.MeasureMaxThroughput(perfpred.AppServS(), 0, opt)
	check(err)
	sModel, err := rel2.NewServerModel(perfpred.AppServS(), xS)
	check(err)
	models["AppServS"] = sModel
	fmt.Printf("candidate AppServS benchmarked at %.0f req/s\n\n", xS)

	// Heterogeneous workload: relationship 3 re-anchors max throughput
	// for a 10% buy mix (generated with the layered model, as in §4.3).
	rel3, _, err := perfpred.BuildRelationship3FromLQN(perfpred.HybridConfig{
		DB:      perfpred.CaseStudyDB(),
		Demands: perfpred.CaseStudyDemands(),
	}, perfpred.AppServF(), []float64{0, 25})
	check(err)

	const buyPct = 10.0
	fmt.Printf("SLA capacity per server at a %.0f%% buy mix:\n", buyPct)
	fmt.Println("server     goal(ms)  capacity(clients)")
	for _, name := range []string{"AppServS", "AppServF", "AppServVF"} {
		base := models[name]
		mixed, err := rel3.ModelAtBuyPct(rel2, base, buyPct)
		check(err)
		for _, goal := range []float64{0.150, 0.300, 0.600} {
			n, err := mixed.MaxClients(goal)
			check(err)
			fmt.Printf("%-9s  %7.0f  %17.0f\n", name, goal*1000, n)
		}
	}

	// Fleet sizing: how many AppServS boxes replace one AppServVF for
	// a 10,000-client browse workload under a 300 ms goal?
	fmt.Println("\nfleet options for 10,000 clients under 300ms:")
	for _, name := range []string{"AppServS", "AppServF", "AppServVF"} {
		capacity, err := models[name].MaxClients(0.300)
		check(err)
		nServers := int(10000/capacity) + 1
		fmt.Printf("  %-9s: %3d servers (%.0f clients each)\n", name, nServers, capacity)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
