// SLA tuning: the paper's §9 study as a walkthrough — run the
// prediction-enhanced resource manager over the 16-server pool, sweep
// the slack parameter, and pick the slack that balances SLA-failure
// cost against server-usage cost with an explicit cost model (the
// cost-function extension the paper's §9.1 closes with).
package main

import (
	"fmt"
	"log"

	"perfpred"
)

func main() {
	// The bench suite performs the full §9.1 calibration: historical
	// models (the "real system") and the hybrid model (the planner).
	suite := perfpred.NewSuite(5)
	pred, truth, servers, err := suite.RMSetup()
	check(err)

	shares := perfpred.RMCaseStudyShares()
	loads := []int{2000, 4000, 6000, 8000, 10000, 12000}

	// Figures 5-6 in miniature: one load sweep at slack 1.1.
	fmt.Println("load sweep at slack 1.1 (plan with hybrid, reality via historical):")
	fmt.Println("clients  fail%  usage%")
	points, err := perfpred.SweepLoad(shares, servers, pred, truth, 1.1, loads,
		perfpred.RMOptions{}, perfpred.RMEvalOptions{})
	check(err)
	for _, p := range points {
		fmt.Printf("%7d  %5.1f  %6.1f\n", p.TotalClients, p.SLAFailurePct, p.ServerUsagePct)
	}

	// Figure 7 in miniature: slack sweep with averaged cost metrics.
	var slacks []float64
	for v := 1.1; v >= 0.59; v -= 0.1 {
		slacks = append(slacks, v)
	}
	slackPoints, err := perfpred.SweepSlack(shares, servers, pred, truth, slacks, loads,
		perfpred.RMOptions{}, perfpred.RMEvalOptions{})
	check(err)
	fmt.Println("\nslack sweep:")
	fmt.Println("slack  avg-fail%  avg-saving%")
	for _, p := range slackPoints {
		fmt.Printf("%5.2f  %8.2f  %10.2f\n", p.Slack, p.AvgFailPct, p.AvgUsageSavingPct)
	}

	// Cost-model extension: map both metrics to money and choose the
	// cheapest slack. An SLA point costs 8× a usage point here — tune
	// to your contracts.
	cost := perfpred.SLACostModel{FailureCostPerPct: 8, UsageCostPerPct: 1}
	best, bestCost, err := perfpred.CheapestSlack(slackPoints, cost)
	check(err)
	fmt.Printf("\ncheapest slack under cost(fail)=8×cost(usage): %.2f (cost %.1f, fail %.2f%%, saving %.2f%%)\n",
		best.Slack, bestCost, best.AvgFailPct, best.AvgUsageSavingPct)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
