// Quickstart: predict a new server architecture's response times three
// ways — historical, layered queuing and hybrid — and compare them
// against the simulated testbed, reproducing the core of the paper's
// figure 2 in under a minute.
package main

import (
	"fmt"
	"log"

	"perfpred"
)

func main() {
	opt := perfpred.MeasureOptions{Seed: 1, WarmUp: 30, Duration: 120}

	// Step 1 — benchmark the servers' request processing speeds (the
	// §2 supporting service). AppServS is the *new* architecture: the
	// methods may use only this one number for it.
	fmt.Println("benchmarking max throughputs...")
	xF, err := perfpred.MeasureMaxThroughput(perfpred.AppServF(), 0, opt)
	check(err)
	xVF, err := perfpred.MeasureMaxThroughput(perfpred.AppServVF(), 0, opt)
	check(err)
	xS, err := perfpred.MeasureMaxThroughput(perfpred.AppServS(), 0, opt)
	check(err)
	fmt.Printf("  AppServF=%.0f  AppServVF=%.0f  AppServS(new)=%.0f req/s\n", xF, xVF, xS)

	// Step 2 — historical method: calibrate the established servers
	// from four measured data points each, fit relationship 2, and
	// extrapolate the new server.
	calibrate := func(arch perfpred.ServerArch, xMax float64) *perfpred.HistoricalModel {
		nStar := xMax / 0.14
		counts := []int{int(0.25 * nStar), int(0.55 * nStar), int(1.2 * nStar), int(1.6 * nStar)}
		curve, err := perfpred.MeasureCurve(arch, counts, 0, opt)
		check(err)
		var dps []perfpred.DataPoint
		var tps []perfpred.ThroughputPoint
		for _, p := range curve {
			dps = append(dps, perfpred.DataPoint{Clients: float64(p.Clients), MeanRT: p.Res.MeanRT})
			if float64(p.Clients) < 0.66*nStar {
				tps = append(tps, perfpred.ThroughputPoint{Clients: float64(p.Clients), Throughput: p.Res.Throughput})
			}
		}
		m, err := perfpred.CalibrateGradient(tps)
		check(err)
		model, err := perfpred.CalibrateHistorical(arch, xMax, m, dps)
		check(err)
		return model
	}
	histF := calibrate(perfpred.AppServF(), xF)
	histVF := calibrate(perfpred.AppServVF(), xVF)
	rel2, err := perfpred.FitRelationship2([]*perfpred.HistoricalModel{histF, histVF})
	check(err)
	histS, err := rel2.NewServerModel(perfpred.AppServS(), xS)
	check(err)

	// Step 3 — hybrid method: one build call generates the layered
	// pseudo data and calibrates everything.
	hyb, err := perfpred.BuildHybrid(perfpred.HybridConfig{
		DB:      perfpred.CaseStudyDB(),
		Demands: perfpred.CaseStudyDemands(),
	}, perfpred.CaseStudyServers())
	check(err)
	fmt.Printf("hybrid start-up delay: %s (%d layered solves)\n", hyb.StartupDelay, hyb.Evaluations)

	// Step 4 — compare all three methods against fresh measurements on
	// the new server.
	fmt.Println("\nAppServS (new server), typical workload:")
	fmt.Println("clients  measured   historical  lqn        hybrid")
	nStar := histS.SaturationClients()
	for _, frac := range []float64{0.3, 0.6, 1.2, 1.6} {
		n := int(frac * nStar)
		meas, err := perfpred.Measure(perfpred.AppServS(), perfpred.TypicalWorkload(n), opt)
		check(err)
		lq, err := perfpred.PredictTrade(perfpred.AppServS(), perfpred.CaseStudyDemands(),
			perfpred.TypicalWorkload(n), perfpred.LQNOptions{})
		check(err)
		hy, err := hyb.Predict("AppServS", float64(n))
		check(err)
		fmt.Printf("%7d  %7.1fms  %9.1fms  %7.1fms  %7.1fms\n",
			n, meas.MeanRT*1000, histS.Predict(float64(n))*1000,
			lq.MeanResponseTime()*1000, hy*1000)
	}

	// Step 5 — the operational question a resource manager asks: how
	// many clients fit under a 300 ms SLA goal? The historical and
	// hybrid methods answer in closed form; the layered method must
	// search (§8.2).
	capacity, err := histS.MaxClients(0.300)
	check(err)
	fmt.Printf("\nAppServS capacity under a 300ms goal (historical, closed form): %.0f clients\n", capacity)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
