package perfpred

import (
	"io"

	"perfpred/internal/bench"
	"perfpred/internal/hist"
	"perfpred/internal/hybrid"
	"perfpred/internal/lqn"
	"perfpred/internal/rm"
	"perfpred/internal/rtdist"
	"perfpred/internal/sessioncache"
	"perfpred/internal/sla"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// Workload and platform model (§2-3).
type (
	// RequestType identifies a class of requests with similar
	// performance characteristics (browse, buy).
	RequestType = workload.RequestType
	// Demand is a request type's mean resource consumption on the
	// reference architecture.
	Demand = workload.Demand
	// Mix is a service class's request-type composition.
	Mix = workload.Mix
	// ServiceClass groups clients sharing a mix, think time and SLA
	// goal.
	ServiceClass = workload.ServiceClass
	// Workload is a set of client populations across service classes.
	Workload = workload.Workload
	// Population is one service class's client count.
	Population = workload.Population
	// ServerArch describes an application-server architecture.
	ServerArch = workload.ServerArch
	// DBServer describes the shared database server.
	DBServer = workload.DBServer
)

// Request types of the Trade case study.
const (
	Browse = workload.Browse
	Buy    = workload.Buy
)

// Case-study constructors (§3).
var (
	// AppServS is the new 'slow' architecture (86 req/s benchmark).
	AppServS = workload.AppServS
	// AppServF is the established reference architecture (186 req/s).
	AppServF = workload.AppServF
	// AppServVF is the established 'very fast' architecture (320 req/s).
	AppServVF = workload.AppServVF
	// CaseStudyServers returns all three §3.2 architectures.
	CaseStudyServers = workload.CaseStudyServers
	// CaseStudyDB returns the shared database server.
	CaseStudyDB = workload.CaseStudyDB
	// CaseStudyDemands returns the ground-truth per-type demands.
	CaseStudyDemands = workload.CaseStudyDemands
	// TypicalWorkload is the all-browse workload of §3.1.
	TypicalWorkload = workload.TypicalWorkload
	// MixedWorkload splits clients between buy and browse classes.
	MixedWorkload = workload.MixedWorkload
	// BrowseClass and BuyClass build the case-study service classes.
	BrowseClass = workload.BrowseClass
	BuyClass    = workload.BuyClass
)

// Historical method (§4).
type (
	// HistoricalModel is a calibrated relationship-1 model for one
	// server architecture.
	HistoricalModel = hist.ServerModel
	// DataPoint is one historical (clients, mean RT) measurement.
	DataPoint = hist.DataPoint
	// ThroughputPoint is one (clients, throughput) observation.
	ThroughputPoint = hist.ThroughputPoint
	// Relationship2 predicts new architectures from max-throughput
	// benchmarks (§4.2).
	Relationship2 = hist.Relationship2
	// Relationship3 extrapolates max throughput across workload mixes
	// (§4.3).
	Relationship3 = hist.Relationship3
	// BuyPoint is one (buy %, max throughput) observation.
	BuyPoint = hist.BuyPoint
	// PercentileModel predicts percentile response times directly from
	// percentile measurements (§8.2).
	PercentileModel = hist.PercentileModel
	// StabilisationModel captures cold-start settling toward steady
	// state (§8.2).
	StabilisationModel = hist.StabilisationModel
	// StabilisationPoint is one bucket of a cold-start trajectory.
	StabilisationPoint = hist.StabilisationPoint
	// HistoryStore is HYDRA's persistent historical-data store.
	HistoryStore = hist.Store
)

// NewHistoryStore returns an empty HYDRA data store.
var NewHistoryStore = hist.NewStore

// TypicalWorkloadKey is the store signature for the typical workload.
const TypicalWorkloadKey = hist.TypicalWorkloadKey

// Historical method calibration and scoring.
var (
	CalibrateHistorical      = hist.CalibrateServer
	CalibrateGradient        = hist.CalibrateGradient
	FitRelationship2         = hist.FitRelationship2
	FitRelationship3         = hist.FitRelationship3
	EvaluateAccuracy         = hist.EvaluateAccuracy
	EvaluateEquationAccuracy = hist.EvaluateEquationAccuracy
	// CalibratePercentile fits a direct percentile model (§8.2).
	CalibratePercentile = hist.CalibratePercentile
	// PercentileRelationship2 and NewPercentileModel extrapolate direct
	// percentile models onto new architectures.
	PercentileRelationship2 = hist.PercentileRelationship2
	NewPercentileModel      = hist.NewPercentileModel
	// FitStabilisation fits the cold-start settling model (§8.2).
	FitStabilisation = hist.FitStabilisation
	// PredictGradient and RescaleGradient derive the
	// clients→throughput gradient from the think time (§4.1).
	PredictGradient = hist.PredictGradient
	RescaleGradient = hist.RescaleGradient
)

// Layered queuing method (§5).
type (
	// LQNModel is a layered queuing network.
	LQNModel = lqn.Model
	// LQNProcessor, LQNTask, LQNEntry, LQNCall and LQNClass are the
	// model's building blocks.
	LQNProcessor = lqn.Processor
	LQNTask      = lqn.Task
	LQNEntry     = lqn.Entry
	LQNCall      = lqn.Call
	LQNClass     = lqn.Class
	// LQNOptions tunes the solver (convergence criterion, exact MVA,
	// damping).
	LQNOptions = lqn.Options
	// LQNResult is a solved model's predictions.
	LQNResult = lqn.Result
	// LQNSolver is a reusable solver workspace: zero steady-state
	// allocations and optional warm-started sweeps.
	LQNSolver = lqn.Solver
	// CalibrationRun feeds the §5 demand-calibration procedure.
	CalibrationRun = lqn.CalibrationRun
)

// Layered queuing operations.
var (
	SolveLQN = lqn.Solve
	// NewLQNSolver builds a reusable solver for repeated solves of the
	// same (or slowly mutating) model.
	NewLQNSolver  = lqn.NewSolver
	NewTradeModel = lqn.NewTradeModel
	PredictTrade  = lqn.PredictTrade
	// RetuneTradeModel rewrites a trade model's demands in place so a
	// retained solver can keep its cached topology.
	RetuneTradeModel    = lqn.RetuneTradeModel
	CalibrateDemand     = lqn.CalibrateDemand
	ScaleDemandToServer = lqn.ScaleDemandToServer
	MaxClientsSearch    = lqn.MaxClientsSearch
	ReadLQNModel        = lqn.ReadModel
	WriteLQNModel       = lqn.WriteModel
	// AddCriticalSection profiles the §8.1 implicit bottleneck into a
	// trade model.
	AddCriticalSection = lqn.AddCriticalSection
)

// Scheduling disciplines for LQN processors.
const (
	PS    = lqn.PS
	FCFS  = lqn.FCFS
	Delay = lqn.Delay
)

// Hybrid method (§6).
type (
	// HybridConfig controls hybrid model construction.
	HybridConfig = hybrid.Config
	// HybridModel is a calibrated hybrid model with its start-up
	// delay accounting.
	HybridModel = hybrid.Model
)

// BuildHybrid constructs the advanced hybrid model: layered pseudo
// data calibrating per-architecture historical models.
var BuildHybrid = hybrid.Build

// BuildRelationship3FromLQN generates relationship 3 with
// layered-model data, as the paper does for figure 4.
var BuildRelationship3FromLQN = hybrid.BuildRelationship3

// Simulated testbed (the paper's WebSphere/Trade/DB2 substitution).
type (
	// SimConfig describes one simulated measurement run.
	SimConfig = trade.Config
	// SimCacheConfig enables the §7.2 session-cache variant.
	SimCacheConfig = trade.CacheConfig
	// SimCriticalSection enables the §8.1 implicit-bottleneck variant.
	SimCriticalSection = trade.CriticalSectionConfig
	// SimResult is a run's measurements.
	SimResult = trade.Result
	// MeasureOptions tunes the benchmarking helpers.
	MeasureOptions = trade.MeasureOptions
	// CurvePoint is one point of a measured scalability curve.
	CurvePoint = trade.CurvePoint
	// ServerResult is one tier member's share of a measurement.
	ServerResult = trade.ServerResult
	// RoutingPolicy selects the workload-manager routing for
	// multi-server tiers (§2).
	RoutingPolicy = trade.RoutingPolicy
	// TransientPoint is one bucket of a cold-start trajectory.
	TransientPoint = trade.TransientPoint
	// OperationResult is one Trade operation's measurements from a
	// DetailedOperations run (§3.1).
	OperationResult = trade.OperationResult
)

// Workload-manager routing policies.
const (
	RouteSticky     = trade.RouteSticky
	RouteRoundRobin = trade.RouteRoundRobin
	RouteLeastBusy  = trade.RouteLeastBusy
)

// Simulated-testbed operations.
var (
	RunSim               = trade.Run
	Measure              = trade.Measure
	MeasureMaxThroughput = trade.MaxThroughput
	MeasureCurve         = trade.MeasureCurve
	// TransientCurve measures a cold-start response-time trajectory
	// (no warm-up discard) for the stabilisation study.
	TransientCurve = trade.TransientCurve
	// OpenWorkload builds a constant-rate (open) request stream
	// (§8.1).
	OpenWorkload = workload.OpenWorkload
)

// Response-time distributions (§7.1).
var (
	// PercentileFromMean converts a mean prediction into a percentile
	// prediction using the exponential/Laplace distributions.
	PercentileFromMean = rtdist.PercentileFromMean
	// CalibrateLaplaceScale estimates the post-saturation scale b.
	CalibrateLaplaceScale = rtdist.CalibrateScale
)

// PaperLaplaceScale is the paper's calibrated b (204.1 ms), exported
// for exact-configuration reproduction.
const PaperLaplaceScale = rtdist.PaperScaleB

// Session-cache modelling (§7.2).
var (
	FitMissRateModel    = sessioncache.FitMissRateModel
	EqualAccessMissRate = sessioncache.EqualAccessMissRate
	EffectiveDemand     = sessioncache.EffectiveDemand
	SolveLQNWithCache   = sessioncache.SolveWithCache
)

// CachePoint is one (capacity, miss rate) historical observation.
type CachePoint = sessioncache.CachePoint

// Resource management (§9).
type (
	// Predictor is the model interface the resource manager consumes.
	Predictor = rm.Predictor
	// RMClass is a service class to place (clients + SLA goal).
	RMClass = rm.Class
	// RMServer is an application server available for allocation.
	RMServer = rm.Server
	// RMPlan is Algorithm 1's output.
	RMPlan = rm.Plan
	// RMOptions and RMEvalOptions tune planning and runtime
	// evaluation.
	RMOptions     = rm.Options
	RMEvalOptions = rm.EvalOptions
	// RMResult carries the §9.1 cost metrics.
	RMResult = rm.Result
	// ModelSet adapts historical models to the Predictor interface.
	ModelSet = rm.ModelSet
	// Biased wraps a predictor with uniform inaccuracy y.
	Biased = rm.Biased
	// ClassShare defines a class as a fraction of total load.
	ClassShare = rm.ClassShare
	// SweepPoint and SlackPoint are study series elements.
	SweepPoint = rm.SweepPoint
	SlackPoint = rm.SlackPoint
	// Application and EpochResult drive the §2 multi-application
	// provider loop; ProviderOptions tunes it.
	Application     = rm.Application
	EpochResult     = rm.EpochResult
	ProviderOptions = rm.ProviderOptions
)

// Resource-management operations.
var (
	Allocate            = rm.Allocate
	EvaluatePlan        = rm.Evaluate
	SplitLoad           = rm.SplitLoad
	SweepLoad           = rm.SweepLoad
	SweepSlack          = rm.SweepSlack
	AverageMetrics      = rm.AverageMetrics
	MinZeroFailureSlack = rm.MinZeroFailureSlack
	RMCaseStudyShares   = rm.CaseStudyShares
	RMCaseStudyServers  = rm.CaseStudyServers
	// CheapestSlack picks the lowest-cost slack under a cost model —
	// the §9.1 closing extension.
	CheapestSlack = rm.CheapestSlack
	// RunProvider simulates the §2 service provider transferring
	// servers between hosted applications as loads shift.
	RunProvider = rm.RunProvider
)

// SLA accounting (§9).
type (
	// SLAGoal is a response-time requirement (mean or percentile).
	SLAGoal = sla.Goal
	// SLACostModel maps SLA-failure and server-usage percentages onto
	// one cost scale.
	SLACostModel = sla.CostModel
	// SLATracker accumulates served/rejected clients per class.
	SLATracker = sla.Tracker
)

// NewSLATracker returns an empty tracker.
var NewSLATracker = sla.NewTracker

// Experiment harness: regenerates every table and figure.
type (
	// Suite owns the shared calibration state of the experiments.
	Suite = bench.Suite
	// ResultTable is one regenerated table or figure.
	ResultTable = bench.Table
)

// NewSuite returns an experiment harness seeded for reproducible
// simulated measurements.
func NewSuite(seed int64) *Suite { return bench.NewSuite(seed) }

// Experiments lists the runnable experiment names in paper order.
func Experiments() []string { return bench.Experiments() }

// RunAllExperiments executes every experiment, streaming tables to w.
func RunAllExperiments(s *Suite, w io.Writer) error { return s.RunAll(w) }
