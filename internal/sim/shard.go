package sim

import (
	"fmt"
	"math"
	"sort"

	"perfpred/internal/parallel"
)

// message is one cross-shard occurrence in flight: fn runs on the
// destination shard's engine at the given simulated time. The sort key
// (time, origin, seq) is deliberately built from caller-supplied
// identifiers of the LOGICAL sender (e.g. a pool index and that pool's
// own send counter), never from the shard id: the delivery order —
// and hence the destination engine's tie-breaking sequence numbers —
// is then invariant under re-mapping logical partitions onto a
// different shard count.
type message struct {
	time   float64
	origin uint64
	seq    uint64
	fn     func()
}

// msgSorter sorts a shard's inbox by (time, origin, seq). It is a
// retained sort.Interface so the per-window sort allocates nothing.
type msgSorter struct{ msgs []message }

func (s *msgSorter) Len() int      { return len(s.msgs) }
func (s *msgSorter) Swap(i, j int) { s.msgs[i], s.msgs[j] = s.msgs[j], s.msgs[i] }
func (s *msgSorter) Less(i, j int) bool {
	a, b := &s.msgs[i], &s.msgs[j]
	if a.time != b.time {
		return a.time < b.time
	}
	if a.origin != b.origin {
		return a.origin < b.origin
	}
	return a.seq < b.seq
}

// Shard is one partition of a sharded simulation: a calendar-queue
// engine plus the outboxes carrying its cross-shard sends. All state
// reachable from a shard's events must be owned by that shard; the
// only cross-shard channel is Send.
type Shard struct {
	// Eng is the shard's private engine. Only the shard's own events
	// (and the coordinator, between windows) may touch it.
	Eng *Engine

	id     int
	coord  *Coordinator
	out    [][]message // out[dst]: sends bound for shard dst this window
	inbox  []message
	sorter msgSorter
	// inboxMin is the earliest fire time among routed-but-undelivered
	// messages, +Inf when the inbox is empty; the coordinator folds it
	// into the idle-skip horizon.
	inboxMin float64
}

// ID returns the shard's index within its coordinator.
func (sh *Shard) ID() int { return sh.id }

// Send schedules fn to run on shard dst's engine after delay units of
// simulated time. origin and seq identify the logical sender (a stable
// partition index and its private send counter) and order deliveries;
// they must be unique per in-flight message and independent of the
// shard mapping. delay must be at least the coordinator's lookahead —
// that is the conservative-synchronisation contract that makes
// window-batched exchange exact: a message sent inside window [a, b)
// fires at sendTime+delay ≥ a+lookahead ≥ b, i.e. always after the
// barrier at which it is delivered, never inside its own window.
func (sh *Shard) Send(dst int, origin, seq uint64, delay float64, fn func()) {
	if delay < sh.coord.lookahead || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: cross-shard delay %v below lookahead %v", delay, sh.coord.lookahead))
	}
	sh.out[dst] = append(sh.out[dst], message{
		time:   sh.Eng.Now() + delay,
		origin: origin,
		seq:    seq,
		fn:     fn,
	})
}

// Coordinator advances a set of shard engines in lockstep through
// conservative time windows of length lookahead. Within a window the
// shards run concurrently on a persistent worker pool; at each window
// barrier the coordinator routes every outbox message to its
// destination inbox, sorts inboxes by (time, origin, seq), and the
// next window begins by scheduling those deliveries at their exact
// fire times. Because every cross-shard delay is at least the
// lookahead, no message can fire inside the window it was sent in, so
// the parallel execution fires exactly the event sequence a single
// engine honouring the same (time, origin, seq) tie-breaks would.
//
// With one shard the pool degenerates to an inline call on the calling
// goroutine: no goroutines, no barriers, bit-identical to driving the
// engine directly.
type Coordinator struct {
	shards    []*Shard
	pool      *parallel.Pool
	lookahead float64
	now       float64
	windowEnd float64 // read by shard workers during pool.Run
	// barrierHook runs on the coordinator goroutine at every executed
	// window barrier, after exchange; see SetBarrierHook.
	barrierHook func(now float64)
}

// NewCoordinator builds nshards calendar-queue engines coordinated
// with the given lookahead. A non-finite lookahead (math.Inf(1)) means
// "no cross-shard traffic": the run degenerates to a single window and
// Send panics, which is the right mode for embarrassingly parallel
// partitions. Otherwise lookahead must be positive — a zero-latency
// partition cannot be conservatively parallelised.
func NewCoordinator(nshards int, lookahead float64) *Coordinator {
	if nshards < 1 {
		panic("sim: coordinator needs at least one shard")
	}
	if !(lookahead > 0) { // catches 0, negatives and NaN
		panic(fmt.Sprintf("sim: lookahead must be positive, got %v", lookahead))
	}
	c := &Coordinator{lookahead: lookahead}
	c.shards = make([]*Shard, nshards)
	for i := range c.shards {
		sh := &Shard{
			Eng:      NewEngineCalendar(),
			id:       i,
			coord:    c,
			out:      make([][]message, nshards),
			inboxMin: math.Inf(1),
		}
		sh.sorter.msgs = nil
		c.shards[i] = sh
	}
	c.pool = parallel.NewPool(nshards, c.runOne)
	return c
}

// Shards returns the number of shards.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Shard returns shard i. Callers build their model onto the shard's
// engine before the first Run and use Send for all cross-shard
// communication afterwards.
func (c *Coordinator) Shard(i int) *Shard { return c.shards[i] }

// Now returns the coordinator clock: the time every shard has advanced
// to (window barriers, and the final until of the last Run).
func (c *Coordinator) Now() float64 { return c.now }

// Fired returns the total events executed across all shards.
func (c *Coordinator) Fired() uint64 {
	var n uint64
	for _, sh := range c.shards {
		n += sh.Eng.Fired()
	}
	return n
}

// HeapHighWater returns the largest per-shard pending-event high-water
// mark — the max across shards, not the sum, because each mark is a
// concurrent queue depth on its own engine.
func (c *Coordinator) HeapHighWater() int {
	max := 0
	for _, sh := range c.shards {
		if hw := sh.Eng.HeapHighWater(); hw > max {
			max = hw
		}
	}
	return max
}

// runOne is the per-window shard body, executed by the worker pool: it
// delivers the shard's sorted inbox at exact fire times, then runs the
// engine to the window end. Bound once at construction; reads the
// window end from the coordinator, so the steady state allocates
// nothing.
func (c *Coordinator) runOne(i int) {
	sh := c.shards[i]
	if len(sh.inbox) > 0 {
		for j := range sh.inbox {
			m := &sh.inbox[j]
			sh.Eng.ScheduleAt(m.time, m.fn)
			m.fn = nil
		}
		sh.inbox = sh.inbox[:0]
		sh.inboxMin = math.Inf(1)
	}
	sh.Eng.Run(c.windowEnd, 0)
}

// exchange routes every shard's outboxes into destination inboxes and
// sorts each inbox by (time, origin, seq). Runs between windows on the
// coordinator goroutine.
func (c *Coordinator) exchange() {
	for _, src := range c.shards {
		for dst := range src.out {
			box := src.out[dst]
			if len(box) == 0 {
				continue
			}
			d := c.shards[dst]
			d.inbox = append(d.inbox, box...)
			for j := range box {
				box[j].fn = nil
			}
			src.out[dst] = box[:0]
		}
	}
	for _, sh := range c.shards {
		if len(sh.inbox) > 1 {
			sh.sorter.msgs = sh.inbox
			sort.Sort(&sh.sorter)
		}
		for j := range sh.inbox {
			if t := sh.inbox[j].time; t < sh.inboxMin {
				sh.inboxMin = t
			}
		}
	}
}

// nextEventTime returns the earliest pending occurrence anywhere: the
// min over shard engines' next events and undelivered inbox messages,
// +Inf when fully drained. It is a property of the logical event
// population, independent of the shard mapping, which keeps the
// idle-skip decisions below mapping-invariant.
func (c *Coordinator) nextEventTime() float64 {
	min := math.Inf(1)
	for _, sh := range c.shards {
		if t := sh.Eng.PeekTime(); t < min {
			min = t
		}
		if sh.inboxMin < min {
			min = sh.inboxMin
		}
	}
	return min
}

// SetBarrierHook registers fn to run on the coordinator goroutine at
// every executed window barrier: after the shards finish the window
// and the message exchange completes, before the next window starts.
// At that instant every shard is quiescent, so the hook may read and
// write state owned by any shard — the mechanism fleet layers use to
// publish cross-shard snapshots and run in-loop control (replanning)
// without touching the per-window hot path.
//
// Barrier times are a property of the logical event population (window
// ends and idle skips depend only on the mapping-invariant next-event
// time), so the hook fires at the identical sequence of simulated
// times at any shard count. Skipped idle windows hold no events and
// produce no barrier; the final clamp of a Run call (no events left
// before until) performs no exchange and no hook call either.
func (c *Coordinator) SetBarrierHook(fn func(now float64)) { c.barrierHook = fn }

// Run advances every shard to simulated time until, alternating
// concurrent windows with barrier exchanges. Idle stretches — no
// pending event within the next window — are skipped in whole
// multiples of the lookahead, so a mostly quiet system does not pay a
// barrier per empty window. Returns the events fired by this call.
func (c *Coordinator) Run(until float64) uint64 {
	startFired := c.Fired()
	for c.now < until {
		gmin := c.nextEventTime()
		if gmin > until {
			// Nothing left to fire before until: one final window just
			// clamps every engine's clock.
			c.windowEnd = until
			c.pool.Run()
			c.now = until
			break
		}
		if gmin > c.now+c.lookahead {
			// Skip ahead by whole windows; the skip count depends only
			// on gmin, which is mapping-invariant.
			c.now += math.Floor((gmin-c.now)/c.lookahead) * c.lookahead
		}
		end := c.now + c.lookahead
		if end > until {
			end = until
		}
		c.windowEnd = end
		c.pool.Run()
		c.exchange()
		c.now = end
		if c.barrierHook != nil {
			c.barrierHook(end)
		}
	}
	return c.Fired() - startFired
}

// Close releases the coordinator's worker pool. The coordinator must
// not Run afterwards.
func (c *Coordinator) Close() { c.pool.Close() }
