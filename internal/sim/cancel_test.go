package sim

import (
	"testing"
	"testing/quick"
)

// Property: a stale Event handle — one whose event already fired, was
// discarded as cancelled, or was explicitly cancelled — can never
// cancel the slot's next tenant. The engine recycles fired events
// through a free list, so without the generation check a retained
// handle would silently kill whatever unrelated event reuses the
// memory. The workload below drives heavy schedule/fire/cancel churn
// (maximising slot reuse), retains every handle ever issued, and
// replays stale Cancels between steps; every event that was NOT
// cancelled while live must still fire.
func TestStaleCancelNeverHitsReusedSlotProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%300 + 50
		e := NewEngine()
		rng := NewStream(seed)

		type issued struct {
			h         Event
			cancelled bool // cancelled while live (before firing)
			fired     bool
		}
		var all []*issued

		schedule := func(d float64) *issued {
			rec := &issued{}
			rec.h = e.Schedule(d, func() { rec.fired = true })
			all = append(all, rec)
			return rec
		}
		for i := 0; i < n; i++ {
			rec := schedule(rng.Exp(1))
			if rng.Float64() < 0.3 {
				rec.h.Cancel()
				rec.cancelled = true
			}
		}
		steps := 0
		for e.Pending() > 0 {
			e.Run(e.Now()+0.5, 0)
			steps++
			// Replay every stale handle: fired events' slots are by now
			// reused by the fresh schedules below, so a generation bug
			// would cancel a live stranger here.
			for _, rec := range all {
				if rec.fired || rec.cancelled {
					rec.h.Cancel()
				}
			}
			if steps < 40 {
				for i := 0; i < 5; i++ {
					rec := schedule(rng.Exp(1))
					if rng.Float64() < 0.3 {
						rec.h.Cancel()
						rec.cancelled = true
					}
				}
			}
		}
		for _, rec := range all {
			if rec.cancelled && rec.fired {
				return false // a live Cancel failed
			}
			if !rec.cancelled && !rec.fired {
				return false // a stale Cancel killed a reused slot
			}
		}
		// The churn must actually have recycled slots for the property to
		// mean anything.
		return e.reuses > 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Cancelling through a handle after its event fired, then scheduling
// again, must return a handle with a fresh generation: the two handles
// refer to the same slot but are independent.
func TestCancelGenerationsIndependent(t *testing.T) {
	e := NewEngine()
	fired := [2]bool{}
	h0 := e.Schedule(1, func() { fired[0] = true })
	e.Run(2, 0)
	if !fired[0] {
		t.Fatal("first event did not fire")
	}
	h1 := e.Schedule(1, func() { fired[1] = true })
	if h1.ev != h0.ev {
		t.Skip("free list did not reuse the slot; property vacuous")
	}
	if h1.gen == h0.gen {
		t.Fatal("reused slot kept its generation")
	}
	h0.Cancel() // stale: must not touch the new tenant
	e.Run(4, 0)
	if !fired[1] {
		t.Fatal("stale Cancel killed the reused slot's event")
	}
}
