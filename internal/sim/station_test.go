package sim

import (
	"math"
	"testing"
)

func TestStationSingleJob(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, "app", 1, 0, GlobalFIFO)
	var doneAt float64
	s.Submit(0, 5, func() { doneAt = e.Now() })
	e.Run(100, 0)
	if doneAt != 5 {
		t.Fatalf("job finished at %v, want 5", doneAt)
	}
	if s.Completed() != 1 {
		t.Fatalf("completed = %d", s.Completed())
	}
}

func TestStationSpeedScalesService(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, "fast", 2, 0, GlobalFIFO)
	var doneAt float64
	s.Submit(0, 10, func() { doneAt = e.Now() })
	e.Run(100, 0)
	if doneAt != 5 {
		t.Fatalf("job on speed-2 server finished at %v, want 5", doneAt)
	}
}

func TestStationProcessorSharingTwoJobs(t *testing.T) {
	// Two equal jobs sharing one processor each finish at 2*demand.
	e := NewEngine()
	s := NewStation(e, "app", 1, 0, GlobalFIFO)
	var t1, t2 float64
	s.Submit(0, 4, func() { t1 = e.Now() })
	s.Submit(0, 4, func() { t2 = e.Now() })
	e.Run(100, 0)
	if math.Abs(t1-8) > 1e-9 || math.Abs(t2-8) > 1e-9 {
		t.Fatalf("finish times %v, %v; want 8, 8", t1, t2)
	}
}

func TestStationProcessorSharingUnequalJobs(t *testing.T) {
	// Jobs of demand 2 and 6 started together: the short one leaves at
	// t=4 (rate 1/2 each), then the long one runs alone with 4 units
	// remaining, finishing at t=8.
	e := NewEngine()
	s := NewStation(e, "app", 1, 0, GlobalFIFO)
	var tShort, tLong float64
	s.Submit(0, 2, func() { tShort = e.Now() })
	s.Submit(0, 6, func() { tLong = e.Now() })
	e.Run(100, 0)
	if math.Abs(tShort-4) > 1e-9 {
		t.Fatalf("short job finished at %v, want 4", tShort)
	}
	if math.Abs(tLong-8) > 1e-9 {
		t.Fatalf("long job finished at %v, want 8", tLong)
	}
}

func TestStationLateArrivalSharing(t *testing.T) {
	// Job A (demand 4) starts alone at t=0. Job B (demand 2) arrives at
	// t=2, when A has 2 remaining. They share: both finish at t=6.
	e := NewEngine()
	s := NewStation(e, "app", 1, 0, GlobalFIFO)
	var tA, tB float64
	s.Submit(0, 4, func() { tA = e.Now() })
	e.Schedule(2, func() { s.Submit(0, 2, func() { tB = e.Now() }) })
	e.Run(100, 0)
	if math.Abs(tA-6) > 1e-9 || math.Abs(tB-6) > 1e-9 {
		t.Fatalf("finish times A=%v B=%v, want 6, 6", tA, tB)
	}
}

func TestStationMPLQueueing(t *testing.T) {
	// MPL 1 turns the station into FIFO: three unit jobs finish at
	// 1, 2, 3.
	e := NewEngine()
	s := NewStation(e, "db", 1, 1, GlobalFIFO)
	var finishes []float64
	for i := 0; i < 3; i++ {
		s.Submit(0, 1, func() { finishes = append(finishes, e.Now()) })
	}
	if s.InService() != 1 || s.Queued() != 2 {
		t.Fatalf("in service %d queued %d, want 1 and 2", s.InService(), s.Queued())
	}
	e.Run(100, 0)
	want := []float64{1, 2, 3}
	for i, w := range want {
		if math.Abs(finishes[i]-w) > 1e-9 {
			t.Fatalf("finishes = %v, want %v", finishes, want)
		}
	}
}

func TestStationGlobalFIFOAdmissionOrder(t *testing.T) {
	// With MPL 1, waiting jobs from different sources are admitted in
	// arrival order under GlobalFIFO.
	e := NewEngine()
	s := NewStation(e, "db", 1, 1, GlobalFIFO)
	var order []int
	s.Submit(9, 1, func() { order = append(order, 9) })
	e.Schedule(0.1, func() { s.Submit(2, 1, func() { order = append(order, 2) }) })
	e.Schedule(0.2, func() { s.Submit(1, 1, func() { order = append(order, 1) }) })
	e.Schedule(0.3, func() { s.Submit(2, 1, func() { order = append(order, 2) }) })
	e.Run(100, 0)
	want := []int{9, 2, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("admission order = %v, want %v", order, want)
		}
	}
}

func TestStationPerSourceRoundRobin(t *testing.T) {
	// Per-source FIFO with round-robin admission alternates between the
	// application servers' queues, like the paper's database server.
	e := NewEngine()
	s := NewStation(e, "db", 1, 1, PerSourceFIFO)
	var order []int
	// Source 1 floods first; source 2 arrives after. Round-robin should
	// still alternate once both queues are populated.
	s.Submit(1, 1, func() { order = append(order, 1) }) // in service immediately
	e.Schedule(0.1, func() {
		for i := 0; i < 3; i++ {
			s.Submit(1, 1, func() { order = append(order, 1) })
		}
		for i := 0; i < 3; i++ {
			s.Submit(2, 1, func() { order = append(order, 2) })
		}
	})
	e.Run(100, 0)
	// After the first job, admissions alternate 1,2,1,2,...
	want := []int{1, 1, 2, 1, 2, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("completed %d jobs, want %d", len(order), len(want))
	}
	alternating := 0
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1] {
			alternating++
		}
	}
	if alternating < 4 {
		t.Fatalf("admission order %v does not alternate between sources", order)
	}
}

func TestStationStats(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, "app", 1, 0, GlobalFIFO)
	s.Submit(0, 5, nil)
	e.Run(10, 0)
	// Busy 5 of 10 time units.
	if got := s.Utilization(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
	if got := s.Throughput(); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("throughput = %v, want 0.1", got)
	}
	s.ResetStats()
	if s.Utilization() != 0 || s.Completed() != 0 {
		t.Fatal("ResetStats did not zero statistics")
	}
}

func TestStationZeroDemand(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, "app", 1, 0, GlobalFIFO)
	fired := false
	s.Submit(0, 0, func() { fired = true })
	if fired {
		t.Fatal("zero-demand job completed synchronously; must go through the event queue")
	}
	e.Run(1, 0)
	if !fired {
		t.Fatal("zero-demand job never completed")
	}
}

func TestStationResubmitFromCallback(t *testing.T) {
	// A request that makes a database call from its completion callback
	// (the trade simulator's pattern) must be safe.
	e := NewEngine()
	s := NewStation(e, "app", 1, 0, GlobalFIFO)
	hops := 0
	var loop func()
	loop = func() {
		hops++
		if hops < 5 {
			s.Submit(0, 1, loop)
		}
	}
	s.Submit(0, 1, loop)
	e.Run(100, 0)
	if hops != 5 {
		t.Fatalf("hops = %d, want 5", hops)
	}
	if e.Now() > 100 {
		t.Fatal("clock ran past horizon")
	}
}

func TestStationInvalidArgsPanic(t *testing.T) {
	e := NewEngine()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative speed did not panic")
			}
		}()
		NewStation(e, "bad", -1, 0, GlobalFIFO)
	}()
	s := NewStation(e, "ok", 1, 0, GlobalFIFO)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative demand did not panic")
			}
		}()
		s.Submit(0, -3, nil)
	}()
}

func TestStationMM1PSMeanResponse(t *testing.T) {
	// M/M/1-PS sanity check: with Poisson(λ) arrivals and exponential
	// demands of mean S, the mean response time is S/(1-ρ). Use
	// λ = 0.5, S = 1 → ρ = 0.5 → E[T] = 2.
	e := NewEngine()
	s := NewStation(e, "app", 1, 0, GlobalFIFO)
	rng := NewStream(12345)
	var acc struct {
		sum float64
		n   int
	}
	const lambda, S = 0.5, 1.0
	var arrive func()
	arrive = func() {
		start := e.Now()
		s.Submit(0, rng.Exp(S), func() {
			if start > 2000 { // warm-up
				acc.sum += e.Now() - start
				acc.n++
			}
		})
		e.Schedule(rng.Exp(1/lambda), arrive)
	}
	e.Schedule(0, arrive)
	e.Run(120000, 0)
	got := acc.sum / float64(acc.n)
	if acc.n < 10000 {
		t.Fatalf("too few samples: %d", acc.n)
	}
	if math.Abs(got-2)/2 > 0.08 {
		t.Fatalf("M/M/1-PS mean response = %v, want ≈2 (n=%d)", got, acc.n)
	}
}
