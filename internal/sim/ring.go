package sim

// fifo is a growable ring-buffer queue. Unlike the append/reslice
// idiom (`q = q[1:]`), a ring reuses its backing array forever, so a
// queue that reaches a steady-state high-water mark stops allocating —
// the property the trade simulator's 0 allocs/op request loop depends
// on. The zero value is an empty queue.
type fifo[T any] struct {
	buf  []T
	head int
	n    int
}

// push appends v at the tail, growing the buffer only when full.
func (f *fifo[T]) push(v T) {
	if f.n == len(f.buf) {
		f.grow()
	}
	f.buf[(f.head+f.n)%len(f.buf)] = v
	f.n++
}

// pop removes and returns the head element; ok is false when empty.
func (f *fifo[T]) pop() (v T, ok bool) {
	if f.n == 0 {
		return v, false
	}
	var zero T
	v = f.buf[f.head]
	f.buf[f.head] = zero // drop the reference for GC
	f.head = (f.head + 1) % len(f.buf)
	f.n--
	return v, true
}

// peek returns the head element without removing it.
func (f *fifo[T]) peek() (v T, ok bool) {
	if f.n == 0 {
		return v, false
	}
	return f.buf[f.head], true
}

// len returns the number of queued elements.
func (f *fifo[T]) len() int { return f.n }

func (f *fifo[T]) grow() {
	capNew := 2 * len(f.buf)
	if capNew == 0 {
		capNew = 8
	}
	buf := make([]T, capNew)
	for i := 0; i < f.n; i++ {
		buf[i] = f.buf[(f.head+i)%len(f.buf)]
	}
	f.buf = buf
	f.head = 0
}
