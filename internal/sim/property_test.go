package sim

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: a processor-sharing station conserves work — once every
// job has completed, the integrated busy time times the speed equals
// the sum of all submitted demands, regardless of arrival pattern,
// speed or multiprogramming limit.
func TestStationWorkConservationProperty(t *testing.T) {
	f := func(seed int64, rawSpeed, rawMPL uint8, nJobs uint8) bool {
		speed := 0.5 + float64(rawSpeed%8)/2 // 0.5 .. 4.0
		mpl := int(rawMPL % 5)               // 0 (unlimited) .. 4
		n := int(nJobs%40) + 1
		e := NewEngine()
		s := NewStation(e, "prop", speed, mpl, GlobalFIFO)
		rng := NewStream(seed)
		var total float64
		done := 0
		for i := 0; i < n; i++ {
			d := rng.Exp(2.0)
			total += d
			e.Schedule(rng.Exp(1.0), func() {
				s.Submit(0, d, func() { done++ })
			})
		}
		e.Run(1e9, 0)
		if done != n {
			return false
		}
		if s.Completed() != uint64(n) {
			return false
		}
		work := s.MeanInService() // force a final update
		_ = work
		// busyTime × speed == Σ demands
		delivered := s.Utilization() * e.Now() * speed
		return math.Abs(delivered-total) < 1e-6*(1+total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: FIFO admission at an MPL-limited station never loses or
// duplicates a job, and completions never exceed submissions at any
// point in time.
func TestStationJobConservationProperty(t *testing.T) {
	f := func(seed int64, nJobs uint8) bool {
		n := int(nJobs%60) + 1
		e := NewEngine()
		s := NewStation(e, "prop", 1, 2, GlobalFIFO)
		rng := NewStream(seed)
		completions := 0
		for i := 0; i < n; i++ {
			e.Schedule(rng.Exp(0.5), func() {
				s.Submit(0, rng.Exp(1.0), func() { completions++ })
			})
		}
		for e.Step() {
			inFlight := s.InService() + s.Queued()
			if inFlight < 0 || completions+inFlight > n {
				return false
			}
		}
		return completions == n && s.InService() == 0 && s.Queued() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: semaphore grants never exceed capacity concurrently and
// every queued waiter is eventually granted once releases catch up.
func TestSemaphoreInvariantProperty(t *testing.T) {
	f := func(seed int64, capRaw, nRaw uint8) bool {
		capacity := int(capRaw%5) + 1
		n := int(nRaw%50) + 1
		e := NewEngine()
		s := NewSemaphore(e, "prop", capacity, GlobalFIFO)
		rng := NewStream(seed)
		granted := 0
		for i := 0; i < n; i++ {
			e.Schedule(rng.Exp(1.0), func() {
				s.Acquire(0, func() {
					granted++
					if s.Held() > capacity {
						panic("capacity exceeded")
					}
					// Hold the slot for a while, then release.
					e.Schedule(rng.Exp(0.5), s.Release)
				})
			})
		}
		e.Run(1e9, 0)
		return granted == n && s.Held() == 0 && s.Queued() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
