package sim

import "math"

// calendarQueue is a bucketed event scheduler (R. Brown's calendar
// queue): events are hashed into time-slot buckets of a common width,
// and dequeueing walks the bucket "calendar" from the last dequeue
// position, so both enqueue and dequeue are O(1) amortised instead of
// the binary heap's O(log n). Per-shard engines use it because a large
// sharded run keeps hundreds of thousands of pending events (one think
// timer per idle client), where the heap's sift depth dominates the
// event loop.
//
// Ordering is identical to the heap: (time, seq) with scheduling order
// breaking time ties, so an engine produces the same firing sequence
// whichever structure backs it — the equivalence is property-tested.
//
// Buckets are intrusive singly-linked lists threaded through the
// events' own next field (an event is either queued or on the free
// list, never both, so the field is free here). Push is a head
// prepend and pop an unlink, so steady-state operation performs NO
// allocation at all — the only allocations ever are the bucket-head
// slices on the rare resizes, which double/halve the bucket count with
// wide hysteresis (grow past 2× buckets, shrink under ¼) and refit
// the width to the resident events' time spread.
type calendarQueue struct {
	buckets []*event // bucket heads; events chain via event.next
	width   float64
	size    int
	// lastTime is the dequeue cursor: no resident event's time is below
	// it, so the slot search can start at its bucket.
	lastTime float64
	// cachedMin memoises the (time,seq)-least resident event, its
	// bucket and its list predecessor (nil when at the head), shared
	// between peek and pop so each event is located exactly once; a nil
	// cachedMin with size > 0 means "unknown, recompute on demand".
	cachedMin *event
	minPrev   *event
	minB      int
}

const calendarMinBuckets = 8

func newCalendarQueue() *calendarQueue {
	return &calendarQueue{
		buckets: make([]*event, calendarMinBuckets),
		width:   1,
	}
}

// bucketIndex maps an event time onto the calendar. Computed with a
// float modulus rather than integer division so distant times (long
// idle horizons) cannot overflow.
func (cq *calendarQueue) bucketIndex(t float64) int {
	nb := len(cq.buckets)
	span := cq.width * float64(nb)
	i := int(math.Mod(t, span) / cq.width)
	if i >= nb {
		i = nb - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

func (cq *calendarQueue) push(ev *event) {
	if cq.size+1 > 2*len(cq.buckets) {
		cq.resize(2 * len(cq.buckets))
	}
	i := cq.bucketIndex(ev.time)
	ev.next = cq.buckets[i]
	cq.buckets[i] = ev
	cq.size++
	if cq.cachedMin != nil {
		if eventBefore(ev, cq.cachedMin) {
			cq.cachedMin = ev
			cq.minPrev = nil
			cq.minB = i
		} else if i == cq.minB && cq.minPrev == nil {
			// The cached min was this bucket's head; the prepend just
			// became its predecessor.
			cq.minPrev = ev
		}
	}
}

// peek returns the (time,seq)-least resident event without removing
// it, or nil when the queue is empty.
func (cq *calendarQueue) peek() *event {
	if cq.size == 0 {
		return nil
	}
	if cq.cachedMin == nil {
		cq.findMin()
	}
	return cq.cachedMin
}

// popBefore removes and returns the least event if its time is <=
// until; otherwise the queue is left untouched and nil is returned.
func (cq *calendarQueue) popBefore(until float64) *event {
	ev := cq.peek()
	if ev == nil || ev.time > until {
		return nil
	}
	if cq.minPrev != nil {
		cq.minPrev.next = ev.next
	} else {
		cq.buckets[cq.minB] = ev.next
	}
	ev.next = nil
	cq.size--
	cq.lastTime = ev.time
	cq.cachedMin = nil
	cq.minPrev = nil
	if cq.size < len(cq.buckets)/4 && len(cq.buckets) > calendarMinBuckets {
		cq.resize(len(cq.buckets) / 2)
	}
	return ev
}

// findMin locates the least resident event: walk bucket slots in
// calendar order from the cursor for up to one full year (the classic
// O(1)-amortised search), then fall back to a direct scan when the
// calendar is sparse. Requires size > 0.
func (cq *calendarQueue) findMin() {
	nb := len(cq.buckets)
	span := cq.width * float64(nb)
	i := cq.bucketIndex(cq.lastTime)
	// limit is the end of bucket i's slot within the cursor's year:
	// any resident event below it must live in bucket i, so the first
	// slot that yields a candidate holds the global minimum time.
	limit := math.Floor(cq.lastTime/span)*span + float64(i+1)*cq.width
	for k := 0; k < nb; k++ {
		var best, bestPrev, prev *event
		for ev := cq.buckets[i]; ev != nil; ev = ev.next {
			if ev.time < limit && (best == nil || eventBefore(ev, best)) {
				best, bestPrev = ev, prev
			}
			prev = ev
		}
		if best != nil {
			cq.cachedMin = best
			cq.minPrev = bestPrev
			cq.minB = i
			return
		}
		i++
		if i == nb {
			i = 0
		}
		limit += cq.width
	}
	// Sparse: nothing within a year of the cursor. Direct scan.
	var best, bestPrev *event
	for bi, head := range cq.buckets {
		var prev *event
		for ev := head; ev != nil; ev = ev.next {
			if best == nil || eventBefore(ev, best) {
				best, bestPrev = ev, prev
				cq.minB = bi
			}
			prev = ev
		}
	}
	cq.cachedMin = best
	cq.minPrev = bestPrev
}

// resize rebuilds the calendar with n buckets and a width fitted to
// the resident events' time spread (targeting a few events per slot).
// Events are relinked in place; the only allocation is the bucket-head
// slice itself.
func (cq *calendarQueue) resize(n int) {
	if n < calendarMinBuckets {
		n = calendarMinBuckets
	}
	// Collect every resident event into one chain and measure the
	// spread.
	var all *event
	lo, hi := math.Inf(1), math.Inf(-1)
	for bi, head := range cq.buckets {
		for ev := head; ev != nil; {
			next := ev.next
			ev.next = all
			all = ev
			if ev.time < lo {
				lo = ev.time
			}
			if ev.time > hi {
				hi = ev.time
			}
			ev = next
		}
		cq.buckets[bi] = nil
	}
	width := 1.0
	if cq.size > 1 && hi > lo {
		// Four average gaps per slot keeps slots short while leaving
		// headroom for clustering around the head.
		width = (hi - lo) / float64(cq.size) * 4
		if width <= 0 || math.IsInf(width, 0) || math.IsNaN(width) {
			width = 1.0
		}
	}
	if n != len(cq.buckets) {
		cq.buckets = make([]*event, n)
	}
	cq.width = width
	cq.cachedMin = nil
	cq.minPrev = nil
	for ev := all; ev != nil; {
		next := ev.next
		i := cq.bucketIndex(ev.time)
		ev.next = cq.buckets[i]
		cq.buckets[i] = ev
		ev = next
	}
}
