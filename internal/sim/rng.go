package sim

import (
	"math"
	"math/rand"
)

// Stream is a reproducible pseudo-random stream with the sampling
// helpers the workload and service models need. Distinct components of
// a simulation (think times, service demands, operation selection)
// should each own a Stream derived from the run seed, so changing how
// one component consumes randomness does not perturb the others.
type Stream struct {
	r    *rand.Rand
	seed int64
}

// NewStream returns a stream seeded deterministically from seed.
func NewStream(seed int64) *Stream {
	return &Stream{r: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed the stream was created with. Split keys off it,
// so sibling streams can be derived without perturbing this stream's
// draw sequence.
func (s *Stream) Seed() int64 { return s.seed }

// Derive returns a new independent stream derived from this stream's
// seed space and the given component label hash. It allows one run
// seed to fan out into per-component streams.
//
// Derive consumes a draw from the parent, so the child's seed depends
// on the ORDER of Derive calls, not just the component id. That is the
// right behaviour for a fixed component layout (the legacy simulator's
// streams), but wrong for shard splitting, where the same logical
// partition must get the same stream no matter how many siblings were
// derived before it — re-sharding would silently reassign every
// stream. Shard-scoped streams therefore use Split, which is a pure
// function of (seed, index).
func (s *Stream) Derive(component uint64) *Stream {
	// splitmix64 over the component id, xored with fresh draws from the
	// parent, gives well-separated child seeds.
	z := component + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return NewStream(int64(z) ^ s.r.Int63())
}

// SplitSeed maps (seed, stream) to a child seed as a pure function:
// it neither consumes parent draws nor depends on how many sibling
// streams exist, so the stream keyed by a stable logical index (e.g. a
// pool number) is identical at any shard count. For a fixed seed the
// map stream → child is injective — splitmix64's finalising rounds are
// bijections on uint64, composed with the bijection z → z + (stream+1)
// × odd-constant — so two distinct stream indices can never collide on
// the same child seed, and re-sharding can never silently reuse a
// stream. Pairwise independence across seeds is probabilistic (64-bit
// avalanche mixing), verified over thousands of indices in tests.
func SplitSeed(seed int64, stream uint64) int64 {
	z := uint64(seed) + (stream+1)*0x9e3779b97f4a7c15
	for i := 0; i < 2; i++ {
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return int64(z)
}

// Split returns the stream's child stream for the given stable index,
// via SplitSeed. Unlike Derive it does not advance this stream's
// state: Split(i) returns the same stream whenever it is called, in
// whatever order, on however many siblings.
func (s *Stream) Split(stream uint64) *Stream {
	return NewStream(SplitSeed(s.seed, stream))
}

// Float64 returns a uniform draw in [0,1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform draw in [0,n). It panics if n <= 0, matching
// math/rand.
func (s *Stream) Intn(n int) int { return s.r.Intn(n) }

// Exp returns an exponentially distributed draw with the given mean.
// The paper's think times and service demands are exponential (§3.1,
// §5). A zero or negative mean returns 0, so degenerate "no delay"
// configurations are representable.
func (s *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return -mean * math.Log(1-s.r.Float64())
}

// Norm returns a standard normal draw (mean 0, standard deviation 1)
// from the stream's underlying generator. The scenario layer's
// lognormal think-time distributions exponentiate it.
func (s *Stream) Norm() float64 { return s.r.NormFloat64() }

// Choose returns an index in [0,len(weights)) drawn with the given
// relative weights, used to pick a client's next operation from the
// Trade mix. It panics when weights is empty or sums to a non-positive
// value.
func (s *Stream) Choose(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("sim: negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("sim: Choose requires positive total weight")
	}
	u := s.r.Float64() * total
	for i, w := range weights {
		u -= w
		if u < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Geometric returns a draw of the number of trials until first failure
// with continue-probability p in [0,1): 0 with probability 1-p, k with
// probability (1-p)p^k. The Trade buy class uses it for the number of
// sequential buy requests before logoff (§3.1).
func (s *Stream) Geometric(p float64) int {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		panic("sim: geometric continue-probability must be < 1")
	}
	n := 0
	for s.r.Float64() < p {
		n++
	}
	return n
}
