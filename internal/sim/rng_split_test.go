package sim

import "testing"

// Re-sharding must never silently reuse a random stream: for a fixed
// run seed, SplitSeed over a stable logical index is injective
// (guaranteed structurally — the mixing rounds are bijections), and
// across realistic seed sets the child seeds stay pairwise distinct.
func TestSplitSeedNoCollisions(t *testing.T) {
	seeds := []int64{0, 1, -1, 42, 1 << 40, -987654321}
	const streams = 4096
	for _, seed := range seeds {
		seen := make(map[int64]uint64, streams)
		for i := uint64(0); i < streams; i++ {
			child := SplitSeed(seed, i)
			if prev, dup := seen[child]; dup {
				t.Fatalf("seed %d: streams %d and %d collide on child seed %d", seed, prev, i, child)
			}
			seen[child] = i
		}
	}
	// Across seeds too: a full cross of seeds × indices must not alias,
	// or two runs with different seeds could share a stream.
	cross := make(map[int64][2]int64, len(seeds)*streams)
	for _, seed := range seeds {
		for i := uint64(0); i < streams; i++ {
			child := SplitSeed(seed, i)
			if prev, dup := cross[child]; dup {
				t.Fatalf("(%d,%d) and (%d,%d) collide on child seed %d", prev[0], prev[1], seed, i, child)
			}
			cross[child] = [2]int64{seed, int64(i)}
		}
	}
}

// Split is a pure function of (parent seed, index): it must not depend
// on call order, on how many siblings were split before, or on how
// much the parent stream has been consumed — the exact properties
// Derive lacks and the reason shard streams are keyed by stable pool
// index through Split.
func TestSplitIsOrderIndependent(t *testing.T) {
	drain := func(s *Stream, n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = s.Float64()
		}
		return out
	}
	a := NewStream(99)
	forward := [][]float64{}
	for i := uint64(0); i < 4; i++ {
		forward = append(forward, drain(a.Split(i), 8))
	}
	b := NewStream(99)
	drain(b, 100) // consuming the parent must not matter
	for i := 3; i >= 0; i-- { // nor the split order
		got := drain(b.Split(uint64(i)), 8)
		for j := range got {
			if got[j] != forward[i][j] {
				t.Fatalf("stream %d draw %d: %v != %v", i, j, got[j], forward[i][j])
			}
		}
	}
}

// Split must not advance the parent: the parent's draw sequence is the
// same whether or not children were split from it.
func TestSplitDoesNotPerturbParent(t *testing.T) {
	a, b := NewStream(7), NewStream(7)
	for i := uint64(0); i < 10; i++ {
		a.Split(i)
	}
	for i := 0; i < 50; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("draw %d: split perturbed parent (%v != %v)", i, av, bv)
		}
	}
}

// Sibling streams must be statistically unrelated, not just distinctly
// seeded: check the obvious failure mode (identical or lock-stepped
// sequences) over consecutive indices, the exact layout shards use.
func TestSplitSiblingsDecorrelated(t *testing.T) {
	root := NewStream(2026)
	const n = 512
	prev := make([]float64, n)
	s0 := root.Split(0)
	for i := range prev {
		prev[i] = s0.Float64()
	}
	for idx := uint64(1); idx < 8; idx++ {
		s := root.Split(idx)
		matches := 0
		for i := 0; i < n; i++ {
			v := s.Float64()
			if v == prev[i] {
				matches++
			}
			prev[i] = v
		}
		if matches > 2 {
			t.Fatalf("streams %d and %d share %d/%d identical draws", idx-1, idx, matches, n)
		}
	}
}
