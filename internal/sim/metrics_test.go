package sim

import (
	"testing"

	"perfpred/internal/obs"
)

// Regression (sharded metrics): each engine flushes its own pending-
// event high-water mark, so with several per-shard engines alive the
// published gauge must be the MAX across engines — later flushes from
// shallower engines must not clobber a deeper engine's mark, in any
// flush order.
func TestHeapHighWaterAggregatesAcrossEngines(t *testing.T) {
	r := obs.NewRegistry()
	EnableMetrics(r)
	defer EnableMetrics(nil)

	depths := []int{3, 17, 5} // deepest in the middle: both flush orders around it
	engines := make([]*Engine, len(depths))
	for i, d := range depths {
		e := NewEngine()
		engines[i] = e
		for j := 0; j < d; j++ {
			e.Schedule(float64(j+1), func() {})
		}
	}
	// Flush shallow-deep-shallow, then re-flush every engine in reverse:
	// the mark must survive every ordering.
	for _, e := range engines {
		e.Run(100, 0)
	}
	for i := len(engines) - 1; i >= 0; i-- {
		engines[i].Run(200, 0)
	}
	got := r.Snapshot().MaxGauges["sim_heap_depth_high_water"]
	if got != 17 {
		t.Fatalf("aggregated high water = %d, want 17 (max across engines)", got)
	}
	for i, e := range engines {
		if e.HeapHighWater() != depths[i] {
			t.Fatalf("engine %d HeapHighWater = %d, want %d", i, e.HeapHighWater(), depths[i])
		}
	}
}

// The coordinator's high-water view is the max over its shards, not
// the sum: the marks are concurrent queue depths of separate engines.
func TestCoordinatorHeapHighWater(t *testing.T) {
	c := NewCoordinator(3, 1)
	defer c.Close()
	for i := 0; i < c.Shards(); i++ {
		n := (i + 1) * 4
		eng := c.Shard(i).Eng
		for j := 0; j < n; j++ {
			eng.Schedule(float64(j+1), func() {})
		}
	}
	c.Run(100)
	if got := c.HeapHighWater(); got != 12 {
		t.Fatalf("coordinator high water = %d, want 12 (max shard, not sum)", got)
	}
}
