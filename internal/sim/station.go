package sim

import (
	"fmt"
	"math"
)

// Admission selects how a Station picks the next waiting job when a
// time-sharing slot frees up.
type Admission int

const (
	// GlobalFIFO admits the job that has been waiting longest,
	// regardless of source — the application-server queue of the
	// paper's system model (§2).
	GlobalFIFO Admission = iota
	// PerSourceFIFO keeps one FIFO queue per source and admits from
	// the queues in round-robin order — the database server of the
	// paper's system model, which has "one FIFO queue per application
	// server".
	PerSourceFIFO
)

const remainEps = 1e-9

// job is one request in service or waiting at a Station. Jobs are
// pooled per station: a retired job returns to a free list and is
// reused by a later Submit, so the steady-state service loop performs
// no allocation.
type job struct {
	remaining float64
	done      func()
	source    int
	arrived   float64
	next      *job // free-list link
}

// Station is a processor-sharing service centre with a multiprogramming
// limit: up to MPL jobs are served simultaneously, each receiving an
// equal share of the station's speed, and further arrivals wait in
// FIFO queues. This is the paper's model of both server tiers: "both
// servers can process multiple requests concurrently via time-sharing"
// behind FIFO waiting queues.
type Station struct {
	eng       *Engine
	name      string
	speed     float64
	mpl       int
	admission Admission

	active  []*job
	queues  []fifo[*job] // indexed by source id
	sources []int        // insertion-ordered source ids for round-robin
	known   []bool       // source id already registered in sources
	rrNext  int

	free     *job     // retired jobs for reuse
	finished []*job   // scratch: jobs retired by one completion event
	dones    []func() // scratch: their callbacks, run after release

	lastUpdate float64
	completion Event
	onComp     func() // onCompletion, bound once so scheduling allocates nothing

	// accumulated statistics
	statsSince   float64
	busyTime     float64
	areaActive   float64
	areaQueued   float64
	completed    uint64
	totalService float64
	queuedCount  int
}

// NewStation creates a station attached to eng. speed is the service
// rate multiplier (1 means demands are in time units); mpl is the
// maximum number of jobs in service at once (0 means unlimited); adm
// selects the admission discipline.
func NewStation(eng *Engine, name string, speed float64, mpl int, adm Admission) *Station {
	if speed <= 0 || math.IsNaN(speed) {
		panic(fmt.Sprintf("sim: station %q needs positive speed, got %v", name, speed))
	}
	if mpl < 0 {
		panic(fmt.Sprintf("sim: station %q needs non-negative MPL, got %d", name, mpl))
	}
	st := &Station{
		eng:       eng,
		name:      name,
		speed:     speed,
		mpl:       mpl,
		admission: adm,
	}
	st.onComp = st.onCompletion
	return st
}

// Name returns the station's label.
func (s *Station) Name() string { return s.name }

// queueFor returns the waiting queue for a source, registering the
// source in insertion order on first use. Sources must be small
// non-negative ids (server indices); the queues live in a slice so the
// per-call lookup is an index, not a map probe.
func (s *Station) queueFor(source int) *fifo[*job] {
	if source < 0 {
		panic(fmt.Sprintf("sim: station %q got negative source %d", s.name, source))
	}
	for source >= len(s.queues) {
		s.queues = append(s.queues, fifo[*job]{})
		s.known = append(s.known, false)
	}
	if !s.known[source] {
		s.known[source] = true
		s.sources = append(s.sources, source)
	}
	return &s.queues[source]
}

// Submit offers a job with the given service demand (time units at
// speed 1) from the given source. done runs when service completes.
// Zero-demand jobs complete via the event queue, preserving causal
// ordering. Negative or NaN demands panic: they are modelling bugs.
func (s *Station) Submit(source int, demand float64, done func()) {
	if demand < 0 || math.IsNaN(demand) {
		panic(fmt.Sprintf("sim: station %q got invalid demand %v", s.name, demand))
	}
	s.update()
	j := s.free
	if j != nil {
		s.free = j.next
		j.next = nil
	} else {
		j = &job{}
	}
	j.remaining = demand
	j.done = done
	j.source = source
	j.arrived = s.eng.Now()
	if s.mpl == 0 || len(s.active) < s.mpl {
		s.active = append(s.active, j)
	} else {
		s.queueFor(source).push(j)
		s.queuedCount++
	}
	s.scheduleNext()
}

// release returns a retired job to the free list.
func (s *Station) release(j *job) {
	j.done = nil
	j.next = s.free
	s.free = j
}

// InService returns the number of jobs currently being time-shared.
func (s *Station) InService() int { return len(s.active) }

// Queued returns the number of jobs waiting for a slot.
func (s *Station) Queued() int { return s.queuedCount }

// update advances the per-job remaining demands and the time-weighted
// statistics to the engine's current time.
func (s *Station) update() {
	now := s.eng.Now()
	elapsed := now - s.lastUpdate
	if elapsed > 0 {
		if n := len(s.active); n > 0 {
			perJob := elapsed * s.speed / float64(n)
			for _, j := range s.active {
				j.remaining -= perJob
			}
			s.busyTime += elapsed
			s.areaActive += elapsed * float64(n)
			s.totalService += elapsed * s.speed
		}
		s.areaQueued += elapsed * float64(s.queuedCount)
	}
	s.lastUpdate = now
}

// scheduleNext (re)schedules the completion event for the job with the
// least remaining demand.
func (s *Station) scheduleNext() {
	s.completion.Cancel()
	s.completion = Event{}
	if len(s.active) == 0 {
		return
	}
	minRemaining := math.Inf(1)
	for _, j := range s.active {
		if j.remaining < minRemaining {
			minRemaining = j.remaining
		}
	}
	if minRemaining < 0 {
		minRemaining = 0
	}
	delay := minRemaining * float64(len(s.active)) / s.speed
	s.completion = s.eng.Schedule(delay, s.onComp)
}

// onCompletion retires every job whose demand is exhausted, admits
// replacements from the waiting queues, and then runs the retired
// jobs' callbacks. Callbacks run after the station state is consistent
// so they may immediately Submit again (e.g. a request's next database
// call); retired jobs are recycled before the callbacks run, so a
// re-Submit can reuse them.
func (s *Station) onCompletion() {
	s.completion = Event{}
	s.update()
	finished := s.finished[:0]
	kept := s.active[:0]
	for _, j := range s.active {
		if j.remaining <= remainEps {
			finished = append(finished, j)
		} else {
			kept = append(kept, j)
		}
	}
	s.active = kept
	s.completed += uint64(len(finished))
	for s.mpl == 0 || len(s.active) < s.mpl {
		next := s.admitOne()
		if next == nil {
			break
		}
		s.active = append(s.active, next)
		s.queuedCount--
	}
	s.scheduleNext()
	dones := s.dones[:0]
	for _, j := range finished {
		dones = append(dones, j.done)
		s.release(j)
	}
	s.finished = finished[:0]
	for _, done := range dones {
		if done != nil {
			done()
		}
	}
	s.dones = dones[:0]
}

// admitOne removes and returns the next waiting job per the admission
// discipline, or nil when all queues are empty.
func (s *Station) admitOne() *job {
	switch s.admission {
	case PerSourceFIFO:
		for range s.sources {
			src := s.sources[s.rrNext%len(s.sources)]
			s.rrNext++
			if j, ok := s.queues[src].pop(); ok {
				return j
			}
		}
		return nil
	default: // GlobalFIFO: earliest arrival across all queues
		var best *job
		bestSrc := -1
		for _, src := range s.sources {
			j, ok := s.queues[src].peek()
			if !ok {
				continue
			}
			if best == nil || j.arrived < best.arrived {
				best = j
				bestSrc = src
			}
		}
		if best == nil {
			return nil
		}
		s.queues[bestSrc].pop()
		return best
	}
}

// ResetStats zeroes the accumulated statistics (typically after a
// warm-up period) without disturbing jobs in service or waiting.
func (s *Station) ResetStats() {
	s.update()
	s.statsSince = s.eng.Now()
	s.busyTime = 0
	s.areaActive = 0
	s.areaQueued = 0
	s.completed = 0
	s.totalService = 0
}

// Utilization returns the fraction of time since the last stats reset
// that at least one job was in service.
func (s *Station) Utilization() float64 {
	s.update()
	elapsed := s.eng.Now() - s.statsSince
	if elapsed <= 0 {
		return 0
	}
	return s.busyTime / elapsed
}

// MeanInService returns the time-average number of jobs in service
// since the last stats reset.
func (s *Station) MeanInService() float64 {
	s.update()
	elapsed := s.eng.Now() - s.statsSince
	if elapsed <= 0 {
		return 0
	}
	return s.areaActive / elapsed
}

// MeanQueued returns the time-average number of waiting jobs since the
// last stats reset.
func (s *Station) MeanQueued() float64 {
	s.update()
	elapsed := s.eng.Now() - s.statsSince
	if elapsed <= 0 {
		return 0
	}
	return s.areaQueued / elapsed
}

// Completed returns the number of jobs finished since the last stats
// reset.
func (s *Station) Completed() uint64 {
	return s.completed
}

// Throughput returns completions per time unit since the last stats
// reset.
func (s *Station) Throughput() float64 {
	elapsed := s.eng.Now() - s.statsSince
	if elapsed <= 0 {
		return 0
	}
	return float64(s.completed) / elapsed
}
