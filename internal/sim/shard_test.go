package sim

import (
	"math"
	"testing"
)

// testPool is a logical partition for coordinator tests: a self-timed
// ticker owning its own split stream, occasionally messaging a peer
// pool. Pool state is only ever touched by the shard the pool lives
// on, so trajectories must be invariant under the pool→shard mapping.
type testPool struct {
	id       uint64
	sh       *Shard
	rng      *Stream
	peers    []*testPool
	ticks    int
	received int
	hash     uint64
	sendSeq  uint64
	la       float64
}

func (p *testPool) fold(t float64) {
	p.hash = p.hash*1099511628211 + math.Float64bits(t)
}

func (p *testPool) tick() {
	now := p.sh.Eng.Now()
	p.ticks++
	p.fold(now)
	if len(p.peers) > 1 && p.rng.Float64() < 0.4 {
		q := p.peers[(int(p.id)+1+p.rng.Intn(len(p.peers)-1))%len(p.peers)]
		delay := p.la + p.rng.Exp(0.3)
		p.sendSeq++
		p.sh.Send(q.sh.id, p.id, p.sendSeq, delay, q.receive)
	}
	if now < 40 {
		p.sh.Eng.Schedule(p.rng.Exp(0.7), p.tick)
	}
}

func (p *testPool) receive() {
	p.received++
	p.fold(p.sh.Eng.Now())
}

// runPools drives P logical pools mapped i%shards onto a coordinator
// and returns each pool's trajectory summary.
func runPools(seed int64, pools, shards int, lookahead float64) ([]*testPool, uint64) {
	c := NewCoordinator(shards, lookahead)
	defer c.Close()
	root := NewStream(seed)
	ps := make([]*testPool, pools)
	for i := range ps {
		ps[i] = &testPool{
			id:  uint64(i),
			sh:  c.Shard(i % shards),
			rng: root.Split(uint64(i)), // keyed by pool, not shard
			la:  lookahead,
		}
	}
	for _, p := range ps {
		p.peers = ps
		pp := p
		pp.sh.Eng.Schedule(pp.rng.Exp(0.5), pp.tick)
	}
	c.Run(60)
	return ps, c.Fired()
}

// The tentpole determinism property: the same seeded scenario produces
// identical per-pool trajectories (tick counts, message counts, and a
// running hash of every event time) at ANY shard count, because pools
// share no state, streams are keyed by stable pool index, and message
// delivery order is (time, origin, seq) — all mapping-invariant.
func TestCoordinatorMappingInvariance(t *testing.T) {
	const pools = 4
	ref, refFired := runPools(11, pools, 1, 0.05)
	for _, shards := range []int{2, 4} {
		got, gotFired := runPools(11, pools, shards, 0.05)
		if gotFired != refFired {
			t.Fatalf("%d shards: fired %d events, 1 shard fired %d", shards, gotFired, refFired)
		}
		for i := range ref {
			if got[i].ticks != ref[i].ticks || got[i].received != ref[i].received || got[i].hash != ref[i].hash {
				t.Fatalf("%d shards: pool %d trajectory (%d ticks, %d recv, %x) != 1-shard (%d, %d, %x)",
					shards, i, got[i].ticks, got[i].received, got[i].hash,
					ref[i].ticks, ref[i].received, ref[i].hash)
			}
		}
	}
	if ref[0].received == 0 && ref[1].received == 0 {
		t.Fatal("no cross-pool messages exchanged; invariance test is vacuous")
	}
}

// A cross-shard send below the lookahead would break the conservative
// window guarantee — it must panic immediately, not corrupt a run.
func TestSendBelowLookaheadPanics(t *testing.T) {
	c := NewCoordinator(2, 0.5)
	defer c.Close()
	sh := c.Shard(0)
	sh.Eng.Schedule(1, func() {
		defer func() {
			if recover() == nil {
				t.Error("Send below lookahead did not panic")
			}
		}()
		sh.Send(1, 0, 1, 0.1, func() {})
	})
	c.Run(2)
}

// Long idle stretches are skipped in whole windows: a run spanning a
// huge quiet gap with a tiny lookahead must still fire the far event
// at its exact time (and complete quickly — 1e6 empty barriers would
// time the test out).
func TestCoordinatorSkipsIdleWindows(t *testing.T) {
	c := NewCoordinator(2, 1e-3)
	defer c.Close()
	var firedAt float64
	c.Shard(1).Eng.Schedule(5000, func() { firedAt = c.Shard(1).Eng.Now() })
	if n := c.Run(10000); n != 1 {
		t.Fatalf("fired %d events, want 1", n)
	}
	if firedAt != 5000 {
		t.Fatalf("event fired at %v, want 5000", firedAt)
	}
	if c.Now() != 10000 {
		t.Fatalf("coordinator clock %v, want 10000", c.Now())
	}
	for i := 0; i < c.Shards(); i++ {
		if got := c.Shard(i).Eng.Now(); got != 10000 {
			t.Fatalf("shard %d clock %v, want 10000", i, got)
		}
	}
}

// An infinite lookahead means "no cross-shard traffic": the whole run
// is one window and shards advance fully independently.
func TestCoordinatorInfiniteLookahead(t *testing.T) {
	c := NewCoordinator(2, math.Inf(1))
	defer c.Close()
	counts := [2]int{}
	for i := 0; i < 2; i++ {
		i := i
		eng := c.Shard(i).Eng
		var tick func()
		tick = func() {
			counts[i]++
			if eng.Now() < 90 {
				eng.Schedule(1, tick)
			}
		}
		eng.Schedule(1, tick)
	}
	c.Run(100)
	if counts[0] != 90 || counts[1] != 90 {
		t.Fatalf("counts = %v, want [90 90]", counts)
	}
}
