package sim

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: a calendar-queue engine fires exactly the same event
// sequence as the heap engine for any schedule/cancel workload —
// including time ties (broken by scheduling order), cancellations,
// reschedules from inside actions, and enough churn to force calendar
// resizes in both directions.
func TestCalendarMatchesHeapProperty(t *testing.T) {
	run := func(e *Engine, seed int64, n int) []int {
		rng := NewStream(seed)
		var order []int
		id := 0
		var churn func()
		churn = func() {
			// From inside an action, schedule a few follow-ups at mixed
			// horizons, sometimes cancelling one immediately — the stale
			// handle path — and sometimes duplicating a timestamp.
			k := rng.Intn(3)
			for j := 0; j < k; j++ {
				myID := id
				id++
				d := rng.Exp(float64(1 + rng.Intn(50)))
				ev := e.Schedule(d, func() {
					order = append(order, myID)
					if len(order) < n {
						churn()
					}
				})
				if rng.Float64() < 0.2 {
					ev.Cancel()
				}
				if rng.Float64() < 0.3 {
					dupID := id
					id++
					e.Schedule(d, func() { order = append(order, dupID) })
				}
			}
		}
		for i := 0; i < 10; i++ {
			seedID := id
			id++
			e.Schedule(rng.Exp(2), func() {
				order = append(order, seedID)
				churn()
			})
		}
		// Advance in small increments so the until-boundary and clock
		// clamping paths are exercised too.
		for e.Pending() > 0 && len(order) < n+50 {
			e.Run(e.Now()+3, 0)
		}
		return order
	}
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 20
		a := run(NewEngine(), seed, n)
		b := run(NewEngineCalendar(), seed, n)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The calendar must stay correct through heavy growth and shrinkage:
// fill far past the resize threshold, drain to nearly empty, and check
// strict (time, seq) order throughout.
func TestCalendarResizeKeepsOrder(t *testing.T) {
	e := NewEngineCalendar()
	rng := NewStream(7)
	fired := 0
	lastTime := -1.0
	record := func() {
		if e.Now() < lastTime {
			t.Fatalf("time went backwards: %v after %v", e.Now(), lastTime)
		}
		lastTime = e.Now()
		fired++
	}
	const n = 5000
	for i := 0; i < n; i++ {
		e.Schedule(rng.Exp(100), record)
	}
	// Drain half, grow again with a clustered burst near the clock, then
	// drain fully: exercises shrink, regrow and the sparse fallback.
	e.Run(70, 0)
	for i := 0; i < n/2; i++ {
		e.Schedule(rng.Float64()*0.01, record)
	}
	e.Run(1e9, 0)
	if e.Pending() != 0 {
		t.Fatalf("pending %d after full drain", e.Pending())
	}
	if fired != n+n/2 {
		t.Fatalf("fired %d, want %d", fired, n+n/2)
	}
}

// PeekTime must agree between backends and report +Inf when drained.
func TestPeekTime(t *testing.T) {
	for _, mk := range []func() *Engine{NewEngine, NewEngineCalendar} {
		e := mk()
		if !math.IsInf(e.PeekTime(), 1) {
			t.Fatalf("empty engine PeekTime = %v, want +Inf", e.PeekTime())
		}
		e.Schedule(5, func() {})
		e.Schedule(2, func() {})
		if got := e.PeekTime(); got != 2 {
			t.Fatalf("PeekTime = %v, want 2", got)
		}
		e.Run(10, 0)
		if !math.IsInf(e.PeekTime(), 1) {
			t.Fatalf("drained engine PeekTime = %v, want +Inf", e.PeekTime())
		}
	}
}

// ScheduleAt places events at absolute times and panics on times in
// the past, on both backends.
func TestScheduleAt(t *testing.T) {
	for _, mk := range []func() *Engine{NewEngine, NewEngineCalendar} {
		e := mk()
		var order []int
		e.Schedule(3, func() { order = append(order, 1) })
		e.ScheduleAt(2, func() { order = append(order, 0) })
		e.Run(10, 0)
		if len(order) != 2 || order[0] != 0 || order[1] != 1 {
			t.Fatalf("order = %v, want [0 1]", order)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("ScheduleAt in the past did not panic")
				}
			}()
			e.ScheduleAt(e.Now()-1, func() {})
		}()
	}
}
