package sim

import (
	"math"
	"sort"
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	e.Run(10, 0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fired order = %v", got)
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %v, want 10", e.Now())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Schedule(5, func() { got = append(got, "a") })
	e.Schedule(5, func() { got = append(got, "b") })
	e.Schedule(5, func() { got = append(got, "c") })
	e.Run(5, 0)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("tie order = %v", got)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	ev.Cancel()
	e.Run(10, 0)
	if fired {
		t.Fatal("cancelled event fired")
	}
	var zeroEv Event
	zeroEv.Cancel() // must not panic
}

// TestEngineStaleHandleCancel pins the free-list safety contract: a
// handle to an event that already fired must not cancel whatever
// Schedule reused the pooled slot for.
func TestEngineStaleHandleCancel(t *testing.T) {
	e := NewEngine()
	first := 0
	stale := e.Schedule(1, func() { first++ })
	e.Run(5, 0) // fires and recycles the event
	if first != 1 {
		t.Fatalf("first event fired %d times, want 1", first)
	}
	second := 0
	e.Schedule(1, func() { second++ }) // reuses the pooled event
	stale.Cancel()                     // must be a no-op
	e.Run(10, 0)
	if second != 1 {
		t.Fatal("stale Cancel suppressed a reused event")
	}
}

// TestEngineEventReuse checks the free list actually recycles: a long
// schedule/fire cycle must not grow the pool beyond the peak number of
// simultaneously pending events.
func TestEngineEventReuse(t *testing.T) {
	e := NewEngine()
	allocated := 0
	countFree := func() int {
		n := 0
		for ev := e.free; ev != nil; ev = ev.next {
			n++
		}
		return n
	}
	for i := 0; i < 1000; i++ {
		e.Schedule(1, func() {})
		e.Run(e.Now()+2, 0)
		if total := e.Pending() + countFree(); total > allocated {
			allocated = total
		}
	}
	if allocated > 2 {
		t.Fatalf("pool grew to %d events over a schedule/fire cycle; free list is not recycling", allocated)
	}
}

// TestEngineHeapOrderRandomised cross-checks the concrete heap against
// a sort of the same (time, seq) pairs.
func TestEngineHeapOrderRandomised(t *testing.T) {
	e := NewEngine()
	rng := NewStream(123)
	const n = 500
	type stamp struct {
		time float64
		seq  int
	}
	var want []stamp
	var got []stamp
	for i := 0; i < n; i++ {
		d := math.Floor(rng.Float64()*50) / 10 // coarse grid forces ties
		seq := i
		want = append(want, stamp{d, seq})
		e.Schedule(d, func() { got = append(got, stamp{e.Now(), seq}) })
	}
	sort.SliceStable(want, func(i, j int) bool {
		if want[i].time != want[j].time {
			return want[i].time < want[j].time
		}
		return want[i].seq < want[j].seq
	})
	e.Run(100, 0)
	if len(got) != n {
		t.Fatalf("fired %d events, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d fired as %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestEngineRunUntilStopsBeforeLaterEvents(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func() { fired++ })
	e.Schedule(100, func() { fired++ })
	n := e.Run(10, 0)
	if n != 1 || fired != 1 {
		t.Fatalf("fired %d events, want 1", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %v, want 10", e.Now())
	}
	e.Run(200, 0)
	if fired != 2 {
		t.Fatalf("fired %d events total, want 2", fired)
	}
}

func TestEngineEventLimit(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 0; i < 10; i++ {
		e.Schedule(float64(i), func() { fired++ })
	}
	e.Run(100, 4)
	if fired != 4 {
		t.Fatalf("fired %d, want 4 (limit)", fired)
	}
	if e.Fired() != 4 {
		t.Fatalf("Fired() = %d, want 4", e.Fired())
	}
}

func TestEngineScheduleFromAction(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(2, func() { times = append(times, e.Now()) })
	})
	e.Run(10, 0)
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times = %v", times)
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(2, func() { fired++ })
	if !e.Step() {
		t.Fatal("Step returned false with a pending event")
	}
	if fired != 1 || e.Now() != 2 {
		t.Fatalf("fired=%d now=%v", fired, e.Now())
	}
	if e.Step() {
		t.Fatal("Step returned true with an empty queue")
	}
}

func TestEngineInvalidDelayPanics(t *testing.T) {
	e := NewEngine()
	for _, d := range []float64{-1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Schedule(%v) did not panic", d)
				}
			}()
			e.Schedule(d, func() {})
		}()
	}
}

func TestStreamExpMean(t *testing.T) {
	s := NewStream(1)
	const mean = 7.0 // the paper's think time
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Exp(mean)
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("sample mean %v, want ≈%v", got, mean)
	}
	if s.Exp(0) != 0 || s.Exp(-1) != 0 {
		t.Fatal("non-positive mean should draw 0")
	}
}

func TestStreamDeterminism(t *testing.T) {
	a, b := NewStream(99), NewStream(99)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestStreamChoose(t *testing.T) {
	s := NewStream(5)
	counts := make([]int, 3)
	weights := []float64{0.5, 0.3, 0.2}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Choose(weights)]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / n
		if math.Abs(got-w) > 0.01 {
			t.Fatalf("weight %d frequency %v, want ≈%v", i, got, w)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Choose with empty weights did not panic")
			}
		}()
		s.Choose(nil)
	}()
}

func TestStreamGeometric(t *testing.T) {
	s := NewStream(11)
	// Mean of the counting distribution is p/(1-p); the buy class's 10
	// sequential buys implies p = 10/11.
	const p = 10.0 / 11.0
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += float64(s.Geometric(p))
	}
	got := sum / n
	if math.Abs(got-10)/10 > 0.03 {
		t.Fatalf("geometric mean %v, want ≈10", got)
	}
	if s.Geometric(0) != 0 {
		t.Fatal("p=0 should draw 0")
	}
}

func TestStreamDerive(t *testing.T) {
	parent := NewStream(42)
	a := parent.Derive(1)
	b := parent.Derive(2)
	same := true
	for i := 0; i < 20; i++ {
		if a.Float64() != b.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("derived streams are identical")
	}
}
