package sim

import (
	"math"
	"testing"
)

func TestAliasTableDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	table := NewAliasTable(weights)
	if table.Len() != 4 {
		t.Fatalf("Len = %d, want 4", table.Len())
	}
	s := NewStream(99)
	const n = 200000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[table.Pick(s)]++
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		got := float64(counts[i]) / n
		want := w / total
		if math.Abs(got-want) > 0.01 {
			t.Errorf("outcome %d frequency = %.4f, want %.4f ± 0.01", i, got, want)
		}
	}
}

// TestAliasTableSingleDraw pins the stream cost: one Pick consumes
// exactly one uniform draw, the same budget as Stream.Choose, so
// swapping one for the other keeps all other streams' sequences
// untouched.
func TestAliasTableSingleDraw(t *testing.T) {
	table := NewAliasTable([]float64{0.2, 0.5, 0.3})
	a, b := NewStream(7), NewStream(7)
	table.Pick(a)
	b.Float64()
	for i := 0; i < 8; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("draw %d after Pick: %v, want %v — Pick consumed more than one draw", i, x, y)
		}
	}
}

func TestAliasTableDeterministic(t *testing.T) {
	table := NewAliasTable([]float64{3, 1, 2, 6, 0.5})
	a, b := NewStream(11), NewStream(11)
	for i := 0; i < 1000; i++ {
		if x, y := table.Pick(a), table.Pick(b); x != y {
			t.Fatalf("pick %d differs across identical streams: %d vs %d", i, x, y)
		}
	}
}

func TestAliasTableZeroWeightNeverPicked(t *testing.T) {
	table := NewAliasTable([]float64{1, 0, 1})
	s := NewStream(5)
	for i := 0; i < 10000; i++ {
		if table.Pick(s) == 1 {
			t.Fatal("picked a zero-weight outcome")
		}
	}
}

func TestAliasTablePanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    {},
		"negative": {1, -1},
		"zero":     {0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s weights should panic", name)
				}
			}()
			NewAliasTable(weights)
		}()
	}
}
