// Package sim is a deterministic discrete-event simulation core. It
// provides the event engine, reproducible random streams and the
// processor-sharing service station used to model the paper's
// application and database servers: each server admits a bounded
// number of requests "at the same time via time-sharing" from FIFO
// waiting queues (§2, §5), which is exactly a processor-sharing
// station with a multiprogramming limit and FIFO admission.
//
// The engine replaces the paper's physical WebSphere/DB2 testbed: the
// Trade benchmark simulator (internal/trade) is built on these
// primitives and produces the "measured" numbers that every prediction
// method is scored against.
//
// The event core is allocation-free in steady state: fired and
// discarded events return to a per-engine free list and are reused by
// later Schedule calls, and the priority queue is a concrete-typed
// binary heap rather than container/heap, so no interface boxing or
// dynamic dispatch happens per event. One Engine is strictly
// single-goroutine; concurrency lives a level up, where independent
// engines run in parallel (internal/parallel).
package sim

import (
	"fmt"
	"math"
)

// Event is a handle to a scheduled occurrence, returned by
// Engine.Schedule so callers can cancel the event before it fires. It
// is a small value type; the zero Event is a valid no-op handle.
//
// Handles stay safe across event reuse: the engine recycles fired
// events through a free list, and each reuse bumps a generation
// counter, so a Cancel through a stale handle (after the event fired
// or was discarded) is a no-op rather than a cancellation of whatever
// the slot was reused for.
type Event struct {
	ev   *event
	gen  uint64
	time float64
}

// Cancel prevents the event's action from running when its time
// arrives. Cancelling an already-fired, already-cancelled or zero
// event is a no-op.
func (e Event) Cancel() {
	if e.ev != nil && e.ev.gen == e.gen {
		e.ev.cancelled = true
	}
}

// Time returns the simulated time at which the event fires (fired).
func (e Event) Time() float64 { return e.time }

// event is the pooled scheduler entry behind an Event handle.
type event struct {
	time      float64
	seq       uint64
	gen       uint64
	action    func()
	cancelled bool
	next      *event // free-list link, or calendar bucket chain; nil while heap-queued
}

// Engine is a sequential discrete-event scheduler. Events fire in
// non-decreasing time order; ties break in scheduling order, which
// keeps runs fully deterministic for a fixed seed. The zero value is
// not usable; create engines with NewEngine.
type Engine struct {
	now    float64
	queue  []*event // concrete binary heap ordered by (time, seq)
	cal    *calendarQueue
	free   *event // recycled events
	nextSq uint64
	fired  uint64

	// Plain instrumentation counters (the engine is single-goroutine);
	// flushMetrics publishes deltas to the process-wide atomics.
	reuses, allocs                             uint64
	heapMax                                    int
	flushedFired, flushedReuses, flushedAllocs uint64
}

// NewEngine returns an engine with the clock at 0, backed by the
// binary-heap scheduler.
func NewEngine() *Engine {
	return &Engine{}
}

// NewEngineCalendar returns an engine backed by a calendar-queue
// scheduler instead of the binary heap. Event ordering — and therefore
// any seeded run's trajectory — is identical to NewEngine; the
// calendar trades the heap's O(log n) sift for O(1) bucket operations,
// which pays off in sharded runs holding one pending timer per idle
// client.
func NewEngineCalendar() *Engine {
	return &Engine{cal: newCalendarQueue()}
}

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events executed so far, a cheap progress
// and liveness metric for long runs.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently scheduled (including
// cancelled events not yet discarded).
func (e *Engine) Pending() int {
	if e.cal != nil {
		return e.cal.size
	}
	return len(e.queue)
}

// PeekTime returns the fire time of the earliest pending event, or
// +Inf when the queue is empty. The shard coordinator uses it to skip
// idle synchronisation windows.
func (e *Engine) PeekTime() float64 {
	if e.cal != nil {
		if ev := e.cal.peek(); ev != nil {
			return ev.time
		}
		return math.Inf(1)
	}
	if len(e.queue) > 0 {
		return e.queue[0].time
	}
	return math.Inf(1)
}

// HeapHighWater returns the maximum number of simultaneously pending
// events observed over the engine's lifetime. Per-shard engines each
// track their own high water; aggregation across shards goes through
// obs max-gauge semantics (or Coordinator.HeapHighWater) rather than
// summing, since the marks are concurrent-depth measurements.
func (e *Engine) HeapHighWater() int { return e.heapMax }

// Schedule runs action after delay units of simulated time. It panics
// on negative or NaN delays — those are always modelling bugs, never
// recoverable conditions.
func (e *Engine) Schedule(delay float64, action func()) Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: invalid delay %v", delay))
	}
	return e.enqueue(e.now+delay, action)
}

// ScheduleAt runs action at absolute simulated time t. It panics when
// t is in the past or NaN. The shard coordinator uses it to deliver
// cross-shard messages at their precomputed fire times.
func (e *Engine) ScheduleAt(t float64, action func()) Event {
	if t < e.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: invalid fire time %v (now %v)", t, e.now))
	}
	return e.enqueue(t, action)
}

func (e *Engine) enqueue(t float64, action func()) Event {
	ev := e.free
	if ev != nil {
		e.free = ev.next
		ev.next = nil
		e.reuses++
	} else {
		ev = &event{}
		e.allocs++
	}
	ev.time = t
	ev.seq = e.nextSq
	ev.action = action
	ev.cancelled = false
	e.nextSq++
	if e.cal != nil {
		e.cal.push(ev)
		if e.cal.size > e.heapMax {
			e.heapMax = e.cal.size
		}
	} else {
		e.push(ev)
	}
	return Event{ev: ev, gen: ev.gen, time: ev.time}
}

// release returns a popped event to the free list, invalidating any
// outstanding handles to it.
func (e *Engine) release(ev *event) {
	ev.action = nil
	ev.cancelled = false
	ev.gen++
	ev.next = e.free
	e.free = ev
}

// Run executes events until the clock would pass until, the event
// queue drains, or limit events have fired (limit <= 0 means no
// limit). It returns the number of events fired by this call.
func (e *Engine) Run(until float64, limit uint64) uint64 {
	if e.cal != nil {
		return e.runCalendar(until, limit)
	}
	var fired uint64
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.time > until {
			break
		}
		e.pop()
		if next.cancelled {
			e.release(next)
			continue
		}
		e.now = next.time
		action := next.action
		e.release(next) // before the action, so it can reuse the slot
		action()
		e.fired++
		fired++
		if limit > 0 && fired >= limit {
			break
		}
	}
	if e.now < until && (len(e.queue) == 0 || e.queue[0].time > until) {
		e.now = until
	}
	e.flushMetrics()
	return fired
}

// runCalendar is Run over the calendar-queue backend: same firing
// order, same clock-clamping rules, different dequeue mechanics.
func (e *Engine) runCalendar(until float64, limit uint64) uint64 {
	var fired uint64
	for {
		next := e.cal.popBefore(until)
		if next == nil {
			break
		}
		if next.cancelled {
			e.release(next)
			continue
		}
		e.now = next.time
		action := next.action
		e.release(next) // before the action, so it can reuse the slot
		action()
		e.fired++
		fired++
		if limit > 0 && fired >= limit {
			break
		}
	}
	if e.now < until {
		if nxt := e.cal.peek(); nxt == nil || nxt.time > until {
			e.now = until
		}
	}
	e.flushMetrics()
	return fired
}

// Step executes the single next event, if any, and reports whether one
// fired.
func (e *Engine) Step() bool {
	if e.cal != nil {
		for {
			next := e.cal.popBefore(math.Inf(1))
			if next == nil {
				return false
			}
			if next.cancelled {
				e.release(next)
				continue
			}
			e.now = next.time
			action := next.action
			e.release(next)
			action()
			e.fired++
			return true
		}
	}
	for len(e.queue) > 0 {
		next := e.pop()
		if next.cancelled {
			e.release(next)
			continue
		}
		e.now = next.time
		action := next.action
		e.release(next)
		action()
		e.fired++
		return true
	}
	return false
}

// eventBefore is the heap order: earlier time first, scheduling order
// breaking ties.
func eventBefore(a, b *event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// push inserts ev into the heap (sift-up).
func (e *Engine) push(ev *event) {
	e.queue = append(e.queue, ev)
	if len(e.queue) > e.heapMax {
		e.heapMax = len(e.queue)
	}
	q := e.queue
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventBefore(ev, q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = ev
}

// pop removes and returns the earliest event (sift-down).
func (e *Engine) pop() *event {
	q := e.queue
	top := q[0]
	last := len(q) - 1
	ev := q[last]
	q[last] = nil
	e.queue = q[:last]
	if last == 0 {
		return top
	}
	q = e.queue
	i := 0
	for {
		child := 2*i + 1
		if child >= last {
			break
		}
		if r := child + 1; r < last && eventBefore(q[r], q[child]) {
			child = r
		}
		if !eventBefore(q[child], ev) {
			break
		}
		q[i] = q[child]
		i = child
	}
	q[i] = ev
	return top
}
