// Package sim is a deterministic discrete-event simulation core. It
// provides the event engine, reproducible random streams and the
// processor-sharing service station used to model the paper's
// application and database servers: each server admits a bounded
// number of requests "at the same time via time-sharing" from FIFO
// waiting queues (§2, §5), which is exactly a processor-sharing
// station with a multiprogramming limit and FIFO admission.
//
// The engine replaces the paper's physical WebSphere/DB2 testbed: the
// Trade benchmark simulator (internal/trade) is built on these
// primitives and produces the "measured" numbers that every prediction
// method is scored against.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled occurrence in simulated time. It is returned by
// Engine.Schedule so callers can cancel it before it fires.
type Event struct {
	time      float64
	seq       uint64
	action    func()
	cancelled bool
	index     int // heap index, -1 when not queued
}

// Cancel prevents the event's action from running when its time
// arrives. Cancelling an already-fired or already-cancelled event is a
// no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// Time returns the simulated time at which the event fires.
func (e *Event) Time() float64 { return e.time }

// Engine is a sequential discrete-event scheduler. Events fire in
// non-decreasing time order; ties break in scheduling order, which
// keeps runs fully deterministic for a fixed seed. The zero value is
// not usable; create engines with NewEngine.
type Engine struct {
	now    float64
	queue  eventHeap
	nextSq uint64
	fired  uint64
}

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events executed so far, a cheap progress
// and liveness metric for long runs.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently scheduled (including
// cancelled events not yet discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs action after delay units of simulated time. It panics
// on negative or NaN delays — those are always modelling bugs, never
// recoverable conditions.
func (e *Engine) Schedule(delay float64, action func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: invalid delay %v", delay))
	}
	ev := &Event{time: e.now + delay, seq: e.nextSq, action: action, index: -1}
	e.nextSq++
	heap.Push(&e.queue, ev)
	return ev
}

// Run executes events until the clock would pass until, the event
// queue drains, or limit events have fired (limit <= 0 means no
// limit). It returns the number of events fired by this call.
func (e *Engine) Run(until float64, limit uint64) uint64 {
	var fired uint64
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.time > until {
			break
		}
		heap.Pop(&e.queue)
		if next.cancelled {
			continue
		}
		e.now = next.time
		next.action()
		e.fired++
		fired++
		if limit > 0 && fired >= limit {
			break
		}
	}
	if e.now < until && len(e.queue) == 0 {
		e.now = until
	} else if e.now < until && e.queue[0].time > until {
		e.now = until
	}
	return fired
}

// Step executes the single next event, if any, and reports whether one
// fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		next := heap.Pop(&e.queue).(*Event)
		if next.cancelled {
			continue
		}
		e.now = next.time
		next.action()
		e.fired++
		return true
	}
	return false
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
