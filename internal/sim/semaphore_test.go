package sim

import (
	"math"
	"testing"
)

func TestSemaphoreImmediateGrant(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, "threads", 2, GlobalFIFO)
	granted := 0
	s.Acquire(0, func() { granted++ })
	s.Acquire(0, func() { granted++ })
	if granted != 2 || s.Held() != 2 {
		t.Fatalf("granted=%d held=%d", granted, s.Held())
	}
}

func TestSemaphoreQueuesBeyondCapacity(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, "threads", 1, GlobalFIFO)
	var order []int
	s.Acquire(0, func() { order = append(order, 1) })
	s.Acquire(0, func() { order = append(order, 2) })
	s.Acquire(0, func() { order = append(order, 3) })
	if s.Queued() != 2 {
		t.Fatalf("queued = %d, want 2", s.Queued())
	}
	s.Release() // grants 2
	s.Release() // grants 3
	if len(order) != 3 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("grant order = %v", order)
	}
	if s.Held() != 1 {
		t.Fatalf("held = %d, want 1 (grant transfers the slot)", s.Held())
	}
}

func TestSemaphoreGlobalFIFOAcrossSources(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, "agents", 1, GlobalFIFO)
	var order []int
	s.Acquire(5, func() {}) // holds the slot
	s.Acquire(7, func() { order = append(order, 7) })
	s.Acquire(3, func() { order = append(order, 3) })
	s.Acquire(7, func() { order = append(order, 7) })
	s.Release()
	s.Release()
	s.Release()
	want := []int{7, 3, 7}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", order, want)
		}
	}
}

func TestSemaphorePerSourceRoundRobin(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, "agents", 1, PerSourceFIFO)
	var order []int
	s.Acquire(1, func() {}) // holds the slot
	for i := 0; i < 3; i++ {
		s.Acquire(1, func() { order = append(order, 1) })
	}
	for i := 0; i < 3; i++ {
		s.Acquire(2, func() { order = append(order, 2) })
	}
	for i := 0; i < 6; i++ {
		s.Release()
	}
	// Round-robin must alternate between the two sources' queues.
	changes := 0
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1] {
			changes++
		}
	}
	if len(order) != 6 || changes < 4 {
		t.Fatalf("grant order %v does not alternate per-source", order)
	}
}

func TestSemaphoreOverReleasePanics(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, "x", 1, GlobalFIFO)
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	s.Release()
}

func TestSemaphoreInvalidCapacityPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewSemaphore(e, "x", 0, GlobalFIFO)
}

func TestSemaphoreStats(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, "threads", 1, GlobalFIFO)
	s.Acquire(0, func() {})
	e.Schedule(10, func() { s.Release() })
	e.Run(20, 0)
	// Held for 10 of 20 time units.
	if got := s.MeanHeld(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("mean held = %v, want 0.5", got)
	}
	if s.Grants() != 1 {
		t.Fatalf("grants = %d, want 1", s.Grants())
	}
	s.ResetStats()
	if s.MeanHeld() != 0 || s.Grants() != 0 {
		t.Fatal("ResetStats did not zero statistics")
	}
}

func TestSemaphoreMeanQueued(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, "threads", 1, GlobalFIFO)
	s.Acquire(0, func() {})
	s.Acquire(0, func() {}) // queued from t=0
	e.Schedule(10, func() { s.Release() })
	e.Run(20, 0)
	// One waiter for 10 of 20 units.
	if got := s.MeanQueued(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("mean queued = %v, want 0.5", got)
	}
}
