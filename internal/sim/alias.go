package sim

import "fmt"

// AliasTable is a precomputed discrete sampler over a fixed weight
// vector (Walker/Vose alias method). Construction is O(n); each Pick
// is O(1) and consumes exactly one uniform draw from the stream — the
// same stream cost as Stream.Choose, without the per-pick linear scan.
//
// The trade simulator builds one table per service class at run start,
// replacing the per-request sort-and-scan of the class mix. Note the
// draw-to-index mapping differs from Stream.Choose's CDF inversion, so
// switching a multi-type mix from Choose to an AliasTable changes the
// per-seed request sequence (the distribution is identical).
type AliasTable struct {
	prob  []float64
	alias []int
}

// NewAliasTable builds the table. It panics on an empty weight vector,
// a negative weight, or a non-positive total — the same contract as
// Stream.Choose.
func NewAliasTable(weights []float64) *AliasTable {
	n := len(weights)
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("sim: negative weight")
		}
		total += w
	}
	if n == 0 || total <= 0 {
		panic(fmt.Sprintf("sim: alias table requires positive total weight, got %v over %d entries", total, n))
	}
	t := &AliasTable{prob: make([]float64, n), alias: make([]int, n)}
	// Scale weights to mean 1 and split into under- and over-full
	// columns; each under-full column is topped up by one over-full
	// donor, recorded as its alias.
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers are exactly-full columns.
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range small {
		t.prob[i] = 1
		t.alias[i] = i
	}
	return t
}

// Len returns the number of outcomes.
func (t *AliasTable) Len() int { return len(t.prob) }

// Pick draws one outcome index using a single uniform draw from s.
func (t *AliasTable) Pick(s *Stream) int {
	u := s.Float64() * float64(len(t.prob))
	i := int(u)
	if i >= len(t.prob) {
		i = len(t.prob) - 1
	}
	if u-float64(i) < t.prob[i] {
		return i
	}
	return t.alias[i]
}
