package sim

import "fmt"

// Semaphore models a bounded pool of admission slots with FIFO (or
// per-source round-robin) granting — the servlet-thread pool of an
// application server or the agent pool of a database server. A request
// holds its slot from admission to response, including while it is
// blocked on a lower tier and consuming no CPU; the companion Station
// models the CPU itself. Together they realise the paper's "FIFO
// waiting queue in front of a server that processes up to MPL requests
// at the same time via time-sharing".
type Semaphore struct {
	eng       *Engine
	name      string
	capacity  int
	admission Admission

	held    int
	queues  map[int][]*waiter
	sources []int
	rrNext  int

	// statistics
	statsSince float64
	lastUpdate float64
	areaHeld   float64
	areaQueued float64
	queued     int
	grants     uint64
}

type waiter struct {
	granted func()
}

// NewSemaphore creates a pool of capacity slots granted per the given
// admission discipline.
func NewSemaphore(eng *Engine, name string, capacity int, adm Admission) *Semaphore {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: semaphore %q needs positive capacity, got %d", name, capacity))
	}
	return &Semaphore{
		eng:       eng,
		name:      name,
		capacity:  capacity,
		admission: adm,
		queues:    make(map[int][]*waiter),
	}
}

// Name returns the pool's label.
func (s *Semaphore) Name() string { return s.name }

// Capacity returns the total number of slots.
func (s *Semaphore) Capacity() int { return s.capacity }

// Held returns the number of slots currently held.
func (s *Semaphore) Held() int { return s.held }

// Queued returns the number of acquisitions waiting for a slot.
func (s *Semaphore) Queued() int { return s.queued }

// Acquire requests a slot for the given source. granted runs as soon
// as a slot is available — synchronously when one is free now,
// otherwise when a Release hands one over in queue order.
func (s *Semaphore) Acquire(source int, granted func()) {
	s.accumulate()
	if s.admission != PerSourceFIFO {
		source = 0 // single global queue preserves overall arrival order
	}
	if s.held < s.capacity {
		s.held++
		s.grants++
		granted()
		return
	}
	if _, ok := s.queues[source]; !ok {
		s.sources = append(s.sources, source)
	}
	s.queues[source] = append(s.queues[source], &waiter{granted: granted})
	s.queued++
}

// Release returns a slot to the pool, granting it to the next waiter
// if any. Releasing more slots than were acquired panics: it is always
// a modelling bug.
func (s *Semaphore) Release() {
	s.accumulate()
	if s.held <= 0 {
		panic(fmt.Sprintf("sim: semaphore %q released more slots than acquired", s.name))
	}
	next := s.nextWaiter()
	if next == nil {
		s.held--
		return
	}
	s.queued--
	s.grants++
	next.granted()
}

func (s *Semaphore) nextWaiter() *waiter {
	switch s.admission {
	case PerSourceFIFO:
		for range s.sources {
			src := s.sources[s.rrNext%len(s.sources)]
			s.rrNext++
			if q := s.queues[src]; len(q) > 0 {
				w := q[0]
				s.queues[src] = q[1:]
				return w
			}
		}
		return nil
	default:
		// GlobalFIFO: waiters were appended in arrival order per
		// source; scan sources for the earliest overall by tracking
		// insertion order with a single shared queue keyed 0 when the
		// discipline is global.
		for _, src := range s.sources {
			if q := s.queues[src]; len(q) > 0 {
				w := q[0]
				s.queues[src] = q[1:]
				return w
			}
		}
		return nil
	}
}

func (s *Semaphore) accumulate() {
	now := s.eng.Now()
	if d := now - s.lastUpdate; d > 0 {
		s.areaHeld += d * float64(s.held)
		s.areaQueued += d * float64(s.queued)
	}
	s.lastUpdate = now
}

// ResetStats zeroes the pool's time-weighted statistics.
func (s *Semaphore) ResetStats() {
	s.accumulate()
	s.statsSince = s.eng.Now()
	s.areaHeld = 0
	s.areaQueued = 0
	s.grants = 0
}

// MeanHeld returns the time-average number of held slots since the
// last stats reset.
func (s *Semaphore) MeanHeld() float64 {
	s.accumulate()
	if d := s.eng.Now() - s.statsSince; d > 0 {
		return s.areaHeld / d
	}
	return 0
}

// MeanQueued returns the time-average number of waiting acquisitions
// since the last stats reset.
func (s *Semaphore) MeanQueued() float64 {
	s.accumulate()
	if d := s.eng.Now() - s.statsSince; d > 0 {
		return s.areaQueued / d
	}
	return 0
}

// Grants returns the number of slots granted since the last stats
// reset.
func (s *Semaphore) Grants() uint64 { return s.grants }
