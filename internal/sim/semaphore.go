package sim

import "fmt"

// Semaphore models a bounded pool of admission slots with FIFO (or
// per-source round-robin) granting — the servlet-thread pool of an
// application server or the agent pool of a database server. A request
// holds its slot from admission to response, including while it is
// blocked on a lower tier and consuming no CPU; the companion Station
// models the CPU itself. Together they realise the paper's "FIFO
// waiting queue in front of a server that processes up to MPL requests
// at the same time via time-sharing".
//
// Waiters are stored as bare callbacks in per-source ring buffers, so
// queueing and granting allocate nothing in steady state.
type Semaphore struct {
	eng       *Engine
	name      string
	capacity  int
	admission Admission

	held    int
	queues  []fifo[func()] // indexed by source id
	sources []int          // insertion-ordered source ids
	known   []bool
	rrNext  int

	// statistics
	statsSince float64
	lastUpdate float64
	areaHeld   float64
	areaQueued float64
	queued     int
	grants     uint64
}

// NewSemaphore creates a pool of capacity slots granted per the given
// admission discipline.
func NewSemaphore(eng *Engine, name string, capacity int, adm Admission) *Semaphore {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: semaphore %q needs positive capacity, got %d", name, capacity))
	}
	return &Semaphore{
		eng:       eng,
		name:      name,
		capacity:  capacity,
		admission: adm,
	}
}

// Name returns the pool's label.
func (s *Semaphore) Name() string { return s.name }

// Capacity returns the total number of slots.
func (s *Semaphore) Capacity() int { return s.capacity }

// Held returns the number of slots currently held.
func (s *Semaphore) Held() int { return s.held }

// Queued returns the number of acquisitions waiting for a slot.
func (s *Semaphore) Queued() int { return s.queued }

// queueFor returns the waiting queue for a source, registering the
// source in insertion order on first use.
func (s *Semaphore) queueFor(source int) *fifo[func()] {
	if source < 0 {
		panic(fmt.Sprintf("sim: semaphore %q got negative source %d", s.name, source))
	}
	for source >= len(s.queues) {
		s.queues = append(s.queues, fifo[func()]{})
		s.known = append(s.known, false)
	}
	if !s.known[source] {
		s.known[source] = true
		s.sources = append(s.sources, source)
	}
	return &s.queues[source]
}

// Acquire requests a slot for the given source. granted runs as soon
// as a slot is available — synchronously when one is free now,
// otherwise when a Release hands one over in queue order.
func (s *Semaphore) Acquire(source int, granted func()) {
	s.accumulate()
	if s.admission != PerSourceFIFO {
		source = 0 // single global queue preserves overall arrival order
	}
	if s.held < s.capacity {
		s.held++
		s.grants++
		granted()
		return
	}
	s.queueFor(source).push(granted)
	s.queued++
}

// Release returns a slot to the pool, granting it to the next waiter
// if any. Releasing more slots than were acquired panics: it is always
// a modelling bug.
func (s *Semaphore) Release() {
	s.accumulate()
	if s.held <= 0 {
		panic(fmt.Sprintf("sim: semaphore %q released more slots than acquired", s.name))
	}
	next, ok := s.nextWaiter()
	if !ok {
		s.held--
		return
	}
	s.queued--
	s.grants++
	next()
}

func (s *Semaphore) nextWaiter() (func(), bool) {
	switch s.admission {
	case PerSourceFIFO:
		for range s.sources {
			src := s.sources[s.rrNext%len(s.sources)]
			s.rrNext++
			if w, ok := s.queues[src].pop(); ok {
				return w, true
			}
		}
		return nil, false
	default:
		// GlobalFIFO: every Acquire was normalised to source 0, so a
		// single ring preserves overall arrival order.
		for _, src := range s.sources {
			if w, ok := s.queues[src].pop(); ok {
				return w, true
			}
		}
		return nil, false
	}
}

func (s *Semaphore) accumulate() {
	now := s.eng.Now()
	if d := now - s.lastUpdate; d > 0 {
		s.areaHeld += d * float64(s.held)
		s.areaQueued += d * float64(s.queued)
	}
	s.lastUpdate = now
}

// ResetStats zeroes the pool's time-weighted statistics.
func (s *Semaphore) ResetStats() {
	s.accumulate()
	s.statsSince = s.eng.Now()
	s.areaHeld = 0
	s.areaQueued = 0
	s.grants = 0
}

// MeanHeld returns the time-average number of held slots since the
// last stats reset.
func (s *Semaphore) MeanHeld() float64 {
	s.accumulate()
	if d := s.eng.Now() - s.statsSince; d > 0 {
		return s.areaHeld / d
	}
	return 0
}

// MeanQueued returns the time-average number of waiting acquisitions
// since the last stats reset.
func (s *Semaphore) MeanQueued() float64 {
	s.accumulate()
	if d := s.eng.Now() - s.statsSince; d > 0 {
		return s.areaQueued / d
	}
	return 0
}

// Grants returns the number of slots granted since the last stats
// reset.
func (s *Semaphore) Grants() uint64 { return s.grants }
