package sim

import (
	"math"
	"testing"
)

// BenchmarkSchedule measures the steady-state cost of scheduling one
// event into a queue of pending events. After the first pool fill the
// free list supplies every event, so allocs/op must report 0.
func BenchmarkSchedule(b *testing.B) {
	e := NewEngine()
	nop := func() {}
	const pending = 1024
	for i := 0; i < pending; i++ {
		e.Schedule(float64(i%64), nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(float64(i%64), nop)
		if e.Pending() > 2*pending {
			e.Run(e.Now()+16, 0)
		}
	}
}

// BenchmarkRunDrain measures the full schedule→pop→fire cycle via a
// self-perpetuating event chain: each firing schedules its successor,
// which is exactly the hot loop of the trade simulator's think/serve
// cycles. Steady state must be allocation-free per event.
func BenchmarkRunDrain(b *testing.B) {
	e := NewEngine()
	remaining := b.N
	var tick func()
	tick = func() {
		remaining--
		if remaining > 0 {
			e.Schedule(1, tick)
		}
	}
	e.Schedule(1, tick)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(math.Inf(1), 0)
	if remaining != 0 {
		b.Fatalf("chain stopped with %d events left", remaining)
	}
}

// BenchmarkScheduleCancelDrain exercises the cancellation path: half
// of the scheduled events are cancelled before firing, so the engine
// discards and recycles them without running their actions.
func BenchmarkScheduleCancelDrain(b *testing.B) {
	e := NewEngine()
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 512
	for done := 0; done < b.N; done += batch {
		n := batch
		if rest := b.N - done; rest < n {
			n = rest
		}
		for i := 0; i < n; i++ {
			ev := e.Schedule(float64(i%16), nop)
			if i%2 == 0 {
				ev.Cancel()
			}
		}
		e.Run(e.Now()+16, 0)
	}
}

// BenchmarkCalendarHold measures per-event cost with a large constant
// population of self-rescheduling timers resident in the queue — the
// regime a fleet shard lives in, one pending think timer per idle
// client. The calendar's O(1) bucket operations are the point of the
// backend, and steady state must stay allocation-free: the intrusive
// bucket lists reuse the events' own link field.
func BenchmarkCalendarHold(b *testing.B) {
	for _, bc := range []struct {
		name string
		mk   func() *Engine
	}{{"heap", NewEngine}, {"calendar", NewEngineCalendar}} {
		b.Run(bc.name, func(b *testing.B) {
			e := bc.mk()
			rng := NewStream(7)
			var fire func()
			fire = func() { e.Schedule(rng.Exp(1), fire) }
			const pending = 65536
			for i := 0; i < pending; i++ {
				e.Schedule(rng.Float64(), fire)
			}
			b.ReportAllocs()
			b.ResetTimer()
			e.Run(math.Inf(1), uint64(b.N))
		})
	}
}

// BenchmarkShardWindow measures one coordinator synchronisation window
// across shards exchanging cross-shard messages — delivery, window
// execution, barrier, outbox routing. Steady state must be
// allocation-free: message buffers and the delivery sorter are
// retained across windows.
func BenchmarkShardWindow(b *testing.B) {
	const lookahead = 1.0
	c := NewCoordinator(4, lookahead)
	defer c.Close()
	rng := NewStream(11)
	for i, sh := range c.shards {
		sh := sh
		id, peer := uint64(i), (i+1)%len(c.shards)
		r := rng.Split(id)
		var seq uint64
		var tick func()
		tick = func() {
			sh.Eng.Schedule(r.Exp(0.2), tick)
			seq++
			sh.Send(peer, id, seq, lookahead+r.Exp(0.1), func() {})
		}
		sh.Eng.Schedule(r.Float64(), tick)
	}
	until := 0.0
	c.Run(64) // fill event pools, message buffers, outbox slices
	until = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		until += lookahead
		c.Run(until)
	}
}

// BenchmarkStationSubmit measures one processor-sharing service cycle
// end to end (Submit → completion event → callback), the innermost
// loop of every simulated measurement.
func BenchmarkStationSubmit(b *testing.B) {
	e := NewEngine()
	s := NewStation(e, "cpu", 1, 4, GlobalFIFO)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Submit(0, 0.001, nil)
		e.Run(e.Now()+1, 0)
	}
}
