package sim

import (
	"sync/atomic"

	"perfpred/internal/obs"
)

// engineMetrics are process-wide event-core counters, aggregated over
// every Engine. Engines keep plain per-instance counters (they are
// strictly single-goroutine) and flush deltas into these atomics at the
// end of each Run call, so the per-event hot path never touches shared
// cache lines and stays allocation-free.
type engineMetrics struct {
	fired    *obs.Counter  // events executed
	reuses   *obs.Counter  // Schedule calls served from the free list
	allocs   *obs.Counter  // Schedule calls that allocated a new event
	heapHigh *obs.MaxGauge // event-heap depth high-water mark
}

var metrics atomic.Pointer[engineMetrics]

// EnableMetrics registers the event core's counters on r and turns
// instrumentation on for every Engine in the process. A nil r disables
// instrumentation again.
func EnableMetrics(r *obs.Registry) {
	if r == nil {
		metrics.Store(nil)
		return
	}
	metrics.Store(&engineMetrics{
		fired:    r.Counter("sim_events_fired"),
		reuses:   r.Counter("sim_event_reuses"),
		allocs:   r.Counter("sim_event_allocs"),
		heapHigh: r.MaxGauge("sim_heap_depth_high_water"),
	})
}

// flushMetrics publishes the deltas accumulated since the last flush.
// Called at the end of Run; a handful of atomic adds, no allocation.
func (e *Engine) flushMetrics() {
	m := metrics.Load()
	if m == nil {
		return
	}
	m.fired.Add(e.fired - e.flushedFired)
	e.flushedFired = e.fired
	m.reuses.Add(e.reuses - e.flushedReuses)
	e.flushedReuses = e.reuses
	m.allocs.Add(e.allocs - e.flushedAllocs)
	e.flushedAllocs = e.allocs
	m.heapHigh.Observe(int64(e.heapMax))
}
