// Package workload defines the case-study model of the paper's §3:
// request types with per-type service demands, service classes built
// from operation mixes with closed client populations and exponential
// think times, and the heterogeneous application-server architectures
// whose response times the prediction methods must forecast.
//
// Amounts of workload follow the paper's convention: "number of
// clients and the mean client think-time" rather than an open arrival
// rate, because a client only issues its next request after receiving
// the previous response, so the request rate self-limits as servers
// load up (§3.1).
package workload

import (
	"errors"
	"fmt"
)

// RequestType identifies a class of requests expected to exhibit
// similar performance characteristics (§5): the operations called and
// the data touched.
type RequestType string

// The two request types of the Trade case study.
const (
	Browse RequestType = "browse"
	Buy    RequestType = "buy"
)

// Demand gives a request type's mean resource consumption on the
// reference application-server architecture. Times are in seconds;
// layered queuing and the simulator both consume these numbers, and
// calibration (paper §5) estimates them from throughput and CPU-usage
// measurements.
type Demand struct {
	// AppServerTime is the mean CPU time per request at the
	// application server, on the reference architecture.
	AppServerTime float64
	// DBTimePerCall is the mean CPU/disk time per database call at the
	// database server.
	DBTimePerCall float64
	// DBCallsPerRequest is the mean number of database calls one
	// application-server request makes (browse: 1.14, buy: 2 in §5.1).
	DBCallsPerRequest float64
	// DBLatencyPerCall is pure per-call latency (disk seeks, network
	// round trips) the calling thread waits out without consuming any
	// modelled processor — an infinite-server delay. 0 for the
	// CPU-bound case study.
	DBLatencyPerCall float64
}

// Validate reports the first structural problem with the demand.
func (d Demand) Validate() error {
	switch {
	case d.AppServerTime <= 0:
		return errors.New("workload: app server time must be positive")
	case d.DBTimePerCall < 0:
		return errors.New("workload: db time per call must be non-negative")
	case d.DBCallsPerRequest < 0:
		return errors.New("workload: db calls per request must be non-negative")
	case d.DBLatencyPerCall < 0:
		return errors.New("workload: db latency per call must be non-negative")
	}
	return nil
}

// TotalDBTime is the mean database time consumed per application
// request: calls × time-per-call.
func (d Demand) TotalDBTime() float64 { return d.DBCallsPerRequest * d.DBTimePerCall }

// Mix is the expected fraction of each request type in a service
// class's traffic. Fractions must be positive and sum to 1.
type Mix map[RequestType]float64

// Validate checks the mix sums to 1 (within tolerance) with no
// negative entries.
func (m Mix) Validate() error {
	if len(m) == 0 {
		return errors.New("workload: empty mix")
	}
	var sum float64
	for rt, f := range m {
		if f < 0 {
			return fmt.Errorf("workload: negative fraction %v for %q", f, rt)
		}
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("workload: mix fractions sum to %v, want 1", sum)
	}
	return nil
}

// Fraction returns the mix fraction for rt (0 when absent).
func (m Mix) Fraction(rt RequestType) float64 { return m[rt] }

// ServiceClass is a group of clients sharing a workload mix, think
// time and response-time requirement (§2–3). The SLA goal lives here
// because the resource manager sorts and admits workload by it.
type ServiceClass struct {
	Name string
	Mix  Mix
	// ThinkTimeMean is the mean of the exponentially distributed client
	// think time, seconds (7 s in the case study).
	ThinkTimeMean float64
	// GoalRT is the SLA response-time goal in seconds (0 means none).
	GoalRT float64
	// GoalPercentile is the fraction of requests that must meet GoalRT
	// when the SLA is percentile-based (0 means the goal is on the
	// mean).
	GoalPercentile float64
}

// Validate reports the first structural problem with the class.
func (c ServiceClass) Validate() error {
	if c.Name == "" {
		return errors.New("workload: service class needs a name")
	}
	if c.ThinkTimeMean < 0 {
		return fmt.Errorf("workload: class %q has negative think time", c.Name)
	}
	if c.GoalPercentile < 0 || c.GoalPercentile >= 1 {
		if c.GoalPercentile != 0 {
			return fmt.Errorf("workload: class %q percentile %v outside [0,1)", c.Name, c.GoalPercentile)
		}
	}
	return c.Mix.Validate()
}

// Population is an amount of workload for one service class: either a
// closed client population (Clients > 0) or an open request stream at
// a fixed Poisson rate (ArrivalRate > 0) — the "clients sending
// requests at a constant rate" variation of §8.1. A population cannot
// be both.
type Population struct {
	Class   ServiceClass
	Clients int
	// ArrivalRate is the open arrival rate in requests/second; 0 means
	// the population is closed.
	ArrivalRate float64
}

// Open reports whether the population is an open arrival stream.
func (p Population) Open() bool { return p.ArrivalRate > 0 }

// Workload is the full offered load: client populations across service
// classes. The paper represents system load as the total number of
// clients plus the percentage in each class (§3.1).
type Workload []Population

// TotalClients sums the client counts across classes.
func (w Workload) TotalClients() int {
	total := 0
	for _, p := range w {
		total += p.Clients
	}
	return total
}

// trafficWeight is the population's share weight: the client count for
// a closed population, the arrival rate for an open stream. Open
// streams used to weigh 0 here, so a workload whose traffic arrived
// entirely through open streams reported every fraction as 0. The
// exact client-equivalent of an open stream is ArrivalRate × (RT +
// think) by Little's law, but a static workload description has no RT,
// so the convention is deliberately (RT+think)-free: a pure-closed
// workload reduces to the legacy client share, a pure-open workload to
// the arrival-rate share, and a mixed workload blends the two weights
// directly (clients alongside requests/second — a best-effort share,
// not a calibrated one).
func (p Population) trafficWeight() float64 {
	if p.Open() {
		return p.ArrivalRate
	}
	return float64(p.Clients)
}

// ClassFraction returns the named class's share of the offered
// traffic: its client count for closed populations, its arrival rate
// for open streams, over the workload's total weight (0 for an unknown
// class or an empty workload). Duplicate class names accumulate.
func (w Workload) ClassFraction(name string) float64 {
	var total, class float64
	for _, p := range w {
		wt := p.trafficWeight()
		total += wt
		if p.Class.Name == name {
			class += wt
		}
	}
	if total == 0 {
		return 0
	}
	return class / total
}

// RequestFraction returns the expected fraction of requests of type rt
// across the whole workload, weighting each class's mix by its traffic
// share — client share for closed populations (with homogeneous think
// times the client share equals the request share), arrival-rate share
// for open streams.
func (w Workload) RequestFraction(rt RequestType) float64 {
	var total float64
	for _, p := range w {
		total += p.trafficWeight()
	}
	if total == 0 {
		return 0
	}
	var f float64
	for _, p := range w {
		f += p.trafficWeight() / total * p.Class.Mix.Fraction(rt)
	}
	return f
}

// Validate checks every population.
func (w Workload) Validate() error {
	for _, p := range w {
		if p.Clients < 0 {
			return fmt.Errorf("workload: class %q has negative clients", p.Class.Name)
		}
		if p.ArrivalRate < 0 {
			return fmt.Errorf("workload: class %q has negative arrival rate", p.Class.Name)
		}
		if p.Open() && p.Clients > 0 {
			return fmt.Errorf("workload: class %q is both open (rate %v) and closed (%d clients)", p.Class.Name, p.ArrivalRate, p.Clients)
		}
		if err := p.Class.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// OpenWorkload returns a workload consisting of a single open request
// stream of the given class at rate requests/second.
func OpenWorkload(class ServiceClass, rate float64) Workload {
	return Workload{{Class: class, ArrivalRate: rate}}
}
