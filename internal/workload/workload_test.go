package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDemandValidate(t *testing.T) {
	good := Demand{AppServerTime: 0.005, DBTimePerCall: 0.0008, DBCallsPerRequest: 1.14}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Demand{
		{AppServerTime: 0, DBTimePerCall: 0.001, DBCallsPerRequest: 1},
		{AppServerTime: 0.01, DBTimePerCall: -1, DBCallsPerRequest: 1},
		{AppServerTime: 0.01, DBTimePerCall: 0.001, DBCallsPerRequest: -1},
	}
	for i, d := range cases {
		if err := d.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestDemandTotalDBTime(t *testing.T) {
	d := Demand{AppServerTime: 1, DBTimePerCall: 0.0008294, DBCallsPerRequest: 1.14}
	want := 0.0008294 * 1.14
	if got := d.TotalDBTime(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("TotalDBTime = %v, want %v", got, want)
	}
}

func TestMixValidate(t *testing.T) {
	if err := (Mix{Browse: 0.9, Buy: 0.1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Mix{}).Validate(); err == nil {
		t.Fatal("empty mix should fail")
	}
	if err := (Mix{Browse: 0.5}).Validate(); err == nil {
		t.Fatal("non-unit sum should fail")
	}
	if err := (Mix{Browse: 1.5, Buy: -0.5}).Validate(); err == nil {
		t.Fatal("negative fraction should fail")
	}
	if got := (Mix{Browse: 1}).Fraction(Buy); got != 0 {
		t.Fatalf("missing type fraction = %v, want 0", got)
	}
}

func TestServiceClassValidate(t *testing.T) {
	c := BrowseClass(0.3)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.Name = ""
	if err := c.Validate(); err == nil {
		t.Fatal("unnamed class should fail")
	}
	c = BrowseClass(0.3)
	c.ThinkTimeMean = -1
	if err := c.Validate(); err == nil {
		t.Fatal("negative think time should fail")
	}
	c = BrowseClass(0.3)
	c.GoalPercentile = 1.2
	if err := c.Validate(); err == nil {
		t.Fatal("percentile >= 1 should fail")
	}
	c.GoalPercentile = 0.9
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadAggregates(t *testing.T) {
	w := MixedWorkload(1000, 0.10)
	if got := w.TotalClients(); got != 1000 {
		t.Fatalf("TotalClients = %d, want 1000", got)
	}
	if got := w.ClassFraction("buy"); math.Abs(got-0.10) > 1e-9 {
		t.Fatalf("buy fraction = %v, want 0.10", got)
	}
	if got := w.ClassFraction("nope"); got != 0 {
		t.Fatalf("unknown class fraction = %v, want 0", got)
	}
	if got := w.RequestFraction(Buy); math.Abs(got-0.10) > 1e-9 {
		t.Fatalf("buy request fraction = %v, want 0.10", got)
	}
	if got := w.RequestFraction(Browse); math.Abs(got-0.90) > 1e-9 {
		t.Fatalf("browse request fraction = %v, want 0.90", got)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Workload{{Class: BrowseClass(0), Clients: -5}}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative clients should fail")
	}
	var empty Workload
	if empty.TotalClients() != 0 || empty.ClassFraction("x") != 0 || empty.RequestFraction(Browse) != 0 {
		t.Fatal("empty workload aggregates should be zero")
	}
}

func TestTypicalWorkload(t *testing.T) {
	w := TypicalWorkload(500)
	if w.TotalClients() != 500 {
		t.Fatalf("clients = %d", w.TotalClients())
	}
	if got := w.RequestFraction(Browse); got != 1 {
		t.Fatalf("typical workload browse fraction = %v, want 1", got)
	}
	if w[0].Class.ThinkTimeMean != ThinkTimeMean {
		t.Fatalf("think time = %v, want %v", w[0].Class.ThinkTimeMean, ThinkTimeMean)
	}
}

func TestCaseStudyServers(t *testing.T) {
	servers := CaseStudyServers()
	if len(servers) != 3 {
		t.Fatalf("got %d servers", len(servers))
	}
	wantMax := []float64{86, 186, 320}
	wantEst := []bool{false, true, true}
	for i, s := range servers {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if s.MaxThroughputTypical != wantMax[i] {
			t.Fatalf("%s max throughput = %v, want %v", s.Name, s.MaxThroughputTypical, wantMax[i])
		}
		if s.Established != wantEst[i] {
			t.Fatalf("%s established = %v", s.Name, s.Established)
		}
		if s.MPL != AppServerMPL {
			t.Fatalf("%s MPL = %d", s.Name, s.MPL)
		}
	}
	// Speed ratios must mirror max-throughput ratios: the paper's
	// request-processing-speed benchmark (§5).
	f := AppServF()
	for _, s := range servers {
		wantSpeed := s.MaxThroughputTypical / f.MaxThroughputTypical
		if math.Abs(s.Speed-wantSpeed) > 1e-9 {
			t.Fatalf("%s speed = %v, want %v", s.Name, s.Speed, wantSpeed)
		}
	}
}

func TestCaseStudyDemands(t *testing.T) {
	d := CaseStudyDemands()
	browse, buy := d[Browse], d[Buy]
	if err := browse.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := buy.Validate(); err != nil {
		t.Fatal(err)
	}
	// The reference server saturates at 186 req/s on browse.
	if got := 1 / browse.AppServerTime; math.Abs(got-186) > 1e-6 {
		t.Fatalf("browse app rate = %v, want 186", got)
	}
	// Table 2 ratios: buy/browse app time 8.761/4.505, calls 2 vs 1.14.
	ratio := buy.AppServerTime / browse.AppServerTime
	if math.Abs(ratio-8.761/4.505) > 1e-9 {
		t.Fatalf("buy/browse demand ratio = %v", ratio)
	}
	if browse.DBCallsPerRequest != 1.14 || buy.DBCallsPerRequest != 2 {
		t.Fatal("db calls per request do not match Table 2")
	}
}

func TestServerAndDBValidate(t *testing.T) {
	if err := CaseStudyDB().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ServerArch{
		{Name: "", Speed: 1, MPL: 1, MaxThroughputTypical: 1},
		{Name: "x", Speed: 0, MPL: 1, MaxThroughputTypical: 1},
		{Name: "x", Speed: 1, MPL: 0, MaxThroughputTypical: 1},
		{Name: "x", Speed: 1, MPL: 1, MaxThroughputTypical: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("server case %d should fail", i)
		}
	}
	badDB := []DBServer{
		{Name: "", Speed: 1, MPL: 1},
		{Name: "x", Speed: 0, MPL: 1},
		{Name: "x", Speed: 1, MPL: 0},
	}
	for i, d := range badDB {
		if err := d.Validate(); err == nil {
			t.Fatalf("db case %d should fail", i)
		}
	}
}

// Property: MixedWorkload always conserves the total client count and
// produces request fractions within [0,1] that sum to 1.
func TestMixedWorkloadConservesClientsProperty(t *testing.T) {
	f := func(clients int, buyFrac float64) bool {
		clients = int(math.Abs(float64(clients%100000))) + 1
		buyFrac = math.Mod(math.Abs(buyFrac), 1)
		w := MixedWorkload(clients, buyFrac)
		if w.TotalClients() != clients {
			return false
		}
		browse := w.RequestFraction(Browse)
		buy := w.RequestFraction(Buy)
		return browse >= 0 && buy >= 0 && math.Abs(browse+buy-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Regression: open populations used to carry 0 weight in
// RequestFraction/ClassFraction, so a workload whose traffic arrived
// entirely through open streams reported every fraction as 0 even
// though the streams carried all the traffic. Open streams now weigh
// by arrival-rate share.
func TestOpenWorkloadFractions(t *testing.T) {
	w := Workload{
		{Class: BrowseClass(0), ArrivalRate: 30},
		{Class: BuyClass(0), ArrivalRate: 10},
	}
	if got := w.ClassFraction("browse"); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("open browse class fraction = %v, want 0.75", got)
	}
	if got := w.ClassFraction("buy"); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("open buy class fraction = %v, want 0.25", got)
	}
	if got := w.RequestFraction(Browse); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("open browse request fraction = %v, want 0.75", got)
	}
	if got := w.RequestFraction(Buy); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("open buy request fraction = %v, want 0.25", got)
	}
}

// A single open stream carrying all the traffic must report fraction 1
// for its own class and mix — the exact shape of the original bug.
func TestSingleOpenStreamCarriesAllTraffic(t *testing.T) {
	w := OpenWorkload(BrowseClass(0), 25)
	if got := w.ClassFraction("browse"); got != 1 {
		t.Fatalf("sole open stream class fraction = %v, want 1", got)
	}
	if got := w.RequestFraction(Browse); got != 1 {
		t.Fatalf("sole open stream request fraction = %v, want 1", got)
	}
	if got := w.RequestFraction(Buy); got != 0 {
		t.Fatalf("absent type request fraction = %v, want 0", got)
	}
}

// Closed-only workloads keep the legacy client-share semantics
// unchanged, and mixed open+closed workloads blend both weights.
func TestMixedOpenClosedFractions(t *testing.T) {
	closedOnly := MixedWorkload(100, 0.25)
	if got := closedOnly.RequestFraction(Buy); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("closed-only buy fraction = %v, want 0.25", got)
	}
	mixed := Workload{
		{Class: BrowseClass(0), Clients: 60},
		{Class: BuyClass(0), ArrivalRate: 20},
	}
	if got := mixed.ClassFraction("buy"); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("mixed buy class fraction = %v, want 20/80 = 0.25", got)
	}
	sum := mixed.RequestFraction(Browse) + mixed.RequestFraction(Buy)
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("mixed request fractions sum to %v, want 1", sum)
	}
}
