package workload

// This file pins down the paper's §3 case study so every experiment in
// the repository runs against one canonical configuration.
//
// The physical testbed (WebSphere + Trade on P3/P4 machines, DB2 on an
// Athlon) is substituted by the discrete-event simulator in
// internal/trade. Ground-truth service demands are chosen so the
// simulator reproduces the paper's benchmarked max throughputs — 86,
// 186 and 320 requests/second for AppServS, AppServF and AppServVF
// under the typical workload — with the browse/buy demand and
// database-call ratios of the paper's Table 2.

// Case-study constants (§3, §5.1).
const (
	// ThinkTimeMean is the IBM-recommended 7-second exponential mean
	// client think time.
	ThinkTimeMean = 7.0

	// AppServerMPL and DBServerMPL are the time-sharing
	// multiprogramming levels: "the application and database servers
	// can process 50 and 20 requests at the same time" (§5.1).
	AppServerMPL = 50
	DBServerMPL  = 20

	// MaxThroughputS/F/VF are the benchmarked typical-workload max
	// throughputs of the three architectures, requests/second (§3.2).
	MaxThroughputS  = 86.0
	MaxThroughputF  = 186.0
	MaxThroughputVF = 320.0

	// BuyRequestsPerSession is the mean number of sequential buy
	// requests a buy client makes before logging off (§3.1), giving
	// the mean portfolio size of 5.5.
	BuyRequestsPerSession = 10

	// StandardBuyFraction is Trade's standard 10% purchase share used
	// by the resource-management study (§9.1).
	StandardBuyFraction = 0.10
)

// Ground-truth demands on the reference architecture (AppServF). The
// app-server time is 1/186 s so that AppServF saturates at the paper's
// 186 requests/second; DB numbers carry over the paper's Table 2
// values (0.8294 ms/call at 1.14 calls per browse request; 1.613
// ms/call at 2 calls per buy request), and the buy/browse app-time
// ratio carries over Table 2's 8.761/4.505.
var (
	browseDemandF = Demand{
		AppServerTime:     1.0 / MaxThroughputF,
		DBTimePerCall:     0.0008294,
		DBCallsPerRequest: 1.14,
	}
	buyDemandF = Demand{
		AppServerTime:     (8.761 / 4.505) / MaxThroughputF,
		DBTimePerCall:     0.001613,
		DBCallsPerRequest: 2,
	}
)

// CaseStudyDemands returns the ground-truth per-request-type demands
// on the reference architecture (AppServF).
func CaseStudyDemands() map[RequestType]Demand {
	return map[RequestType]Demand{
		Browse: browseDemandF,
		Buy:    buyDemandF,
	}
}

// AppServS returns the new 'slow' architecture (paper: P3 450 MHz,
// 128 MB heap; max throughput 86 req/s). It is the architecture with
// no historical data, for which predictions are required.
func AppServS() ServerArch {
	return ServerArch{
		Name:                 "AppServS",
		Speed:                MaxThroughputS / MaxThroughputF,
		MPL:                  AppServerMPL,
		MaxThroughputTypical: MaxThroughputS,
		Established:          false,
	}
}

// AppServF returns the established 'fast' reference architecture
// (paper: P4 1.8 GHz, 256 MB heap; max throughput 186 req/s).
func AppServF() ServerArch {
	return ServerArch{
		Name:                 "AppServF",
		Speed:                1.0,
		MPL:                  AppServerMPL,
		MaxThroughputTypical: MaxThroughputF,
		Established:          true,
	}
}

// AppServVF returns the established 'very fast' architecture (paper:
// P4 2.66 GHz, 256 MB heap; max throughput 320 req/s).
func AppServVF() ServerArch {
	return ServerArch{
		Name:                 "AppServVF",
		Speed:                MaxThroughputVF / MaxThroughputF,
		MPL:                  AppServerMPL,
		MaxThroughputTypical: MaxThroughputVF,
		Established:          true,
	}
}

// CaseStudyServers returns the three §3.2 architectures in
// slow-to-fast order.
func CaseStudyServers() []ServerArch {
	return []ServerArch{AppServS(), AppServF(), AppServVF()}
}

// CaseStudyDB returns the shared database server (paper: Athlon
// 1.4 GHz, 512 MB, DB2 7.2).
func CaseStudyDB() DBServer {
	return DBServer{Name: "DBServ", Speed: 1.0, MPL: DBServerMPL}
}

// BrowseClass returns the 'browse' service class: all requests drawn
// from Trade's representative browse mix, which this model reduces to
// the browse request type. goalRT 0 means no SLA goal.
func BrowseClass(goalRT float64) ServiceClass {
	return ServiceClass{
		Name:          "browse",
		Mix:           Mix{Browse: 1.0},
		ThinkTimeMean: ThinkTimeMean,
		GoalRT:        goalRT,
	}
}

// BuyClass returns the 'buy' service class: register/login, a run of
// buy operations, then logoff. Its requests are the buy request type.
func BuyClass(goalRT float64) ServiceClass {
	return ServiceClass{
		Name:          "buy",
		Mix:           Mix{Buy: 1.0},
		ThinkTimeMean: ThinkTimeMean,
		GoalRT:        goalRT,
	}
}

// TypicalWorkload is the paper's simplification: the typical workload
// is all browse clients (§3.1).
func TypicalWorkload(clients int) Workload {
	return Workload{{Class: BrowseClass(0), Clients: clients}}
}

// MixedWorkload returns a workload with the given total clients split
// between buy (fraction buyFrac) and browse clients, as used by the
// heterogeneous-workload experiments (figure 4).
func MixedWorkload(clients int, buyFrac float64) Workload {
	buy := int(float64(clients)*buyFrac + 0.5)
	return Workload{
		{Class: BuyClass(0), Clients: buy},
		{Class: BrowseClass(0), Clients: clients - buy},
	}
}
