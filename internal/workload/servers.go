package workload

import (
	"errors"
	"fmt"
)

// ServerArch describes an application-server architecture. The
// prediction methods never see physical hardware — only the relative
// request-processing speed and the max-throughput benchmark that the
// paper's supporting services provide (§2: "allowing
// application-specific benchmarks to be run on new server
// architectures so as to calibrate their request processing speeds").
type ServerArch struct {
	// Name labels the architecture (AppServS/AppServF/AppServVF in the
	// case study).
	Name string
	// Speed is the request-processing speed relative to the reference
	// architecture (AppServF = 1.0).
	Speed float64
	// MPL is the number of requests the server processes at the same
	// time via time-sharing (50 in the case study).
	MPL int
	// MaxThroughputTypical is the benchmarked max throughput under the
	// typical (all-browse) workload, requests/second. This is the
	// supporting-service measurement every method keys on.
	MaxThroughputTypical float64
	// Established marks architectures with historical data available;
	// predictions for non-established ("new") architectures are the
	// paper's headline use case.
	Established bool
}

// Validate reports the first structural problem with the architecture.
func (a ServerArch) Validate() error {
	switch {
	case a.Name == "":
		return errors.New("workload: server arch needs a name")
	case a.Speed <= 0:
		return fmt.Errorf("workload: server %q needs positive speed", a.Name)
	case a.MPL <= 0:
		return fmt.Errorf("workload: server %q needs positive MPL", a.Name)
	case a.MaxThroughputTypical <= 0:
		return fmt.Errorf("workload: server %q needs positive max throughput", a.Name)
	}
	return nil
}

// DBServer describes the shared database server of an application: a
// time-sharing server with one FIFO queue per application server (§2).
type DBServer struct {
	Name  string
	Speed float64
	// MPL is the number of requests processed concurrently via
	// time-sharing (20 in the case study).
	MPL int
}

// Validate reports the first structural problem with the database
// server.
func (d DBServer) Validate() error {
	switch {
	case d.Name == "":
		return errors.New("workload: db server needs a name")
	case d.Speed <= 0:
		return fmt.Errorf("workload: db server %q needs positive speed", d.Name)
	case d.MPL <= 0:
		return fmt.Errorf("workload: db server %q needs positive MPL", d.Name)
	}
	return nil
}
