package hist

import (
	"math"
	"testing"

	"perfpred/internal/workload"
)

// syntheticPoints generates exact data points from a known model's
// lower and upper equations: nl points below the transition band and
// nu above it.
func syntheticPoints(m *ServerModel, nl, nu int) []DataPoint {
	nStar := m.SaturationClients()
	var pts []DataPoint
	for i := 0; i < nl; i++ {
		n := (0.1 + 0.5*float64(i)/float64(nl)) * nStar
		pts = append(pts, DataPoint{Clients: n, MeanRT: m.Lower(n), Samples: 50})
	}
	for i := 0; i < nu; i++ {
		n := (1.15 + 0.5*float64(i)/float64(nu)) * nStar
		pts = append(pts, DataPoint{Clients: n, MeanRT: m.Upper(n), Samples: 50})
	}
	return pts
}

func TestCalibrateGradient(t *testing.T) {
	m, err := CalibrateGradient([]ThroughputPoint{
		{Clients: 100, Throughput: 14},
		{Clients: 500, Throughput: 70},
		{Clients: 900, Throughput: 126},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-0.14) > 1e-9 {
		t.Fatalf("m = %v, want 0.14", m)
	}
	// A single point also works (ratio).
	m, err = CalibrateGradient([]ThroughputPoint{{Clients: 200, Throughput: 28}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-0.14) > 1e-9 {
		t.Fatalf("single-point m = %v, want 0.14", m)
	}
	if _, err := CalibrateGradient(nil); err == nil {
		t.Fatal("expected error for no points")
	}
}

func TestCalibrateServerRecoversTruth(t *testing.T) {
	truth := caseModelF()
	pts := syntheticPoints(truth, 4, 4)
	got, err := CalibrateServer(truth.Arch, truth.MaxThroughput, truth.M, pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.CL-truth.CL)/truth.CL > 1e-6 {
		t.Fatalf("cL = %v, want %v", got.CL, truth.CL)
	}
	if math.Abs(got.LambdaL-truth.LambdaL)/truth.LambdaL > 1e-6 {
		t.Fatalf("λL = %v, want %v", got.LambdaL, truth.LambdaL)
	}
	if math.Abs(got.LambdaU-truth.LambdaU)/truth.LambdaU > 1e-6 {
		t.Fatalf("λU = %v, want %v", got.LambdaU, truth.LambdaU)
	}
	if math.Abs(got.CU-truth.CU) > 1e-6 {
		t.Fatalf("cU = %v, want %v", got.CU, truth.CU)
	}
}

func TestCalibrateServerTwoPointsSuffice(t *testing.T) {
	// The paper's headline: accurate calibration with nldp = nudp = 2.
	truth := caseModelF()
	pts := syntheticPoints(truth, 2, 2)
	got, err := CalibrateServer(truth.Arch, truth.MaxThroughput, truth.M, pts)
	if err != nil {
		t.Fatal(err)
	}
	nStar := truth.SaturationClients()
	for _, n := range []float64{0.2 * nStar, 0.5 * nStar, 1.3 * nStar, 1.8 * nStar} {
		want := truth.Predict(n)
		if math.Abs(got.Predict(n)-want)/want > 1e-6 {
			t.Fatalf("two-point model predict(%v) = %v, want %v", n, got.Predict(n), want)
		}
	}
}

func TestCalibrateServerErrors(t *testing.T) {
	truth := caseModelF()
	pts := syntheticPoints(truth, 4, 4)
	if _, err := CalibrateServer(truth.Arch, 0, truth.M, pts); err == nil {
		t.Fatal("zero max throughput should fail")
	}
	if _, err := CalibrateServer(truth.Arch, truth.MaxThroughput, 0, pts); err == nil {
		t.Fatal("zero gradient should fail")
	}
	// Only lower points: cannot fit the upper equation.
	if _, err := CalibrateServer(truth.Arch, truth.MaxThroughput, truth.M, syntheticPoints(truth, 4, 0)); err == nil {
		t.Fatal("missing upper points should fail")
	}
	if _, err := CalibrateServer(truth.Arch, truth.MaxThroughput, truth.M, syntheticPoints(truth, 0, 4)); err == nil {
		t.Fatal("missing lower points should fail")
	}
	bad := append(syntheticPoints(truth, 2, 2), DataPoint{Clients: -5, MeanRT: 0.1})
	if _, err := CalibrateServer(truth.Arch, truth.MaxThroughput, truth.M, bad); err == nil {
		t.Fatal("negative clients should fail")
	}
	// Points inside the transition band are ignored, which can starve
	// an equation of data.
	nStar := truth.SaturationClients()
	onlyTransition := []DataPoint{
		{Clients: 0.8 * nStar, MeanRT: 0.3},
		{Clients: 0.9 * nStar, MeanRT: 0.4},
		{Clients: 1.2 * nStar, MeanRT: 1.0},
		{Clients: 1.5 * nStar, MeanRT: 2.0},
	}
	if _, err := CalibrateServer(truth.Arch, truth.MaxThroughput, truth.M, onlyTransition); err == nil {
		t.Fatal("transition-band-only lower data should fail")
	}
}

func TestEvaluateAccuracy(t *testing.T) {
	truth := caseModelF()
	exact := syntheticPoints(truth, 3, 3)
	if acc := EvaluateAccuracy(truth, exact); math.Abs(acc-100) > 1e-6 {
		t.Fatalf("accuracy on exact data = %v, want 100", acc)
	}
	// 10% inflated measurements → ~90.9% accuracy (|p-a|/a with a=1.1p).
	inflated := make([]DataPoint, len(exact))
	for i, p := range exact {
		inflated[i] = DataPoint{Clients: p.Clients, MeanRT: p.MeanRT * 1.1}
	}
	acc := EvaluateAccuracy(truth, inflated)
	if math.Abs(acc-(100-100*0.1/1.1)) > 0.01 {
		t.Fatalf("accuracy on inflated data = %v", acc)
	}
}

func TestEvaluateEquationAccuracy(t *testing.T) {
	truth := caseModelF()
	pts := syntheticPoints(truth, 3, 3)
	lower, upper, overall := EvaluateEquationAccuracy(truth, pts)
	if math.Abs(lower-100) > 1e-6 || math.Abs(upper-100) > 1e-6 {
		t.Fatalf("per-equation accuracies = %v/%v, want 100/100", lower, upper)
	}
	if math.Abs(overall-(lower+upper)/2) > 1e-9 {
		t.Fatalf("overall = %v, want mean of equations", overall)
	}
	// Only lower-region points: overall equals the lower accuracy.
	_, _, lowOnly := EvaluateEquationAccuracy(truth, syntheticPoints(truth, 3, 0))
	if math.Abs(lowOnly-100) > 1e-6 {
		t.Fatalf("lower-only overall = %v", lowOnly)
	}
}

func TestRelationship2ExactRecovery(t *testing.T) {
	// Build two established models whose parameters follow exact §4.2
	// scaling laws, fit relationship 2, and predict a third server.
	mkModel := func(x float64, arch workload.ServerArch) *ServerModel {
		return &ServerModel{
			Arch:          arch,
			MaxThroughput: x,
			CL:            0.0002*x + 0.05,         // linear in X
			LambdaL:       3.0 * math.Pow(x, -1.8), // power law in X
			LambdaU:       1.0 / x,                 // inverse in X
			CU:            -7,                      // constant
			M:             0.14,
		}
	}
	f := mkModel(186, workload.AppServF())
	vf := mkModel(320, workload.AppServVF())
	rel2, err := FitRelationship2([]*ServerModel{f, vf})
	if err != nil {
		t.Fatal(err)
	}
	s, err := rel2.NewServerModel(workload.AppServS(), 86)
	if err != nil {
		t.Fatal(err)
	}
	want := mkModel(86, workload.AppServS())
	if math.Abs(s.CL-want.CL)/want.CL > 1e-6 {
		t.Fatalf("new server cL = %v, want %v", s.CL, want.CL)
	}
	if math.Abs(s.LambdaL-want.LambdaL)/want.LambdaL > 1e-6 {
		t.Fatalf("new server λL = %v, want %v", s.LambdaL, want.LambdaL)
	}
	if math.Abs(s.LambdaU-want.LambdaU)/want.LambdaU > 1e-6 {
		t.Fatalf("new server λU = %v, want %v", s.LambdaU, want.LambdaU)
	}
	if s.CU != -7 || s.M != 0.14 {
		t.Fatalf("cU/m not carried: %v/%v", s.CU, s.M)
	}
}

func TestRelationship2Errors(t *testing.T) {
	if _, err := FitRelationship2([]*ServerModel{caseModelF()}); err == nil {
		t.Fatal("one model should fail")
	}
	f := caseModelF()
	vf := caseModelF()
	vf.MaxThroughput = 320
	rel2, err := FitRelationship2([]*ServerModel{f, vf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rel2.NewServerModel(workload.AppServS(), 0); err == nil {
		t.Fatal("zero max throughput should fail")
	}
}

func TestRelationship3(t *testing.T) {
	// The paper's LQNS-generated points: AppServF at 189 and 158 req/s
	// for 0% and 25% buy.
	rel3, err := FitRelationship3([]BuyPoint{
		{BuyPct: 0, MaxThroughput: 189},
		{BuyPct: 25, MaxThroughput: 158},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rel3.EstablishedMaxThroughput(0); math.Abs(got-189) > 1e-9 {
		t.Fatalf("X_E(0) = %v", got)
	}
	if got := rel3.EstablishedMaxThroughput(25); math.Abs(got-158) > 1e-9 {
		t.Fatalf("X_E(25) = %v", got)
	}
	// Equation 5 for the new server with X_N(0) = 86.
	got, err := rel3.NewServerMaxThroughput(86, 25)
	if err != nil {
		t.Fatal(err)
	}
	want := 158.0 * 86 / 189
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("X_N(25) = %v, want %v", got, want)
	}
	if _, err := rel3.NewServerMaxThroughput(0, 25); err == nil {
		t.Fatal("zero new-server throughput should fail")
	}
}

func TestRelationship3Errors(t *testing.T) {
	if _, err := FitRelationship3([]BuyPoint{{BuyPct: 0, MaxThroughput: 189}}); err == nil {
		t.Fatal("one point should fail")
	}
	if _, err := FitRelationship3([]BuyPoint{
		{BuyPct: -5, MaxThroughput: 189}, {BuyPct: 25, MaxThroughput: 158},
	}); err == nil {
		t.Fatal("negative buy pct should fail")
	}
	if _, err := FitRelationship3([]BuyPoint{
		{BuyPct: 0, MaxThroughput: 0}, {BuyPct: 25, MaxThroughput: 158},
	}); err == nil {
		t.Fatal("zero throughput should fail")
	}
}
