package hist

import (
	"errors"
	"fmt"
	"sort"

	"perfpred/internal/stats"
	"perfpred/internal/workload"
)

// ThroughputPoint is one (clients, throughput) observation below max
// throughput, used to calibrate the gradient m.
type ThroughputPoint struct {
	Clients    float64
	Throughput float64
}

// CalibrateGradient fits the through-origin clients→throughput
// gradient m from observations below saturation (§4.1). The value
// depends on the think time and is shared across architectures.
func CalibrateGradient(points []ThroughputPoint) (float64, error) {
	if len(points) == 0 {
		return 0, errors.New("hist: no throughput points")
	}
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		xs[i] = p.Clients
		ys[i] = p.Throughput
	}
	if len(points) == 1 {
		if xs[0] <= 0 {
			return 0, errors.New("hist: throughput point needs positive clients")
		}
		return ys[0] / xs[0], nil
	}
	m, err := stats.FitProportional(xs, ys)
	if err != nil {
		return 0, err
	}
	if m <= 0 {
		return 0, fmt.Errorf("hist: non-positive gradient %v", m)
	}
	return m, nil
}

// PredictGradient returns the clients→throughput gradient for a given
// mean client think time: below saturation a closed client cycles
// through one think and one response per request, so X = N/(Z + R₀)
// and m = 1/(Z + R₀) with R₀ the light-load response time. This is
// §4.1's observation that m "depends on and can be predicted from the
// mean client think-time, but does not vary due to different server
// CPU speeds" — which lets one server's gradient transfer to another,
// and a 7-second-think gradient rescale to any other think time.
func PredictGradient(thinkTime, lightLoadRT float64) (float64, error) {
	if thinkTime < 0 || lightLoadRT < 0 || thinkTime+lightLoadRT <= 0 {
		return 0, errors.New("hist: think time and light-load RT must be non-negative and not both zero")
	}
	return 1 / (thinkTime + lightLoadRT), nil
}

// RescaleGradient converts a gradient calibrated at one think time to
// another think time, holding the light-load response time implied by
// the original calibration: if m = 1/(Z+R₀) then R₀ = 1/m − Z.
func RescaleGradient(m, oldThink, newThink float64) (float64, error) {
	if m <= 0 {
		return 0, errors.New("hist: gradient must be positive")
	}
	r0 := 1/m - oldThink
	if r0 < 0 {
		// Sampling noise can push a measured gradient a hair past the
		// 1/Z ceiling; tolerate up to 2% and clamp, reject more.
		if r0 < -0.02/m {
			return 0, fmt.Errorf("hist: gradient %v is impossible for think time %v", m, oldThink)
		}
		r0 = 0
	}
	return PredictGradient(newThink, r0)
}

// CalibrateServer fits relationship 1 for one server from historical
// data points. The lower exponential equation is fitted (least
// squares on the log) to points at or below 66% of the max-throughput
// load and the upper linear equation to points at or above 110%; the
// paper shows nldp = nudp = 2 points suffice. maxThroughput is the
// server's benchmarked max throughput and m the shared gradient.
func CalibrateServer(arch workload.ServerArch, maxThroughput, m float64, points []DataPoint) (*ServerModel, error) {
	if maxThroughput <= 0 {
		return nil, errors.New("hist: max throughput must be positive")
	}
	if m <= 0 {
		return nil, errors.New("hist: gradient must be positive")
	}
	nStar := maxThroughput / m
	var lower, upper []DataPoint
	for _, p := range points {
		if p.Clients <= 0 || p.MeanRT <= 0 {
			return nil, fmt.Errorf("hist: invalid data point (%v clients, %v s)", p.Clients, p.MeanRT)
		}
		switch {
		case p.Clients <= TransitionLow*nStar:
			lower = append(lower, p)
		case p.Clients >= TransitionHigh*nStar:
			upper = append(upper, p)
		}
		// Points inside the transition band calibrate neither equation.
	}
	if len(lower) < 2 {
		return nil, fmt.Errorf("hist: need at least 2 lower data points (below %.0f clients), have %d", TransitionLow*nStar, len(lower))
	}
	if len(upper) < 2 {
		return nil, fmt.Errorf("hist: need at least 2 upper data points (above %.0f clients), have %d", TransitionHigh*nStar, len(upper))
	}

	expFit, err := stats.FitExponential(split(lower))
	if err != nil {
		return nil, fmt.Errorf("hist: lower equation fit: %w", err)
	}
	linFit, err := stats.FitLinear(split(upper))
	if err != nil {
		return nil, fmt.Errorf("hist: upper equation fit: %w", err)
	}
	model := &ServerModel{
		Arch:          arch,
		MaxThroughput: maxThroughput,
		CL:            expFit.Coeff,
		LambdaL:       expFit.Rate,
		LambdaU:       linFit.Slope,
		CU:            linFit.Intercept,
		M:             m,
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return model, nil
}

func split(points []DataPoint) (xs, ys []float64) {
	sorted := make([]DataPoint, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Clients < sorted[j].Clients })
	xs = make([]float64, len(sorted))
	ys = make([]float64, len(sorted))
	for i, p := range sorted {
		xs[i] = p.Clients
		ys[i] = p.MeanRT
	}
	return xs, ys
}

// EvaluateAccuracy scores the model against measured data points with
// the paper's accuracy metric (100% − mean relative error). It is the
// HYDRA facility for "testing the accuracy of relationships on
// variable quantities of historical data".
func EvaluateAccuracy(m *ServerModel, measured []DataPoint) float64 {
	pred := make([]float64, len(measured))
	act := make([]float64, len(measured))
	for i, p := range measured {
		pred[i] = m.Predict(p.Clients)
		act[i] = p.MeanRT
	}
	return stats.Accuracy(pred, act)
}

// EvaluateEquationAccuracy scores the lower and upper equations
// separately — the paper's per-equation accuracies of figure 3 — and
// returns their mean as the overall accuracy ("the overall predictive
// accuracy is defined as the mean of the lower equation accuracy and
// the upper equation accuracy").
func EvaluateEquationAccuracy(m *ServerModel, measured []DataPoint) (lower, upper, overall float64) {
	nStar := m.SaturationClients()
	var lp, la, up, ua []float64
	for _, p := range measured {
		pred := m.Predict(p.Clients)
		if p.Clients < nStar {
			lp = append(lp, pred)
			la = append(la, p.MeanRT)
		} else {
			up = append(up, pred)
			ua = append(ua, p.MeanRT)
		}
	}
	lower = stats.Accuracy(lp, la)
	upper = stats.Accuracy(up, ua)
	switch {
	case len(la) == 0:
		return 0, upper, upper
	case len(ua) == 0:
		return lower, 0, lower
	default:
		return lower, upper, (lower + upper) / 2
	}
}
