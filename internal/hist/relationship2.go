package hist

import (
	"errors"
	"fmt"

	"perfpred/internal/stats"
	"perfpred/internal/workload"
)

// Relationship2 captures §4.2: how the relationship-1 parameters vary
// with a server's max throughput, fitted across established servers.
// Given only a new architecture's max-throughput benchmark it yields a
// full ServerModel — the method's route to predicting servers it has
// never observed.
type Relationship2 struct {
	// CL varies linearly with max throughput:
	// cL = Δ(cL)·X + C(cL) (equation 3).
	CL stats.LinearModel
	// LambdaL varies as a power law:
	// λL = C(λL)·X^Δ(λL) (equation 4).
	LambdaL stats.PowerModel
	// LambdaURef and XRef anchor the inverse scaling of λU: a z%
	// change in max throughput changes λU by roughly 1/z, so
	// λU(X) = LambdaURef·XRef/X.
	LambdaURef float64
	XRef       float64
	// CU is roughly constant across architectures; the mean of the
	// established servers' values.
	CU float64
	// M is the shared clients→throughput gradient.
	M float64
}

// FitRelationship2 fits the §4.2 scaling functions across two or more
// established server models.
func FitRelationship2(models []*ServerModel) (*Relationship2, error) {
	if len(models) < 2 {
		return nil, errors.New("hist: relationship 2 needs at least two established servers")
	}
	xs := make([]float64, len(models))
	cls := make([]float64, len(models))
	lls := make([]float64, len(models))
	var cuSum, m float64
	for i, sm := range models {
		if err := sm.Validate(); err != nil {
			return nil, fmt.Errorf("hist: established model %d: %w", i, err)
		}
		xs[i] = sm.MaxThroughput
		cls[i] = sm.CL
		lls[i] = sm.LambdaL
		cuSum += sm.CU
		if i == 0 {
			m = sm.M
		}
	}
	clFit, err := stats.FitLinear(xs, cls)
	if err != nil {
		return nil, fmt.Errorf("hist: cL fit: %w", err)
	}
	llFit, err := stats.FitPower(xs, lls)
	if err != nil {
		return nil, fmt.Errorf("hist: λL fit: %w", err)
	}
	ref := models[0]
	return &Relationship2{
		CL:         clFit,
		LambdaL:    llFit,
		LambdaURef: ref.LambdaU,
		XRef:       ref.MaxThroughput,
		CU:         cuSum / float64(len(models)),
		M:          m,
	}, nil
}

// NewServerModel predicts a ServerModel for a new architecture from
// its benchmarked typical-workload max throughput.
func (r *Relationship2) NewServerModel(arch workload.ServerArch, maxThroughput float64) (*ServerModel, error) {
	if maxThroughput <= 0 {
		return nil, errors.New("hist: max throughput must be positive")
	}
	cl := r.CL.Eval(maxThroughput)
	if cl <= 0 {
		// A linear extrapolation can cross zero far outside the
		// calibrated range; clamp to a small positive floor so the
		// lower equation stays well-formed.
		cl = 1e-6
	}
	model := &ServerModel{
		Arch:          arch,
		MaxThroughput: maxThroughput,
		CL:            cl,
		LambdaL:       r.LambdaL.Eval(maxThroughput),
		LambdaU:       r.LambdaURef * r.XRef / maxThroughput,
		CU:            r.CU,
		M:             r.M,
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return model, nil
}
