package hist

import (
	"errors"
	"fmt"
	"math"

	"perfpred/internal/rtdist"
	"perfpred/internal/workload"
)

// Transition bounds: the paper found phasing between the lower and
// upper equations "between 66% and 110% of the max throughput load"
// effective in its experimental setup.
const (
	TransitionLow  = 0.66
	TransitionHigh = 1.10
)

// DataPoint is one historical measurement: the mean response time
// observed at a client population (averaged across Samples samples).
type DataPoint struct {
	Clients float64
	// MeanRT is the mean response time in seconds.
	MeanRT float64
	// Samples records how many response-time samples the mean
	// averages (ns in the paper; 50 suffices).
	Samples int
}

// ServerModel is the calibrated relationship-1 model for one server
// architecture: the paper's (cL, λL, λU, cU, m) parameter set plus the
// benchmarked max throughput that anchors the lower/upper split.
type ServerModel struct {
	// Arch is the architecture this model predicts.
	Arch workload.ServerArch
	// MaxThroughput is the server's max throughput under the workload
	// being modelled, requests/second.
	MaxThroughput float64
	// CL and LambdaL parameterise the lower equation
	// mrt = CL·e^(LambdaL·N).
	CL, LambdaL float64
	// LambdaU and CU parameterise the upper equation
	// mrt = LambdaU·N + CU.
	LambdaU, CU float64
	// M is the clients→throughput gradient (X = M·N below max
	// throughput); it depends on the think time, not the CPU speed.
	M float64
}

// Validate reports the first structural problem with the model.
func (s *ServerModel) Validate() error {
	switch {
	case s.MaxThroughput <= 0:
		return errors.New("hist: max throughput must be positive")
	case s.CL <= 0:
		return errors.New("hist: cL must be positive")
	case s.M <= 0:
		return errors.New("hist: gradient m must be positive")
	case s.LambdaU <= 0:
		return errors.New("hist: λU must be positive")
	}
	return nil
}

// SaturationClients returns the client population at max throughput
// (N* = Xmax / m), the anchor of the lower/upper split.
func (s *ServerModel) SaturationClients() float64 {
	return s.MaxThroughput / s.M
}

// Lower evaluates the lower (pre-saturation) equation at n clients.
func (s *ServerModel) Lower(n float64) float64 {
	return s.CL * math.Exp(s.LambdaL*n)
}

// Upper evaluates the upper (post-saturation) equation at n clients.
func (s *ServerModel) Upper(n float64) float64 {
	return s.LambdaU*n + s.CU
}

// Predict returns the predicted mean response time (seconds) at n
// clients, selecting the lower equation below 66% of the
// max-throughput load, the upper equation above 110%, and the
// transition exponential relationship in between.
func (s *ServerModel) Predict(n float64) float64 {
	nStar := s.SaturationClients()
	lo, hi := TransitionLow*nStar, TransitionHigh*nStar
	switch {
	case n <= lo:
		return s.Lower(n)
	case n >= hi:
		return s.Upper(n)
	default:
		// Transition exponential relationship (§4.1): an exponential
		// anchored at the lower equation's value at 66% of the
		// max-throughput load and the upper equation's value at 110%,
		// phasing continuously through the knee. The upper anchor is
		// floored just above the lower one so the curve stays positive
		// and monotone even when the upper line is still negative at
		// the start of the band.
		loVal := math.Max(s.Lower(lo), 1e-12)
		hiVal := math.Max(s.Upper(hi), loVal*(1+1e-9))
		rate := math.Log(hiVal/loVal) / (hi - lo)
		return loVal * math.Exp(rate*(n-lo))
	}
}

// Saturated reports whether n clients put the server at or past the
// max-throughput load — the flag §7.1's distribution selection needs.
func (s *ServerModel) Saturated(n float64) bool {
	return n >= s.SaturationClients()
}

// PredictThroughput returns the predicted throughput at n clients:
// linear with gradient M until max throughput, then constant (§4.1).
func (s *ServerModel) PredictThroughput(n float64) float64 {
	x := s.M * n
	if x > s.MaxThroughput {
		return s.MaxThroughput
	}
	return x
}

// PredictPercentile converts the mean prediction at n clients into a
// p-th percentile prediction (p a fraction in (0,1)) using the §7.1
// response-time distributions with Laplace scale b. Unlike the layered
// queuing method, the historical method could also record percentile
// metrics directly (§8.2); this extrapolation path is provided for the
// like-for-like comparison.
func (s *ServerModel) PredictPercentile(n, p, b float64) (float64, error) {
	return rtdist.PercentileFromMean(s.Predict(n), s.Saturated(n), b, p)
}

// MaxClients inverts the model (§8.2): the largest client population
// whose predicted mean response time stays at or below goalRT seconds.
// The historical method answers this in closed form by rewriting
// equations (1) and (2) in terms of the response time; the transition
// region falls back to a short bisection on the monotone Predict.
func (s *ServerModel) MaxClients(goalRT float64) (float64, error) {
	if goalRT <= 0 {
		return 0, errors.New("hist: goal response time must be positive")
	}
	nStar := s.SaturationClients()
	lo, hi := TransitionLow*nStar, TransitionHigh*nStar

	if s.Predict(lo) >= goalRT {
		// Invert the lower exponential: N = ln(goal/cL)/λL.
		if goalRT < s.CL {
			return 0, nil // even one client misses the goal
		}
		if s.LambdaL <= 0 {
			return lo, nil
		}
		return math.Log(goalRT/s.CL) / s.LambdaL, nil
	}
	if s.Predict(hi) <= goalRT {
		// Invert the upper linear: N = (goal − cU)/λU.
		return (goalRT - s.CU) / s.LambdaU, nil
	}
	// Transition region: bisect the monotone blend.
	for i := 0; i < 200 && hi-lo > 1e-6*(1+hi); i++ {
		mid := (lo + hi) / 2
		if s.Predict(mid) <= goalRT {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// String summarises the calibrated parameters in the layout of the
// paper's Table 1.
func (s *ServerModel) String() string {
	return fmt.Sprintf("%s: cL=%.1fms λL=%.3g λU=%.3gms cU=%.1fms m=%.3f Xmax=%.1f/s",
		s.Arch.Name, s.CL*1000, s.LambdaL, s.LambdaU*1000, s.CU*1000, s.M, s.MaxThroughput)
}
