package hist

import (
	"errors"
	"math"

	"perfpred/internal/stats"
)

// StabilisationPoint is one observation of the warm-up trajectory: the
// mean response time over a time bucket ending at Time seconds after
// cold start.
type StabilisationPoint struct {
	Time   float64
	MeanRT float64
}

// StabilisationModel captures how a server settles toward steady state
// after a cold start or a workload transfer:
//
//	rt(t) = Steady + (R0 − Steady) · e^(−t/Tau)
//
// The §8.2 discussion credits the historical method with being able to
// record "the time the server has been stabilising toward the steady
// state" as a variable — this model is that variable's fitted form,
// letting a resource manager discount measurements taken too early and
// predict when a freshly loaded server's numbers become trustworthy.
type StabilisationModel struct {
	// Steady is the settled mean response time, seconds.
	Steady float64
	// R0 is the extrapolated response time at t = 0.
	R0 float64
	// Tau is the exponential settling time constant, seconds.
	Tau float64
}

// FitStabilisation fits the exponential settling model to a cold-start
// trajectory. The steady level is estimated from the tail third of the
// points; the time constant comes from a log-linear fit of the decay
// of |rt − steady| over the points still meaningfully away from
// steady. It needs at least six points.
func FitStabilisation(points []StabilisationPoint) (*StabilisationModel, error) {
	if len(points) < 6 {
		return nil, errors.New("hist: need at least six stabilisation points")
	}
	for _, p := range points {
		if p.Time <= 0 || p.MeanRT < 0 {
			return nil, errors.New("hist: invalid stabilisation point")
		}
	}
	tail := points[len(points)*2/3:]
	var steady float64
	for _, p := range tail {
		steady += p.MeanRT
	}
	steady /= float64(len(tail))
	if steady <= 0 {
		return nil, errors.New("hist: degenerate steady level")
	}

	// Points whose gap from steady is large enough to carry decay
	// information (beyond measurement noise).
	noise := 0.02 * steady
	var ts, gaps []float64
	var signedGapSum float64
	for _, p := range points[:len(points)*2/3] {
		gap := math.Abs(p.MeanRT - steady)
		if gap > noise {
			ts = append(ts, p.Time)
			gaps = append(gaps, gap)
			signedGapSum += p.MeanRT - steady
		}
	}
	if len(ts) < 2 {
		// Already steady from the first bucket.
		return &StabilisationModel{Steady: steady, R0: steady, Tau: 0}, nil
	}
	expFit, err := stats.FitExponential(ts, gaps)
	if err != nil {
		return nil, err
	}
	if expFit.Rate >= 0 {
		// Not decaying: treat as already steady rather than fail, but
		// report an infinite time constant via Tau = 0 with R0 far
		// from steady so callers can see the misfit.
		return &StabilisationModel{Steady: steady, R0: steady, Tau: 0}, nil
	}
	tau := -1 / expFit.Rate
	// The approach direction (overshoot vs undershoot) is decided by the
	// aggregate of the fitted points, not the first bucket alone: a single
	// noisy early sample on the other side of steady would otherwise flip
	// R0's sign and invert the whole trajectory.
	sign := 1.0
	if signedGapSum < 0 {
		sign = -1
	}
	return &StabilisationModel{
		Steady: steady,
		R0:     steady + sign*expFit.Coeff,
		Tau:    tau,
	}, nil
}

// At returns the model's mean response time t seconds after cold
// start.
func (m *StabilisationModel) At(t float64) float64 {
	if m.Tau <= 0 {
		return m.Steady
	}
	return m.Steady + (m.R0-m.Steady)*math.Exp(-t/m.Tau)
}

// TimeToSteady returns how long after cold start the response time
// stays within the given relative tolerance of the steady level — the
// point after which historical samples are trustworthy. A zero Tau
// means immediately.
func (m *StabilisationModel) TimeToSteady(tolerance float64) float64 {
	if m.Tau <= 0 {
		return 0
	}
	if tolerance <= 0 {
		tolerance = 0.05
	}
	gap := math.Abs(m.R0 - m.Steady)
	if gap == 0 {
		return 0
	}
	target := tolerance * m.Steady
	if target >= gap {
		return 0
	}
	return m.Tau * math.Log(gap/target)
}
