package hist

import (
	"math"
	"testing"

	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

func TestPredictGradient(t *testing.T) {
	// Z = 7s, negligible RT: m ≈ 1/7 ≈ 0.143 — the case-study 0.14.
	m, err := PredictGradient(7, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-1/7.01) > 1e-12 {
		t.Fatalf("m = %v", m)
	}
	if _, err := PredictGradient(-1, 0.01); err == nil {
		t.Fatal("negative think should fail")
	}
	if _, err := PredictGradient(0, 0); err == nil {
		t.Fatal("zero-zero should fail")
	}
}

func TestRescaleGradient(t *testing.T) {
	// Calibrated m = 0.14 at Z = 7 implies R0 = 1/0.14 − 7 ≈ 0.143s;
	// rescaling to Z = 3.5 gives 1/(3.5+0.143) ≈ 0.2745.
	m, err := RescaleGradient(0.14, 7, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (3.5 + (1/0.14 - 7))
	if math.Abs(m-want) > 1e-12 {
		t.Fatalf("rescaled m = %v, want %v", m, want)
	}
	// Identity rescale.
	same, err := RescaleGradient(0.14, 7, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(same-0.14) > 1e-12 {
		t.Fatalf("identity rescale = %v", same)
	}
	if _, err := RescaleGradient(0, 7, 3); err == nil {
		t.Fatal("zero gradient should fail")
	}
	// m too large for the think time (would imply negative R0).
	if _, err := RescaleGradient(1, 7, 3); err == nil {
		t.Fatal("impossible gradient should fail")
	}
}

// TestGradientPredictionAgainstSimulator checks §4.1's claim on the
// simulated testbed: the gradient transfers across think times via
// m = 1/(Z+R₀), and does not vary with server CPU speed.
func TestGradientPredictionAgainstSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed test")
	}
	opt := trade.MeasureOptions{Seed: 37, WarmUp: 40, Duration: 140}
	measureM := func(arch workload.ServerArch, think float64, clients int) float64 {
		class := workload.ServiceClass{
			Name:          "browse",
			Mix:           workload.Mix{workload.Browse: 1},
			ThinkTimeMean: think,
		}
		res, err := trade.Measure(arch, workload.Workload{{Class: class, Clients: clients}}, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput / float64(clients)
	}

	// Calibrate at Z=7 on AppServF, well below saturation.
	m7 := measureM(workload.AppServF(), 7, 500)

	// Predict Z=3.5 and Z=14 by rescaling, then verify by measurement.
	for _, tc := range []struct {
		think   float64
		clients int
	}{
		{3.5, 300}, {14, 900},
	} {
		predicted, err := RescaleGradient(m7, 7, tc.think)
		if err != nil {
			t.Fatal(err)
		}
		measured := measureM(workload.AppServF(), tc.think, tc.clients)
		if math.Abs(predicted-measured)/measured > 0.05 {
			t.Fatalf("Z=%v: predicted m %v vs measured %v", tc.think, predicted, measured)
		}
	}

	// CPU speed invariance: the slow server's gradient matches at the
	// same think time (§4.1: m "does not vary due to different server
	// CPU speeds").
	mSlow := measureM(workload.AppServS(), 7, 250)
	if math.Abs(mSlow-m7)/m7 > 0.05 {
		t.Fatalf("gradient varies across speeds: S %v vs F %v", mSlow, m7)
	}
}
