package hist

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"perfpred/internal/workload"
)

func populatedStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	truth := caseModelF()
	if err := s.RecordGradient(truth.M); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordMaxThroughput("AppServF", TypicalWorkloadKey, truth.MaxThroughput); err != nil {
		t.Fatal(err)
	}
	for _, p := range syntheticPoints(truth, 2, 2) {
		if err := s.RecordPoint("AppServF", TypicalWorkloadKey, p); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestStoreRecordAndQuery(t *testing.T) {
	s := populatedStore(t)
	if got := s.Gradient(); got != 0.14 {
		t.Fatalf("gradient = %v", got)
	}
	x, ok := s.MaxThroughput("AppServF", TypicalWorkloadKey)
	if !ok || x != 186 {
		t.Fatalf("benchmark = %v, %v", x, ok)
	}
	if _, ok := s.MaxThroughput("AppServF", "buy=25"); ok {
		t.Fatal("missing workload key should report absent")
	}
	if _, ok := s.MaxThroughput("ghost", TypicalWorkloadKey); ok {
		t.Fatal("missing server should report absent")
	}
	pts := s.Points("AppServF", TypicalWorkloadKey)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Clients < pts[i-1].Clients {
			t.Fatal("points not sorted by clients")
		}
	}
	if got := s.Servers(); len(got) != 1 || got[0] != "AppServF" {
		t.Fatalf("servers = %v", got)
	}
	if s.Points("ghost", TypicalWorkloadKey) != nil {
		t.Fatal("missing server points should be nil")
	}
}

func TestStoreValidation(t *testing.T) {
	s := NewStore()
	if err := s.RecordPoint("", "k", DataPoint{Clients: 1, MeanRT: 1}); err == nil {
		t.Fatal("empty server should fail")
	}
	if err := s.RecordPoint("s", "", DataPoint{Clients: 1, MeanRT: 1}); err == nil {
		t.Fatal("empty workload key should fail")
	}
	if err := s.RecordPoint("s", "k", DataPoint{Clients: 0, MeanRT: 1}); err == nil {
		t.Fatal("invalid point should fail")
	}
	if err := s.RecordMaxThroughput("s", "k", 0); err == nil {
		t.Fatal("invalid benchmark should fail")
	}
	if err := s.RecordGradient(0); err == nil {
		t.Fatal("invalid gradient should fail")
	}
}

func TestStoreCalibrate(t *testing.T) {
	s := populatedStore(t)
	truth := caseModelF()
	model, err := s.Calibrate(workload.AppServF(), TypicalWorkloadKey)
	if err != nil {
		t.Fatal(err)
	}
	nStar := truth.SaturationClients()
	for _, n := range []float64{0.3 * nStar, 1.4 * nStar} {
		want := truth.Predict(n)
		got := model.Predict(n)
		if diff := (got - want) / want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("store-calibrated predict(%v) = %v, want %v", n, got, want)
		}
	}
	// Missing pieces produce targeted errors.
	empty := NewStore()
	if _, err := empty.Calibrate(workload.AppServF(), TypicalWorkloadKey); err == nil {
		t.Fatal("missing benchmark should fail")
	}
	if err := empty.RecordMaxThroughput("AppServF", TypicalWorkloadKey, 186); err != nil {
		t.Fatal(err)
	}
	if _, err := empty.Calibrate(workload.AppServF(), TypicalWorkloadKey); err == nil {
		t.Fatal("missing gradient should fail")
	}
	if err := empty.RecordGradient(0.14); err != nil {
		t.Fatal(err)
	}
	if _, err := empty.Calibrate(workload.AppServF(), TypicalWorkloadKey); err == nil {
		t.Fatal("missing points should fail")
	}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s := populatedStore(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back := NewStore()
	if err := back.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if back.Gradient() != s.Gradient() {
		t.Fatal("gradient lost in round trip")
	}
	if len(back.Points("AppServF", TypicalWorkloadKey)) != 4 {
		t.Fatal("points lost in round trip")
	}
	if err := back.Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage should fail to load")
	}
}

func TestStoreFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hydra.json")
	s := populatedStore(t)
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back := NewStore()
	if err := back.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := back.Calibrate(workload.AppServF(), TypicalWorkloadKey); err != nil {
		t.Fatalf("calibrate from reloaded store: %v", err)
	}
	// Missing files bootstrap silently.
	fresh := NewStore()
	if err := fresh.LoadFile(filepath.Join(t.TempDir(), "missing.json")); err != nil {
		t.Fatal(err)
	}
	if len(fresh.Servers()) != 0 {
		t.Fatal("fresh store should be empty")
	}
}

func TestStorePrune(t *testing.T) {
	s := NewStore()
	for i := 1; i <= 10; i++ {
		if err := s.RecordPoint("srv", "k", DataPoint{Clients: float64(i), MeanRT: 0.01}); err != nil {
			t.Fatal(err)
		}
	}
	s.Prune(3)
	pts := s.Points("srv", "k")
	if len(pts) != 3 {
		t.Fatalf("pruned to %d, want 3", len(pts))
	}
	// Most recent (largest client counts in this insertion order) kept.
	if pts[0].Clients != 8 || pts[2].Clients != 10 {
		t.Fatalf("kept wrong points: %+v", pts)
	}
	s.Prune(-1)
	if len(s.Points("srv", "k")) != 0 {
		t.Fatal("negative keep should clear")
	}
}
