package hist

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzStoreLoad hardens the HYDRA store's persistence path: arbitrary
// input either loads into a usable store or fails cleanly — never a
// panic, and whatever loads must save and re-load identically.
func FuzzStoreLoad(f *testing.F) {
	var seedBuf bytes.Buffer
	s := NewStore()
	_ = s.RecordGradient(0.14)
	_ = s.RecordMaxThroughput("AppServF", TypicalWorkloadKey, 186)
	_ = s.RecordPoint("AppServF", TypicalWorkloadKey, DataPoint{Clients: 100, MeanRT: 0.01, Samples: 50})
	_ = s.Save(&seedBuf)
	f.Add(seedBuf.String())
	f.Add(`{}`)
	f.Add(`{"gradient": -1}`)
	f.Add(`{"servers": {"x": {"points": {"k": [{"Clients": 1}]}}}}`)
	f.Add(`not json`)

	f.Fuzz(func(t *testing.T, doc string) {
		st := NewStore()
		if err := st.Load(strings.NewReader(doc)); err != nil {
			return
		}
		// Loaded stores must be queryable and round-trip.
		for _, srv := range st.Servers() {
			_ = st.Points(srv, TypicalWorkloadKey)
			_, _ = st.MaxThroughput(srv, TypicalWorkloadKey)
		}
		var buf bytes.Buffer
		if err := st.Save(&buf); err != nil {
			t.Fatalf("loaded store fails to save: %v", err)
		}
		again := NewStore()
		if err := again.Load(&buf); err != nil {
			t.Fatalf("saved store fails to re-load: %v", err)
		}
	})
}
