package hist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"perfpred/internal/workload"
)

// Store is HYDRA's historical performance data store: measured data
// points keyed by server architecture and workload signature, with the
// max-throughput benchmarks and gradient alongside, persisted as a
// JSON document. The paper's tool "allows the accuracy of
// relationships to be tested on variable quantities of historical
// data" — the store is what accumulates that data across benchmark
// runs and recalibrations.
type Store struct {
	mu   sync.RWMutex
	data storeData
}

type storeData struct {
	// Gradient is the shared clients→throughput gradient m (0 when
	// not yet calibrated).
	Gradient float64 `json:"gradient,omitempty"`
	// Servers maps architecture name to its records.
	Servers map[string]*serverRecord `json:"servers"`
}

type serverRecord struct {
	// MaxThroughput maps workload signature (e.g. "typical",
	// "buy=25") to the benchmarked max throughput.
	MaxThroughput map[string]float64 `json:"maxThroughput,omitempty"`
	// Points maps workload signature to recorded data points.
	Points map[string][]DataPoint `json:"points,omitempty"`
}

// TypicalWorkloadKey is the conventional signature for the all-browse
// typical workload.
const TypicalWorkloadKey = "typical"

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{data: storeData{Servers: make(map[string]*serverRecord)}}
}

func (s *Store) server(name string) *serverRecord {
	rec, ok := s.data.Servers[name]
	if !ok {
		rec = &serverRecord{
			MaxThroughput: make(map[string]float64),
			Points:        make(map[string][]DataPoint),
		}
		s.data.Servers[name] = rec
	}
	if rec.MaxThroughput == nil {
		rec.MaxThroughput = make(map[string]float64)
	}
	if rec.Points == nil {
		rec.Points = make(map[string][]DataPoint)
	}
	return rec
}

// RecordPoint appends a measured data point for the server under the
// workload signature.
func (s *Store) RecordPoint(server, workloadKey string, p DataPoint) error {
	if server == "" || workloadKey == "" {
		return errors.New("hist: store keys must be non-empty")
	}
	if p.Clients <= 0 || p.MeanRT <= 0 {
		return fmt.Errorf("hist: invalid data point %+v", p)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.server(server)
	rec.Points[workloadKey] = append(rec.Points[workloadKey], p)
	return nil
}

// RecordMaxThroughput stores a max-throughput benchmark.
func (s *Store) RecordMaxThroughput(server, workloadKey string, x float64) error {
	if server == "" || workloadKey == "" {
		return errors.New("hist: store keys must be non-empty")
	}
	if x <= 0 {
		return fmt.Errorf("hist: invalid max throughput %v", x)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.server(server).MaxThroughput[workloadKey] = x
	return nil
}

// RecordGradient stores the shared gradient m.
func (s *Store) RecordGradient(m float64) error {
	if m <= 0 {
		return fmt.Errorf("hist: invalid gradient %v", m)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data.Gradient = m
	return nil
}

// Gradient returns the stored gradient (0 when absent).
func (s *Store) Gradient() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data.Gradient
}

// MaxThroughput returns the stored benchmark for the server and
// workload, reporting whether it exists.
func (s *Store) MaxThroughput(server, workloadKey string) (float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.data.Servers[server]
	if !ok {
		return 0, false
	}
	x, ok := rec.MaxThroughput[workloadKey]
	return x, ok
}

// Points returns a copy of the stored data points for the server and
// workload, sorted by client count.
func (s *Store) Points(server, workloadKey string) []DataPoint {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.data.Servers[server]
	if !ok {
		return nil
	}
	pts := rec.Points[workloadKey]
	out := make([]DataPoint, len(pts))
	copy(out, pts)
	sort.Slice(out, func(i, j int) bool { return out[i].Clients < out[j].Clients })
	return out
}

// Servers lists the architectures with any recorded data, sorted.
func (s *Store) Servers() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.data.Servers))
	for name := range s.data.Servers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Prune keeps only the most recent keep points per (server, workload)
// — the store's answer to unbounded history growth. Points are
// retained from the end of the recorded order (most recently
// appended).
func (s *Store) Prune(keep int) {
	if keep < 0 {
		keep = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range s.data.Servers {
		for key, pts := range rec.Points {
			if len(pts) > keep {
				rec.Points[key] = append([]DataPoint(nil), pts[len(pts)-keep:]...)
			}
		}
	}
}

// Calibrate builds a ServerModel for the architecture from the
// store's recorded data points, benchmark and gradient under the
// workload signature — the recalibration path §2's first supporting
// service describes.
func (s *Store) Calibrate(arch workload.ServerArch, workloadKey string) (*ServerModel, error) {
	x, ok := s.MaxThroughput(arch.Name, workloadKey)
	if !ok {
		return nil, fmt.Errorf("hist: no max-throughput benchmark stored for %s/%s", arch.Name, workloadKey)
	}
	m := s.Gradient()
	if m <= 0 {
		return nil, errors.New("hist: no gradient stored")
	}
	pts := s.Points(arch.Name, workloadKey)
	if len(pts) == 0 {
		return nil, fmt.Errorf("hist: no data points stored for %s/%s", arch.Name, workloadKey)
	}
	return CalibrateServer(arch, x, m, pts)
}

// Save writes the store as indented JSON.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.data)
}

// Load replaces the store's contents from a JSON document previously
// written by Save.
func (s *Store) Load(r io.Reader) error {
	var data storeData
	dec := json.NewDecoder(r)
	if err := dec.Decode(&data); err != nil {
		return fmt.Errorf("hist: loading store: %w", err)
	}
	if data.Servers == nil {
		data.Servers = make(map[string]*serverRecord)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = data
	return nil
}

// SaveFile persists the store to path (0644).
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Save(f)
}

// LoadFile reads a store from path; a missing file yields an empty
// store without error, so first runs bootstrap cleanly.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}
