package hist

import (
	"math"
	"testing"

	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

func syntheticTrajectory(steady, r0, tau float64, n int, dt float64) []StabilisationPoint {
	pts := make([]StabilisationPoint, n)
	for i := range pts {
		t := float64(i+1) * dt
		pts[i] = StabilisationPoint{Time: t, MeanRT: steady + (r0-steady)*math.Exp(-t/tau)}
	}
	return pts
}

func TestFitStabilisationRecoversKnownModel(t *testing.T) {
	const steady, r0, tau = 0.200, 0.020, 30.0
	m, err := FitStabilisation(syntheticTrajectory(steady, r0, tau, 40, 5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Steady-steady)/steady > 0.05 {
		t.Fatalf("steady = %v, want %v", m.Steady, steady)
	}
	if math.Abs(m.Tau-tau)/tau > 0.25 {
		t.Fatalf("tau = %v, want ≈%v", m.Tau, tau)
	}
	// The model reproduces the trajectory.
	for _, tm := range []float64{10, 50, 150} {
		want := steady + (r0-steady)*math.Exp(-tm/tau)
		if got := m.At(tm); math.Abs(got-want)/want > 0.15 {
			t.Fatalf("At(%v) = %v, want ≈%v", tm, got, want)
		}
	}
}

func TestFitStabilisationAlreadySteady(t *testing.T) {
	pts := make([]StabilisationPoint, 10)
	for i := range pts {
		pts[i] = StabilisationPoint{Time: float64(i + 1), MeanRT: 0.1}
	}
	m, err := FitStabilisation(pts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tau != 0 {
		t.Fatalf("flat trajectory should fit Tau=0, got %v", m.Tau)
	}
	if m.TimeToSteady(0.05) != 0 {
		t.Fatal("flat trajectory is steady immediately")
	}
	if m.At(42) != 0.1 {
		t.Fatalf("At = %v", m.At(42))
	}
}

// TestFitStabilisationUndershootWithNoisyFirstBucket pins the sign
// choice for R0: a ramp-up (undershoot) trajectory whose very first
// bucket is a noise spike sitting *above* the steady level. Deciding
// the approach direction from points[0] alone would read the spike as
// an overshoot and flip R0 to the wrong side of steady; the aggregate
// over the fitted points must recover the undershoot.
func TestFitStabilisationUndershootWithNoisyFirstBucket(t *testing.T) {
	const steady, r0, tau = 0.200, 0.020, 30.0
	pts := syntheticTrajectory(steady, r0, tau, 40, 5)
	// One noisy early sample on the wrong side of steady (gap well
	// beyond the 2% noise floor).
	pts[0].MeanRT = steady * 1.15
	m, err := FitStabilisation(pts)
	if err != nil {
		t.Fatal(err)
	}
	if m.R0 >= m.Steady {
		t.Fatalf("undershoot trajectory fitted R0 %v above steady %v: noisy first bucket flipped the sign", m.R0, m.Steady)
	}
	// The model still tracks the true trajectory away from the spike.
	for _, tm := range []float64{20, 50, 150} {
		want := steady + (r0-steady)*math.Exp(-tm/tau)
		if got := m.At(tm); math.Abs(got-want)/want > 0.20 {
			t.Fatalf("At(%v) = %v, want ≈%v", tm, got, want)
		}
	}
}

func TestFitStabilisationErrors(t *testing.T) {
	if _, err := FitStabilisation(nil); err == nil {
		t.Fatal("empty input should fail")
	}
	short := syntheticTrajectory(0.2, 0.02, 30, 4, 5)
	if _, err := FitStabilisation(short); err == nil {
		t.Fatal("too few points should fail")
	}
	bad := syntheticTrajectory(0.2, 0.02, 30, 10, 5)
	bad[0].Time = -1
	if _, err := FitStabilisation(bad); err == nil {
		t.Fatal("invalid point should fail")
	}
}

func TestTimeToSteadyOrdering(t *testing.T) {
	m := &StabilisationModel{Steady: 0.2, R0: 0.02, Tau: 30}
	loose := m.TimeToSteady(0.10)
	tight := m.TimeToSteady(0.01)
	if loose >= tight {
		t.Fatalf("tighter tolerance needs longer settling: %v vs %v", loose, tight)
	}
	if m.TimeToSteady(100) != 0 {
		t.Fatal("huge tolerance is immediately satisfied")
	}
}

// TestStabilisationFromSimulator fits the model to a genuine cold-start
// trajectory from the simulated testbed: a heavily loaded server's
// response time ramps up as the client population's requests pile in,
// and the fitted model should localise the settling time.
func TestStabilisationFromSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed test")
	}
	cfg := trade.Config{
		Server:   workload.AppServF(),
		DB:       workload.CaseStudyDB(),
		Demands:  workload.CaseStudyDemands(),
		Load:     workload.TypicalWorkload(1900), // past saturation
		Seed:     23,
		WarmUp:   0,
		Duration: 400,
	}
	curve, err := trade.TransientCurve(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	var pts []StabilisationPoint
	for _, p := range curve {
		if p.Completed > 0 {
			pts = append(pts, StabilisationPoint{Time: p.Time, MeanRT: p.MeanRT})
		}
	}
	m, err := FitStabilisation(pts)
	if err != nil {
		t.Fatal(err)
	}
	// The trajectory ramps up: early RT below steady.
	if pts[0].MeanRT >= m.Steady {
		t.Fatalf("cold-start RT %v should sit below steady %v", pts[0].MeanRT, m.Steady)
	}
	settle := m.TimeToSteady(0.05)
	if settle <= 0 || settle > cfg.Duration {
		t.Fatalf("settling time = %v, want within the observation window", settle)
	}
	t.Logf("steady RT %.0f ms, settles within 5%% after %.0f s", m.Steady*1000, settle)
}
