package hist

import (
	"math"
	"testing"
	"testing/quick"

	"perfpred/internal/workload"
)

// caseModelF returns a hand-built model shaped like the paper's
// AppServF row of Table 1 (times in seconds here).
func caseModelF() *ServerModel {
	return &ServerModel{
		Arch:          workload.AppServF(),
		MaxThroughput: 186,
		CL:            0.0841,  // 84.1 ms
		LambdaL:       0.0001,  // Table 1
		LambdaU:       0.00538, // ≈ 1/Xmax seconds per client
		CU:            -7.0,    // upper line crosses N* near RT≈0.6s
		M:             0.14,
	}
}

func TestModelValidate(t *testing.T) {
	if err := caseModelF().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := caseModelF()
	bad.MaxThroughput = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero max throughput should fail")
	}
	bad = caseModelF()
	bad.CL = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero cL should fail")
	}
	bad = caseModelF()
	bad.M = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero m should fail")
	}
	bad = caseModelF()
	bad.LambdaU = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero λU should fail")
	}
}

func TestSaturationClients(t *testing.T) {
	m := caseModelF()
	want := 186 / 0.14
	if got := m.SaturationClients(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("N* = %v, want %v", got, want)
	}
}

func TestPredictRegions(t *testing.T) {
	m := caseModelF()
	nStar := m.SaturationClients()
	// Deep in the lower region, Predict is exactly the lower equation.
	n := 0.3 * nStar
	if got, want := m.Predict(n), m.Lower(n); math.Abs(got-want) > 1e-12 {
		t.Fatalf("lower region predict = %v, want %v", got, want)
	}
	// Deep in the upper region, Predict is exactly the upper equation.
	n = 1.5 * nStar
	if got, want := m.Predict(n), m.Upper(n); math.Abs(got-want) > 1e-12 {
		t.Fatalf("upper region predict = %v, want %v", got, want)
	}
	// The transition is continuous at both edges.
	lo, hi := TransitionLow*nStar, TransitionHigh*nStar
	if d := math.Abs(m.Predict(lo) - m.Lower(lo)); d > 1e-9 {
		t.Fatalf("discontinuity %v at lower edge", d)
	}
	if d := math.Abs(m.Predict(hi) - m.Upper(hi)); d > 1e-9 {
		t.Fatalf("discontinuity %v at upper edge", d)
	}
}

func TestPredictThroughput(t *testing.T) {
	m := caseModelF()
	if got := m.PredictThroughput(500); math.Abs(got-70) > 1e-9 {
		t.Fatalf("X(500) = %v, want 70", got)
	}
	if got := m.PredictThroughput(5000); got != 186 {
		t.Fatalf("X past saturation = %v, want 186 (constant)", got)
	}
}

func TestSaturatedFlag(t *testing.T) {
	m := caseModelF()
	nStar := m.SaturationClients()
	if m.Saturated(nStar - 1) {
		t.Fatal("below N* should not be saturated")
	}
	if !m.Saturated(nStar + 1) {
		t.Fatal("above N* should be saturated")
	}
}

func TestMaxClientsInversion(t *testing.T) {
	m := caseModelF()
	for _, goal := range []float64{0.1, 0.3, 0.6, 2.0, 5.0} {
		n, err := m.MaxClients(goal)
		if err != nil {
			t.Fatal(err)
		}
		if n < 0 {
			t.Fatalf("goal %v: negative clients %v", goal, n)
		}
		// The prediction at the answer meets the goal; slightly above
		// it misses (within numeric tolerance).
		if rt := m.Predict(n); rt > goal*1.0001 {
			t.Fatalf("goal %v: RT at max clients = %v", goal, rt)
		}
		if rt := m.Predict(n * 1.02); rt < goal*0.999 && n > 1 {
			t.Fatalf("goal %v: RT just above max clients = %v, still under goal", goal, rt)
		}
	}
	if _, err := m.MaxClients(0); err == nil {
		t.Fatal("expected error for zero goal")
	}
	// A goal below cL means even one client misses.
	n, err := m.MaxClients(m.CL / 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("unreachable goal: max clients = %v, want 0", n)
	}
}

func TestPredictPercentileAboveMean(t *testing.T) {
	m := caseModelF()
	nStar := m.SaturationClients()
	for _, n := range []float64{0.3 * nStar, 1.5 * nStar} {
		mean := m.Predict(n)
		p90, err := m.PredictPercentile(n, 0.90, 0.2041)
		if err != nil {
			t.Fatal(err)
		}
		if p90 <= mean {
			t.Fatalf("p90 %v should exceed mean %v at n=%v", p90, mean, n)
		}
	}
}

// Property: Predict is monotone non-decreasing in the client count for
// the case-study parameter shapes (positive cL, λL, λU; upper above
// lower at the knee), so the MaxClients bisection is sound.
func TestPredictMonotoneProperty(t *testing.T) {
	m := caseModelF()
	f := func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 3000)
		b = math.Mod(math.Abs(b), 3000)
		if a > b {
			a, b = b, a
		}
		return m.Predict(a) <= m.Predict(b)*1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
