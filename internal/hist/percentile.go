package hist

import (
	"errors"
	"fmt"

	"perfpred/internal/workload"
)

// PercentileModel predicts a percentile response time *directly* from
// historical percentile measurements, using the same
// lower/upper/transition relationship structure as the mean model.
// This is the §8.2 capability unique to the historical method: "the
// historical method ... can record (as variables) both percentile
// metrics and the time the server has been stabilising", avoiding the
// small accuracy loss of extrapolating percentiles from mean
// predictions through the §7.1 distributions.
type PercentileModel struct {
	// Model carries the fitted relationship-1 equations; its Predict
	// returns the percentile response time, not the mean.
	Model ServerModel
	// P is the percentile the model predicts, as a fraction in (0,1).
	P float64
}

// CalibratePercentile fits a direct percentile model from data points
// whose MeanRT fields hold the observed P-quantile response times
// (e.g. measured p90s). maxThroughput and m anchor the lower/upper
// split exactly as for the mean model.
func CalibratePercentile(arch workload.ServerArch, maxThroughput, m, p float64, points []DataPoint) (*PercentileModel, error) {
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("hist: percentile %v outside (0,1)", p)
	}
	base, err := CalibrateServer(arch, maxThroughput, m, points)
	if err != nil {
		return nil, err
	}
	return &PercentileModel{Model: *base, P: p}, nil
}

// Predict returns the predicted P-quantile response time (seconds) at
// n clients.
func (pm *PercentileModel) Predict(n float64) float64 {
	return pm.Model.Predict(n)
}

// MaxClients inverts the model for a percentile SLA: the largest
// population whose predicted P-quantile stays at or below goalRT.
func (pm *PercentileModel) MaxClients(goalRT float64) (float64, error) {
	return pm.Model.MaxClients(goalRT)
}

// PercentileRelationship2 fits relationship 2 over direct percentile
// models, so a new architecture's percentile curve can be predicted
// from its max-throughput benchmark exactly as for means.
func PercentileRelationship2(models []*PercentileModel) (*Relationship2, error) {
	if len(models) < 2 {
		return nil, errors.New("hist: need at least two established percentile models")
	}
	p := models[0].P
	base := make([]*ServerModel, len(models))
	for i, m := range models {
		if m == nil {
			return nil, errors.New("hist: nil percentile model")
		}
		if m.P != p {
			return nil, fmt.Errorf("hist: mixed percentiles %v and %v", p, m.P)
		}
		base[i] = &models[i].Model
	}
	return FitRelationship2(base)
}

// NewPercentileModel extrapolates a new architecture's direct
// percentile model from relationship 2 fitted with
// PercentileRelationship2.
func NewPercentileModel(rel2 *Relationship2, arch workload.ServerArch, maxThroughput, p float64) (*PercentileModel, error) {
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("hist: percentile %v outside (0,1)", p)
	}
	base, err := rel2.NewServerModel(arch, maxThroughput)
	if err != nil {
		return nil, err
	}
	return &PercentileModel{Model: *base, P: p}, nil
}
