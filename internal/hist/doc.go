// Package hist implements the paper's historical performance
// prediction method (§4), the approach realised by the authors' HYDRA
// tool: sample performance metrics, associate them with workload and
// architecture variables, and fit the small number of trend
// relationships a resource manager actually needs.
//
// Three relationships model the case study:
//
//  1. Clients → mean response time (§4.1): a 'lower' exponential
//     equation mrt = cL·e^(λL·N) before max throughput, an 'upper'
//     linear equation mrt = λU·N + cU after it, and a transition
//     relationship phasing between them between 66% and 110% of the
//     max-throughput load. The correct equation is chosen via the
//     linear clients→throughput relationship X = m·N (m ≈ 0.14 in the
//     case study, shared across architectures because it depends on
//     the think time, not CPU speed).
//
//  2. Max throughput → relationship-1 parameters (§4.2): cL varies
//     linearly and λL as a power law of the server's benchmarked max
//     throughput; λU scales inversely with max throughput and cU is
//     roughly constant. Fitting these across established servers lets
//     the method predict *new* architectures from a single
//     max-throughput benchmark.
//
//  3. Buy-request % → max throughput (§4.3): max throughput falls
//     linearly in the buy percentage on an established server, and a
//     new server's mixed-workload max throughput is extrapolated by
//     the ratio of typical-workload max throughputs.
//
// Predictions are closed-form and effectively instantaneous (§8.5),
// and the method can invert its equations to answer "how many clients
// can this server hold under an SLA goal" directly (§8.2) — the two
// operational advantages the paper credits the historical method with.
package hist
