package hist

import (
	"testing"

	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// TestHistoricalPipelineAgainstSimulator runs the paper's full §4
// workflow against the simulated testbed: calibrate the gradient and
// the established servers (AppServF, AppServVF) from a handful of
// measured data points, fit relationship 2 across them, predict the
// new server (AppServS) from its max-throughput benchmark alone, and
// check the predictions against fresh measurements — the figure 2
// experiment in miniature.
func TestHistoricalPipelineAgainstSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed pipeline test")
	}
	opt := trade.MeasureOptions{Seed: 21, WarmUp: 40, Duration: 150}

	calibrateOne := func(arch workload.ServerArch) *ServerModel {
		t.Helper()
		xMax, err := trade.MaxThroughput(arch, 0, opt)
		if err != nil {
			t.Fatal(err)
		}
		nStar := xMax / 0.14
		// Two lower + two upper data points, the paper's minimum.
		counts := []int{int(0.25 * nStar), int(0.55 * nStar), int(1.2 * nStar), int(1.6 * nStar)}
		points, err := trade.MeasureCurve(arch, counts, 0, opt)
		if err != nil {
			t.Fatal(err)
		}
		var dps []DataPoint
		var tps []ThroughputPoint
		for _, p := range points {
			dps = append(dps, DataPoint{Clients: float64(p.Clients), MeanRT: p.Res.MeanRT, Samples: p.Res.PerClass["browse"].Completed})
			if float64(p.Clients) < 0.66*nStar {
				tps = append(tps, ThroughputPoint{Clients: float64(p.Clients), Throughput: p.Res.Throughput})
			}
		}
		m, err := CalibrateGradient(tps)
		if err != nil {
			t.Fatal(err)
		}
		if m < 0.12 || m > 0.15 {
			t.Fatalf("%s gradient m = %v, want ≈0.14", arch.Name, m)
		}
		model, err := CalibrateServer(arch, xMax, m, dps)
		if err != nil {
			t.Fatal(err)
		}
		return model
	}

	fModel := calibrateOne(workload.AppServF())
	vfModel := calibrateOne(workload.AppServVF())

	// Established-server accuracy on fresh measurements.
	freshOpt := opt
	freshOpt.Seed = 99
	for _, tc := range []struct {
		model *ServerModel
	}{{fModel}, {vfModel}} {
		nStar := tc.model.SaturationClients()
		counts := []int{int(0.3 * nStar), int(0.5 * nStar), int(1.3 * nStar), int(1.7 * nStar)}
		points, err := trade.MeasureCurve(tc.model.Arch, counts, 0, freshOpt)
		if err != nil {
			t.Fatal(err)
		}
		var dps []DataPoint
		for _, p := range points {
			dps = append(dps, DataPoint{Clients: float64(p.Clients), MeanRT: p.Res.MeanRT})
		}
		acc := EvaluateAccuracy(tc.model, dps)
		// The paper reports 89.1% for established servers; allow a
		// generous floor since our points and seeds differ.
		if acc < 75 {
			t.Fatalf("%s established accuracy = %.1f%%, want ≥75%%", tc.model.Arch.Name, acc)
		}
	}

	// New-server prediction via relationship 2 from the benchmark only.
	rel2, err := FitRelationship2([]*ServerModel{fModel, vfModel})
	if err != nil {
		t.Fatal(err)
	}
	sBench, err := trade.MaxThroughput(workload.AppServS(), 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	sModel, err := rel2.NewServerModel(workload.AppServS(), sBench)
	if err != nil {
		t.Fatal(err)
	}
	nStar := sModel.SaturationClients()
	counts := []int{int(0.3 * nStar), int(0.5 * nStar), int(1.3 * nStar), int(1.7 * nStar)}
	points, err := trade.MeasureCurve(workload.AppServS(), counts, 0, freshOpt)
	if err != nil {
		t.Fatal(err)
	}
	var dps []DataPoint
	for _, p := range points {
		dps = append(dps, DataPoint{Clients: float64(p.Clients), MeanRT: p.Res.MeanRT})
	}
	acc := EvaluateAccuracy(sModel, dps)
	// The paper reports 83% for the new server.
	if acc < 65 {
		t.Fatalf("new-server accuracy = %.1f%%, want ≥65%%", acc)
	}
	t.Logf("new-server (AppServS) historical accuracy: %.1f%%", acc)
}
