package hist

import (
	"errors"
	"fmt"

	"perfpred/internal/stats"
)

// BuyPoint is one (buy-percentage, max-throughput) observation on an
// established server.
type BuyPoint struct {
	// BuyPct is the percentage of buy requests in the workload (0
	// represents the typical, all-browse workload).
	BuyPct float64
	// MaxThroughput is the observed max throughput, requests/second.
	MaxThroughput float64
}

// Relationship3 captures §4.3: the linear effect of the buy-request
// percentage on an established server's max throughput, transferable
// to new servers by the ratio of typical-workload max throughputs
// (equation 5).
type Relationship3 struct {
	line stats.LinearModel
	// xE0 is the established server's max throughput at 0% buy.
	xE0 float64
}

// FitRelationship3 fits the linear buy%→max-throughput trend from two
// or more observations on one established server. One observation
// must be at (or near) 0% buy to anchor the cross-server ratio.
func FitRelationship3(points []BuyPoint) (*Relationship3, error) {
	if len(points) < 2 {
		return nil, errors.New("hist: relationship 3 needs at least two buy-percentage points")
	}
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		if p.BuyPct < 0 || p.BuyPct > 100 {
			return nil, fmt.Errorf("hist: buy percentage %v outside [0,100]", p.BuyPct)
		}
		if p.MaxThroughput <= 0 {
			return nil, fmt.Errorf("hist: non-positive max throughput %v", p.MaxThroughput)
		}
		xs[i] = p.BuyPct
		ys[i] = p.MaxThroughput
	}
	line, err := stats.FitLinear(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("hist: relationship 3 fit: %w", err)
	}
	xE0 := line.Eval(0)
	if xE0 <= 0 {
		return nil, fmt.Errorf("hist: fitted 0%%-buy max throughput %v must be positive", xE0)
	}
	return &Relationship3{line: line, xE0: xE0}, nil
}

// EstablishedMaxThroughput extrapolates the established server's max
// throughput at the given buy percentage.
func (r *Relationship3) EstablishedMaxThroughput(buyPct float64) float64 {
	return r.line.Eval(buyPct)
}

// NewServerMaxThroughput applies equation (5): the new server's max
// throughput at buyPct is the established trend scaled by the ratio of
// the servers' typical-workload (0% buy) max throughputs.
func (r *Relationship3) NewServerMaxThroughput(newServerX0, buyPct float64) (float64, error) {
	if newServerX0 <= 0 {
		return 0, errors.New("hist: new server 0%-buy max throughput must be positive")
	}
	x := r.line.Eval(buyPct) * newServerX0 / r.xE0
	if x <= 0 {
		return 0, fmt.Errorf("hist: extrapolated max throughput %v not positive at %v%% buy", x, buyPct)
	}
	return x, nil
}

// ModelAtBuyPct re-anchors a server model to a heterogeneous workload:
// it predicts the max throughput at buyPct via relationship 3 and
// rebuilds the relationship-1 parameters through rel2 at that max
// throughput. This composition produces the figure-4 predictions.
func (r *Relationship3) ModelAtBuyPct(rel2 *Relationship2, base *ServerModel, buyPct float64) (*ServerModel, error) {
	x, err := r.NewServerMaxThroughput(base.MaxThroughput, buyPct)
	if err != nil {
		return nil, err
	}
	return rel2.NewServerModel(base.Arch, x)
}
