package hist

import (
	"math"
	"testing"

	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// p90Points measures p90 response times at the given populations.
func p90Points(t *testing.T, arch workload.ServerArch, counts []int, opt trade.MeasureOptions) []DataPoint {
	t.Helper()
	var pts []DataPoint
	for _, n := range counts {
		res, err := trade.Measure(arch, workload.TypicalWorkload(n), opt)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, DataPoint{Clients: float64(n), MeanRT: res.OverallPercentile(90)})
	}
	return pts
}

func TestCalibratePercentileValidation(t *testing.T) {
	truth := caseModelF()
	pts := syntheticPoints(truth, 2, 2)
	if _, err := CalibratePercentile(truth.Arch, truth.MaxThroughput, truth.M, 0, pts); err == nil {
		t.Fatal("p=0 should fail")
	}
	if _, err := CalibratePercentile(truth.Arch, truth.MaxThroughput, truth.M, 1, pts); err == nil {
		t.Fatal("p=1 should fail")
	}
	pm, err := CalibratePercentile(truth.Arch, truth.MaxThroughput, truth.M, 0.9, pts)
	if err != nil {
		t.Fatal(err)
	}
	if pm.P != 0.9 {
		t.Fatalf("P = %v", pm.P)
	}
	// Predict and MaxClients delegate to the fitted equations.
	n, err := pm.MaxClients(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if rt := pm.Predict(n); rt > 0.3*1.001 {
		t.Fatalf("RT at capacity = %v", rt)
	}
}

func TestPercentileRelationship2MixedP(t *testing.T) {
	truth := caseModelF()
	pts := syntheticPoints(truth, 2, 2)
	a, err := CalibratePercentile(truth.Arch, truth.MaxThroughput, truth.M, 0.9, pts)
	if err != nil {
		t.Fatal(err)
	}
	vfTruth := caseModelF()
	vfTruth.MaxThroughput = 320
	vfPts := syntheticPoints(vfTruth, 2, 2)
	b, err := CalibratePercentile(vfTruth.Arch, 320, vfTruth.M, 0.95, vfPts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PercentileRelationship2([]*PercentileModel{a, b}); err == nil {
		t.Fatal("mixed percentiles should fail")
	}
	if _, err := PercentileRelationship2([]*PercentileModel{a}); err == nil {
		t.Fatal("single model should fail")
	}
	if _, err := PercentileRelationship2([]*PercentileModel{a, nil}); err == nil {
		t.Fatal("nil model should fail")
	}
	// A matched pair fits and extrapolates.
	b2, err := CalibratePercentile(vfTruth.Arch, 320, vfTruth.M, 0.9, vfPts)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := PercentileRelationship2([]*PercentileModel{a, b2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewPercentileModel(rel2, truth.Arch, 86, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if s.P != 0.9 || s.Model.MaxThroughput != 86 {
		t.Fatalf("extrapolated model = %+v", s)
	}
	if _, err := NewPercentileModel(rel2, truth.Arch, 86, 0); err == nil {
		t.Fatal("p=0 should fail")
	}
}

// TestDirectPercentileBeatsExtrapolation reproduces the §8.2 claim:
// fitting the percentile directly avoids the accuracy loss of
// extrapolating percentiles from mean predictions through the §7.1
// distributions.
func TestDirectPercentileBeatsExtrapolation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed comparison")
	}
	opt := trade.MeasureOptions{Seed: 41, WarmUp: 40, Duration: 140}
	arch := workload.AppServF()
	xMax, err := trade.MaxThroughput(arch, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	const m = 0.14
	nStar := xMax / m
	calCounts := []int{int(0.25 * nStar), int(0.55 * nStar), int(1.2 * nStar), int(1.6 * nStar)}

	// Direct percentile model from measured p90s.
	direct, err := CalibratePercentile(arch, xMax, m, 0.9, p90Points(t, arch, calCounts, opt))
	if err != nil {
		t.Fatal(err)
	}

	// Mean model + §7.1 extrapolation with the paper's b.
	var meanPts []DataPoint
	for _, n := range calCounts {
		res, err := trade.Measure(arch, workload.TypicalWorkload(n), opt)
		if err != nil {
			t.Fatal(err)
		}
		meanPts = append(meanPts, DataPoint{Clients: float64(n), MeanRT: res.MeanRT})
	}
	meanModel, err := CalibrateServer(arch, xMax, m, meanPts)
	if err != nil {
		t.Fatal(err)
	}

	// Fresh evaluation measurements.
	evalOpt := opt
	evalOpt.Seed = 91
	evalCounts := []int{int(0.35 * nStar), int(0.5 * nStar), int(1.3 * nStar), int(1.5 * nStar)}
	var directErr, extrapErr float64
	for _, n := range evalCounts {
		res, err := trade.Measure(arch, workload.TypicalWorkload(n), evalOpt)
		if err != nil {
			t.Fatal(err)
		}
		actual := res.OverallPercentile(90)
		dp := direct.Predict(float64(n))
		ep, err := meanModel.PredictPercentile(float64(n), 0.9, 0.2041)
		if err != nil {
			t.Fatal(err)
		}
		directErr += math.Abs(dp-actual) / actual
		extrapErr += math.Abs(ep-actual) / actual
	}
	// Direct fitting should not lose to extrapolation by more than a
	// whisker (it usually wins since nothing is assumed about the
	// distribution shape).
	if directErr > extrapErr*1.15 {
		t.Fatalf("direct percentile error %v should not exceed extrapolated %v", directErr, extrapErr)
	}
	t.Logf("p90 relative error: direct %.3f vs extrapolated %.3f (4 points)", directErr, extrapErr)
}
