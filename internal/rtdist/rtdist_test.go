package rtdist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExponentialBasics(t *testing.T) {
	d, err := NewExponential(100)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean() != 100 {
		t.Fatalf("mean = %v, want 100", d.Mean())
	}
	if got := d.CDF(0); got != 0 {
		t.Fatalf("CDF(0) = %v, want 0", got)
	}
	if got := d.CDF(-5); got != 0 {
		t.Fatalf("CDF(-5) = %v, want 0", got)
	}
	// Median of exponential = mean * ln 2.
	if got, want := d.Quantile(0.5), 100*math.Ln2; math.Abs(got-want) > 1e-9 {
		t.Fatalf("median = %v, want %v", got, want)
	}
	// 90th percentile of the SLA form used in §7.1.
	if got, want := d.Quantile(0.9), -100*math.Log(0.1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("p90 = %v, want %v", got, want)
	}
	if _, err := NewExponential(0); err == nil {
		t.Fatal("expected error for rp=0")
	}
	if _, err := NewExponential(-1); err == nil {
		t.Fatal("expected error for rp<0")
	}
}

func TestLaplaceBasics(t *testing.T) {
	d, err := NewLaplace(600, PaperScaleB)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean() != 600 || d.Scale() != PaperScaleB {
		t.Fatalf("mean/scale = %v/%v", d.Mean(), d.Scale())
	}
	// Symmetry: CDF at the location is exactly 1/2.
	if got := d.CDF(600); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CDF(a) = %v, want 0.5", got)
	}
	// Symmetric tails: P(X <= a-t) == 1 - P(X <= a+t).
	for _, tail := range []float64{10, 100, 500} {
		lo, hi := d.CDF(600-tail), d.CDF(600+tail)
		if math.Abs(lo-(1-hi)) > 1e-12 {
			t.Fatalf("asymmetric tails at %v: %v vs %v", tail, lo, 1-hi)
		}
	}
	if _, err := NewLaplace(600, 0); err == nil {
		t.Fatal("expected error for b=0")
	}
	if _, err := NewLaplace(0, 10); err == nil {
		t.Fatal("expected error for rp=0")
	}
}

func TestQuantileCDFRoundTrip(t *testing.T) {
	exp, _ := NewExponential(250)
	lap, _ := NewLaplace(250, 204.1)
	for _, d := range []Distribution{exp, lap} {
		for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
			x := d.Quantile(p)
			if got := d.CDF(x); math.Abs(got-p) > 1e-9 {
				t.Fatalf("CDF(Quantile(%v)) = %v", p, got)
			}
		}
	}
}

func TestQuantileClamping(t *testing.T) {
	d, _ := NewExponential(100)
	if q := d.Quantile(0); math.IsInf(q, 0) || math.IsNaN(q) {
		t.Fatalf("Quantile(0) not clamped: %v", q)
	}
	if q := d.Quantile(1); math.IsInf(q, 0) || math.IsNaN(q) {
		t.Fatalf("Quantile(1) not clamped: %v", q)
	}
	if d.Quantile(0.2) >= d.Quantile(0.8) {
		t.Fatal("quantile not monotone")
	}
}

func TestForMeanPrediction(t *testing.T) {
	pre, err := ForMeanPrediction(120, false, PaperScaleB)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pre.(Exponential); !ok {
		t.Fatalf("pre-saturation distribution is %T, want Exponential", pre)
	}
	post, err := ForMeanPrediction(800, true, PaperScaleB)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := post.(Laplace); !ok {
		t.Fatalf("post-saturation distribution is %T, want Laplace", post)
	}
	if _, err := ForMeanPrediction(-1, false, PaperScaleB); err == nil {
		t.Fatal("expected error for negative mean")
	}
}

func TestPercentileFromMean(t *testing.T) {
	// §7.1 converts figure-2 mean predictions to p=90% metrics.
	got, err := PercentileFromMean(100, false, PaperScaleB, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	want := -100 * math.Log(0.1)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("pre-saturation p90 = %v, want %v", got, want)
	}
	got, err = PercentileFromMean(700, true, PaperScaleB, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	want = 700 - PaperScaleB*math.Log(2*0.1)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("post-saturation p90 = %v, want %v", got, want)
	}
	if got <= 700 {
		t.Fatal("p90 of a saturated server must exceed the mean")
	}
}

func TestCalibrateScale(t *testing.T) {
	// Draw from a known Laplace and recover b by mean absolute
	// deviation around the known location.
	rng := rand.New(rand.NewSource(7))
	const a, b = 600.0, 204.1
	samples := make([]float64, 20000)
	for i := range samples {
		u := rng.Float64() - 0.5
		sign := 1.0
		if u < 0 {
			sign = -1.0
		}
		samples[i] = a - b*sign*math.Log(1-2*math.Abs(u))
	}
	got, err := CalibrateScale(samples, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-b)/b > 0.05 {
		t.Fatalf("calibrated b = %v, want ≈%v", got, b)
	}
	if _, err := CalibrateScale(nil, a); err == nil {
		t.Fatal("expected error for empty samples")
	}
	if _, err := CalibrateScale([]float64{a, a, a}, a); err == nil {
		t.Fatal("expected error for degenerate samples")
	}
}

// Property: both CDFs are monotone non-decreasing and bounded in [0,1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(rp, b, x1, x2 float64) bool {
		rp = 1 + math.Mod(math.Abs(rp), 1000)
		b = 1 + math.Mod(math.Abs(b), 500)
		x1 = math.Mod(x1, 5000)
		x2 = math.Mod(x2, 5000)
		if math.IsNaN(x1) || math.IsNaN(x2) {
			return true
		}
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		exp, err1 := NewExponential(rp)
		lap, err2 := NewLaplace(rp, b)
		if err1 != nil || err2 != nil {
			return false
		}
		for _, d := range []Distribution{exp, lap} {
			c1, c2 := d.CDF(x1), d.CDF(x2)
			if c1 > c2 || c1 < 0 || c2 > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: higher mean predictions give higher percentile predictions
// for a fixed p — the transformation preserves the ordering of
// figure 2's curves.
func TestPercentileOrderPreservingProperty(t *testing.T) {
	f := func(m1, m2 float64, saturated bool) bool {
		m1 = 1 + math.Mod(math.Abs(m1), 2000)
		m2 = 1 + math.Mod(math.Abs(m2), 2000)
		if m1 > m2 {
			m1, m2 = m2, m1
		}
		p1, err1 := PercentileFromMean(m1, saturated, PaperScaleB, 0.9)
		p2, err2 := PercentileFromMean(m2, saturated, PaperScaleB, 0.9)
		if err1 != nil || err2 != nil {
			return false
		}
		return p1 <= p2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
