// Package rtdist implements the response-time distribution extension
// of the paper's §7.1. SLAs are frequently specified as percentile
// goals ("p% of requests under rmax") rather than mean goals, yet the
// layered queuing and hybrid methods predict only mean response times.
// The paper's fix is empirical: relative to the predicted mean, the
// request response-time distribution has a fixed shape on either side
// of server saturation —
//
//   - before 100% CPU utilisation the dominant delay is service itself,
//     and response times follow an exponential distribution whose mean
//     is the predicted mean response time rp (equation 6);
//   - after saturation the dominant delay is application-server queuing
//     and response times follow a double-exponential (Laplace)
//     distribution located at rp with a scale parameter b that is
//     constant across architectures with heterogeneous processing
//     speeds (equation 7; b calibrates to 204.1 ms in the paper's
//     testbed).
//
// Given any mean response-time prediction, these distributions convert
// it into percentile predictions, losing at most a few percent of
// accuracy (§7.1 reports a worst case of 4.6%).
package rtdist

import (
	"errors"
	"fmt"
	"math"
)

// PaperScaleB is the Laplace scale parameter the paper calibrates on
// its testbed (milliseconds). Users of this repository's simulator
// substrate should calibrate their own value with CalibrateScale; the
// constant is exported so the paper's configuration can be reproduced
// exactly.
const PaperScaleB = 204.1

var errNonPositiveMean = errors.New("rtdist: mean response time must be positive")

// Distribution predicts response-time quantiles from a mean
// response-time prediction.
type Distribution interface {
	// CDF returns P(X <= x) for response time x.
	CDF(x float64) float64
	// Quantile returns the response time below which a fraction p
	// (0 < p < 1) of requests fall.
	Quantile(p float64) float64
	// Mean returns the distribution's mean response time.
	Mean() float64
}

// Exponential is the pre-saturation response-time distribution of
// equation (6): P(X<=x) = 1 - e^(-x/rp), with rp the predicted mean
// response time.
type Exponential struct {
	rp float64
}

// NewExponential returns the pre-saturation distribution for a
// predicted mean response time rp > 0.
func NewExponential(rp float64) (Exponential, error) {
	if rp <= 0 {
		return Exponential{}, errNonPositiveMean
	}
	return Exponential{rp: rp}, nil
}

// Mean returns rp.
func (d Exponential) Mean() float64 { return d.rp }

// CDF returns P(X <= x). Negative response times have probability 0.
func (d Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-x/d.rp)
}

// Quantile returns the response time at percentile p (as a fraction in
// (0,1)). Out-of-range p values are clamped to the open interval.
func (d Exponential) Quantile(p float64) float64 {
	p = clampOpen(p)
	return -d.rp * math.Log(1-p)
}

// Laplace is the post-saturation response-time distribution of
// equation (7): a double-exponential located at the predicted mean
// response time rp (a = rp) with scale b:
//
//	P(X<=x) = ½ e^((x-a)/b)        for x < a
//	P(X<=x) = 1 − ½ e^(−(x-a)/b)   for x >= a
type Laplace struct {
	a float64 // location = predicted mean response time
	b float64 // scale, constant across architectures in the case study
}

// NewLaplace returns the post-saturation distribution located at the
// predicted mean response time rp with scale b; both must be positive.
func NewLaplace(rp, b float64) (Laplace, error) {
	if rp <= 0 {
		return Laplace{}, errNonPositiveMean
	}
	if b <= 0 {
		return Laplace{}, fmt.Errorf("rtdist: scale b must be positive, got %g", b)
	}
	return Laplace{a: rp, b: b}, nil
}

// Mean returns the location parameter a (= rp); the Laplace
// distribution is symmetric so location and mean coincide.
func (d Laplace) Mean() float64 { return d.a }

// Scale returns the scale parameter b.
func (d Laplace) Scale() float64 { return d.b }

// CDF returns P(X <= x).
func (d Laplace) CDF(x float64) float64 {
	if x < d.a {
		return 0.5 * math.Exp((x-d.a)/d.b)
	}
	return 1 - 0.5*math.Exp(-(x-d.a)/d.b)
}

// Quantile returns the response time at percentile p (a fraction in
// (0,1)). Out-of-range p values are clamped to the open interval.
func (d Laplace) Quantile(p float64) float64 {
	p = clampOpen(p)
	if p < 0.5 {
		return d.a + d.b*math.Log(2*p)
	}
	return d.a - d.b*math.Log(2*(1-p))
}

// ForMeanPrediction selects the §7.1 distribution for a predicted mean
// response time rp: exponential when the server is below saturation
// and Laplace(rp, b) at or above saturation. saturated should be true
// when the predicted load is at or past the server's max-throughput
// load (≈100% CPU utilisation).
func ForMeanPrediction(rp float64, saturated bool, b float64) (Distribution, error) {
	if saturated {
		return NewLaplace(rp, b)
	}
	return NewExponential(rp)
}

// PercentileFromMean converts a mean response-time prediction into a
// percentile prediction: the response time below which fraction p of
// requests is predicted to fall. It is the operation §7.1 applies to
// every point of figure 2 with p = 0.90.
func PercentileFromMean(rp float64, saturated bool, b, p float64) (float64, error) {
	d, err := ForMeanPrediction(rp, saturated, b)
	if err != nil {
		return 0, err
	}
	return d.Quantile(p), nil
}

// CalibrateScale estimates the Laplace scale parameter b from measured
// post-saturation response-time samples and their mean, by maximum
// likelihood for a Laplace distribution with known location: the mean
// absolute deviation around the location. The paper observes the
// resulting b is constant across server architectures.
func CalibrateScale(samples []float64, location float64) (float64, error) {
	if len(samples) == 0 {
		return 0, errors.New("rtdist: no samples to calibrate scale from")
	}
	var sum float64
	for _, s := range samples {
		sum += math.Abs(s - location)
	}
	b := sum / float64(len(samples))
	if b <= 0 {
		return 0, errors.New("rtdist: degenerate samples, scale would be non-positive")
	}
	return b, nil
}

func clampOpen(p float64) float64 {
	const eps = 1e-12
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}
