package hybrid

import (
	"math"
	"testing"

	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

func caseConfig() Config {
	return Config{
		DB:      workload.CaseStudyDB(),
		Demands: workload.CaseStudyDemands(),
	}
}

func TestBuildProducesModelPerServer(t *testing.T) {
	m, err := Build(caseConfig(), workload.CaseStudyServers())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Servers) != 3 {
		t.Fatalf("got %d server models", len(m.Servers))
	}
	if m.StartupDelay <= 0 {
		t.Fatal("start-up delay not recorded")
	}
	// Max 4 points per equation plus 2 scoping solves per server.
	if m.Evaluations != 3*(4+4+2) {
		t.Fatalf("evaluations = %d, want 30", m.Evaluations)
	}
	for name, sm := range m.Servers {
		if err := sm.Validate(); err != nil {
			t.Fatalf("%s model invalid: %v", name, err)
		}
	}
	// Max throughputs derived from the layered model track the
	// benchmarks.
	for _, tc := range []struct {
		name string
		want float64
	}{
		{"AppServS", workload.MaxThroughputS},
		{"AppServF", workload.MaxThroughputF},
		{"AppServVF", workload.MaxThroughputVF},
	} {
		got := m.Servers[tc.name].MaxThroughput
		if math.Abs(got-tc.want)/tc.want > 0.03 {
			t.Fatalf("%s hybrid Xmax = %v, want ≈%v", tc.name, got, tc.want)
		}
	}
}

func TestBuildArgumentErrors(t *testing.T) {
	if _, err := Build(caseConfig(), nil); err == nil {
		t.Fatal("no servers should fail")
	}
	cfg := caseConfig()
	cfg.PointsPerEquation = 1
	if _, err := Build(cfg, workload.CaseStudyServers()); err == nil {
		t.Fatal("one point per equation should fail")
	}
	cfg = caseConfig()
	cfg.Demands = nil
	if _, err := Build(cfg, workload.CaseStudyServers()); err == nil {
		t.Fatal("missing demands should fail")
	}
}

func TestPredictAfterStartupIsClosedForm(t *testing.T) {
	m, err := Build(caseConfig(), []workload.ServerArch{workload.AppServF()})
	if err != nil {
		t.Fatal(err)
	}
	evalsAfterBuild := m.Evaluations
	for n := 100.0; n <= 2500; n += 100 {
		if _, err := m.Predict("AppServF", n); err != nil {
			t.Fatal(err)
		}
	}
	if m.Evaluations != evalsAfterBuild {
		t.Fatal("Predict must not run the layered solver")
	}
	if _, err := m.Predict("ghost", 100); err == nil {
		t.Fatal("unknown server should fail")
	}
}

func TestHybridAccuracyAgainstSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed accuracy test")
	}
	m, err := Build(caseConfig(), workload.CaseStudyServers())
	if err != nil {
		t.Fatal(err)
	}
	opt := trade.MeasureOptions{Seed: 31, WarmUp: 40, Duration: 120}
	for _, arch := range workload.CaseStudyServers() {
		sm := m.Servers[arch.Name]
		nStar := sm.SaturationClients()
		counts := []int{int(0.3 * nStar), int(0.5 * nStar), int(1.3 * nStar), int(1.7 * nStar)}
		points, err := trade.MeasureCurve(arch, counts, 0, opt)
		if err != nil {
			t.Fatal(err)
		}
		var preds, acts []float64
		for _, p := range points {
			pr, err := m.Predict(arch.Name, float64(p.Clients))
			if err != nil {
				t.Fatal(err)
			}
			preds = append(preds, pr)
			acts = append(acts, p.Res.MeanRT)
		}
		// The paper reports ~67-75% hybrid accuracy; require a floor.
		var errSum float64
		for i := range preds {
			errSum += math.Abs(preds[i]-acts[i]) / acts[i]
		}
		acc := 100 * (1 - errSum/float64(len(preds)))
		if acc < 55 {
			t.Fatalf("%s hybrid accuracy = %.1f%%, want ≥55%%", arch.Name, acc)
		}
		t.Logf("%s hybrid accuracy: %.1f%%", arch.Name, acc)
	}
}

func TestPercentileAndMaxClients(t *testing.T) {
	m, err := Build(caseConfig(), []workload.ServerArch{workload.AppServF()})
	if err != nil {
		t.Fatal(err)
	}
	mean, err := m.Predict("AppServF", 2000)
	if err != nil {
		t.Fatal(err)
	}
	p90, err := m.PredictPercentile("AppServF", 2000, 0.90, 0.2041)
	if err != nil {
		t.Fatal(err)
	}
	if p90 <= mean {
		t.Fatalf("p90 %v should exceed mean %v", p90, mean)
	}
	n, err := m.MaxClients("AppServF", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("max clients = %v", n)
	}
	rt, err := m.Predict("AppServF", n)
	if err != nil {
		t.Fatal(err)
	}
	if rt > 0.3*1.001 {
		t.Fatalf("RT at max clients = %v > goal", rt)
	}
	if _, err := m.PredictPercentile("ghost", 100, 0.9, 0.2); err == nil {
		t.Fatal("unknown server should fail")
	}
	if _, err := m.MaxClients("ghost", 0.3); err == nil {
		t.Fatal("unknown server should fail")
	}
}

func TestBuildRelationship3(t *testing.T) {
	rel3, evals, err := BuildRelationship3(caseConfig(), workload.AppServF(), []float64{0, 25})
	if err != nil {
		t.Fatal(err)
	}
	if evals != 2 {
		t.Fatalf("evaluations = %d, want 2", evals)
	}
	x0 := rel3.EstablishedMaxThroughput(0)
	x25 := rel3.EstablishedMaxThroughput(25)
	if x25 >= x0 {
		t.Fatalf("buy mix must lower max throughput: %v vs %v", x25, x0)
	}
	// The paper's LQNS points: 189 → 158 req/s, a ~16% drop. Ours
	// should drop by a broadly similar factor.
	drop := (x0 - x25) / x0
	if drop < 0.05 || drop > 0.35 {
		t.Fatalf("0→25%% buy throughput drop = %v", drop)
	}
	if _, _, err := BuildRelationship3(caseConfig(), workload.AppServF(), []float64{0}); err == nil {
		t.Fatal("one buy point should fail")
	}
}

func TestSpread(t *testing.T) {
	got := spread(0.2, 0.6, 3)
	want := []float64{0.2, 0.4, 0.6}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("spread = %v, want %v", got, want)
		}
	}
	if one := spread(1, 2, 1); len(one) != 1 || one[0] != 1.5 {
		t.Fatalf("spread count 1 = %v", one)
	}
}

// TestBuildServerMixZeroMatchesBuild pins the serving cache's
// compatibility contract: a buy fraction of 0 must produce exactly the
// model Build produces for that architecture, parameter for parameter.
func TestBuildServerMixZeroMatchesBuild(t *testing.T) {
	arch := workload.AppServF()
	m, err := Build(caseConfig(), []workload.ServerArch{arch})
	if err != nil {
		t.Fatal(err)
	}
	sm, evals, err := BuildServerMix(caseConfig(), arch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if evals != 4+4+2 {
		t.Fatalf("evaluations = %d, want 10", evals)
	}
	want := m.Servers[arch.Name]
	if sm.MaxThroughput != want.MaxThroughput || sm.M != want.M ||
		sm.CL != want.CL || sm.LambdaL != want.LambdaL ||
		sm.CU != want.CU || sm.LambdaU != want.LambdaU {
		t.Fatalf("mix-0 model %+v differs from Build's %+v", sm, want)
	}
}

// TestBuildServerMixHeavierMix checks that a buy-heavy mix calibrates
// a model with lower capacity than all-browse: buy requests consume
// more of every resource, so the layered pseudo data must push max
// throughput down, exactly as the paper's figure 4 trend.
func TestBuildServerMixHeavierMix(t *testing.T) {
	arch := workload.AppServF()
	browse, _, err := BuildServerMix(caseConfig(), arch, 0)
	if err != nil {
		t.Fatal(err)
	}
	mixed, _, err := BuildServerMix(caseConfig(), arch, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if err := mixed.Validate(); err != nil {
		t.Fatalf("mixed model invalid: %v", err)
	}
	if mixed.MaxThroughput >= browse.MaxThroughput {
		t.Fatalf("30%% buy Xmax %v not below all-browse %v", mixed.MaxThroughput, browse.MaxThroughput)
	}
	if _, _, err := BuildServerMix(caseConfig(), arch, 1.5); err == nil {
		t.Fatal("buy fraction > 1 should fail")
	}
}
