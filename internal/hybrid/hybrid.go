// Package hybrid implements the paper's hybrid prediction method
// (§6): a historical model whose calibration data is *generated* by a
// layered queuing model instead of being measured. The layered model
// is calibrated once (per §5); thereafter it is solved at a handful of
// client populations per server architecture to produce pseudo
// historical data points, which calibrate relationship 1 (and, for
// heterogeneous workloads, relationship 3) of the historical model.
//
// This is the paper's "advanced" hybrid model: the layered model
// generates data for the specific architectures predictions are
// required for, so relationship 2 is not needed — each architecture is
// represented as an established server. The cost is a one-off
// "start-up" delay while the layered solver runs (11 seconds on the
// paper's Athlon); after it, predictions are closed-form and as fast
// as the historical method's.
package hybrid

import (
	"context"
	"errors"
	"fmt"
	"time"

	"perfpred/internal/hist"
	"perfpred/internal/lqn"
	"perfpred/internal/parallel"
	"perfpred/internal/workload"
)

// Config controls hybrid model construction.
type Config struct {
	// DB is the shared database server.
	DB workload.DBServer
	// Demands are the layered-queuing calibrated per-request-type
	// demands on the reference architecture (§5, Table 2).
	Demands map[workload.RequestType]workload.Demand
	// PointsPerEquation is how many pseudo historical data points the
	// layered model generates for each of the lower and upper
	// equations (the paper uses a maximum of 4). 0 selects 4; the
	// minimum is 2.
	PointsPerEquation int
	// LQN tunes the layered solver used for data generation.
	LQN lqn.Options
	// Workers bounds how many architectures generate their pseudo data
	// concurrently during Build. Each architecture's solves are
	// independent, so the built model is identical for any worker
	// count. 0 selects runtime.GOMAXPROCS(0); 1 builds serially.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.PointsPerEquation == 0 {
		c.PointsPerEquation = 4
	}
	return c
}

// Model is a calibrated hybrid model: one historical server model per
// architecture, all calibrated from layered-queuing pseudo data.
type Model struct {
	// Servers maps architecture name to its calibrated historical
	// model.
	Servers map[string]*hist.ServerModel
	// StartupDelay is the total time spent generating pseudo
	// historical data and calibrating — the §6/§8.5 one-off cost
	// before the first prediction.
	StartupDelay time.Duration
	// Evaluations counts layered-solver runs during start-up.
	Evaluations int
}

// Build constructs the hybrid model for the given architectures. For
// each architecture it derives the max throughput and gradient from
// the layered model, generates the pseudo data points, and calibrates
// relationship 1.
func Build(cfg Config, servers []workload.ServerArch) (*Model, error) {
	cfg = cfg.withDefaults()
	if cfg.PointsPerEquation < 2 {
		return nil, errors.New("hybrid: need at least 2 points per equation")
	}
	if len(servers) == 0 {
		return nil, errors.New("hybrid: no server architectures")
	}
	start := time.Now()
	m := &Model{Servers: make(map[string]*hist.ServerModel, len(servers))}
	type built struct {
		sm    *hist.ServerModel
		evals int
	}
	results, err := parallel.Map(context.Background(), cfg.Workers, len(servers),
		func(_ context.Context, i int) (built, error) {
			sm, evals, err := buildServer(cfg, servers[i])
			if err != nil {
				return built{}, fmt.Errorf("hybrid: building %s: %w", servers[i].Name, err)
			}
			return built{sm: sm, evals: evals}, nil
		})
	if err != nil {
		return nil, err
	}
	for i, b := range results {
		m.Evaluations += b.evals
		m.Servers[servers[i].Name] = b.sm
	}
	m.StartupDelay = time.Since(start)
	if mm := metrics.Load(); mm != nil {
		mm.builds.Inc()
		mm.evaluations.Add(uint64(m.Evaluations))
	}
	return m, nil
}

func buildServer(cfg Config, arch workload.ServerArch) (*hist.ServerModel, int, error) {
	return buildServerMix(cfg, arch, 0)
}

// BuildServerMix builds one architecture's hybrid server model under a
// fixed buy mix: the layered model is swept over *mixed* populations
// (buyFrac buy clients, the rest browse) instead of the typical
// all-browse workload, and the resulting pseudo data calibrates a
// historical model whose predictions are mean response times under
// that mix. buyFrac 0 reproduces Build's per-architecture models
// exactly. This is the per-(architecture, mix) build the long-lived
// prediction service caches; it returns the calibrated model and the
// number of layered-solver evaluations the start-up cost went on.
func BuildServerMix(cfg Config, arch workload.ServerArch, buyFrac float64) (*hist.ServerModel, int, error) {
	cfg = cfg.withDefaults()
	if cfg.PointsPerEquation < 2 {
		return nil, 0, errors.New("hybrid: need at least 2 points per equation")
	}
	if buyFrac < 0 || buyFrac > 1 {
		return nil, 0, fmt.Errorf("hybrid: buy fraction %v outside [0,1]", buyFrac)
	}
	sm, evals, err := buildServerMix(cfg, arch, buyFrac)
	if err != nil {
		return nil, evals, fmt.Errorf("hybrid: building %s (buy %.1f%%): %w", arch.Name, 100*buyFrac, err)
	}
	if mm := metrics.Load(); mm != nil {
		mm.builds.Inc()
		mm.evaluations.Add(uint64(evals))
	}
	return sm, evals, nil
}

func buildServerMix(cfg Config, arch workload.ServerArch, buyFrac float64) (*hist.ServerModel, int, error) {
	mm := metrics.Load()
	evals := 0
	// The whole pseudo-data sweep solves one model at different client
	// populations: build it once, mutate the populations in place, and
	// warm-start each solve from the last — this is the start-up delay
	// §8.5 charges the hybrid method for. The all-browse path keeps the
	// single-class typical workload Build has always used, so its
	// models (and the experiment goldens behind them) are unchanged.
	makeLoad := func(n int) workload.Workload {
		if buyFrac <= 0 {
			return workload.TypicalWorkload(n)
		}
		return workload.MixedWorkload(n, buyFrac)
	}
	model, err := lqn.NewTradeModel(arch, cfg.DB, cfg.Demands, makeLoad(1))
	if err != nil {
		return nil, 0, err
	}
	solver := lqn.NewSolver()
	solver.WarmStart = true
	solveTypical := func(n int) (*lqn.Result, error) {
		for i, p := range makeLoad(n) {
			model.Classes[i].Population = p.Clients
		}
		return solver.Solve(model, cfg.LQN)
	}
	// Max throughput: solve far past the saturation the benchmark
	// suggests and read the plateau throughput.
	estSat := int(arch.Speed * workload.MaxThroughputF * (workload.ThinkTimeMean + 1))
	phase := mm.phaseStart()
	res, err := solveTypical(2 * estSat)
	if err != nil {
		return nil, evals, err
	}
	evals++
	mm.phaseEnd(pickMaxTP, phase)
	xMax := res.TotalThroughput()
	if xMax <= 0 {
		return nil, evals, errors.New("hybrid: layered model predicts zero max throughput")
	}

	// Gradient: one light-load solve; m = X/N well below saturation.
	nLight := maxInt(1, int(0.2*float64(estSat)))
	phase = mm.phaseStart()
	res, err = solveTypical(nLight)
	if err != nil {
		return nil, evals, err
	}
	evals++
	mm.phaseEnd(pickGrad, phase)
	m := res.TotalThroughput() / float64(nLight)
	if m <= 0 {
		return nil, evals, errors.New("hybrid: layered model predicts zero gradient")
	}
	nStar := xMax / m

	// Pseudo historical data: PointsPerEquation populations below 66%
	// of the max-throughput load and the same number above 110%.
	var points []hist.DataPoint
	gen := func(fracs []float64) error {
		for _, f := range fracs {
			n := maxInt(1, int(f*nStar))
			r, err := solveTypical(n)
			if err != nil {
				return err
			}
			evals++
			points = append(points, hist.DataPoint{
				Clients: float64(n),
				MeanRT:  r.MeanResponseTime(),
				Samples: 0, // pseudo data: no real samples behind it
			})
		}
		return nil
	}
	phase = mm.phaseStart()
	if err := gen(spread(0.20, 0.62, cfg.PointsPerEquation)); err != nil {
		return nil, evals, err
	}
	if err := gen(spread(1.15, 1.70, cfg.PointsPerEquation)); err != nil {
		return nil, evals, err
	}
	mm.phaseEnd(pickData, phase)
	phase = mm.phaseStart()
	sm, err := hist.CalibrateServer(arch, xMax, m, points)
	if err != nil {
		return nil, evals, err
	}
	mm.phaseEnd(pickCal, phase)
	return sm, evals, nil
}

// spread returns count values evenly spaced across [lo, hi].
func spread(lo, hi float64, count int) []float64 {
	if count == 1 {
		return []float64{(lo + hi) / 2}
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(count-1)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Predict returns the hybrid mean response time prediction for the
// named architecture at n clients. After start-up this is closed-form:
// no layered solves happen here.
func (m *Model) Predict(server string, n float64) (float64, error) {
	sm, ok := m.Servers[server]
	if !ok {
		return 0, fmt.Errorf("hybrid: no model for server %q", server)
	}
	return sm.Predict(n), nil
}

// PredictPercentile converts the mean prediction into a percentile
// prediction via the §7.1 distributions, like the historical method.
func (m *Model) PredictPercentile(server string, n, p, b float64) (float64, error) {
	sm, ok := m.Servers[server]
	if !ok {
		return 0, fmt.Errorf("hybrid: no model for server %q", server)
	}
	return sm.PredictPercentile(n, p, b)
}

// MaxClients inverts the named server's model for an SLA goal — the
// hybrid method inherits the historical method's closed-form
// inversion (§8.2).
func (m *Model) MaxClients(server string, goalRT float64) (float64, error) {
	sm, ok := m.Servers[server]
	if !ok {
		return 0, fmt.Errorf("hybrid: no model for server %q", server)
	}
	return sm.MaxClients(goalRT)
}

// BuildRelationship3 generates relationship 3 (buy% → max throughput)
// from layered-model max-throughput evaluations at the given buy
// percentages on the reference (established) architecture — how the
// paper generates its figure 4 inputs with LQNS.
func BuildRelationship3(cfg Config, established workload.ServerArch, buyPcts []float64) (*hist.Relationship3, int, error) {
	cfg = cfg.withDefaults()
	if len(buyPcts) < 2 {
		return nil, 0, errors.New("hybrid: need at least two buy percentages")
	}
	evals := 0
	points := make([]hist.BuyPoint, 0, len(buyPcts))
	estSat := int(established.Speed * workload.MaxThroughputF * (workload.ThinkTimeMean + 1))
	// Varying the buy percentage only re-splits the fixed total
	// population between the two classes; the model structure is
	// constant, so build it once and sweep the populations with a
	// warm-started solver.
	model, err := lqn.NewTradeModel(established, cfg.DB, cfg.Demands, workload.MixedWorkload(2*estSat, buyPcts[0]/100))
	if err != nil {
		return nil, evals, err
	}
	solver := lqn.NewSolver()
	solver.WarmStart = true
	for _, pct := range buyPcts {
		for i, p := range workload.MixedWorkload(2*estSat, pct/100) {
			model.Classes[i].Population = p.Clients
		}
		res, err := solver.Solve(model, cfg.LQN)
		if err != nil {
			return nil, evals, err
		}
		evals++
		points = append(points, hist.BuyPoint{BuyPct: pct, MaxThroughput: res.TotalThroughput()})
	}
	rel3, err := hist.FitRelationship3(points)
	if mm := metrics.Load(); mm != nil {
		mm.evaluations.Add(uint64(evals))
	}
	return rel3, evals, err
}
