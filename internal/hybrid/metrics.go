package hybrid

import (
	"sync/atomic"
	"time"

	"perfpred/internal/obs"
)

// hybridMetrics time the hybrid method's one-off start-up cost (§8.5)
// phase by phase: where the 11-seconds-on-an-Athlon delay actually
// goes. Histograms record seconds per server architecture built.
type hybridMetrics struct {
	builds      *obs.Counter   // Build calls completed
	evaluations *obs.Counter   // layered-solver runs during start-up
	phaseMaxTP  *obs.Histogram // max-throughput solve
	phaseGrad   *obs.Histogram // light-load gradient solve
	phaseData   *obs.Histogram // pseudo-data generation sweep
	phaseCal    *obs.Histogram // relationship-1 calibration
}

var metrics atomic.Pointer[hybridMetrics]

// EnableMetrics registers the hybrid builder's counters and phase
// timers on r and turns instrumentation on. A nil r disables
// instrumentation again; when disabled the builder takes no wall-clock
// readings beyond its existing StartupDelay measurement.
func EnableMetrics(r *obs.Registry) {
	if r == nil {
		metrics.Store(nil)
		return
	}
	b := obs.DurationBuckets()
	metrics.Store(&hybridMetrics{
		builds:      r.Counter("hybrid_builds"),
		evaluations: r.Counter("hybrid_evaluations"),
		phaseMaxTP:  r.Histogram("hybrid_phase_maxthroughput_seconds", b...),
		phaseGrad:   r.Histogram("hybrid_phase_gradient_seconds", b...),
		phaseData:   r.Histogram("hybrid_phase_pseudodata_seconds", b...),
		phaseCal:    r.Histogram("hybrid_phase_calibrate_seconds", b...),
	})
}

// phaseStart returns a start time only when instrumentation is on, so
// the disabled path takes no clock readings.
func (m *hybridMetrics) phaseStart() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// phaseEnd records the elapsed phase time into the histogram selected
// by pick. The field access happens behind the nil guard, so call
// sites need no guard of their own.
func (m *hybridMetrics) phaseEnd(pick func(*hybridMetrics) *obs.Histogram, start time.Time) {
	if m == nil {
		return
	}
	pick(m).Observe(time.Since(start).Seconds())
}

func pickMaxTP(m *hybridMetrics) *obs.Histogram { return m.phaseMaxTP }
func pickGrad(m *hybridMetrics) *obs.Histogram  { return m.phaseGrad }
func pickData(m *hybridMetrics) *obs.Histogram  { return m.phaseData }
func pickCal(m *hybridMetrics) *obs.Histogram   { return m.phaseCal }
