package hybrid

import (
	"testing"

	"perfpred/internal/workload"
)

// BenchmarkHybridBuild measures the §8.5 start-up delay: per-
// architecture pseudo-data generation over warm-started population
// sweeps plus calibration. Serial (Workers 1) so the number is
// comparable across machines.
func BenchmarkHybridBuild(b *testing.B) {
	cfg := Config{
		DB:      workload.CaseStudyDB(),
		Demands: workload.CaseStudyDemands(),
		Workers: 1,
	}
	servers := workload.CaseStudyServers()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := Build(cfg, servers)
		if err != nil {
			b.Fatal(err)
		}
		if len(m.Servers) != len(servers) {
			b.Fatalf("built %d servers, want %d", len(m.Servers), len(servers))
		}
	}
}

// BenchmarkBuildRelationship3 covers the figure 4 input generation:
// one model, mixed-workload population sweep.
func BenchmarkBuildRelationship3(b *testing.B) {
	cfg := Config{
		DB:      workload.CaseStudyDB(),
		Demands: workload.CaseStudyDemands(),
		Workers: 1,
	}
	pcts := []float64{0, 10, 20, 30, 40, 50}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := BuildRelationship3(cfg, workload.AppServF(), pcts); err != nil {
			b.Fatal(err)
		}
	}
}
