package rm

import (
	"testing"
)

func twoApps(loadA, loadB []int) []Application {
	return []Application{
		{Name: "shop", Shares: CaseStudyShares(), LoadPerEpoch: loadA},
		{Name: "bank", Shares: CaseStudyShares(), LoadPerEpoch: loadB},
	}
}

func TestProviderValidation(t *testing.T) {
	truth := truthModels()
	servers := CaseStudyServers()
	if _, err := RunProvider(nil, servers, truth, truth, ProviderOptions{}); err == nil {
		t.Fatal("no apps should fail")
	}
	if _, err := RunProvider(twoApps([]int{100}, []int{100}), nil, truth, truth, ProviderOptions{}); err == nil {
		t.Fatal("no servers should fail")
	}
	if _, err := RunProvider(twoApps([]int{100, 200}, []int{100}), servers, truth, truth, ProviderOptions{}); err == nil {
		t.Fatal("mismatched epoch counts should fail")
	}
	bad := twoApps([]int{100}, []int{100})
	bad[0].Name = ""
	if _, err := RunProvider(bad, servers, truth, truth, ProviderOptions{}); err == nil {
		t.Fatal("unnamed app should fail")
	}
	bad = twoApps([]int{-1}, []int{100})
	if _, err := RunProvider(bad, servers, truth, truth, ProviderOptions{}); err == nil {
		t.Fatal("negative load should fail")
	}
}

func TestProviderIsolatesApplications(t *testing.T) {
	// Every server serves exactly one application per epoch — the §2
	// isolation requirement.
	truth := truthModels()
	servers := CaseStudyServers()
	apps := twoApps([]int{3000, 3000}, []int{3000, 3000})
	results, err := RunProvider(apps, servers, truth, truth, ProviderOptions{Slack: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		seen := map[string]string{}
		total := 0
		for app, names := range r.ServersByApp {
			for _, name := range names {
				if prev, dup := seen[name]; dup {
					t.Fatalf("epoch %d: server %s serves both %s and %s", r.Epoch, name, prev, app)
				}
				seen[name] = app
				total++
			}
		}
		if total != len(servers) {
			t.Fatalf("epoch %d: %d servers assigned, want %d", r.Epoch, total, len(servers))
		}
	}
}

func TestProviderTransfersFollowLoadShift(t *testing.T) {
	// Epoch 0: shop carries everything. Epoch 1: the load moves to
	// bank — servers must transfer, and bank must then serve its load
	// with 0 failures under a perfect predictor.
	truth := truthModels()
	servers := CaseStudyServers()
	apps := twoApps([]int{6000, 500}, []int{500, 6000})
	results, err := RunProvider(apps, servers, truth, truth, ProviderOptions{Slack: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Transfers != 0 {
		t.Fatalf("epoch 0 transfers = %d, want 0 (initial assignment)", results[0].Transfers)
	}
	if results[1].Transfers == 0 {
		t.Fatal("load shift should force server transfers")
	}
	// The shifted load is served: both applications within goals.
	for app, fail := range results[1].FailurePctByApp {
		if fail > 0 {
			t.Fatalf("epoch 1: %s failures = %v, want 0", app, fail)
		}
	}
	// Server counts follow the load: bank holds more power in epoch 1.
	powerOf := func(names []string) float64 {
		var p float64
		byName := map[string]float64{}
		for _, s := range servers {
			byName[s.Name] = s.Power
		}
		for _, n := range names {
			p += byName[n]
		}
		return p
	}
	if powerOf(results[1].ServersByApp["bank"]) <= powerOf(results[1].ServersByApp["shop"]) {
		t.Fatal("bank should hold the larger share after the shift")
	}
}

func TestProviderStableLoadAvoidsTransfers(t *testing.T) {
	// With constant loads, the keep-first policy should leave servers
	// in place after the initial assignment.
	truth := truthModels()
	servers := CaseStudyServers()
	apps := twoApps([]int{4000, 4000, 4000}, []int{2000, 2000, 2000})
	results, err := RunProvider(apps, servers, truth, truth, ProviderOptions{Slack: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results[1:] {
		if r.Transfers != 0 {
			t.Fatalf("epoch %d: %d transfers under stable load", r.Epoch, r.Transfers)
		}
	}
}

func TestProviderZeroLoadApplication(t *testing.T) {
	truth := truthModels()
	servers := CaseStudyServers()
	apps := twoApps([]int{5000}, []int{0})
	results, err := RunProvider(apps, servers, truth, truth, ProviderOptions{Slack: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if fail := results[0].FailurePctByApp["shop"]; fail != 0 {
		t.Fatalf("shop failures = %v", fail)
	}
	if _, ok := results[0].FailurePctByApp["bank"]; ok {
		t.Fatal("idle application should report no failure entry")
	}
}
