package rm

import (
	"fmt"
	"math"
	"testing"

	"perfpred/internal/hist"
	"perfpred/internal/sla"
	"perfpred/internal/workload"
)

// truthModels builds analytic per-architecture models shaped like the
// case study (§4.2 scaling laws), used as the "real system" in tests.
func truthModels() ModelSet {
	mk := func(arch workload.ServerArch) *hist.ServerModel {
		x := arch.MaxThroughputTypical
		return &hist.ServerModel{
			Arch:          arch,
			MaxThroughput: x,
			CL:            0.0002*x + 0.05,
			LambdaL:       3.0 * math.Pow(x, -1.8),
			LambdaU:       1.0 / x,
			CU:            -workload.ThinkTimeMean,
			M:             0.14,
		}
	}
	return ModelSet{
		"AppServS":  mk(workload.AppServS()),
		"AppServF":  mk(workload.AppServF()),
		"AppServVF": mk(workload.AppServVF()),
	}
}

func TestSplitLoadExact(t *testing.T) {
	classes, err := SplitLoad(1000, CaseStudyShares())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range classes {
		total += c.Clients
	}
	if total != 1000 {
		t.Fatalf("split total = %d", total)
	}
	if classes[0].Clients != 100 || classes[1].Clients != 450 || classes[2].Clients != 450 {
		t.Fatalf("split = %+v", classes)
	}
	// Rounding stays exact for awkward totals.
	classes, err = SplitLoad(997, CaseStudyShares())
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	for _, c := range classes {
		total += c.Clients
	}
	if total != 997 {
		t.Fatalf("awkward split total = %d", total)
	}
}

func TestSplitLoadErrors(t *testing.T) {
	if _, err := SplitLoad(-1, CaseStudyShares()); err == nil {
		t.Fatal("negative total should fail")
	}
	if _, err := SplitLoad(10, []ClassShare{{Name: "x", GoalRT: 1, Fraction: 0.5}}); err == nil {
		t.Fatal("non-unit fractions should fail")
	}
	if _, err := SplitLoad(10, []ClassShare{
		{Name: "x", GoalRT: 1, Fraction: -0.5}, {Name: "y", GoalRT: 1, Fraction: 1.5},
	}); err == nil {
		t.Fatal("negative fraction should fail")
	}
}

func TestAllocateRespectsPriorityOrder(t *testing.T) {
	truth := truthModels()
	servers := []Server{{Name: "only", Arch: "AppServS", Power: 86}}
	// More demand than the one server can hold: the looser-goal class
	// must be rejected first.
	classes := []Class{
		{Name: "loose", GoalRT: 0.600, Clients: 2000},
		{Name: "tight", GoalRT: 0.150, Clients: 100},
	}
	plan, err := Allocate(classes, servers, truth, 1.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.PlannedFor("tight") != 100 {
		t.Fatalf("tight class planned %d of 100", plan.PlannedFor("tight"))
	}
	if plan.RejectedPlanned["loose"] == 0 {
		t.Fatal("loose class should bear the rejection")
	}
	if plan.RejectedPlanned["tight"] != 0 {
		t.Fatal("tight class should be fully placed")
	}
}

func TestAllocateLastServerRule(t *testing.T) {
	truth := truthModels()
	servers := []Server{
		{Name: "big", Arch: "AppServVF", Power: 320},
		{Name: "small", Arch: "AppServS", Power: 86},
	}
	// A class small enough to fit on either server: with the rule it
	// takes the smallest feasible server; without it, the biggest.
	classes := []Class{{Name: "c", GoalRT: 0.600, Clients: 100}}
	withRule, err := Allocate(classes, servers, truth, 1.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(withRule.Allocations) != 1 || withRule.Allocations[0].Server != "small" {
		t.Fatalf("with rule: allocations = %+v, want all on small", withRule.Allocations)
	}
	without, err := Allocate(classes, servers, truth, 1.0, Options{DisableLastServerRule: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(without.Allocations) != 1 || without.Allocations[0].Server != "big" {
		t.Fatalf("without rule: allocations = %+v, want all on big", without.Allocations)
	}
}

func TestAllocateSlackInflatesPlan(t *testing.T) {
	truth := truthModels()
	servers := CaseStudyServers()
	classes := []Class{{Name: "c", GoalRT: 0.600, Clients: 1000}}
	plan, err := Allocate(classes, servers, truth, 1.1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.PlannedFor("c"); got != 1100 {
		t.Fatalf("planned = %d, want 1100 (slack-inflated)", got)
	}
}

func TestAllocateUsagePct(t *testing.T) {
	truth := truthModels()
	servers := []Server{
		{Name: "a", Arch: "AppServS", Power: 86},
		{Name: "b", Arch: "AppServVF", Power: 320},
	}
	classes := []Class{{Name: "c", GoalRT: 0.600, Clients: 10}}
	plan, err := Allocate(classes, servers, truth, 1.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Last-server rule puts 10 clients on the small server only.
	want := 100 * 86.0 / 406.0
	if math.Abs(plan.UsagePct-want) > 1e-9 {
		t.Fatalf("usage = %v, want %v", plan.UsagePct, want)
	}
}

func TestAllocateErrors(t *testing.T) {
	truth := truthModels()
	servers := CaseStudyServers()
	classes := []Class{{Name: "c", GoalRT: 0.6, Clients: 10}}
	if _, err := Allocate(nil, servers, truth, 1, Options{}); err == nil {
		t.Fatal("no classes should fail")
	}
	if _, err := Allocate(classes, nil, truth, 1, Options{}); err == nil {
		t.Fatal("no servers should fail")
	}
	if _, err := Allocate(classes, servers, truth, -1, Options{}); err == nil {
		t.Fatal("negative slack should fail")
	}
	if _, err := Allocate([]Class{{Name: "c", GoalRT: 0, Clients: 1}}, servers, truth, 1, Options{}); err == nil {
		t.Fatal("zero goal should fail")
	}
	if _, err := Allocate(classes, []Server{{Name: "s", Arch: "AppServS", Power: 0}}, truth, 1, Options{}); err == nil {
		t.Fatal("zero power should fail")
	}
	if _, err := Allocate(classes, []Server{{Name: "s", Arch: "ghost", Power: 1}}, truth, 1, Options{}); err == nil {
		t.Fatal("unknown arch should fail")
	}
}

func TestEvaluatePerfectPredictorZeroFailures(t *testing.T) {
	truth := truthModels()
	servers := CaseStudyServers()
	classes, err := SplitLoad(4000, CaseStudyShares())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Allocate(classes, servers, truth, 1.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(plan, classes, servers, truth, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SLAFailurePct != 0 {
		t.Fatalf("perfect predictions should give 0%% failures, got %v (rejected %v)",
			res.SLAFailurePct, res.RejectedByClass)
	}
	if res.ServerUsagePct <= 0 || res.ServerUsagePct > 100 {
		t.Fatalf("usage = %v", res.ServerUsagePct)
	}
}

func TestEvaluateOverpredictionCausesFailures(t *testing.T) {
	truth := truthModels()
	// Optimistic predictor: thinks servers hold 30% more than reality.
	optimistic := Biased{Base: truth, Y: 1.3}
	servers := CaseStudyServers()
	classes, err := SplitLoad(9000, CaseStudyShares())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Allocate(classes, servers, optimistic, 1.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(plan, classes, servers, truth, EvalOptions{DisableRuntimeOptimization: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SLAFailurePct <= 0 {
		t.Fatal("overprediction at high load should cause failures")
	}
}

func TestUniformInaccuracyCompensatedBySlack(t *testing.T) {
	// §9.1: with uniform predictive error y, setting slack = y gives
	// 0% SLA failures below 100% usage and a % server usage that does
	// not depend on y.
	truth := truthModels()
	servers := CaseStudyServers()
	loads := []int{2000, 4000, 6000}
	var usages []float64
	for _, y := range []float64{1.0, 1.15, 1.3} {
		pred := Biased{Base: truth, Y: y}
		points, err := SweepLoad(CaseStudyShares(), servers, pred, truth, y, loads, Options{}, EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range points {
			if p.ServerUsagePct < 100 && p.SLAFailurePct > 0 {
				t.Fatalf("y=%v slack=y: %v%% failures at %d clients", y, p.SLAFailurePct, p.TotalClients)
			}
		}
		_, usage := AverageMetrics(points)
		usages = append(usages, usage)
	}
	for i := 1; i < len(usages); i++ {
		if math.Abs(usages[i]-usages[0]) > 3 {
			t.Fatalf("server usage should be ≈constant across y: %v", usages)
		}
	}
}

func TestRuntimeOptimizationReducesFailures(t *testing.T) {
	truth := truthModels()
	optimistic := Biased{Base: truth, Y: 1.4}
	servers := CaseStudyServers()
	classes, err := SplitLoad(7000, CaseStudyShares())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Allocate(classes, servers, optimistic, 1.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	with, err := Evaluate(plan, classes, servers, truth, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Evaluate(plan, classes, servers, truth, EvalOptions{DisableRuntimeOptimization: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.SLAFailurePct > without.SLAFailurePct {
		t.Fatalf("optimisation increased failures: %v vs %v", with.SLAFailurePct, without.SLAFailurePct)
	}
}

func TestSweepSlackTradeOff(t *testing.T) {
	// Figure 7's shape: as slack drops from the zero-failure level,
	// average failures rise and average usage falls (saving rises).
	truth := truthModels()
	pred := Biased{Base: truth, Y: 1.1} // non-uniform stand-in: optimistic
	servers := CaseStudyServers()
	loads := []int{2000, 4000, 6000, 8000}
	slacks := []float64{1.1, 0.9, 0.7, 0.5}
	points, err := SweepSlack(CaseStudyShares(), servers, pred, truth, slacks, loads, Options{AllowDeflation: true}, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(slacks) {
		t.Fatalf("got %d slack points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].AvgFailPct < points[i-1].AvgFailPct-1e-9 {
			t.Fatalf("failures should not fall as slack drops: %+v", points)
		}
		if points[i].AvgUsageSavingPct < points[i-1].AvgUsageSavingPct-1e-9 {
			t.Fatalf("usage saving should not fall as slack drops: %+v", points)
		}
	}
	if points[0].AvgUsageSavingPct != 0 {
		t.Fatalf("saving at the anchor slack should be 0, got %v", points[0].AvgUsageSavingPct)
	}
}

func TestMinZeroFailureSlack(t *testing.T) {
	truth := truthModels()
	pred := Biased{Base: truth, Y: 1.2}
	servers := CaseStudyServers()
	loads := []int{2000, 4000, 6000}
	slacks := []float64{0.9, 1.0, 1.1, 1.2, 1.3}
	got, err := MinZeroFailureSlack(CaseStudyShares(), servers, pred, truth, slacks, loads, Options{AllowDeflation: true}, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// With uniform overprediction y=1.2, slack ≈ 1.2 compensates.
	if got < 1.1 || got > 1.3 {
		t.Fatalf("min zero-failure slack = %v, want ≈1.2", got)
	}
}

func TestBiasedPredictorConsistency(t *testing.T) {
	truth := truthModels()
	b := Biased{Base: truth, Y: 1.2}
	n, err := b.MaxClients("AppServF", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	base, err := truth.MaxClients("AppServF", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n-1.2*base) > 1e-9 {
		t.Fatalf("biased capacity = %v, want %v", n, 1.2*base)
	}
	// Predict at the biased capacity returns ≈ the goal.
	rt, err := b.Predict("AppServF", n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rt-0.3) > 0.01 {
		t.Fatalf("biased predict at capacity = %v, want ≈0.3", rt)
	}
	if _, err := (Biased{Base: truth, Y: 0}).Predict("AppServF", 10); err == nil {
		t.Fatal("zero bias should fail")
	}
	if _, err := truth.Predict("ghost", 1); err == nil {
		t.Fatal("unknown arch should fail")
	}
	if _, err := truth.MaxClients("ghost", 1); err == nil {
		t.Fatal("unknown arch should fail")
	}
}

func TestCheapestSlack(t *testing.T) {
	points := []SlackPoint{
		{Slack: 1.1, AvgFailPct: 0, AvgUsagePct: 53},
		{Slack: 1.0, AvgFailPct: 0, AvgUsagePct: 49},
		{Slack: 0.9, AvgFailPct: 1.3, AvgUsagePct: 44},
		{Slack: 0.5, AvgFailPct: 33, AvgUsagePct: 27},
	}
	// SLA failures costed heavily: the zero-failure lowest-usage slack
	// wins.
	best, cost, err := CheapestSlack(points, sla.CostModel{FailureCostPerPct: 100, UsageCostPerPct: 1})
	if err != nil {
		t.Fatal(err)
	}
	if best.Slack != 1.0 {
		t.Fatalf("best slack = %v, want 1.0", best.Slack)
	}
	if math.Abs(cost-49) > 1e-9 {
		t.Fatalf("cost = %v", cost)
	}
	// Usage costed heavily: aggressive slack wins despite failures.
	best, _, err = CheapestSlack(points, sla.CostModel{FailureCostPerPct: 0.1, UsageCostPerPct: 10})
	if err != nil {
		t.Fatal(err)
	}
	if best.Slack != 0.5 {
		t.Fatalf("usage-heavy best slack = %v, want 0.5", best.Slack)
	}
	if _, _, err := CheapestSlack(nil, sla.CostModel{FailureCostPerPct: 1}); err == nil {
		t.Fatal("empty points should fail")
	}
	if _, _, err := CheapestSlack(points, sla.CostModel{}); err == nil {
		t.Fatal("invalid cost model should fail")
	}
}

func TestEvaluateRejectThreshold(t *testing.T) {
	// A runtime rejection threshold below 1 makes servers shed clients
	// earlier (they reject when response times are merely *near* the
	// goal), so failures cannot decrease as the threshold tightens.
	truth := truthModels()
	servers := CaseStudyServers()
	classes, err := SplitLoad(12000, CaseStudyShares())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Allocate(classes, servers, truth, 1.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Evaluate(plan, classes, servers, truth, EvalOptions{RejectThreshold: 1.0, DisableRuntimeOptimization: true})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Evaluate(plan, classes, servers, truth, EvalOptions{RejectThreshold: 0.8, DisableRuntimeOptimization: true})
	if err != nil {
		t.Fatal(err)
	}
	if tight.SLAFailurePct < loose.SLAFailurePct {
		t.Fatalf("tighter threshold reduced failures: %v vs %v", tight.SLAFailurePct, loose.SLAFailurePct)
	}
	if _, err := Evaluate(plan, classes, servers, truth, EvalOptions{RejectThreshold: -1}); err == nil {
		t.Fatal("negative threshold should fail")
	}
}

// stubPred is a hand-scripted predictor for capacity-shape tests:
// caps[arch][goal] is the predicted max client count.
type stubPred struct {
	caps map[string]map[float64]float64
}

func (p stubPred) Predict(arch string, n float64) (float64, error) { return 0, nil }

func (p stubPred) MaxClients(arch string, goal float64) (float64, error) {
	byGoal, ok := p.caps[arch]
	if !ok {
		return 0, fmt.Errorf("stub: unknown arch %q", arch)
	}
	c, ok := byGoal[goal]
	if !ok {
		return 0, fmt.Errorf("stub: unknown goal %v for %q", goal, arch)
	}
	return c, nil
}

func TestAllocateRejectsSubUnitySlack(t *testing.T) {
	// Regression: slack < 1 deflates the planned workload (slack 0
	// plans nothing and reports a perfect, empty plan). Allocate must
	// reject it unless the caller opts into deflation for a deliberate
	// §9 sweep.
	truth := truthModels()
	servers := CaseStudyServers()
	classes := []Class{{Name: "c", GoalRT: 0.600, Clients: 1000}}
	for _, slack := range []float64{0, 0.5, 0.9, 0.999} {
		if _, err := Allocate(classes, servers, truth, slack, Options{}); err == nil {
			t.Fatalf("slack %v should fail without AllowDeflation", slack)
		}
	}
	// Negative slack stays an error even with the opt-in.
	if _, err := Allocate(classes, servers, truth, -0.5, Options{AllowDeflation: true}); err == nil {
		t.Fatal("negative slack should fail even with AllowDeflation")
	}
	// The opt-in admits the sweep values; slack 0 is the documented
	// no-op plan.
	plan, err := Allocate(classes, servers, truth, 0, Options{AllowDeflation: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Allocations) != 0 || plan.UsagePct != 0 {
		t.Fatalf("slack 0 should plan nothing: %+v", plan)
	}
	if plan, err = Allocate(classes, servers, truth, 0.9, Options{AllowDeflation: true}); err != nil {
		t.Fatal(err)
	}
	if got := plan.PlannedFor("c"); got != 900 {
		t.Fatalf("slack 0.9 planned %d, want 900", got)
	}
}

func TestAllocateRejectionStopsLowerPriorityClasses(t *testing.T) {
	// Regression for Algorithm 1's rejection semantics: once a class
	// cannot be fully placed, that class's remainder AND all
	// lower-priority (looser-goal) classes are rejected — later classes
	// may not squeeze in around a higher-priority class that did not
	// fit. The weak server here has room for the loose class but none
	// for the tight one, so the old behavior would have placed "loose"
	// on it after "tight" overflowed.
	pred := stubPred{caps: map[string]map[float64]float64{
		"strong": {0.150: 100, 0.600: 200},
		"weak":   {0.150: 0, 0.600: 50},
	}}
	servers := []Server{
		{Name: "S", Arch: "strong", Power: 100},
		{Name: "W", Arch: "weak", Power: 50},
	}
	classes := []Class{
		{Name: "tight", GoalRT: 0.150, Clients: 150},
		{Name: "loose", GoalRT: 0.600, Clients: 40},
	}
	plan, err := Allocate(classes, servers, pred, 1.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.PlannedFor("tight"); got != 100 {
		t.Fatalf("tight planned %d, want 100 (all of S)", got)
	}
	if plan.RejectedPlanned["tight"] != 50 {
		t.Fatalf("tight rejected %d, want 50", plan.RejectedPlanned["tight"])
	}
	if got := plan.PlannedFor("loose"); got != 0 {
		t.Fatalf("loose planned %d, want 0: lower-priority workload is rejected once a higher class overflows", got)
	}
	if plan.RejectedPlanned["loose"] != 40 {
		t.Fatalf("loose rejected %d, want 40", plan.RejectedPlanned["loose"])
	}
	for _, a := range plan.Allocations {
		if a.Server == "W" {
			t.Fatalf("nothing may be placed on the weak server after the overflow: %+v", plan.Allocations)
		}
	}

	// Sanity: with a loose class that fits entirely, nothing is
	// rejected and the weak server is used.
	fitting := []Class{
		{Name: "tight", GoalRT: 0.150, Clients: 80},
		{Name: "loose", GoalRT: 0.600, Clients: 40},
	}
	plan, err = Allocate(fitting, servers, pred, 1.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.RejectedPlanned) != 0 {
		t.Fatalf("fitting load should reject nothing: %+v", plan.RejectedPlanned)
	}
	if got := plan.PlannedFor("loose"); got != 40 {
		t.Fatalf("loose planned %d, want 40", got)
	}
}
