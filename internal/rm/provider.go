package rm

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// This file implements the §2 system model's outer loop: "a service
// provider which hosts a number of applications and also contains a
// resource manager that controls the transfer of application servers
// between those applications. An application server can only process
// the workload from one application at a time to isolate the
// applications." The provider watches each application's offered load
// over time, sizes each application's server share with the prediction
// model, transfers whole servers between applications, and then runs
// Algorithm 1 within each application.

// Application is one hosted application: its workload mix and its
// offered load per epoch.
type Application struct {
	// Name labels the application.
	Name string
	// Shares is the application's service-class mix.
	Shares []ClassShare
	// LoadPerEpoch is the total offered clients at each epoch.
	LoadPerEpoch []int
}

// Validate reports the first structural problem.
func (a Application) Validate() error {
	if a.Name == "" {
		return errors.New("rm: application needs a name")
	}
	if len(a.Shares) == 0 {
		return fmt.Errorf("rm: application %q needs class shares", a.Name)
	}
	if len(a.LoadPerEpoch) == 0 {
		return fmt.Errorf("rm: application %q needs a load series", a.Name)
	}
	for _, n := range a.LoadPerEpoch {
		if n < 0 {
			return fmt.Errorf("rm: application %q has negative load", a.Name)
		}
	}
	return nil
}

// EpochResult is the provider's outcome at one epoch.
type EpochResult struct {
	Epoch int
	// ServersByApp maps application name to the servers assigned.
	ServersByApp map[string][]string
	// Transfers counts servers that changed application this epoch.
	Transfers int
	// FailurePctByApp and UsagePct carry the §9.1 cost metrics:
	// per-application SLA failures and pool-wide committed power.
	FailurePctByApp map[string]float64
	UsagePct        float64
}

// ProviderOptions tunes the provider loop.
type ProviderOptions struct {
	// Slack is Algorithm 1's workload inflation within applications.
	Slack float64
	// Alloc and Eval pass through to Allocate/Evaluate.
	Alloc Options
	Eval  EvalOptions
}

// RunProvider simulates the service provider across epochs: at each
// epoch the applications' predicted server needs are computed, servers
// are transferred between applications (need-proportional, whole
// servers, preferring to keep a server where it is to minimise
// transfers), and each application's workload is placed and evaluated.
// pred plans; truth plays the role of the real system.
func RunProvider(apps []Application, servers []Server, pred, truth Predictor, opt ProviderOptions) ([]EpochResult, error) {
	if len(apps) == 0 || len(servers) == 0 {
		return nil, errors.New("rm: provider needs applications and servers")
	}
	epochs := len(apps[0].LoadPerEpoch)
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		if len(a.LoadPerEpoch) != epochs {
			return nil, fmt.Errorf("rm: application %q has %d epochs, want %d", a.Name, len(a.LoadPerEpoch), epochs)
		}
	}
	if opt.Slack <= 0 {
		opt.Slack = 1.0
	}

	var totalPower float64
	for _, s := range servers {
		totalPower += s.Power
	}

	// owner[serverName] = application name ("" = unassigned).
	owner := make(map[string]string, len(servers))
	results := make([]EpochResult, 0, epochs)

	for epoch := 0; epoch < epochs; epoch++ {
		// Predicted power need per application: clients at the tightest
		// goal convert to required throughput via each class's share.
		need := make(map[string]float64, len(apps))
		var needTotal float64
		for _, a := range apps {
			n := float64(a.LoadPerEpoch[epoch]) * opt.Slack
			// Power need ≈ offered request rate; with the case-study
			// think time the gradient converts clients to requests/s.
			need[a.Name] = n
			needTotal += n
		}

		// Target power share per application.
		target := make(map[string]float64, len(apps))
		for name, v := range need {
			if needTotal > 0 {
				target[name] = v / needTotal * totalPower
			}
		}

		// Keep-first assignment: each application retains its current
		// servers while under target; leftovers go to the neediest.
		assigned := make(map[string]float64, len(apps))
		newOwner := make(map[string]string, len(servers))
		var free []Server
		// Deterministic order.
		sorted := make([]Server, len(servers))
		copy(sorted, servers)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		for _, s := range sorted {
			app := owner[s.Name]
			if app != "" && assigned[app]+s.Power <= target[app]+s.Power*0.5 {
				newOwner[s.Name] = app
				assigned[app] += s.Power
			} else {
				free = append(free, s)
			}
		}
		for _, s := range free {
			// Give to the application with the largest unmet target.
			best := ""
			bestGap := -math.MaxFloat64
			names := make([]string, 0, len(apps))
			for _, a := range apps {
				names = append(names, a.Name)
			}
			sort.Strings(names)
			for _, name := range names {
				gap := target[name] - assigned[name]
				if gap > bestGap {
					best, bestGap = name, gap
				}
			}
			newOwner[s.Name] = best
			assigned[best] += s.Power
		}

		transfers := 0
		for name, app := range newOwner {
			if prev := owner[name]; prev != "" && prev != app {
				transfers++
			}
		}
		owner = newOwner

		// Run Algorithm 1 within each application on its servers.
		res := EpochResult{
			Epoch:           epoch,
			ServersByApp:    make(map[string][]string, len(apps)),
			Transfers:       transfers,
			FailurePctByApp: make(map[string]float64, len(apps)),
		}
		var usedPower float64
		for _, a := range apps {
			var appServers []Server
			for _, s := range sorted {
				if owner[s.Name] == a.Name {
					appServers = append(appServers, s)
					res.ServersByApp[a.Name] = append(res.ServersByApp[a.Name], s.Name)
				}
			}
			load := a.LoadPerEpoch[epoch]
			if load == 0 {
				continue
			}
			if len(appServers) == 0 {
				res.FailurePctByApp[a.Name] = 100
				continue
			}
			classes, err := SplitLoad(load, a.Shares)
			if err != nil {
				return nil, err
			}
			plan, err := Allocate(classes, appServers, pred, opt.Slack, opt.Alloc)
			if err != nil {
				return nil, err
			}
			ev, err := Evaluate(plan, classes, appServers, truth, opt.Eval)
			if err != nil {
				return nil, err
			}
			res.FailurePctByApp[a.Name] = ev.SLAFailurePct
			usedPower += plan.UsagePct / 100 * sumPower(appServers)
		}
		if totalPower > 0 {
			res.UsagePct = 100 * usedPower / totalPower
		}
		results = append(results, res)
	}
	return results, nil
}

func sumPower(servers []Server) float64 {
	var p float64
	for _, s := range servers {
		p += s.Power
	}
	return p
}
