package rm

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: the runtime evaluation conserves clients — every real
// client is either served or counted as an SLA failure, for any load,
// slack and uniform predictive bias.
func TestEvaluateConservesClientsProperty(t *testing.T) {
	truth := truthModels()
	servers := CaseStudyServers()
	f := func(loadRaw uint16, slackRaw, biasRaw uint8, disableOpt bool) bool {
		total := int(loadRaw%20000) + 1
		slack := 0.5 + float64(slackRaw%16)/10 // 0.5 .. 2.0
		bias := 0.7 + float64(biasRaw%14)/10   // 0.7 .. 2.0
		classes, err := SplitLoad(total, CaseStudyShares())
		if err != nil {
			return false
		}
		pred := Biased{Base: truth, Y: bias}
		plan, err := Allocate(classes, servers, pred, slack, Options{AllowDeflation: true})
		if err != nil {
			return false
		}
		res, err := Evaluate(plan, classes, servers, truth, EvalOptions{DisableRuntimeOptimization: disableOpt})
		if err != nil {
			return false
		}
		accounted := 0
		rejected := 0
		for _, c := range classes {
			accounted += res.Tracker.ClassServed(c.Name) + res.Tracker.ClassRejected(c.Name)
			rejected += res.RejectedByClass[c.Name]
		}
		if accounted != total {
			return false
		}
		// Failure percentage is consistent with the counts.
		wantPct := 100 * float64(rejected) / float64(total)
		return math.Abs(res.SLAFailurePct-wantPct) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: planned allocations never exceed the predicted capacity of
// any server at the tightest goal placed on it.
func TestAllocateRespectsPredictedCapacityProperty(t *testing.T) {
	truth := truthModels()
	servers := CaseStudyServers()
	f := func(loadRaw uint16, slackRaw uint8) bool {
		total := int(loadRaw%15000) + 1
		slack := 0.5 + float64(slackRaw%16)/10
		classes, err := SplitLoad(total, CaseStudyShares())
		if err != nil {
			return false
		}
		plan, err := Allocate(classes, servers, truth, slack, Options{AllowDeflation: true})
		if err != nil {
			return false
		}
		perServer := map[string]int{}
		minGoal := map[string]float64{}
		archOf := map[string]string{}
		for _, s := range servers {
			archOf[s.Name] = s.Arch
		}
		goalOf := map[string]float64{}
		for _, c := range classes {
			goalOf[c.Name] = c.GoalRT
		}
		for _, a := range plan.Allocations {
			perServer[a.Server] += a.Clients
			g := goalOf[a.Class]
			if mg, ok := minGoal[a.Server]; !ok || g < mg {
				minGoal[a.Server] = g
			}
		}
		for name, n := range perServer {
			capN, err := truth.MaxClients(archOf[name], minGoal[name])
			if err != nil {
				return false
			}
			if float64(n) > math.Floor(capN)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
