package rm

import (
	"sync/atomic"

	"perfpred/internal/obs"
)

// rmMetrics count the resource manager's planning and evaluation work:
// Algorithm 1 runs, placements made, planned rejections, runtime
// evaluations, and how often the underlying performance model is
// consulted (the §8.5 prediction-delay driver).
type rmMetrics struct {
	allocateCalls     *obs.Counter // Allocate (Algorithm 1) runs
	allocations       *obs.Counter // placements appended to plans
	plannedRejections *obs.Counter // planned clients rejected from plans
	evaluateCalls     *obs.Counter // Evaluate (runtime playout) runs
	predictorCalls    *obs.Counter // Predictor.MaxClients consultations
}

var metrics atomic.Pointer[rmMetrics]

// EnableMetrics registers the resource manager's counters on r and
// turns instrumentation on. A nil r disables instrumentation again.
func EnableMetrics(r *obs.Registry) {
	if r == nil {
		metrics.Store(nil)
		return
	}
	metrics.Store(&rmMetrics{
		allocateCalls:     r.Counter("rm_allocate_calls"),
		allocations:       r.Counter("rm_allocations"),
		plannedRejections: r.Counter("rm_planned_rejections"),
		evaluateCalls:     r.Counter("rm_evaluate_calls"),
		predictorCalls:    r.Counter("rm_predictor_calls"),
	})
}
