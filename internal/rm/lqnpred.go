package rm

import (
	"fmt"
	"math"

	"perfpred/internal/lqn"
	"perfpred/internal/workload"
)

// LQNPredictor is a Predictor backed by retained, warm-started layered
// queuing solves: one §5 trade model per architecture is built once,
// and every Predict edits the model's class population in place and
// re-solves on a retained lqn.Solver with WarmStart enabled — adjacent
// populations seed each other's Schweitzer iteration, so a capacity
// search's doubling/bisection probes and a replan loop's repeated
// questions converge in a fraction of the cold iteration count.
// MaxClients answers through CapacitySearch with a per-(arch, goal)
// memo, so a steady replan cadence asks each genuinely new question
// once.
//
// An LQNPredictor is single-goroutine: the retained solvers and the
// memo are not locked. Give each concurrent consumer its own instance.
type LQNPredictor struct {
	opt     lqn.Options
	limit   int
	archs   map[string]*lqnArchState
	capMemo map[capKey]int

	solves, iterations, capHits, capMisses uint64
}

type lqnArchState struct {
	model  *lqn.Model
	solver *lqn.Solver
	class  *lqn.Class
}

// NewLQNPredictor builds the per-architecture models for the given
// class mix (the goal-bearing planning class; think time included) and
// retains a warm-started solver per architecture. opt tunes every
// solve; the zero Options select the solver defaults.
func NewLQNPredictor(archs []workload.ServerArch, db workload.DBServer, demands map[workload.RequestType]workload.Demand, class workload.ServiceClass, opt lqn.Options) (*LQNPredictor, error) {
	if len(archs) == 0 {
		return nil, fmt.Errorf("rm: LQN predictor needs at least one architecture")
	}
	p := &LQNPredictor{
		opt:     opt,
		limit:   maxOracleClients,
		archs:   make(map[string]*lqnArchState, len(archs)),
		capMemo: make(map[capKey]int),
	}
	for _, a := range archs {
		m, err := lqn.NewTradeModel(a, db, demands, workload.Workload{{Class: class, Clients: 1}})
		if err != nil {
			return nil, err
		}
		s := lqn.NewSolver()
		s.WarmStart = true
		p.archs[a.Name] = &lqnArchState{model: m, solver: s, class: m.Classes[0]}
	}
	return p, nil
}

// Predict returns the layered model's mean response time for the
// architecture at n clients (rounded to the nearest population ≥ 1).
func (p *LQNPredictor) Predict(arch string, n float64) (float64, error) {
	st, ok := p.archs[arch]
	if !ok {
		return 0, fmt.Errorf("rm: no architecture %q in LQN predictor", arch)
	}
	clients := int(math.Round(n))
	if clients < 1 {
		clients = 1
	}
	st.class.Population = clients
	res, err := st.solver.Solve(st.model, p.opt)
	if err != nil {
		return 0, err
	}
	p.solves++
	p.iterations += uint64(res.Iterations)
	return res.MeanResponseTime(), nil
}

// MaxClients returns the largest population the architecture holds
// within goalRT per the layered model, via CapacitySearch over integer
// populations, memoized per (architecture, goal).
func (p *LQNPredictor) MaxClients(arch string, goalRT float64) (float64, error) {
	k := capKey{arch: arch, goal: goalRT}
	if c, ok := p.capMemo[k]; ok {
		p.capHits++
		return float64(c), nil
	}
	n, err := CapacitySearch(func(x float64) (float64, error) {
		return p.Predict(arch, x)
	}, goalRT, p.limit)
	if err != nil {
		return 0, err
	}
	p.capMisses++
	p.capMemo[k] = n
	return float64(n), nil
}

// LQNPredictorStats reports the work the retained solvers have done.
type LQNPredictorStats struct {
	// Solves and Iterations count MVA solves and their fixed-point
	// sweeps; warm starts show up as a low Iterations/Solves ratio.
	Solves, Iterations uint64
	// CapacityHits and CapacityMisses count MaxClients memo outcomes.
	CapacityHits, CapacityMisses uint64
}

// Stats returns the predictor's cumulative work counters.
func (p *LQNPredictor) Stats() LQNPredictorStats {
	return LQNPredictorStats{
		Solves: p.solves, Iterations: p.iterations,
		CapacityHits: p.capHits, CapacityMisses: p.capMisses,
	}
}
