package rm

import (
	"errors"
	"testing"
)

// bruteCapacity is the reference oracle: a linear scan over integer
// populations.
func bruteCapacity(predict func(float64) (float64, error), goal float64, limit int) int {
	best := 0
	for n := 1; n <= limit; n++ {
		rt, err := predict(float64(n))
		if err != nil || rt > goal {
			break
		}
		best = n
	}
	return best
}

// CapacitySearch must agree exactly with a brute-force scan on
// monotone curves, across goals that land at zero, mid-range and at
// the limit.
func TestCapacitySearchMatchesBruteForce(t *testing.T) {
	curve := func(n float64) (float64, error) {
		return 0.05 + 0.001*n + 0.0004*n*n, nil
	}
	for _, goal := range []float64{0.049, 0.0515, 0.08, 0.2, 1, 5, 100} {
		for _, limit := range []int{1, 7, 64, 300} {
			got, err := CapacitySearch(curve, goal, limit)
			if err != nil {
				t.Fatal(err)
			}
			if want := bruteCapacity(curve, goal, limit); got != want {
				t.Errorf("goal %v limit %d: search %d, brute force %d", goal, limit, got, want)
			}
		}
	}
	if _, err := CapacitySearch(curve, 0, 100); err == nil {
		t.Error("non-positive goal accepted")
	}
	fail := errors.New("probe failed")
	if _, err := CapacitySearch(func(float64) (float64, error) { return 0, fail }, 1, 100); !errors.Is(err, fail) {
		t.Errorf("probe error not surfaced: %v", err)
	}
}

// Regression: when the doubling sequence overshoots a limit that does
// NOT lie on the 2^k probe grid, the limit itself must be probed, not
// returned on faith. With rt(n) = n/1000 and a 50 ms goal the true
// capacity is 50; the old code returned limit (60) untested, a
// population that misses the goal by 20%.
func TestCapacitySearchOvershootProbesLimit(t *testing.T) {
	probes := 0
	curve := func(n float64) (float64, error) {
		probes++
		return 0.001 * n, nil
	}
	const goal = 0.05
	got, err := CapacitySearch(curve, goal, 60)
	if err != nil {
		t.Fatal(err)
	}
	searchProbes := probes
	if want := bruteCapacity(curve, goal, 60); got != want {
		t.Fatalf("limit 60: search %d, brute force %d", got, want)
	}
	// The defining property: the goal holds at the reported capacity
	// and breaks one past it.
	if rt, _ := curve(float64(got)); rt > goal {
		t.Errorf("capacity %d misses the goal: rt %v > %v", got, rt, goal)
	}
	if rt, _ := curve(float64(got + 1)); rt <= goal {
		t.Errorf("capacity %d not maximal: %d still meets the goal at %v", got, got+1, rt)
	}
	if searchProbes > 20 {
		t.Errorf("search degenerated to a linear scan: %d probes", searchProbes)
	}
	// A limit the curve does satisfy must still be reported as the
	// capacity — but only after a verifying probe.
	probed40 := false
	got, err = CapacitySearch(func(n float64) (float64, error) {
		if n == 40 {
			probed40 = true
		}
		return 0.001 * n, nil
	}, goal, 40)
	if err != nil {
		t.Fatal(err)
	}
	if got != 40 {
		t.Errorf("satisfiable limit 40: got %d", got)
	}
	if !probed40 {
		t.Error("limit 40 reported without being probed")
	}
	// Every call site that caps its search at a non-2^k limit leans on
	// this; sweep odd limits around the true capacity for agreement
	// with brute force.
	for limit := 45; limit <= 55; limit++ {
		got, err := CapacitySearch(curve, goal, limit)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteCapacity(curve, goal, limit); got != want {
			t.Errorf("limit %d: search %d, brute force %d", limit, got, want)
		}
	}
}

// Equivalence regression for the realCapacity rewrite: the doubling +
// bisection search probing truth.Predict must report the same integer
// capacity the old implementation got by flooring truth.MaxClients,
// for the analytic case-study models at every goal the evaluation
// harness sweeps.
func TestCapacitySearchMatchesMaxClients(t *testing.T) {
	truth := truthModels()
	for arch := range truth {
		for _, goal := range []float64{0.05, 0.1, 0.15, 0.25, 0.5, 1, 2} {
			got, err := CapacitySearch(func(n float64) (float64, error) {
				return truth.Predict(arch, n)
			}, goal, maxOracleClients)
			if err != nil {
				t.Fatal(err)
			}
			n, err := truth.MaxClients(arch, goal)
			if err != nil {
				t.Fatal(err)
			}
			// The analytic inverse solves Predict(N) == goal in real
			// arithmetic; at populations where N lands within an ulp of
			// an integer the floor can disagree with the integer search
			// by one. The defining property below is the exact check.
			if want := int(n); got < want-1 || got > want+1 {
				t.Errorf("%s goal %v: search %d, floor(MaxClients) = %d", arch, goal, got, want)
			}
			// The defining property, independent of the analytic inverse:
			// goal holds at the reported capacity and breaks one past it.
			if got > 0 {
				if rt, _ := truth.Predict(arch, float64(got)); rt > goal {
					t.Errorf("%s goal %v: capacity %d already misses the goal (%v)", arch, goal, got, rt)
				}
			}
			if rt, _ := truth.Predict(arch, float64(got+1)); rt <= goal && got < maxOracleClients {
				t.Errorf("%s goal %v: capacity %d not maximal (%d still meets it at %v)", arch, goal, got, got+1, rt)
			}
		}
	}
}

// Evaluate's realCapacity memo must not change results: two passes with
// fresh and shared memos agree.
func TestRealCapacityMemoised(t *testing.T) {
	truth := truthModels()
	memo := make(map[capKey]int)
	first, err := realCapacity(truth, "AppServF", 0.25, memo)
	if err != nil {
		t.Fatal(err)
	}
	if len(memo) != 1 {
		t.Fatalf("memo holds %d entries after one probe", len(memo))
	}
	if again, _ := realCapacity(truth, "AppServF", 0.25, memo); again != first {
		t.Errorf("memoised capacity %d != first %d", again, first)
	}
	if fresh, _ := realCapacity(truth, "AppServF", 0.25, make(map[capKey]int)); fresh != first {
		t.Errorf("fresh-memo capacity %d != first %d", fresh, first)
	}
}
