package rm

import "strconv"

// PoolState is one pool's contribution to a fleet snapshot: its stable
// index and planning identity plus the barrier-synced load observations
// the fleet layer maintains (internal/fleet). InFlight and MeanRT do
// not enter Algorithm 1 directly — the plan depends on the predictor's
// steady-state curves — but they ride along so replan policies and
// observers see the state the plan was cut against.
type PoolState struct {
	// Pool is the stable pool index; the planned server name is
	// PoolServerName(Pool).
	Pool int
	// Arch is the architecture key the Predictor understands.
	Arch string
	// Power is the pool's processing power (max throughput under the
	// typical workload), the % server usage denominator.
	Power float64
	// InFlight is the barrier snapshot of requests in service or queued
	// at the pool.
	InFlight int
	// MeanRT is the pool's smoothed service-side mean response time,
	// seconds; 0 until the pool completes its first request.
	MeanRT float64
}

// FleetSnapshot is the replan entry point's input: everything Algorithm
// 1 needs to re-place the fleet's workload, captured at one window
// barrier so every field is a deterministic function of the simulated
// trajectory (identical at any shard count).
type FleetSnapshot struct {
	// Now is the simulated barrier time the snapshot was taken at.
	Now float64
	// Classes is the workload to place: per service class, the SLA goal
	// and the client count the replan should plan for (the fleet layer
	// estimates live totals via Little's law).
	Classes []Class
	// Pools lists every pool in stable index order.
	Pools []PoolState
}

// PoolServerName is the server name pool i carries inside plans
// ("p<i>") — the key fleet layers use to map allocations back to pool
// indexes.
func PoolServerName(i int) string { return "p" + strconv.Itoa(i) }

// Replanner turns fleet snapshots into Algorithm 1 plans. It retains
// its server scratch between calls, so a periodic in-loop replan costs
// one Allocate over the snapshot — and when Pred is backed by retained
// warm-started solvers (LQNPredictor), adjacent replans reuse both the
// solver iteration history and the capacity memo.
//
// A Replanner is single-goroutine, like the warm solvers behind it;
// the fleet layer calls it from the coordinator's barrier hook.
type Replanner struct {
	// Pred is the planning predictor Algorithm 1 consults.
	Pred Predictor
	// Slack is the workload-inflation multiplier; 0 selects 1.
	Slack float64
	// Opts tunes Algorithm 1.
	Opts Options

	servers []Server // retained scratch rebuilt only on pool-count change
	replans uint64
}

// Replan runs Algorithm 1 against the snapshot and returns the plan.
func (rp *Replanner) Replan(snap *FleetSnapshot) (*Plan, error) {
	if len(rp.servers) != len(snap.Pools) {
		rp.servers = make([]Server, len(snap.Pools))
		for i := range rp.servers {
			rp.servers[i].Name = PoolServerName(i)
		}
	}
	for i, ps := range snap.Pools {
		rp.servers[i].Arch = ps.Arch
		rp.servers[i].Power = ps.Power
	}
	slack := rp.Slack
	if slack == 0 {
		slack = 1
	}
	rp.replans++
	return Allocate(snap.Classes, rp.servers, rp.Pred, slack, rp.Opts)
}

// Replans returns how many plans this replanner has cut.
func (rp *Replanner) Replans() uint64 { return rp.replans }
