package rm

import (
	"math"
	"testing"

	"perfpred/internal/workload"
)

// tablePred is a deterministic fake: each architecture holds a fixed
// number of clients at any goal, with response time scaling linearly
// through the goal at that capacity.
type tablePred map[string]float64

func (p tablePred) Predict(arch string, n float64) (float64, error) {
	return 0.1 * n / p[arch], nil
}

func (p tablePred) MaxClients(arch string, goalRT float64) (float64, error) {
	return math.Floor(p[arch] * goalRT * 10), nil
}

func frontierPrices() []ArchPrice {
	mk := func(name string, x float64) workload.ServerArch {
		return workload.ServerArch{Name: name, Speed: x / workload.MaxThroughputF, MPL: 50, MaxThroughputTypical: x}
	}
	return []ArchPrice{
		{Arch: mk("CheapSlow", 86), HourlyCost: 0.08, Max: 3},
		{Arch: mk("Mid", 186), HourlyCost: 0.17, Max: 3},
		{Arch: mk("FastDear", 320), HourlyCost: 0.35, Max: 3},
	}
}

// The returned point set must cover every mix within the caps, carry
// consistent pricing, and — the property the frontier exists for —
// never leave a dominated mix unmarked (or mark a non-dominated one).
func TestCostFrontierDominanceProperty(t *testing.T) {
	pred := tablePred{"CheapSlow": 80, "Mid": 190, "FastDear": 330}
	points, err := CostFrontier(frontierPrices(), pred, workload.ThinkTimeMean, FrontierOptions{
		Shares:     CaseStudyShares(),
		MaxServers: 6,
		MaxClients: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mix count: all (a,b,c) with a,b,c ≤ 3, 1 ≤ a+b+c ≤ 6.
	want := 0
	for a := 0; a <= 3; a++ {
		for b := 0; b <= 3; b++ {
			for c := 0; c <= 3; c++ {
				if s := a + b + c; s >= 1 && s <= 6 {
					want++
				}
			}
		}
	}
	if len(points) != want {
		t.Fatalf("%d mixes evaluated, want %d", len(points), want)
	}
	prices := frontierPrices()
	frontier := 0
	for _, p := range points {
		var cost float64
		servers := 0
		for i, c := range p.Counts {
			cost += float64(c) * prices[i].HourlyCost
			servers += c
		}
		if math.Abs(cost-p.HourlyCost) > 1e-9 || servers != p.Servers {
			t.Fatalf("inconsistent pricing for %v: %+v", p.Counts, p)
		}
		if !p.Dominated {
			frontier++
		}
		// Independent dominance re-derivation for every point.
		dominated := false
		for _, q := range points {
			if q.Capacity >= p.Capacity && q.HourlyCost <= p.HourlyCost &&
				(q.Capacity > p.Capacity || q.HourlyCost < p.HourlyCost) {
				dominated = true
				break
			}
		}
		if dominated != p.Dominated {
			t.Errorf("mix %v: dominated = %v, brute force says %v", p.Counts, p.Dominated, dominated)
		}
	}
	if frontier == 0 {
		t.Fatal("empty frontier")
	}
	// The frontier must be strictly monotone: sorted by cost, each
	// non-dominated point holds strictly more clients than the last.
	lastCap := -1
	lastCost := -1.0
	for _, p := range points {
		if p.Dominated {
			continue
		}
		if p.HourlyCost < lastCost || (p.HourlyCost == lastCost && p.Capacity <= lastCap) ||
			(p.HourlyCost > lastCost && p.Capacity <= lastCap) {
			t.Errorf("frontier not monotone at %v (cap %d, cost %v after cap %d, cost %v)",
				p.Counts, p.Capacity, p.HourlyCost, lastCap, lastCost)
		}
		lastCap, lastCost = p.Capacity, p.HourlyCost
	}
	// $/req must price cheaper-per-request fleets below dearer ones
	// when both axes agree: a frontier point with more capacity per
	// dollar has the lower CostPerMReq.
	for _, p := range points {
		if p.Capacity > 0 && (p.ThroughputPerSec <= 0 || p.CostPerMReq <= 0) {
			t.Errorf("mix %v holds %d clients but has no priced throughput", p.Counts, p.Capacity)
		}
	}
}

// The frontier must respect per-architecture caps and reject
// degenerate configurations.
func TestCostFrontierValidation(t *testing.T) {
	pred := tablePred{"CheapSlow": 80, "Mid": 190, "FastDear": 330}
	if _, err := CostFrontier(nil, pred, 7, FrontierOptions{MaxServers: 2}); err == nil {
		t.Error("empty price list accepted")
	}
	prices := frontierPrices()
	if _, err := CostFrontier(prices, pred, 7, FrontierOptions{}); err == nil {
		t.Error("zero server cap accepted")
	}
	bad := frontierPrices()
	bad[0].HourlyCost = 0
	if _, err := CostFrontier(bad, pred, 7, FrontierOptions{MaxServers: 2}); err == nil {
		t.Error("free architecture accepted")
	}
	points, err := CostFrontier(prices, pred, workload.ThinkTimeMean, FrontierOptions{MaxServers: 2, MaxClients: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		for i, c := range p.Counts {
			if c > prices[i].Max {
				t.Errorf("mix %v exceeds cap for %s", p.Counts, prices[i].Arch.Name)
			}
		}
		if p.Servers > 2 {
			t.Errorf("mix %v exceeds fleet cap", p.Counts)
		}
	}
}

// PredictorEval must rank an exact copy of the truth at zero error and
// a biased family at its bias.
func TestPredictorEvalScoring(t *testing.T) {
	truth := tablePred{"Mid": 190}
	exact := tablePred{"Mid": 190}
	low := tablePred{"Mid": 150} // under-predicts capacity, over-predicts RT
	scores, err := PredictorEval([]EvalFamily{
		{Name: "exact", Pred: exact},
		{Name: "biased", Pred: low, StartupSimSeconds: 300},
	}, truth, []EvalScenario{{Arch: "Mid", Pops: []int{50, 100, 200}, GoalRTs: []float64{0.2, 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatalf("%d scores", len(scores))
	}
	if s := scores[0]; s.MeanAbsRTErrPct != 0 || s.MeanAbsCapErrPct != 0 || s.RTProbes != 3 || s.CapProbes != 2 {
		t.Errorf("exact family scored %+v", s)
	}
	b := scores[1]
	if b.MeanAbsRTErrPct < 20 || b.MeanAbsCapErrPct < 15 {
		t.Errorf("biased family scored too well: %+v", b)
	}
	if b.StartupSimSeconds != 300 {
		t.Errorf("startup cost not carried: %+v", b)
	}
	if _, err := PredictorEval(nil, truth, nil); err == nil {
		t.Error("empty eval accepted")
	}
}
