package rm

import "fmt"

func errGoal(g float64) error {
	return fmt.Errorf("rm: capacity search needs a positive goal, got %v", g)
}

// CapacitySearch finds the largest integer population whose predicted
// mean response time stays within goalRT, by probing one client, then
// doubling the population until the goal breaks, then bisecting the
// final interval — the search SimOracle.MaxClients has always used,
// extracted so every capacity question in the package asks it the same
// way. predict is probed at integer populations only; limit caps the
// search (populations above it are reported as limit). Returns 0 when
// even one client misses the goal.
//
// The probe sequence is a pure function of (goalRT, the predictor's
// responses), so a deterministic predictor yields a deterministic
// capacity — the property the fleet replanner and the evaluation
// harness both rely on.
func CapacitySearch(predict func(n float64) (float64, error), goalRT float64, limit int) (int, error) {
	if goalRT <= 0 {
		return 0, errGoal(goalRT)
	}
	rt, err := predict(1)
	if err != nil {
		return 0, err
	}
	if rt > goalRT {
		return 0, nil // even one client misses the goal
	}
	lo, hi := 1, 2
	for {
		// Clamp the doubling to the limit and probe it like any other
		// upper bound: the limit is only a valid answer once it has been
		// verified to meet the goal. (Returning an unprobed limit left
		// populations in (lo, limit] unexamined, so the reported capacity
		// could silently miss the goal whenever doubling overshot.)
		if hi > limit {
			hi = limit
		}
		rt, err := predict(float64(hi))
		if err != nil {
			return 0, err
		}
		if rt > goalRT {
			break
		}
		if hi == limit {
			return limit, nil
		}
		lo = hi
		hi *= 2
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		rt, err := predict(float64(mid))
		if err != nil {
			return 0, err
		}
		if rt > goalRT {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo, nil
}
