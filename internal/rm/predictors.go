package rm

import (
	"fmt"

	"perfpred/internal/hist"
)

// ModelSet adapts per-architecture historical server models to the
// Predictor interface. Both the historical method's models (calibrated
// from measurements) and the hybrid method's (calibrated from layered
// pseudo data) slot in here; the hybrid package's Model satisfies
// Predictor directly as well.
type ModelSet map[string]*hist.ServerModel

// Predict returns the architecture's predicted mean response time at n
// clients.
func (m ModelSet) Predict(arch string, n float64) (float64, error) {
	sm, ok := m[arch]
	if !ok {
		return 0, fmt.Errorf("rm: no model for architecture %q", arch)
	}
	return sm.Predict(n), nil
}

// MaxClients returns the architecture's predicted capacity under the
// goal.
func (m ModelSet) MaxClients(arch string, goalRT float64) (float64, error) {
	sm, ok := m[arch]
	if !ok {
		return 0, fmt.Errorf("rm: no model for architecture %q", arch)
	}
	return sm.MaxClients(goalRT)
}

// Biased wraps a Predictor with the §9.1 uniform predictive
// inaccuracy: "multiplying the actual number of clients by y gives the
// prediction", i.e. predicted capacity = y × actual capacity. Y < 1
// underpredicts capacity; Y > 1 overpredicts it.
type Biased struct {
	Base Predictor
	Y    float64
}

// MaxClients scales the base capacity by Y.
func (b Biased) MaxClients(arch string, goalRT float64) (float64, error) {
	n, err := b.Base.MaxClients(arch, goalRT)
	if err != nil {
		return 0, err
	}
	return n * b.Y, nil
}

// Predict evaluates the base model at the un-biased population, so
// Predict and MaxClients stay mutually consistent.
func (b Biased) Predict(arch string, n float64) (float64, error) {
	if b.Y <= 0 {
		return 0, fmt.Errorf("rm: invalid bias %v", b.Y)
	}
	return b.Base.Predict(arch, n/b.Y)
}
