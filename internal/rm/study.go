package rm

import (
	"context"
	"errors"
	"fmt"
	"math"

	"perfpred/internal/parallel"
	"perfpred/internal/sla"
	"perfpred/internal/workload"
)

// ClassShare defines a service class as a fraction of the total
// offered load, with its SLA goal — the §9.1 workload specification
// (10% buy at 150 ms, 45% high-priority browse at 300 ms, 45%
// low-priority browse at 600 ms).
type ClassShare struct {
	Name     string
	GoalRT   float64
	Fraction float64
}

// CaseStudyShares returns the §9.1 workload mix.
func CaseStudyShares() []ClassShare {
	return []ClassShare{
		{Name: "buy", GoalRT: 0.150, Fraction: 0.10},
		{Name: "browse-high", GoalRT: 0.300, Fraction: 0.45},
		{Name: "browse-low", GoalRT: 0.600, Fraction: 0.45},
	}
}

// CaseStudyServers returns the §9.1 server pool: 16 application
// servers — eight of the new architecture (AppServS), four AppServF
// and four AppServVF.
func CaseStudyServers() []Server {
	var servers []Server
	add := func(arch workload.ServerArch, count int) {
		for i := 1; i <= count; i++ {
			servers = append(servers, Server{
				Name:  fmt.Sprintf("%s-%d", arch.Name, i),
				Arch:  arch.Name,
				Power: arch.MaxThroughputTypical,
			})
		}
	}
	add(workload.AppServS(), 8)
	add(workload.AppServF(), 4)
	add(workload.AppServVF(), 4)
	return servers
}

// SplitLoad turns a total client count into per-class Classes using
// the shares (largest-remainder rounding keeps the total exact).
func SplitLoad(total int, shares []ClassShare) ([]Class, error) {
	if total < 0 {
		return nil, errors.New("rm: negative total load")
	}
	var sum float64
	for _, s := range shares {
		if s.Fraction < 0 {
			return nil, fmt.Errorf("rm: class %q has negative fraction", s.Name)
		}
		sum += s.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("rm: class fractions sum to %v, want 1", sum)
	}
	classes := make([]Class, len(shares))
	assigned := 0
	fracs := make([]float64, len(shares))
	for i, s := range shares {
		exact := float64(total) * s.Fraction
		n := int(math.Floor(exact))
		classes[i] = Class{Name: s.Name, GoalRT: s.GoalRT, Clients: n}
		fracs[i] = exact - float64(n)
		assigned += n
	}
	for assigned < total {
		best := 0
		for i := 1; i < len(fracs); i++ {
			if fracs[i] > fracs[best] {
				best = i
			}
		}
		classes[best].Clients++
		fracs[best] = -1
		assigned++
	}
	return classes, nil
}

// SweepPoint is one load level of a figure-5/6 series.
type SweepPoint struct {
	TotalClients   int
	SLAFailurePct  float64
	ServerUsagePct float64
}

// SweepLoad runs the full plan/evaluate cycle at each load level with
// a fixed slack — one line of figures 5 and 6.
func SweepLoad(shares []ClassShare, servers []Server, pred, truth Predictor, slack float64, loads []int, allocOpts Options, evalOpts EvalOptions) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(loads))
	for _, total := range loads {
		classes, err := SplitLoad(total, shares)
		if err != nil {
			return nil, err
		}
		plan, err := Allocate(classes, servers, pred, slack, allocOpts)
		if err != nil {
			return nil, err
		}
		res, err := Evaluate(plan, classes, servers, truth, evalOpts)
		if err != nil {
			return nil, err
		}
		points = append(points, SweepPoint{
			TotalClients:   total,
			SLAFailurePct:  res.SLAFailurePct,
			ServerUsagePct: res.ServerUsagePct,
		})
	}
	return points, nil
}

// AverageMetrics computes the §9.1 'average % SLA failure' and
// 'average % server usage' across the loads prior to 100% server
// usage.
func AverageMetrics(points []SweepPoint) (avgFailPct, avgUsagePct float64) {
	n := 0
	for _, p := range points {
		if p.ServerUsagePct >= 100 {
			break
		}
		n++
	}
	return AverageMetricsN(points, n)
}

// AverageMetricsN averages the first n sweep points. SweepSlack uses
// it with a fixed n across slack levels so the averages compare the
// same loads.
func AverageMetricsN(points []SweepPoint, n int) (avgFailPct, avgUsagePct float64) {
	if n > len(points) {
		n = len(points)
	}
	if n <= 0 {
		return 0, 0
	}
	for _, p := range points[:n] {
		avgFailPct += p.SLAFailurePct
		avgUsagePct += p.ServerUsagePct
	}
	return avgFailPct / float64(n), avgUsagePct / float64(n)
}

// SlackPoint is one slack level of the figure-7/8 series.
type SlackPoint struct {
	Slack float64
	// AvgFailPct is the average % SLA failures across loads before
	// 100% usage.
	AvgFailPct float64
	// AvgUsagePct is the average % server usage across the same loads.
	AvgUsagePct float64
	// AvgUsageSavingPct is SUmax − AvgUsagePct (§9.1's '% server usage
	// saving' averaged over loads).
	AvgUsageSavingPct float64
}

// SweepSlack evaluates the load sweep at each slack level and reports
// the averaged cost metrics, with the saving measured against the
// usage at the first (largest) slack — call it with the minimum
// 0%-failure slack first in slacks to reproduce figure 7's SUmax
// anchoring. The set of loads averaged over is fixed by the anchor
// slack (its loads prior to 100% server usage), so every slack level's
// averages cover the same loads.
func SweepSlack(shares []ClassShare, servers []Server, pred, truth Predictor, slacks []float64, loads []int, allocOpts Options, evalOpts EvalOptions) ([]SlackPoint, error) {
	if len(slacks) == 0 {
		return nil, errors.New("rm: no slack levels")
	}
	// Each slack level's load sweep is an independent plan/evaluate
	// cycle over read-only predictors, so the sweeps fan out across the
	// cores; the anchor metrics (cutoff, SUmax) come from slacks[0]
	// exactly as in the serial loop, applied after the fan-out.
	series, err := parallel.Map(context.Background(), 0, len(slacks),
		func(_ context.Context, i int) ([]SweepPoint, error) {
			return SweepLoad(shares, servers, pred, truth, slacks[i], loads, allocOpts, evalOpts)
		})
	if err != nil {
		return nil, err
	}
	cutoff := 0
	for _, p := range series[0] {
		if p.ServerUsagePct >= 100 {
			break
		}
		cutoff++
	}
	if cutoff == 0 {
		cutoff = len(series[0])
	}
	var suMax float64
	out := make([]SlackPoint, 0, len(slacks))
	for i, slack := range slacks {
		fail, usage := AverageMetricsN(series[i], cutoff)
		if i == 0 {
			suMax = usage
		}
		out = append(out, SlackPoint{
			Slack:             slack,
			AvgFailPct:        fail,
			AvgUsagePct:       usage,
			AvgUsageSavingPct: suMax - usage,
		})
	}
	return out, nil
}

// CheapestSlack maps each slack point's cost metrics through the cost
// model and returns the cheapest point and its cost — the §9.1
// closing extension: "given such functions the y-axis of figure 7
// could become a single cost axis [and] slack setting(s) with the
// lowest cost could then be determined".
func CheapestSlack(points []SlackPoint, cost sla.CostModel) (SlackPoint, float64, error) {
	if err := cost.Validate(); err != nil {
		return SlackPoint{}, 0, err
	}
	if len(points) == 0 {
		return SlackPoint{}, 0, errors.New("rm: no slack points")
	}
	best := points[0]
	bestCost := cost.Cost(best.AvgFailPct, best.AvgUsagePct)
	for _, p := range points[1:] {
		if c := cost.Cost(p.AvgFailPct, p.AvgUsagePct); c < bestCost {
			best, bestCost = p, c
		}
	}
	return best, bestCost, nil
}

// MinZeroFailureSlack searches the given slack levels (ascending) for
// the smallest one with zero SLA failures at every load before 100%
// server usage — the paper's 1.1 for its non-uniform hybrid
// predictions.
func MinZeroFailureSlack(shares []ClassShare, servers []Server, pred, truth Predictor, slacks []float64, loads []int, allocOpts Options, evalOpts EvalOptions) (float64, error) {
	for _, slack := range slacks {
		points, err := SweepLoad(shares, servers, pred, truth, slack, loads, allocOpts, evalOpts)
		if err != nil {
			return 0, err
		}
		ok := true
		for _, p := range points {
			if p.ServerUsagePct >= 100 {
				break
			}
			if p.SLAFailurePct > 0 {
				ok = false
				break
			}
		}
		if ok {
			return slack, nil
		}
	}
	return 0, errors.New("rm: no slack level achieves zero failures")
}
