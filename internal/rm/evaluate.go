package rm

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"perfpred/internal/sla"
)

// EvalOptions tunes the runtime evaluation of a plan.
type EvalOptions struct {
	// RejectThreshold scales the goal at which a server starts
	// rejecting clients at runtime: servers "reject clients at runtime
	// if response times are within a threshold of missing SLA goals"
	// (§9). 0 selects 1.0 (reject exactly at the goal).
	RejectThreshold float64
	// DisableRuntimeOptimization turns off the re-placement of
	// rejected clients onto real spare capacity — the optimisation
	// responsible for the spiky figure-5 lines.
	DisableRuntimeOptimization bool
}

// Result is the runtime outcome of a plan under the real system's
// behaviour.
type Result struct {
	// SLAFailurePct is the percentage of (real) clients rejected.
	SLAFailurePct float64
	// ServerUsagePct is the planned % server usage (the processing
	// power committed to the application).
	ServerUsagePct float64
	// RejectedByClass maps class name to rejected real clients.
	RejectedByClass map[string]int
	// Tracker carries the underlying served/rejected accounting.
	Tracker *sla.Tracker
}

// Evaluate plays a plan out against the real system, represented by
// the truth predictor: real clients are distributed pro-rata over the
// planned (slack-inflated) allocations, each server rejects the
// clients beyond its *actual* capacity, and — unless disabled — the
// runtime optimisation re-places rejected clients on servers with real
// spare capacity. The two §9.1 cost metrics come back in Result.
func Evaluate(plan *Plan, classes []Class, servers []Server, truth Predictor, opts EvalOptions) (*Result, error) {
	if plan == nil {
		return nil, errors.New("rm: nil plan")
	}
	threshold := opts.RejectThreshold
	if threshold == 0 {
		threshold = 1.0
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("rm: invalid reject threshold %v", threshold)
	}
	if mm := metrics.Load(); mm != nil {
		mm.evaluateCalls.Inc()
	}

	classByName := make(map[string]Class, len(classes))
	for _, c := range classes {
		classByName[c.Name] = c
	}
	serverByName := make(map[string]Server, len(servers))
	for _, s := range servers {
		serverByName[s.Name] = s
	}

	// Distribute each class's real clients pro-rata over its planned
	// allocations (largest-remainder rounding keeps totals exact).
	type placement struct {
		server string
		class  string
		goal   float64
		real   int
	}
	var placements []placement
	tracker := sla.NewTracker()
	rejected := make(map[string]int)

	for _, c := range classes {
		planned := plan.PlannedFor(c.Name)
		if planned == 0 {
			if c.Clients > 0 {
				rejected[c.Name] += c.Clients
				tracker.Reject(c.Name, c.Clients)
			}
			continue
		}
		var allocs []Allocation
		for _, a := range plan.Allocations {
			if a.Class == c.Name {
				allocs = append(allocs, a)
			}
		}
		// Largest-remainder apportionment of real clients.
		shares := make([]float64, len(allocs))
		floors := make([]int, len(allocs))
		assigned := 0
		for i, a := range allocs {
			shares[i] = float64(c.Clients) * float64(a.Clients) / float64(planned)
			floors[i] = int(math.Floor(shares[i]))
			assigned += floors[i]
		}
		type rem struct {
			idx  int
			frac float64
		}
		rems := make([]rem, len(allocs))
		for i := range allocs {
			rems[i] = rem{i, shares[i] - float64(floors[i])}
		}
		sort.SliceStable(rems, func(i, j int) bool { return rems[i].frac > rems[j].frac })
		for k := 0; k < c.Clients-assigned; k++ {
			floors[rems[k%len(rems)].idx]++
		}
		for i, a := range allocs {
			if floors[i] > 0 {
				placements = append(placements, placement{
					server: a.Server, class: c.Name, goal: c.GoalRT, real: floors[i],
				})
			}
		}
	}

	// Per-server runtime admission: reject clients beyond the server's
	// real capacity at the tightest goal present, dropping the
	// loosest-goal (lowest-priority) clients first so existing
	// higher-priority clients keep their SLAs.
	perServer := make(map[string][]int) // server -> placement indexes
	for i, p := range placements {
		perServer[p.server] = append(perServer[p.server], i)
	}
	serverLoad := make(map[string]int)
	serverMinGoal := make(map[string]float64)
	pool := make(map[string]int)    // class -> rejected clients awaiting re-placement
	capMemo := make(map[capKey]int) // per-call capacity-search memo

	serverNames := make([]string, 0, len(perServer))
	for name := range perServer {
		serverNames = append(serverNames, name)
	}
	sort.Strings(serverNames)
	for _, name := range serverNames {
		idxs := perServer[name]
		srv, ok := serverByName[name]
		if !ok {
			return nil, fmt.Errorf("rm: plan references unknown server %q", name)
		}
		minGoal := math.Inf(1)
		total := 0
		for _, i := range idxs {
			if placements[i].goal < minGoal {
				minGoal = placements[i].goal
			}
			total += placements[i].real
		}
		capReal, err := realCapacity(truth, srv.Arch, minGoal*threshold, capMemo)
		if err != nil {
			return nil, err
		}
		over := total - capReal
		if over > 0 {
			// Shed loosest goals first.
			sort.SliceStable(idxs, func(a, b int) bool {
				return placements[idxs[a]].goal > placements[idxs[b]].goal
			})
			for _, i := range idxs {
				if over <= 0 {
					break
				}
				drop := placements[i].real
				if drop > over {
					drop = over
				}
				placements[i].real -= drop
				pool[placements[i].class] += drop
				over -= drop
			}
			total = capReal
		}
		serverLoad[name] = total
		serverMinGoal[name] = minGoal
	}

	// Runtime optimisation: "use any available capacity the algorithm
	// leaves on a server" (§9.1) — re-place rejected clients on the
	// real spare capacity of servers the plan already uses,
	// tightest-goal classes first. Servers outside the plan stay
	// untouched; workload that still finds no room is an SLA failure
	// (the paper's second set of accept-all servers).
	if !opts.DisableRuntimeOptimization && len(pool) > 0 {
		classNames := make([]string, 0, len(pool))
		for name := range pool {
			classNames = append(classNames, name)
		}
		sort.Slice(classNames, func(i, j int) bool {
			return classByName[classNames[i]].GoalRT < classByName[classNames[j]].GoalRT
		})
		for _, cname := range classNames {
			goal := classByName[cname].GoalRT
			for _, s := range servers {
				if pool[cname] == 0 {
					break
				}
				mg, used := serverMinGoal[s.Name]
				if !used {
					continue // the optimisation only touches planned servers
				}
				g := goal
				if mg < g {
					g = mg
				}
				capReal, err := realCapacity(truth, s.Arch, g*threshold, capMemo)
				if err != nil {
					return nil, err
				}
				spare := capReal - serverLoad[s.Name]
				if spare <= 0 {
					continue
				}
				take := spare
				if take > pool[cname] {
					take = pool[cname]
				}
				serverLoad[s.Name] += take
				if mg, ok := serverMinGoal[s.Name]; !ok || goal < mg {
					serverMinGoal[s.Name] = goal
				}
				pool[cname] -= take
				tracker.Serve(cname, take)
			}
		}
	}

	for _, p := range placements {
		if p.real > 0 {
			tracker.Serve(p.class, p.real)
		}
	}
	for cname, n := range pool {
		if n > 0 {
			rejected[cname] += n
			tracker.Reject(cname, n)
		}
	}

	return &Result{
		SLAFailurePct:   tracker.FailurePct(),
		ServerUsagePct:  plan.UsagePct,
		RejectedByClass: rejected,
		Tracker:         tracker,
	}, nil
}

// capKey memoizes realCapacity within one Evaluate call: the admission
// and re-placement passes ask for the same (architecture, effective
// goal) pairs repeatedly, and the search behind each answer probes the
// truth predictor O(log n) times.
type capKey struct {
	arch string
	goal float64
}

// realCapacity asks the truth predictor how many clients the
// architecture actually holds within the goal, via the same
// doubling+bisection search over integer populations that
// SimOracle.MaxClients runs (CapacitySearch) — capacity is found by
// probing the predictor's response-time curve directly instead of
// trusting a MaxClients implementation to invert it.
func realCapacity(truth Predictor, arch string, goal float64, memo map[capKey]int) (int, error) {
	k := capKey{arch: arch, goal: goal}
	if c, ok := memo[k]; ok {
		return c, nil
	}
	if mm := metrics.Load(); mm != nil {
		mm.predictorCalls.Inc()
	}
	c, err := CapacitySearch(func(n float64) (float64, error) {
		return truth.Predict(arch, n)
	}, goal, maxOracleClients)
	if err != nil {
		return 0, err
	}
	memo[k] = c
	return c, nil
}
