package rm

import (
	"fmt"
	"math"

	"perfpred/internal/parallel"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// maxOracleClients bounds the capacity search: no case-study
// architecture holds this many clients within any sane SLA goal.
const maxOracleClients = 1 << 18

// SimOracle is a Predictor backed by the simulated testbed itself: each
// Predict runs (and memoizes) a trade measurement of the architecture
// at the requested population, and MaxClients searches the population
// by doubling plus bisection. It plays the "truth" role in resource-
// manager evaluations — the measured reality the planning predictors
// are scored against — without pre-calibrating a model.
//
// Opt tunes the underlying measurements; setting Opt.TargetRelErr runs
// each probe under adaptive run-length control, so the oracle spends
// simulation time only until the requested precision is reached. The
// memo is concurrency-safe: parallel sweeps sharing one oracle
// deduplicate identical probes in flight.
type SimOracle struct {
	archs map[string]workload.ServerArch
	opt   trade.MeasureOptions
	memo  parallel.Memo[simProbe, float64]
}

type simProbe struct {
	arch    string
	clients int
}

// NewSimOracle builds an oracle over the given architectures.
func NewSimOracle(archs []workload.ServerArch, opt trade.MeasureOptions) *SimOracle {
	m := make(map[string]workload.ServerArch, len(archs))
	for _, a := range archs {
		m[a.Name] = a
	}
	return &SimOracle{archs: m, opt: opt}
}

// Predict returns the measured mean response time (seconds) of the
// architecture under the typical workload at n clients. Results are
// memoized per (architecture, population).
func (o *SimOracle) Predict(arch string, n float64) (float64, error) {
	a, ok := o.archs[arch]
	if !ok {
		return 0, fmt.Errorf("rm: no architecture %q in oracle", arch)
	}
	clients := int(math.Round(n))
	if clients < 1 {
		clients = 1
	}
	return o.memo.Do(simProbe{arch: arch, clients: clients}, func() (float64, error) {
		res, err := trade.Measure(a, workload.TypicalWorkload(clients), o.opt)
		if err != nil {
			return 0, err
		}
		return res.MeanRT, nil
	})
}

// MaxClients returns the largest population whose measured mean
// response time stays within goalRT, found by CapacitySearch's doubling
// plus bisection. Every probe lands in the memo, so a follow-up Predict
// at the capacity is free.
func (o *SimOracle) MaxClients(arch string, goalRT float64) (float64, error) {
	n, err := CapacitySearch(func(n float64) (float64, error) {
		return o.Predict(arch, n)
	}, goalRT, maxOracleClients)
	return float64(n), err
}
