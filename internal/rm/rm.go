// Package rm implements the paper's prediction-enhanced resource
// management algorithm and the §9 tuning study. Algorithm 1 assigns
// application servers to service classes, greedily choosing the server
// the performance model predicts can hold the most clients of the
// current class (with an exception for the class's last server, which
// takes the smallest server that still fits the remainder). A 'slack'
// multiplier inflates the planned workload to compensate for
// predictive inaccuracy, trading % SLA failures against % server
// usage.
package rm

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"perfpred/internal/obs"
)

// Predictor is the model interface the resource manager consumes; the
// historical, hybrid and layered methods all provide it (the layered
// method via a client-count search, §8.2).
type Predictor interface {
	// Predict returns the predicted mean response time (seconds) for
	// the architecture at n clients.
	Predict(arch string, n float64) (float64, error)
	// MaxClients returns the predicted largest client population the
	// architecture can hold with mean response time within goalRT.
	MaxClients(arch string, goalRT float64) (float64, error)
}

// Class is one service class of workload to place: a client count and
// the SLA response-time goal (seconds) those clients bought.
type Class struct {
	Name    string
	GoalRT  float64
	Clients int
}

// Server is one application server available to the resource manager.
type Server struct {
	// Name identifies the server instance ("S3", "F1", ...).
	Name string
	// Arch is the architecture key the Predictor understands
	// ("AppServS", ...).
	Arch string
	// Power is the server's processing power: its max throughput under
	// the typical workload (§9.1's % server usage denominators).
	Power float64
}

// Allocation is a planned placement of clients on a server.
type Allocation struct {
	Server string
	Class  string
	// Clients is the planned (slack-inflated) client count.
	Clients int
}

// Plan is the output of Algorithm 1.
type Plan struct {
	// Allocations lists planned placements in allocation order.
	Allocations []Allocation
	// RejectedPlanned maps class name to planned clients that found no
	// server (lower-priority classes reject first).
	RejectedPlanned map[string]int
	// Slack is the multiplier the plan was computed with.
	Slack float64
	// UsagePct is the planned % server usage: the power share of
	// servers with at least one planned client.
	UsagePct float64
}

// PlannedFor returns the total planned clients for a class.
func (p *Plan) PlannedFor(class string) int {
	total := 0
	for _, a := range p.Allocations {
		if a.Class == class {
			total += a.Clients
		}
	}
	return total
}

// Options tunes Algorithm 1.
type Options struct {
	// DisableLastServerRule drops the paper's exception of taking the
	// smallest feasible server for a class's final allocation — the
	// ablation knob.
	DisableLastServerRule bool

	// AllowDeflation permits slack multipliers below 1. The paper's
	// slack compensates for predictive inaccuracy by *inflating* the
	// planned workload, so sub-unity values silently under-plan (slack 0
	// plans nothing at all and reports perfect usage with no
	// rejections). Allocate rejects them unless this is set — the §9
	// tuning study sets it to sweep slack through and below 1
	// deliberately, mapping the full failure/usage trade-off curve.
	AllowDeflation bool
}

// Allocate runs Algorithm 1: service classes sorted by increasing
// response-time goal, clients (inflated by slack) placed greedily on
// the server predicted to hold the most clients of the current class,
// with the last-server exception. A server's available capacity for a
// class is bounded by the tightest goal already placed on it, so
// adding clients never breaks an earlier class's SLA in the model's
// eyes.
func Allocate(classes []Class, servers []Server, pred Predictor, slack float64, opts Options) (*Plan, error) {
	if len(classes) == 0 || len(servers) == 0 {
		return nil, errors.New("rm: need classes and servers")
	}
	if slack < 0 {
		return nil, fmt.Errorf("rm: negative slack %v", slack)
	}
	if slack < 1 && !opts.AllowDeflation {
		return nil, fmt.Errorf("rm: slack %v < 1 deflates the planned workload instead of inflating it "+
			"(slack compensates for predictive inaccuracy by planning extra clients); "+
			"set Options.AllowDeflation for a deliberate sub-unity sweep", slack)
	}
	for _, c := range classes {
		if c.GoalRT <= 0 {
			return nil, fmt.Errorf("rm: class %q needs positive goal", c.Name)
		}
		if c.Clients < 0 {
			return nil, fmt.Errorf("rm: class %q has negative clients", c.Name)
		}
	}

	// Line 1: sort by increasing response-time goal (priority order).
	sorted := make([]Class, len(classes))
	copy(sorted, classes)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].GoalRT < sorted[j].GoalRT })

	type serverState struct {
		Server
		allocated int     // planned clients across classes
		minGoal   float64 // tightest goal placed (0 = empty)
	}
	state := make([]*serverState, len(servers))
	for i, s := range servers {
		if s.Power <= 0 {
			return nil, fmt.Errorf("rm: server %q needs positive power", s.Name)
		}
		state[i] = &serverState{Server: s}
	}

	plan := &Plan{RejectedPlanned: make(map[string]int), Slack: slack}
	mm := metrics.Load()
	var predCalls, placed, rejects *obs.Counter
	if mm != nil {
		mm.allocateCalls.Inc()
		predCalls, placed, rejects = mm.predictorCalls, mm.allocations, mm.plannedRejections
	}

	// capacity returns how many more clients of a class with goal g
	// the server can take per the model.
	capacity := func(s *serverState, g float64) (int, error) {
		goal := g
		if s.minGoal > 0 && s.minGoal < goal {
			goal = s.minGoal
		}
		predCalls.Inc()
		maxN, err := pred.MaxClients(s.Arch, goal)
		if err != nil {
			return 0, err
		}
		c := int(math.Floor(maxN)) - s.allocated
		if c < 0 {
			c = 0
		}
		return c, nil
	}

placement:
	for ci, class := range sorted {
		remaining := int(math.Ceil(float64(class.Clients) * slack))
		for remaining > 0 {
			// Line 6: greedy server selection.
			var best *serverState
			bestCap := 0
			var lastFit *serverState
			lastFitCap := math.MaxInt
			for _, s := range state {
				c, err := capacity(s, class.GoalRT)
				if err != nil {
					return nil, err
				}
				if c <= 0 {
					continue
				}
				if c > bestCap {
					best, bestCap = s, c
				}
				if c >= remaining && c < lastFitCap {
					lastFit, lastFitCap = s, c
				}
			}
			if best == nil {
				// No capacity anywhere: per Algorithm 1, this and all
				// lower-priority (looser-goal) workload is rejected from
				// the plan — later classes are not allowed to squeeze in
				// around a higher-priority class that did not fit.
				plan.RejectedPlanned[class.Name] += remaining
				rejects.Add(uint64(remaining))
				for _, later := range sorted[ci+1:] {
					if n := int(math.Ceil(float64(later.Clients) * slack)); n > 0 {
						plan.RejectedPlanned[later.Name] += n
						rejects.Add(uint64(n))
					}
				}
				break placement
			}
			chosen, chosenCap := best, bestCap
			if !opts.DisableLastServerRule && lastFit != nil {
				// Exception: the last server a class needs is the one
				// that can take the smallest number of clients while
				// still fitting the remainder.
				chosen, chosenCap = lastFit, lastFitCap
			}
			take := chosenCap
			if take > remaining {
				take = remaining
			}
			plan.Allocations = append(plan.Allocations, Allocation{
				Server: chosen.Name, Class: class.Name, Clients: take,
			})
			placed.Inc()
			chosen.allocated += take
			if chosen.minGoal == 0 || class.GoalRT < chosen.minGoal {
				chosen.minGoal = class.GoalRT
			}
			remaining -= take
		}
	}

	var usedPower, totalPower float64
	for _, s := range state {
		totalPower += s.Power
		if s.allocated > 0 {
			usedPower += s.Power
		}
	}
	if totalPower > 0 {
		plan.UsagePct = 100 * usedPower / totalPower
	}
	return plan, nil
}
