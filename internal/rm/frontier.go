package rm

import (
	"errors"
	"fmt"
	"sort"

	"perfpred/internal/workload"
)

// ArchPrice attaches a dollar price to an architecture — the axis the
// paper's §9 study lacks and arXiv:2304.01676 makes first-class.
type ArchPrice struct {
	Arch workload.ServerArch
	// HourlyCost is the $/hour of one server of this architecture.
	HourlyCost float64
	// Max is the largest number of servers of this architecture a mix
	// may use.
	Max int
}

// FrontierOptions tunes the cost-performance frontier sweep.
type FrontierOptions struct {
	// Shares is the class mix placed on every candidate fleet (nil =
	// the §9.1 case-study shares).
	Shares []ClassShare
	// Slack is Algorithm 1's workload inflation (default 1).
	Slack float64
	// MaxServers caps the fleet size across architectures.
	MaxServers int
	// MaxClients caps the per-mix capacity search (default 1<<18).
	MaxClients int
	// AllocOpts forwards to Allocate.
	AllocOpts Options
}

// FrontierPoint is one architecture mix's evaluation: how many
// clients the mix holds with every class inside its SLA (per the
// predictor), what the fleet costs, and the resulting $/request.
type FrontierPoint struct {
	// Counts[i] is the number of servers of prices[i].Arch.
	Counts []int
	// Servers is the fleet size.
	Servers int
	// Capacity is the largest total client population Algorithm 1
	// places with no planned rejections.
	Capacity int
	// HourlyCost is the fleet's $/hour.
	HourlyCost float64
	// ThroughputPerSec is the goal-bounded request rate at capacity:
	// each class's clients cycle at one request per (goal + think), so
	// the number is a conservative (SLA-respecting) floor.
	ThroughputPerSec float64
	// CostPerMReq is dollars per million requests at that rate.
	CostPerMReq float64
	// Dominated marks mixes beaten by another mix that holds at least
	// as many clients for at most the cost (strictly better on one
	// axis). The frontier is the non-dominated subset.
	Dominated bool
}

// CostFrontier enumerates every architecture mix within the caps,
// finds each mix's capacity under Algorithm 1 with the given
// predictor, prices it, and marks Pareto dominance on the
// (capacity, hourly cost) plane. It returns all evaluated points
// sorted by ascending cost then descending capacity; filter on
// !Dominated for the frontier itself. This is Algorithm 1 extended to
// choose not just how many servers but which architectures: the
// frontier is exactly the set of rational fleet purchases.
func CostFrontier(prices []ArchPrice, pred Predictor, think float64, opt FrontierOptions) ([]FrontierPoint, error) {
	if len(prices) == 0 {
		return nil, errors.New("rm: frontier needs priced architectures")
	}
	for _, p := range prices {
		if p.HourlyCost <= 0 {
			return nil, fmt.Errorf("rm: architecture %q needs a positive hourly cost", p.Arch.Name)
		}
		if p.Max < 0 {
			return nil, fmt.Errorf("rm: architecture %q has negative max count", p.Arch.Name)
		}
	}
	if opt.Shares == nil {
		opt.Shares = CaseStudyShares()
	}
	if opt.Slack == 0 {
		opt.Slack = 1
	}
	if opt.MaxClients == 0 {
		opt.MaxClients = maxOracleClients
	}
	if opt.MaxServers <= 0 {
		return nil, errors.New("rm: frontier needs a positive server cap")
	}
	if think < 0 {
		return nil, fmt.Errorf("rm: negative think time %v", think)
	}

	// Enumerate count vectors in lexicographic order — deterministic
	// output order before the final sort.
	var points []FrontierPoint
	counts := make([]int, len(prices))
	var walk func(i, used int) error
	walk = func(i, used int) error {
		if i == len(prices) {
			if used == 0 {
				return nil
			}
			pt, err := evalMix(counts, prices, pred, think, opt)
			if err != nil {
				return err
			}
			points = append(points, pt)
			return nil
		}
		max := prices[i].Max
		if max > opt.MaxServers-used {
			max = opt.MaxServers - used
		}
		for c := 0; c <= max; c++ {
			counts[i] = c
			if err := walk(i+1, used+c); err != nil {
				return err
			}
		}
		counts[i] = 0
		return nil
	}
	if err := walk(0, 0); err != nil {
		return nil, err
	}

	// Pareto dominance on (capacity ↑, hourly cost ↓).
	for i := range points {
		for j := range points {
			if i == j {
				continue
			}
			p, q := &points[i], &points[j]
			if q.Capacity >= p.Capacity && q.HourlyCost <= p.HourlyCost &&
				(q.Capacity > p.Capacity || q.HourlyCost < p.HourlyCost) {
				p.Dominated = true
				break
			}
		}
	}
	sort.SliceStable(points, func(a, b int) bool {
		if points[a].HourlyCost != points[b].HourlyCost {
			return points[a].HourlyCost < points[b].HourlyCost
		}
		if points[a].Capacity != points[b].Capacity {
			return points[a].Capacity > points[b].Capacity
		}
		return lexLess(points[a].Counts, points[b].Counts)
	})
	return points, nil
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// evalMix prices one architecture mix and finds its capacity: the
// largest total population Algorithm 1 plans with no rejections. The
// search reuses the shared doubling + bisection over the monotone
// "does N fully place?" predicate.
func evalMix(counts []int, prices []ArchPrice, pred Predictor, think float64, opt FrontierOptions) (FrontierPoint, error) {
	pt := FrontierPoint{Counts: append([]int(nil), counts...)}
	var servers []Server
	for i, c := range counts {
		pt.Servers += c
		pt.HourlyCost += float64(c) * prices[i].HourlyCost
		for k := 1; k <= c; k++ {
			servers = append(servers, Server{
				Name:  fmt.Sprintf("%s-%d", prices[i].Arch.Name, k),
				Arch:  prices[i].Arch.Name,
				Power: prices[i].Arch.MaxThroughputTypical,
			})
		}
	}
	fits := func(total int) (bool, error) {
		classes, err := SplitLoad(total, opt.Shares)
		if err != nil {
			return false, err
		}
		plan, err := Allocate(classes, servers, pred, opt.Slack, opt.AllocOpts)
		if err != nil {
			return false, err
		}
		return len(plan.RejectedPlanned) == 0, nil
	}
	// CapacitySearch wants a response-time-shaped curve; express the
	// boolean predicate as 0 (fits) / 2 (rejects) against goal 1.
	capN, err := CapacitySearch(func(n float64) (float64, error) {
		ok, err := fits(int(n))
		if err != nil {
			return 0, err
		}
		if ok {
			return 0, nil
		}
		return 2, nil
	}, 1, opt.MaxClients)
	if err != nil {
		return pt, err
	}
	pt.Capacity = capN
	if capN > 0 {
		classes, err := SplitLoad(capN, opt.Shares)
		if err != nil {
			return pt, err
		}
		for _, c := range classes {
			if c.GoalRT+think > 0 {
				pt.ThroughputPerSec += float64(c.Clients) / (c.GoalRT + think)
			}
		}
	}
	if pt.ThroughputPerSec > 0 {
		pt.CostPerMReq = pt.HourlyCost / (3600 * pt.ThroughputPerSec) * 1e6
	}
	return pt, nil
}
