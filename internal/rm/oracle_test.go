package rm

import (
	"testing"

	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

func testOracle() *SimOracle {
	return NewSimOracle(
		[]workload.ServerArch{workload.AppServS(), workload.AppServF()},
		trade.MeasureOptions{Seed: 7, WarmUp: 5, Duration: 20, TargetRelErr: 0.1},
	)
}

func TestSimOracleUnknownArch(t *testing.T) {
	o := testOracle()
	if _, err := o.Predict("NoSuchServer", 100); err == nil {
		t.Fatal("unknown architecture should fail")
	}
	if _, err := o.MaxClients("NoSuchServer", 0.1); err == nil {
		t.Fatal("unknown architecture should fail")
	}
	if _, err := o.MaxClients("AppServS", 0); err == nil {
		t.Fatal("non-positive goal should fail")
	}
}

func TestSimOraclePredictMemoized(t *testing.T) {
	o := testOracle()
	a, err := o.Predict("AppServF", 200)
	if err != nil {
		t.Fatal(err)
	}
	if a <= 0 {
		t.Fatalf("mean RT = %v, want positive", a)
	}
	b, err := o.Predict("AppServF", 200)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("memoized probe diverged: %v vs %v", a, b)
	}
	// Fractional populations round to the same probe.
	c, err := o.Predict("AppServF", 200.4)
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Fatalf("rounded probe diverged: %v vs %v", a, c)
	}
}

func TestSimOracleSaturationGrows(t *testing.T) {
	o := testOracle()
	light, err := o.Predict("AppServS", 50)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := o.Predict("AppServS", 3000)
	if err != nil {
		t.Fatal(err)
	}
	if heavy <= light {
		t.Fatalf("response time should grow past saturation: %v at 50 clients vs %v at 3000", light, heavy)
	}
}

func TestSimOracleMaxClients(t *testing.T) {
	o := testOracle()
	const goal = 0.1 // 100 ms mean-RT goal
	capacity, err := o.MaxClients("AppServS", goal)
	if err != nil {
		t.Fatal(err)
	}
	if capacity < 1 {
		t.Fatalf("capacity = %v, want at least one client", capacity)
	}
	within, err := o.Predict("AppServS", capacity)
	if err != nil {
		t.Fatal(err)
	}
	if within > goal {
		t.Fatalf("measured RT %v at claimed capacity %v exceeds goal %v", within, capacity, goal)
	}
	beyond, err := o.Predict("AppServS", capacity+1)
	if err != nil {
		t.Fatal(err)
	}
	if beyond <= goal {
		t.Fatalf("capacity %v is not maximal: %v clients still meet the goal", capacity, capacity+1)
	}
}

// TestSimOracleAsEvaluationTruth exercises the oracle in its intended
// role: the truth predictor of a resource-manager evaluation.
func TestSimOracleAsEvaluationTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed capacity searches")
	}
	o := testOracle()
	capF, err := o.MaxClients("AppServF", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	capS, err := o.MaxClients("AppServS", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if capF <= capS {
		t.Fatalf("the faster architecture should hold more clients: F=%v S=%v", capF, capS)
	}
}
