package rm

import (
	"errors"
	"math"
)

// EvalFamily is one predictor family entered into the accuracy-vs-
// startup-cost comparison: the model plus what it cost to bring up
// (hybrid's calibration runs, the regression family's training set,
// the historical method's measurement history).
type EvalFamily struct {
	Name string
	Pred Predictor
	// StartupSimSeconds is the simulated (or measured-testbed) seconds
	// the family consumed before it could answer its first query.
	StartupSimSeconds float64
	// StartupWallSeconds is the wall-clock equivalent on this machine.
	StartupWallSeconds float64
}

// EvalScenario is one architecture's probe set: response-time queries
// at the given populations and capacity queries at the given goals.
type EvalScenario struct {
	Arch    string
	Pops    []int
	GoalRTs []float64
}

// FamilyScore is one family's row of the comparison table.
type FamilyScore struct {
	Name string
	// MeanAbsRTErrPct / MaxAbsRTErrPct summarise |pred−true|/true over
	// every (arch, population) response-time probe.
	MeanAbsRTErrPct float64
	MaxAbsRTErrPct  float64
	// MeanAbsCapErrPct summarises capacity-prediction error over every
	// (arch, goal) probe.
	MeanAbsCapErrPct   float64
	MaxAbsCapErrPct    float64
	RTProbes           int
	CapProbes          int
	StartupSimSeconds  float64
	StartupWallSeconds float64
}

// PredictorEval scores every family against the same truth on the
// same scenarios — the table where HYDRA, LQN, hybrid and the
// regression family land side by side. truth is typically a SimOracle
// (memoised, so the truth curve is measured once however many
// families are scored). Scenarios and families are evaluated serially
// in the given order; determinism is inherited from the predictors.
func PredictorEval(families []EvalFamily, truth Predictor, scenarios []EvalScenario) ([]FamilyScore, error) {
	if len(families) == 0 || len(scenarios) == 0 {
		return nil, errors.New("rm: predictor eval needs families and scenarios")
	}
	// Probe the truth once up front.
	type rtKey struct {
		arch string
		n    int
	}
	type capKeyT struct {
		arch string
		goal float64
	}
	trueRT := make(map[rtKey]float64)
	trueCap := make(map[capKeyT]float64)
	for _, sc := range scenarios {
		for _, n := range sc.Pops {
			rt, err := truth.Predict(sc.Arch, float64(n))
			if err != nil {
				return nil, err
			}
			trueRT[rtKey{sc.Arch, n}] = rt
		}
		for _, goal := range sc.GoalRTs {
			c, err := truth.MaxClients(sc.Arch, goal)
			if err != nil {
				return nil, err
			}
			trueCap[capKeyT{sc.Arch, goal}] = c
		}
	}
	scores := make([]FamilyScore, 0, len(families))
	for _, fam := range families {
		score := FamilyScore{
			Name:               fam.Name,
			StartupSimSeconds:  fam.StartupSimSeconds,
			StartupWallSeconds: fam.StartupWallSeconds,
		}
		var rtErrSum, capErrSum float64
		for _, sc := range scenarios {
			for _, n := range sc.Pops {
				want := trueRT[rtKey{sc.Arch, n}]
				if want <= 0 {
					continue
				}
				got, err := fam.Pred.Predict(sc.Arch, float64(n))
				if err != nil {
					return nil, err
				}
				e := 100 * math.Abs(got-want) / want
				rtErrSum += e
				if e > score.MaxAbsRTErrPct {
					score.MaxAbsRTErrPct = e
				}
				score.RTProbes++
			}
			for _, goal := range sc.GoalRTs {
				want := trueCap[capKeyT{sc.Arch, goal}]
				if want <= 0 {
					continue
				}
				got, err := fam.Pred.MaxClients(sc.Arch, goal)
				if err != nil {
					return nil, err
				}
				e := 100 * math.Abs(got-want) / want
				capErrSum += e
				if e > score.MaxAbsCapErrPct {
					score.MaxAbsCapErrPct = e
				}
				score.CapProbes++
			}
		}
		if score.RTProbes > 0 {
			score.MeanAbsRTErrPct = rtErrSum / float64(score.RTProbes)
		}
		if score.CapProbes > 0 {
			score.MeanAbsCapErrPct = capErrSum / float64(score.CapProbes)
		}
		scores = append(scores, score)
	}
	return scores, nil
}
