// Package instrument wires the obs metrics registry into every
// instrumented subsystem in one call, so command-line tools can turn
// the whole observability layer on (or off) with a single switch
// instead of tracking per-package EnableMetrics functions.
package instrument

import (
	"perfpred/internal/fleet"
	"perfpred/internal/hybrid"
	"perfpred/internal/lqn"
	"perfpred/internal/obs"
	"perfpred/internal/rm"
	"perfpred/internal/serve"
	"perfpred/internal/sessioncache"
	"perfpred/internal/sim"
	"perfpred/internal/trade"
)

// EnableAll registers every subsystem's metrics on r and starts
// recording. A nil registry disables instrumentation everywhere,
// returning the hot paths to their zero-cost default.
func EnableAll(r *obs.Registry) {
	lqn.EnableMetrics(r)
	sim.EnableMetrics(r)
	trade.EnableMetrics(r)
	sessioncache.EnableMetrics(r)
	hybrid.EnableMetrics(r)
	rm.EnableMetrics(r)
	serve.EnableMetrics(r)
	fleet.EnableMetrics(r)
}
