package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"perfpred/internal/hybrid"
	"perfpred/internal/lqn"
	"perfpred/internal/regress"
	"perfpred/internal/rm"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// testLaplaceB pins the percentile scale so tests skip the simulator
// calibration a production cold build pays for.
const testLaplaceB = 0.05

func testConfig() Config {
	return Config{
		Archs:    workload.CaseStudyServers(),
		DB:       workload.CaseStudyDB(),
		Demands:  workload.CaseStudyDemands(),
		LaplaceB: testLaplaceB,
	}
}

func newTestService(t *testing.T, mutate func(*Config)) *Service {
	t.Helper()
	cfg := testConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func newTestServer(t *testing.T, mutate func(*Config)) (*Service, *httptest.Server) {
	t.Helper()
	s := newTestService(t, mutate)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

// getJSON issues a request and decodes the body; it returns the status
// so error-path tests can assert on it.
func getJSON(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, client *http.Client, url string, body, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding POST %s: %v", url, err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// TestServedHybridMatchesOffline is the round-trip equality check: a
// prediction served over HTTP/JSON must be bit-identical to the same
// query answered by the offline hybrid stack (Go's JSON float encoding
// round-trips float64 exactly, so nothing is lost on the wire).
func TestServedHybridMatchesOffline(t *testing.T) {
	_, srv := newTestServer(t, nil)
	client := srv.Client()

	offline := func(arch workload.ServerArch, buyFrac float64) *hybrid.Config {
		return &hybrid.Config{DB: workload.CaseStudyDB(), Demands: workload.CaseStudyDemands()}
	}
	for _, tc := range []struct {
		arch    workload.ServerArch
		buyPct  float64
		clients float64
		pct     float64
	}{
		{workload.AppServF(), 0, 500, 0},
		{workload.AppServF(), 0, 1800, 0.9},
		{workload.AppServS(), 10, 400, 0},
		{workload.AppServVF(), 25.5, 2500, 0.95},
	} {
		sm, _, err := hybrid.BuildServerMix(*offline(tc.arch, tc.buyPct/100), tc.arch, tc.buyPct/100)
		if err != nil {
			t.Fatal(err)
		}
		want := sm.Predict(tc.clients)
		if tc.pct > 0 {
			want, err = sm.PredictPercentile(tc.clients, tc.pct, testLaplaceB)
			if err != nil {
				t.Fatal(err)
			}
		}
		var got PredictResponse
		url := fmt.Sprintf("%s/v1/predict?arch=%s&clients=%v&buy_pct=%v&percentile=%v",
			srv.URL, tc.arch.Name, tc.clients, tc.buyPct, tc.pct)
		if code := getJSON(t, client, url, &got); code != http.StatusOK {
			t.Fatalf("%s: status %d", url, code)
		}
		if got.ResponseTimeS != want {
			t.Fatalf("%s buy %v%% n=%v p=%v: served %v, offline %v",
				tc.arch.Name, tc.buyPct, tc.clients, tc.pct, got.ResponseTimeS, want)
		}

		// Capacity inverts the same model: exact equality again.
		goal := 2.5 * sm.Predict(1)
		wantCap, err := sm.MaxClients(goal)
		if err != nil {
			t.Fatal(err)
		}
		var capResp CapacityResponse
		url = fmt.Sprintf("%s/v1/capacity?arch=%s&goal_rt_s=%v&buy_pct=%v",
			srv.URL, tc.arch.Name, goal, tc.buyPct)
		if code := getJSON(t, client, url, &capResp); code != http.StatusOK {
			t.Fatalf("%s: status %d", url, code)
		}
		if capResp.MaxClients != wantCap {
			t.Fatalf("%s capacity: served %v, offline %v", tc.arch.Name, capResp.MaxClients, wantCap)
		}
	}
}

// The cheap regress tier must serve exactly what an identically
// configured offline training run fits: the service is a cache in
// front of a deterministic build, nothing more. Warm repeats are
// byte-identical and free; percentile requests are a client mistake.
func TestServedRegressTierMatchesOffline(t *testing.T) {
	_, srv := newTestServer(t, func(c *Config) {
		c.RegressSimSeconds = 4 // short training sims keep the test fast
	})
	client := srv.Client()
	arch := workload.AppServS()

	offline, err := regress.Train(regress.TrainConfig{
		Archs:         []workload.ServerArch{arch},
		BuyFracs:      []float64{0},
		SamplesPerMix: 8,
		Seed:          1, // the service's default CalibrationSeed
		Opt:           trade.MeasureOptions{WarmUp: 1, Duration: 4},
		Fit:           regress.FitConfig{Degree: 2},
	})
	if err != nil {
		t.Fatal(err)
	}

	var first PredictResponse
	url := fmt.Sprintf("%s/v1/predict?arch=%s&clients=300&method=regress", srv.URL, arch.Name)
	if code := getJSON(t, client, url, &first); code != http.StatusOK {
		t.Fatalf("%s: status %d", url, code)
	}
	if !first.Cold {
		t.Error("first regress request did not report a cold build")
	}
	want, err := offline.Predict(arch.Name, 300)
	if err != nil {
		t.Fatal(err)
	}
	if first.ResponseTimeS != want {
		t.Fatalf("served regress rt %v, offline %v", first.ResponseTimeS, want)
	}

	var warm PredictResponse
	if code := getJSON(t, client, url, &warm); code != http.StatusOK {
		t.Fatalf("warm repeat: status %d", code)
	}
	if warm.Cold || warm.ResponseTimeS != first.ResponseTimeS {
		t.Fatalf("warm repeat: cold=%v rt=%v, want warm rt=%v", warm.Cold, warm.ResponseTimeS, first.ResponseTimeS)
	}

	goal := 4 * want
	wantCap, err := offline.MaxClients(arch.Name, goal)
	if err != nil {
		t.Fatal(err)
	}
	var capResp CapacityResponse
	capURL := fmt.Sprintf("%s/v1/capacity?arch=%s&goal_rt_s=%v&method=regress", srv.URL, arch.Name, goal)
	if code := getJSON(t, client, capURL, &capResp); code != http.StatusOK {
		t.Fatalf("%s: status %d", capURL, code)
	}
	if capResp.MaxClients != wantCap {
		t.Fatalf("served regress capacity %v, offline %v", capResp.MaxClients, wantCap)
	}

	// The tier predicts means only: percentile requests are 400s.
	pctURL := url + "&percentile=0.9"
	if code := getJSON(t, client, pctURL, nil); code != http.StatusBadRequest {
		t.Fatalf("percentile with regress: status %d, want 400", code)
	}
}

// TestServedLQNMatchesOffline checks the exact layered path: the
// batcher's warm-started solves must agree with a cold offline solve
// to well within the solver's convergence tolerance, and repeating the
// identical query must reproduce the identical number.
func TestServedLQNMatchesOffline(t *testing.T) {
	_, srv := newTestServer(t, nil)
	client := srv.Client()

	arch := workload.AppServF()
	const n = 900
	model, err := lqn.NewTradeModel(arch, workload.CaseStudyDB(), workload.CaseStudyDemands(), workload.TypicalWorkload(n))
	if err != nil {
		t.Fatal(err)
	}
	res, err := lqn.NewSolver().Solve(model, lqn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := weightedMeanRT(model, res)

	url := fmt.Sprintf("%s/v1/predict?arch=%s&clients=%d&method=lqn", srv.URL, arch.Name, n)
	var first PredictResponse
	if code := getJSON(t, client, url, &first); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if rel := math.Abs(first.ResponseTimeS-want) / want; rel > 1e-6 {
		t.Fatalf("served lqn RT %v vs offline %v (rel %v)", first.ResponseTimeS, want, rel)
	}
	// A repeat of the identical query warm-starts from the previous
	// solution — that history-dependence is the coalescing design — so
	// repeats agree to the solver's convergence tolerance, not bitwise.
	var second PredictResponse
	getJSON(t, client, url, &second)
	if rel := math.Abs(second.ResponseTimeS-first.ResponseTimeS) / first.ResponseTimeS; rel > 1e-6 {
		t.Fatalf("identical lqn queries disagreed beyond tolerance: %v vs %v", first.ResponseTimeS, second.ResponseTimeS)
	}

	// Capacity through the batcher: deterministic across repeats, and
	// the returned population really does straddle the goal.
	goal := 2 * want
	capURL := fmt.Sprintf("%s/v1/capacity?arch=%s&goal_rt_s=%v&method=lqn", srv.URL, arch.Name, goal)
	var c1, c2 CapacityResponse
	if code := getJSON(t, client, capURL, &c1); code != http.StatusOK {
		t.Fatalf("capacity status %d", code)
	}
	getJSON(t, client, capURL, &c2)
	if c1.MaxClients != c2.MaxClients {
		t.Fatalf("identical lqn capacity queries disagreed: %v vs %v", c1.MaxClients, c2.MaxClients)
	}
	if c1.Evaluations <= 0 {
		t.Fatal("capacity search reported no evaluations")
	}
	atRT := func(pop int) float64 {
		for i, p := range workload.TypicalWorkload(pop) {
			model.Classes[i].Population = p.Clients
		}
		r, err := lqn.NewSolver().Solve(model, lqn.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return weightedMeanRT(model, r)
	}
	nCap := int(c1.MaxClients)
	if nCap < 1 {
		t.Fatalf("capacity %v under goal %v", c1.MaxClients, goal)
	}
	if rt := atRT(nCap); rt > goal*(1+1e-6) {
		t.Fatalf("served capacity %d breaks the goal: RT %v > %v", nCap, rt, goal)
	}
	if rt := atRT(nCap + 1); rt <= goal {
		t.Fatalf("served capacity %d not maximal: RT(%d) = %v <= %v", nCap, nCap+1, rt, goal)
	}
}

// offlinePredictor adapts offline hybrid models to rm.Predictor for
// the allocation round-trip.
type offlinePredictor struct {
	t      *testing.T
	models map[string]interface {
		Predict(float64) float64
		MaxClients(float64) (float64, error)
	}
}

func (p offlinePredictor) Predict(arch string, n float64) (float64, error) {
	return p.models[arch].Predict(n), nil
}

func (p offlinePredictor) MaxClients(arch string, goal float64) (float64, error) {
	return p.models[arch].MaxClients(goal)
}

// TestServedAllocationMatchesOffline round-trips Algorithm 1: the plan
// served from cached models must equal rm.Allocate run offline over
// identically-built models.
func TestServedAllocationMatchesOffline(t *testing.T) {
	_, srv := newTestServer(t, nil)
	client := srv.Client()

	req := AllocateRequest{
		Classes: []AllocClass{
			{Name: "gold", GoalRTS: 0.06, Clients: 900},
			{Name: "silver", GoalRTS: 0.3, Clients: 2200},
		},
		Servers: []AllocServer{
			{Name: "s1", Arch: "AppServS", Power: 1},
			{Name: "f1", Arch: "AppServF", Power: 1},
			{Name: "vf1", Arch: "AppServVF", Power: 1},
		},
		Slack: 1.1,
	}
	var got AllocateResponse
	if code := postJSON(t, client, srv.URL+"/v1/allocate", req, &got); code != http.StatusOK {
		t.Fatalf("allocate status %d", code)
	}

	cfg := hybrid.Config{DB: workload.CaseStudyDB(), Demands: workload.CaseStudyDemands()}
	pred := offlinePredictor{t: t, models: map[string]interface {
		Predict(float64) float64
		MaxClients(float64) (float64, error)
	}{}}
	for _, a := range workload.CaseStudyServers() {
		sm, _, err := hybrid.BuildServerMix(cfg, a, 0)
		if err != nil {
			t.Fatal(err)
		}
		pred.models[a.Name] = sm
	}
	classes := []rm.Class{{Name: "gold", GoalRT: 0.06, Clients: 900}, {Name: "silver", GoalRT: 0.3, Clients: 2200}}
	servers := []rm.Server{{Name: "s1", Arch: "AppServS", Power: 1}, {Name: "f1", Arch: "AppServF", Power: 1}, {Name: "vf1", Arch: "AppServVF", Power: 1}}
	want, err := rm.Allocate(classes, servers, pred, 1.1, rm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Allocations) != len(want.Allocations) {
		t.Fatalf("served %d allocations, offline %d", len(got.Allocations), len(want.Allocations))
	}
	for i, a := range want.Allocations {
		g := got.Allocations[i]
		if g.Server != a.Server || g.Class != a.Class || g.Clients != a.Clients {
			t.Fatalf("allocation %d: served %+v, offline %+v", i, g, a)
		}
	}
	if got.Slack != want.Slack || got.UsagePct != want.UsagePct {
		t.Fatalf("plan summary: served (%v, %v), offline (%v, %v)", got.Slack, got.UsagePct, want.Slack, want.UsagePct)
	}
}

// TestColdStampedeBuildsOnce aims a thundering herd of identical cold
// requests at the service: exactly one hybrid build may run; everyone
// shares its result.
func TestColdStampedeBuildsOnce(t *testing.T) {
	s, srv := newTestServer(t, nil)
	client := srv.Client()

	var builds atomic.Int32
	orig := s.cache.build
	s.cache.build = func(k modelKey) (*modelEntry, error) {
		builds.Add(1)
		time.Sleep(20 * time.Millisecond) // widen the stampede window
		return orig(k)
	}

	const herd = 32
	results := make([]float64, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp PredictResponse
			code := getJSON(t, client, srv.URL+"/v1/predict?arch=AppServF&clients=500", &resp)
			if code != http.StatusOK {
				t.Errorf("herd request %d: status %d", i, code)
				return
			}
			results[i] = resp.ResponseTimeS
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("stampede triggered %d builds, want 1", n)
	}
	for i := 1; i < herd; i++ {
		if results[i] != results[0] {
			t.Fatalf("herd members disagree: %v vs %v", results[i], results[0])
		}
	}
}

// TestEvictionRebuild bounds the cache at one entry and alternates two
// keys: each switch must evict, rebuild on the next request, and keep
// serving numbers identical to the first build of that key.
func TestEvictionRebuild(t *testing.T) {
	s, srv := newTestServer(t, func(c *Config) { c.CacheCapacity = 1 })
	client := srv.Client()

	var builds atomic.Int32
	orig := s.cache.build
	s.cache.build = func(k modelKey) (*modelEntry, error) {
		builds.Add(1)
		return orig(k)
	}

	predict := func(arch string) float64 {
		var resp PredictResponse
		if code := getJSON(t, client, srv.URL+"/v1/predict?arch="+arch+"&clients=500", &resp); code != http.StatusOK {
			t.Fatalf("%s: status %d", arch, code)
		}
		return resp.ResponseTimeS
	}
	f1 := predict("AppServF") // build 1
	s1 := predict("AppServS") // build 2, evicts F
	f2 := predict("AppServF") // build 3, evicts S
	f3 := predict("AppServF") // warm hit
	if n := builds.Load(); n != 3 {
		t.Fatalf("%d builds, want 3 (two cold + one rebuild)", n)
	}
	if f1 != f2 || f2 != f3 {
		t.Fatalf("rebuilt model disagrees: %v, %v, %v", f1, f2, f3)
	}
	if s1 == f1 {
		t.Fatal("distinct architectures served identical predictions")
	}
	if s.cache.lru.Len() != 1 {
		t.Fatalf("cache holds %d entries, capacity 1", s.cache.lru.Len())
	}
}

// TestConcurrentServing is the race-tier soak: hybrid and layered
// requests across every architecture and several mixes, all in flight
// together, must each reproduce the value the quiet service serves for
// the same query afterwards — exactly for the closed-form hybrid path,
// and to solver tolerance for the warm-started layered path.
func TestConcurrentServing(t *testing.T) {
	_, srv := newTestServer(t, nil)
	client := srv.Client()

	type query struct {
		url string
		lqn bool
	}
	archs := []string{"AppServS", "AppServF", "AppServVF"}
	var queries []query
	for i, arch := range archs {
		for _, n := range []int{200, 700, 1500} {
			queries = append(queries, query{url: fmt.Sprintf("%s/v1/predict?arch=%s&clients=%d&buy_pct=%d", srv.URL, arch, n, 5*i)})
		}
		queries = append(queries, query{url: fmt.Sprintf("%s/v1/predict?arch=%s&clients=400&method=lqn", srv.URL, arch), lqn: true})
	}
	const reps = 4
	got := make([]float64, reps*len(queries))
	var wg sync.WaitGroup
	for rep := 0; rep < reps; rep++ {
		for qi, q := range queries {
			wg.Add(1)
			go func(slot int, q query) {
				defer wg.Done()
				var resp PredictResponse
				if code := getJSON(t, client, q.url, &resp); code != http.StatusOK {
					t.Errorf("%s: status %d", q.url, code)
					return
				}
				got[slot] = resp.ResponseTimeS
			}(rep*len(queries)+qi, q)
		}
	}
	wg.Wait()
	for qi, q := range queries {
		var quiet PredictResponse
		getJSON(t, client, q.url, &quiet)
		for rep := 0; rep < reps; rep++ {
			v := got[rep*len(queries)+qi]
			if q.lqn {
				if rel := math.Abs(v-quiet.ResponseTimeS) / quiet.ResponseTimeS; rel > 1e-6 {
					t.Fatalf("%s: concurrent answer %v vs quiet %v beyond solver tolerance", q.url, v, quiet.ResponseTimeS)
				}
			} else if v != quiet.ResponseTimeS {
				t.Fatalf("%s: concurrent answer %v, quiet answer %v", q.url, v, quiet.ResponseTimeS)
			}
		}
	}
}

// TestOverloadShedsNotCollapses floods the build queue with distinct
// cold keys while warm traffic continues: the flood must shed with 429
// + Retry-After, and the accepted (warm) requests' p99 must stay within
// 2× of the uncontended p99 — backpressure, not collapse.
func TestOverloadShedsNotCollapses(t *testing.T) {
	s, srv := newTestServer(t, func(c *Config) {
		c.BuildWorkers = 1
		c.MaxQueuedBuilds = 1
	})
	client := srv.Client()

	warmURL := srv.URL + "/v1/predict?arch=AppServF&clients=500"
	if code := getJSON(t, client, warmURL, nil); code != http.StatusOK {
		t.Fatalf("warm-up status %d", code)
	}
	orig := s.cache.build
	s.cache.build = func(k modelKey) (*modelEntry, error) {
		time.Sleep(30 * time.Millisecond) // an expensive cold build
		return orig(k)
	}

	warmP99 := func(samples int) time.Duration {
		lats := make([]time.Duration, samples)
		for i := range lats {
			start := time.Now()
			if code := getJSON(t, client, warmURL, nil); code != http.StatusOK {
				t.Fatalf("warm request status %d", code)
			}
			lats[i] = time.Since(start)
		}
		// Nearest-rank p99 over the sorted latencies.
		for i := 1; i < len(lats); i++ {
			for j := i; j > 0 && lats[j] < lats[j-1]; j-- {
				lats[j], lats[j-1] = lats[j-1], lats[j]
			}
		}
		return lats[(samples*99)/100]
	}
	uncontended := warmP99(200)

	// 10× overload: a barrage of distinct cold keys (each a 30ms build
	// against a ~100µs warm request) hammers the build queue.
	var floodWG sync.WaitGroup
	var shed, okCold atomic.Int32
	stop := make(chan struct{})
	for g := 0; g < 10; g++ {
		floodWG.Add(1)
		go func(g int) {
			defer floodWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := fmt.Sprintf("%s/v1/predict?arch=AppServS&clients=100&buy_pct=%d.%d", srv.URL, (g*97+i)%90, i%10)
				resp, err := client.Get(url)
				if err != nil {
					t.Errorf("flood request: %v", err)
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					shed.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
					}
				} else if resp.StatusCode == http.StatusOK {
					okCold.Add(1)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(g)
	}
	contended := warmP99(200)
	close(stop)
	floodWG.Wait()

	if shed.Load() == 0 {
		t.Fatal("overload shed nothing: no 429s observed")
	}
	// Generous floor so scheduler noise on a loaded -race run cannot
	// flake the ratio when the uncontended p99 is tens of microseconds.
	bound := 2 * uncontended
	if floor := 20 * time.Millisecond; bound < floor {
		bound = floor
	}
	if contended > bound {
		t.Fatalf("accepted p99 %v under overload exceeds bound %v (uncontended %v)", contended, bound, uncontended)
	}
	t.Logf("uncontended p99 %v, overloaded p99 %v, shed %d, cold accepted %d",
		uncontended, contended, shed.Load(), okCold.Load())
}

// TestDeadlineExpiresWith504 parks a request behind a slow build with a
// millisecond deadline: it must come back 504, not hang.
func TestDeadlineExpiresWith504(t *testing.T) {
	s, srv := newTestServer(t, nil)
	client := srv.Client()

	orig := s.cache.build
	release := make(chan struct{})
	s.cache.build = func(k modelKey) (*modelEntry, error) {
		<-release
		return orig(k)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The flight leader: generous deadline, blocked on the build.
		getJSON(t, client, srv.URL+"/v1/predict?arch=AppServF&clients=500", nil)
	}()
	time.Sleep(10 * time.Millisecond) // let the leader take the flight
	code := getJSON(t, client, srv.URL+"/v1/predict?arch=AppServF&clients=500&deadline_ms=5", nil)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadline-bound waiter got %d, want 504", code)
	}
	close(release)
	wg.Wait()
}

// TestGracefulShutdownDrains closes the service while layered solves
// are in flight: every request accepted before shutdown must still get
// its answer (the drain contract), and requests after it must be told
// the service is gone rather than hanging.
func TestGracefulShutdownDrains(t *testing.T) {
	s := newTestService(t, func(c *Config) { c.SolveWorkers = 1 })

	const inflight = 24
	codes := make(chan error, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodGet,
				fmt.Sprintf("/v1/predict?arch=AppServF&clients=%d&method=lqn", 100+i*50), nil)
			resp, err := s.Predict(req, PredictRequest{Arch: "AppServF", Clients: float64(100 + i*50), Method: "lqn"})
			if err != nil {
				codes <- err
				return
			}
			if resp.ResponseTimeS <= 0 {
				codes <- fmt.Errorf("non-positive RT %v", resp.ResponseTimeS)
				return
			}
			codes <- nil
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the herd enqueue
	s.Close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("shutdown left requests hanging")
	}
	close(codes)
	var answered, refused int
	for err := range codes {
		switch {
		case err == nil:
			answered++
		case err == ErrShuttingDown:
			refused++
		default:
			t.Fatalf("request dropped mid-drain: %v", err)
		}
	}
	if answered+refused != inflight {
		t.Fatalf("accounted for %d of %d requests", answered+refused, inflight)
	}
	if answered == 0 {
		t.Fatal("no request was answered before shutdown")
	}
	// After Close the service refuses new work instead of hanging.
	req := httptest.NewRequest(http.MethodGet, "/v1/predict", nil)
	if _, err := s.Predict(req, PredictRequest{Arch: "AppServF", Clients: 10}); err != ErrShuttingDown {
		t.Fatalf("post-shutdown predict: %v, want ErrShuttingDown", err)
	}
}

// TestBadRequests maps every client mistake to a 400 with a JSON error
// body.
func TestBadRequests(t *testing.T) {
	_, srv := newTestServer(t, nil)
	client := srv.Client()
	for _, url := range []string{
		"/v1/predict?arch=NoSuchServer&clients=10",
		"/v1/predict?clients=10",
		"/v1/predict?arch=AppServF&clients=0",
		"/v1/predict?arch=AppServF&clients=10&percentile=1.5",
		"/v1/predict?arch=AppServF&clients=10&buy_pct=150",
		"/v1/predict?arch=AppServF&clients=10&method=tarot",
		"/v1/capacity?arch=AppServF&goal_rt_s=0",
		"/v1/capacity?arch=AppServF&goal_rt_s=-1",
	} {
		var e errorResponse
		if code := getJSON(t, client, srv.URL+url, &e); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, code)
		} else if e.Error == "" {
			t.Errorf("%s: empty error body", url)
		}
	}
	if code := postJSON(t, client, srv.URL+"/v1/allocate", AllocateRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty allocate: status %d, want 400", code)
	}
	if code := postJSON(t, client, srv.URL+"/v1/allocate", AllocateRequest{
		Classes: []AllocClass{{Name: "g", GoalRTS: 0.1, Clients: 10}},
		Servers: []AllocServer{{Name: "x", Arch: "AppServF", Power: 1}},
		Slack:   0.5, // deflation without opting in
	}, nil); code != http.StatusBadRequest {
		t.Errorf("slack<1 without allow_deflation: status %d, want 400", code)
	}
}

// TestHealthz sanity-checks the liveness endpoint.
func TestHealthz(t *testing.T) {
	_, srv := newTestServer(t, nil)
	var h struct {
		Status string   `json:"status"`
		Archs  []string `json:"archs"`
	}
	if code := getJSON(t, srv.Client(), srv.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if h.Status != "ok" || len(h.Archs) != 3 {
		t.Fatalf("healthz = %+v", h)
	}
}

// TestCancelledClientContext covers the batcher's queued-but-dead
// path: a job whose context dies in the queue is skipped, not solved.
func TestCancelledClientContext(t *testing.T) {
	s := newTestService(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	job := &solveJob{kind: solveRT, key: makeKey("AppServF", 0), n: 100, ctx: ctx, resp: make(chan solveOut, 1)}
	if err := s.batch.submit(job); err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-job.resp:
		if out.err == nil {
			t.Fatal("cancelled job was solved anyway")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled job never answered")
	}
}
