package serve

import (
	"context"
	"sort"
	"sync"

	"perfpred/internal/lqn"
	"perfpred/internal/sessioncache"
	"perfpred/internal/workload"
)

// solveKind selects what a batch worker computes for a job.
type solveKind int

const (
	solveRT       solveKind = iota // mean response time at a population
	solveCapacity                  // max clients under a goal (§8.2 search)
)

// solveJob is one queued layered-solver request. The response channel
// is buffered so a worker's send never blocks on a caller that gave up
// waiting (deadline expiry leaves the job to complete harmlessly).
type solveJob struct {
	kind   solveKind
	key    modelKey
	n      int     // population, for solveRT
	goalRT float64 // seconds, for solveCapacity
	ctx    context.Context
	resp   chan solveOut
}

type solveOut struct {
	rt    float64 // mean response time, for solveRT
	n     int     // max clients, for solveCapacity
	evals int
	err   error
}

// keyState is a worker-owned warm solving context for one
// (architecture, mix): the trade model built once plus a retained
// warm-started Solver whose cached resolution and previous queue
// lengths every solve in a batch reuses.
type keyState struct {
	model  *lqn.Model
	solver *lqn.Solver
	load   func(n int) workload.Workload
}

// batcher turns the service's exact layered-queuing queries into
// warm-start sweeps. Requests land in one bounded queue; each worker
// drains a batch, groups it by (architecture, mix) and sorts each
// group by population, then runs the group on a single warm-started
// solver — adjacent-population solves collapse into a sweep (PR 2
// measured ~11% fewer MVA iterations per step, and the model
// resolution is paid once) instead of N cold solves. A full queue
// rejects instantly with ErrOverloaded: the overload regime costs a
// channel send attempt, not a convoy.
type batcher struct {
	queue    chan *solveJob
	maxBatch int
	opt      lqn.Options

	makeState func(modelKey) (*keyState, error)

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

func newBatcher(workers, queueCap, maxBatch int, opt lqn.Options, makeState func(modelKey) (*keyState, error)) *batcher {
	b := &batcher{
		queue:     make(chan *solveJob, queueCap),
		maxBatch:  maxBatch,
		opt:       opt,
		makeState: makeState,
	}
	for i := 0; i < workers; i++ {
		b.wg.Add(1)
		go b.worker()
	}
	return b
}

// submit enqueues a job, rejecting with ErrOverloaded when the queue
// is full. It never blocks.
func (b *batcher) submit(j *solveJob) error {
	m := metrics.Load()
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrShuttingDown
	}
	select {
	case b.queue <- j:
		depth := int64(len(b.queue))
		b.mu.Unlock()
		m.solveQueueDepth.Set(depth)
		m.solveQueueHigh.Observe(depth)
		return nil
	default:
		b.mu.Unlock()
		m.rejectedOverload.Inc()
		return ErrOverloaded
	}
}

// close stops the workers after the queue drains, so every accepted
// job still gets an answer — the graceful-shutdown half of the drain
// contract.
func (b *batcher) close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.queue)
	}
	b.mu.Unlock()
	b.wg.Wait()
}

func (b *batcher) worker() {
	defer b.wg.Done()
	// Worker-owned solver states, bounded so a key churn cannot pin
	// unbounded models: least-recently-solved keys drop their workspace
	// and rebuild on next use.
	states := sessioncache.NewLRU[modelKey, *keyState](32)
	batch := make([]*solveJob, 0, b.maxBatch)
	for first := range b.queue {
		batch = append(batch[:0], first)
		// Opportunistic drain: everything already queued joins this
		// batch (up to maxBatch) and will share sorted warm sweeps.
		for len(batch) < b.maxBatch {
			j, ok := tryRecv(b.queue)
			if !ok {
				break
			}
			batch = append(batch, j)
		}
		m := metrics.Load()
		m.solveQueueDepth.Set(int64(len(b.queue)))
		m.batchSize.Observe(float64(len(batch)))

		// Group by key, ascending population within a key: each
		// group becomes one warm-start sweep.
		sort.SliceStable(batch, func(i, j int) bool {
			if batch[i].key != batch[j].key {
				return lessKey(batch[i].key, batch[j].key)
			}
			return batch[i].n < batch[j].n
		})
		for _, job := range batch {
			b.run(states, job)
		}
	}
}

// run executes one job on the worker's warm state for its key.
func (b *batcher) run(states *sessioncache.LRU[modelKey, *keyState], job *solveJob) {
	if err := job.ctx.Err(); err != nil {
		// The caller's deadline passed while the job sat in the queue;
		// skip the solve rather than burning a worker on a dead request.
		metrics.Load().deadlineExpired.Inc()
		job.resp <- solveOut{err: err}
		return
	}
	st, ok := states.Get(job.key)
	if !ok {
		var err error
		st, err = b.makeState(job.key)
		if err != nil {
			job.resp <- solveOut{err: err}
			return
		}
		states.Put(job.key, st)
	}
	switch job.kind {
	case solveRT:
		for i, p := range st.load(job.n) {
			st.model.Classes[i].Population = p.Clients
		}
		res, err := st.solver.Solve(st.model, b.opt)
		if err != nil {
			job.resp <- solveOut{err: err}
			return
		}
		metrics.Load().batchSolves.Inc()
		job.resp <- solveOut{rt: weightedMeanRT(st.model, res), evals: 1}
	case solveCapacity:
		n, evals, err := b.capacitySearch(st, job.goalRT)
		if err != nil {
			job.resp <- solveOut{err: err}
			return
		}
		metrics.Load().batchSolves.Add(uint64(evals))
		job.resp <- solveOut{n: n, evals: evals}
	}
}

// capacitySearch is the §8.2 client-count search generalised to a
// fixed mix: the layered model cannot be inverted, so it probes total
// populations (the mix split at each probe exactly as the RT path
// splits it) until the request-weighted mean response time breaks the
// goal, then bisects. It deliberately runs on a fresh warm-started
// solver with a fixed probe sequence — MaxClientsSearch's exponential
// probe then bisection — so a capacity answer never depends on what
// the worker happened to solve before it, and an offline rerun of the
// same query reproduces the served number exactly.
func (b *batcher) capacitySearch(st *keyState, goalRT float64) (clients, evals int, err error) {
	if goalRT <= 0 {
		return 0, 0, &badRequestError{msg: "goal response time must be positive"}
	}
	solver := lqn.NewSolver()
	solver.WarmStart = true
	evalAt := func(n int) (bool, error) {
		for i, p := range st.load(n) {
			st.model.Classes[i].Population = p.Clients
		}
		res, err := solver.Solve(st.model, b.opt)
		if err != nil {
			return false, err
		}
		evals++
		return weightedMeanRT(st.model, res) <= goalRT, nil
	}
	const limit = 1 << 20
	ok, err := evalAt(1)
	if err != nil {
		return 0, evals, err
	}
	if !ok {
		return 0, evals, nil
	}
	lo, hi := 1, 2
	for hi <= limit {
		ok, err := evalAt(hi)
		if err != nil {
			return 0, evals, err
		}
		if !ok {
			break
		}
		lo = hi
		hi *= 2
	}
	if hi > limit {
		hi = limit + 1
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		ok, err := evalAt(mid)
		if err != nil {
			return 0, evals, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, evals, nil
}

// tryRecv is a non-blocking receive that also tolerates a closed
// queue.
func tryRecv(q chan *solveJob) (*solveJob, bool) {
	select {
	case j, ok := <-q:
		return j, ok
	default:
		return nil, false
	}
}

func lessKey(a, b modelKey) bool {
	if a.arch != b.arch {
		return a.arch < b.arch
	}
	return a.buyPctTenth < b.buyPctTenth
}
