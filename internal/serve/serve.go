// Package serve is the long-lived prediction service: the paper's
// predictors packaged behind a concurrent HTTP/JSON API and engineered
// as a serving hot path. Batch artifacts — a hybrid model built once,
// queried offline — become cached, amortised online models, the regime
// Witt et al. (arXiv:1805.11877) argue performance prediction must
// reach to pay for itself.
//
// The serving architecture has four load-bearing pieces:
//
//   - a per-(architecture, mix) model cache: finished hybrid models
//     live in a bounded sessioncache.LRU, and a parallel.Memo
//     singleflight collapses a thundering herd of cold requests for
//     one key into exactly one build (stampede control);
//   - async build workers: cold hybrid builds run warm-started
//     layered sweeps under a bounded worker semaphore, so build cost
//     is paid off the steady-state request path and bounded in
//     concurrency;
//   - a request-coalescing batch solver for exact layered queries:
//     queued solves are drained in batches, grouped by model and
//     sorted by population, so N adjacent-population requests become
//     one warm-start sweep instead of N cold solves;
//   - admission control: bounded queues everywhere, per-request
//     deadlines, and typed backpressure — overload degrades to fast
//     429s with Retry-After, never to collapse.
//
// Every stage is wired into the obs registry (per-endpoint latency
// histograms, cache traffic, queue depths and high-water marks), and
// cmd/predload turns the system on itself: it drives this service with
// trade-simulator-derived request streams and snapshots the evidence
// to BENCH_serve.json.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"perfpred/internal/lqn"
	"perfpred/internal/rm"
	"perfpred/internal/rtdist"
	"perfpred/internal/workload"
)

// Typed serving errors: the admission controller's vocabulary.
var (
	// ErrOverloaded means a bounded queue was full; the client should
	// back off and retry (HTTP 429 + Retry-After).
	ErrOverloaded = errors.New("serve: overloaded, retry later")
	// ErrShuttingDown means the service stopped accepting work (503).
	ErrShuttingDown = errors.New("serve: shutting down")
)

// badRequestError marks client mistakes (unknown architecture, bad
// parameters) so the handler maps them to 400 instead of 500.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

// Config assembles a Service.
type Config struct {
	// Archs are the servable architectures; requests name them by
	// ServerArch.Name.
	Archs []workload.ServerArch
	// DB is the shared database server behind every architecture.
	DB workload.DBServer
	// Demands are the calibrated per-request-type demands on the
	// reference architecture.
	Demands map[workload.RequestType]workload.Demand
	// LQN tunes every layered solve (builds, batch solves, searches).
	LQN lqn.Options
	// PointsPerEquation is the hybrid build fidelity (0 selects the
	// paper's 4).
	PointsPerEquation int

	// CacheCapacity bounds the model cache in entries; 0 = unbounded.
	CacheCapacity int

	// LaplaceB fixes the §7.1 percentile scale in seconds. 0 means
	// calibrate per (architecture, mix) from a fixed-seed simulator
	// run during the cold build — slower builds, honest tails.
	LaplaceB float64
	// CalibrationSeed seeds the calibration runs (default 1).
	CalibrationSeed int64
	// CalibrationSimSeconds is the calibration run's simulated horizon
	// (default 40; a quarter of it is warm-up).
	CalibrationSimSeconds float64

	// RegressTrainSamples is how many simulator measurements the cheap
	// regress tier trains on per (architecture, mix) (default 8).
	RegressTrainSamples int
	// RegressSimSeconds is each regress training run's simulated
	// horizon (default 20; a quarter of it is warm-up). The whole
	// training set costs RegressTrainSamples × 1.25 × this in simulated
	// seconds — the knob that keeps the tier cheap.
	RegressSimSeconds float64
	// RegressDegree is the polynomial degree of the regress tier
	// (default 2 — the cheap tier favours robustness over fit).
	RegressDegree int

	// BuildWorkers bounds concurrent cold builds (default 2).
	BuildWorkers int
	// MaxQueuedBuilds bounds builds waiting for a worker slot beyond
	// the running ones; more cold keys than this reject with 429
	// (default 8).
	MaxQueuedBuilds int
	// SolveWorkers is the batch solver's worker count (default
	// GOMAXPROCS).
	SolveWorkers int
	// MaxQueuedSolves bounds the batch solver's queue (default 256).
	MaxQueuedSolves int
	// MaxBatch caps how many queued solves one worker drains into a
	// single warm-start sweep (default 64).
	MaxBatch int

	// DefaultDeadline is applied to requests that do not carry their
	// own deadline_ms (default 5s). Deadlines are capped at 60s.
	DefaultDeadline time.Duration
	// RetryAfter is the backoff hint attached to 429 responses
	// (default 1s).
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.CalibrationSeed == 0 {
		c.CalibrationSeed = 1
	}
	if c.CalibrationSimSeconds == 0 {
		c.CalibrationSimSeconds = 40
	}
	if c.RegressTrainSamples <= 0 {
		c.RegressTrainSamples = 8
	}
	if c.RegressSimSeconds <= 0 {
		c.RegressSimSeconds = 20
	}
	if c.RegressDegree <= 0 {
		c.RegressDegree = 2
	}
	if c.BuildWorkers <= 0 {
		c.BuildWorkers = 2
	}
	if c.MaxQueuedBuilds <= 0 {
		c.MaxQueuedBuilds = 8
	}
	if c.SolveWorkers <= 0 {
		c.SolveWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueuedSolves <= 0 {
		c.MaxQueuedSolves = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 5 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Service is the long-lived prediction service. Create with New,
// mount Handler on an HTTP server, and Close after the HTTP server
// has drained (Close stops the batch workers only once their queue is
// empty, so every accepted request still gets its answer).
type Service struct {
	cfg   Config
	archs map[string]workload.ServerArch
	cache *modelCache[*modelEntry]
	// regressCache is the cheap tier: black-box regression models
	// trained from a few short simulator runs, sharing the hybrid
	// cache's stampede control and admission machinery.
	regressCache *modelCache[*regressEntry]
	batch        *batcher

	closed atomic.Bool
}

// New validates the configuration and starts the batch workers.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Archs) == 0 {
		return nil, errors.New("serve: no architectures configured")
	}
	if err := cfg.DB.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Demands) == 0 {
		return nil, errors.New("serve: no demands configured")
	}
	s := &Service{cfg: cfg, archs: make(map[string]workload.ServerArch, len(cfg.Archs))}
	for _, a := range cfg.Archs {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		if _, dup := s.archs[a.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate architecture %q", a.Name)
		}
		s.archs[a.Name] = a
	}
	s.cache = newModelCache(cfg.CacheCapacity, cfg.BuildWorkers, cfg.MaxQueuedBuilds, s.buildEntry)
	s.regressCache = newModelCache(cfg.CacheCapacity, cfg.BuildWorkers, cfg.MaxQueuedBuilds, s.buildRegressEntry)
	s.batch = newBatcher(cfg.SolveWorkers, cfg.MaxQueuedSolves, cfg.MaxBatch, cfg.LQN, s.makeState)
	return s, nil
}

// Close drains and stops the batch workers. Call it only after the
// HTTP server has shut down: accepted requests still queued are
// answered before the workers exit.
func (s *Service) Close() {
	if s.closed.CompareAndSwap(false, true) {
		s.batch.close()
	}
}

// makeState builds a batch worker's warm solving context for one key.
func (s *Service) makeState(key modelKey) (*keyState, error) {
	arch, ok := s.archs[key.arch]
	if !ok {
		return nil, &badRequestError{msg: "unknown architecture " + key.arch}
	}
	buyFrac := key.buyFrac()
	load := func(n int) workload.Workload {
		if buyFrac <= 0 {
			return workload.TypicalWorkload(n)
		}
		return workload.MixedWorkload(n, buyFrac)
	}
	model, err := lqn.NewTradeModel(arch, s.cfg.DB, s.cfg.Demands, load(1))
	if err != nil {
		return nil, err
	}
	solver := lqn.NewSolver()
	solver.WarmStart = true
	return &keyState{model: model, solver: solver, load: load}, nil
}

// weightedMeanRT recomputes Result.MeanResponseTime iterating classes
// in model order: the Result method walks a map, and float summation
// order perturbs the last digits, which would make identical queries
// return non-identical numbers.
func weightedMeanRT(model *lqn.Model, res *lqn.Result) float64 {
	var xSum, rxSum float64
	for _, cl := range model.Classes {
		c := res.Classes[cl.Name]
		xSum += c.Throughput
		rxSum += c.Throughput * c.ResponseTime
	}
	if xSum == 0 {
		return 0
	}
	return rxSum / xSum
}

// ---- request/response schema ----

// PredictRequest asks for a response-time prediction.
type PredictRequest struct {
	Arch    string  `json:"arch"`
	Clients float64 `json:"clients"`
	// BuyPct is the buy percentage of the mix (0–100; 0 = typical
	// all-browse workload).
	BuyPct float64 `json:"buy_pct"`
	// Percentile, in (0,1), converts the mean prediction via the §7.1
	// distributions; 0 predicts the mean.
	Percentile float64 `json:"percentile"`
	// Method is "hybrid" (default; cached closed-form model), "lqn"
	// (exact layered solve through the coalescing batcher) or "regress"
	// (cheap-tier black-box regression, means only).
	Method string `json:"method"`
	// DeadlineMS overrides the service's default deadline.
	DeadlineMS int64 `json:"deadline_ms"`
}

// PredictResponse is the answer.
type PredictResponse struct {
	Arch          string  `json:"arch"`
	Clients       float64 `json:"clients"`
	BuyPct        float64 `json:"buy_pct"`
	Method        string  `json:"method"`
	Percentile    float64 `json:"percentile,omitempty"`
	ResponseTimeS float64 `json:"response_time_s"`
	// Cold reports whether this request waited on a model build.
	Cold bool `json:"cold"`
	// BuildMS is the cold build's wall-clock cost (0 on warm hits).
	BuildMS float64 `json:"build_ms,omitempty"`
}

// CapacityRequest asks for the largest client population an
// architecture holds within a response-time goal.
type CapacityRequest struct {
	Arch       string  `json:"arch"`
	GoalRTS    float64 `json:"goal_rt_s"`
	BuyPct     float64 `json:"buy_pct"`
	Method     string  `json:"method"`
	DeadlineMS int64   `json:"deadline_ms"`
}

// CapacityResponse is the answer.
type CapacityResponse struct {
	Arch        string  `json:"arch"`
	GoalRTS     float64 `json:"goal_rt_s"`
	BuyPct      float64 `json:"buy_pct"`
	Method      string  `json:"method"`
	MaxClients  float64 `json:"max_clients"`
	Evaluations int     `json:"evaluations,omitempty"`
	Cold        bool    `json:"cold"`
	BuildMS     float64 `json:"build_ms,omitempty"`
}

// AllocateRequest runs Algorithm 1 over the cached models.
type AllocateRequest struct {
	Classes []AllocClass  `json:"classes"`
	Servers []AllocServer `json:"servers"`
	Slack   float64       `json:"slack"`
	BuyPct  float64       `json:"buy_pct"`
	// AllowDeflation permits slack < 1 (the §9 sweep's knob).
	AllowDeflation bool  `json:"allow_deflation"`
	DeadlineMS     int64 `json:"deadline_ms"`
}

// AllocClass mirrors rm.Class.
type AllocClass struct {
	Name    string  `json:"name"`
	GoalRTS float64 `json:"goal_rt_s"`
	Clients int     `json:"clients"`
}

// AllocServer mirrors rm.Server.
type AllocServer struct {
	Name  string  `json:"name"`
	Arch  string  `json:"arch"`
	Power float64 `json:"power"`
}

// AllocateResponse mirrors rm.Plan.
type AllocateResponse struct {
	Allocations     []Allocation   `json:"allocations"`
	RejectedPlanned map[string]int `json:"rejected_planned,omitempty"`
	Slack           float64        `json:"slack"`
	UsagePct        float64        `json:"usage_pct"`
}

// Allocation mirrors rm.Allocation.
type Allocation struct {
	Server  string `json:"server"`
	Class   string `json:"class"`
	Clients int    `json:"clients"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---- HTTP plumbing ----

// Handler returns the service's HTTP mux:
//
//	GET|POST /v1/predict   response-time prediction
//	GET|POST /v1/capacity  max-clients query
//	POST     /v1/allocate  Algorithm 1 allocation plan
//	GET      /healthz      liveness + configured architectures
//
// Mount the obs Handler alongside it for /metrics and /debug.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/capacity", s.handleCapacity)
	mux.HandleFunc("/v1/allocate", s.handleAllocate)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

// requestCtx applies the per-request deadline.
func (s *Service) requestCtx(r *http.Request, deadlineMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	if d > time.Minute {
		d = time.Minute
	}
	return context.WithTimeout(r.Context(), d)
}

// writeJSON writes v with status 200.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps the service's typed errors onto status codes: 400
// for client mistakes, 429 + Retry-After for backpressure, 503 while
// shutting down, 504 for expired deadlines, 500 otherwise.
func (s *Service) writeError(w http.ResponseWriter, err error) {
	m := metrics.Load()
	status := http.StatusInternalServerError
	var bad *badRequestError
	switch {
	case errors.As(err, &bad):
		status = http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		status = http.StatusTooManyRequests
		secs := int(math.Ceil(s.cfg.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	case errors.Is(err, ErrShuttingDown):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status = http.StatusGatewayTimeout
		m.deadlineExpired.Inc()
	default:
		m.errors.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}

// decodeInto parses a request from a JSON body (POST) or query
// parameters (GET; numeric fields named like their JSON tags).
func decodeInto(r *http.Request, dst any) error {
	if r.Method == http.MethodPost {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(dst); err != nil {
			return &badRequestError{msg: "bad JSON body: " + err.Error()}
		}
		return nil
	}
	q := r.URL.Query()
	get := func(name string) (string, bool) { v := q.Get(name); return v, v != "" }
	getF := func(name string, into *float64) error {
		if v, ok := get(name); ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return &badRequestError{msg: "bad " + name + ": " + v}
			}
			*into = f
		}
		return nil
	}
	switch d := dst.(type) {
	case *PredictRequest:
		if v, ok := get("arch"); ok {
			d.Arch = v
		}
		if v, ok := get("method"); ok {
			d.Method = v
		}
		for name, into := range map[string]*float64{
			"clients": &d.Clients, "buy_pct": &d.BuyPct, "percentile": &d.Percentile,
		} {
			if err := getF(name, into); err != nil {
				return err
			}
		}
		var dl float64
		if err := getF("deadline_ms", &dl); err != nil {
			return err
		}
		d.DeadlineMS = int64(dl)
	case *CapacityRequest:
		if v, ok := get("arch"); ok {
			d.Arch = v
		}
		if v, ok := get("method"); ok {
			d.Method = v
		}
		for name, into := range map[string]*float64{
			"goal_rt_s": &d.GoalRTS, "buy_pct": &d.BuyPct,
		} {
			if err := getF(name, into); err != nil {
				return err
			}
		}
		var dl float64
		if err := getF("deadline_ms", &dl); err != nil {
			return err
		}
		d.DeadlineMS = int64(dl)
	default:
		return &badRequestError{msg: "method not allowed"}
	}
	return nil
}

func validateCommon(arch string, buyPct float64) error {
	if arch == "" {
		return &badRequestError{msg: "missing arch"}
	}
	if buyPct < 0 || buyPct > 100 {
		return &badRequestError{msg: fmt.Sprintf("buy_pct %v outside [0,100]", buyPct)}
	}
	return nil
}

// ---- endpoints ----

func (s *Service) handlePredict(w http.ResponseWriter, r *http.Request) {
	m := metrics.Load()
	m.predictRequests.Inc()
	m.inflight.Add(1)
	start := time.Now()
	defer func() {
		m.inflight.Add(-1)
		m.predictSeconds.Observe(time.Since(start).Seconds())
	}()

	var req PredictRequest
	if err := decodeInto(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	resp, err := s.Predict(r, req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, resp)
}

// Predict answers a PredictRequest; it is exported so in-process
// callers (tests, load generators) can bypass HTTP decoding while
// exercising the identical serving path.
func (s *Service) Predict(r *http.Request, req PredictRequest) (*PredictResponse, error) {
	if s.closed.Load() {
		return nil, ErrShuttingDown
	}
	if err := validateCommon(req.Arch, req.BuyPct); err != nil {
		return nil, err
	}
	if req.Clients <= 0 {
		return nil, &badRequestError{msg: "clients must be positive"}
	}
	if req.Percentile < 0 || req.Percentile >= 1 {
		return nil, &badRequestError{msg: fmt.Sprintf("percentile %v outside [0,1)", req.Percentile)}
	}
	method := req.Method
	if method == "" {
		method = "hybrid"
	}
	ctx, cancel := s.requestCtx(r, req.DeadlineMS)
	defer cancel()

	key := makeKey(req.Arch, req.BuyPct)
	resp := &PredictResponse{
		Arch: req.Arch, Clients: req.Clients, BuyPct: req.BuyPct,
		Method: method, Percentile: req.Percentile,
	}

	switch method {
	case "hybrid":
		entry, cold, err := s.cache.get(ctx, key)
		if err != nil {
			return nil, err
		}
		resp.Cold = cold
		if cold {
			resp.BuildMS = float64(entry.buildWall) / float64(time.Millisecond)
		}
		if req.Percentile > 0 {
			rt, err := entry.sm.PredictPercentile(req.Clients, req.Percentile, entry.laplaceB)
			if err != nil {
				return nil, err
			}
			resp.ResponseTimeS = rt
		} else {
			resp.ResponseTimeS = entry.sm.Predict(req.Clients)
		}
	case "regress":
		if req.Percentile > 0 {
			return nil, &badRequestError{msg: "method regress predicts means only (no percentile support)"}
		}
		entry, cold, err := s.regressCache.get(ctx, key)
		if err != nil {
			return nil, err
		}
		resp.Cold = cold
		if cold {
			resp.BuildMS = float64(entry.buildWall) / float64(time.Millisecond)
		}
		rt, err := entry.model.Predict(req.Arch, req.Clients)
		if err != nil {
			return nil, err
		}
		resp.ResponseTimeS = rt
	case "lqn":
		rt, err := s.batchSolveRT(ctx, key, int(req.Clients+0.5))
		if err != nil {
			return nil, err
		}
		resp.ResponseTimeS = rt
		if req.Percentile > 0 {
			// The layered solver predicts only means; percentile
			// conversion borrows the cached hybrid entry's saturation
			// boundary and Laplace scale, exactly as the offline
			// comparison does.
			entry, cold, err := s.cache.get(ctx, key)
			if err != nil {
				return nil, err
			}
			resp.Cold = cold
			p, err := rtdist.PercentileFromMean(rt, entry.sm.Saturated(req.Clients), entry.laplaceB, req.Percentile)
			if err != nil {
				return nil, err
			}
			resp.ResponseTimeS = p
		}
	default:
		return nil, &badRequestError{msg: "unknown method " + method + " (want hybrid, lqn or regress)"}
	}
	return resp, nil
}

// batchSolveRT routes one exact solve through the coalescing batcher.
func (s *Service) batchSolveRT(ctx context.Context, key modelKey, n int) (float64, error) {
	if n < 1 {
		n = 1
	}
	job := &solveJob{kind: solveRT, key: key, n: n, ctx: ctx, resp: make(chan solveOut, 1)}
	if err := s.batch.submit(job); err != nil {
		return 0, err
	}
	select {
	case out := <-job.resp:
		return out.rt, out.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

func (s *Service) handleCapacity(w http.ResponseWriter, r *http.Request) {
	m := metrics.Load()
	m.capacityRequests.Inc()
	m.inflight.Add(1)
	start := time.Now()
	defer func() {
		m.inflight.Add(-1)
		m.capacitySeconds.Observe(time.Since(start).Seconds())
	}()

	var req CapacityRequest
	if err := decodeInto(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	resp, err := s.Capacity(r, req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, resp)
}

// Capacity answers a CapacityRequest (see Predict for the in-process
// contract).
func (s *Service) Capacity(r *http.Request, req CapacityRequest) (*CapacityResponse, error) {
	if s.closed.Load() {
		return nil, ErrShuttingDown
	}
	if err := validateCommon(req.Arch, req.BuyPct); err != nil {
		return nil, err
	}
	if req.GoalRTS <= 0 {
		return nil, &badRequestError{msg: "goal_rt_s must be positive"}
	}
	method := req.Method
	if method == "" {
		method = "hybrid"
	}
	ctx, cancel := s.requestCtx(r, req.DeadlineMS)
	defer cancel()

	key := makeKey(req.Arch, req.BuyPct)
	resp := &CapacityResponse{Arch: req.Arch, GoalRTS: req.GoalRTS, BuyPct: req.BuyPct, Method: method}

	switch method {
	case "hybrid":
		entry, cold, err := s.cache.get(ctx, key)
		if err != nil {
			return nil, err
		}
		resp.Cold = cold
		if cold {
			resp.BuildMS = float64(entry.buildWall) / float64(time.Millisecond)
		}
		n, err := entry.sm.MaxClients(req.GoalRTS)
		if err != nil {
			return nil, err
		}
		resp.MaxClients = n
	case "regress":
		entry, cold, err := s.regressCache.get(ctx, key)
		if err != nil {
			return nil, err
		}
		resp.Cold = cold
		if cold {
			resp.BuildMS = float64(entry.buildWall) / float64(time.Millisecond)
		}
		n, err := entry.model.MaxClients(req.Arch, req.GoalRTS)
		if err != nil {
			return nil, err
		}
		resp.MaxClients = n
	case "lqn":
		job := &solveJob{kind: solveCapacity, key: key, goalRT: req.GoalRTS, ctx: ctx, resp: make(chan solveOut, 1)}
		if err := s.batch.submit(job); err != nil {
			return nil, err
		}
		select {
		case out := <-job.resp:
			if out.err != nil {
				return nil, out.err
			}
			resp.MaxClients = float64(out.n)
			resp.Evaluations = out.evals
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	default:
		return nil, &badRequestError{msg: "unknown method " + method + " (want hybrid, lqn or regress)"}
	}
	return resp, nil
}

func (s *Service) handleAllocate(w http.ResponseWriter, r *http.Request) {
	m := metrics.Load()
	m.allocateRequests.Inc()
	m.inflight.Add(1)
	start := time.Now()
	defer func() {
		m.inflight.Add(-1)
		m.allocateSeconds.Observe(time.Since(start).Seconds())
	}()

	if r.Method != http.MethodPost {
		s.writeError(w, &badRequestError{msg: "allocate requires POST"})
		return
	}
	var req AllocateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, &badRequestError{msg: "bad JSON body: " + err.Error()})
		return
	}
	resp, err := s.Allocate(r, req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, resp)
}

// Allocate answers an AllocateRequest: Algorithm 1 over the cached
// per-(architecture, mix) models.
func (s *Service) Allocate(r *http.Request, req AllocateRequest) (*AllocateResponse, error) {
	if s.closed.Load() {
		return nil, ErrShuttingDown
	}
	if len(req.Classes) == 0 || len(req.Servers) == 0 {
		return nil, &badRequestError{msg: "allocate needs classes and servers"}
	}
	if req.BuyPct < 0 || req.BuyPct > 100 {
		return nil, &badRequestError{msg: fmt.Sprintf("buy_pct %v outside [0,100]", req.BuyPct)}
	}
	ctx, cancel := s.requestCtx(r, req.DeadlineMS)
	defer cancel()

	classes := make([]rm.Class, len(req.Classes))
	for i, c := range req.Classes {
		classes[i] = rm.Class{Name: c.Name, GoalRT: c.GoalRTS, Clients: c.Clients}
	}
	servers := make([]rm.Server, len(req.Servers))
	for i, sv := range req.Servers {
		if _, ok := s.archs[sv.Arch]; !ok {
			return nil, &badRequestError{msg: "unknown architecture " + sv.Arch}
		}
		servers[i] = rm.Server{Name: sv.Name, Arch: sv.Arch, Power: sv.Power}
	}
	pred := cachedPredictor{s: s, ctx: ctx, buyPct: req.BuyPct}
	plan, err := rm.Allocate(classes, servers, pred, req.Slack, rm.Options{AllowDeflation: req.AllowDeflation})
	if err != nil {
		// Distinguish operational failures (overload, deadline) from
		// rm's own validation errors, which are the client's fault.
		if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrShuttingDown) ||
			errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return nil, err
		}
		return nil, &badRequestError{msg: err.Error()}
	}
	resp := &AllocateResponse{Slack: plan.Slack, UsagePct: plan.UsagePct, RejectedPlanned: plan.RejectedPlanned}
	for _, a := range plan.Allocations {
		resp.Allocations = append(resp.Allocations, Allocation{Server: a.Server, Class: a.Class, Clients: a.Clients})
	}
	return resp, nil
}

// cachedPredictor adapts the model cache to rm.Predictor for one
// request's context and mix.
type cachedPredictor struct {
	s      *Service
	ctx    context.Context
	buyPct float64
}

func (p cachedPredictor) Predict(arch string, n float64) (float64, error) {
	entry, _, err := p.s.cache.get(p.ctx, makeKey(arch, p.buyPct))
	if err != nil {
		return 0, err
	}
	return entry.sm.Predict(n), nil
}

func (p cachedPredictor) MaxClients(arch string, goalRT float64) (float64, error) {
	entry, _, err := p.s.cache.get(p.ctx, makeKey(arch, p.buyPct))
	if err != nil {
		return 0, err
	}
	return entry.sm.MaxClients(goalRT)
}

func (s *Service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	names := make([]string, 0, len(s.archs))
	for _, a := range s.cfg.Archs {
		names = append(names, a.Name)
	}
	writeJSON(w, map[string]any{"status": "ok", "archs": names})
}
