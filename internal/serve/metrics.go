package serve

import (
	"sync/atomic"

	"perfpred/internal/obs"
)

// serveMetrics instrument the prediction service's hot path: request
// counts and latency per endpoint, model-cache traffic, cold-build
// cost and queue pressure, batch-solver coalescing, and the admission
// controller's rejection counters. They follow the repo convention:
// registered once via EnableMetrics, nil-safe, zero-allocation on the
// request path.
type serveMetrics struct {
	predictRequests  *obs.Counter
	capacityRequests *obs.Counter
	allocateRequests *obs.Counter

	predictSeconds  *obs.Histogram
	capacitySeconds *obs.Histogram
	allocateSeconds *obs.Histogram

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	cacheEvicts *obs.Counter

	builds          *obs.Counter
	buildSeconds    *obs.Histogram
	buildQueueDepth *obs.Gauge
	buildQueueHigh  *obs.MaxGauge

	batchSolves     *obs.Counter
	batchSize       *obs.Histogram
	solveQueueDepth *obs.Gauge
	solveQueueHigh  *obs.MaxGauge

	inflight         *obs.Gauge
	rejectedOverload *obs.Counter
	deadlineExpired  *obs.Counter
	errors           *obs.Counter
}

var metrics atomic.Pointer[serveMetrics]

// disabled is the no-op instance: every field is a nil obs handle, and
// the obs types discard updates on nil receivers. Loading it instead of
// a nil pointer lets hot-path call sites skip per-site nil checks.
var disabled serveMetrics

func init() { metrics.Store(&disabled) }

// EnableMetrics registers the serving counters and histograms on r and
// turns instrumentation on. A nil r disables instrumentation again.
func EnableMetrics(r *obs.Registry) {
	if r == nil {
		metrics.Store(&disabled)
		return
	}
	d := obs.DurationBuckets()
	// Request latencies sit well under DurationBuckets' 100µs floor on
	// a warm cache, so the serving histograms get a finer bottom end:
	// 10µs up to 10s.
	lat := []float64{1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10}
	batch := []float64{1, 2, 4, 8, 16, 32, 64, 128}
	metrics.Store(&serveMetrics{
		predictRequests:  r.Counter("serve_predict_requests"),
		capacityRequests: r.Counter("serve_capacity_requests"),
		allocateRequests: r.Counter("serve_allocate_requests"),

		predictSeconds:  r.Histogram("serve_predict_seconds", lat...),
		capacitySeconds: r.Histogram("serve_capacity_seconds", lat...),
		allocateSeconds: r.Histogram("serve_allocate_seconds", lat...),

		cacheHits:   r.Counter("serve_cache_hits"),
		cacheMisses: r.Counter("serve_cache_misses"),
		cacheEvicts: r.Counter("serve_cache_evictions"),

		builds:          r.Counter("serve_builds"),
		buildSeconds:    r.Histogram("serve_build_seconds", d...),
		buildQueueDepth: r.Gauge("serve_build_queue_depth"),
		buildQueueHigh:  r.MaxGauge("serve_build_queue_high_water"),

		batchSolves:     r.Counter("serve_batch_solves"),
		batchSize:       r.Histogram("serve_batch_size", batch...),
		solveQueueDepth: r.Gauge("serve_solve_queue_depth"),
		solveQueueHigh:  r.MaxGauge("serve_solve_queue_high_water"),

		inflight:         r.Gauge("serve_inflight_requests"),
		rejectedOverload: r.Counter("serve_rejected_overload"),
		deadlineExpired:  r.Counter("serve_deadline_expired"),
		errors:           r.Counter("serve_errors"),
	})
}
