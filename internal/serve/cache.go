package serve

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"perfpred/internal/hist"
	"perfpred/internal/hybrid"
	"perfpred/internal/parallel"
	"perfpred/internal/regress"
	"perfpred/internal/rtdist"
	"perfpred/internal/sessioncache"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// modelKey identifies one cached predictor: an architecture under a
// buy mix. The mix is quantised to 0.1% so float jitter in request
// payloads cannot mint unbounded distinct keys.
type modelKey struct {
	arch        string
	buyPctTenth int // buy percentage × 10, i.e. 125 = 12.5%
}

func makeKey(arch string, buyPct float64) modelKey {
	return modelKey{arch: arch, buyPctTenth: int(buyPct*10 + 0.5)}
}

// buyFrac converts the quantised mix back to the fraction the builders
// consume.
func (k modelKey) buyFrac() float64 { return float64(k.buyPctTenth) / 1000 }

// modelEntry is one cached per-(architecture, mix) predictor: the
// hybrid-calibrated historical model, the Laplace scale its percentile
// predictions use, and the cold-build cost it took to make.
type modelEntry struct {
	sm *hist.ServerModel
	// laplaceB is the §7.1 post-saturation Laplace scale, either the
	// configured constant or calibrated from a fixed-seed simulator run
	// during the build.
	laplaceB float64
	// buildWall is the build's wall-clock cost (the §8.5 start-up
	// delay this entry amortises across warm predictions).
	buildWall time.Duration
	// evals counts layered-solver runs spent on the build.
	evals int
}

func (e *modelEntry) setBuildWall(d time.Duration) { e.buildWall = d }

// regressEntry is one cached regression-family predictor — the cheap
// tier: a few short seeded simulator runs instead of warm-started
// layered sweeps plus a calibration run.
type regressEntry struct {
	model     *regress.Model
	buildWall time.Duration
}

func (e *regressEntry) setBuildWall(d time.Duration) { e.buildWall = d }

// cacheEntry is what the generic cache needs from an entry: somewhere
// to record the cold build's wall-clock cost.
type cacheEntry interface {
	setBuildWall(time.Duration)
}

// modelCache is the stampede-proof per-(architecture, mix) model
// store, generic over the predictor tier it holds (hybrid modelEntry
// or regressEntry): a bounded sessioncache.LRU holds finished models,
// and a parallel.Memo singleflight collapses a thundering herd of cold
// requests for one key into exactly one build. Completed flights are
// immediately forgotten so the LRU is the single source of truth —
// after an eviction the next request misses and rebuilds, and during
// a rebuild Forget's done-only semantics guarantee no duplicate build
// can start.
//
// Builds are admission-controlled: at most workers builds run
// concurrently, at most queued more may wait for a slot, and anything
// beyond that is rejected with ErrOverloaded so a cold-key flood
// degrades to fast 429s instead of a convoy of queued solves.
type modelCache[E cacheEntry] struct {
	lru     *sessioncache.LRU[modelKey, E]
	flights parallel.Memo[modelKey, E]

	build func(modelKey) (E, error)

	sem     chan struct{}
	queued  atomic.Int64
	maxWait int64 // queued builds allowed beyond the worker slots
}

func newModelCache[E cacheEntry](capacity, workers, maxQueued int, build func(modelKey) (E, error)) *modelCache[E] {
	c := &modelCache[E]{
		lru:     sessioncache.NewLRU[modelKey, E](capacity),
		build:   build,
		sem:     make(chan struct{}, workers),
		maxWait: int64(maxQueued),
	}
	c.lru.OnEvict(func(modelKey, E) {
		metrics.Load().cacheEvicts.Inc()
	})
	return c
}

// get returns the entry for key, building it on a miss. cold reports
// whether this request had to wait on a build (shared or its own).
// The returned error is ErrOverloaded when the build queue is full and
// ctx.Err() when the caller's deadline expired while waiting.
func (c *modelCache[E]) get(ctx context.Context, key modelKey) (e E, cold bool, err error) {
	m := metrics.Load()
	if e, ok := c.lru.Get(key); ok {
		m.cacheHits.Inc()
		return e, false, nil
	}
	m.cacheMisses.Inc()
	e, err = c.flights.DoCtx(ctx, key, func() (E, error) {
		var zero E
		if err := c.acquireBuildSlot(ctx); err != nil {
			return zero, err
		}
		defer func() { <-c.sem }()
		start := time.Now()
		entry, err := c.build(key)
		if err != nil {
			return zero, err
		}
		wall := time.Since(start)
		entry.setBuildWall(wall)
		mm := metrics.Load()
		mm.builds.Inc()
		mm.buildSeconds.Observe(wall.Seconds())
		c.lru.Put(key, entry)
		return entry, nil
	})
	if err != nil {
		var zero E
		return zero, true, err
	}
	// The value now lives in the LRU; dropping the completed flight
	// makes eviction → rebuild work (Forget leaves in-progress flights
	// alone, so this is safe against concurrent rebuilds).
	c.flights.Forget(key)
	return e, true, nil
}

// acquireBuildSlot admits the flight leader to a build worker slot,
// rejecting immediately when the queue is full and abandoning the wait
// when the leader's own deadline expires.
func (c *modelCache[E]) acquireBuildSlot(ctx context.Context) error {
	m := metrics.Load()
	q := c.queued.Add(1)
	m.buildQueueDepth.Set(q)
	m.buildQueueHigh.Observe(q)
	defer func() { m.buildQueueDepth.Set(c.queued.Add(-1)) }()
	if q > int64(cap(c.sem))+c.maxWait {
		m.rejectedOverload.Inc()
		return ErrOverloaded
	}
	select {
	case c.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// buildEntry is the Service's cold path: generate the hybrid model for
// the key's (architecture, mix) from warm-started layered solves, then
// fix the percentile scale — either the configured constant or a
// calibration against a fixed-seed simulator run at a saturated
// population under the same mix, the §7.1 procedure the offline suite
// uses.
func (s *Service) buildEntry(key modelKey) (*modelEntry, error) {
	arch, ok := s.archs[key.arch]
	if !ok {
		return nil, &badRequestError{msg: "unknown architecture " + key.arch}
	}
	cfg := hybrid.Config{
		DB:                s.cfg.DB,
		Demands:           s.cfg.Demands,
		PointsPerEquation: s.cfg.PointsPerEquation,
		LQN:               s.cfg.LQN,
	}
	sm, evals, err := hybrid.BuildServerMix(cfg, arch, key.buyFrac())
	if err != nil {
		return nil, err
	}
	e := &modelEntry{sm: sm, laplaceB: s.cfg.LaplaceB, evals: evals}
	if e.laplaceB == 0 {
		b, err := s.calibrateScale(arch, key.buyFrac(), sm)
		if err != nil {
			return nil, err
		}
		e.laplaceB = b
	}
	return e, nil
}

// buildRegressEntry is the cheap tier's cold path: train a black-box
// regression model for the key's (architecture, mix) from a handful of
// short seeded simulator runs. No layered solves, no calibration run —
// the start-up cost the four-family comparison shows is a fraction of
// hybrid's, traded against polynomial rather than model-based
// accuracy. The training seed is fixed by configuration, so equal keys
// always serve bit-identical fits.
func (s *Service) buildRegressEntry(key modelKey) (*regressEntry, error) {
	arch, ok := s.archs[key.arch]
	if !ok {
		return nil, &badRequestError{msg: "unknown architecture " + key.arch}
	}
	m, err := regress.Train(regress.TrainConfig{
		Archs:         []workload.ServerArch{arch},
		BuyFracs:      []float64{key.buyFrac()},
		SamplesPerMix: s.cfg.RegressTrainSamples,
		Seed:          s.cfg.CalibrationSeed,
		Opt: trade.MeasureOptions{
			WarmUp:   s.cfg.RegressSimSeconds / 4,
			Duration: s.cfg.RegressSimSeconds,
		},
		Fit: regress.FitConfig{Degree: s.cfg.RegressDegree},
	})
	if err != nil {
		return nil, err
	}
	return &regressEntry{model: m}, nil
}

// calibrateScale runs the simulator at ~1.4× the model's saturation
// population under the key's mix and fits the Laplace scale to the
// measured response-time samples around their mean. The seed and
// window are fixed by configuration, so the same key always calibrates
// the same scale — served numbers stay reproducible.
func (s *Service) calibrateScale(arch workload.ServerArch, buyFrac float64, sm *hist.ServerModel) (float64, error) {
	n := int(1.4 * sm.SaturationClients())
	if n < 1 {
		n = 1
	}
	load := workload.TypicalWorkload(n)
	if buyFrac > 0 {
		load = workload.MixedWorkload(n, buyFrac)
	}
	res, err := trade.Run(trade.Config{
		Server:   arch,
		DB:       s.cfg.DB,
		Demands:  s.cfg.Demands,
		Load:     load,
		Seed:     s.cfg.CalibrationSeed,
		WarmUp:   s.cfg.CalibrationSimSeconds / 4,
		Duration: s.cfg.CalibrationSimSeconds,
	})
	if err != nil {
		return 0, err
	}
	// Merge per-class samples in sorted class order: CalibrateScale
	// sums deviations in sample order, and float addition is not
	// associative, so map-iteration order would perturb the last few
	// digits of b between otherwise-identical builds.
	names := make([]string, 0, len(res.PerClass))
	for name := range res.PerClass {
		names = append(names, name)
	}
	sort.Strings(names)
	var samples []float64
	for _, name := range names {
		samples = append(samples, res.PerClass[name].Samples...)
	}
	return rtdist.CalibrateScale(samples, res.MeanRT)
}
