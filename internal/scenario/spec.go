// Package scenario is the declarative workload-spec subsystem: it
// compiles spec files (stdlib-parsed JSON, or the Go builder API in
// builder.go) into the traffic generators the whole stack consumes.
//
// A spec declares client cohorts. Each cohort carries its own
// request mix, SLA class and think-time distribution (exponential,
// lognormal or deterministic), and one arrival process:
//
//   - closed: a fixed population of think-loop clients — the paper's
//     §3.1 regime, generalised beyond exponential think times;
//   - poisson: an open stream at a constant base rate (§8.1);
//   - mmpp: a Markov-modulated Poisson process with two or more
//     modulating states (rate + mean exponential dwell each, visited
//     cyclically) — bursty arrivals no steady-state model captures;
//   - trace: replay of a recorded CSV request stream.
//
// Open processes (poisson, mmpp) optionally modulate their rate by a
// temporal pattern: multi-period piecewise rates, a diurnal sinusoid,
// or a flash-sale spike with ramp/hold/decay phases. Patterns are
// multiplicative on the base rate, so one spec describes both the
// steady regime the paper's predictors assume and the transients they
// were never evaluated under.
//
// Compile resolves a validated Spec against the request-type demand
// table it will run under; the compiled form is read-only and shared,
// while per-run generator state (Gen, Pacer) is split per consumer
// with sim.SplitSeed-stable streams, so spec-driven runs are
// bit-identical at any shard count.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// Distribution names accepted by DistSpec.Dist.
const (
	DistExponential   = "exponential"
	DistLognormal     = "lognormal"
	DistDeterministic = "deterministic"
)

// Arrival-process names accepted by ArrivalSpec.Process.
const (
	ProcClosed  = "closed"
	ProcPoisson = "poisson"
	ProcMMPP    = "mmpp"
	ProcTrace   = "trace"
)

// Pattern kinds accepted by PatternSpec.Kind.
const (
	PatternPiecewise = "piecewise"
	PatternDiurnal   = "diurnal"
	PatternFlash     = "flash"
)

// Spec is one declarative workload scenario: a named set of client
// cohorts. The zero value is invalid; build specs with the builder
// API or parse them from JSON.
type Spec struct {
	// Name identifies the scenario in reports and bench snapshots.
	Name string `json:"name"`
	// Cohorts are the scenario's client cohorts, in declaration order
	// (the order predictors and routers see them in).
	Cohorts []CohortSpec `json:"cohorts"`
}

// CohortSpec is one client cohort: a request mix, an SLA class and an
// arrival process.
type CohortSpec struct {
	// Name is the cohort's service-class name (unique within a spec).
	Name string `json:"name"`
	// Mix maps request-type names to their traffic fractions (must sum
	// to 1). Trace cohorts may omit it: their mix is derived from the
	// recorded stream's composition.
	Mix map[string]float64 `json:"mix,omitempty"`
	// GoalRT is the SLA response-time goal in seconds (0 = none).
	GoalRT float64 `json:"goal_rt,omitempty"`
	// GoalPercentile is the fraction of requests that must meet GoalRT
	// for a percentile SLA (0 = the goal is on the mean).
	GoalPercentile float64 `json:"goal_percentile,omitempty"`
	// Think is the think-time distribution of a closed cohort's
	// clients; ignored (and rejected) for open processes.
	Think *DistSpec `json:"think,omitempty"`
	// Arrival selects and parameterises the arrival process.
	Arrival ArrivalSpec `json:"arrival"`
}

// DistSpec describes a positive-valued distribution.
type DistSpec struct {
	// Dist is one of exponential, lognormal, deterministic.
	Dist string `json:"dist"`
	// Mean is the distribution mean, seconds.
	Mean float64 `json:"mean"`
	// CV is the coefficient of variation (std dev / mean); required
	// for lognormal, rejected elsewhere (exponential has CV 1 and
	// deterministic 0 by construction).
	CV float64 `json:"cv,omitempty"`
}

// ArrivalSpec describes one cohort's arrival process.
type ArrivalSpec struct {
	// Process is one of closed, poisson, mmpp, trace.
	Process string `json:"process"`
	// Clients is the closed population size (closed only).
	Clients int `json:"clients,omitempty"`
	// Rate is the Poisson base rate, requests/second (poisson only).
	Rate float64 `json:"rate,omitempty"`
	// States are the MMPP modulating states, visited cyclically in
	// order (mmpp only; at least 2).
	States []MMPPStateSpec `json:"states,omitempty"`
	// Trace is the CSV trace path, resolved relative to the spec file
	// (trace only). Lines are "time_seconds,request_type"; a header
	// line and #-comments are skipped.
	Trace string `json:"trace,omitempty"`
	// Loop replays the trace cyclically instead of once (trace only).
	Loop bool `json:"loop,omitempty"`
	// CycleSeconds is the loop period of a looping trace; 0 derives it
	// from the last recorded arrival plus the mean recorded gap.
	CycleSeconds float64 `json:"cycle_seconds,omitempty"`
	// Pattern modulates an open rate process (poisson, mmpp) over
	// time; nil means the constant base rate.
	Pattern *PatternSpec `json:"pattern,omitempty"`
}

// MMPPStateSpec is one MMPP modulating state.
type MMPPStateSpec struct {
	// Rate is the state's Poisson arrival rate, requests/second (may
	// be 0 for silent states; at least one state must be positive).
	Rate float64 `json:"rate"`
	// MeanDwell is the state's mean exponential dwell time, seconds.
	MeanDwell float64 `json:"mean_dwell"`
}

// PatternSpec is a temporal rate-multiplier curve. Scale 1 is the
// base rate.
type PatternSpec struct {
	// Kind is one of piecewise, diurnal, flash.
	Kind string `json:"kind"`

	// Periods are the piecewise pattern's segments in order; each
	// holds its scale for its duration. After the last segment a
	// non-cycling pattern reverts to scale 1.
	Periods []PeriodSpec `json:"periods,omitempty"`
	// Cycle repeats the piecewise segments forever.
	Cycle bool `json:"cycle,omitempty"`

	// Period is the diurnal cycle length, seconds.
	Period float64 `json:"period,omitempty"`
	// Amplitude is the diurnal relative swing in [0,1]: scale(t) = 1 +
	// Amplitude·sin(2π(t+Phase)/Period).
	Amplitude float64 `json:"amplitude,omitempty"`
	// Phase shifts the diurnal curve, seconds.
	Phase float64 `json:"phase,omitempty"`

	// Start is the flash-sale onset, seconds from run start.
	Start float64 `json:"start,omitempty"`
	// Ramp is the linear climb 1 → Peak, seconds.
	Ramp float64 `json:"ramp,omitempty"`
	// Hold keeps the scale at Peak, seconds.
	Hold float64 `json:"hold,omitempty"`
	// Decay is the linear fall Peak → 1, seconds.
	Decay float64 `json:"decay,omitempty"`
	// Peak is the spike's scale multiplier (≥ 1).
	Peak float64 `json:"peak,omitempty"`
}

// PeriodSpec is one piecewise-pattern segment.
type PeriodSpec struct {
	// Duration is the segment length, seconds.
	Duration float64 `json:"duration"`
	// Scale is the rate multiplier held across the segment (≥ 0).
	Scale float64 `json:"scale"`
}

// Parse decodes a JSON spec. Unknown fields are rejected, so typos in
// spec files fail loudly instead of silently configuring nothing.
// Parse does not validate; Validate and Compile do.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	// Reject trailing garbage after the spec object.
	if dec.More() {
		return nil, errors.New("scenario: trailing data after spec object")
	}
	return &s, nil
}

// JSON re-emits the spec as indented JSON. Parse(s.JSON()) round-trips
// to an identical Spec, which the round-trip tests pin.
func (s *Spec) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: emitting spec: %w", err)
	}
	return append(out, '\n'), nil
}

// Validate reports the first structural problem with the spec. It
// checks everything that does not need the demand table or the trace
// files; Compile re-runs it and adds those.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return errors.New("scenario: spec needs a name")
	}
	if len(s.Cohorts) == 0 {
		return errors.New("scenario: spec needs at least one cohort")
	}
	seen := make(map[string]bool, len(s.Cohorts))
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		if err := c.validate(); err != nil {
			return err
		}
		if seen[c.Name] {
			return fmt.Errorf("scenario: duplicate cohort name %q", c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

func (c *CohortSpec) validate() error {
	if c.Name == "" {
		return errors.New("scenario: cohort needs a name")
	}
	if c.GoalRT < 0 {
		return fmt.Errorf("scenario: cohort %q has negative goal_rt", c.Name)
	}
	if c.GoalPercentile != 0 && (c.GoalPercentile < 0 || c.GoalPercentile >= 1) {
		return fmt.Errorf("scenario: cohort %q goal_percentile %v outside [0,1)", c.Name, c.GoalPercentile)
	}
	a := &c.Arrival
	if a.Process != ProcTrace {
		if err := validateMix(c.Name, c.Mix); err != nil {
			return err
		}
	} else if len(c.Mix) != 0 {
		return fmt.Errorf("scenario: trace cohort %q must not declare a mix (it is derived from the trace)", c.Name)
	}
	switch a.Process {
	case ProcClosed:
		if a.Clients <= 0 {
			return fmt.Errorf("scenario: closed cohort %q needs positive clients", c.Name)
		}
		if c.Think == nil {
			return fmt.Errorf("scenario: closed cohort %q needs a think distribution", c.Name)
		}
		if a.Rate != 0 || len(a.States) != 0 || a.Trace != "" {
			return fmt.Errorf("scenario: closed cohort %q must not set rate/states/trace", c.Name)
		}
		if a.Pattern != nil {
			return fmt.Errorf("scenario: closed cohort %q cannot carry a temporal pattern (patterns modulate open rates)", c.Name)
		}
	case ProcPoisson:
		if a.Rate <= 0 {
			return fmt.Errorf("scenario: poisson cohort %q needs a positive rate", c.Name)
		}
		if a.Clients != 0 || len(a.States) != 0 || a.Trace != "" {
			return fmt.Errorf("scenario: poisson cohort %q must not set clients/states/trace", c.Name)
		}
	case ProcMMPP:
		if len(a.States) < 2 {
			return fmt.Errorf("scenario: mmpp cohort %q needs at least 2 modulating states", c.Name)
		}
		maxRate := 0.0
		for i, st := range a.States {
			if st.Rate < 0 {
				return fmt.Errorf("scenario: mmpp cohort %q state %d has negative rate", c.Name, i)
			}
			if st.MeanDwell <= 0 {
				return fmt.Errorf("scenario: mmpp cohort %q state %d needs positive mean_dwell", c.Name, i)
			}
			if st.Rate > maxRate {
				maxRate = st.Rate
			}
		}
		if maxRate == 0 {
			return fmt.Errorf("scenario: mmpp cohort %q needs at least one state with positive rate", c.Name)
		}
		if a.Clients != 0 || a.Rate != 0 || a.Trace != "" {
			return fmt.Errorf("scenario: mmpp cohort %q must not set clients/rate/trace", c.Name)
		}
	case ProcTrace:
		if a.Trace == "" {
			return fmt.Errorf("scenario: trace cohort %q needs a trace path", c.Name)
		}
		if a.Clients != 0 || a.Rate != 0 || len(a.States) != 0 {
			return fmt.Errorf("scenario: trace cohort %q must not set clients/rate/states", c.Name)
		}
		if a.Pattern != nil {
			return fmt.Errorf("scenario: trace cohort %q cannot carry a temporal pattern (the trace is the pattern)", c.Name)
		}
		if a.CycleSeconds < 0 {
			return fmt.Errorf("scenario: trace cohort %q has negative cycle_seconds", c.Name)
		}
		if a.CycleSeconds > 0 && !a.Loop {
			return fmt.Errorf("scenario: trace cohort %q sets cycle_seconds without loop", c.Name)
		}
	default:
		return fmt.Errorf("scenario: cohort %q has unknown arrival process %q", c.Name, a.Process)
	}
	if c.Think != nil {
		if a.Process != ProcClosed {
			return fmt.Errorf("scenario: open cohort %q must not declare a think distribution", c.Name)
		}
		if err := c.Think.validate(c.Name); err != nil {
			return err
		}
	}
	if a.Pattern != nil {
		if err := a.Pattern.validate(c.Name); err != nil {
			return err
		}
	}
	return nil
}

func validateMix(cohort string, mix map[string]float64) error {
	if len(mix) == 0 {
		return fmt.Errorf("scenario: cohort %q needs a non-empty mix", cohort)
	}
	var sum float64
	for rt, f := range mix {
		if rt == "" {
			return fmt.Errorf("scenario: cohort %q has an empty request-type name in its mix", cohort)
		}
		if f < 0 {
			return fmt.Errorf("scenario: cohort %q has negative mix fraction %v for %q", cohort, f, rt)
		}
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("scenario: cohort %q mix fractions sum to %v, want 1", cohort, sum)
	}
	return nil
}

func (d *DistSpec) validate(cohort string) error {
	switch d.Dist {
	case DistExponential, DistDeterministic:
		if d.CV != 0 {
			return fmt.Errorf("scenario: cohort %q: %s distribution must not set cv", cohort, d.Dist)
		}
	case DistLognormal:
		if d.CV <= 0 {
			return fmt.Errorf("scenario: cohort %q: lognormal distribution needs positive cv", cohort)
		}
	default:
		return fmt.Errorf("scenario: cohort %q has unknown distribution %q", cohort, d.Dist)
	}
	if d.Mean <= 0 {
		return fmt.Errorf("scenario: cohort %q: %s distribution needs positive mean", cohort, d.Dist)
	}
	return nil
}

func (p *PatternSpec) validate(cohort string) error {
	switch p.Kind {
	case PatternPiecewise:
		if len(p.Periods) == 0 {
			return fmt.Errorf("scenario: cohort %q piecewise pattern needs at least one period", cohort)
		}
		anyPositive := false
		for i, per := range p.Periods {
			if per.Duration <= 0 {
				return fmt.Errorf("scenario: cohort %q piecewise period %d needs positive duration", cohort, i)
			}
			if per.Scale < 0 {
				return fmt.Errorf("scenario: cohort %q piecewise period %d has negative scale", cohort, i)
			}
			if per.Scale > 0 {
				anyPositive = true
			}
		}
		if p.Cycle && !anyPositive {
			return fmt.Errorf("scenario: cohort %q cycling piecewise pattern needs at least one positive scale", cohort)
		}
		if p.Period != 0 || p.Amplitude != 0 || p.Phase != 0 || p.Start != 0 || p.Ramp != 0 || p.Hold != 0 || p.Decay != 0 || p.Peak != 0 {
			return fmt.Errorf("scenario: cohort %q piecewise pattern must only set periods/cycle", cohort)
		}
	case PatternDiurnal:
		if p.Period <= 0 {
			return fmt.Errorf("scenario: cohort %q diurnal pattern needs positive period", cohort)
		}
		if p.Amplitude < 0 || p.Amplitude > 1 {
			return fmt.Errorf("scenario: cohort %q diurnal amplitude %v outside [0,1]", cohort, p.Amplitude)
		}
		if len(p.Periods) != 0 || p.Cycle || p.Start != 0 || p.Ramp != 0 || p.Hold != 0 || p.Decay != 0 || p.Peak != 0 {
			return fmt.Errorf("scenario: cohort %q diurnal pattern must only set period/amplitude/phase", cohort)
		}
	case PatternFlash:
		if p.Peak < 1 {
			return fmt.Errorf("scenario: cohort %q flash pattern needs peak ≥ 1", cohort)
		}
		if p.Start < 0 || p.Ramp < 0 || p.Hold < 0 || p.Decay < 0 {
			return fmt.Errorf("scenario: cohort %q flash pattern needs non-negative start/ramp/hold/decay", cohort)
		}
		if p.Ramp+p.Hold+p.Decay <= 0 {
			return fmt.Errorf("scenario: cohort %q flash pattern needs a positive ramp+hold+decay", cohort)
		}
		if len(p.Periods) != 0 || p.Cycle || p.Period != 0 || p.Amplitude != 0 || p.Phase != 0 {
			return fmt.Errorf("scenario: cohort %q flash pattern must only set start/ramp/hold/decay/peak", cohort)
		}
	default:
		return fmt.Errorf("scenario: cohort %q has unknown pattern kind %q", cohort, p.Kind)
	}
	return nil
}
