package scenario

import (
	"fmt"
	"math"

	"perfpred/internal/sim"
	"perfpred/internal/stats"
)

// BurstReport is one cohort's generated-vs-declared traffic check:
// does the arrival stream a Gen produces actually carry the rate and
// the burstiness its spec declares?
type BurstReport struct {
	// Cohort is the cohort name; Kind its arrival process.
	Cohort string `json:"cohort"`
	Kind   string `json:"kind"`
	// Arrivals generated over the check horizon.
	Arrivals int `json:"arrivals"`
	// MeanRate is the observed rate; WantRate the spec's expected mean
	// rate over the horizon (pattern-adjusted); RateErr their relative
	// error; RateTol the error the check allows — at least 5%, widened
	// to a four-sigma sampling bound for over-dispersed streams.
	MeanRate float64 `json:"mean_rate"`
	WantRate float64 `json:"want_rate"`
	RateErr  float64 `json:"rate_err"`
	RateTol  float64 `json:"rate_tol"`
	// CV2 is the observed squared coefficient of variation of the
	// interarrival gaps; IDC the index of dispersion of 10-second
	// counts. Poisson ⇒ both ≈ 1; MMPP ⇒ both > 1.
	CV2 float64 `json:"cv2"`
	IDC float64 `json:"idc"`
	// OK reports whether the stream matches its declaration; Reason
	// explains the first failure.
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}

// SelfCheck generates each open cohort's arrival stream over the
// given horizon (seconds) and verifies it against the spec: observed
// mean rate within 5% of the declared (pattern-adjusted) mean, plain
// Poisson cohorts index-of-dispersion-consistent with Poisson, and
// MMPP cohorts strictly over-dispersed. It is a diagnostic — it
// allocates freely and runs outside any simulation.
func SelfCheck(c *Compiled, seed int64, horizon float64) []BurstReport {
	var out []BurstReport
	for i, co := range c.Cohorts {
		if !co.Open() {
			continue
		}
		arr := sim.NewStream(sim.SplitSeed(seed, uint64(3*i)))
		state := sim.NewStream(sim.SplitSeed(seed, uint64(3*i+1)))
		g := NewGen(co, arr, state)
		var times []float64
		for {
			t, _, ok := g.Next()
			if !ok || t > horizon {
				break
			}
			times = append(times, t)
		}
		out = append(out, checkCohort(co, times, horizon))
	}
	return out
}

func checkCohort(co *Cohort, times []float64, horizon float64) BurstReport {
	r := BurstReport{Cohort: co.Class.Name, Kind: co.Kind, Arrivals: len(times), OK: true}
	r.WantRate = co.MeanRate * co.Pattern.MeanScale(horizon)
	if co.Kind == ProcTrace && !co.Trace.Loop && co.Trace.Span() < horizon {
		// A finite trace stops early; rate it over its own span.
		r.WantRate = co.MeanRate * co.Trace.Span() / horizon
	}
	r.MeanRate = float64(len(times)) / horizon
	if r.WantRate > 0 {
		r.RateErr = math.Abs(r.MeanRate-r.WantRate) / r.WantRate
	}
	r.CV2 = stats.InterarrivalCV2(times)
	r.IDC = stats.IndexOfDispersion(times, 10)

	fail := func(format string, args ...any) {
		if r.OK {
			r.OK = false
			r.Reason = fmt.Sprintf(format, args...)
		}
	}
	if len(times) < 100 {
		fail("only %d arrivals over %.0fs — horizon too short for a check", len(times), horizon)
		return r
	}
	// A bursty stream's count over any finite horizon is noisy:
	// Var(N) ≈ IDC·E[N], so the rate estimate has relative sigma
	// sqrt(IDC/E[N]). A rigid percentage would flag correct MMPP
	// generators on any affordable horizon; allow four sigmas, with
	// 5% as the floor for well-behaved streams.
	r.RateTol = 0.05
	if expected := r.WantRate * horizon; expected > 0 && r.IDC > 1 {
		if sigma := math.Sqrt(r.IDC / expected); 4*sigma > r.RateTol {
			r.RateTol = 4 * sigma
		}
	}
	if r.RateErr > r.RateTol {
		fail("mean rate %.3f/s is %.1f%% off the declared %.3f/s (tolerance %.1f%%)",
			r.MeanRate, 100*r.RateErr, r.WantRate, 100*r.RateTol)
	}
	switch {
	case co.Kind == ProcPoisson && co.Pattern == nil:
		if r.CV2 < 0.85 || r.CV2 > 1.15 {
			fail("Poisson cohort has interarrival CV² %.3f, want ≈ 1", r.CV2)
		}
		if r.IDC < 0.7 || r.IDC > 1.4 {
			fail("Poisson cohort has count IDC %.3f, want ≈ 1", r.IDC)
		}
	case co.Kind == ProcMMPP:
		if r.CV2 < 1.1 {
			fail("MMPP cohort has interarrival CV² %.3f — not over-dispersed", r.CV2)
		}
		if r.IDC < 1.2 {
			fail("MMPP cohort has count IDC %.3f — modulation not visible in counts", r.IDC)
		}
	}
	return r
}
