package scenario

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"perfpred/internal/sim"
	"perfpred/internal/stats"
	"perfpred/internal/workload"
)

func TestPatternScales(t *testing.T) {
	flash := compilePattern(&PatternSpec{Kind: PatternFlash, Start: 100, Ramp: 10, Hold: 20, Decay: 40, Peak: 5})
	for _, tc := range []struct{ t, want float64 }{
		{0, 1}, {99, 1}, {105, 3}, {110, 5}, {125, 5}, {130, 5}, {150, 3}, {170, 1}, {1000, 1},
	} {
		if got := flash.Scale(tc.t); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("flash Scale(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	if flash.MaxScale() != 5 {
		t.Errorf("flash MaxScale = %v, want 5", flash.MaxScale())
	}

	di := compilePattern(&PatternSpec{Kind: PatternDiurnal, Period: 100, Amplitude: 0.4})
	if got := di.Scale(25); math.Abs(got-1.4) > 1e-9 {
		t.Errorf("diurnal peak Scale = %v, want 1.4", got)
	}
	if got := di.Scale(75); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("diurnal trough Scale = %v, want 0.6", got)
	}
	if got := di.MeanScale(1000); math.Abs(got-1) > 1e-9 {
		t.Errorf("diurnal whole-cycle MeanScale = %v, want 1", got)
	}
	if got := di.MeanScale(25); got < 1.2 {
		t.Errorf("diurnal quarter-cycle MeanScale = %v, want > 1.2 (rising half)", got)
	}

	pw := compilePattern(&PatternSpec{Kind: PatternPiecewise, Cycle: true,
		Periods: []PeriodSpec{{Duration: 10, Scale: 2}, {Duration: 30, Scale: 0.5}}})
	if got := pw.Scale(5); got != 2 {
		t.Errorf("piecewise Scale(5) = %v, want 2", got)
	}
	if got := pw.Scale(45); got != 2 { // wrapped into second cycle
		t.Errorf("piecewise Scale(45) = %v, want 2", got)
	}
	want := (10*2 + 30*0.5) / 40
	if got := pw.MeanScale(4000); math.Abs(got-want) > 1e-9 {
		t.Errorf("piecewise MeanScale = %v, want %v", got, want)
	}

	once := compilePattern(&PatternSpec{Kind: PatternPiecewise,
		Periods: []PeriodSpec{{Duration: 10, Scale: 3}}})
	if got := once.Scale(11); got != 1 {
		t.Errorf("finished schedule Scale = %v, want 1 (base-rate tail)", got)
	}
	if got := once.MaxScale(); got != 3 {
		t.Errorf("finished schedule MaxScale = %v, want 3", got)
	}

	var nilPat *Pattern
	if nilPat.Scale(42) != 1 || nilPat.MaxScale() != 1 || nilPat.MeanScale(10) != 1 {
		t.Error("nil pattern must be the constant 1")
	}
}

// Regression: flash MeanScale previously approximated a horizon that
// cuts mid-ramp or mid-decay by crediting half the *full* triangle
// instead of integrating the clipped slope. The trapezoid integral is
// closed-form; pin it.
func TestFlashMeanScaleExact(t *testing.T) {
	flash := compilePattern(&PatternSpec{Kind: PatternFlash, Start: 100, Ramp: 10, Hold: 20, Decay: 40, Peak: 5})

	// Horizon at the ramp midpoint: the clipped ramp triangle has area
	// (peak−1)·ramp/8 = 4·10/8 = 5 above the base line, so
	// MeanScale(105) = (105 + 5)/105. The old linear split credited
	// (peak−1)/2 · 5 = 10 instead.
	if got, want := flash.MeanScale(105), 110.0/105; math.Abs(got-want) > 1e-12 {
		t.Errorf("mid-ramp MeanScale = %v, want %v", got, want)
	}

	// Horizon 15 s into the decay (s2 = 130): extra = full ramp 20 +
	// full hold 80 + 4·(15 − 15²/80) = 148.75.
	if got, want := flash.MeanScale(145), (145+148.75)/145; math.Abs(got-want) > 1e-12 {
		t.Errorf("mid-decay MeanScale = %v, want %v", got, want)
	}

	// Horizons that cover phases fully or not at all must match the old
	// half-triangle arithmetic exactly — the committed scenario goldens
	// depend on these.
	if got, want := flash.MeanScale(100), 1.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("pre-flash MeanScale = %v, want %v", got, want)
	}
	if got, want := flash.MeanScale(200), (200+20+80+80)/200.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("whole-flash MeanScale = %v, want %v", got, want)
	}

	// Numerical cross-check on an awkward horizon: midpoint Riemann sum
	// of Scale must agree with the closed form.
	for _, horizon := range []float64{103.7, 131.2, 152.9, 169.99} {
		const steps = 2_000_000
		dt := horizon / steps
		var area float64
		for i := 0; i < steps; i++ {
			area += flash.Scale((float64(i) + 0.5) * dt)
		}
		got := flash.MeanScale(horizon)
		if want := area / steps; math.Abs(got-want) > 1e-6 {
			t.Errorf("MeanScale(%v) = %v, Riemann sum %v", horizon, got, want)
		}
	}

	// Spec validation allows a zero ramp or decay (instant rise/drop);
	// the trapezoid terms must not divide by zero.
	step := compilePattern(&PatternSpec{Kind: PatternFlash, Start: 10, Ramp: 0, Hold: 5, Decay: 5, Peak: 3})
	if got, want := step.MeanScale(12), (12+2*2.0)/12; math.Abs(got-want) > 1e-12 {
		t.Errorf("zero-ramp MeanScale = %v, want %v", got, want)
	}
	drop := compilePattern(&PatternSpec{Kind: PatternFlash, Start: 10, Ramp: 4, Hold: 6, Decay: 0, Peak: 3})
	if got, want := drop.MeanScale(30), (30+2*4/2.0+2*6)/30; math.Abs(got-want) > 1e-12 {
		t.Errorf("zero-decay MeanScale = %v, want %v", got, want)
	}
}

func TestDistSampling(t *testing.T) {
	rng := sim.NewStream(7)
	for _, tc := range []struct {
		spec   DistSpec
		wantCV float64
	}{
		{Exponential(5), 1},
		{Lognormal(5, 1.5), 1.5},
		{Deterministic(5), 0},
	} {
		d := compileDist(&tc.spec)
		var acc stats.Accumulator
		for i := 0; i < 200000; i++ {
			v := d.Sample(rng)
			if v < 0 {
				t.Fatalf("%s draw %v < 0", tc.spec.Dist, v)
			}
			acc.Add(v)
		}
		if m := acc.Mean(); math.Abs(m-5)/5 > 0.03 {
			t.Errorf("%s mean %v, want ≈ 5", tc.spec.Dist, m)
		}
		cv := acc.StdDev() / acc.Mean()
		if math.Abs(cv-tc.wantCV) > 0.1 {
			t.Errorf("%s CV %v, want ≈ %v", tc.spec.Dist, cv, tc.wantCV)
		}
	}
}

func genTimes(t *testing.T, c *Cohort, seed int64, horizon float64) []float64 {
	t.Helper()
	g := NewGen(c, sim.NewStream(sim.SplitSeed(seed, 0)), sim.NewStream(sim.SplitSeed(seed, 1)))
	var times []float64
	for {
		at, _, ok := g.Next()
		if !ok || at > horizon {
			break
		}
		times = append(times, at)
	}
	return times
}

func TestPoissonGenMatchesRate(t *testing.T) {
	c, err := New("p").AddPoisson("api", 25, browseMix()).Compile("")
	if err != nil {
		t.Fatal(err)
	}
	times := genTimes(t, c.Cohorts[0], 99, 2000)
	rate := float64(len(times)) / 2000
	if math.Abs(rate-25)/25 > 0.05 {
		t.Fatalf("observed rate %v, want ≈ 25", rate)
	}
	if cv2 := stats.InterarrivalCV2(times); cv2 < 0.9 || cv2 > 1.1 {
		t.Fatalf("Poisson CV² %v, want ≈ 1", cv2)
	}
}

func TestMMPPGenOverdispersed(t *testing.T) {
	c, err := New("m").AddMMPP("burst",
		[]MMPPStateSpec{{Rate: 2, MeanDwell: 30}, {Rate: 40, MeanDwell: 6}}, browseMix()).Compile("")
	if err != nil {
		t.Fatal(err)
	}
	co := c.Cohorts[0]
	times := genTimes(t, co, 5, 20000)
	rate := float64(len(times)) / 20000
	if math.Abs(rate-co.MeanRate)/co.MeanRate > 0.05 {
		t.Fatalf("observed rate %v, want ≈ stationary %v", rate, co.MeanRate)
	}
	if cv2 := stats.InterarrivalCV2(times); cv2 < 1.5 {
		t.Fatalf("MMPP CV² %v, want ≫ 1", cv2)
	}
	if idc := stats.IndexOfDispersion(times, 10); idc < 2 {
		t.Fatalf("MMPP IDC %v, want ≫ 1", idc)
	}
}

func TestFlashPatternShapesArrivals(t *testing.T) {
	c, err := New("f").AddPoisson("shop", 20, browseMix()).
		Pattern(FlashSale(300, 30, 120, 60, 4)).Compile("")
	if err != nil {
		t.Fatal(err)
	}
	times := genTimes(t, c.Cohorts[0], 3, 600)
	countIn := func(lo, hi float64) float64 {
		n := 0
		for _, at := range times {
			if at >= lo && at < hi {
				n++
			}
		}
		return float64(n) / (hi - lo)
	}
	base := countIn(0, 300)
	peak := countIn(330, 450)
	after := countIn(510, 600)
	if math.Abs(base-20)/20 > 0.15 {
		t.Fatalf("pre-flash rate %v, want ≈ 20", base)
	}
	if math.Abs(peak-80)/80 > 0.15 {
		t.Fatalf("flash-hold rate %v, want ≈ 80", peak)
	}
	if math.Abs(after-20)/20 > 0.3 {
		t.Fatalf("post-flash rate %v, want ≈ 20", after)
	}
}

func TestGenDeterministicAcrossSplit(t *testing.T) {
	c, err := New("d").AddMMPP("burst",
		[]MMPPStateSpec{{Rate: 5, MeanDwell: 10}, {Rate: 50, MeanDwell: 2}}, browseMix()).Compile("")
	if err != nil {
		t.Fatal(err)
	}
	a := genTimes(t, c.Cohorts[0], 17, 500)
	b := genTimes(t, c.Cohorts[0], 17, 500)
	if len(a) != len(b) {
		t.Fatalf("replays diverge in count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at arrival %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func writeTrace(t *testing.T, lines string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTraceReplay(t *testing.T) {
	path := writeTrace(t, "time,type\n0.5,browse\n1.0,buy\n2.5,browse\n# comment\n4.0,browse\n")
	tr, err := LoadTrace(path, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(tr.Events))
	}
	mix := tr.Mix()
	if mix[workload.Browse] != 0.75 || mix[workload.Buy] != 0.25 {
		t.Fatalf("trace mix %v, want browse 0.75 / buy 0.25", mix)
	}

	co := &Cohort{Kind: ProcTrace, Trace: tr}
	g := NewGen(co, sim.NewStream(1), sim.NewStream(2))
	var got []TraceEvent
	for {
		at, rt, ok := g.Next()
		if !ok {
			break
		}
		got = append(got, TraceEvent{T: at, Type: rt})
	}
	if len(got) != 4 || got[0] != (TraceEvent{0.5, workload.Browse}) || got[3] != (TraceEvent{4.0, workload.Browse}) {
		t.Fatalf("replay events %v", got)
	}
}

func TestTraceLoopKeepsRate(t *testing.T) {
	path := writeTrace(t, "0.0,browse\n1.0,browse\n2.0,browse\n3.0,browse\n")
	tr, err := LoadTrace(path, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle = last arrival (3) + mean gap (1) = 4; rate 1/s.
	if tr.Cycle != 4 {
		t.Fatalf("derived cycle %v, want 4", tr.Cycle)
	}
	co := &Cohort{Kind: ProcTrace, Trace: tr}
	g := NewGen(co, sim.NewStream(1), sim.NewStream(2))
	var last float64
	n := 0
	for n < 1000 {
		at, _, ok := g.Next()
		if !ok {
			t.Fatal("looping trace must never exhaust")
		}
		if at < last {
			t.Fatalf("looped replay went backwards: %v after %v", at, last)
		}
		last = at
		n++
	}
	rate := float64(n) / last
	if math.Abs(rate-1) > 0.05 {
		t.Fatalf("looped rate %v, want ≈ 1", rate)
	}
}

func TestTraceErrors(t *testing.T) {
	if _, err := LoadTrace(writeTrace(t, "1.0,browse\n0.5,buy\n"), false, 0); err == nil {
		t.Fatal("out-of-order trace accepted")
	}
	if _, err := LoadTrace(writeTrace(t, "# nothing\n"), false, 0); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := LoadTrace(writeTrace(t, "abc\n"), false, 0); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := LoadTrace(writeTrace(t, "1.0,\n"), false, 0); err == nil {
		t.Fatal("empty type accepted")
	}
	if _, err := LoadTrace(writeTrace(t, "0,browse\n5,browse\n"), true, 3); err == nil {
		t.Fatal("cycle shorter than trace accepted")
	}
}

func TestPacerMergesCohorts(t *testing.T) {
	c, err := New("mix").
		AddPoisson("a", 10, browseMix()).
		AddPoisson("b", 5, twoMix()).
		Compile("")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPacer(c, 23)
	var last float64
	counts := map[int]int{}
	types := map[workload.RequestType]int{}
	for i := 0; i < 6000; i++ {
		a, ok := p.Next()
		if !ok {
			t.Fatal("pacer exhausted on infinite cohorts")
		}
		if a.T < last {
			t.Fatalf("pacer went backwards at %d: %v after %v", i, a.T, last)
		}
		last = a.T
		counts[a.Cohort]++
		types[a.Type]++
	}
	frac := float64(counts[0]) / 6000
	if frac < 0.6 || frac > 0.72 {
		t.Fatalf("cohort 0 share %v, want ≈ 2/3", frac)
	}
	if types[workload.Buy] == 0 || types[workload.Browse] == 0 {
		t.Fatalf("pacer never sampled both types: %v", types)
	}
}

func TestSelfCheckVerdicts(t *testing.T) {
	c, err := New("sc").
		AddPoisson("steady", 30, browseMix()).
		AddMMPP("burst", []MMPPStateSpec{{Rate: 2, MeanDwell: 30}, {Rate: 40, MeanDwell: 6}}, browseMix()).
		AddClosed("shoppers", 10, Exponential(7), browseMix()).
		Compile("")
	if err != nil {
		t.Fatal(err)
	}
	reports := SelfCheck(c, 41, 5000)
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2 (closed cohorts skipped)", len(reports))
	}
	for _, r := range reports {
		if !r.OK {
			t.Errorf("cohort %s failed self-check: %s (rate %v want %v, CV² %v, IDC %v)",
				r.Cohort, r.Reason, r.MeanRate, r.WantRate, r.CV2, r.IDC)
		}
	}
	if reports[1].CV2 <= reports[0].CV2 {
		t.Errorf("MMPP CV² %v not above Poisson CV² %v", reports[1].CV2, reports[0].CV2)
	}
}
