package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func browseMix() map[string]float64 { return map[string]float64{"browse": 1} }

func twoMix() map[string]float64 { return map[string]float64{"browse": 0.75, "buy": 0.25} }

func validSpec() *Spec {
	return New("roundtrip").
		AddClosed("shoppers", 400, Lognormal(7, 1.5), twoMix()).Goal(2).
		AddPoisson("api", 40, browseMix()).Pattern(Diurnal(3600, 0.5, 0)).
		AddMMPP("burst", []MMPPStateSpec{{Rate: 2, MeanDwell: 30}, {Rate: 40, MeanDwell: 5}}, browseMix()).
		Spec()
}

func TestSpecRoundTrip(t *testing.T) {
	s := validSpec()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	out, err := s.JSON()
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	back, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip changed the spec:\nbefore: %+v\nafter:  %+v", s, back)
	}
	// Emitting the re-parsed spec must be byte-stable.
	out2, err := back.JSON()
	if err != nil {
		t.Fatalf("re-emit: %v", err)
	}
	if string(out) != string(out2) {
		t.Fatalf("re-emit not byte-identical:\n%s\nvs\n%s", out, out2)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"name":"x","cohorts":[],"surprise":1}`))
	if err == nil || !strings.Contains(err.Error(), "surprise") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
}

func TestParseRejectsTrailingData(t *testing.T) {
	_, err := Parse([]byte(`{"name":"x","cohorts":[]} {"again":true}`))
	if err == nil {
		t.Fatal("trailing data not rejected")
	}
}

func TestValidateErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no name", func(s *Spec) { s.Name = "" }, "needs a name"},
		{"no cohorts", func(s *Spec) { s.Cohorts = nil }, "at least one cohort"},
		{"dup cohort", func(s *Spec) { s.Cohorts[1].Name = "shoppers" }, "duplicate cohort"},
		{"bad mix sum", func(s *Spec) { s.Cohorts[0].Mix = map[string]float64{"browse": 0.5} }, "sum to"},
		{"negative mix", func(s *Spec) { s.Cohorts[0].Mix = map[string]float64{"browse": 1.4, "buy": -0.4} }, "negative mix fraction"},
		{"closed no clients", func(s *Spec) { s.Cohorts[0].Arrival.Clients = 0 }, "positive clients"},
		{"closed no think", func(s *Spec) { s.Cohorts[0].Think = nil }, "think distribution"},
		{"closed with pattern", func(s *Spec) { s.Cohorts[0].Arrival.Pattern = &PatternSpec{Kind: PatternDiurnal, Period: 60} }, "cannot carry a temporal pattern"},
		{"open with think", func(s *Spec) { th := Exponential(7); s.Cohorts[1].Think = &th }, "must not declare a think"},
		{"poisson no rate", func(s *Spec) { s.Cohorts[1].Arrival.Rate = 0 }, "positive rate"},
		{"mmpp one state", func(s *Spec) { s.Cohorts[2].Arrival.States = s.Cohorts[2].Arrival.States[:1] }, "at least 2"},
		{"mmpp all silent", func(s *Spec) {
			s.Cohorts[2].Arrival.States = []MMPPStateSpec{{Rate: 0, MeanDwell: 1}, {Rate: 0, MeanDwell: 2}}
		}, "positive rate"},
		{"mmpp bad dwell", func(s *Spec) { s.Cohorts[2].Arrival.States[0].MeanDwell = 0 }, "positive mean_dwell"},
		{"unknown process", func(s *Spec) { s.Cohorts[1].Arrival.Process = "fractal" }, "unknown arrival process"},
		{"unknown dist", func(s *Spec) { s.Cohorts[0].Think.Dist = "cauchy" }, "unknown distribution"},
		{"lognormal no cv", func(s *Spec) { s.Cohorts[0].Think.CV = 0 }, "positive cv"},
		{"exponential with cv", func(s *Spec) { *s.Cohorts[0].Think = DistSpec{Dist: DistExponential, Mean: 7, CV: 2} }, "must not set cv"},
		{"diurnal amplitude", func(s *Spec) { s.Cohorts[1].Arrival.Pattern.Amplitude = 1.5 }, "outside [0,1]"},
		{"unknown pattern", func(s *Spec) { s.Cohorts[1].Arrival.Pattern.Kind = "sawtooth" }, "unknown pattern kind"},
		{"flash peak", func(s *Spec) {
			*s.Cohorts[1].Arrival.Pattern = PatternSpec{Kind: PatternFlash, Ramp: 10, Peak: 0.5}
		}, "peak ≥ 1"},
		{"flash empty", func(s *Spec) {
			*s.Cohorts[1].Arrival.Pattern = PatternSpec{Kind: PatternFlash, Peak: 3}
		}, "positive ramp+hold+decay"},
		{"piecewise empty", func(s *Spec) {
			*s.Cohorts[1].Arrival.Pattern = PatternSpec{Kind: PatternPiecewise}
		}, "at least one period"},
		{"piecewise zero cycle", func(s *Spec) {
			*s.Cohorts[1].Arrival.Pattern = PatternSpec{Kind: PatternPiecewise, Cycle: true, Periods: []PeriodSpec{{Duration: 10, Scale: 0}}}
		}, "positive scale"},
		{"goal percentile", func(s *Spec) { s.Cohorts[0].GoalPercentile = 1.5 }, "outside [0,1)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mut(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("mutation %q passed validation", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("mutation %q: error %q does not mention %q", tc.name, err, tc.want)
			}
		})
	}
}

func TestCompileTraceCohortRules(t *testing.T) {
	s := New("t").AddTrace("replay", "does-not-exist.csv", false).Spec()
	if err := s.Validate(); err != nil {
		t.Fatalf("trace spec rejected structurally: %v", err)
	}
	if _, err := s.Compile(t.TempDir()); err == nil {
		t.Fatal("missing trace file not rejected at compile")
	}
	// A trace cohort declaring its own mix is contradictory.
	s.Cohorts[0].Mix = browseMix()
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "must not declare a mix") {
		t.Fatalf("trace cohort with mix: %v", err)
	}
	// cycle_seconds without loop is meaningless.
	s2 := New("t2").AddTrace("replay", "x.csv", false).Spec()
	s2.Cohorts[0].Arrival.CycleSeconds = 10
	if err := s2.Validate(); err == nil || !strings.Contains(err.Error(), "without loop") {
		t.Fatalf("cycle_seconds without loop: %v", err)
	}
}

func TestCompileDerivedQuantities(t *testing.T) {
	c, err := validSpec().Compile("")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if len(c.Cohorts) != 3 {
		t.Fatalf("got %d cohorts, want 3", len(c.Cohorts))
	}
	closed, pois, mmpp := c.Cohorts[0], c.Cohorts[1], c.Cohorts[2]
	if closed.Open() || closed.Clients != 400 {
		t.Fatalf("closed cohort compiled wrong: %+v", closed)
	}
	if got := closed.Class.ThinkTimeMean; got < 6.999 || got > 7.001 {
		t.Fatalf("closed think mean %v, want 7", got)
	}
	if !pois.Open() || pois.MeanRate != 40 {
		t.Fatalf("poisson cohort: mean rate %v, want 40", pois.MeanRate)
	}
	if pois.MaxRate < 59.9 || pois.MaxRate > 60.1 {
		t.Fatalf("poisson max rate %v, want 60 (diurnal peak 1.5×40)", pois.MaxRate)
	}
	// MMPP stationary rate: (2·30 + 40·5)/(30+5) = 260/35.
	want := 260.0 / 35.0
	if got := mmpp.MeanRate; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("mmpp mean rate %v, want %v", got, want)
	}
	if mmpp.MaxRate != 40 {
		t.Fatalf("mmpp max rate %v, want 40", mmpp.MaxRate)
	}

	w := c.Workload()
	if len(w) != 3 || w[0].Clients != 400 || w[1].ArrivalRate != 40 {
		t.Fatalf("workload mapping wrong: %+v", w)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("mapped workload invalid: %v", err)
	}
	if got := len(c.RequestTypes()); got != 2 {
		t.Fatalf("request types %v, want browse+buy", c.RequestTypes())
	}
}
