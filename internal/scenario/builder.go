package scenario

// Builder assembles a Spec programmatically — the Go-native
// alternative to a JSON spec file, used by tests and by commands that
// synthesise scenarios from flags. Cohort-scoped modifiers (Goal,
// Pattern, Think) apply to the most recently added cohort. Errors
// surface at Compile via the spec's own validation, so a builder
// chain never needs intermediate error checks.
type Builder struct {
	spec Spec
}

// New starts a builder for a named scenario.
func New(name string) *Builder {
	return &Builder{spec: Spec{Name: name}}
}

// AddClosed appends a closed cohort of clients think-looping with the
// given distribution and request mix.
func (b *Builder) AddClosed(name string, clients int, think DistSpec, mix map[string]float64) *Builder {
	b.spec.Cohorts = append(b.spec.Cohorts, CohortSpec{
		Name: name, Mix: mix, Think: &think,
		Arrival: ArrivalSpec{Process: ProcClosed, Clients: clients},
	})
	return b
}

// AddPoisson appends an open Poisson cohort at the given base rate.
func (b *Builder) AddPoisson(name string, rate float64, mix map[string]float64) *Builder {
	b.spec.Cohorts = append(b.spec.Cohorts, CohortSpec{
		Name: name, Mix: mix,
		Arrival: ArrivalSpec{Process: ProcPoisson, Rate: rate},
	})
	return b
}

// AddMMPP appends a bursty cohort whose rate is modulated by the
// given states, visited cyclically.
func (b *Builder) AddMMPP(name string, states []MMPPStateSpec, mix map[string]float64) *Builder {
	b.spec.Cohorts = append(b.spec.Cohorts, CohortSpec{
		Name: name, Mix: mix,
		Arrival: ArrivalSpec{Process: ProcMMPP, States: states},
	})
	return b
}

// AddTrace appends a trace-replay cohort. The path resolves relative
// to the directory passed to Compile.
func (b *Builder) AddTrace(name, path string, loop bool) *Builder {
	b.spec.Cohorts = append(b.spec.Cohorts, CohortSpec{
		Name:    name,
		Arrival: ArrivalSpec{Process: ProcTrace, Trace: path, Loop: loop},
	})
	return b
}

// Goal sets the last cohort's mean response-time SLA goal, seconds.
func (b *Builder) Goal(rt float64) *Builder {
	if n := len(b.spec.Cohorts); n > 0 {
		b.spec.Cohorts[n-1].GoalRT = rt
	}
	return b
}

// GoalPercentile sets the last cohort's percentile SLA: fraction pct
// of requests must finish within rt seconds.
func (b *Builder) GoalPercentile(rt, pct float64) *Builder {
	if n := len(b.spec.Cohorts); n > 0 {
		b.spec.Cohorts[n-1].GoalRT = rt
		b.spec.Cohorts[n-1].GoalPercentile = pct
	}
	return b
}

// Pattern attaches a temporal pattern to the last cohort.
func (b *Builder) Pattern(p PatternSpec) *Builder {
	if n := len(b.spec.Cohorts); n > 0 {
		b.spec.Cohorts[n-1].Arrival.Pattern = &p
	}
	return b
}

// Spec returns the assembled (not yet validated) spec.
func (b *Builder) Spec() *Spec { return &b.spec }

// Compile validates and compiles the assembled spec; baseDir anchors
// relative trace paths.
func (b *Builder) Compile(baseDir string) (*Compiled, error) {
	return b.spec.Compile(baseDir)
}

// Exponential returns an exponential DistSpec with the given mean.
func Exponential(mean float64) DistSpec {
	return DistSpec{Dist: DistExponential, Mean: mean}
}

// Lognormal returns a lognormal DistSpec with the given mean and
// coefficient of variation.
func Lognormal(mean, cv float64) DistSpec {
	return DistSpec{Dist: DistLognormal, Mean: mean, CV: cv}
}

// Deterministic returns a constant DistSpec.
func Deterministic(mean float64) DistSpec {
	return DistSpec{Dist: DistDeterministic, Mean: mean}
}

// Diurnal returns a sinusoidal pattern: scale(t) = 1 +
// amplitude·sin(2π(t+phase)/period).
func Diurnal(period, amplitude, phase float64) PatternSpec {
	return PatternSpec{Kind: PatternDiurnal, Period: period, Amplitude: amplitude, Phase: phase}
}

// FlashSale returns a spike pattern: base rate until start, a linear
// ramp to peak over ramp seconds, a hold, and a linear decay back.
func FlashSale(start, ramp, hold, decay, peak float64) PatternSpec {
	return PatternSpec{Kind: PatternFlash, Start: start, Ramp: ramp, Hold: hold, Decay: decay, Peak: peak}
}

// Piecewise returns a segment schedule; cycle repeats it forever.
func Piecewise(cycle bool, periods ...PeriodSpec) PatternSpec {
	return PatternSpec{Kind: PatternPiecewise, Cycle: cycle, Periods: periods}
}
