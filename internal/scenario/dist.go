package scenario

import (
	"math"

	"perfpred/internal/sim"
)

// Dist is a compiled positive-valued distribution. Sample draws from
// the given stream; a nil *Dist is not valid (compile always produces
// one for cohorts that need it).
type Dist struct {
	kind string
	mean float64
	// lognormal parameters: exp(mu + sigma·Z) with Z standard normal.
	mu, sigma float64
}

func compileDist(d *DistSpec) *Dist {
	c := &Dist{kind: d.Dist, mean: d.Mean}
	if d.Dist == DistLognormal {
		// Match the spec's mean and CV: sigma² = ln(1+CV²),
		// mu = ln(mean) − sigma²/2.
		s2 := math.Log(1 + d.CV*d.CV)
		c.sigma = math.Sqrt(s2)
		c.mu = math.Log(d.Mean) - s2/2
	}
	return c
}

// Mean returns the distribution mean, seconds.
func (d *Dist) Mean() float64 { return d.mean }

// Sample draws one value from the distribution using rng. It
// allocates nothing.
func (d *Dist) Sample(rng *sim.Stream) float64 {
	switch d.kind {
	case DistExponential:
		return rng.Exp(d.mean)
	case DistLognormal:
		return math.Exp(d.mu + d.sigma*rng.Norm())
	default: // deterministic
		return d.mean
	}
}
