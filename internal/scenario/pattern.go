package scenario

import "math"

// Pattern is a compiled temporal rate-multiplier curve. Scale(t)
// multiplies a cohort's base arrival rate; MaxScale bounds it (the
// thinning envelope) and MeanScale is the long-run average (the
// stationary rate predictors calibrate against). A nil *Pattern means
// the constant curve Scale ≡ 1.
type Pattern struct {
	kind string

	// piecewise
	periods []PeriodSpec
	cycle   bool
	total   float64 // sum of period durations

	// diurnal
	period    float64
	amplitude float64
	phase     float64

	// flash
	start, ramp, hold, decay, peak float64
}

func compilePattern(p *PatternSpec) *Pattern {
	if p == nil {
		return nil
	}
	c := &Pattern{kind: p.Kind}
	switch p.Kind {
	case PatternPiecewise:
		c.periods = append([]PeriodSpec(nil), p.Periods...)
		c.cycle = p.Cycle
		for _, per := range c.periods {
			c.total += per.Duration
		}
	case PatternDiurnal:
		c.period, c.amplitude, c.phase = p.Period, p.Amplitude, p.Phase
	case PatternFlash:
		c.start, c.ramp, c.hold, c.decay, c.peak = p.Start, p.Ramp, p.Hold, p.Decay, p.Peak
	}
	return c
}

// Scale returns the rate multiplier at time t (seconds from run
// start). A nil pattern scales by 1 everywhere.
func (p *Pattern) Scale(t float64) float64 {
	if p == nil {
		return 1
	}
	switch p.kind {
	case PatternPiecewise:
		if t < 0 {
			return 1
		}
		if p.cycle {
			t = math.Mod(t, p.total)
		} else if t >= p.total {
			// A finished non-cycling schedule reverts to the base rate, so
			// thinning always has a positive rate to recur on.
			return 1
		}
		for _, per := range p.periods {
			if t < per.Duration {
				return per.Scale
			}
			t -= per.Duration
		}
		return p.periods[len(p.periods)-1].Scale
	case PatternDiurnal:
		return 1 + p.amplitude*math.Sin(2*math.Pi*(t+p.phase)/p.period)
	case PatternFlash:
		t -= p.start
		switch {
		case t < 0:
			return 1
		case t < p.ramp:
			return 1 + (p.peak-1)*t/p.ramp
		case t < p.ramp+p.hold:
			return p.peak
		case t < p.ramp+p.hold+p.decay:
			return p.peak - (p.peak-1)*(t-p.ramp-p.hold)/p.decay
		default:
			return 1
		}
	}
	return 1
}

// MaxScale returns the supremum of Scale over all t — the thinning
// bound for time-varying arrival generation.
func (p *Pattern) MaxScale() float64 {
	if p == nil {
		return 1
	}
	switch p.kind {
	case PatternPiecewise:
		max := 0.0
		for _, per := range p.periods {
			if per.Scale > max {
				max = per.Scale
			}
		}
		if !p.cycle && max < 1 {
			// The post-schedule tail runs at scale 1.
			max = 1
		}
		return max
	case PatternDiurnal:
		return 1 + p.amplitude
	case PatternFlash:
		return p.peak
	}
	return 1
}

// MeanScale returns the long-run average multiplier over the given
// horizon (seconds). Cyclic patterns average over whole cycles;
// transient ones (flash, finished piecewise schedules) dilute into
// their scale-1 tail as the horizon grows.
func (p *Pattern) MeanScale(horizon float64) float64 {
	if p == nil || horizon <= 0 {
		return 1
	}
	switch p.kind {
	case PatternPiecewise:
		var cycleArea float64
		for _, per := range p.periods {
			cycleArea += per.Duration * per.Scale
		}
		if p.cycle {
			return cycleArea / p.total
		}
		if horizon <= p.total {
			// Partial schedule: integrate numerically-free piece by piece.
			var area, t float64
			for _, per := range p.periods {
				if t >= horizon {
					break
				}
				d := per.Duration
				if t+d > horizon {
					d = horizon - t
				}
				area += d * per.Scale
				t += per.Duration
			}
			return area / horizon
		}
		return (cycleArea + (horizon - p.total)) / horizon
	case PatternDiurnal:
		// Whole cycles average to exactly 1; a partial final cycle leaves
		// a sinusoidal remainder that shrinks as 1/horizon. Integrate the
		// remainder exactly.
		cycles := math.Floor(horizon / p.period)
		rem := horizon - cycles*p.period
		if rem == 0 {
			return 1
		}
		// ∫₀^rem sin(2π(t+phase)/T) dt = T/2π · [cos(2π·phase/T) − cos(2π(rem+phase)/T)]
		w := 2 * math.Pi / p.period
		area := cycles*p.period + rem + p.amplitude/w*(math.Cos(w*p.phase)-math.Cos(w*(rem+p.phase)))
		return area / horizon
	case PatternFlash:
		// Area above the base line, integrated exactly over [0, horizon].
		// The hold contributes (peak−1) per second over its clipped span;
		// the ramp and decay are clipped right triangles, so a horizon
		// ending mid-slope contributes the trapezoid under the slope up
		// to the cut, not half the full triangle.
		s1 := p.start + p.ramp          // ramp end / hold start
		s2 := s1 + p.hold               // hold end / decay start
		end := s2 + p.decay             // decay end
		clip := func(a, b float64) (float64, float64) { // overlap of [a,b] with [0,horizon]
			lo, hi := math.Max(a, 0), math.Min(b, horizon)
			if hi <= lo {
				return 0, 0
			}
			return lo, hi
		}
		var extra float64
		if lo, hi := clip(p.start, s1); hi > lo && p.ramp > 0 {
			// Scale 1 + (peak−1)(t−start)/ramp: ∫(scale−1) over [lo,hi]
			// = (peak−1)/(2·ramp) · ((hi−start)² − (lo−start)²).
			extra += (p.peak - 1) / (2 * p.ramp) *
				((hi-p.start)*(hi-p.start) - (lo-p.start)*(lo-p.start))
		}
		if lo, hi := clip(s1, s2); hi > lo {
			extra += (p.peak - 1) * (hi - lo)
		}
		if lo, hi := clip(s2, end); hi > lo && p.decay > 0 {
			// Scale peak − (peak−1)(t−s2)/decay: ∫(scale−1) over [lo,hi]
			// = (peak−1)·[(hi−lo) − ((hi−s2)² − (lo−s2)²)/(2·decay)].
			extra += (p.peak - 1) *
				((hi - lo) - ((hi-s2)*(hi-s2)-(lo-s2)*(lo-s2))/(2*p.decay))
		}
		return (horizon + extra) / horizon
	}
	return 1
}
