package scenario

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"perfpred/internal/workload"
)

// TraceEvent is one recorded arrival: its time offset from trace
// start and its request type.
type TraceEvent struct {
	T    float64
	Type workload.RequestType
}

// Trace is a loaded arrival recording. Replay walks Events in order;
// a looping trace restarts after Cycle seconds, so the recorded
// pattern repeats with its gaps intact.
type Trace struct {
	Events []TraceEvent
	// Loop replays the trace cyclically.
	Loop bool
	// Cycle is the loop period, seconds (looping traces only).
	Cycle float64
}

// LoadTrace parses a CSV arrival trace: one "time_seconds,request_type"
// pair per line, ascending times, with #-comment lines and an optional
// non-numeric header skipped. cycle overrides the loop period; 0
// derives it from the last arrival plus the mean recorded gap, so a
// looped replay keeps the trace's average rate across the seam.
func LoadTrace(path string, loop bool, cycle float64) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading trace: %w", err)
	}
	tr := &Trace{Loop: loop}
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, typ, err := parseTraceLine(line)
		if err != nil {
			if len(tr.Events) == 0 && lineNo == 0 {
				continue // header line
			}
			return nil, fmt.Errorf("trace %s line %d: %w", path, lineNo+1, err)
		}
		if n := len(tr.Events); n > 0 && t < tr.Events[n-1].T {
			return nil, fmt.Errorf("trace %s line %d: time %v before previous arrival %v", path, lineNo+1, t, tr.Events[n-1].T)
		}
		tr.Events = append(tr.Events, TraceEvent{T: t, Type: typ})
	}
	if len(tr.Events) == 0 {
		return nil, fmt.Errorf("trace %s holds no arrivals", path)
	}
	if loop {
		last := tr.Events[len(tr.Events)-1].T
		switch {
		case cycle > 0 && cycle <= last:
			return nil, fmt.Errorf("trace %s: cycle_seconds %v must exceed the last arrival %v", path, cycle, last)
		case cycle > 0:
			tr.Cycle = cycle
		default:
			gap := 1.0
			if n := len(tr.Events); n > 1 && last > tr.Events[0].T {
				gap = (last - tr.Events[0].T) / float64(n-1)
			}
			tr.Cycle = last + gap
		}
	}
	return tr, nil
}

func parseTraceLine(line string) (float64, workload.RequestType, error) {
	i := strings.IndexByte(line, ',')
	if i < 0 {
		return 0, "", fmt.Errorf("want time,type, got %q", line)
	}
	t, err := strconv.ParseFloat(strings.TrimSpace(line[:i]), 64)
	if err != nil {
		return 0, "", fmt.Errorf("bad arrival time in %q: %w", line, err)
	}
	if t < 0 {
		return 0, "", fmt.Errorf("negative arrival time in %q", line)
	}
	typ := strings.TrimSpace(line[i+1:])
	if typ == "" {
		return 0, "", fmt.Errorf("empty request type in %q", line)
	}
	return t, workload.RequestType(typ), nil
}

// Mix derives the request mix from the trace's composition.
func (tr *Trace) Mix() workload.Mix {
	counts := make(map[workload.RequestType]int)
	for _, ev := range tr.Events {
		counts[ev.Type]++
	}
	mix := make(workload.Mix, len(counts))
	for rt, n := range counts {
		mix[rt] = float64(n) / float64(len(tr.Events))
	}
	return mix
}

// Span is the recorded duration: the loop cycle for looping traces,
// the last arrival time otherwise.
func (tr *Trace) Span() float64 {
	if tr.Loop {
		return tr.Cycle
	}
	return tr.Events[len(tr.Events)-1].T
}

// MeanRate is the trace's average arrival rate over its span.
func (tr *Trace) MeanRate() float64 {
	span := tr.Span()
	if span <= 0 {
		return 0
	}
	return float64(len(tr.Events)) / span
}

// PeakRate estimates the trace's maximum local rate: the highest
// arrival count in any 1-second sliding window anchored at an arrival
// (falling back to the mean rate for sub-second traces).
func (tr *Trace) PeakRate() float64 {
	peak := tr.MeanRate()
	lo := 0
	for hi := range tr.Events {
		for tr.Events[hi].T-tr.Events[lo].T > 1 {
			lo++
		}
		if r := float64(hi - lo + 1); r > peak {
			peak = r
		}
	}
	return peak
}

// RateAt returns the trace's local empirical rate around time t:
// arrivals within ±w/2 of t over w, with w sized to ~32 events at the
// mean rate so the estimate is stable but still tracks bursts.
// Looping traces wrap t into the cycle.
func (tr *Trace) RateAt(t float64) float64 {
	span := tr.Span()
	if span <= 0 {
		return 0
	}
	if tr.Loop {
		for t >= tr.Cycle {
			t -= tr.Cycle
		}
	} else if t > span {
		return 0
	}
	w := 32 / tr.MeanRate()
	if w > span {
		w = span
	}
	lo, hi := t-w/2, t+w/2
	if lo < 0 {
		lo, hi = 0, w
	}
	if hi > span {
		lo, hi = span-w, span
	}
	i := sort.Search(len(tr.Events), func(k int) bool { return tr.Events[k].T >= lo })
	j := sort.Search(len(tr.Events), func(k int) bool { return tr.Events[k].T > hi })
	return float64(j-i) / w
}
