package scenario

import (
	"fmt"
	"os"
	"path/filepath"

	"perfpred/internal/workload"
)

// Cohort is one compiled client cohort: the read-only result of
// resolving a CohortSpec. Generators (Gen) hold the mutable per-run
// state; Cohort is safe to share across runs and shards.
type Cohort struct {
	// Class is the cohort's service class: name, mix, SLA goal, and —
	// for closed cohorts — the mean think time (so legacy consumers
	// that only understand exponential think times still see the right
	// first moment).
	Class workload.ServiceClass
	// Kind is the arrival process (ProcClosed, ProcPoisson, ProcMMPP,
	// ProcTrace).
	Kind string
	// Clients is the closed population size (closed cohorts only).
	Clients int
	// Think is the think-time distribution (closed cohorts only).
	Think *Dist
	// BaseRate is the unmodulated Poisson rate (poisson cohorts only).
	BaseRate float64
	// States are the MMPP modulating states (mmpp cohorts only).
	States []MMPPStateSpec
	// Pattern modulates the open rate over time; nil means constant.
	Pattern *Pattern
	// Trace is the loaded replay trace (trace cohorts only).
	Trace *Trace
	// MeanRate is the stationary mean arrival rate in requests/second
	// for open cohorts (pattern-free; multiply by Pattern.MeanScale for
	// a horizon-specific mean). 0 for closed cohorts.
	MeanRate float64
	// MaxRate bounds the instantaneous arrival rate — the thinning
	// envelope generators reject against. 0 for closed cohorts.
	MaxRate float64
}

// Open reports whether the cohort is an open arrival stream.
func (c *Cohort) Open() bool { return c.Kind != ProcClosed }

// RateAt returns the cohort's expected instantaneous arrival rate at
// time t: the pattern-modulated base rate for poisson, the
// pattern-modulated stationary rate for mmpp (the modulation states
// average out in expectation), and the trace's local empirical rate
// for trace cohorts. 0 for closed cohorts, whose rate is
// load-dependent.
func (c *Cohort) RateAt(t float64) float64 {
	switch c.Kind {
	case ProcPoisson:
		return c.BaseRate * c.Pattern.Scale(t)
	case ProcMMPP:
		return c.MeanRate * c.Pattern.Scale(t)
	case ProcTrace:
		return c.Trace.RateAt(t)
	}
	return 0
}

// Compiled is a validated, resolved scenario ready to drive
// generators. It is read-only after Compile.
type Compiled struct {
	// Name is the scenario name from the spec.
	Name string
	// Cohorts are the compiled cohorts in spec order.
	Cohorts []*Cohort
	// Source is the validated spec the scenario was compiled from.
	Source *Spec
}

// Load reads, parses and compiles a JSON spec file. Trace paths
// inside the spec resolve relative to the spec file's directory.
func Load(path string) (*Compiled, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: reading spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, err
	}
	return s.Compile(filepath.Dir(path))
}

// Compile validates the spec and resolves it into a Compiled
// scenario. baseDir anchors relative trace paths ("" means the
// current directory).
func (s *Spec) Compile(baseDir string) (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	out := &Compiled{Name: s.Name, Source: s}
	for i := range s.Cohorts {
		cs := &s.Cohorts[i]
		c := &Cohort{
			Kind: cs.Arrival.Process,
			Class: workload.ServiceClass{
				Name:           cs.Name,
				Mix:            compileMix(cs.Mix),
				GoalRT:         cs.GoalRT,
				GoalPercentile: cs.GoalPercentile,
			},
			Pattern: compilePattern(cs.Arrival.Pattern),
		}
		switch cs.Arrival.Process {
		case ProcClosed:
			c.Clients = cs.Arrival.Clients
			c.Think = compileDist(cs.Think)
			c.Class.ThinkTimeMean = c.Think.Mean()
		case ProcPoisson:
			c.BaseRate = cs.Arrival.Rate
			c.MeanRate = cs.Arrival.Rate
			c.MaxRate = cs.Arrival.Rate * c.Pattern.MaxScale()
		case ProcMMPP:
			c.States = append([]MMPPStateSpec(nil), cs.Arrival.States...)
			var area, dwell, maxRate float64
			for _, st := range c.States {
				area += st.Rate * st.MeanDwell
				dwell += st.MeanDwell
				if st.Rate > maxRate {
					maxRate = st.Rate
				}
			}
			c.MeanRate = area / dwell
			c.MaxRate = maxRate * c.Pattern.MaxScale()
		case ProcTrace:
			path := cs.Arrival.Trace
			if !filepath.IsAbs(path) && baseDir != "" {
				path = filepath.Join(baseDir, path)
			}
			tr, err := LoadTrace(path, cs.Arrival.Loop, cs.Arrival.CycleSeconds)
			if err != nil {
				return nil, fmt.Errorf("scenario: cohort %q: %w", cs.Name, err)
			}
			c.Trace = tr
			c.Class.Mix = tr.Mix()
			c.MeanRate = tr.MeanRate()
			c.MaxRate = tr.PeakRate()
		}
		out.Cohorts = append(out.Cohorts, c)
	}
	return out, nil
}

func compileMix(m map[string]float64) workload.Mix {
	if len(m) == 0 {
		return nil
	}
	mix := make(workload.Mix, len(m))
	for rt, f := range m {
		mix[workload.RequestType(rt)] = f
	}
	return mix
}

// Workload maps the scenario onto the static workload description the
// predictors and the resource manager consume: closed cohorts keep
// their client populations, open cohorts become fixed-rate streams at
// their stationary mean rate. Transient structure (patterns, MMPP
// modulation, trace timing) is deliberately erased — that is exactly
// the information the steady-state predictors cannot see, and the
// transient-error study quantifies what that costs.
func (c *Compiled) Workload() workload.Workload {
	w := make(workload.Workload, 0, len(c.Cohorts))
	for _, co := range c.Cohorts {
		p := workload.Population{Class: co.Class}
		if co.Open() {
			p.ArrivalRate = co.MeanRate
		} else {
			p.Clients = co.Clients
		}
		w = append(w, p)
	}
	return w
}

// OfferedRate sums the cohorts' expected instantaneous arrival rates
// at time t (open cohorts only; closed populations self-limit).
func (c *Compiled) OfferedRate(t float64) float64 {
	var sum float64
	for _, co := range c.Cohorts {
		sum += co.RateAt(t)
	}
	return sum
}

// MeanOfferedRate integrates OfferedRate over [t0, t1) by midpoint
// sampling — the per-window offered load the transient study compares
// predictions against.
func (c *Compiled) MeanOfferedRate(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	const steps = 64
	dt := (t1 - t0) / steps
	var sum float64
	for i := 0; i < steps; i++ {
		sum += c.OfferedRate(t0 + (float64(i)+0.5)*dt)
	}
	return sum / steps
}

// RequestTypes returns the distinct request types across all cohort
// mixes, so callers can check them against a demand table.
func (c *Compiled) RequestTypes() []workload.RequestType {
	seen := make(map[workload.RequestType]bool)
	var out []workload.RequestType
	for _, co := range c.Cohorts {
		for rt := range co.Class.Mix {
			if !seen[rt] {
				seen[rt] = true
				out = append(out, rt)
			}
		}
	}
	return out
}
