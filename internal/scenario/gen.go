package scenario

import (
	"sort"

	"perfpred/internal/sim"
	"perfpred/internal/workload"
)

// Gen is a pull-based arrival generator for one open cohort. Next
// returns successive arrival times; the caller owns the pacing (an
// event engine schedules them, a load driver sleeps until them). Gen
// holds all mutable state, so one read-only Cohort can drive any
// number of independent generators — one per shard-pool replica, each
// on its own sim.Split stream, which is what makes spec-driven runs
// bit-identical at any shard count.
//
// Next allocates nothing: time-varying rates use Lewis–Shedler
// thinning against the cohort's MaxRate envelope, MMPP modulation
// advances its state chain lazily from a second stream, and trace
// replay walks the loaded events in place.
type Gen struct {
	c *Cohort
	// arr draws candidate gaps and thinning accept/reject uniforms.
	arr *sim.Stream
	// state draws MMPP dwell times; separate from arr so the arrival
	// count cannot perturb the modulating chain.
	state *sim.Stream

	t float64 // last candidate arrival time

	// MMPP state chain, advanced lazily to cover t.
	stateIdx   int
	stateUntil float64

	// trace replay cursor.
	idx       int
	traceBase float64 // accumulated loop offset
}

// NewGen returns a generator for the open cohort c. arr paces the
// arrivals; state paces MMPP modulation (unused but required for the
// other kinds, so stream layouts stay uniform across cohorts). It
// panics on a closed cohort — closed populations are driven by their
// clients' think loops, not by a generator.
func NewGen(c *Cohort, arr, state *sim.Stream) *Gen {
	if !c.Open() {
		panic("scenario: NewGen on closed cohort " + c.Class.Name)
	}
	g := &Gen{c: c, arr: arr, state: state}
	if c.Kind == ProcMMPP {
		g.stateUntil = state.Exp(c.States[0].MeanDwell)
	}
	return g
}

// Cohort returns the cohort the generator draws from.
func (g *Gen) Cohort() *Cohort { return g.c }

// Next returns the next arrival: its absolute time and its request
// type. A zero ("") type means the caller samples the cohort's mix;
// trace replay returns the recorded type. ok is false when the
// process is exhausted (a non-looping trace ran out), after which
// Next keeps returning false.
func (g *Gen) Next() (t float64, rt workload.RequestType, ok bool) {
	switch g.c.Kind {
	case ProcTrace:
		return g.nextTrace()
	case ProcPoisson, ProcMMPP:
		return g.nextThinned(), "", true
	}
	return 0, "", false
}

// nextThinned samples the next arrival of a (possibly modulated)
// rate process by thinning: candidate gaps come from a homogeneous
// Poisson process at the MaxRate envelope, and each candidate is
// accepted with probability rate(t)/MaxRate. Validation guarantees
// the loop terminates: every process recurs to a positive rate (a
// finished piecewise schedule reverts to scale 1, diurnal amplitude
// is capped at 1, and an MMPP chain revisits its positive-rate
// state), so acceptances cannot die out.
func (g *Gen) nextThinned() float64 {
	env := g.c.MaxRate
	mean := 1 / env
	for {
		g.t += g.arr.Exp(mean)
		rate := g.instRate(g.t)
		// Draw the accept uniform unconditionally — even when the
		// candidate is sure to be accepted or rejected — so the arrival
		// stream's draw count per candidate is fixed and replays exactly.
		if g.arr.Float64()*env < rate {
			return g.t
		}
	}
}

// instRate is the instantaneous rate at time t, advancing the MMPP
// state chain as far as needed.
func (g *Gen) instRate(t float64) float64 {
	base := g.c.BaseRate
	if g.c.Kind == ProcMMPP {
		for t >= g.stateUntil {
			g.stateIdx++
			if g.stateIdx == len(g.c.States) {
				g.stateIdx = 0
			}
			g.stateUntil += g.state.Exp(g.c.States[g.stateIdx].MeanDwell)
		}
		base = g.c.States[g.stateIdx].Rate
	}
	return base * g.c.Pattern.Scale(t)
}

func (g *Gen) nextTrace() (float64, workload.RequestType, bool) {
	tr := g.c.Trace
	if g.idx == len(tr.Events) {
		if !tr.Loop {
			return 0, "", false
		}
		g.traceBase += tr.Cycle
		g.idx = 0
	}
	ev := tr.Events[g.idx]
	g.idx++
	return g.traceBase + ev.T, ev.Type, true
}

// mixSampler samples request types from a cohort mix with a stable
// (sorted-name) category order, so draws are reproducible regardless
// of map iteration order.
type mixSampler struct {
	types   []workload.RequestType
	weights []float64
}

func newMixSampler(mix workload.Mix) *mixSampler {
	m := &mixSampler{}
	for rt := range mix {
		m.types = append(m.types, rt)
	}
	sort.Slice(m.types, func(i, j int) bool { return m.types[i] < m.types[j] })
	for _, rt := range m.types {
		m.weights = append(m.weights, mix[rt])
	}
	return m
}

func (m *mixSampler) sample(rng *sim.Stream) workload.RequestType {
	return m.types[rng.Choose(m.weights)]
}

// Pacer merges every open cohort of a scenario into one time-ordered
// arrival stream — the shape a load driver (cmd/predload) or an
// analysis pass (SelfCheck) consumes. Each cohort gets sim.Split
// streams keyed by its index, so the merged stream is reproducible
// and independent of how many cohorts precede it.
type Pacer struct {
	gens     []*Gen
	cohorts  []int // scenario cohort index per gen
	samplers []*mixSampler
	mixRNG   []*sim.Stream
	headT    []float64
	headRT   []workload.RequestType
	live     []bool
}

// Arrival is one merged arrival from a Pacer.
type Arrival struct {
	// T is the arrival time, seconds from scenario start.
	T float64
	// Cohort indexes Compiled.Cohorts.
	Cohort int
	// Type is the sampled (or trace-recorded) request type.
	Type workload.RequestType
}

// NewPacer builds a merged generator over the scenario's open
// cohorts, seeded from seed. Closed cohorts are skipped — a pacer has
// no response times to close the loop with.
func NewPacer(c *Compiled, seed int64) *Pacer {
	p := &Pacer{}
	for i, co := range c.Cohorts {
		if !co.Open() {
			continue
		}
		arr := sim.NewStream(sim.SplitSeed(seed, uint64(3*i)))
		state := sim.NewStream(sim.SplitSeed(seed, uint64(3*i+1)))
		p.gens = append(p.gens, NewGen(co, arr, state))
		p.cohorts = append(p.cohorts, i)
		p.samplers = append(p.samplers, newMixSampler(co.Class.Mix))
		p.mixRNG = append(p.mixRNG, sim.NewStream(sim.SplitSeed(seed, uint64(3*i+2))))
		p.headT = append(p.headT, 0)
		p.headRT = append(p.headRT, "")
		p.live = append(p.live, false)
	}
	for i := range p.gens {
		p.advance(i)
	}
	return p
}

func (p *Pacer) advance(i int) {
	t, rt, ok := p.gens[i].Next()
	p.headT[i], p.headRT[i], p.live[i] = t, rt, ok
}

// Next returns the earliest pending arrival across cohorts, or
// ok=false when every stream is exhausted.
func (p *Pacer) Next() (a Arrival, ok bool) {
	best := -1
	for i := range p.gens {
		if p.live[i] && (best < 0 || p.headT[i] < p.headT[best]) {
			best = i
		}
	}
	if best < 0 {
		return Arrival{}, false
	}
	a = Arrival{T: p.headT[best], Cohort: p.cohorts[best], Type: p.headRT[best]}
	if a.Type == "" {
		a.Type = p.samplers[best].sample(p.mixRNG[best])
	}
	p.advance(best)
	return a, true
}
