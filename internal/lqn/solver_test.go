package lqn

import (
	"math"
	"strings"
	"testing"

	"perfpred/internal/obs"
	"perfpred/internal/workload"
)

func tradeTestModel(t testing.TB, clients int) *Model {
	t.Helper()
	m, err := NewTradeModel(workload.AppServF(), workload.CaseStudyDB(), workload.CaseStudyDemands(), workload.MixedWorkload(clients, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// requireSameResult asserts bit-exact equality of everything except
// SolveTime.
func requireSameResult(t *testing.T, got, want *Result) {
	t.Helper()
	if len(got.Classes) != len(want.Classes) {
		t.Fatalf("class count %d, want %d", len(got.Classes), len(want.Classes))
	}
	for name, w := range want.Classes {
		g, ok := got.Classes[name]
		if !ok {
			t.Fatalf("missing class %q", name)
		}
		if g != w {
			t.Fatalf("class %q = %+v, want %+v", name, g, w)
		}
	}
	for name, w := range want.ProcessorUtil {
		if g := got.ProcessorUtil[name]; g != w {
			t.Fatalf("util[%q] = %v, want %v", name, g, w)
		}
	}
	for name, wper := range want.ClassProcessorUtil {
		for cl, w := range wper {
			if g := got.ClassProcessorUtil[name][cl]; g != w {
				t.Fatalf("classUtil[%q][%q] = %v, want %v", name, cl, g, w)
			}
		}
	}
	if got.Iterations != want.Iterations || got.Converged != want.Converged {
		t.Fatalf("iterations/converged = %d/%v, want %d/%v", got.Iterations, got.Converged, want.Iterations, want.Converged)
	}
}

// A retained cold Solver must reproduce the one-shot Solve bit for bit,
// across population mutations on one model and across switches to
// different models (shape changes included).
func TestSolverMatchesSolveBitExact(t *testing.T) {
	s := NewSolver()

	m := tradeTestModel(t, 100)
	for _, n := range []int{100, 400, 1500, 3} {
		m.Classes[0].Population = n
		got, err := s.Solve(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Solve(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, got, want)
	}

	// Model switch: different shape (single class, one processor).
	tiny := tinyModel()
	got, err := s.Solve(tiny, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Solve(tiny, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, got, want)

	// And back to the trade model.
	got, err = s.Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err = Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, got, want)
}

// Steady-state solves on a same-shaped model must not allocate: this is
// the acceptance criterion for the reusable workspace. The population
// alternates so the solver cannot trivially reuse a converged state.
func TestSolverZeroAllocSteadyState(t *testing.T) {
	m := tradeTestModel(t, 100)
	s := NewSolver()
	if _, err := s.Solve(m, Options{}); err != nil {
		t.Fatal(err)
	}
	n := 0
	allocs := testing.AllocsPerRun(200, func() {
		n++
		m.Classes[0].Population = 100 + 50*(n%2)
		if _, err := s.Solve(m, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Solve allocates %v allocs/op, want 0", allocs)
	}
}

func TestSolverZeroAllocWarmStart(t *testing.T) {
	m := tradeTestModel(t, 100)
	s := NewSolver()
	s.WarmStart = true
	if _, err := s.Solve(m, Options{}); err != nil {
		t.Fatal(err)
	}
	n := 0
	allocs := testing.AllocsPerRun(200, func() {
		n++
		m.Classes[0].Population = 100 + 10*(n%4)
		if _, err := s.Solve(m, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm-started Solve allocates %v allocs/op, want 0", allocs)
	}
}

// TestSolverZeroAllocWithMetrics repeats the steady-state zero-alloc
// contract with the observability layer registered and enabled: the
// per-solve record path is a handful of atomic adds, so turning
// metrics on must not cost an allocation.
func TestSolverZeroAllocWithMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	EnableMetrics(reg)
	defer EnableMetrics(nil)
	m := tradeTestModel(t, 100)
	s := NewSolver()
	s.WarmStart = true
	if _, err := s.Solve(m, Options{}); err != nil {
		t.Fatal(err)
	}
	n := 0
	allocs := testing.AllocsPerRun(200, func() {
		n++
		m.Classes[0].Population = 100 + 50*(n%2)
		if _, err := s.Solve(m, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("metrics-enabled Solve allocates %v allocs/op, want 0", allocs)
	}
	snap := reg.Snapshot()
	if snap.Counters["lqn_solver_solves"] == 0 {
		t.Fatal("metrics enabled but lqn_solver_solves stayed zero")
	}
	if snap.Counters["lqn_solver_mva_iterations"] == 0 {
		t.Fatal("metrics enabled but lqn_solver_mva_iterations stayed zero")
	}
	if snap.Counters["lqn_solver_warm_hits"] == 0 {
		t.Fatal("warm-started sweep recorded no lqn_solver_warm_hits")
	}
}

// Warm starts must converge to the same fixed point (within the
// convergence tolerance) while spending strictly fewer iterations over
// an adjacent-population sweep.
func TestSolverWarmStartSweep(t *testing.T) {
	mWarm := tradeTestModel(t, 50)
	mCold := tradeTestModel(t, 50)
	warm := NewSolver()
	warm.WarmStart = true
	cold := NewSolver()

	warmIters, coldIters := 0, 0
	for n := 50; n <= 2000; n += 50 {
		mWarm.Classes[0].Population = n
		mCold.Classes[0].Population = n
		rw, err := warm.Solve(mWarm, Options{})
		if err != nil {
			t.Fatal(err)
		}
		warmIters += rw.Iterations
		rc, err := cold.Solve(mCold, Options{})
		if err != nil {
			t.Fatal(err)
		}
		coldIters += rc.Iterations
		if !rw.Converged || !rc.Converged {
			t.Fatalf("n=%d: converged warm=%v cold=%v", n, rw.Converged, rc.Converged)
		}
		for name, c := range rc.Classes {
			w := rw.Classes[name]
			if d := math.Abs(w.ResponseTime - c.ResponseTime); d > 1e-3*(1+c.ResponseTime) {
				t.Fatalf("n=%d class %q: warm RT %v vs cold %v", n, name, w.ResponseTime, c.ResponseTime)
			}
			if d := math.Abs(w.Throughput - c.Throughput); d > 1e-3*(1+c.Throughput) {
				t.Fatalf("n=%d class %q: warm X %v vs cold %v", n, name, w.Throughput, c.Throughput)
			}
		}
	}
	if warmIters >= coldIters {
		t.Fatalf("warm sweep spent %d iterations, cold %d — warm start saved nothing", warmIters, coldIters)
	}
	t.Logf("sweep iterations: warm %d vs cold %d (%.0f%% saved)", warmIters, coldIters, 100*(1-float64(warmIters)/float64(coldIters)))
}

// InvalidateDemands after an in-place retune must match a from-scratch
// rebuild bit for bit.
func TestSolverInvalidateDemandsMatchesRebuild(t *testing.T) {
	demands := workload.CaseStudyDemands()
	m := tradeTestModel(t, 400)
	s := NewSolver()
	if _, err := s.Solve(m, Options{}); err != nil {
		t.Fatal(err)
	}

	scaled := make(map[workload.RequestType]workload.Demand, len(demands))
	for rt, d := range demands {
		d.AppServerTime *= 1.3
		d.DBCallsPerRequest *= 0.9
		scaled[rt] = d
	}
	if err := RetuneTradeModel(m, scaled); err != nil {
		t.Fatal(err)
	}
	s.InvalidateDemands()
	got, err := s.Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}

	fresh, err := NewTradeModel(workload.AppServF(), workload.CaseStudyDB(), scaled, workload.MixedWorkload(400, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Solve(fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, got, want)
}

// Without InvalidateDemands the solver keeps serving the cached
// folding — the documented contract for in-place demand edits.
func TestSolverStaleWithoutInvalidate(t *testing.T) {
	m := tinyModel()
	s := NewSolver()
	before, err := s.Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	beforeRT := before.Classes["users"].ResponseTime
	m.Tasks[0].Entries[0].Demand *= 2
	stale, err := s.Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stale.Classes["users"].ResponseTime != beforeRT {
		t.Fatal("demand edit visible without InvalidateDemands; cache is not being exercised")
	}
	s.InvalidateDemands()
	after, err := s.Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if after.Classes["users"].ResponseTime <= beforeRT {
		t.Fatal("InvalidateDemands did not pick up the demand edit")
	}
}

// A class flipping between open and closed on the same model pointer
// must be detected and re-planned, not mis-solved.
func TestSolverOpenClosedFlip(t *testing.T) {
	m := tinyModel()
	s := NewSolver()
	if _, err := s.Solve(m, Options{}); err != nil {
		t.Fatal(err)
	}
	m.Classes[0].Population = 0
	m.Classes[0].ArrivalRate = 10
	got, err := s.Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, got, want)
	if got.Classes["users"].Throughput != 10 {
		t.Fatalf("open class throughput %v, want the arrival rate 10", got.Classes["users"].Throughput)
	}
}

// Parameter guards still fire on the cached fast path, where full
// validation is skipped.
func TestSolverRejectsBadParametersOnCacheHit(t *testing.T) {
	m := tinyModel()
	s := NewSolver()
	if _, err := s.Solve(m, Options{}); err != nil {
		t.Fatal(err)
	}
	m.Classes[0].Population = -1
	if _, err := s.Solve(m, Options{}); err == nil || !strings.Contains(err.Error(), "negative population") {
		t.Fatalf("want negative-population error, got %v", err)
	}
	m.Classes[0].Population = 5
	m.Classes[0].Think = -1
	if _, err := s.Solve(m, Options{}); err == nil || !strings.Contains(err.Error(), "negative think") {
		t.Fatalf("want negative-think error, got %v", err)
	}
}

func TestDampingValidationAndEquivalence(t *testing.T) {
	m := tradeTestModel(t, 1500)
	for _, bad := range []float64{-0.1, 1, 1.5} {
		if _, err := Solve(m, Options{Damping: bad}); err == nil {
			t.Fatalf("damping %v accepted", bad)
		}
	}
	plain, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	damped, err := Solve(m, Options{Damping: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !damped.Converged {
		t.Fatal("damped iteration did not converge")
	}
	for name, p := range plain.Classes {
		d := damped.Classes[name]
		if diff := math.Abs(p.ResponseTime - d.ResponseTime); diff > 1e-3*(1+p.ResponseTime) {
			t.Fatalf("class %q: damped RT %v vs undamped %v", name, d.ResponseTime, p.ResponseTime)
		}
	}
}

func TestResultClone(t *testing.T) {
	m := tinyModel()
	s := NewSolver()
	res, err := s.Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	clone := res.Clone()
	firstRT := clone.Classes["users"].ResponseTime
	m.Classes[0].Population = 5000
	if _, err := s.Solve(m, Options{}); err != nil {
		t.Fatal(err)
	}
	if clone.Classes["users"].ResponseTime != firstRT {
		t.Fatal("clone mutated by a later Solve on the same workspace")
	}
	if res.Classes["users"].ResponseTime == firstRT {
		t.Fatal("solver result unexpectedly not reused; zero-alloc reuse is broken")
	}
}

func TestRetuneTradeModelRejectsStructureChanges(t *testing.T) {
	demands := map[workload.RequestType]workload.Demand{
		workload.Browse: {AppServerTime: 0.005, DBTimePerCall: 0.001, DBCallsPerRequest: 1, DBLatencyPerCall: 0.002},
	}
	m, err := NewTradeModel(workload.AppServF(), workload.CaseStudyDB(), demands, workload.TypicalWorkload(10))
	if err != nil {
		t.Fatal(err)
	}
	// Dropping the latency term changes the model structure.
	noLat := map[workload.RequestType]workload.Demand{
		workload.Browse: {AppServerTime: 0.005, DBTimePerCall: 0.001, DBCallsPerRequest: 1},
	}
	if err := RetuneTradeModel(m, noLat); err == nil || !strings.Contains(err.Error(), "latency structure") {
		t.Fatalf("want latency-structure error, got %v", err)
	}
	// Unknown request types need a rebuild.
	extra := map[workload.RequestType]workload.Demand{
		workload.Buy: {AppServerTime: 0.005, DBTimePerCall: 0.001, DBCallsPerRequest: 1},
	}
	if err := RetuneTradeModel(m, extra); err == nil || !strings.Contains(err.Error(), "rebuild") {
		t.Fatalf("want rebuild error, got %v", err)
	}
	// Critical sections fold work into entry demands; retuning would
	// silently drop it.
	m2 := tradeTestModel(t, 10)
	if err := AddCriticalSection(m2, workload.AppServF().Speed, 0.001, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := RetuneTradeModel(m2, workload.CaseStudyDemands()); err == nil || !strings.Contains(err.Error(), "critical section") {
		t.Fatalf("want critical-section error, got %v", err)
	}
}

// The layered path through a retained Solver must match the one-shot
// entry point.
func TestSolverTaskLayeringMatchesSolve(t *testing.T) {
	m := tradeTestModel(t, 300)
	s := NewSolver()
	got, err := s.Solve(m, Options{TaskLayering: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Solve(m, Options{TaskLayering: true})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, got, want)
	// Flat solve right after a layered one must not reuse a stale warm
	// seed (the layered path never produces Schweitzer iterates).
	s.WarmStart = true
	gotFlat, err := s.Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantFlat, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, gotFlat, wantFlat)
}
