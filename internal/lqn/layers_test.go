package lqn

import (
	"math"
	"testing"

	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// smallPoolArch is AppServF with its servlet pool shrunk to 5 threads:
// the §2 MPL becomes the binding constraint for DB-heavy work.
func smallPoolArch() workload.ServerArch {
	a := workload.AppServF()
	a.MPL = 5
	return a
}

// dbHeavyDemands makes requests spend most of their time blocked on
// database latency (disk/network) rather than computing: little CPU
// anywhere, 4 calls × 50 ms of pure per-call latency. With a 5-thread
// pool the threads are all blocked while every CPU idles — the
// scenario only a layered solution models.
func dbHeavyDemands() map[workload.RequestType]workload.Demand {
	return map[workload.RequestType]workload.Demand{
		workload.Browse: {
			AppServerTime:     0.002,
			DBTimePerCall:     0.001,
			DBCallsPerRequest: 4,
			DBLatencyPerCall:  0.050,
		},
	}
}

func TestLayeredSolveBasics(t *testing.T) {
	// With generous pools and one customer, layered and flattened agree
	// on the no-contention response time.
	m, err := NewTradeModel(workload.AppServF(), workload.CaseStudyDB(), workload.CaseStudyDemands(), workload.TypicalWorkload(1))
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	layered, err := Solve(m, Options{TaskLayering: true})
	if err != nil {
		t.Fatal(err)
	}
	f := flat.Classes["browse"].ResponseTime
	l := layered.Classes["browse"].ResponseTime
	if math.Abs(f-l)/f > 0.05 {
		t.Fatalf("single-customer RT: layered %v vs flattened %v", l, f)
	}
	if !layered.Converged {
		t.Fatal("layered solve did not converge")
	}
}

func TestLayeredRejectsUnsupportedFeatures(t *testing.T) {
	mutations := []func(*Model){
		func(m *Model) {
			m.Classes = append(m.Classes, &Class{Name: "open", ArrivalRate: 5, Calls: []Call{{Target: "op", Mean: 1}}})
		},
		func(m *Model) { m.Classes[0].Priority = 2 },
		func(m *Model) { m.Tasks[0].Entries[0].Demand2 = 0.01 },
		func(m *Model) {
			m.Tasks[0].Entries[0].Calls = []Call{{Target: "write", Mean: 1, Kind: Async}}
		},
	}
	for i, mutate := range mutations {
		m := featureModel(10, 1, mutate)
		if _, err := Solve(m, Options{TaskLayering: true}); err == nil {
			t.Fatalf("mutation %d: layered solve should reject the feature", i)
		}
	}
}

// TestLayeredSeesThreadPoolBottleneck is the motivating scenario: a
// 5-thread pool gating DB-heavy requests from 120 clients. The thread
// pool saturates (all threads blocked on the DB while the CPU idles);
// the flattened solver, which only models processors, misses most of
// the queueing.
func TestLayeredSeesThreadPoolBottleneck(t *testing.T) {
	arch := smallPoolArch()
	demands := dbHeavyDemands()
	load := workload.Workload{{
		Class: workload.ServiceClass{
			Name:          "browse",
			Mix:           workload.Mix{workload.Browse: 1},
			ThinkTimeMean: 1.0,
		},
		Clients: 120,
	}}

	cfg := trade.Config{
		Server:   arch,
		DB:       workload.CaseStudyDB(),
		Demands:  demands,
		Load:     load,
		Seed:     53,
		WarmUp:   40,
		Duration: 160,
	}
	meas, err := trade.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	model, err := NewTradeModel(arch, workload.CaseStudyDB(), demands, load)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Solve(model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	layered, err := Solve(model, Options{TaskLayering: true})
	if err != nil {
		t.Fatal(err)
	}

	mRT := meas.MeanRT
	fRT := flat.Classes["browse"].ResponseTime
	lRT := layered.Classes["browse"].ResponseTime

	// The flattened model misses the thread-pool queue badly.
	if fRT > 0.5*mRT {
		t.Fatalf("flattened RT %v unexpectedly close to measured %v — scenario not discriminating", fRT, mRT)
	}
	// The layered model lands in the right regime.
	if lRT < 0.5*mRT || lRT > 2.0*mRT {
		t.Fatalf("layered RT %v outside [0.5,2.0]× measured %v (flattened %v)", lRT, mRT, fRT)
	}
	// And its throughput tracks the measured pool-limited ceiling.
	lX := layered.Classes["browse"].Throughput
	if math.Abs(lX-meas.Throughput)/meas.Throughput > 0.20 {
		t.Fatalf("layered X %v vs measured %v", lX, meas.Throughput)
	}
	t.Logf("measured RT %.1fms, layered %.1fms, flattened %.1fms (X: meas %.1f, layered %.1f)",
		mRT*1000, lRT*1000, fRT*1000, meas.Throughput, lX)
}

// TestLayeredMatchesFlattenedOnCaseStudy: with the case study's
// generous pools (50/20), the layered solution should stay in the same
// regime as the flattened one across loads — the pools are not the
// bottleneck there.
func TestLayeredMatchesFlattenedOnCaseStudy(t *testing.T) {
	for _, n := range []int{200, 800, 2000} {
		m, err := NewTradeModel(workload.AppServF(), workload.CaseStudyDB(), workload.CaseStudyDemands(), workload.TypicalWorkload(n))
		if err != nil {
			t.Fatal(err)
		}
		flat, err := Solve(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		layered, err := Solve(m, Options{TaskLayering: true})
		if err != nil {
			t.Fatal(err)
		}
		f := flat.Classes["browse"].Throughput
		l := layered.Classes["browse"].Throughput
		if math.Abs(f-l)/f > 0.15 {
			t.Fatalf("n=%d: layered X %v vs flattened %v", n, l, f)
		}
	}
}
