package lqn

import (
	"strings"
	"testing"

	"perfpred/internal/workload"
)

// tinyModel builds a minimal valid single-class model for mutation in
// validation tests.
func tinyModel() *Model {
	return &Model{
		Processors: []*Processor{
			{Name: "cpu", Mult: 1, Speed: 1, Sched: PS},
		},
		Tasks: []*Task{
			{Name: "app", Processor: "cpu", Mult: 10, Entries: []*Entry{
				{Name: "op", Demand: 0.01},
			}},
		},
		Classes: []*Class{
			{Name: "users", Population: 5, Think: 1, Calls: []Call{{Target: "op", Mean: 1}}},
		},
	}
}

func TestModelValidateOK(t *testing.T) {
	if err := tinyModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestModelValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Model)
		want   string
	}{
		{"empty model", func(m *Model) { m.Processors = nil }, "needs processors"},
		{"unnamed processor", func(m *Model) { m.Processors[0].Name = "" }, "needs a name"},
		{"bad processor mult", func(m *Model) { m.Processors[0].Mult = 0 }, "positive multiplicity"},
		{"bad processor speed", func(m *Model) { m.Processors[0].Speed = 0 }, "positive speed"},
		{"bad sched", func(m *Model) { m.Processors[0].Sched = "lifo" }, "unknown scheduling"},
		{"unknown processor ref", func(m *Model) { m.Tasks[0].Processor = "gpu" }, "unknown processor"},
		{"bad task mult", func(m *Model) { m.Tasks[0].Mult = 0 }, "positive multiplicity"},
		{"no entries", func(m *Model) { m.Tasks[0].Entries = nil }, "no entries"},
		{"negative demand", func(m *Model) { m.Tasks[0].Entries[0].Demand = -1 }, "negative demand"},
		{"unknown call target", func(m *Model) {
			m.Tasks[0].Entries[0].Calls = []Call{{Target: "nope", Mean: 1}}
		}, "unknown entry"},
		{"negative call mean", func(m *Model) {
			m.Tasks[0].Entries = append(m.Tasks[0].Entries, &Entry{Name: "op2", Demand: 0.01})
			m.Tasks[0].Entries[0].Calls = []Call{{Target: "op2", Mean: -1}}
		}, "negative call mean"},
		{"class no calls", func(m *Model) { m.Classes[0].Calls = nil }, "makes no calls"},
		{"class unknown target", func(m *Model) { m.Classes[0].Calls[0].Target = "nope" }, "unknown entry"},
		{"negative population", func(m *Model) { m.Classes[0].Population = -1 }, "negative population"},
		{"negative think", func(m *Model) { m.Classes[0].Think = -1 }, "negative think"},
		{"duplicate class", func(m *Model) { m.Classes = append(m.Classes, m.Classes[0]) }, "duplicate class"},
		{"duplicate entry", func(m *Model) {
			m.Tasks[0].Entries = append(m.Tasks[0].Entries, &Entry{Name: "op", Demand: 0.01})
		}, "duplicate entry"},
	}
	for _, tc := range cases {
		m := tinyModel()
		tc.mutate(m)
		err := m.Validate()
		if err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestModelRejectsCallCycle(t *testing.T) {
	m := tinyModel()
	m.Tasks[0].Entries = append(m.Tasks[0].Entries, &Entry{
		Name: "op2", Demand: 0.01, Calls: []Call{{Target: "op", Mean: 1}},
	})
	m.Tasks[0].Entries[0].Calls = []Call{{Target: "op2", Mean: 1}}
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("expected cycle error, got %v", err)
	}
}

func TestVisitRatiosChain(t *testing.T) {
	// users -> a (2x) -> b (3x per a) => visits: a=2, b=6.
	m := &Model{
		Processors: []*Processor{{Name: "cpu", Mult: 1, Speed: 1, Sched: PS}},
		Tasks: []*Task{
			{Name: "t1", Processor: "cpu", Mult: 1, Entries: []*Entry{
				{Name: "a", Demand: 0.1, Calls: []Call{{Target: "b", Mean: 3}}},
			}},
			{Name: "t2", Processor: "cpu", Mult: 1, Entries: []*Entry{
				{Name: "b", Demand: 0.2},
			}},
		},
		Classes: []*Class{
			{Name: "users", Population: 1, Think: 0, Calls: []Call{{Target: "a", Mean: 2}}},
		},
	}
	r, err := m.resolve()
	if err != nil {
		t.Fatal(err)
	}
	v := visitRatios(r, m.Classes[0])
	if v.resp["a"] != 2 || v.resp["b"] != 6 {
		t.Fatalf("visits = %v, want a=2 b=6", v.resp)
	}
	if v.util["a"] != 2 || v.util["b"] != 6 {
		t.Fatalf("util visits = %v, want a=2 b=6", v.util)
	}
	d := processorDemands(r, v)
	want := 2*0.1 + 6*0.2
	if diff := d.resp["cpu"] - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("cpu demand = %v, want %v", d.resp["cpu"], want)
	}
	if diff := d.util["cpu"] - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("cpu util demand = %v, want %v", d.util["cpu"], want)
	}
}

func TestVisitRatiosDiamond(t *testing.T) {
	// a calls b and c; b and c both call d: visits multiply and sum.
	m := &Model{
		Processors: []*Processor{{Name: "cpu", Mult: 1, Speed: 1, Sched: PS}},
		Tasks: []*Task{
			{Name: "t", Processor: "cpu", Mult: 1, Entries: []*Entry{
				{Name: "a", Demand: 0, Calls: []Call{{Target: "b", Mean: 1}, {Target: "c", Mean: 2}}},
			}},
			{Name: "u", Processor: "cpu", Mult: 1, Entries: []*Entry{
				{Name: "b", Demand: 0, Calls: []Call{{Target: "d", Mean: 4}}},
				{Name: "c", Demand: 0, Calls: []Call{{Target: "d", Mean: 5}}},
			}},
			{Name: "v", Processor: "cpu", Mult: 1, Entries: []*Entry{{Name: "d", Demand: 0}}},
		},
		Classes: []*Class{
			{Name: "users", Population: 1, Think: 0, Calls: []Call{{Target: "a", Mean: 1}}},
		},
	}
	r, err := m.resolve()
	if err != nil {
		t.Fatal(err)
	}
	v := visitRatios(r, m.Classes[0])
	// d = 1*4 + 2*5 = 14.
	if v.resp["d"] != 14 {
		t.Fatalf("visits[d] = %v, want 14", v.resp["d"])
	}
}

func TestNewTradeModelStructure(t *testing.T) {
	m, err := NewTradeModel(workload.AppServF(), workload.CaseStudyDB(), workload.CaseStudyDemands(), workload.MixedWorkload(100, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Processors) != 2 || len(m.Tasks) != 2 || len(m.Classes) != 2 {
		t.Fatalf("unexpected model shape: %d procs %d tasks %d classes",
			len(m.Processors), len(m.Tasks), len(m.Classes))
	}
	// Thread multiplicities carry the case-study MPLs.
	for _, task := range m.Tasks {
		switch task.Name {
		case "appserver":
			if task.Mult != workload.AppServerMPL {
				t.Fatalf("app task mult = %d", task.Mult)
			}
		case "dbserver":
			if task.Mult != workload.DBServerMPL {
				t.Fatalf("db task mult = %d", task.Mult)
			}
		}
	}
}

func TestNewTradeModelRejectsBadInput(t *testing.T) {
	bad := workload.AppServF()
	bad.Speed = 0
	if _, err := NewTradeModel(bad, workload.CaseStudyDB(), workload.CaseStudyDemands(), workload.TypicalWorkload(10)); err == nil {
		t.Fatal("expected error for invalid server")
	}
	if _, err := NewTradeModel(workload.AppServF(), workload.CaseStudyDB(), workload.CaseStudyDemands(), workload.Workload{{Class: workload.BrowseClass(0), Clients: -1}}); err == nil {
		t.Fatal("expected error for invalid workload")
	}
}
