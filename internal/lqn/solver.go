package lqn

import (
	"fmt"
	"sort"
	"time"
)

// Solver is a reusable solver workspace. A zero Solver is ready to
// use; NewSolver is the self-documenting constructor.
//
// Against the one-shot package-level Solve, a retained Solver adds
// three fast paths for *sequences* of related solves — the sweeps,
// calibrations and fixed-point loops that dominate the paper's §8.5
// prediction-delay cost:
//
//   - cached model resolution: topology validation, visit-ratio
//     chaining and demand folding run once per model identity (the
//     *Model pointer), so a sweep that only varies populations, think
//     times, priorities or arrival rates skips straight to the MVA
//     kernel;
//   - a flat, reusable MVA workspace: steady-state solves on a
//     same-shaped model perform zero heap allocations;
//   - warm starts (opt-in via WarmStart): each converged solve seeds
//     the next one's queue-length iterate, collapsing adjacent-
//     population solves to a few sweeps.
//
// Mutating a model's structure — tasks, entries, calls, the set of
// classes, or a class switching between open and closed — between
// solves on the same pointer requires Reset (or a fresh Solver).
// Changing entry demands or call means in place (see RetuneTradeModel)
// requires InvalidateDemands. Population, Think, ArrivalRate and
// Priority edits need nothing: they are re-read on every solve.
//
// The returned *Result is owned by the Solver and overwritten by the
// next Solve call; Clone it to retain. A Solver must not be used from
// multiple goroutines concurrently.
type Solver struct {
	// WarmStart seeds the Schweitzer iteration from the previous
	// converged solution whenever the network shape matches, instead
	// of the cold uniform spread. The fixed point — and therefore the
	// solution, up to the convergence tolerance — is unchanged; the
	// iteration count drops sharply on adjacent-population sweeps.
	WarmStart bool

	model *Model
	res   *resolved
	plan  *solvePlan

	ws  mvaWorkspace
	out Result
}

// NewSolver returns an empty solver workspace.
func NewSolver() *Solver { return &Solver{} }

// solvePlan caches everything derivable from the model's structure:
// the open/closed class split, per-class per-processor demands, and
// the flattened station matrices the MVA kernel consumes. Populations,
// think times, priorities and arrival rates are deliberately absent —
// they are re-read on every solve, which is what makes grid sweeps
// cheap.
type solvePlan struct {
	closed []*Class
	open   []*Class
	isOpen []bool // aligned with Model.Classes; detects open/closed flips

	demandsOf map[string]classDemands

	// Stations in deterministic (sorted processor name) order, with
	// the per-class demand matrices flattened at stride K = len(closed).
	procNames  []string
	stQueueing []bool
	stServers  []int
	stDemand   []float64 // I×K caller-visible demand
	stExtra    []float64 // I×K non-response (phase-2/async) demand
}

// Reset forgets all cached state, including the warm-start seed. Call
// it after mutating a model's structure in place.
func (s *Solver) Reset() {
	s.model, s.res, s.plan = nil, nil, nil
	s.ws.invalidateWarm()
}

// InvalidateDemands drops the cached demand folding — visit ratios and
// station demand matrices — while keeping the validated topology. Call
// it after changing entry demands or call means in place (e.g. via
// RetuneTradeModel); it is what makes fixed-point loops that re-tune
// demands every iteration cheap.
func (s *Solver) InvalidateDemands() { s.plan = nil }

// prepare ensures the cached resolution and plan match the model.
func (s *Solver) prepare(m *Model) error {
	if s.model != m {
		r, err := m.resolve()
		if err != nil {
			return err
		}
		s.model, s.res, s.plan = m, r, nil
	}
	if s.plan != nil {
		// A class flipping between open and closed changes the network
		// shape; rebuild rather than mis-solve.
		for c, cl := range m.Classes {
			if cl.Open() != s.plan.isOpen[c] {
				s.plan = nil
				break
			}
		}
	}
	if s.plan == nil {
		s.plan = buildPlan(m, s.res)
		s.rebuildResult()
	}
	return nil
}

// buildPlan folds the resolved model into the solver's flat form.
func buildPlan(m *Model, r *resolved) *solvePlan {
	p := &solvePlan{
		isOpen:    make([]bool, len(m.Classes)),
		demandsOf: make(map[string]classDemands, len(m.Classes)),
	}
	for c, cl := range m.Classes {
		p.isOpen[c] = cl.Open()
		if cl.Open() {
			p.open = append(p.open, cl)
		} else {
			p.closed = append(p.closed, cl)
		}
		p.demandsOf[cl.Name] = processorDemands(r, visitRatios(r, cl))
	}

	p.procNames = make([]string, 0, len(m.Processors))
	for _, proc := range m.Processors {
		p.procNames = append(p.procNames, proc.Name)
	}
	sort.Strings(p.procNames)

	K := len(p.closed)
	I := len(p.procNames)
	p.stQueueing = make([]bool, I)
	p.stServers = make([]int, I)
	p.stDemand = make([]float64, I*K)
	p.stExtra = make([]float64, I*K)
	for i, name := range p.procNames {
		proc := r.processors[name]
		p.stQueueing[i] = proc.Sched != Delay
		p.stServers[i] = proc.Mult
		for k, cl := range p.closed {
			d := p.demandsOf[cl.Name]
			p.stDemand[i*K+k] = d.resp[name]
			p.stExtra[i*K+k] = d.util[name] - d.resp[name]
		}
	}
	return p
}

// rebuildResult re-allocates the reused Result's maps for the current
// plan. On plan cache hits the key sets are identical, so Solve just
// overwrites values — zero allocations.
func (s *Solver) rebuildResult() {
	p := s.plan
	s.out.Classes = make(map[string]ClassResult, len(p.closed)+len(p.open))
	s.out.ProcessorUtil = make(map[string]float64, len(p.procNames))
	s.out.ClassProcessorUtil = make(map[string]map[string]float64, len(p.procNames))
	for _, name := range p.procNames {
		s.out.ClassProcessorUtil[name] = make(map[string]float64, len(p.closed)+len(p.open))
	}
}

// Solve evaluates the model and returns steady-state predictions. The
// result is owned by the Solver and overwritten by the next call;
// Clone it to retain across solves.
func (s *Solver) Solve(m *Model, opt Options) (*Result, error) {
	start := time.Now()
	if opt.Damping < 0 || opt.Damping >= 1 {
		return nil, fmt.Errorf("lqn: damping %v outside [0,1)", opt.Damping)
	}
	if err := s.prepare(m); err != nil {
		return nil, err
	}
	if opt.TaskLayering {
		// The layered fixed point keeps its own state; it shares the
		// cached resolution but not the MVA workspace.
		s.ws.invalidateWarm()
		res, err := solveLayered(m, s.res, opt)
		if err != nil {
			return nil, err
		}
		res.SolveTime = time.Since(start)
		metrics.Load().record(res.Iterations, res.Converged, false, false)
		return res, nil
	}

	p := s.plan
	ws := &s.ws
	K := len(p.closed)
	I := len(p.procNames)

	// Per-solve parameters: the knobs a sweep is allowed to turn.
	ws.pop = growI(ws.pop, K)
	ws.think = growF(ws.think, K)
	ws.prio = growI(ws.prio, K)
	for k, cl := range p.closed {
		if cl.Population < 0 {
			return nil, fmt.Errorf("lqn: class %q has negative population", cl.Name)
		}
		if cl.Think < 0 {
			return nil, fmt.Errorf("lqn: class %q has negative think time", cl.Name)
		}
		ws.pop[k], ws.think[k], ws.prio[k] = cl.Population, cl.Think, cl.Priority
	}

	// Open-class utilisation per station; validates stability.
	ws.openUtil = growF(ws.openUtil, I)
	for i := range ws.openUtil {
		ws.openUtil[i] = 0
	}
	for _, cl := range p.open {
		if cl.ArrivalRate < 0 {
			return nil, fmt.Errorf("lqn: class %q has negative arrival rate", cl.Name)
		}
		d := p.demandsOf[cl.Name]
		for i, name := range p.procNames {
			if !p.stQueueing[i] {
				continue
			}
			ws.openUtil[i] += cl.ArrivalRate * d.util[name] / float64(p.stServers[i])
		}
	}
	for i, name := range p.procNames {
		if ws.openUtil[i] >= 1 {
			return nil, fmt.Errorf("lqn: open classes saturate processor %q (utilisation %.3f)", name, ws.openUtil[i])
		}
	}

	warmEligible := false
	switch {
	case K == 0:
		// Purely open model: no closed iteration needed.
		ws.q = growF(ws.q, 0)
		ws.U = growF(ws.U, I)
		copy(ws.U, ws.openUtil)
		ws.iterations, ws.converged, ws.usedWarm = 0, true, false
		ws.invalidateWarm()
	case opt.ExactMVA:
		if err := p.exactApplicable(ws); err != nil {
			return nil, err
		}
		if err := ws.solveExact(p); err != nil {
			return nil, err
		}
	default:
		warmEligible = s.WarmStart
		if err := ws.solveSchweitzer(p, opt.Convergence, opt.MaxIterations, opt.Damping, s.WarmStart); err != nil {
			return nil, err
		}
	}

	out := &s.out
	out.Iterations, out.Converged = ws.iterations, ws.converged
	for k, cl := range p.closed {
		out.Classes[cl.Name] = ClassResult{ResponseTime: ws.R[k], Throughput: ws.X[k]}
	}

	// Open-class response times by the standard mixed-network
	// approximation: the arriving open request sees the closed queue
	// on top of the open load.
	if len(p.open) > 0 {
		ws.closedQ = growF(ws.closedQ, I)
		for i := 0; i < I; i++ {
			var total float64
			for k := 0; k < K; k++ {
				total += ws.q[i*K+k]
			}
			ws.closedQ[i] = total
		}
		for _, cl := range p.open {
			d := p.demandsOf[cl.Name]
			var rt float64
			for i, name := range p.procNames {
				dr := d.resp[name]
				if dr == 0 {
					continue
				}
				if !p.stQueueing[i] {
					rt += dr
					continue
				}
				c := float64(p.stServers[i])
				queueing := dr / c
				residual := dr * (c - 1) / c
				rt += queueing*(1+ws.closedQ[i])/(1-ws.openUtil[i]) + residual
			}
			out.Classes[cl.Name] = ClassResult{ResponseTime: rt, Throughput: cl.ArrivalRate}
		}
	}

	for i, name := range p.procNames {
		out.ProcessorUtil[name] = ws.U[i]
		per := out.ClassProcessorUtil[name]
		for k, cl := range p.closed {
			per[cl.Name] = ws.X[k] * (p.stDemand[i*K+k] + p.stExtra[i*K+k]) / float64(p.stServers[i])
		}
		for _, cl := range p.open {
			d := p.demandsOf[cl.Name]
			per[cl.Name] = cl.ArrivalRate * d.util[name] / float64(p.stServers[i])
		}
	}
	out.SolveTime = time.Since(start)
	metrics.Load().record(ws.iterations, ws.converged, warmEligible, ws.usedWarm)
	return out, nil
}

// Clone returns a deep copy of the result, detached from any reusing
// Solver.
func (r *Result) Clone() *Result {
	out := *r
	out.Classes = make(map[string]ClassResult, len(r.Classes))
	for k, v := range r.Classes {
		out.Classes[k] = v
	}
	out.ProcessorUtil = make(map[string]float64, len(r.ProcessorUtil))
	for k, v := range r.ProcessorUtil {
		out.ProcessorUtil[k] = v
	}
	out.ClassProcessorUtil = make(map[string]map[string]float64, len(r.ClassProcessorUtil))
	for k, per := range r.ClassProcessorUtil {
		inner := make(map[string]float64, len(per))
		for ck, cv := range per {
			inner[ck] = cv
		}
		out.ClassProcessorUtil[k] = inner
	}
	return &out
}
