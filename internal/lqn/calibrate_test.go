package lqn

import (
	"math"
	"strings"
	"testing"

	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

func TestCalibrateDemandUtilisationLaw(t *testing.T) {
	// X=200/s at 90% app CPU on a speed-1 server → 4.5 ms per request.
	d, err := CalibrateDemand(CalibrationRun{
		Throughput:        200,
		AppUtilization:    0.90,
		DBUtilization:     0.20,
		DBCallsPerRequest: 2,
		AppSpeed:          1,
		DBSpeed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.AppServerTime-0.0045) > 1e-12 {
		t.Fatalf("app time = %v, want 0.0045", d.AppServerTime)
	}
	// Per-request DB time 1 ms over 2 calls → 0.5 ms per call.
	if math.Abs(d.DBTimePerCall-0.0005) > 1e-12 {
		t.Fatalf("db per call = %v, want 0.0005", d.DBTimePerCall)
	}
}

func TestCalibrateDemandErrors(t *testing.T) {
	base := CalibrationRun{Throughput: 100, AppUtilization: 0.5, DBUtilization: 0.1, DBCallsPerRequest: 1, AppSpeed: 1, DBSpeed: 1}
	cases := []struct {
		mutate func(*CalibrationRun)
		want   string
	}{
		{func(r *CalibrationRun) { r.Throughput = 0 }, "positive throughput"},
		{func(r *CalibrationRun) { r.AppUtilization = 0 }, "app utilisation"},
		{func(r *CalibrationRun) { r.AppUtilization = 1.5 }, "app utilisation"},
		{func(r *CalibrationRun) { r.DBUtilization = -0.1 }, "db utilisation"},
		{func(r *CalibrationRun) { r.AppSpeed = 0 }, "positive speeds"},
	}
	for i, tc := range cases {
		run := base
		tc.mutate(&run)
		_, err := CalibrateDemand(run)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("case %d: err = %v, want mention of %q", i, err, tc.want)
		}
	}
}

func TestScaleDemandToServer(t *testing.T) {
	d := workload.Demand{AppServerTime: 0.004, DBTimePerCall: 0.001, DBCallsPerRequest: 2}
	scaled, err := ScaleDemandToServer(d, 1.0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scaled.AppServerTime-0.008) > 1e-12 {
		t.Fatalf("scaled app time = %v, want 0.008 (half-speed server)", scaled.AppServerTime)
	}
	if scaled.DBTimePerCall != d.DBTimePerCall || scaled.DBCallsPerRequest != d.DBCallsPerRequest {
		t.Fatal("db demand must be unchanged by app-server scaling")
	}
	if _, err := ScaleDemandToServer(d, 0, 1); err == nil {
		t.Fatal("expected error for zero speed")
	}
}

// TestCalibrateFromSimulator closes the loop of §5: run the simulated
// testbed with a single request type, calibrate demands from the
// observed throughput and utilisations, and verify the recovered
// demands match the simulator's ground truth — our reproduction of
// Table 2.
func TestCalibrateFromSimulator(t *testing.T) {
	truth := workload.CaseStudyDemands()
	for _, rt := range []workload.RequestType{workload.Browse, workload.Buy} {
		class := workload.ServiceClass{
			Name:          "calib",
			Mix:           workload.Mix{rt: 1},
			ThinkTimeMean: workload.ThinkTimeMean,
		}
		// Load the server near (but below) saturation for a clean
		// utilisation-law signal.
		res, err := trade.Measure(workload.AppServF(),
			workload.Workload{{Class: class, Clients: 1100}},
			trade.MeasureOptions{Seed: 5, WarmUp: 40, Duration: 160})
		if err != nil {
			t.Fatal(err)
		}
		got, err := CalibrateDemand(CalibrationRun{
			Throughput:        res.Throughput,
			AppUtilization:    res.AppUtilization,
			DBUtilization:     res.DBUtilization,
			DBCallsPerRequest: truth[rt].DBCallsPerRequest,
			AppSpeed:          1,
			DBSpeed:           1,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := truth[rt]
		if math.Abs(got.AppServerTime-want.AppServerTime)/want.AppServerTime > 0.05 {
			t.Fatalf("%s app demand calibrated %v, truth %v", rt, got.AppServerTime, want.AppServerTime)
		}
		if math.Abs(got.DBTimePerCall-want.DBTimePerCall)/want.DBTimePerCall > 0.10 {
			t.Fatalf("%s db demand calibrated %v, truth %v", rt, got.DBTimePerCall, want.DBTimePerCall)
		}
	}
}
