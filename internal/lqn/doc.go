// Package lqn is a from-scratch layered queuing network modelling
// language and approximate analytic solver, reproducing the role the
// Layered Queuing Network Solver (LQNS) plays in the paper (§5).
//
// A layered queuing model describes software servers explicitly:
// processors execute tasks; tasks expose entries; entries consume
// processor demand and make synchronous calls to entries of
// lower-layer tasks; reference tasks at the top represent closed
// client populations with think times. This matches the paper's
// application model — client populations calling application-server
// entries that call database entries, each tier time-sharing its
// processor behind FIFO queues.
//
// The solver flattens each service class's call graph into visit
// ratios over the processors and solves the resulting multiclass
// closed queuing network with Schweitzer's approximate mean value
// analysis, iterating to a configurable convergence criterion (the
// paper runs LQNS with a 20 ms criterion). Outputs per service class
// are mean response time, throughput and per-processor/task
// utilisations — the same metric set the paper obtains from LQNS, and
// with the same structural limitation that only steady-state mean
// values are produced (§8.2).
//
// Calibration follows §5: per-request-type demands are estimated from
// a dedicated run's throughput and CPU utilisations, and new server
// architectures are modelled by scaling established demands with the
// benchmarked request-processing-speed ratio.
package lqn
