package lqn

import (
	"errors"
	"fmt"
)

// MaxClientsSearch finds the largest population of the named class for
// which the class's predicted mean response time stays at or below
// goalRT seconds, holding every other class fixed. The layered queuing
// method cannot invert its model — "in the current layered queuing
// solver the number of clients can only be an input so it is necessary
// to search" (§8.2) — so this performs that search: an exponential
// probe for an infeasible upper bound followed by binary search. It
// returns the population and the number of solver evaluations spent,
// which is the cost the paper warns about in §8.5.
func MaxClientsSearch(m *Model, className string, goalRT float64, limit int, opt Options) (clients, evaluations int, err error) {
	if goalRT <= 0 {
		return 0, 0, errors.New("lqn: goal response time must be positive")
	}
	if limit <= 0 {
		limit = 1 << 20
	}
	var target *Class
	for _, cl := range m.Classes {
		if cl.Name == className {
			target = cl
			break
		}
	}
	if target == nil {
		return 0, 0, fmt.Errorf("lqn: unknown class %q", className)
	}
	orig := target.Population
	defer func() { target.Population = orig }()

	// The probe sequence solves the same model dozens of times varying
	// one population; a warm-started solver workspace caches the
	// resolution and seeds each solve from the last, which is where the
	// §8.5 search cost actually goes.
	solver := NewSolver()
	solver.WarmStart = true
	evalAt := func(n int) (bool, error) {
		target.Population = n
		res, err := solver.Solve(m, opt)
		if err != nil {
			return false, err
		}
		evaluations++
		return res.Classes[className].ResponseTime <= goalRT, nil
	}

	ok, err := evalAt(1)
	if err != nil {
		return 0, evaluations, err
	}
	if !ok {
		return 0, evaluations, nil
	}
	// Exponential probe for the first infeasible population.
	lo, hi := 1, 2
	for hi <= limit {
		ok, err := evalAt(hi)
		if err != nil {
			return 0, evaluations, err
		}
		if !ok {
			break
		}
		lo = hi
		hi *= 2
	}
	if hi > limit {
		hi = limit + 1
	}
	// Binary search in (lo feasible, hi infeasible].
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		ok, err := evalAt(mid)
		if err != nil {
			return 0, evaluations, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, evaluations, nil
}
