package lqn

import (
	"errors"
	"fmt"
	"sort"
)

// Scheduling selects a processor's queueing discipline.
type Scheduling string

const (
	// PS is processor sharing — the time-sharing servers of the
	// paper's platform.
	PS Scheduling = "ps"
	// FCFS is first-come-first-served — the paper's database disk is
	// "a processor that can only process one request at a time".
	FCFS Scheduling = "fcfs"
	// Delay is an infinite-server (pure delay) resource.
	Delay Scheduling = "delay"
)

// Processor is a hardware resource executing task demands.
type Processor struct {
	// Name labels the processor.
	Name string
	// Mult is the number of identical servers (1 for a single CPU).
	Mult int
	// Speed is a rate multiplier applied to all demands executed here:
	// entry demands are specified on a speed-1.0 reference.
	Speed float64
	// Sched is the queueing discipline.
	Sched Scheduling
}

// Task is a software server: a pool of Mult identical threads running
// on a processor and accepting requests via its entries.
type Task struct {
	// Name labels the task.
	Name string
	// Processor names the processor this task runs on.
	Processor string
	// Mult is the thread pool size (the "requests processed at the
	// same time via time-sharing").
	Mult int
	// Entries are the task's service entry points.
	Entries []*Entry
}

// Entry is one operation of a task: a processor demand plus
// synchronous calls to lower-layer entries.
type Entry struct {
	// Name labels the entry; entry names are global in a model.
	Name string
	// Demand is the mean phase-1 processor time (seconds at speed 1.0)
	// the entry consumes per invocation, before the reply is sent.
	// Demands are exponentially distributed in the underlying model,
	// per the paper (§5).
	Demand float64
	// Demand2 is the mean second-phase processor time: work the entry
	// performs *after* replying to its caller ("service with a second
	// phase", one of the language features §5 lists). It loads the
	// processor but does not extend the caller's response time.
	Demand2 float64
	// Calls are the entry's mean call counts.
	Calls []Call
}

// CallKind selects a call's interaction semantics.
type CallKind string

const (
	// Sync is a rendezvous: the caller blocks until the target
	// replies. The empty string means Sync.
	Sync CallKind = "sync"
	// Async is send-no-reply: the request loads the target but the
	// caller continues immediately ("asynchronous calls", §5).
	Async CallKind = "async"
	// Forward hands the request on: the target (and its chain) must
	// finish before the original caller's reply, like a synchronous
	// call, but the forwarding task's thread is released ("the
	// forwarding of requests onto another queue", §5).
	Forward CallKind = "forward"
)

// Call is a mean number of requests to a target entry per invocation
// of the calling entry. Fractional means are allowed ("browse requests
// make 1.14 database requests on average").
type Call struct {
	// Target names the called entry.
	Target string
	// Mean is the mean calls per invocation.
	Mean float64
	// Kind is the interaction semantics; empty means Sync.
	Kind CallKind
}

// kind returns the call's effective kind with the Sync default.
func (c Call) kind() CallKind {
	if c.Kind == "" {
		return Sync
	}
	return c.Kind
}

// Class is a reference task. A closed class is a population of clients
// that issues one top-level request at a time, thinks, and repeats; an
// open class is a Poisson stream of requests at a fixed arrival rate
// ("some or all clients sending requests at a constant rate", §8.1).
// Setting ArrivalRate > 0 makes the class open; Population must then
// be 0. Mixing open and closed classes in one model gives the mixed
// networks §5 lists.
type Class struct {
	// Name labels the service class.
	Name string
	// Population is the number of closed clients (0 for open classes).
	Population int
	// Think is the mean exponential think time between a response and
	// the next request, seconds (closed classes only).
	Think float64
	// ArrivalRate is the open arrival rate in requests/second (0 for
	// closed classes).
	ArrivalRate float64
	// Priority orders classes at priority-scheduled contention points:
	// higher values pre-empt lower ones ("priority queuing
	// disciplines", §5). Equal priorities (the default 0) share
	// fairly.
	Priority int
	// Calls are the top-level entries invoked per request (normally a
	// single call with mean 1, but mixes are expressible).
	Calls []Call
}

// Open reports whether the class is an open arrival stream.
func (c *Class) Open() bool { return c.ArrivalRate > 0 }

// Model is a complete layered queuing network.
type Model struct {
	Processors []*Processor
	Tasks      []*Task
	Classes    []*Class
}

// entry lookup and processor lookup maps, built during validation.
type resolved struct {
	entries    map[string]*Entry
	entryTask  map[string]*Task
	processors map[string]*Processor
	// entryNames is every entry name in sorted order, so demand folding
	// and layered solving iterate entries deterministically instead of
	// in map order.
	entryNames []string
}

// Validate checks structural integrity: unique names, resolvable
// references, positive demands/multiplicities and an acyclic call
// graph. It returns the first problem found.
func (m *Model) Validate() error {
	_, err := m.resolve()
	return err
}

func (m *Model) resolve() (*resolved, error) {
	if len(m.Processors) == 0 || len(m.Tasks) == 0 || len(m.Classes) == 0 {
		return nil, errors.New("lqn: model needs processors, tasks and classes")
	}
	r := &resolved{
		entries:    make(map[string]*Entry),
		entryTask:  make(map[string]*Task),
		processors: make(map[string]*Processor),
	}
	for _, p := range m.Processors {
		if p.Name == "" {
			return nil, errors.New("lqn: processor needs a name")
		}
		if _, dup := r.processors[p.Name]; dup {
			return nil, fmt.Errorf("lqn: duplicate processor %q", p.Name)
		}
		if p.Mult <= 0 {
			return nil, fmt.Errorf("lqn: processor %q needs positive multiplicity", p.Name)
		}
		if p.Speed <= 0 {
			return nil, fmt.Errorf("lqn: processor %q needs positive speed", p.Name)
		}
		switch p.Sched {
		case PS, FCFS, Delay:
		default:
			return nil, fmt.Errorf("lqn: processor %q has unknown scheduling %q", p.Name, p.Sched)
		}
		r.processors[p.Name] = p
	}
	for _, t := range m.Tasks {
		if t.Name == "" {
			return nil, errors.New("lqn: task needs a name")
		}
		if t.Mult <= 0 {
			return nil, fmt.Errorf("lqn: task %q needs positive multiplicity", t.Name)
		}
		if _, ok := r.processors[t.Processor]; !ok {
			return nil, fmt.Errorf("lqn: task %q references unknown processor %q", t.Name, t.Processor)
		}
		if len(t.Entries) == 0 {
			return nil, fmt.Errorf("lqn: task %q has no entries", t.Name)
		}
		for _, e := range t.Entries {
			if e.Name == "" {
				return nil, fmt.Errorf("lqn: task %q has an unnamed entry", t.Name)
			}
			if _, dup := r.entries[e.Name]; dup {
				return nil, fmt.Errorf("lqn: duplicate entry %q", e.Name)
			}
			if e.Demand < 0 {
				return nil, fmt.Errorf("lqn: entry %q has negative demand", e.Name)
			}
			if e.Demand2 < 0 {
				return nil, fmt.Errorf("lqn: entry %q has negative second-phase demand", e.Name)
			}
			r.entries[e.Name] = e
			r.entryTask[e.Name] = t
		}
	}
	for _, t := range m.Tasks {
		for _, e := range t.Entries {
			for _, c := range e.Calls {
				if _, ok := r.entries[c.Target]; !ok {
					return nil, fmt.Errorf("lqn: entry %q calls unknown entry %q", e.Name, c.Target)
				}
				if c.Mean < 0 {
					return nil, fmt.Errorf("lqn: entry %q has negative call mean to %q", e.Name, c.Target)
				}
				switch c.kind() {
				case Sync, Async, Forward:
				default:
					return nil, fmt.Errorf("lqn: entry %q has unknown call kind %q", e.Name, c.Kind)
				}
			}
		}
	}
	seen := make(map[string]bool)
	for _, cl := range m.Classes {
		if cl.Name == "" {
			return nil, errors.New("lqn: class needs a name")
		}
		if seen[cl.Name] {
			return nil, fmt.Errorf("lqn: duplicate class %q", cl.Name)
		}
		seen[cl.Name] = true
		if cl.Population < 0 {
			return nil, fmt.Errorf("lqn: class %q has negative population", cl.Name)
		}
		if cl.Think < 0 {
			return nil, fmt.Errorf("lqn: class %q has negative think time", cl.Name)
		}
		if cl.ArrivalRate < 0 {
			return nil, fmt.Errorf("lqn: class %q has negative arrival rate", cl.Name)
		}
		if cl.Open() && cl.Population != 0 {
			return nil, fmt.Errorf("lqn: class %q is open (arrival rate %v) but also has population %d", cl.Name, cl.ArrivalRate, cl.Population)
		}
		for _, c := range cl.Calls {
			if c.kind() == Async {
				return nil, fmt.Errorf("lqn: class %q makes an asynchronous top-level call; reference calls must await replies", cl.Name)
			}
		}
		if len(cl.Calls) == 0 {
			return nil, fmt.Errorf("lqn: class %q makes no calls", cl.Name)
		}
		for _, c := range cl.Calls {
			if _, ok := r.entries[c.Target]; !ok {
				return nil, fmt.Errorf("lqn: class %q calls unknown entry %q", cl.Name, c.Target)
			}
			if c.Mean < 0 {
				return nil, fmt.Errorf("lqn: class %q has negative call mean", cl.Name)
			}
		}
	}
	if err := m.checkAcyclic(r); err != nil {
		return nil, err
	}
	r.entryNames = make([]string, 0, len(r.entries))
	for name := range r.entries {
		r.entryNames = append(r.entryNames, name)
	}
	sort.Strings(r.entryNames)
	return r, nil
}

// checkAcyclic rejects call cycles: layered queuing requires a
// strictly layered (acyclic) call graph.
func (m *Model) checkAcyclic(r *resolved) error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(name string) error
	visit = func(name string) error {
		switch color[name] {
		case grey:
			return fmt.Errorf("lqn: call cycle through entry %q", name)
		case black:
			return nil
		}
		color[name] = grey
		for _, c := range r.entries[name].Calls {
			if err := visit(c.Target); err != nil {
				return err
			}
		}
		color[name] = black
		return nil
	}
	for name := range r.entries {
		if err := visit(name); err != nil {
			return err
		}
	}
	return nil
}
