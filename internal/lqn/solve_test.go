package lqn

import (
	"math"
	"testing"

	"perfpred/internal/workload"
)

func solveTiny(t *testing.T, pop int, think float64, opt Options) *Result {
	t.Helper()
	m := tinyModel()
	m.Classes[0].Population = pop
	m.Classes[0].Think = think
	res, err := Solve(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSolveSingleCustomerExact(t *testing.T) {
	// One customer, no contention: R = D, X = 1/(Z+D).
	res := solveTiny(t, 1, 1, Options{})
	cr := res.Classes["users"]
	if math.Abs(cr.ResponseTime-0.01) > 1e-9 {
		t.Fatalf("R = %v, want 0.01", cr.ResponseTime)
	}
	want := 1.0 / 1.01
	if math.Abs(cr.Throughput-want) > 1e-6 {
		t.Fatalf("X = %v, want %v", cr.Throughput, want)
	}
	if !res.Converged {
		t.Fatal("solver did not converge")
	}
}

func TestSolveZeroPopulation(t *testing.T) {
	res := solveTiny(t, 0, 1, Options{})
	cr := res.Classes["users"]
	if cr.Throughput != 0 || cr.ResponseTime != 0 {
		t.Fatalf("zero population should predict zeros, got %+v", cr)
	}
}

func TestSolveSaturationAsymptotics(t *testing.T) {
	// As N grows, X -> 1/Dmax and R -> N*Dmax - Z.
	const D, Z = 0.01, 1.0
	res := solveTiny(t, 2000, Z, Options{})
	cr := res.Classes["users"]
	if math.Abs(cr.Throughput-1/D)/(1/D) > 0.01 {
		t.Fatalf("saturated X = %v, want ≈%v", cr.Throughput, 1/D)
	}
	wantR := 2000*D - Z
	if math.Abs(cr.ResponseTime-wantR)/wantR > 0.02 {
		t.Fatalf("saturated R = %v, want ≈%v", cr.ResponseTime, wantR)
	}
	if u := res.ProcessorUtil["cpu"]; math.Abs(u-1) > 0.01 {
		t.Fatalf("saturated utilisation = %v, want ≈1", u)
	}
}

func TestSolveSchweitzerTracksExactMVA(t *testing.T) {
	// The ablation pair: Schweitzer's approximation stays within a few
	// percent of the exact single-class recursion across loads.
	for _, pop := range []int{1, 5, 20, 80, 200, 800} {
		approx := solveTiny(t, pop, 1, Options{})
		exact := solveTiny(t, pop, 1, Options{ExactMVA: true})
		a, e := approx.Classes["users"], exact.Classes["users"]
		if e.ResponseTime == 0 {
			t.Fatalf("exact RT zero at pop %d", pop)
		}
		// Schweitzer deviates most near the saturation knee; ~10% is
		// its documented worst case on balanced networks.
		if math.Abs(a.ResponseTime-e.ResponseTime)/e.ResponseTime > 0.10 {
			t.Fatalf("pop %d: approx RT %v vs exact %v", pop, a.ResponseTime, e.ResponseTime)
		}
	}
}

func TestSolveExactMVARejectsMulticlass(t *testing.T) {
	m, err := NewTradeModel(workload.AppServF(), workload.CaseStudyDB(), workload.CaseStudyDemands(), workload.MixedWorkload(100, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(m, Options{ExactMVA: true}); err == nil {
		t.Fatal("exact MVA must reject multiclass models")
	}
}

func TestSolveTradeLightLoad(t *testing.T) {
	res, err := PredictTrade(workload.AppServF(), workload.CaseStudyDemands(), workload.TypicalWorkload(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := workload.CaseStudyDemands()[workload.Browse]
	want := d.AppServerTime + d.TotalDBTime()
	got := res.Classes["browse"].ResponseTime
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("light-load RT = %v, want ≈%v", got, want)
	}
}

func TestSolveTradeSaturation(t *testing.T) {
	// At 2500 clients AppServF is far past saturation: X ≈ 186/s and
	// RT ≈ N/X − Z.
	res, err := PredictTrade(workload.AppServF(), workload.CaseStudyDemands(), workload.TypicalWorkload(2500), Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := res.Classes["browse"].Throughput
	if math.Abs(x-workload.MaxThroughputF)/workload.MaxThroughputF > 0.02 {
		t.Fatalf("saturated X = %v, want ≈186", x)
	}
	wantR := 2500/workload.MaxThroughputF - workload.ThinkTimeMean
	gotR := res.Classes["browse"].ResponseTime
	if math.Abs(gotR-wantR)/wantR > 0.05 {
		t.Fatalf("saturated RT = %v, want ≈%v", gotR, wantR)
	}
}

func TestSolveTradeSpeedScaling(t *testing.T) {
	// The same workload saturates AppServS at 86/s and AppServVF at
	// 320/s — the processor speed carries the benchmark ratio.
	for _, tc := range []struct {
		server workload.ServerArch
		want   float64
	}{
		{workload.AppServS(), workload.MaxThroughputS},
		{workload.AppServVF(), workload.MaxThroughputVF},
	} {
		res, err := PredictTrade(tc.server, workload.CaseStudyDemands(), workload.TypicalWorkload(4000), Options{})
		if err != nil {
			t.Fatal(err)
		}
		x := res.TotalThroughput()
		if math.Abs(x-tc.want)/tc.want > 0.02 {
			t.Fatalf("%s saturated X = %v, want ≈%v", tc.server.Name, x, tc.want)
		}
	}
}

func TestSolveTradeMulticlass(t *testing.T) {
	res, err := PredictTrade(workload.AppServF(), workload.CaseStudyDemands(), workload.MixedWorkload(800, 0.25), Options{})
	if err != nil {
		t.Fatal(err)
	}
	buy := res.Classes["buy"]
	browse := res.Classes["browse"]
	if buy.ResponseTime <= browse.ResponseTime {
		t.Fatalf("buy RT %v should exceed browse RT %v", buy.ResponseTime, browse.ResponseTime)
	}
	// Throughput split tracks the population split.
	frac := buy.Throughput / (buy.Throughput + browse.Throughput)
	if math.Abs(frac-0.25) > 0.03 {
		t.Fatalf("buy throughput share = %v, want ≈0.25", frac)
	}
	// Per-class processor utilisation decomposes the total.
	var sum float64
	for _, u := range res.ClassProcessorUtil["appcpu"] {
		sum += u
	}
	if math.Abs(sum-res.ProcessorUtil["appcpu"]) > 1e-9 {
		t.Fatalf("class utilisations sum %v != total %v", sum, res.ProcessorUtil["appcpu"])
	}
}

func TestSolveMeanResponseTimeWeighting(t *testing.T) {
	res := &Result{Classes: map[string]ClassResult{
		"a": {ResponseTime: 1, Throughput: 3},
		"b": {ResponseTime: 2, Throughput: 1},
	}}
	want := (1*3 + 2*1) / 4.0
	if got := res.MeanResponseTime(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("weighted mean RT = %v, want %v", got, want)
	}
	empty := &Result{Classes: map[string]ClassResult{}}
	if empty.MeanResponseTime() != 0 {
		t.Fatal("empty result should report 0")
	}
}

func TestSolveConvergenceCriterionAffectsIterations(t *testing.T) {
	coarse := solveTiny(t, 500, 1, Options{Convergence: 0.02})
	fine := solveTiny(t, 500, 1, Options{Convergence: 1e-9})
	if coarse.Iterations > fine.Iterations {
		t.Fatalf("coarse criterion used more iterations (%d) than fine (%d)",
			coarse.Iterations, fine.Iterations)
	}
	if !fine.Converged {
		t.Fatal("fine solve did not converge")
	}
}

func TestSolveTimeRecorded(t *testing.T) {
	res := solveTiny(t, 100, 1, Options{})
	if res.SolveTime <= 0 {
		t.Fatal("solve time not recorded")
	}
}
