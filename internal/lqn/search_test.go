package lqn

import (
	"testing"

	"perfpred/internal/workload"
)

func TestMaxClientsSearchBoundary(t *testing.T) {
	m, err := NewTradeModel(workload.AppServF(), workload.CaseStudyDB(), workload.CaseStudyDemands(), workload.TypicalWorkload(1))
	if err != nil {
		t.Fatal(err)
	}
	const goal = 0.3 // 300 ms, one of the §9.1 SLA goals
	n, evals, err := MaxClientsSearch(m, "browse", goal, 100000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("max clients = %d, want positive", n)
	}
	if evals < 2 {
		t.Fatalf("evaluations = %d; search must cost multiple solver runs (§8.5)", evals)
	}
	// Verify the boundary: n feasible, n+1 infeasible.
	check := func(pop int) float64 {
		m.Classes[0].Population = pop
		res, err := Solve(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Classes["browse"].ResponseTime
	}
	if rt := check(n); rt > goal {
		t.Fatalf("RT at found max %d is %v > goal", n, rt)
	}
	if rt := check(n + 1); rt <= goal {
		t.Fatalf("RT at %d is %v, still under goal — search stopped early", n+1, rt)
	}
}

func TestMaxClientsSearchImpossibleGoal(t *testing.T) {
	m, err := NewTradeModel(workload.AppServF(), workload.CaseStudyDB(), workload.CaseStudyDemands(), workload.TypicalWorkload(1))
	if err != nil {
		t.Fatal(err)
	}
	// Goal below the light-load response time: even one client misses.
	n, _, err := MaxClientsSearch(m, "browse", 0.0001, 1000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("max clients = %d, want 0 for impossible goal", n)
	}
}

func TestMaxClientsSearchRestoresPopulation(t *testing.T) {
	m, err := NewTradeModel(workload.AppServF(), workload.CaseStudyDB(), workload.CaseStudyDemands(), workload.TypicalWorkload(123))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := MaxClientsSearch(m, "browse", 0.3, 10000, Options{}); err != nil {
		t.Fatal(err)
	}
	if m.Classes[0].Population != 123 {
		t.Fatalf("search mutated the model population to %d", m.Classes[0].Population)
	}
}

func TestMaxClientsSearchErrors(t *testing.T) {
	m, _ := NewTradeModel(workload.AppServF(), workload.CaseStudyDB(), workload.CaseStudyDemands(), workload.TypicalWorkload(1))
	if _, _, err := MaxClientsSearch(m, "browse", 0, 0, Options{}); err == nil {
		t.Fatal("expected error for non-positive goal")
	}
	if _, _, err := MaxClientsSearch(m, "ghost", 0.3, 0, Options{}); err == nil {
		t.Fatal("expected error for unknown class")
	}
}

func TestMaxClientsSearchRespectsLimit(t *testing.T) {
	m, _ := NewTradeModel(workload.AppServF(), workload.CaseStudyDB(), workload.CaseStudyDemands(), workload.TypicalWorkload(1))
	// A huge goal makes every population feasible; the limit caps it.
	n, _, err := MaxClientsSearch(m, "browse", 1e9, 500, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n > 500 {
		t.Fatalf("max clients = %d exceeds limit 500", n)
	}
}
