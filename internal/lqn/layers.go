package lqn

import (
	"errors"
	"math"
	"sort"
)

// This file adds task-layer contention: the method-of-layers style
// solution in which software servers (task thread pools) queue
// independently of the hardware they run on. The default solver
// flattens the model onto processors, which is accurate while thread
// pools are generous (the case study's 50/20); when a task's
// multiplicity is small relative to the offered concurrency — and
// especially when its entries spend most of their time blocked on
// lower layers rather than computing — the thread pool itself becomes
// the queue, and only a layered solution sees it.
//
// The implementation alternates between two views until fixed point:
//
//   - software contention: for each class, a closed network whose
//     stations are the tasks the class's top-level calls reach
//     directly, each a multiserver with service time equal to its
//     entries' elapsed time (processor-inflated own demand plus the
//     full response of nested calls, including waits at lower tasks);
//
//   - lower-layer waits: each called task is itself a multiserver
//     station whose customers are its callers' busy threads, giving a
//     per-visit queueing wait that inflates the callers' elapsed
//     times;
//
//   - hardware contention: processor utilisation from every entry
//     inflates per-invocation service via the shadow-server factor
//     1/(1−ρ_other).
//
// Layered solving supports closed classes and synchronous calls;
// open classes, priorities, async and forwarding fall back with an
// error so callers are not silently mis-solved.

// layeredApplicable rejects model features outside the layered
// solver's scope.
func layeredApplicable(m *Model, r *resolved) error {
	for _, cl := range m.Classes {
		if cl.Open() {
			return errors.New("lqn: layered solving does not support open classes")
		}
		if cl.Priority != 0 {
			return errors.New("lqn: layered solving does not support priorities")
		}
		for _, c := range cl.Calls {
			if c.kind() != Sync {
				return errors.New("lqn: layered solving supports synchronous reference calls only")
			}
		}
	}
	for _, t := range m.Tasks {
		for _, e := range t.Entries {
			if e.Demand2 != 0 {
				return errors.New("lqn: layered solving does not support second phases")
			}
			for _, c := range e.Calls {
				if c.kind() != Sync {
					return errors.New("lqn: layered solving supports synchronous calls only")
				}
			}
		}
	}
	return nil
}

// solveLayered runs the layered fixed point and fills a Result.
func solveLayered(m *Model, r *resolved, opt Options) (*Result, error) {
	if err := layeredApplicable(m, r); err != nil {
		return nil, err
	}
	convergence := opt.Convergence
	if convergence <= 0 {
		convergence = 1e-6
	}
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = 10000
	}

	K := len(m.Classes)
	// Entry bookkeeping in deterministic order.
	entryNames := make([]string, 0, len(r.entries))
	for name := range r.entries {
		entryNames = append(entryNames, name)
	}
	sort.Strings(entryNames)

	// Per-class visit ratios (sync-only: resp == util).
	visits := make([]map[string]float64, K)
	for k, cl := range m.Classes {
		visits[k] = visitRatios(r, cl).resp
	}

	// topTasks[k]: the set of tasks the class calls directly, with the
	// per-request visit count.
	topTasks := make([][]topCall, K)
	for k, cl := range m.Classes {
		agg := map[*Task]float64{}
		for _, c := range cl.Calls {
			agg[r.entryTask[c.Target]] += c.Mean
		}
		tasks := make([]*Task, 0, len(agg))
		for t := range agg {
			tasks = append(tasks, t)
		}
		sort.Slice(tasks, func(i, j int) bool { return tasks[i].Name < tasks[j].Name })
		for _, t := range tasks {
			topTasks[k] = append(topTasks[k], topCall{task: t, visits: agg[t]})
		}
	}

	// State.
	X := make([]float64, K)                // class throughputs
	waitTask := make(map[string][]float64) // task -> per-class per-visit wait
	qTask := make(map[string][]float64)    // task -> per-class mean jobs present
	for _, t := range m.Tasks {
		waitTask[t.Name] = make([]float64, K)
		qTask[t.Name] = make([]float64, K)
	}
	procQ := make(map[string]float64)    // processor -> mean jobs present
	procUtil := make(map[string]float64) // processor -> utilisation (reporting)
	var totalPop int
	for _, cl := range m.Classes {
		totalPop += cl.Population
	}

	// elapsed computes entry elapsed times per class given current
	// waits and processor inflation, bottom-up over the acyclic graph.
	elapsed := func(k int) map[string]float64 {
		out := make(map[string]float64, len(entryNames))
		var walk func(name string) float64
		walk = func(name string) float64 {
			if v, ok := out[name]; ok {
				return v
			}
			e := r.entries[name]
			task := r.entryTask[name]
			proc := r.processors[task.Processor]
			base := e.Demand / proc.Speed
			var v float64
			if proc.Sched == Delay {
				v = base
			} else {
				// MVA-style processor response: the invocation waits
				// behind the jobs already present (Schweitzer
				// correction for its own contribution), with the
				// Seidmann split for multiservers.
				c := float64(proc.Mult)
				arr := procQ[proc.Name]
				if totalPop > 0 {
					arr *= float64(totalPop-1) / float64(totalPop)
				}
				v = base/c*(1+arr) + base*(c-1)/c
			}
			for _, c := range e.Calls {
				target := r.entryTask[c.Target]
				v += c.Mean * (waitTask[target.Name][k] + walk(c.Target))
			}
			out[name] = v
			return v
		}
		for _, name := range entryNames {
			walk(name)
		}
		return out
	}

	// taskService computes a task's mean service time per class visit:
	// the visit-weighted elapsed time of its entries as invoked by the
	// class.
	taskService := func(t *Task, k int, el map[string]float64) float64 {
		var num, den float64
		for _, e := range t.Entries {
			v := visits[k][e.Name]
			num += v * el[e.Name]
			den += v
		}
		if den == 0 {
			return 0
		}
		return num / den
	}

	R := make([]float64, K)
	prevR := make([]float64, K)
	converged := false
	iter := 0
	for ; iter < maxIter; iter++ {
		// Per-class elapsed times under current waits/utilisations.
		els := make([]map[string]float64, K)
		for k := range m.Classes {
			els[k] = elapsed(k)
		}

		// Software submodel per class: stations are the directly-called
		// tasks (multiserver via Seidmann), think as given. Single-class
		// exact-style Schweitzer sweep per class with others' loads
		// reflected through busy-thread occupancy.
		for k, cl := range m.Classes {
			if cl.Population == 0 {
				X[k], R[k] = 0, 0
				continue
			}
			var rTotal float64
			type visitResp struct {
				task   *Task
				visits float64
				rVisit float64
			}
			var resps []visitResp
			for _, tc := range topTasks[k] {
				st := taskService(tc.task, k, els[k])
				if st <= 0 {
					continue
				}
				c := float64(tc.task.Mult)
				// Customers seen at the task: every class's jobs
				// present (queued + in service), with the Schweitzer
				// correction for the arriving job's own class.
				arriving := 0.0
				for j := 0; j < K; j++ {
					q := qTask[tc.task.Name][j]
					if j == k {
						q *= math.Max(0, float64(cl.Population-1)) / float64(cl.Population)
					}
					arriving += q
				}
				// Seidmann multiserver: queueing portion st/c sees the
				// arriving jobs; the rest is residual delay.
				rVisit := st/c*(1+arriving) + st*(c-1)/c
				waitTask[tc.task.Name][k] = rVisit - st
				if waitTask[tc.task.Name][k] < 0 {
					waitTask[tc.task.Name][k] = 0
				}
				rTotal += tc.visits * rVisit
				resps = append(resps, visitResp{task: tc.task, visits: tc.visits, rVisit: rVisit})
			}
			R[k] = rTotal
			X[k] = float64(cl.Population) / (cl.Think + rTotal)
			// Little's law per station: jobs present = X × visit response.
			for _, vr := range resps {
				qTask[vr.task.Name][k] = X[k] * vr.visits * vr.rVisit
			}
		}

		// Lower-layer waits: tasks called by other tasks queue their
		// callers' threads. Per-visit wait from the multiserver
		// approximation with throughput-derived occupancy.
		for _, t := range m.Tasks {
			for k := range m.Classes {
				if isTop(topTasks[k], t) {
					continue // handled in the software submodel
				}
				// Total visits to t's entries for class k.
				var vTot, sAvg float64
				for _, e := range t.Entries {
					vTot += visits[k][e.Name]
				}
				if vTot == 0 {
					waitTask[t.Name][k] = 0
					continue
				}
				sAvg = taskService(t, k, els[k])
				// Occupancy from all classes.
				occ := 0.0
				for j := 0; j < K; j++ {
					var vj float64
					for _, e := range t.Entries {
						vj += visits[j][e.Name]
					}
					occ += X[j] * vj * taskService(t, j, els[j])
				}
				c := float64(t.Mult)
				rho := occ / c
				if rho > utilCap {
					rho = utilCap
				}
				// Wait per visit: Erlang-C-flavoured approximation
				// rho^c/(1-rho) × service/c.
				waitTask[t.Name][k] = sAvg / c * math.Pow(rho, c) / (1 - rho)
			}
		}

		// Hardware state for the next round: utilisation (reporting)
		// and mean jobs present (Little's law over the per-invocation
		// processor responses just used).
		for name := range r.processors {
			procUtil[name] = 0
		}
		newQ := make(map[string]float64, len(r.processors))
		for k := range m.Classes {
			el := els[k]
			_ = el
			for _, name := range entryNames {
				e := r.entries[name]
				task := r.entryTask[name]
				proc := r.processors[task.Processor]
				if proc.Sched == Delay {
					continue
				}
				procUtil[proc.Name] += X[k] * visits[k][name] * e.Demand / proc.Speed / float64(proc.Mult)
				c := float64(proc.Mult)
				base := e.Demand / proc.Speed
				arr := procQ[proc.Name]
				if totalPop > 0 {
					arr *= float64(totalPop-1) / float64(totalPop)
				}
				resp := base/c*(1+arr) + base*(c-1)/c
				newQ[proc.Name] += X[k] * visits[k][name] * resp
			}
		}
		for name, u := range procUtil {
			if u > utilCap {
				procUtil[name] = utilCap
			}
		}
		// Damped queue update keeps the fixed point stable.
		for name := range r.processors {
			procQ[name] = 0.5*procQ[name] + 0.5*newQ[name]
		}

		maxDR := 0.0
		for k := 0; k < K; k++ {
			if d := math.Abs(R[k] - prevR[k]); d > maxDR {
				maxDR = d
			}
			// Damped update for stability.
			prevR[k] = R[k]
		}
		if maxDR < convergence {
			converged = true
			iter++
			break
		}
	}

	res := &Result{
		Classes:            make(map[string]ClassResult, K),
		ProcessorUtil:      make(map[string]float64, len(r.processors)),
		ClassProcessorUtil: make(map[string]map[string]float64, len(r.processors)),
		Iterations:         iter,
		Converged:          converged,
	}
	for k, cl := range m.Classes {
		res.Classes[cl.Name] = ClassResult{ResponseTime: R[k], Throughput: X[k]}
	}
	for name, p := range r.processors {
		var total float64
		per := make(map[string]float64, K)
		for k, cl := range m.Classes {
			var u float64
			for _, ename := range entryNames {
				if r.entryTask[ename].Processor != name {
					continue
				}
				u += X[k] * visits[k][ename] * r.entries[ename].Demand / p.Speed / float64(p.Mult)
			}
			per[cl.Name] = u
			total += u
		}
		res.ProcessorUtil[name] = total
		res.ClassProcessorUtil[name] = per
	}
	return res, nil
}

// topCall is one directly-called task of a reference class.
type topCall struct {
	task   *Task
	visits float64
}

func topVisits(tops []topCall, t *Task) float64 {
	for _, tc := range tops {
		if tc.task == t {
			return tc.visits
		}
	}
	return 0
}

func isTop(tops []topCall, t *Task) bool {
	return topVisits(tops, t) > 0
}
