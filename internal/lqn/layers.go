package lqn

import (
	"errors"
	"math"
	"sort"
)

// This file adds task-layer contention: the method-of-layers style
// solution in which software servers (task thread pools) queue
// independently of the hardware they run on. The default solver
// flattens the model onto processors, which is accurate while thread
// pools are generous (the case study's 50/20); when a task's
// multiplicity is small relative to the offered concurrency — and
// especially when its entries spend most of their time blocked on
// lower layers rather than computing — the thread pool itself becomes
// the queue, and only a layered solution sees it.
//
// The implementation alternates between two views until fixed point:
//
//   - software contention: for each class, a closed network whose
//     stations are the tasks the class's top-level calls reach
//     directly, each a multiserver with service time equal to its
//     entries' elapsed time (processor-inflated own demand plus the
//     full response of nested calls, including waits at lower tasks);
//
//   - lower-layer waits: each called task is itself a multiserver
//     station whose customers are its callers' busy threads, giving a
//     per-visit queueing wait that inflates the callers' elapsed
//     times;
//
//   - hardware contention: processor utilisation from every entry
//     inflates per-invocation service via the shadow-server factor
//     1/(1−ρ_other).
//
// Layered solving supports closed classes and synchronous calls;
// open classes, priorities, async and forwarding fall back with an
// error so callers are not silently mis-solved.

// layeredApplicable rejects model features outside the layered
// solver's scope.
func layeredApplicable(m *Model, r *resolved) error {
	for _, cl := range m.Classes {
		if cl.Open() {
			return errors.New("lqn: layered solving does not support open classes")
		}
		if cl.Priority != 0 {
			return errors.New("lqn: layered solving does not support priorities")
		}
		for _, c := range cl.Calls {
			if c.kind() != Sync {
				return errors.New("lqn: layered solving supports synchronous reference calls only")
			}
		}
	}
	for _, t := range m.Tasks {
		for _, e := range t.Entries {
			if e.Demand2 != 0 {
				return errors.New("lqn: layered solving does not support second phases")
			}
			for _, c := range e.Calls {
				if c.kind() != Sync {
					return errors.New("lqn: layered solving supports synchronous calls only")
				}
			}
		}
	}
	return nil
}

// solveLayered runs the layered fixed point and fills a Result.
//
// All per-iteration state lives in flat index-addressed slices set up
// once before the loop — entries in sorted-name order, tasks in model
// order, processors in sorted-name order — so the fixed point allocates
// nothing per sweep and every floating-point sum accumulates in a fixed
// order.
func solveLayered(m *Model, r *resolved, opt Options) (*Result, error) {
	if err := layeredApplicable(m, r); err != nil {
		return nil, err
	}
	convergence := opt.Convergence
	if convergence <= 0 {
		convergence = 1e-6
	}
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = 10000
	}

	K := len(m.Classes)
	entryNames := r.entryNames
	E := len(entryNames)
	entryIdx := make(map[string]int, E)
	for i, name := range entryNames {
		entryIdx[name] = i
	}

	// Static per-entry data: owning task, host processor, base demand,
	// and resolved call targets.
	type entryCall struct {
		mean    float64
		target  int // entry index
		taskIdx int // target's task index
	}
	T := len(m.Tasks)
	taskIdx := make(map[*Task]int, T)
	for ti, t := range m.Tasks {
		taskIdx[t] = ti
	}
	procNames := make([]string, 0, len(r.processors))
	for name := range r.processors {
		procNames = append(procNames, name)
	}
	sort.Strings(procNames)
	P := len(procNames)
	procIdx := make(map[string]int, P)
	for pi, name := range procNames {
		procIdx[name] = pi
	}

	entryTaskIdx := make([]int, E)
	entryProcIdx := make([]int, E)
	base := make([]float64, E) // demand / processor speed
	calls := make([][]entryCall, E)
	for i, name := range entryNames {
		e := r.entries[name]
		t := r.entryTask[name]
		entryTaskIdx[i] = taskIdx[t]
		entryProcIdx[i] = procIdx[t.Processor]
		base[i] = e.Demand / r.processors[t.Processor].Speed
		for _, c := range e.Calls {
			calls[i] = append(calls[i], entryCall{
				mean:    c.Mean,
				target:  entryIdx[c.Target],
				taskIdx: taskIdx[r.entryTask[c.Target]],
			})
		}
	}
	procDelay := make([]bool, P)
	procMult := make([]float64, P)
	for pi, name := range procNames {
		p := r.processors[name]
		procDelay[pi] = p.Sched == Delay
		procMult[pi] = float64(p.Mult)
	}
	// taskEntries[ti]: the task's entry indices in declaration order
	// (the order taskService folds them in).
	taskEntries := make([][]int, T)
	for ti, t := range m.Tasks {
		for _, e := range t.Entries {
			taskEntries[ti] = append(taskEntries[ti], entryIdx[e.Name])
		}
	}

	// Per-class visit ratios (sync-only: resp == util), flattened at
	// stride E.
	vis := make([]float64, K*E)
	for k, cl := range m.Classes {
		for name, v := range visitRatios(r, cl).resp {
			vis[k*E+entryIdx[name]] = v
		}
	}

	// topTasks[k]: the set of tasks the class calls directly, with the
	// per-request visit count.
	topTasks := make([][]topCall, K)
	maxTop := 0
	for k, cl := range m.Classes {
		agg := map[*Task]float64{}
		for _, c := range cl.Calls {
			agg[r.entryTask[c.Target]] += c.Mean
		}
		tasks := make([]*Task, 0, len(agg))
		for t := range agg {
			tasks = append(tasks, t)
		}
		sort.Slice(tasks, func(i, j int) bool { return tasks[i].Name < tasks[j].Name })
		for _, t := range tasks {
			topTasks[k] = append(topTasks[k], topCall{task: t, visits: agg[t]})
		}
		if len(topTasks[k]) > maxTop {
			maxTop = len(topTasks[k])
		}
	}

	// State, all index-addressed: task ti × class k at ti*K+k, entry i
	// × class k at k*E+i.
	X := make([]float64, K)          // class throughputs
	waitTask := make([]float64, T*K) // per-visit wait at each task
	qTask := make([]float64, T*K)    // mean jobs of class k present at task
	procQ := make([]float64, P)      // mean jobs present per processor
	newQ := make([]float64, P)       // next-round processor queue
	elAll := make([]float64, K*E)    // per-class entry elapsed times
	elDone := make([]bool, E)        // memo flags for the current walk
	rVisitBuf := make([]float64, maxTop)
	rValidBuf := make([]bool, maxTop)
	var totalPop int
	for _, cl := range m.Classes {
		totalPop += cl.Population
	}

	// elapsed computes entry elapsed times for class k given current
	// waits and processor queues, bottom-up over the acyclic graph into
	// elAll[k*E:].
	elapsed := func(k int) {
		el := elAll[k*E : k*E+E]
		for i := range elDone {
			elDone[i] = false
		}
		var walk func(i int) float64
		walk = func(i int) float64 {
			if elDone[i] {
				return el[i]
			}
			pi := entryProcIdx[i]
			var v float64
			if procDelay[pi] {
				v = base[i]
			} else {
				// MVA-style processor response: the invocation waits
				// behind the jobs already present (Schweitzer
				// correction for its own contribution), with the
				// Seidmann split for multiservers.
				c := procMult[pi]
				arr := procQ[pi]
				if totalPop > 0 {
					arr *= float64(totalPop-1) / float64(totalPop)
				}
				v = base[i]/c*(1+arr) + base[i]*(c-1)/c
			}
			for _, ec := range calls[i] {
				v += ec.mean * (waitTask[ec.taskIdx*K+k] + walk(ec.target))
			}
			el[i] = v
			elDone[i] = true
			return v
		}
		for i := 0; i < E; i++ {
			walk(i)
		}
	}

	// taskService computes a task's mean service time per class visit:
	// the visit-weighted elapsed time of its entries as invoked by the
	// class.
	taskService := func(ti, k int) float64 {
		var num, den float64
		for _, i := range taskEntries[ti] {
			v := vis[k*E+i]
			num += v * elAll[k*E+i]
			den += v
		}
		if den == 0 {
			return 0
		}
		return num / den
	}

	R := make([]float64, K)
	prevR := make([]float64, K)
	converged := false
	iter := 0
	for ; iter < maxIter; iter++ {
		// Per-class elapsed times under current waits/utilisations.
		for k := range m.Classes {
			elapsed(k)
		}

		// Software submodel per class: stations are the directly-called
		// tasks (multiserver via Seidmann), think as given. Single-class
		// exact-style Schweitzer sweep per class with others' loads
		// reflected through busy-thread occupancy.
		for k, cl := range m.Classes {
			if cl.Population == 0 {
				X[k], R[k] = 0, 0
				continue
			}
			var rTotal float64
			for tci, tc := range topTasks[k] {
				rValidBuf[tci] = false
				ti := taskIdx[tc.task]
				st := taskService(ti, k)
				if st <= 0 {
					continue
				}
				c := float64(tc.task.Mult)
				// Customers seen at the task: every class's jobs
				// present (queued + in service), with the Schweitzer
				// correction for the arriving job's own class.
				arriving := 0.0
				for j := 0; j < K; j++ {
					q := qTask[ti*K+j]
					if j == k {
						q *= math.Max(0, float64(cl.Population-1)) / float64(cl.Population)
					}
					arriving += q
				}
				// Seidmann multiserver: queueing portion st/c sees the
				// arriving jobs; the rest is residual delay.
				rVisit := st/c*(1+arriving) + st*(c-1)/c
				waitTask[ti*K+k] = rVisit - st
				if waitTask[ti*K+k] < 0 {
					waitTask[ti*K+k] = 0
				}
				rTotal += tc.visits * rVisit
				rVisitBuf[tci], rValidBuf[tci] = rVisit, true
			}
			R[k] = rTotal
			X[k] = float64(cl.Population) / (cl.Think + rTotal)
			// Little's law per station: jobs present = X × visit response.
			for tci, tc := range topTasks[k] {
				if rValidBuf[tci] {
					qTask[taskIdx[tc.task]*K+k] = X[k] * tc.visits * rVisitBuf[tci]
				}
			}
		}

		// Lower-layer waits: tasks called by other tasks queue their
		// callers' threads. Per-visit wait from the multiserver
		// approximation with throughput-derived occupancy.
		for ti, t := range m.Tasks {
			for k := range m.Classes {
				if isTop(topTasks[k], t) {
					continue // handled in the software submodel
				}
				// Total visits to t's entries for class k.
				var vTot, sAvg float64
				for _, i := range taskEntries[ti] {
					vTot += vis[k*E+i]
				}
				if vTot == 0 {
					waitTask[ti*K+k] = 0
					continue
				}
				sAvg = taskService(ti, k)
				// Occupancy from all classes.
				occ := 0.0
				for j := 0; j < K; j++ {
					var vj float64
					for _, i := range taskEntries[ti] {
						vj += vis[j*E+i]
					}
					occ += X[j] * vj * taskService(ti, j)
				}
				c := float64(t.Mult)
				rho := occ / c
				if rho > utilCap {
					rho = utilCap
				}
				// Wait per visit: Erlang-C-flavoured approximation
				// rho^c/(1-rho) × service/c.
				waitTask[ti*K+k] = sAvg / c * math.Pow(rho, c) / (1 - rho)
			}
		}

		// Processor state for the next round: mean jobs present
		// (Little's law over the per-invocation processor responses
		// just used).
		for pi := range newQ {
			newQ[pi] = 0
		}
		for k := range m.Classes {
			for i := 0; i < E; i++ {
				pi := entryProcIdx[i]
				if procDelay[pi] {
					continue
				}
				c := procMult[pi]
				arr := procQ[pi]
				if totalPop > 0 {
					arr *= float64(totalPop-1) / float64(totalPop)
				}
				resp := base[i]/c*(1+arr) + base[i]*(c-1)/c
				newQ[pi] += X[k] * vis[k*E+i] * resp
			}
		}
		// Damped queue update keeps the fixed point stable.
		for pi := range procQ {
			procQ[pi] = 0.5*procQ[pi] + 0.5*newQ[pi]
		}

		maxDR := 0.0
		for k := 0; k < K; k++ {
			if d := math.Abs(R[k] - prevR[k]); d > maxDR {
				maxDR = d
			}
			prevR[k] = R[k]
		}
		if maxDR < convergence {
			converged = true
			iter++
			break
		}
	}

	res := &Result{
		Classes:            make(map[string]ClassResult, K),
		ProcessorUtil:      make(map[string]float64, len(r.processors)),
		ClassProcessorUtil: make(map[string]map[string]float64, len(r.processors)),
		Iterations:         iter,
		Converged:          converged,
	}
	for k, cl := range m.Classes {
		res.Classes[cl.Name] = ClassResult{ResponseTime: R[k], Throughput: X[k]}
	}
	for _, name := range procNames {
		p := r.processors[name]
		var total float64
		per := make(map[string]float64, K)
		for k, cl := range m.Classes {
			var u float64
			for _, ename := range entryNames {
				if r.entryTask[ename].Processor != name {
					continue
				}
				u += X[k] * vis[k*E+entryIdx[ename]] * r.entries[ename].Demand / p.Speed / float64(p.Mult)
			}
			per[cl.Name] = u
			total += u
		}
		res.ProcessorUtil[name] = total
		res.ClassProcessorUtil[name] = per
	}
	return res, nil
}

// topCall is one directly-called task of a reference class.
type topCall struct {
	task   *Task
	visits float64
}

func topVisits(tops []topCall, t *Task) float64 {
	for _, tc := range tops {
		if tc.task == t {
			return tc.visits
		}
	}
	return 0
}

func isTop(tops []topCall, t *Task) bool {
	return topVisits(tops, t) > 0
}
