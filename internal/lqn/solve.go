package lqn

import (
	"time"
)

// Options tunes the solver.
type Options struct {
	// Convergence is the response-time convergence criterion in
	// seconds. The paper runs LQNS with 20 ms (0.020); tightening it
	// slows solving but removes the small-spacing noise seen in
	// figure 3. Zero selects 1e-6.
	Convergence float64
	// MaxIterations bounds the fixed-point sweeps (0 selects 10000).
	MaxIterations int
	// ExactMVA solves single-class models with the exact MVA
	// recursion instead of the Schweitzer approximation; it is an
	// ablation knob and returns an error on multiclass models or
	// models using open classes, priorities, second phases or
	// asynchronous calls.
	ExactMVA bool
	// TaskLayering solves with task-layer (thread pool) contention:
	// software servers queue independently of their processors, which
	// matters when a task's multiplicity is small relative to the
	// offered concurrency. Supports closed classes and synchronous
	// calls only. See layers.go.
	TaskLayering bool
	// Damping in (0,1) blends each Schweitzer queue-length update with
	// the previous iterate (damped successive substitution): next =
	// Damping*old + (1-Damping)*new. It tames the oscillation that
	// inflates iteration counts at fine convergence criteria on
	// near-saturated models. Zero keeps the classic undamped iteration
	// bit-for-bit; values outside [0,1) are rejected.
	Damping float64
}

// ClassResult is one service class's predicted steady-state metrics.
type ClassResult struct {
	// ResponseTime is the mean response time of a top-level request,
	// seconds, excluding think time.
	ResponseTime float64
	// Throughput is top-level requests per second (the arrival rate
	// for open classes).
	Throughput float64
}

// Result is a solved model.
type Result struct {
	// Classes maps class name to its predictions.
	Classes map[string]ClassResult
	// ProcessorUtil maps processor name to per-server utilisation.
	ProcessorUtil map[string]float64
	// ClassProcessorUtil maps processor name to each class's
	// contribution to its utilisation — the "utilisation information
	// for each service class at each processor" LQNS reports (§5).
	ClassProcessorUtil map[string]map[string]float64
	// Iterations and Converged describe the fixed-point run.
	Iterations int
	Converged  bool
	// SolveTime is the wall-clock cost of the evaluation — the §8.5
	// prediction-delay metric.
	SolveTime time.Duration
}

// MeanResponseTime returns the request-weighted mean response time
// across classes, the headline metric of figure 2.
func (r *Result) MeanResponseTime() float64 {
	var xSum, rxSum float64
	for _, c := range r.Classes {
		xSum += c.Throughput
		rxSum += c.Throughput * c.ResponseTime
	}
	if xSum == 0 {
		return 0
	}
	return rxSum / xSum
}

// TotalThroughput returns the summed class throughputs.
func (r *Result) TotalThroughput() float64 {
	var x float64
	for _, c := range r.Classes {
		x += c.Throughput
	}
	return x
}

// Solve evaluates the model and returns steady-state predictions. It
// is the one-shot entry point: each call resolves the model from
// scratch. Sequences of related solves (sweeps, calibration loops)
// should hold a Solver instead, which caches the resolution and reuses
// its workspace across calls.
func Solve(m *Model, opt Options) (*Result, error) {
	var s Solver
	res, err := s.Solve(m, opt)
	if err != nil {
		return nil, err
	}
	// The Solver is function-local, so its reused result escapes
	// nowhere else; hand it to the caller directly.
	return res, nil
}
