package lqn

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Options tunes the solver.
type Options struct {
	// Convergence is the response-time convergence criterion in
	// seconds. The paper runs LQNS with 20 ms (0.020); tightening it
	// slows solving but removes the small-spacing noise seen in
	// figure 3. Zero selects 1e-6.
	Convergence float64
	// MaxIterations bounds the fixed-point sweeps (0 selects 10000).
	MaxIterations int
	// ExactMVA solves single-class models with the exact MVA
	// recursion instead of the Schweitzer approximation; it is an
	// ablation knob and returns an error on multiclass models or
	// models using open classes, priorities, second phases or
	// asynchronous calls.
	ExactMVA bool
	// TaskLayering solves with task-layer (thread pool) contention:
	// software servers queue independently of their processors, which
	// matters when a task's multiplicity is small relative to the
	// offered concurrency. Supports closed classes and synchronous
	// calls only. See layers.go.
	TaskLayering bool
}

// ClassResult is one service class's predicted steady-state metrics.
type ClassResult struct {
	// ResponseTime is the mean response time of a top-level request,
	// seconds, excluding think time.
	ResponseTime float64
	// Throughput is top-level requests per second (the arrival rate
	// for open classes).
	Throughput float64
}

// Result is a solved model.
type Result struct {
	// Classes maps class name to its predictions.
	Classes map[string]ClassResult
	// ProcessorUtil maps processor name to per-server utilisation.
	ProcessorUtil map[string]float64
	// ClassProcessorUtil maps processor name to each class's
	// contribution to its utilisation — the "utilisation information
	// for each service class at each processor" LQNS reports (§5).
	ClassProcessorUtil map[string]map[string]float64
	// Iterations and Converged describe the fixed-point run.
	Iterations int
	Converged  bool
	// SolveTime is the wall-clock cost of the evaluation — the §8.5
	// prediction-delay metric.
	SolveTime time.Duration
}

// MeanResponseTime returns the request-weighted mean response time
// across classes, the headline metric of figure 2.
func (r *Result) MeanResponseTime() float64 {
	var xSum, rxSum float64
	for _, c := range r.Classes {
		xSum += c.Throughput
		rxSum += c.Throughput * c.ResponseTime
	}
	if xSum == 0 {
		return 0
	}
	return rxSum / xSum
}

// TotalThroughput returns the summed class throughputs.
func (r *Result) TotalThroughput() float64 {
	var x float64
	for _, c := range r.Classes {
		x += c.Throughput
	}
	return x
}

// Solve evaluates the model and returns steady-state predictions.
func Solve(m *Model, opt Options) (*Result, error) {
	start := time.Now()
	r, err := m.resolve()
	if err != nil {
		return nil, err
	}
	if opt.TaskLayering {
		res, err := solveLayered(m, r, opt)
		if err != nil {
			return nil, err
		}
		res.SolveTime = time.Since(start)
		return res, nil
	}

	var closed, open []*Class
	for _, cl := range m.Classes {
		if cl.Open() {
			open = append(open, cl)
		} else {
			closed = append(closed, cl)
		}
	}

	demandsOf := make(map[string]classDemands, len(m.Classes))
	for _, cl := range m.Classes {
		demandsOf[cl.Name] = processorDemands(r, visitRatios(r, cl))
	}

	// Stations in deterministic order.
	procNames := make([]string, 0, len(m.Processors))
	for _, p := range m.Processors {
		procNames = append(procNames, p.Name)
	}
	sort.Strings(procNames)

	// Open-class utilisation per station; validates stability.
	openUtil := make(map[string]float64, len(procNames))
	for _, cl := range open {
		d := demandsOf[cl.Name]
		for _, name := range procNames {
			p := r.processors[name]
			if p.Sched == Delay {
				continue
			}
			openUtil[name] += cl.ArrivalRate * d.util[name] / float64(p.Mult)
		}
	}
	for _, name := range procNames {
		if openUtil[name] >= 1 {
			return nil, fmt.Errorf("lqn: open classes saturate processor %q (utilisation %.3f)", name, openUtil[name])
		}
	}

	K := len(closed)
	pop := make([]int, K)
	think := make([]float64, K)
	prio := make([]int, K)
	for k, cl := range closed {
		pop[k] = cl.Population
		think[k] = cl.Think
		prio[k] = cl.Priority
	}
	stations := make([]*mvaStation, 0, len(procNames))
	for _, name := range procNames {
		p := r.processors[name]
		st := &mvaStation{
			name:        name,
			queueing:    p.Sched != Delay,
			servers:     p.Mult,
			demand:      make([]float64, K),
			extraDemand: make([]float64, K),
			openUtil:    openUtil[name],
		}
		for k, cl := range closed {
			d := demandsOf[cl.Name]
			st.demand[k] = d.resp[name]
			st.extraDemand[k] = d.util[name] - d.resp[name]
		}
		stations = append(stations, st)
	}

	var mv *mvaResult
	if K == 0 {
		// Purely open model: no closed iteration needed.
		mv = &mvaResult{Converged: true, Q: make([][]float64, len(stations)), U: make([]float64, len(stations))}
		for i, st := range stations {
			mv.Q[i] = nil
			mv.U[i] = st.openUtil
		}
	} else if opt.ExactMVA {
		if err := exactMVAApplicable(closed, open, stations); err != nil {
			return nil, err
		}
		mv, err = solveExactMVA(stations, pop[0], think[0])
	} else {
		mv, err = solveMVA(stations, pop, think, prio, opt.Convergence, opt.MaxIterations)
	}
	if err != nil {
		return nil, err
	}

	res := &Result{
		Classes:            make(map[string]ClassResult, len(m.Classes)),
		ProcessorUtil:      make(map[string]float64, len(stations)),
		ClassProcessorUtil: make(map[string]map[string]float64, len(stations)),
		Iterations:         mv.Iterations,
		Converged:          mv.Converged,
	}
	for k, cl := range closed {
		res.Classes[cl.Name] = ClassResult{ResponseTime: mv.R[k], Throughput: mv.X[k]}
	}

	// Open-class response times by the standard mixed-network
	// approximation: the arriving open request sees the closed queue
	// on top of the open load.
	closedQ := make(map[string]float64, len(stations))
	for i, st := range stations {
		var total float64
		for k := range closed {
			total += mv.Q[i][k]
		}
		closedQ[st.name] = total
	}
	for _, cl := range open {
		d := demandsOf[cl.Name]
		var rt float64
		for _, name := range procNames {
			p := r.processors[name]
			dr := d.resp[name]
			if dr == 0 {
				continue
			}
			if p.Sched == Delay {
				rt += dr
				continue
			}
			c := float64(p.Mult)
			queueing := dr / c
			residual := dr * (c - 1) / c
			rt += queueing*(1+closedQ[name])/(1-openUtil[name]) + residual
		}
		res.Classes[cl.Name] = ClassResult{ResponseTime: rt, Throughput: cl.ArrivalRate}
	}

	for i, st := range stations {
		res.ProcessorUtil[st.name] = mv.U[i]
		per := make(map[string]float64, len(m.Classes))
		for k, cl := range closed {
			per[cl.Name] = mv.X[k] * (st.demand[k] + st.extraDemand[k]) / float64(st.servers)
		}
		for _, cl := range open {
			d := demandsOf[cl.Name]
			per[cl.Name] = cl.ArrivalRate * d.util[st.name] / float64(st.servers)
		}
		res.ClassProcessorUtil[st.name] = per
	}
	res.SolveTime = time.Since(start)
	return res, nil
}

// exactMVAApplicable rejects features the exact recursion does not
// cover.
func exactMVAApplicable(closed, open []*Class, stations []*mvaStation) error {
	if len(closed) != 1 || len(open) != 0 {
		return errors.New("lqn: exact MVA supports exactly one closed class and no open classes")
	}
	for _, st := range stations {
		if st.extraDemand[0] != 0 {
			return errors.New("lqn: exact MVA does not support second phases or asynchronous calls")
		}
		if st.openUtil != 0 {
			return errors.New("lqn: exact MVA does not support open load")
		}
	}
	return nil
}

// solveExactMVA runs the exact single-class MVA recursion (with the
// Seidmann multiserver transformation), for the ablation comparison
// against the Schweitzer approximation.
func solveExactMVA(stations []*mvaStation, pop int, think float64) (*mvaResult, error) {
	if pop < 0 {
		return nil, fmt.Errorf("lqn: negative population %d", pop)
	}
	I := len(stations)
	dq := make([]float64, I)
	dd := make([]float64, I)
	for i, st := range stations {
		if !st.queueing {
			dd[i] = st.demand[0]
			continue
		}
		c := float64(st.servers)
		dq[i] = st.demand[0] / c
		dd[i] = st.demand[0] * (c - 1) / c
	}
	q := make([]float64, I)
	var x, rTotal float64
	for n := 1; n <= pop; n++ {
		rTotal = 0
		for i := range stations {
			var r float64
			if dq[i] > 0 {
				r = dq[i]*(1+q[i]) + dd[i]
			} else {
				r = dd[i]
			}
			rTotal += r
		}
		x = float64(n) / (think + rTotal)
		for i := range stations {
			var r float64
			if dq[i] > 0 {
				r = dq[i]*(1+q[i]) + dd[i]
			} else {
				r = dd[i]
			}
			q[i] = x * r
		}
	}
	res := &mvaResult{
		X:          []float64{x},
		R:          []float64{rTotal},
		U:          make([]float64, I),
		Iterations: pop,
		Converged:  true,
	}
	res.Q = make([][]float64, I)
	for i := range res.Q {
		res.Q[i] = []float64{q[i]}
	}
	for i, st := range stations {
		res.U[i] = x * st.demand[0] / float64(st.servers)
	}
	return res, nil
}
