package lqn

import (
	"errors"
	"fmt"

	"perfpred/internal/workload"
)

// CalibrationRun is the measurement §5 prescribes for one request
// type: take an established server offline, send a workload of only
// that type, and record throughput plus each server's CPU usage.
type CalibrationRun struct {
	// Throughput is the observed requests/second.
	Throughput float64
	// AppUtilization and DBUtilization are the observed CPU busy
	// fractions at each tier.
	AppUtilization float64
	DBUtilization  float64
	// DBCallsPerRequest is the known (instrumented) mean database
	// calls per request.
	DBCallsPerRequest float64
	// AppSpeed and DBSpeed are the servers' speed multipliers during
	// the run, so demands normalise to the speed-1.0 reference.
	AppSpeed float64
	DBSpeed  float64
}

// CalibrateDemand converts a calibration run into per-request-type
// demands via the utilisation law: demand = utilisation × speed /
// throughput. This is how the paper obtains Table 2 on AppServF.
func CalibrateDemand(run CalibrationRun) (workload.Demand, error) {
	if run.Throughput <= 0 {
		return workload.Demand{}, errors.New("lqn: calibration needs positive throughput")
	}
	if run.AppUtilization <= 0 || run.AppUtilization > 1.000001 {
		return workload.Demand{}, fmt.Errorf("lqn: app utilisation %v outside (0,1]", run.AppUtilization)
	}
	if run.DBUtilization < 0 || run.DBUtilization > 1.000001 {
		return workload.Demand{}, fmt.Errorf("lqn: db utilisation %v outside [0,1]", run.DBUtilization)
	}
	if run.AppSpeed <= 0 || run.DBSpeed <= 0 {
		return workload.Demand{}, errors.New("lqn: calibration needs positive speeds")
	}
	d := workload.Demand{
		AppServerTime:     run.AppUtilization * run.AppSpeed / run.Throughput,
		DBCallsPerRequest: run.DBCallsPerRequest,
	}
	if run.DBCallsPerRequest > 0 {
		perRequestDB := run.DBUtilization * run.DBSpeed / run.Throughput
		d.DBTimePerCall = perRequestDB / run.DBCallsPerRequest
	}
	if err := d.Validate(); err != nil {
		return workload.Demand{}, err
	}
	return d, nil
}

// ScaleDemandToServer rescales established-server demands onto a new
// architecture using the benchmarked request-processing-speed ratio
// (§5: "multiplying the mean processing times on an established server
// by the established/new server request processing speed ratio").
// Only the application-server time scales; the shared database server
// is unchanged.
func ScaleDemandToServer(d workload.Demand, establishedSpeed, newSpeed float64) (workload.Demand, error) {
	if establishedSpeed <= 0 || newSpeed <= 0 {
		return workload.Demand{}, errors.New("lqn: speeds must be positive")
	}
	scaled := d
	scaled.AppServerTime = d.AppServerTime * establishedSpeed / newSpeed
	return scaled, nil
}
