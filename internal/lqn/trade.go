package lqn

import (
	"errors"
	"fmt"

	"perfpred/internal/workload"
)

// NewTradeModel builds the paper's §5 layered queuing model of the
// case study: client reference classes calling application-server
// entries that make synchronous calls to database entries. The
// application and database servers are tasks with the case-study
// thread multiplicities (50 and 20) running on processor-sharing
// processors; demands are per-request-type means on the reference
// architecture, scaled by the server's benchmarked speed via the
// processor speed.
func NewTradeModel(server workload.ServerArch, db workload.DBServer, demands map[workload.RequestType]workload.Demand, load workload.Workload) (*Model, error) {
	if err := server.Validate(); err != nil {
		return nil, err
	}
	if err := db.Validate(); err != nil {
		return nil, err
	}
	if err := load.Validate(); err != nil {
		return nil, err
	}

	// Request types in deterministic order.
	types := make([]workload.RequestType, 0, len(demands))
	for rt := range demands {
		types = append(types, rt)
	}
	for i := 1; i < len(types); i++ {
		for j := i; j > 0 && types[j] < types[j-1]; j-- {
			types[j], types[j-1] = types[j-1], types[j]
		}
	}

	appTask := &Task{Name: "appserver", Processor: "appcpu", Mult: server.MPL}
	dbTask := &Task{Name: "dbserver", Processor: "dbcpu", Mult: db.MPL}
	var latencyTask *Task
	for _, rt := range types {
		d := demands[rt]
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("lqn: demand for %q: %w", rt, err)
		}
		dbEntry := &Entry{Name: "db_" + string(rt), Demand: d.DBTimePerCall}
		appEntry := &Entry{
			Name:   "app_" + string(rt),
			Demand: d.AppServerTime,
			Calls:  []Call{{Target: dbEntry.Name, Mean: d.DBCallsPerRequest}},
		}
		if d.DBLatencyPerCall > 0 {
			// Pure per-call latency: an infinite-server delay visited
			// once per database call.
			if latencyTask == nil {
				latencyTask = &Task{Name: "dblatency", Processor: "dbwire", Mult: 1 << 20}
			}
			latEntry := &Entry{Name: "lat_" + string(rt), Demand: d.DBLatencyPerCall}
			latencyTask.Entries = append(latencyTask.Entries, latEntry)
			appEntry.Calls = append(appEntry.Calls, Call{Target: latEntry.Name, Mean: d.DBCallsPerRequest})
		}
		appTask.Entries = append(appTask.Entries, appEntry)
		dbTask.Entries = append(dbTask.Entries, dbEntry)
	}

	m := &Model{
		Processors: []*Processor{
			{Name: "appcpu", Mult: 1, Speed: server.Speed, Sched: PS},
			{Name: "dbcpu", Mult: 1, Speed: db.Speed, Sched: PS},
		},
		Tasks: []*Task{appTask, dbTask},
	}
	if latencyTask != nil {
		m.Processors = append(m.Processors, &Processor{Name: "dbwire", Mult: 1, Speed: 1, Sched: Delay})
		m.Tasks = append(m.Tasks, latencyTask)
	}
	for _, p := range load {
		calls := make([]Call, 0, len(p.Class.Mix))
		for _, rt := range types {
			if f := p.Class.Mix.Fraction(rt); f > 0 {
				calls = append(calls, Call{Target: "app_" + string(rt), Mean: f})
			}
		}
		if len(calls) == 0 {
			return nil, fmt.Errorf("lqn: class %q has no resolvable mix entries", p.Class.Name)
		}
		cl := &Class{
			Name:  p.Class.Name,
			Calls: calls,
		}
		if p.Open() {
			cl.ArrivalRate = p.ArrivalRate
		} else {
			cl.Population = p.Clients
			cl.Think = p.Class.ThinkTimeMean
		}
		m.Classes = append(m.Classes, cl)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// RetuneTradeModel updates, in place, the entry demands and call means
// of a model built by NewTradeModel to a new demand map — the
// structure-preserving half of a rebuild. Fixed-point loops that
// re-tune effective demands every iteration (see
// sessioncache.SolveWithCache) pair it with Solver.InvalidateDemands
// to skip re-building and re-validating the whole model.
//
// The demand map must cover the same request types the model was built
// with, and each type's latency term must stay on the same side of
// zero (present or absent) — a latency appearing or disappearing
// changes the model structure and needs a rebuild. Models augmented by
// AddCriticalSection cannot be retuned: the section's CPU inflation is
// folded into the entry demands and would be lost.
func RetuneTradeModel(m *Model, demands map[workload.RequestType]workload.Demand) error {
	entries := make(map[string]*Entry, 8)
	for _, t := range m.Tasks {
		if t.Name == "critsec" {
			return errors.New("lqn: cannot retune a model with a critical section; rebuild it")
		}
		for _, e := range t.Entries {
			entries[e.Name] = e
		}
	}
	types := make([]workload.RequestType, 0, len(demands))
	for rt := range demands {
		types = append(types, rt)
	}
	for i := 1; i < len(types); i++ {
		for j := i; j > 0 && types[j] < types[j-1]; j-- {
			types[j], types[j-1] = types[j-1], types[j]
		}
	}
	for _, rt := range types {
		d := demands[rt]
		if err := d.Validate(); err != nil {
			return fmt.Errorf("lqn: demand for %q: %w", rt, err)
		}
		app, ok := entries["app_"+string(rt)]
		if !ok {
			return fmt.Errorf("lqn: model has no entries for request type %q; rebuild it", rt)
		}
		db, ok := entries["db_"+string(rt)]
		if !ok {
			return fmt.Errorf("lqn: model has no entries for request type %q; rebuild it", rt)
		}
		lat, hasLat := entries["lat_"+string(rt)]
		if (d.DBLatencyPerCall > 0) != hasLat {
			return fmt.Errorf("lqn: request type %q would change the latency structure; rebuild the model", rt)
		}
		app.Demand = d.AppServerTime
		db.Demand = d.DBTimePerCall
		if hasLat {
			lat.Demand = d.DBLatencyPerCall
		}
		for i := range app.Calls {
			switch app.Calls[i].Target {
			case db.Name, "lat_" + string(rt):
				app.Calls[i].Mean = d.DBCallsPerRequest
			}
		}
	}
	return nil
}

// AddCriticalSection augments a trade model with the profiled §8.1
// bottleneck: application requests enter a single-threaded critical
// section with probability fraction, holding a global lock for a mean
// of meanTime seconds of CPU. The paper notes the layered method "can
// model systems containing queues that are not explicitly defined ...
// however [it] require[s] additional profiling to model the extra
// queues created" — this helper is that profiling step: it adds the
// serialisation queue as an explicit single-server FCFS station and
// folds the section's CPU work into the application entries. Without
// it (the naive model) the layered prediction misses the bottleneck
// entirely.
func AddCriticalSection(m *Model, serverSpeed, meanTime, fraction float64) error {
	if meanTime <= 0 {
		return errors.New("lqn: critical section needs positive mean time")
	}
	if fraction <= 0 || fraction > 1 {
		return fmt.Errorf("lqn: critical-section fraction %v outside (0,1]", fraction)
	}
	if serverSpeed <= 0 {
		return errors.New("lqn: critical section needs positive server speed")
	}
	const (
		procName  = "cslock"
		entryName = "cs_section"
	)
	for _, p := range m.Processors {
		if p.Name == procName {
			return fmt.Errorf("lqn: model already has a %q processor", procName)
		}
	}
	m.Processors = append(m.Processors, &Processor{
		Name: procName, Mult: 1, Speed: serverSpeed, Sched: FCFS,
	})
	m.Tasks = append(m.Tasks, &Task{
		Name: "critsec", Processor: procName, Mult: 1,
		Entries: []*Entry{{Name: entryName, Demand: meanTime}},
	})
	for _, t := range m.Tasks {
		if t.Name != "appserver" {
			continue
		}
		for _, e := range t.Entries {
			// The section's CPU work inflates the entry demand; the
			// serialisation wait comes from the lock station.
			e.Demand += fraction * meanTime
			e.Calls = append(e.Calls, Call{Target: entryName, Mean: fraction})
		}
	}
	return m.Validate()
}

// PredictTrade is the one-call convenience: build the case-study model
// for the given server and workload and solve it.
func PredictTrade(server workload.ServerArch, demands map[workload.RequestType]workload.Demand, load workload.Workload, opt Options) (*Result, error) {
	m, err := NewTradeModel(server, workload.CaseStudyDB(), demands, load)
	if err != nil {
		return nil, err
	}
	return Solve(m, opt)
}
