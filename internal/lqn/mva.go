package lqn

import (
	"errors"
	"math"
)

// mvaStation is one service centre of the flattened closed network.
type mvaStation struct {
	name     string
	queueing bool // false: pure delay (infinite server)
	servers  int  // >= 1; multiservers use the Seidmann transformation
	// demand is the per-class caller-visible service demand (seconds
	// per top-level request).
	demand []float64
	// extraDemand is per-class additional work the station executes
	// per top-level request that the caller does not wait for
	// (second-phase service and asynchronous subtrees). It consumes
	// capacity, slowing everyone, without appearing in the owner's
	// response time.
	extraDemand []float64
	// openUtil is exogenous utilisation from open (Poisson) classes,
	// pre-computed by the caller; it must be < 1.
	openUtil float64
}

// mvaResult carries the converged network solution.
type mvaResult struct {
	// X and R are per-class throughputs and response times (think time
	// excluded).
	X, R []float64
	// Q[i][k] is class k's mean customers at station i.
	Q [][]float64
	// U[i] is station i's per-server utilisation including open and
	// non-response work.
	U []float64
	// Iterations actually used, and whether the criterion was met.
	Iterations int
	Converged  bool
}

// utilCap bounds the background-load denominator so transient
// overloads during iteration cannot divide by zero.
const utilCap = 0.999

// solveMVA runs multiclass Schweitzer approximate MVA on a closed
// network with per-class populations pop, think times think and
// priorities prio (higher pre-empts lower; equal shares fairly).
// Station background load — open-class utilisation, second phases,
// async subtrees and higher-priority work — inflates a class's
// effective demand by 1/(1−ρ_background), the standard shadow-server
// approximation. Iteration stops when every class's response time
// changes by less than convergence seconds (the paper's LQNS
// criterion), or after maxIter sweeps.
func solveMVA(stations []*mvaStation, pop []int, think []float64, prio []int, convergence float64, maxIter int) (*mvaResult, error) {
	K := len(pop)
	if K == 0 || len(think) != K {
		return nil, errors.New("lqn: mva needs matching populations and think times")
	}
	if len(prio) != K {
		return nil, errors.New("lqn: mva needs per-class priorities")
	}
	for _, st := range stations {
		if len(st.demand) != K || len(st.extraDemand) != K {
			return nil, errors.New("lqn: station demand vector length mismatch")
		}
		if st.servers < 1 {
			return nil, errors.New("lqn: station needs at least one server")
		}
		if st.openUtil < 0 || st.openUtil >= 1 {
			return nil, errors.New("lqn: open-class utilisation must be in [0,1)")
		}
	}
	if convergence <= 0 {
		convergence = 1e-6
	}
	if maxIter <= 0 {
		maxIter = 10000
	}

	I := len(stations)
	// Seidmann split for multiservers: queueing portion D/c, delay
	// portion D*(c-1)/c.
	dq := make([][]float64, I)
	dd := make([][]float64, I)
	for i, st := range stations {
		dq[i] = make([]float64, K)
		dd[i] = make([]float64, K)
		for k := 0; k < K; k++ {
			if !st.queueing {
				dd[i][k] = st.demand[k]
				continue
			}
			c := float64(st.servers)
			dq[i][k] = st.demand[k] / c
			dd[i][k] = st.demand[k] * (c - 1) / c
		}
	}

	q := make([][]float64, I)
	for i := range q {
		q[i] = make([]float64, K)
		for k := 0; k < K; k++ {
			if pop[k] > 0 {
				q[i][k] = float64(pop[k]) / float64(I)
			}
		}
	}

	res := &mvaResult{
		X: make([]float64, K),
		R: make([]float64, K),
	}
	rik := make([][]float64, I)
	for i := range rik {
		rik[i] = make([]float64, K)
	}
	prevR := make([]float64, K)

	// background returns the utilisation class k must defer to at
	// station i: open load, everyone's non-response work, and
	// strictly-higher-priority response work.
	background := func(i, k int, st *mvaStation) float64 {
		u := st.openUtil
		c := float64(st.servers)
		for j := 0; j < K; j++ {
			u += res.X[j] * st.extraDemand[j] / c
			if prio[j] > prio[k] {
				u += res.X[j] * st.demand[j] / c
			}
		}
		if u > utilCap {
			return utilCap
		}
		if u < 0 {
			return 0
		}
		return u
	}

	iter := 0
	for ; iter < maxIter; iter++ {
		maxDQ := 0.0
		for k := 0; k < K; k++ {
			if pop[k] == 0 {
				res.X[k], res.R[k] = 0, 0
				continue
			}
			var rTotal float64
			for i, st := range stations {
				var r float64
				if st.queueing && dq[i][k] > 0 {
					// Schweitzer estimate of the queue seen at
					// arrival: same-or-higher priority classes only —
					// lower-priority work is pre-empted, not queued
					// behind.
					arriving := 0.0
					for j := 0; j < K; j++ {
						if prio[j] < prio[k] {
							continue
						}
						if j == k {
							arriving += q[i][j] * float64(pop[k]-1) / float64(pop[k])
						} else {
							arriving += q[i][j]
						}
					}
					inflate := 1 / (1 - background(i, k, st))
					r = dq[i][k]*inflate*(1+arriving) + dd[i][k]
				} else {
					r = dq[i][k] + dd[i][k]
				}
				rik[i][k] = r
				rTotal += r
			}
			res.R[k] = rTotal
			res.X[k] = float64(pop[k]) / (think[k] + rTotal)
			for i := range stations {
				nq := res.X[k] * rik[i][k]
				if d := math.Abs(nq - q[i][k]); d > maxDQ {
					maxDQ = d
				}
				q[i][k] = nq
			}
		}
		maxDR := 0.0
		for k := 0; k < K; k++ {
			if d := math.Abs(res.R[k] - prevR[k]); d > maxDR {
				maxDR = d
			}
			prevR[k] = res.R[k]
		}
		// The queue-length tolerance scales with the response-time
		// criterion so a coarse criterion (the paper's 20 ms) actually
		// stops early — the source of its small-spacing noise.
		if maxDR < convergence && maxDQ < math.Max(1e-6, convergence) {
			res.Converged = true
			iter++
			break
		}
	}
	res.Iterations = iter
	res.Q = q
	res.U = make([]float64, I)
	for i, st := range stations {
		u := st.openUtil
		for k := 0; k < K; k++ {
			u += res.X[k] * (st.demand[k] + st.extraDemand[k]) / float64(st.servers)
		}
		res.U[i] = u
	}
	return res, nil
}
