package lqn

import (
	"errors"
	"fmt"
	"math"
)

// utilCap bounds the background-load denominator so transient
// overloads during iteration cannot divide by zero.
const utilCap = 0.999

// mvaWorkspace is the reusable state of the flattened MVA kernel. All
// matrices are stride-indexed contiguous slices: station i, class k
// lives at i*K+k. Buffers grow on demand and are reused across solves,
// so repeated solves on same-shaped models allocate nothing.
//
// After a converged Schweitzer solve the queue-length matrix q holds
// the solution; a warm-started follow-up solve on a same-shaped model
// seeds its iteration from it (see solveSchweitzer).
type mvaWorkspace struct {
	// Seidmann split of the per-class demands: queueing portion D/c and
	// residual delay D*(c-1)/c.
	dq, dd []float64 // I×K
	// q is the Schweitzer iterate: class k's mean customers at station
	// i. It survives between solves as the warm-start seed.
	q   []float64 // I×K
	rik []float64 // I×K per-station response times
	// Per-class solution vectors.
	X, R, prevR []float64 // K
	think       []float64 // K
	pop         []int     // K
	prio        []int     // K
	// Per-station vectors.
	U        []float64 // I per-server utilisation
	openUtil []float64 // I exogenous open-class utilisation
	bg       []float64 // I hoisted per-class-update background load
	bgFree   []bool    // I station provably has zero static background
	closedQ  []float64 // I total closed queue (open-class response path)
	// hasHigher[k] reports whether any class outranks class k — with
	// bgFree it selects the fast inflation-free path.
	hasHigher []bool // K

	// Solution metadata.
	iterations int
	converged  bool
	usedWarm   bool // last Schweitzer solve started from a warm iterate

	// Warm-start bookkeeping: the shape q was converged for.
	warmI, warmK int
	warmOK       bool
}

// growF returns s with length n, reusing its backing array when it is
// large enough.
func growF(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func growI(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

func growB(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n)
}

// invalidateWarm forgets the warm-start seed.
func (ws *mvaWorkspace) invalidateWarm() { ws.warmOK = false }

// background returns the utilisation class k must defer to at station
// i: open load, everyone's non-response work, and strictly-higher-
// priority response work.
func (ws *mvaWorkspace) background(p *solvePlan, i, k, K int) float64 {
	u := ws.openUtil[i]
	c := float64(p.stServers[i])
	for j := 0; j < K; j++ {
		u += ws.X[j] * p.stExtra[i*K+j] / c
		if ws.prio[j] > ws.prio[k] {
			u += ws.X[j] * p.stDemand[i*K+j] / c
		}
	}
	if u > utilCap {
		return utilCap
	}
	if u < 0 {
		return 0
	}
	return u
}

// solveSchweitzer runs multiclass Schweitzer approximate MVA on the
// plan's closed network. Station background load — open-class
// utilisation, second phases, async subtrees and higher-priority work
// — inflates a class's effective demand by 1/(1−ρ_background), the
// standard shadow-server approximation. Iteration stops when every
// class's response time changes by less than convergence seconds (the
// paper's LQNS criterion), or after maxIter sweeps.
//
// warm seeds the queue-length iterate from the previous converged
// solve when the shapes match — the initial guess changes, the fixed
// point does not, so adjacent-population sweeps converge in a handful
// of sweeps instead of dozens. damping in (0,1) blends each queue
// update with the previous iterate (successive substitution), damping
// the oscillation that inflates iteration counts at fine criteria;
// 0 keeps the undamped legacy iteration bit-for-bit.
func (ws *mvaWorkspace) solveSchweitzer(p *solvePlan, convergence float64, maxIter int, damping float64, warm bool) error {
	K := len(p.closed)
	I := len(p.procNames)
	if K == 0 {
		return errors.New("lqn: mva needs matching populations and think times")
	}
	if convergence <= 0 {
		convergence = 1e-6
	}
	if maxIter <= 0 {
		maxIter = 10000
	}

	// Seidmann split for multiservers: queueing portion D/c, delay
	// portion D*(c-1)/c.
	ws.dq = growF(ws.dq, I*K)
	ws.dd = growF(ws.dd, I*K)
	for i := 0; i < I; i++ {
		for k := 0; k < K; k++ {
			if !p.stQueueing[i] {
				ws.dq[i*K+k] = 0
				ws.dd[i*K+k] = p.stDemand[i*K+k]
				continue
			}
			c := float64(p.stServers[i])
			ws.dq[i*K+k] = p.stDemand[i*K+k] / c
			ws.dd[i*K+k] = p.stDemand[i*K+k] * (c - 1) / c
		}
	}

	useWarm := warm && ws.warmOK && ws.warmI == I && ws.warmK == K
	ws.usedWarm = useWarm
	ws.warmOK = false
	ws.q = growF(ws.q, I*K)
	ws.X = growF(ws.X, K)
	ws.R = growF(ws.R, K)
	ws.prevR = growF(ws.prevR, K)
	ws.rik = growF(ws.rik, I*K)
	for k := 0; k < K; k++ {
		if !useWarm || ws.pop[k] == 0 {
			// Cold start (and zero-population classes under a warm one,
			// whose stale queues would otherwise pollute the arriving
			// sums): the uniform 1/I spread of the legacy solver.
			ws.X[k] = 0
			for i := 0; i < I; i++ {
				ws.q[i*K+k] = 0
				if ws.pop[k] > 0 {
					ws.q[i*K+k] = float64(ws.pop[k]) / float64(I)
				}
			}
		}
		ws.R[k] = 0
		// prevR starts at zero either way, so convergence is still
		// judged on two consecutive sweeps of the new parameters.
		ws.prevR[k] = 0
	}

	// Static background analysis: a station with no open load and no
	// non-response work inflicts zero background on any class no class
	// outranks, so the O(K) background scan is skipped entirely on the
	// hot path (exactly 1/(1-0) = 1 inflation).
	ws.bg = growF(ws.bg, I)
	ws.bgFree = growB(ws.bgFree, I)
	for i := 0; i < I; i++ {
		free := ws.openUtil[i] == 0
		for j := 0; free && j < K; j++ {
			free = p.stExtra[i*K+j] == 0
		}
		ws.bgFree[i] = free
	}
	ws.hasHigher = growB(ws.hasHigher, K)
	for k := 0; k < K; k++ {
		higher := false
		for j := 0; j < K; j++ {
			if ws.prio[j] > ws.prio[k] {
				higher = true
				break
			}
		}
		ws.hasHigher[k] = higher
	}

	iter := 0
	ws.converged = false
	for ; iter < maxIter; iter++ {
		maxDQ := 0.0
		for k := 0; k < K; k++ {
			if ws.pop[k] == 0 {
				ws.X[k], ws.R[k] = 0, 0
				continue
			}
			// Hoisted background pass: one O(K) scan per needed station
			// per class update, instead of a closure call inside the
			// station loop. X and q are not mutated until after the
			// station loop, so the values are identical.
			if ws.hasHigher[k] {
				for i := 0; i < I; i++ {
					if p.stQueueing[i] && ws.dq[i*K+k] > 0 {
						ws.bg[i] = ws.background(p, i, k, K)
					}
				}
			} else {
				for i := 0; i < I; i++ {
					if p.stQueueing[i] && ws.dq[i*K+k] > 0 && !ws.bgFree[i] {
						ws.bg[i] = ws.background(p, i, k, K)
					}
				}
			}
			var rTotal float64
			for i := 0; i < I; i++ {
				var r float64
				if p.stQueueing[i] && ws.dq[i*K+k] > 0 {
					// Schweitzer estimate of the queue seen at
					// arrival: same-or-higher priority classes only —
					// lower-priority work is pre-empted, not queued
					// behind.
					arriving := 0.0
					for j := 0; j < K; j++ {
						if ws.prio[j] < ws.prio[k] {
							continue
						}
						if j == k {
							arriving += ws.q[i*K+j] * float64(ws.pop[k]-1) / float64(ws.pop[k])
						} else {
							arriving += ws.q[i*K+j]
						}
					}
					if ws.bgFree[i] && !ws.hasHigher[k] {
						// Background provably zero: 1/(1−0) = 1, so the
						// inflation multiply is dropped (bit-identical).
						r = ws.dq[i*K+k]*(1+arriving) + ws.dd[i*K+k]
					} else {
						inflate := 1 / (1 - ws.bg[i])
						r = ws.dq[i*K+k]*inflate*(1+arriving) + ws.dd[i*K+k]
					}
				} else {
					r = ws.dq[i*K+k] + ws.dd[i*K+k]
				}
				ws.rik[i*K+k] = r
				rTotal += r
			}
			ws.R[k] = rTotal
			ws.X[k] = float64(ws.pop[k]) / (ws.think[k] + rTotal)
			for i := 0; i < I; i++ {
				nq := ws.X[k] * ws.rik[i*K+k]
				if damping > 0 {
					nq = damping*ws.q[i*K+k] + (1-damping)*nq
				}
				if d := math.Abs(nq - ws.q[i*K+k]); d > maxDQ {
					maxDQ = d
				}
				ws.q[i*K+k] = nq
			}
		}
		maxDR := 0.0
		for k := 0; k < K; k++ {
			if d := math.Abs(ws.R[k] - ws.prevR[k]); d > maxDR {
				maxDR = d
			}
			ws.prevR[k] = ws.R[k]
		}
		// The queue-length tolerance scales with the response-time
		// criterion so a coarse criterion (the paper's 20 ms) actually
		// stops early — the source of its small-spacing noise.
		if maxDR < convergence && maxDQ < math.Max(1e-6, convergence) {
			ws.converged = true
			iter++
			break
		}
	}
	ws.iterations = iter

	ws.U = growF(ws.U, I)
	for i := 0; i < I; i++ {
		u := ws.openUtil[i]
		for k := 0; k < K; k++ {
			u += ws.X[k] * (p.stDemand[i*K+k] + p.stExtra[i*K+k]) / float64(p.stServers[i])
		}
		ws.U[i] = u
	}

	ws.warmI, ws.warmK = I, K
	ws.warmOK = ws.converged
	return nil
}

// exactApplicable rejects features the exact recursion does not cover.
func (p *solvePlan) exactApplicable(ws *mvaWorkspace) error {
	if len(p.closed) != 1 || len(p.open) != 0 {
		return errors.New("lqn: exact MVA supports exactly one closed class and no open classes")
	}
	for i := range p.procNames {
		if p.stExtra[i] != 0 {
			return errors.New("lqn: exact MVA does not support second phases or asynchronous calls")
		}
		if ws.openUtil[i] != 0 {
			return errors.New("lqn: exact MVA does not support open load")
		}
	}
	return nil
}

// solveExact runs the exact single-class MVA recursion (with the
// Seidmann multiserver transformation), for the ablation comparison
// against the Schweitzer approximation. K is 1, so the flattened
// matrices are plain per-station vectors.
func (ws *mvaWorkspace) solveExact(p *solvePlan) error {
	pop := ws.pop[0]
	think := ws.think[0]
	if pop < 0 {
		return fmt.Errorf("lqn: negative population %d", pop)
	}
	I := len(p.procNames)
	ws.dq = growF(ws.dq, I)
	ws.dd = growF(ws.dd, I)
	for i := 0; i < I; i++ {
		if !p.stQueueing[i] {
			ws.dq[i] = 0
			ws.dd[i] = p.stDemand[i]
			continue
		}
		c := float64(p.stServers[i])
		ws.dq[i] = p.stDemand[i] / c
		ws.dd[i] = p.stDemand[i] * (c - 1) / c
	}
	ws.q = growF(ws.q, I)
	for i := range ws.q {
		ws.q[i] = 0
	}
	var x, rTotal float64
	for n := 1; n <= pop; n++ {
		rTotal = 0
		for i := 0; i < I; i++ {
			var r float64
			if ws.dq[i] > 0 {
				r = ws.dq[i]*(1+ws.q[i]) + ws.dd[i]
			} else {
				r = ws.dd[i]
			}
			rTotal += r
		}
		x = float64(n) / (think + rTotal)
		for i := 0; i < I; i++ {
			var r float64
			if ws.dq[i] > 0 {
				r = ws.dq[i]*(1+ws.q[i]) + ws.dd[i]
			} else {
				r = ws.dd[i]
			}
			ws.q[i] = x * r
		}
	}
	ws.X = growF(ws.X, 1)
	ws.R = growF(ws.R, 1)
	ws.X[0], ws.R[0] = x, rTotal
	ws.U = growF(ws.U, I)
	for i := 0; i < I; i++ {
		ws.U[i] = x * p.stDemand[i] / float64(p.stServers[i])
	}
	ws.iterations = pop
	ws.converged = true
	ws.usedWarm = false
	// The exact recursion's queue lengths are not a Schweitzer iterate;
	// never warm-start from them.
	ws.invalidateWarm()
	return nil
}
