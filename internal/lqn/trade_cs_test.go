package lqn

import (
	"testing"

	"perfpred/internal/workload"
)

func csModel(t *testing.T, n int) *Model {
	t.Helper()
	m, err := NewTradeModel(workload.AppServF(), workload.CaseStudyDB(), workload.CaseStudyDemands(), workload.TypicalWorkload(n))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAddCriticalSectionValidation(t *testing.T) {
	m := csModel(t, 100)
	if err := AddCriticalSection(m, 1, 0, 0.5); err == nil {
		t.Fatal("zero mean time should fail")
	}
	if err := AddCriticalSection(m, 1, 0.01, 0); err == nil {
		t.Fatal("zero fraction should fail")
	}
	if err := AddCriticalSection(m, 0, 0.01, 0.5); err == nil {
		t.Fatal("zero speed should fail")
	}
	if err := AddCriticalSection(m, 1, 0.01, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := AddCriticalSection(m, 1, 0.01, 0.5); err == nil {
		t.Fatal("double profiling should fail")
	}
}

func TestProfiledModelPredictsBottleneck(t *testing.T) {
	// At a load past the bottlenecked ceiling but below the
	// unconstrained one, the profiled model predicts a far higher RT
	// than the naive model.
	const n = 1150 // ≈ 135 req/s offered; ceiling with CS ≈ 119
	naive := csModel(t, n)
	naiveRes, err := Solve(naive, Options{})
	if err != nil {
		t.Fatal(err)
	}
	profiled := csModel(t, n)
	if err := AddCriticalSection(profiled, 1, 0.010, 0.30); err != nil {
		t.Fatal(err)
	}
	profRes, err := Solve(profiled, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nRT := naiveRes.MeanResponseTime()
	pRT := profRes.MeanResponseTime()
	if pRT < 5*nRT {
		t.Fatalf("profiled RT %v should dwarf naive %v past the hidden ceiling", pRT, nRT)
	}
	// Profiled throughput pins near the bottleneck ceiling.
	x := profRes.TotalThroughput()
	if x > 125 || x < 105 {
		t.Fatalf("profiled throughput = %v, want ≈119", x)
	}
}
