package lqn

import (
	"sync/atomic"

	"perfpred/internal/obs"
)

// solverMetrics are the package-level solver counters. They are global
// rather than per-Solver because solvers are created freely inside
// sweeps and fixed-point loops; the interesting totals are
// process-wide.
type solverMetrics struct {
	solves       *obs.Counter // completed Solve calls (all paths)
	iterations   *obs.Counter // MVA sweeps (Schweitzer) / recursion steps (exact)
	warmHits     *obs.Counter // Schweitzer solves seeded from a warm iterate
	warmMisses   *obs.Counter // warm-start-enabled solves that started cold
	convFailures *obs.Counter // solves that hit the iteration cap unconverged
}

var metrics atomic.Pointer[solverMetrics]

// EnableMetrics registers the solver's counters on r and turns
// instrumentation on for every Solver in the process. A nil r disables
// instrumentation again. The hot path cost when disabled is one atomic
// pointer load per Solve.
func EnableMetrics(r *obs.Registry) {
	if r == nil {
		metrics.Store(nil)
		return
	}
	metrics.Store(&solverMetrics{
		solves:       r.Counter("lqn_solver_solves"),
		iterations:   r.Counter("lqn_solver_mva_iterations"),
		warmHits:     r.Counter("lqn_solver_warm_hits"),
		warmMisses:   r.Counter("lqn_solver_warm_misses"),
		convFailures: r.Counter("lqn_solver_convergence_failures"),
	})
}

// record publishes one completed solve. warmEligible is true only for
// warm-start-enabled Schweitzer solves, the one path where hit/miss is
// meaningful.
func (m *solverMetrics) record(iterations int, converged, warmEligible, usedWarm bool) {
	if m == nil {
		return
	}
	m.solves.Inc()
	m.iterations.Add(uint64(iterations))
	if !converged {
		m.convFailures.Inc()
	}
	if warmEligible {
		if usedWarm {
			m.warmHits.Inc()
		} else {
			m.warmMisses.Inc()
		}
	}
}
