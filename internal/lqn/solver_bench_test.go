package lqn

import (
	"testing"

	"perfpred/internal/workload"
)

func benchTradeModel(b *testing.B, clients int) *Model {
	b.Helper()
	m, err := NewTradeModel(workload.AppServF(), workload.CaseStudyDB(), workload.CaseStudyDemands(), workload.MixedWorkload(clients, 0.25))
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkSolve is the one-shot entry point: full resolution plus the
// MVA iteration on every call, the cost a naive sweep pays per cell.
func BenchmarkSolve(b *testing.B) {
	m := benchTradeModel(b, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(m, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverSolve is the retained-workspace steady state: cached
// plan, reused buffers. The headline here is 0 allocs/op.
func BenchmarkSolverSolve(b *testing.B) {
	m := benchTradeModel(b, 400)
	s := NewSolver()
	if _, err := s.Solve(m, Options{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Classes[0].Population = 400 + 50*(i%2)
		if _, err := s.Solve(m, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverSolveWarm adds warm starting on top of the retained
// workspace — the configuration the sweeps and fixed-point loops use.
func BenchmarkSolverSolveWarm(b *testing.B) {
	m := benchTradeModel(b, 400)
	s := NewSolver()
	s.WarmStart = true
	if _, err := s.Solve(m, Options{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Classes[0].Population = 400 + 50*(i%2)
		if _, err := s.Solve(m, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveMVA isolates the Schweitzer kernel on the general
// path: priorities and a second phase defeat the background-free fast
// path, so every station pays the O(K) background scan.
func BenchmarkSolveMVA(b *testing.B) {
	m := &Model{
		Processors: []*Processor{
			{Name: "cpu", Mult: 2, Speed: 1, Sched: PS},
			{Name: "disk", Mult: 1, Speed: 1, Sched: FCFS},
			{Name: "net", Mult: 1, Speed: 1, Sched: Delay},
		},
		Tasks: []*Task{
			{Name: "app", Processor: "cpu", Mult: 100, Entries: []*Entry{
				{Name: "hi", Demand: 0.004, Demand2: 0.001},
				{Name: "lo", Demand: 0.006},
			}},
			{Name: "io", Processor: "disk", Mult: 100, Entries: []*Entry{
				{Name: "read", Demand: 0.002},
			}},
			{Name: "wire", Processor: "net", Mult: 100, Entries: []*Entry{
				{Name: "hop", Demand: 0.010},
			}},
		},
		Classes: []*Class{
			{Name: "urgent", Population: 40, Think: 0.5, Priority: 1, Calls: []Call{{Target: "hi", Mean: 1}, {Target: "read", Mean: 2}, {Target: "hop", Mean: 1}}},
			{Name: "batch", Population: 200, Think: 1, Calls: []Call{{Target: "lo", Mean: 1}, {Target: "read", Mean: 3}, {Target: "hop", Mean: 1}}},
		},
	}
	s := NewSolver()
	if _, err := s.Solve(m, Options{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(m, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveTaskLayering covers the layered (method-of-layers)
// path, whose fixed point dominates figure/table generation when
// enabled.
func BenchmarkSolveTaskLayering(b *testing.B) {
	m := benchTradeModel(b, 400)
	s := NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(m, Options{TaskLayering: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveExactMVA covers the single-class exact recursion used
// by the ablation comparison.
func BenchmarkSolveExactMVA(b *testing.B) {
	m := tinyModel()
	m.Classes[0].Population = 500
	s := NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(m, Options{ExactMVA: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// sweepBenchmark runs an adjacent-population sweep and reports total
// MVA iterations as a custom metric — the quantity warm starting is
// supposed to reduce.
func sweepBenchmark(b *testing.B, warm bool) {
	m := benchTradeModel(b, 50)
	s := NewSolver()
	s.WarmStart = warm
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		iters := 0
		for n := 50; n <= 2000; n += 50 {
			m.Classes[0].Population = n
			res, err := s.Solve(m, Options{})
			if err != nil {
				b.Fatal(err)
			}
			iters += res.Iterations
		}
		total = iters
	}
	b.ReportMetric(float64(total), "iters/sweep")
}

func BenchmarkSolveSweepCold(b *testing.B) { sweepBenchmark(b, false) }
func BenchmarkSolveSweepWarm(b *testing.B) { sweepBenchmark(b, true) }
