package lqn

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// featureModel builds a two-layer model with one client class calling
// entry "op" on a worker task; mutate adds the feature under test.
func featureModel(pop int, think float64, mutate func(*Model)) *Model {
	m := &Model{
		Processors: []*Processor{
			{Name: "cpu", Mult: 1, Speed: 1, Sched: PS},
			{Name: "disk", Mult: 1, Speed: 1, Sched: FCFS},
		},
		Tasks: []*Task{
			{Name: "worker", Processor: "cpu", Mult: 20, Entries: []*Entry{
				{Name: "op", Demand: 0.010},
			}},
			{Name: "store", Processor: "disk", Mult: 4, Entries: []*Entry{
				{Name: "write", Demand: 0.004},
			}},
		},
		Classes: []*Class{
			{Name: "users", Population: pop, Think: think, Calls: []Call{{Target: "op", Mean: 1}}},
		},
	}
	if mutate != nil {
		mutate(m)
	}
	return m
}

func mustSolve(t *testing.T, m *Model) *Result {
	t.Helper()
	res, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSecondPhaseExcludedFromResponseTime(t *testing.T) {
	// One customer, no contention: the reply is sent after phase 1, so
	// response time is the phase-1 demand only.
	m := featureModel(1, 1, func(m *Model) {
		m.Tasks[0].Entries[0].Demand2 = 0.050
	})
	res := mustSolve(t, m)
	// The caller waits for phase 1 only; the solver adds a small
	// background-load correction for the chance the previous request's
	// phase 2 is still running, so the RT sits just above 10 ms and
	// far below the 60 ms a synchronous equivalent would cost.
	got := res.Classes["users"].ResponseTime
	if got < 0.010 || got > 0.012 {
		t.Fatalf("RT with second phase = %v, want ≈0.010 (phase 1 only)", got)
	}
	// But the processor executes both phases: utilisation reflects
	// 60 ms of work per request.
	x := res.Classes["users"].Throughput
	wantU := x * 0.060
	if got := res.ProcessorUtil["cpu"]; math.Abs(got-wantU) > 1e-9 {
		t.Fatalf("cpu utilisation = %v, want %v", got, wantU)
	}
}

func TestSecondPhaseCongestsOtherRequests(t *testing.T) {
	// Under load, second-phase work occupies the processor and slows
	// everyone, even though no caller waits for it directly.
	base := mustSolve(t, featureModel(40, 0.2, nil))
	loaded := mustSolve(t, featureModel(40, 0.2, func(m *Model) {
		m.Tasks[0].Entries[0].Demand2 = 0.010
	}))
	if loaded.Classes["users"].ResponseTime <= base.Classes["users"].ResponseTime {
		t.Fatalf("second-phase load should raise RT: %v vs %v",
			loaded.Classes["users"].ResponseTime, base.Classes["users"].ResponseTime)
	}
	if loaded.ProcessorUtil["cpu"] <= base.ProcessorUtil["cpu"] {
		t.Fatal("second-phase load should raise utilisation")
	}
}

func TestAsyncCallExcludedFromResponseTime(t *testing.T) {
	// "op" logs asynchronously to the store: the caller does not wait.
	sync := mustSolve(t, featureModel(1, 1, func(m *Model) {
		m.Tasks[0].Entries[0].Calls = []Call{{Target: "write", Mean: 1, Kind: Sync}}
	}))
	async := mustSolve(t, featureModel(1, 1, func(m *Model) {
		m.Tasks[0].Entries[0].Calls = []Call{{Target: "write", Mean: 1, Kind: Async}}
	}))
	if got, want := sync.Classes["users"].ResponseTime, 0.014; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sync RT = %v, want %v", got, want)
	}
	if got, want := async.Classes["users"].ResponseTime, 0.010; math.Abs(got-want) > 1e-9 {
		t.Fatalf("async RT = %v, want %v (disk write not awaited)", got, want)
	}
	// The disk still does the work.
	if async.ProcessorUtil["disk"] <= 0 {
		t.Fatal("async target should still be utilised")
	}
	if math.Abs(async.ProcessorUtil["disk"]-async.Classes["users"].Throughput*0.004) > 1e-9 {
		t.Fatalf("disk utilisation = %v", async.ProcessorUtil["disk"])
	}
}

func TestForwardIncludedInResponseTime(t *testing.T) {
	// Forwarding behaves like a synchronous chain for the caller's
	// response time.
	fwd := mustSolve(t, featureModel(1, 1, func(m *Model) {
		m.Tasks[0].Entries[0].Calls = []Call{{Target: "write", Mean: 1, Kind: Forward}}
	}))
	if got, want := fwd.Classes["users"].ResponseTime, 0.014; math.Abs(got-want) > 1e-9 {
		t.Fatalf("forwarded RT = %v, want %v", got, want)
	}
}

func TestOpenClassMM1(t *testing.T) {
	// A pure open class on a single PS processor is M/M/1: with λ=50
	// and D=10ms, ρ=0.5 and R = D/(1−ρ) = 20ms.
	m := featureModel(0, 0, func(m *Model) {
		m.Classes = []*Class{
			{Name: "stream", ArrivalRate: 50, Calls: []Call{{Target: "op", Mean: 1}}},
		}
	})
	res := mustSolve(t, m)
	c := res.Classes["stream"]
	if c.Throughput != 50 {
		t.Fatalf("open throughput = %v, want the arrival rate", c.Throughput)
	}
	if math.Abs(c.ResponseTime-0.020) > 1e-9 {
		t.Fatalf("open RT = %v, want 0.020 (M/M/1)", c.ResponseTime)
	}
	if math.Abs(res.ProcessorUtil["cpu"]-0.5) > 1e-9 {
		t.Fatalf("open utilisation = %v, want 0.5", res.ProcessorUtil["cpu"])
	}
}

func TestMixedNetworkOpenLoadSlowsClosedClass(t *testing.T) {
	base := mustSolve(t, featureModel(20, 0.5, nil))
	mixed := mustSolve(t, featureModel(20, 0.5, func(m *Model) {
		m.Classes = append(m.Classes, &Class{
			Name: "stream", ArrivalRate: 40, Calls: []Call{{Target: "op", Mean: 1}},
		})
	}))
	if mixed.Classes["users"].ResponseTime <= base.Classes["users"].ResponseTime {
		t.Fatalf("open load should slow the closed class: %v vs %v",
			mixed.Classes["users"].ResponseTime, base.Classes["users"].ResponseTime)
	}
	// And the closed queue slows the open class beyond bare M/M/1.
	pureOpen := 0.010 / (1 - 40*0.010)
	if mixed.Classes["stream"].ResponseTime <= pureOpen {
		t.Fatalf("closed contention should slow the open class: %v vs %v",
			mixed.Classes["stream"].ResponseTime, pureOpen)
	}
}

func TestOpenSaturationRejected(t *testing.T) {
	m := featureModel(0, 0, func(m *Model) {
		m.Classes = []*Class{
			{Name: "flood", ArrivalRate: 150, Calls: []Call{{Target: "op", Mean: 1}}}, // ρ = 1.5
		}
	})
	if _, err := Solve(m, Options{}); err == nil || !strings.Contains(err.Error(), "saturate") {
		t.Fatalf("expected saturation error, got %v", err)
	}
}

func TestPriorityClassesOrdered(t *testing.T) {
	// Two identical classes, one high priority: under contention the
	// high-priority class must see a lower response time.
	build := func(hiPrio int) *Model {
		return featureModel(0, 0, func(m *Model) {
			m.Classes = []*Class{
				{Name: "gold", Population: 30, Think: 0.1, Priority: hiPrio, Calls: []Call{{Target: "op", Mean: 1}}},
				{Name: "bronze", Population: 30, Think: 0.1, Priority: 0, Calls: []Call{{Target: "op", Mean: 1}}},
			}
		})
	}
	equal := mustSolve(t, build(0))
	eg := equal.Classes["gold"].ResponseTime
	eb := equal.Classes["bronze"].ResponseTime
	if math.Abs(eg-eb)/eb > 0.01 {
		t.Fatalf("equal priorities should equalise RT: %v vs %v", eg, eb)
	}
	prio := mustSolve(t, build(5))
	pg := prio.Classes["gold"].ResponseTime
	pb := prio.Classes["bronze"].ResponseTime
	if pg >= eg {
		t.Fatalf("priority should cut gold's RT: %v vs %v", pg, eg)
	}
	if pb <= eb {
		t.Fatalf("priority should raise bronze's RT: %v vs %v", pb, eb)
	}
	if pg >= pb {
		t.Fatalf("gold %v should beat bronze %v", pg, pb)
	}
}

func TestFeatureValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Model)
		want   string
	}{
		{"negative demand2", func(m *Model) { m.Tasks[0].Entries[0].Demand2 = -1 }, "second-phase"},
		{"bad call kind", func(m *Model) {
			m.Tasks[0].Entries[0].Calls = []Call{{Target: "write", Mean: 1, Kind: "rpc"}}
		}, "call kind"},
		{"negative arrival rate", func(m *Model) { m.Classes[0].ArrivalRate = -1 }, "arrival rate"},
		{"open with population", func(m *Model) { m.Classes[0].ArrivalRate = 10 }, "also has population"},
		{"async reference call", func(m *Model) { m.Classes[0].Calls[0].Kind = Async }, "asynchronous top-level"},
	}
	for _, tc := range cases {
		m := featureModel(5, 1, tc.mutate)
		err := m.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestExactMVARejectsFeatures(t *testing.T) {
	cases := []func(*Model){
		func(m *Model) { m.Tasks[0].Entries[0].Demand2 = 0.01 },
		func(m *Model) {
			m.Tasks[0].Entries[0].Calls = []Call{{Target: "write", Mean: 1, Kind: Async}}
		},
		func(m *Model) {
			m.Classes = append(m.Classes, &Class{
				Name: "stream", ArrivalRate: 10, Calls: []Call{{Target: "op", Mean: 1}},
			})
		},
	}
	for i, mutate := range cases {
		m := featureModel(5, 1, mutate)
		if _, err := Solve(m, Options{ExactMVA: true}); err == nil {
			t.Fatalf("case %d: exact MVA should reject the feature", i)
		}
	}
}

func TestFeatureJSONRoundTrip(t *testing.T) {
	m := featureModel(0, 0, func(m *Model) {
		m.Tasks[0].Entries[0].Demand2 = 0.005
		m.Tasks[0].Entries[0].Calls = []Call{{Target: "write", Mean: 2, Kind: Async}}
		m.Classes = []*Class{
			{Name: "gold", Population: 10, Think: 1, Priority: 3, Calls: []Call{{Target: "op", Mean: 1}}},
			{Name: "stream", ArrivalRate: 25, Calls: []Call{{Target: "op", Mean: 1, Kind: Forward}}},
		}
	})
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := mustSolve(t, m)
	b := mustSolve(t, back)
	for name, ca := range a.Classes {
		cb := b.Classes[name]
		if ca.ResponseTime != cb.ResponseTime || ca.Throughput != cb.Throughput {
			t.Fatalf("round trip changed %q: %+v vs %+v", name, ca, cb)
		}
	}
}

func TestMultiserverProcessorAsymptotics(t *testing.T) {
	// A c-server processor saturates at c/D: with c=4 and D=10ms the
	// ceiling is 400 req/s, reached under heavy closed load.
	m := &Model{
		Processors: []*Processor{{Name: "quad", Mult: 4, Speed: 1, Sched: PS}},
		Tasks: []*Task{{Name: "app", Processor: "quad", Mult: 100, Entries: []*Entry{
			{Name: "op", Demand: 0.010},
		}}},
		Classes: []*Class{{Name: "users", Population: 5000, Think: 1, Calls: []Call{{Target: "op", Mean: 1}}}},
	}
	res := mustSolve(t, m)
	x := res.Classes["users"].Throughput
	if math.Abs(x-400)/400 > 0.02 {
		t.Fatalf("4-server throughput = %v, want ≈400", x)
	}
	if u := res.ProcessorUtil["quad"]; math.Abs(u-1) > 0.02 {
		t.Fatalf("per-server utilisation = %v, want ≈1", u)
	}
	// One customer on a multiserver sees no queueing: R = D.
	m.Classes[0].Population = 1
	res = mustSolve(t, m)
	if got := res.Classes["users"].ResponseTime; math.Abs(got-0.010) > 1e-9 {
		t.Fatalf("single-customer RT = %v, want 0.010", got)
	}
}

func TestDelayProcessorAddsNoQueueing(t *testing.T) {
	// A Delay resource (infinite servers) contributes its demand and
	// nothing else, at any load.
	m := &Model{
		Processors: []*Processor{
			{Name: "cpu", Mult: 1, Speed: 1, Sched: PS},
			{Name: "net", Mult: 1, Speed: 1, Sched: Delay},
		},
		Tasks: []*Task{
			{Name: "app", Processor: "cpu", Mult: 50, Entries: []*Entry{
				{Name: "op", Demand: 0.002, Calls: []Call{{Target: "xfer", Mean: 1}}},
			}},
			{Name: "wire", Processor: "net", Mult: 50, Entries: []*Entry{
				{Name: "xfer", Demand: 0.050},
			}},
		},
		Classes: []*Class{{Name: "users", Population: 300, Think: 1, Calls: []Call{{Target: "op", Mean: 1}}}},
	}
	res := mustSolve(t, m)
	// cpu is the only queueing resource: ceiling 1/0.002 = 500/s; at
	// N=300, X = 300/(1 + R) stays below it, and R >= 0.052 always.
	r := res.Classes["users"].ResponseTime
	if r < 0.052 {
		t.Fatalf("RT %v below the demand floor", r)
	}
	// The delay resource shows no utilisation-driven queueing: doubling
	// its demand shifts RT by exactly the demand increase at light load.
	m.Tasks[1].Entries[0].Demand = 0.100
	m.Classes[0].Population = 1
	res2 := mustSolve(t, m)
	want := 0.002 + 0.100
	if got := res2.Classes["users"].ResponseTime; math.Abs(got-want) > 1e-9 {
		t.Fatalf("light-load RT = %v, want %v", got, want)
	}
}
