package lqn

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadModel hardens the JSON model parser: arbitrary input must
// either produce a validated model that solves and round-trips, or a
// clean error — never a panic.
func FuzzReadModel(f *testing.F) {
	f.Add(`{"processors":[{"name":"cpu","mult":1,"speed":1,"sched":"ps"}],
	        "tasks":[{"name":"app","processor":"cpu","mult":5,
	                  "entries":[{"name":"op","demand":0.02}]}],
	        "classes":[{"name":"users","population":10,"think":1,
	                    "calls":[{"target":"op","mean":1}]}]}`)
	f.Add(`{"processors":[{"name":"p","mult":2,"speed":2,"sched":"fcfs"}],
	        "tasks":[{"name":"t","processor":"p","mult":1,
	                  "entries":[{"name":"e","demand":0.1,"demand2":0.05,
	                              "calls":[{"target":"e2","mean":1.5,"kind":"async"}]},
	                             {"name":"e2","demand":0.01}]}],
	        "classes":[{"name":"open","arrivalRate":3,"calls":[{"target":"e","mean":1}]},
	                   {"name":"gold","population":4,"think":0.5,"priority":2,
	                    "calls":[{"target":"e","mean":1}]}]}`)
	f.Add(`{}`)
	f.Add(`{"processors":[]}`)
	f.Add(`not json at all`)
	f.Add(`{"processors":[{"name":"p","mult":1,"speed":1,"sched":"ps"}],
	        "tasks":[{"name":"t","processor":"p","mult":1,
	                  "entries":[{"name":"a","demand":0,"calls":[{"target":"a","mean":1}]}]}],
	        "classes":[{"name":"c","population":1,"calls":[{"target":"a","mean":1}]}]}`)

	f.Fuzz(func(t *testing.T, doc string) {
		m, err := ReadModel(strings.NewReader(doc))
		if err != nil {
			return // clean rejection
		}
		// Anything accepted must be internally consistent: it
		// re-validates, serialises, re-parses and solves without
		// panicking.
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted model fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteModel(&buf, m); err != nil {
			t.Fatalf("accepted model fails to serialise: %v", err)
		}
		back, err := ReadModel(&buf)
		if err != nil {
			t.Fatalf("serialised model fails to re-parse: %v", err)
		}
		// Solving may fail cleanly (e.g. open saturation) but must not
		// panic or hang; cap the iteration budget.
		_, _ = Solve(back, Options{MaxIterations: 200})
	})
}
