package lqn

// classVisits separates a class's entry invocation counts by what they
// contribute to:
//
//   - resp: invocations whose service the top-level caller waits for
//     (synchronous and forwarded chains) — these add response time;
//   - util: every invocation, including the subtrees reached only
//     through asynchronous calls — these add processor load.
//
// Second-phase demands are handled at demand-folding time: they belong
// to util but never to resp.
type classVisits struct {
	resp map[string]float64
	util map[string]float64
}

// visitRatios computes, for one class, the expected number of
// invocations of every entry per top-level request, by chaining mean
// call counts down the (acyclic) call graph. An asynchronous call cuts
// the response-relevant chain: everything below it still loads
// processors but adds no caller-visible latency.
func visitRatios(r *resolved, cl *Class) classVisits {
	v := classVisits{
		resp: make(map[string]float64),
		util: make(map[string]float64),
	}
	var descend func(entry string, mult float64, inResp bool)
	descend = func(entry string, mult float64, inResp bool) {
		if mult == 0 {
			return
		}
		v.util[entry] += mult
		if inResp {
			v.resp[entry] += mult
		}
		for _, c := range r.entries[entry].Calls {
			descend(c.Target, mult*c.Mean, inResp && c.kind() != Async)
		}
	}
	for _, c := range cl.Calls {
		descend(c.Target, c.Mean, c.kind() != Async)
	}
	return v
}

// classDemands is a class's per-processor demand split.
type classDemands struct {
	// resp is the caller-visible service demand (seconds per top-level
	// request) at each processor.
	resp map[string]float64
	// util is the total demand including second phases and
	// asynchronous subtrees — what the processor actually executes per
	// top-level request.
	util map[string]float64
}

// processorDemands folds a class's visit ratios into per-processor
// service demands, dividing by processor speed. Phase-1 demand counts
// toward both response and utilisation; phase-2 and async-only
// invocations count toward utilisation only.
//
// Entries fold in sorted-name order (r.entryNames) so the per-processor
// sums accumulate in a fixed floating-point order: the result is
// deterministic run to run, which ranging over the visit maps would not
// guarantee once a processor hosts several entries of one class.
func processorDemands(r *resolved, v classVisits) classDemands {
	d := classDemands{
		resp: make(map[string]float64),
		util: make(map[string]float64),
	}
	for _, entry := range r.entryNames {
		visits, ok := v.util[entry]
		if !ok {
			continue
		}
		task := r.entryTask[entry]
		proc := r.processors[task.Processor]
		e := r.entries[entry]
		d.util[proc.Name] += visits * (e.Demand + e.Demand2) / proc.Speed
	}
	for _, entry := range r.entryNames {
		visits, ok := v.resp[entry]
		if !ok {
			continue
		}
		task := r.entryTask[entry]
		proc := r.processors[task.Processor]
		e := r.entries[entry]
		d.resp[proc.Name] += visits * e.Demand / proc.Speed
	}
	return d
}
