package lqn

import (
	"encoding/json"
	"fmt"
	"io"
)

// The JSON document format mirrors the Model types directly, giving
// cmd/lqnsolve a declarative input language in the spirit of the LQNS
// model files:
//
//	{
//	  "processors": [{"name": "appcpu", "mult": 1, "speed": 1.0, "sched": "ps"}],
//	  "tasks": [{"name": "app", "processor": "appcpu", "mult": 50,
//	             "entries": [{"name": "browse", "demand": 0.0054,
//	                          "calls": [{"target": "db_browse", "mean": 1.14}]}]}],
//	  "classes": [{"name": "browse", "population": 500, "think": 7,
//	               "calls": [{"target": "browse", "mean": 1}]}]
//	}

type jsonModel struct {
	Processors []jsonProcessor `json:"processors"`
	Tasks      []jsonTask      `json:"tasks"`
	Classes    []jsonClass     `json:"classes"`
}

type jsonProcessor struct {
	Name  string  `json:"name"`
	Mult  int     `json:"mult"`
	Speed float64 `json:"speed"`
	Sched string  `json:"sched"`
}

type jsonTask struct {
	Name      string      `json:"name"`
	Processor string      `json:"processor"`
	Mult      int         `json:"mult"`
	Entries   []jsonEntry `json:"entries"`
}

type jsonEntry struct {
	Name    string     `json:"name"`
	Demand  float64    `json:"demand"`
	Demand2 float64    `json:"demand2,omitempty"`
	Calls   []jsonCall `json:"calls,omitempty"`
}

type jsonCall struct {
	Target string  `json:"target"`
	Mean   float64 `json:"mean"`
	Kind   string  `json:"kind,omitempty"`
}

type jsonClass struct {
	Name        string     `json:"name"`
	Population  int        `json:"population,omitempty"`
	Think       float64    `json:"think,omitempty"`
	ArrivalRate float64    `json:"arrivalRate,omitempty"`
	Priority    int        `json:"priority,omitempty"`
	Calls       []jsonCall `json:"calls"`
}

// ReadModel parses and validates a JSON model document.
func ReadModel(r io.Reader) (*Model, error) {
	var jm jsonModel
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jm); err != nil {
		return nil, fmt.Errorf("lqn: parsing model: %w", err)
	}
	m := &Model{}
	for _, p := range jm.Processors {
		m.Processors = append(m.Processors, &Processor{
			Name: p.Name, Mult: p.Mult, Speed: p.Speed, Sched: Scheduling(p.Sched),
		})
	}
	for _, t := range jm.Tasks {
		task := &Task{Name: t.Name, Processor: t.Processor, Mult: t.Mult}
		for _, e := range t.Entries {
			entry := &Entry{Name: e.Name, Demand: e.Demand, Demand2: e.Demand2}
			for _, c := range e.Calls {
				entry.Calls = append(entry.Calls, Call{Target: c.Target, Mean: c.Mean, Kind: CallKind(c.Kind)})
			}
			task.Entries = append(task.Entries, entry)
		}
		m.Tasks = append(m.Tasks, task)
	}
	for _, cl := range jm.Classes {
		class := &Class{
			Name:        cl.Name,
			Population:  cl.Population,
			Think:       cl.Think,
			ArrivalRate: cl.ArrivalRate,
			Priority:    cl.Priority,
		}
		for _, c := range cl.Calls {
			class.Calls = append(class.Calls, Call{Target: c.Target, Mean: c.Mean, Kind: CallKind(c.Kind)})
		}
		m.Classes = append(m.Classes, class)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// WriteModel serialises a model as indented JSON.
func WriteModel(w io.Writer, m *Model) error {
	jm := jsonModel{}
	for _, p := range m.Processors {
		jm.Processors = append(jm.Processors, jsonProcessor{
			Name: p.Name, Mult: p.Mult, Speed: p.Speed, Sched: string(p.Sched),
		})
	}
	for _, t := range m.Tasks {
		jt := jsonTask{Name: t.Name, Processor: t.Processor, Mult: t.Mult}
		for _, e := range t.Entries {
			je := jsonEntry{Name: e.Name, Demand: e.Demand, Demand2: e.Demand2}
			for _, c := range e.Calls {
				je.Calls = append(je.Calls, jsonCall{Target: c.Target, Mean: c.Mean, Kind: string(c.Kind)})
			}
			jt.Entries = append(jt.Entries, je)
		}
		jm.Tasks = append(jm.Tasks, jt)
	}
	for _, cl := range m.Classes {
		jc := jsonClass{
			Name:        cl.Name,
			Population:  cl.Population,
			Think:       cl.Think,
			ArrivalRate: cl.ArrivalRate,
			Priority:    cl.Priority,
		}
		for _, c := range cl.Calls {
			jc.Calls = append(jc.Calls, jsonCall{Target: c.Target, Mean: c.Mean, Kind: string(c.Kind)})
		}
		jm.Classes = append(jm.Classes, jc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jm)
}
