package lqn

import (
	"bytes"
	"strings"
	"testing"

	"perfpred/internal/workload"
)

func TestJSONRoundTrip(t *testing.T) {
	m, err := NewTradeModel(workload.AppServF(), workload.CaseStudyDB(), workload.CaseStudyDemands(), workload.MixedWorkload(400, 0.10))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Solving both gives identical predictions.
	a, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(back, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, ca := range a.Classes {
		cb, ok := b.Classes[name]
		if !ok {
			t.Fatalf("round-trip lost class %q", name)
		}
		if ca.ResponseTime != cb.ResponseTime || ca.Throughput != cb.Throughput {
			t.Fatalf("round-trip changed predictions for %q: %+v vs %+v", name, ca, cb)
		}
	}
}

func TestReadModelRejectsGarbage(t *testing.T) {
	if _, err := ReadModel(strings.NewReader("not json")); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ReadModel(strings.NewReader(`{"bogus": true}`)); err == nil {
		t.Fatal("expected unknown-field error")
	}
	// Valid JSON, invalid model.
	doc := `{"processors":[{"name":"p","mult":1,"speed":1,"sched":"ps"}],
	         "tasks":[{"name":"t","processor":"p","mult":1,
	                   "entries":[{"name":"e","demand":0.1}]}],
	         "classes":[{"name":"c","population":1,"think":0,
	                     "calls":[{"target":"missing","mean":1}]}]}`
	if _, err := ReadModel(strings.NewReader(doc)); err == nil {
		t.Fatal("expected validation error for unknown call target")
	}
}

func TestReadModelMinimalDocument(t *testing.T) {
	doc := `{"processors":[{"name":"cpu","mult":1,"speed":1,"sched":"ps"}],
	         "tasks":[{"name":"app","processor":"cpu","mult":5,
	                   "entries":[{"name":"op","demand":0.02}]}],
	         "classes":[{"name":"users","population":10,"think":1,
	                     "calls":[{"target":"op","mean":1}]}]}`
	m, err := ReadModel(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes["users"].Throughput <= 0 {
		t.Fatal("solved model has zero throughput")
	}
}
