package bench

// EvaluationMatrix prints the paper's §8 qualitative comparison as a
// capability matrix, each cell backed by an experiment in this
// repository (named in the notes).
func (s *Suite) EvaluationMatrix() (*Table, error) {
	t := &Table{
		ID:     "Section 8",
		Title:  "Method evaluation matrix (paper's qualitative comparison)",
		Header: []string{"Criterion", "Historical", "Layered queuing", "Hybrid"},
	}
	t.AddRow("Systems modelled",
		"any recordable trend (incl. caching)",
		"queuing structures only; caching fixed point unsupported",
		"as layered")
	t.AddRow("Metrics predicted",
		"means, percentiles (direct), stabilisation",
		"steady-state means only",
		"as layered, via pseudo data")
	t.AddRow("Model creation",
		"harder: choose+validate relationships",
		"easy: declare the queuing network",
		"hardest to build, easiest to calibrate")
	t.AddRow("Recalibration",
		"2 points/equation, tens of samples",
		"dedicated single-server runs per request type",
		"layered solves only (no measurements)")
	t.AddRow("Capacity queries",
		"closed-form inversion",
		"search: ~20+ solver evaluations",
		"closed-form inversion")
	t.AddRow("Prediction delay",
		"~ns",
		"µs-s per solve",
		"one-off start-up, then ~ns")
	t.AddNote("evidence: 'cache' (§7.2), 'percentiles'/'percentile-direct' (§7.1, §8.2), 'stabilisation' (§8.2), 'data-quantity' (§4.2), 'search' (§8.2), 'delay' (§8.5)")
	return t, nil
}
