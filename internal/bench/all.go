package bench

import (
	"fmt"
	"io"
)

// Experiment names in paper order, resolvable by Run.
var experimentOrder = []string{
	"table1", "table2", "gradient", "data-quantity",
	"figure2", "figure3", "figure4",
	"percentiles", "percentile-direct", "cache", "search",
	"stabilisation", "cluster", "open", "bottleneck", "provider",
	"figure5-6", "figure7", "figure8", "uniform", "delay", "matrix",
	"ablation-transition", "ablation-mva", "ablation-convergence", "ablation-lastserver", "ablation-layers",
}

// Run executes one named experiment.
func (s *Suite) Run(name string) (*Table, error) {
	switch name {
	case "table1":
		return s.Table1()
	case "table2":
		return s.Table2()
	case "gradient":
		return s.ThroughputGradient()
	case "data-quantity":
		return s.DataQuantity()
	case "percentile-direct":
		return s.PercentileDirect()
	case "stabilisation":
		return s.Stabilisation()
	case "cluster":
		return s.ClusterStudy()
	case "open":
		return s.OpenWorkload()
	case "matrix":
		return s.EvaluationMatrix()
	case "bottleneck":
		return s.Bottleneck()
	case "provider":
		return s.Provider()
	case "figure2":
		return s.Figure2()
	case "figure3":
		return s.Figure3()
	case "figure4":
		return s.Figure4()
	case "percentiles":
		return s.Percentiles()
	case "cache":
		return s.CacheStudy()
	case "search":
		return s.LQNMaxClientsCost()
	case "figure5-6":
		return s.Figure5and6()
	case "figure7":
		return s.Figure7()
	case "figure8":
		return s.Figure8()
	case "uniform":
		return s.UniformInaccuracy()
	case "delay":
		return s.PredictionDelay()
	case "ablation-transition":
		return s.AblationTransition()
	case "ablation-mva":
		return s.AblationMVA()
	case "ablation-convergence":
		return s.AblationConvergence()
	case "ablation-lastserver":
		return s.AblationLastServer()
	case "ablation-layers":
		return s.AblationTaskLayering()
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q", name)
	}
}

// Experiments returns the runnable experiment names in paper order.
func Experiments() []string {
	out := make([]string, len(experimentOrder))
	copy(out, experimentOrder)
	return out
}

// RunAll executes every experiment in paper order, printing each table
// to w as it completes.
func (s *Suite) RunAll(w io.Writer) error {
	for _, name := range experimentOrder {
		t, err := s.Run(name)
		if err != nil {
			return fmt.Errorf("bench: experiment %s: %w", name, err)
		}
		t.Fprint(w)
	}
	return nil
}
