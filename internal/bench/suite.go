package bench

import (
	"fmt"

	"perfpred/internal/hist"
	"perfpred/internal/hybrid"
	"perfpred/internal/lqn"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// Suite owns the shared calibration state the experiments reuse: the
// measured max throughputs, the gradient m, the historical models of
// the established servers, relationship 2, the layered-queuing
// demands, and the hybrid model. Everything is built lazily and
// memoised, so one Suite can serve all tables and figures without
// recalibrating.
type Suite struct {
	// Opt configures simulated measurements; LQNOpt the layered solver.
	Opt    trade.MeasureOptions
	LQNOpt lqn.Options

	maxThroughput map[string]float64 // arch name -> measured Xmax (typical)
	gradient      float64
	histModels    map[string]*hist.ServerModel // established archs
	rel2          *hist.Relationship2
	histNew       *hist.ServerModel // AppServS via relationship 2
	lqnDemands    map[workload.RequestType]workload.Demand
	hybridModel   *hybrid.Model
	laplaceScale  float64
}

// NewSuite returns a harness with the given measurement seed.
func NewSuite(seed int64) *Suite {
	return &Suite{
		Opt:           trade.MeasureOptions{Seed: seed, WarmUp: 30, Duration: 120},
		LQNOpt:        lqn.Options{Convergence: 1e-6},
		maxThroughput: make(map[string]float64),
		histModels:    make(map[string]*hist.ServerModel),
	}
}

// servers returns the case-study architectures keyed by name.
func servers() map[string]workload.ServerArch {
	return map[string]workload.ServerArch{
		"AppServS":  workload.AppServS(),
		"AppServF":  workload.AppServF(),
		"AppServVF": workload.AppServVF(),
	}
}

// MaxThroughput benchmarks (and memoises) an architecture's typical
// max throughput on the simulated testbed.
func (s *Suite) MaxThroughput(arch workload.ServerArch) (float64, error) {
	if x, ok := s.maxThroughput[arch.Name]; ok {
		return x, nil
	}
	x, err := trade.MaxThroughput(arch, 0, s.Opt)
	if err != nil {
		return 0, err
	}
	s.maxThroughput[arch.Name] = x
	return x, nil
}

// Gradient calibrates (and memoises) the shared clients→throughput
// gradient m from below-saturation measurements on AppServF.
func (s *Suite) Gradient() (float64, error) {
	if s.gradient != 0 {
		return s.gradient, nil
	}
	xMax, err := s.MaxThroughput(workload.AppServF())
	if err != nil {
		return 0, err
	}
	nStar := xMax / 0.14 // provisional anchor just to stay below saturation
	counts := []int{int(0.25 * nStar), int(0.5 * nStar)}
	points, err := trade.MeasureCurve(workload.AppServF(), counts, 0, s.Opt)
	if err != nil {
		return 0, err
	}
	tps := make([]hist.ThroughputPoint, len(points))
	for i, p := range points {
		tps[i] = hist.ThroughputPoint{Clients: float64(p.Clients), Throughput: p.Res.Throughput}
	}
	m, err := hist.CalibrateGradient(tps)
	if err != nil {
		return 0, err
	}
	s.gradient = m
	return m, nil
}

// HistModel calibrates (and memoises) the historical model for an
// established architecture from two lower and two upper measured data
// points — the paper's minimal nldp = nudp = 2 calibration.
func (s *Suite) HistModel(arch workload.ServerArch) (*hist.ServerModel, error) {
	if m, ok := s.histModels[arch.Name]; ok {
		return m, nil
	}
	xMax, err := s.MaxThroughput(arch)
	if err != nil {
		return nil, err
	}
	m, err := s.Gradient()
	if err != nil {
		return nil, err
	}
	nStar := xMax / m
	counts := []int{int(0.25 * nStar), int(0.55 * nStar), int(1.2 * nStar), int(1.6 * nStar)}
	points, err := trade.MeasureCurve(arch, counts, 0, s.Opt)
	if err != nil {
		return nil, err
	}
	dps := make([]hist.DataPoint, len(points))
	for i, p := range points {
		dps[i] = hist.DataPoint{Clients: float64(p.Clients), MeanRT: p.Res.MeanRT, Samples: p.Res.PerClass["browse"].Completed}
	}
	model, err := hist.CalibrateServer(arch, xMax, m, dps)
	if err != nil {
		return nil, err
	}
	s.histModels[arch.Name] = model
	return model, nil
}

// Rel2 fits (and memoises) relationship 2 across the established
// servers AppServF and AppServVF.
func (s *Suite) Rel2() (*hist.Relationship2, error) {
	if s.rel2 != nil {
		return s.rel2, nil
	}
	f, err := s.HistModel(workload.AppServF())
	if err != nil {
		return nil, err
	}
	vf, err := s.HistModel(workload.AppServVF())
	if err != nil {
		return nil, err
	}
	rel2, err := hist.FitRelationship2([]*hist.ServerModel{f, vf})
	if err != nil {
		return nil, err
	}
	s.rel2 = rel2
	return rel2, nil
}

// HistNewServer predicts (and memoises) the new architecture's
// (AppServS) historical model from its max-throughput benchmark via
// relationship 2.
func (s *Suite) HistNewServer() (*hist.ServerModel, error) {
	if s.histNew != nil {
		return s.histNew, nil
	}
	rel2, err := s.Rel2()
	if err != nil {
		return nil, err
	}
	xMax, err := s.MaxThroughput(workload.AppServS())
	if err != nil {
		return nil, err
	}
	model, err := rel2.NewServerModel(workload.AppServS(), xMax)
	if err != nil {
		return nil, err
	}
	s.histNew = model
	return model, nil
}

// HistModelFor returns the historical model used for an architecture:
// measured calibration for established servers, relationship 2 for the
// new one.
func (s *Suite) HistModelFor(arch workload.ServerArch) (*hist.ServerModel, error) {
	if arch.Established {
		return s.HistModel(arch)
	}
	return s.HistNewServer()
}

// LQNDemands calibrates (and memoises) the per-request-type demands on
// AppServF per §5: one single-request-type measurement per type,
// demands from the utilisation law.
func (s *Suite) LQNDemands() (map[workload.RequestType]workload.Demand, error) {
	if s.lqnDemands != nil {
		return s.lqnDemands, nil
	}
	truth := workload.CaseStudyDemands()
	demands := make(map[workload.RequestType]workload.Demand, 2)
	for _, rt := range []workload.RequestType{workload.Browse, workload.Buy} {
		class := workload.ServiceClass{
			Name:          "calib",
			Mix:           workload.Mix{rt: 1},
			ThinkTimeMean: workload.ThinkTimeMean,
		}
		res, err := trade.Measure(workload.AppServF(), workload.Workload{{Class: class, Clients: 1100}}, s.Opt)
		if err != nil {
			return nil, err
		}
		d, err := lqn.CalibrateDemand(lqn.CalibrationRun{
			Throughput:        res.Throughput,
			AppUtilization:    res.AppUtilization,
			DBUtilization:     res.DBUtilization,
			DBCallsPerRequest: truth[rt].DBCallsPerRequest,
			AppSpeed:          1,
			DBSpeed:           1,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: calibrating %s: %w", rt, err)
		}
		demands[rt] = d
	}
	s.lqnDemands = demands
	return demands, nil
}

// LQNPredict solves the layered model for an architecture and
// workload using the calibrated demands.
func (s *Suite) LQNPredict(arch workload.ServerArch, load workload.Workload) (*lqn.Result, error) {
	demands, err := s.LQNDemands()
	if err != nil {
		return nil, err
	}
	return lqn.PredictTrade(arch, demands, load, s.LQNOpt)
}

// Hybrid builds (and memoises) the advanced hybrid model over all
// three architectures.
func (s *Suite) Hybrid() (*hybrid.Model, error) {
	if s.hybridModel != nil {
		return s.hybridModel, nil
	}
	demands, err := s.LQNDemands()
	if err != nil {
		return nil, err
	}
	m, err := hybrid.Build(hybrid.Config{
		DB:      workload.CaseStudyDB(),
		Demands: demands,
		LQN:     s.LQNOpt,
	}, workload.CaseStudyServers())
	if err != nil {
		return nil, err
	}
	s.hybridModel = m
	return m, nil
}

// LaplaceScale calibrates (and memoises) the §7.1 post-saturation
// Laplace scale b from one saturated measurement on AppServF.
func (s *Suite) LaplaceScale() (float64, error) {
	if s.laplaceScale != 0 {
		return s.laplaceScale, nil
	}
	xMax, err := s.MaxThroughput(workload.AppServF())
	if err != nil {
		return 0, err
	}
	m, err := s.Gradient()
	if err != nil {
		return 0, err
	}
	n := int(1.4 * xMax / m)
	res, err := trade.Measure(workload.AppServF(), workload.TypicalWorkload(n), s.Opt)
	if err != nil {
		return 0, err
	}
	samples := res.PerClass["browse"].Samples
	b, err := calibrateLaplace(samples, res.MeanRT)
	if err != nil {
		return 0, err
	}
	s.laplaceScale = b
	return b, nil
}
