package bench

import (
	"context"
	"fmt"
	"sort"

	"perfpred/internal/hist"
	"perfpred/internal/hybrid"
	"perfpred/internal/lqn"
	"perfpred/internal/parallel"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// Suite owns the shared calibration state the experiments reuse: the
// measured max throughputs, the gradient m, the historical models of
// the established servers, relationship 2, the layered-queuing
// demands, and the hybrid model. Everything is built lazily and
// memoised, so one Suite can serve all tables and figures without
// recalibrating.
//
// A Suite is safe for concurrent use: every memoised artefact sits
// behind a singleflight (parallel.Memo / parallel.Once), so concurrent
// figure generators share one calibration per key instead of racing or
// recomputing, and a legitimately-zero cached value (the old
// `if s.gradient != 0` bug) is never mistaken for "not yet computed".
// Concurrency of the suite's own sweeps is governed by Opt.Workers.
type Suite struct {
	// Opt configures simulated measurements (including the sweep
	// worker-pool size, Opt.Workers); LQNOpt the layered solver.
	Opt    trade.MeasureOptions
	LQNOpt lqn.Options

	maxThroughput parallel.Memo[string, float64] // arch name -> measured Xmax (typical)
	gradient      parallel.Once[float64]
	histModels    parallel.Memo[string, *hist.ServerModel] // established archs
	rel2          parallel.Once[*hist.Relationship2]
	histNew       parallel.Once[*hist.ServerModel] // AppServS via relationship 2
	lqnDemands    parallel.Once[map[workload.RequestType]workload.Demand]
	lqnPredicts   parallel.Memo[string, *lqn.Result] // arch+workload signature -> solution
	hybridModel   parallel.Once[*hybrid.Model]
	laplaceScale  parallel.Once[float64]
}

// NewSuite returns a harness with the given measurement seed. The
// zero Opt.Workers selects all cores for the suite's sweeps; set
// Opt.Workers = 1 for the exact serial evaluation order (the results
// are identical either way).
func NewSuite(seed int64) *Suite {
	return &Suite{
		Opt:    trade.MeasureOptions{Seed: seed, WarmUp: 30, Duration: 120},
		LQNOpt: lqn.Options{Convergence: 1e-6},
	}
}

// servers returns the case-study architectures keyed by name.
func servers() map[string]workload.ServerArch {
	return map[string]workload.ServerArch{
		"AppServS":  workload.AppServS(),
		"AppServF":  workload.AppServF(),
		"AppServVF": workload.AppServVF(),
	}
}

// MaxThroughput benchmarks (and memoises) an architecture's typical
// max throughput on the simulated testbed.
func (s *Suite) MaxThroughput(arch workload.ServerArch) (float64, error) {
	return s.maxThroughput.Do(arch.Name, func() (float64, error) {
		return trade.MaxThroughput(arch, 0, s.Opt)
	})
}

// Gradient calibrates (and memoises) the shared clients→throughput
// gradient m from below-saturation measurements on AppServF.
func (s *Suite) Gradient() (float64, error) {
	return s.gradient.Do(func() (float64, error) {
		xMax, err := s.MaxThroughput(workload.AppServF())
		if err != nil {
			return 0, err
		}
		nStar := xMax / 0.14 // provisional anchor just to stay below saturation
		counts := []int{int(0.25 * nStar), int(0.5 * nStar)}
		points, err := trade.MeasureCurve(workload.AppServF(), counts, 0, s.Opt)
		if err != nil {
			return 0, err
		}
		tps := make([]hist.ThroughputPoint, len(points))
		for i, p := range points {
			tps[i] = hist.ThroughputPoint{Clients: float64(p.Clients), Throughput: p.Res.Throughput}
		}
		return hist.CalibrateGradient(tps)
	})
}

// HistModel calibrates (and memoises) the historical model for an
// established architecture from two lower and two upper measured data
// points — the paper's minimal nldp = nudp = 2 calibration.
func (s *Suite) HistModel(arch workload.ServerArch) (*hist.ServerModel, error) {
	return s.histModels.Do(arch.Name, func() (*hist.ServerModel, error) {
		xMax, err := s.MaxThroughput(arch)
		if err != nil {
			return nil, err
		}
		m, err := s.Gradient()
		if err != nil {
			return nil, err
		}
		nStar := xMax / m
		counts := []int{int(0.25 * nStar), int(0.55 * nStar), int(1.2 * nStar), int(1.6 * nStar)}
		points, err := trade.MeasureCurve(arch, counts, 0, s.Opt)
		if err != nil {
			return nil, err
		}
		dps := make([]hist.DataPoint, len(points))
		for i, p := range points {
			dps[i] = hist.DataPoint{Clients: float64(p.Clients), MeanRT: p.Res.MeanRT, Samples: p.Res.PerClass["browse"].Completed}
		}
		return hist.CalibrateServer(arch, xMax, m, dps)
	})
}

// Rel2 fits (and memoises) relationship 2 across the established
// servers AppServF and AppServVF.
func (s *Suite) Rel2() (*hist.Relationship2, error) {
	return s.rel2.Do(func() (*hist.Relationship2, error) {
		established := []workload.ServerArch{workload.AppServF(), workload.AppServVF()}
		models, err := parallel.Map(context.Background(), s.Opt.Workers, len(established),
			func(_ context.Context, i int) (*hist.ServerModel, error) {
				return s.HistModel(established[i])
			})
		if err != nil {
			return nil, err
		}
		return hist.FitRelationship2(models)
	})
}

// HistNewServer predicts (and memoises) the new architecture's
// (AppServS) historical model from its max-throughput benchmark via
// relationship 2.
func (s *Suite) HistNewServer() (*hist.ServerModel, error) {
	return s.histNew.Do(func() (*hist.ServerModel, error) {
		rel2, err := s.Rel2()
		if err != nil {
			return nil, err
		}
		xMax, err := s.MaxThroughput(workload.AppServS())
		if err != nil {
			return nil, err
		}
		return rel2.NewServerModel(workload.AppServS(), xMax)
	})
}

// HistModelFor returns the historical model used for an architecture:
// measured calibration for established servers, relationship 2 for the
// new one.
func (s *Suite) HistModelFor(arch workload.ServerArch) (*hist.ServerModel, error) {
	if arch.Established {
		return s.HistModel(arch)
	}
	return s.HistNewServer()
}

// LQNDemands calibrates (and memoises) the per-request-type demands on
// AppServF per §5: one single-request-type measurement per type,
// demands from the utilisation law.
func (s *Suite) LQNDemands() (map[workload.RequestType]workload.Demand, error) {
	return s.lqnDemands.Do(func() (map[workload.RequestType]workload.Demand, error) {
		truth := workload.CaseStudyDemands()
		types := []workload.RequestType{workload.Browse, workload.Buy}
		calibrated, err := parallel.Map(context.Background(), s.Opt.Workers, len(types), func(_ context.Context, i int) (workload.Demand, error) {
			rt := types[i]
			class := workload.ServiceClass{
				Name:          "calib",
				Mix:           workload.Mix{rt: 1},
				ThinkTimeMean: workload.ThinkTimeMean,
			}
			res, err := trade.Measure(workload.AppServF(), workload.Workload{{Class: class, Clients: 1100}}, s.Opt)
			if err != nil {
				return workload.Demand{}, err
			}
			d, err := lqn.CalibrateDemand(lqn.CalibrationRun{
				Throughput:        res.Throughput,
				AppUtilization:    res.AppUtilization,
				DBUtilization:     res.DBUtilization,
				DBCallsPerRequest: truth[rt].DBCallsPerRequest,
				AppSpeed:          1,
				DBSpeed:           1,
			})
			if err != nil {
				return workload.Demand{}, fmt.Errorf("bench: calibrating %s: %w", rt, err)
			}
			return d, nil
		})
		if err != nil {
			return nil, err
		}
		demands := make(map[workload.RequestType]workload.Demand, len(types))
		for i, rt := range types {
			demands[rt] = calibrated[i]
		}
		return demands, nil
	})
}

// LQNPredict solves (and memoises) the layered model for an
// architecture and workload using the calibrated demands. Several
// experiments revisit the same (architecture, workload) cells —
// figure 2, its accuracy table and the percentile study share a grid —
// so repeats are served from the memo. Each miss is solved cold and
// independently, so a cell's value never depends on which experiment
// asked first. Callers share the cached result and must not mutate it.
func (s *Suite) LQNPredict(arch workload.ServerArch, load workload.Workload) (*lqn.Result, error) {
	return s.lqnPredicts.Do(lqnKey(arch, load), func() (*lqn.Result, error) {
		demands, err := s.LQNDemands()
		if err != nil {
			return nil, err
		}
		return lqn.PredictTrade(arch, demands, load, s.LQNOpt)
	})
}

// lqnKey is the memo key for LQNPredict: the architecture plus every
// workload parameter the trade model reads.
func lqnKey(arch workload.ServerArch, load workload.Workload) string {
	key := arch.Name
	for _, p := range load {
		key += fmt.Sprintf("|%s,%d,%g,%g", p.Class.Name, p.Clients, p.ArrivalRate, p.Class.ThinkTimeMean)
		types := make([]workload.RequestType, 0, len(p.Class.Mix))
		for rt := range p.Class.Mix {
			types = append(types, rt)
		}
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		for _, rt := range types {
			key += fmt.Sprintf(";%s=%g", rt, p.Class.Mix[rt])
		}
	}
	return key
}

// Hybrid builds (and memoises) the advanced hybrid model over all
// three architectures, generating the per-architecture pseudo data on
// the suite's worker pool.
func (s *Suite) Hybrid() (*hybrid.Model, error) {
	return s.hybridModel.Do(func() (*hybrid.Model, error) {
		demands, err := s.LQNDemands()
		if err != nil {
			return nil, err
		}
		return hybrid.Build(hybrid.Config{
			DB:      workload.CaseStudyDB(),
			Demands: demands,
			LQN:     s.LQNOpt,
			Workers: s.Opt.Workers,
		}, workload.CaseStudyServers())
	})
}

// LaplaceScale calibrates (and memoises) the §7.1 post-saturation
// Laplace scale b from one saturated measurement on AppServF.
func (s *Suite) LaplaceScale() (float64, error) {
	return s.laplaceScale.Do(func() (float64, error) {
		xMax, err := s.MaxThroughput(workload.AppServF())
		if err != nil {
			return 0, err
		}
		m, err := s.Gradient()
		if err != nil {
			return 0, err
		}
		n := int(1.4 * xMax / m)
		res, err := trade.Measure(workload.AppServF(), workload.TypicalWorkload(n), s.Opt)
		if err != nil {
			return 0, err
		}
		samples := res.PerClass["browse"].Samples
		return calibrateLaplace(samples, res.MeanRT)
	})
}
