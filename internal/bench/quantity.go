package bench

import (
	"fmt"

	"perfpred/internal/hist"
	"perfpred/internal/stats"
	"perfpred/internal/workload"
)

// DataQuantity reproduces the §4.2 claim that "accurate predictions
// can be made even when nudp and nldp are both reduced to 2 and ns is
// reduced to 50": it calibrates the established servers with varying
// numbers of data points per equation and varying samples per data
// point, then scores the relationship-2 prediction of the new server.
func (s *Suite) DataQuantity() (*Table, error) {
	t := &Table{
		ID:     "Section 4.2 (data quantity)",
		Title:  "New-server accuracy vs quantity of historical data",
		Header: []string{"Points/equation", "Samples/point (ns)", "New-server accuracy (%)"},
	}
	gradient, err := s.Gradient()
	if err != nil {
		return nil, err
	}
	// Evaluation set on the new server: fresh populations measured in
	// full.
	sArch := workload.AppServS()
	sMax, err := s.MaxThroughput(sArch)
	if err != nil {
		return nil, err
	}
	sStar := sMax / gradient
	var evalPts []hist.DataPoint
	for _, frac := range []float64{0.3, 0.5, 1.3, 1.6} {
		res, err := measureCached(s, sArch, int(frac*sStar), 0)
		if err != nil {
			return nil, err
		}
		evalPts = append(evalPts, hist.DataPoint{Clients: frac * sStar, MeanRT: res.MeanRT})
	}

	for _, perEq := range []int{2, 3, 4} {
		for _, ns := range []int{25, 50, 200, 0} { // 0 = all samples
			var est []*hist.ServerModel
			for _, arch := range []workload.ServerArch{workload.AppServF(), workload.AppServVF()} {
				xMax, err := s.MaxThroughput(arch)
				if err != nil {
					return nil, err
				}
				nStar := xMax / gradient
				var pts []hist.DataPoint
				fracs := append(spreadFracs(0.20, 0.60, perEq), spreadFracs(1.15, 1.65, perEq)...)
				for _, frac := range fracs {
					n := int(frac * nStar)
					res, err := measureCached(s, arch, n, 0)
					if err != nil {
						return nil, err
					}
					pts = append(pts, hist.DataPoint{
						Clients: float64(n),
						MeanRT:  truncatedMean(res.PerClass["browse"].Samples, ns),
						Samples: ns,
					})
				}
				m, err := hist.CalibrateServer(arch, xMax, gradient, pts)
				if err != nil {
					return nil, fmt.Errorf("bench: quantity calibration (%d pts, ns=%d): %w", perEq, ns, err)
				}
				est = append(est, m)
			}
			rel2, err := hist.FitRelationship2(est)
			if err != nil {
				return nil, err
			}
			sModel, err := rel2.NewServerModel(sArch, sMax)
			if err != nil {
				return nil, err
			}
			acc := hist.EvaluateAccuracy(sModel, evalPts)
			nsLabel := "all"
			if ns > 0 {
				nsLabel = itoa(ns)
			}
			t.AddRow(itoa(perEq), nsLabel, f1(acc))
		}
	}
	t.AddNote("paper: accuracy holds with nldp=nudp=2 and ns=50; recording 50 samples took at most 4.5s below and 2.2min above max throughput")
	return t, nil
}

// truncatedMean emulates recording only ns response-time samples (the
// paper's ns), falling back to all samples when ns is 0 or exceeds
// what was recorded. Samples are taken at an even stride through the
// window rather than as the first ns completions: the earliest
// completions after a statistics reset over-represent requests that
// were already in flight (longer than average by the inspection
// paradox), a bias the paper's live measurements do not suffer because
// its benchmarking clients sample while stationary.
func truncatedMean(samples []float64, ns int) float64 {
	if ns <= 0 || ns >= len(samples) {
		return stats.Mean(samples)
	}
	stride := len(samples) / ns
	var sum float64
	for i := 0; i < ns; i++ {
		sum += samples[i*stride]
	}
	return sum / float64(ns)
}

func spreadFracs(lo, hi float64, count int) []float64 {
	if count == 1 {
		return []float64{(lo + hi) / 2}
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(count-1)
	}
	return out
}
