package bench

import (
	"perfpred/internal/rtdist"
	"perfpred/internal/workload"
)

func calibrateLaplace(samples []float64, location float64) (float64, error) {
	return rtdist.CalibrateScale(samples, location)
}

// Table1 regenerates the paper's Table 1: the historical method's
// relationship-1 parameters per server. Established servers carry the
// fitted values; the new server carries relationship-2 extrapolations.
func (s *Suite) Table1() (*Table, error) {
	t := &Table{
		ID:     "Table 1",
		Title:  "Historical method relationship parameters",
		Header: []string{"Server", "cL (ms)", "lambdaL", "lambdaU (ms/client)", "cU (ms)", "m", "Xmax (req/s)"},
	}
	for _, arch := range workload.CaseStudyServers() {
		m, err := s.HistModelFor(arch)
		if err != nil {
			return nil, err
		}
		t.AddRow(arch.Name, f1(m.CL*1000), g3(m.LambdaL), g3(m.LambdaU*1000), f1(m.CU*1000), f3(m.M), f1(m.MaxThroughput))
	}
	t.AddNote("paper (Table 1, ms): S cL=138.9 λL=4e-06, F cL=84.1 λL=1e-04, VF cL=10.7 λL=9e-04")
	t.AddNote("paper gradient m = 0.14 across all servers (1.3%% accuracy)")
	t.AddNote("S parameters extrapolated via relationship 2 from F and VF, as in §4.2")
	return t, nil
}

// Table2 regenerates the paper's Table 2: the layered queuing
// processing-time parameters calibrated on AppServF with the §5
// utilisation-law procedure.
func (s *Suite) Table2() (*Table, error) {
	demands, err := s.LQNDemands()
	if err != nil {
		return nil, err
	}
	truth := workload.CaseStudyDemands()
	t := &Table{
		ID:     "Table 2",
		Title:  "Layered queuing processing-time parameters calibrated on AppServF",
		Header: []string{"Request type", "App server (ms)", "DB server (ms/call)", "DB calls/request", "Ground truth app (ms)"},
	}
	for _, rt := range []workload.RequestType{workload.Browse, workload.Buy} {
		d := demands[rt]
		t.AddRow(string(rt), f3(d.AppServerTime*1000), f3(d.DBTimePerCall*1000), f2(d.DBCallsPerRequest), f3(truth[rt].AppServerTime*1000))
	}
	t.AddNote("paper (Table 2, ms): browse app=4.505 db=0.8294; buy app=8.761 db=1.613")
	t.AddNote("this testbed's ground truth anchors AppServF at 186 req/s, so app-server times differ in absolute value; the buy/browse ratio and db-call counts carry the paper's values")
	return t, nil
}

// ThroughputGradient reports the §4.1 gradient experiment: m measured
// per server and its cross-server prediction accuracy.
func (s *Suite) ThroughputGradient() (*Table, error) {
	t := &Table{
		ID:     "Gradient",
		Title:  "Clients->throughput gradient m per server (section 4.1)",
		Header: []string{"Server", "m (fitted)", "Xmax (req/s)", "N* (clients)"},
	}
	mShared, err := s.Gradient()
	if err != nil {
		return nil, err
	}
	var worst float64 = 100
	for _, arch := range workload.CaseStudyServers() {
		model, err := s.HistModelFor(arch)
		if err != nil {
			return nil, err
		}
		// Per-server m from one below-saturation measurement.
		xMax := model.MaxThroughput
		n := int(0.4 * xMax / mShared)
		points, err := measureCurveCached(s, arch, []int{n})
		if err != nil {
			return nil, err
		}
		mServer := points[0].Res.Throughput / float64(points[0].Clients)
		acc := 100 * (1 - abs(mServer-mShared)/mShared)
		if acc < worst {
			worst = acc
		}
		t.AddRow(arch.Name, f3(mServer), f1(xMax), f1(xMax/mServer))
	}
	t.AddRow("shared fit", f3(mShared), "-", "-")
	t.AddNote("cross-server gradient agreement: worst-case %.1f%% (paper: m=0.14, 1.3%% error)", 100-worst)
	return t, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
