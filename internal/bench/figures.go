package bench

import (
	"context"
	"strconv"

	"perfpred/internal/hist"
	"perfpred/internal/hybrid"
	"perfpred/internal/lqn"
	"perfpred/internal/parallel"
	"perfpred/internal/stats"
	"perfpred/internal/workload"
)

// figure2Fractions are the client populations (as fractions of each
// server's saturation load N*) swept by the scalability experiments.
var figure2Fractions = []float64{0.2, 0.35, 0.5, 0.8, 1.0, 1.2, 1.45, 1.7}

// Figure2 regenerates the paper's figure 2: measured mean response
// time versus the historical, layered queuing and hybrid predictions
// across client populations for all three servers, plus the per-method
// accuracy summary for established and new servers.
func (s *Suite) Figure2() (*Table, error) {
	t := &Table{
		ID:     "Figure 2",
		Title:  "Mean response time: measured vs predicted (typical workload)",
		Header: []string{"Server", "Clients", "Measured (ms)", "Historical (ms)", "LQN (ms)", "Hybrid (ms)", "Measured X (req/s)", "LQN X (req/s)"},
	}
	hyb, err := s.Hybrid()
	if err != nil {
		return nil, err
	}
	// Fan the measurement grid out across the worker pool before the
	// serial assembly below: calibrate every architecture's historical
	// model concurrently (the memoised Suite shares the gradient and
	// AppServF curve between them), then pre-run every (arch, clients)
	// simulation cell. The assembly loop then reads pure cache hits, so
	// rows, accuracies and output bytes are identical to the serial
	// path for any worker count.
	archs := workload.CaseStudyServers()
	hms, err := parallel.Map(context.Background(), s.Opt.Workers, len(archs),
		func(_ context.Context, i int) (*hist.ServerModel, error) {
			return s.HistModelFor(archs[i])
		})
	if err != nil {
		return nil, err
	}
	var cells []measureCell
	for i, arch := range archs {
		nStar := hms[i].SaturationClients()
		for _, frac := range figure2Fractions {
			n := int(frac * nStar)
			if n < 1 {
				n = 1
			}
			cells = append(cells, measureCell{arch: arch, clients: n})
		}
	}
	if err := prefetchMeasurements(s, cells); err != nil {
		return nil, err
	}
	type accAgg struct{ pred, act []float64 }
	accs := map[string]map[string]*accAgg{} // method -> group -> series
	record := func(method, group string, pred, act float64) {
		if accs[method] == nil {
			accs[method] = map[string]*accAgg{}
		}
		if accs[method][group] == nil {
			accs[method][group] = &accAgg{}
		}
		a := accs[method][group]
		a.pred = append(a.pred, pred)
		a.act = append(a.act, act)
	}

	for _, arch := range workload.CaseStudyServers() {
		hm, err := s.HistModelFor(arch)
		if err != nil {
			return nil, err
		}
		group := "new"
		if arch.Established {
			group = "established"
		}
		nStar := hm.SaturationClients()
		for _, frac := range figure2Fractions {
			n := int(frac * nStar)
			if n < 1 {
				n = 1
			}
			meas, err := measureCached(s, arch, n, 0)
			if err != nil {
				return nil, err
			}
			histRT := hm.Predict(float64(n))
			lq, err := s.LQNPredict(arch, workload.TypicalWorkload(n))
			if err != nil {
				return nil, err
			}
			lqRT := lq.MeanResponseTime()
			hyRT, err := hyb.Predict(arch.Name, float64(n))
			if err != nil {
				return nil, err
			}
			record("historical", group, histRT, meas.MeanRT)
			record("lqn", group, lqRT, meas.MeanRT)
			record("hybrid", group, hyRT, meas.MeanRT)
			record("lqn-throughput", group, lq.TotalThroughput(), meas.Throughput)
			t.AddRow(arch.Name, itoa(n), ms(meas.MeanRT), ms(histRT), ms(lqRT), ms(hyRT),
				f1(meas.Throughput), f1(lq.TotalThroughput()))
		}
	}
	for _, method := range []string{"historical", "lqn", "hybrid", "lqn-throughput"} {
		for _, group := range []string{"established", "new"} {
			a := accs[method][group]
			t.AddNote("%s accuracy (%s servers): %.1f%%", method, group, stats.Accuracy(a.pred, a.act))
		}
	}
	t.AddNote("paper: historical 89.1%%/83%% (est/new), LQN RT 68.8%%/73.4%%, LQN X 97.8%%/97.1%%, hybrid 67.1%%/74.9%%")
	return t, nil
}

// Figure2Accuracies returns the per-method mean-RT accuracy pairs
// (established, new) without formatting — reused by the §7.1
// comparison and by tests.
func (s *Suite) Figure2Accuracies() (map[string][2]float64, error) {
	tab, err := s.Figure2()
	if err != nil {
		return nil, err
	}
	_ = tab
	// Recompute directly (cheap thanks to memoised measurements).
	hyb, err := s.Hybrid()
	if err != nil {
		return nil, err
	}
	agg := map[string]map[string][2][]float64{}
	add := func(method, group string, pred, act float64) {
		if agg[method] == nil {
			agg[method] = map[string][2][]float64{}
		}
		pair := agg[method][group]
		pair[0] = append(pair[0], pred)
		pair[1] = append(pair[1], act)
		agg[method][group] = pair
	}
	for _, arch := range workload.CaseStudyServers() {
		hm, err := s.HistModelFor(arch)
		if err != nil {
			return nil, err
		}
		group := "new"
		if arch.Established {
			group = "established"
		}
		nStar := hm.SaturationClients()
		for _, frac := range figure2Fractions {
			n := int(frac * nStar)
			if n < 1 {
				n = 1
			}
			meas, err := measureCached(s, arch, n, 0)
			if err != nil {
				return nil, err
			}
			lq, err := s.LQNPredict(arch, workload.TypicalWorkload(n))
			if err != nil {
				return nil, err
			}
			hyRT, err := hyb.Predict(arch.Name, float64(n))
			if err != nil {
				return nil, err
			}
			add("historical", group, hm.Predict(float64(n)), meas.MeanRT)
			add("lqn", group, lq.MeanResponseTime(), meas.MeanRT)
			add("hybrid", group, hyRT, meas.MeanRT)
		}
	}
	out := map[string][2]float64{}
	for method, groups := range agg {
		est := groups["established"]
		nw := groups["new"]
		out[method] = [2]float64{
			stats.Accuracy(est[0], est[1]),
			stats.Accuracy(nw[0], nw[1]),
		}
	}
	return out, nil
}

// Figure3 regenerates the paper's figure 3: the predictive accuracy on
// the new server architecture as the number of clients x between the
// two historical data points grows. As in the paper, LQNS (here: the
// lqn package) generates both the calibration points for the
// established servers and the evaluation data for the new server, and
// x scales with machine speed so the % of the max-throughput load
// between the points is constant.
func (s *Suite) Figure3() (*Table, error) {
	t := &Table{
		ID:     "Figure 3",
		Title:  "Accuracy vs clients between historical data points (LQN-generated data)",
		Header: []string{"x (AppServF clients)", "Lower-eq accuracy (%)", "Upper-eq accuracy (%)", "Lower @20ms conv (%)", "Upper @20ms conv (%)"},
	}
	demands, err := s.LQNDemands()
	if err != nil {
		return nil, err
	}
	gradient, err := s.Gradient()
	if err != nil {
		return nil, err
	}

	// This figure is the harness's densest LQN grid (~170 solves over
	// three architectures), all on one model per architecture with only
	// the browse population changing: each architecture gets a
	// population sweeper — model built once, warm-started solver — and
	// every solve below routes through it.
	// Warm starts stay confined to the tight default criterion: the
	// 20 ms runs stop wherever the iteration trajectory happens to
	// land (that trajectory-sensitivity is the noise this figure
	// studies), so they keep a cold-started solver of their own.
	type sweeper struct {
		model  *lqn.Model
		browse *lqn.Class
		warm   *lqn.Solver
		cold   *lqn.Solver
	}
	sweepers := make(map[string]*sweeper, 3)
	sweepAt := func(arch workload.ServerArch, n int, opt lqn.Options) (*lqn.Result, error) {
		sw, ok := sweepers[arch.Name]
		if !ok {
			model, err := lqn.NewTradeModel(arch, workload.CaseStudyDB(), demands, workload.TypicalWorkload(1))
			if err != nil {
				return nil, err
			}
			sw = &sweeper{model: model, browse: model.Classes[0], warm: lqn.NewSolver(), cold: lqn.NewSolver()}
			sw.warm.WarmStart = true
			sweepers[arch.Name] = sw
		}
		sw.browse.Population = n
		if opt == s.LQNOpt {
			return sw.warm.Solve(sw.model, opt)
		}
		return sw.cold.Solve(sw.model, opt)
	}

	// LQN-derived max throughputs anchor each server's N*.
	xMaxOf := func(arch workload.ServerArch) (float64, error) {
		res, err := sweepAt(arch, int(2.2*arch.Speed*workload.MaxThroughputF*workload.ThinkTimeMean), s.LQNOpt)
		if err != nil {
			return 0, err
		}
		return res.TotalThroughput(), nil
	}
	// Data points can be generated under a tight criterion or the
	// paper's 20 ms one; the latter reproduces the small-x noise the
	// paper warns about ("difficult to obtain results for values of x
	// below 30 ... due to the 20ms LQNS convergence criterion").
	lqnRTOpt := func(arch workload.ServerArch, n int, opt lqn.Options) (float64, error) {
		if n < 1 {
			n = 1
		}
		res, err := sweepAt(arch, n, opt)
		if err != nil {
			return 0, err
		}
		return res.MeanResponseTime(), nil
	}
	lqnRT := func(arch workload.ServerArch, n int) (float64, error) {
		return lqnRTOpt(arch, n, s.LQNOpt)
	}

	type serverAnchor struct {
		arch  workload.ServerArch
		nStar float64
		xMax  float64
	}
	var anchors []serverAnchor
	for _, arch := range []workload.ServerArch{workload.AppServF(), workload.AppServVF(), workload.AppServS()} {
		xm, err := xMaxOf(arch)
		if err != nil {
			return nil, err
		}
		anchors = append(anchors, serverAnchor{arch: arch, nStar: xm / gradient, xMax: xm})
	}
	newAnchor := anchors[2]
	fNStar := anchors[0].nStar

	// Evaluation data on the new server, from the layered model.
	evalLower := []float64{0.25, 0.40, 0.55}
	evalUpper := []float64{1.2, 1.4, 1.6}
	var lowerEval, upperEval []hist.DataPoint
	for _, f := range evalLower {
		rt, err := lqnRT(newAnchor.arch, int(f*newAnchor.nStar))
		if err != nil {
			return nil, err
		}
		lowerEval = append(lowerEval, hist.DataPoint{Clients: f * newAnchor.nStar, MeanRT: rt})
	}
	for _, f := range evalUpper {
		rt, err := lqnRT(newAnchor.arch, int(f*newAnchor.nStar))
		if err != nil {
			return nil, err
		}
		upperEval = append(upperEval, hist.DataPoint{Clients: f * newAnchor.nStar, MeanRT: rt})
	}

	// calibrateAt builds the new-server model from data points spaced
	// xFrac·N* apart, generated under the given solver options.
	calibrateAt := func(xFrac float64, opt lqn.Options) (lowerAcc, upperAcc float64, err error) {
		var estModels []*hist.ServerModel
		for _, a := range anchors[:2] { // established: F and VF
			// Lower: one point fixed at the 66% anchor, the other
			// xFrac·N* below it. Upper: fixed at 110%, other above.
			loHi := hist.TransitionLow * a.nStar
			loLo := loHi - xFrac*a.nStar
			if loLo < 1 {
				loLo = 1
			}
			upLo := hist.TransitionHigh * a.nStar
			upHi := upLo + xFrac*a.nStar
			pts := make([]hist.DataPoint, 0, 4)
			for _, n := range []float64{loLo, loHi, upLo, upHi} {
				rt, err := lqnRTOpt(a.arch, int(n), opt)
				if err != nil {
					return 0, 0, err
				}
				pts = append(pts, hist.DataPoint{Clients: n, MeanRT: rt})
			}
			m, err := hist.CalibrateServer(a.arch, a.xMax, gradient, pts)
			if err != nil {
				return 0, 0, err
			}
			estModels = append(estModels, m)
		}
		rel2, err := hist.FitRelationship2(estModels)
		if err != nil {
			return 0, 0, err
		}
		newModel, err := rel2.NewServerModel(newAnchor.arch, newAnchor.xMax)
		if err != nil {
			return 0, 0, err
		}
		lowerAcc, _, _ = hist.EvaluateEquationAccuracy(newModel, lowerEval)
		_, upperAcc, _ = hist.EvaluateEquationAccuracy(newModel, upperEval)
		return lowerAcc, upperAcc, nil
	}

	coarse := lqn.Options{Convergence: 0.020}
	for _, xFrac := range []float64{0.01, 0.02, 0.03, 0.06, 0.10, 0.15, 0.20, 0.28, 0.36, 0.45} {
		lowerAcc, upperAcc, err := calibrateAt(xFrac, s.LQNOpt)
		if err != nil {
			return nil, err
		}
		lowerC, upperC, err := calibrateAt(xFrac, coarse)
		if err != nil {
			// The paper's difficulty made literal: closely spaced
			// points under the coarse criterion can come back
			// non-monotone and fail calibration.
			t.AddRow(f1(xFrac*fNStar), f1(lowerAcc), f1(upperAcc), "unusable", "unusable")
			continue
		}
		t.AddRow(f1(xFrac*fNStar), f1(lowerAcc), f1(upperAcc), f1(lowerC), f1(upperC))
	}
	t.AddNote("paper: lower-equation accuracy rises roughly linearly with x; upper-equation accuracy levels off; x below ~30 clients is unusable under a 20ms convergence criterion")
	return t, nil
}

// Figure4 regenerates the paper's figure 4: heterogeneous-workload
// (buy-mix) mean response time predictions for the new server, built
// from relationship 3 with LQN-generated calibration data (the paper's
// AppServF points are 189 and 158 req/s at 0% and 25% buy).
func (s *Suite) Figure4() (*Table, error) {
	t := &Table{
		ID:     "Figure 4",
		Title:  "Heterogeneous workload mean RT predictions for the new server (AppServS)",
		Header: []string{"Buy %", "Clients", "Measured (ms)", "Historical rel-3 (ms)"},
	}
	demands, err := s.LQNDemands()
	if err != nil {
		return nil, err
	}
	rel3, _, err := hybrid.BuildRelationship3(hybrid.Config{
		DB:      workload.CaseStudyDB(),
		Demands: demands,
		LQN:     s.LQNOpt,
	}, workload.AppServF(), []float64{0, 25})
	if err != nil {
		return nil, err
	}
	rel2, err := s.Rel2()
	if err != nil {
		return nil, err
	}
	base, err := s.HistNewServer()
	if err != nil {
		return nil, err
	}
	buyPcts := []float64{0, 10, 25}
	fracs := []float64{0.3, 0.55, 1.25, 1.6}
	models := make([]*hist.ServerModel, len(buyPcts))
	for i, buyPct := range buyPcts {
		models[i] = base
		if buyPct > 0 {
			models[i], err = rel3.ModelAtBuyPct(rel2, base, buyPct)
			if err != nil {
				return nil, err
			}
		}
	}
	// Pre-run the whole (buy%, clients) grid on the worker pool; the
	// assembly below reads cache hits in the original row order.
	var cells []measureCell
	for i, buyPct := range buyPcts {
		nStar := models[i].SaturationClients()
		for _, frac := range fracs {
			cells = append(cells, measureCell{arch: workload.AppServS(), clients: int(frac * nStar), buyFrac: buyPct / 100})
		}
	}
	if err := prefetchMeasurements(s, cells); err != nil {
		return nil, err
	}
	var preds, acts []float64
	for i, buyPct := range buyPcts {
		model := models[i]
		nStar := model.SaturationClients()
		for _, frac := range fracs {
			n := int(frac * nStar)
			meas, err := measureCached(s, workload.AppServS(), n, buyPct/100)
			if err != nil {
				return nil, err
			}
			pred := model.Predict(float64(n))
			preds = append(preds, pred)
			acts = append(acts, meas.MeanRT)
			t.AddRow(f1(buyPct), itoa(n), ms(meas.MeanRT), ms(pred))
		}
	}
	t.AddNote("accuracy across buy mixes: %.1f%%", stats.Accuracy(preds, acts))
	t.AddNote("paper: good shape agreement; LQNS anchor points 189/158 req/s at 0%%/25%% buy on AppServF")
	return t, nil
}

func itoa(n int) string { return strconv.Itoa(n) }
