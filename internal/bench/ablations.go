package bench

import (
	"time"

	"perfpred/internal/lqn"
	"perfpred/internal/rm"
	"perfpred/internal/stats"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// AblationTransition quantifies the §4.1 transition relationship: the
// historical model's accuracy through the saturation knee with the
// exponential phase-in versus a hard switch between the lower and
// upper equations at N*.
func (s *Suite) AblationTransition() (*Table, error) {
	t := &Table{
		ID:     "Ablation: transition",
		Title:  "Historical accuracy through the knee: transition phase-in vs hard switch",
		Header: []string{"Server", "Clients", "Measured (ms)", "With transition (ms)", "Hard switch (ms)"},
	}
	var wPred, hPred, acts []float64
	for _, arch := range workload.CaseStudyServers() {
		hm, err := s.HistModelFor(arch)
		if err != nil {
			return nil, err
		}
		nStar := hm.SaturationClients()
		// Populations inside the transition band, where the variants
		// differ.
		for _, frac := range []float64{0.7, 0.85, 1.0, 1.05} {
			n := int(frac * nStar)
			meas, err := measureCached(s, arch, n, 0)
			if err != nil {
				return nil, err
			}
			with := hm.Predict(float64(n))
			var hard float64
			if float64(n) < nStar {
				hard = hm.Lower(float64(n))
			} else {
				hard = hm.Upper(float64(n))
			}
			wPred = append(wPred, with)
			hPred = append(hPred, hard)
			acts = append(acts, meas.MeanRT)
			t.AddRow(arch.Name, itoa(n), ms(meas.MeanRT), ms(with), ms(hard))
		}
	}
	t.AddNote("knee accuracy: transition %.1f%% vs hard switch %.1f%%",
		stats.Accuracy(wPred, acts), stats.Accuracy(hPred, acts))
	return t, nil
}

// AblationMVA compares the Schweitzer approximation against the exact
// single-class MVA recursion on the typical-workload trade model.
func (s *Suite) AblationMVA() (*Table, error) {
	t := &Table{
		ID:     "Ablation: MVA",
		Title:  "Schweitzer AMVA vs exact MVA (single class, AppServF)",
		Header: []string{"Clients", "Approx RT (ms)", "Exact RT (ms)", "Delta %", "Approx time", "Exact time"},
	}
	demands, err := s.LQNDemands()
	if err != nil {
		return nil, err
	}
	for _, n := range []int{100, 400, 900, 1300, 1800, 2600} {
		model, err := lqn.NewTradeModel(workload.AppServF(), workload.CaseStudyDB(), demands, workload.TypicalWorkload(n))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		approx, err := lqn.Solve(model, s.LQNOpt)
		if err != nil {
			return nil, err
		}
		approxTime := time.Since(start)
		start = time.Now()
		exact, err := lqn.Solve(model, lqn.Options{ExactMVA: true})
		if err != nil {
			return nil, err
		}
		exactTime := time.Since(start)
		a := approx.MeanResponseTime()
		e := exact.MeanResponseTime()
		delta := 0.0
		if e > 0 {
			delta = 100 * abs(a-e) / e
		}
		t.AddRow(itoa(n), ms(a), ms(e), f2(delta), approxTime.String(), exactTime.String())
	}
	t.AddNote("exact MVA costs O(N) recursion steps; Schweitzer converges in a few sweeps regardless of N")
	return t, nil
}

// AblationConvergence shows the effect of the solver convergence
// criterion (the paper's 20 ms vs a tight 1 µs): iterations, solve
// time and the response-time wobble that produces figure 3's
// small-spacing noise.
func (s *Suite) AblationConvergence() (*Table, error) {
	t := &Table{
		ID:     "Ablation: convergence",
		Title:  "LQN convergence criterion: paper's 20ms vs tight 1e-6s",
		Header: []string{"Clients", "RT@20ms (ms)", "RT@1e-6 (ms)", "Delta (ms)", "Iters@20ms", "Iters@1e-6"},
	}
	demands, err := s.LQNDemands()
	if err != nil {
		return nil, err
	}
	for _, n := range []int{200, 800, 1300, 1500, 2200} {
		model, err := lqn.NewTradeModel(workload.AppServF(), workload.CaseStudyDB(), demands, workload.TypicalWorkload(n))
		if err != nil {
			return nil, err
		}
		coarse, err := lqn.Solve(model, lqn.Options{Convergence: 0.020})
		if err != nil {
			return nil, err
		}
		fine, err := lqn.Solve(model, lqn.Options{Convergence: 1e-6})
		if err != nil {
			return nil, err
		}
		c := coarse.MeanResponseTime()
		f := fine.MeanResponseTime()
		t.AddRow(itoa(n), ms(c), ms(f), ms(abs(c-f)), itoa(coarse.Iterations), itoa(fine.Iterations))
	}
	t.AddNote("a coarse criterion can make close populations' predictions cross — the paper's figure-3 difficulty below x≈30 clients")
	return t, nil
}

// AblationTaskLayering compares the flattened (processor-only) solver
// against the task-layered one on a scenario where the application
// server's thread pool is the bottleneck: a 5-thread pool gating
// requests that spend ~200 ms per request blocked on database latency
// while every CPU idles. Only the layered solution sees the software
// queue.
func (s *Suite) AblationTaskLayering() (*Table, error) {
	t := &Table{
		ID:     "Ablation: task layering",
		Title:  "Thread-pool bottleneck: flattened vs task-layered solving (5-thread pool, latency-bound DB)",
		Header: []string{"Clients", "Measured (ms)", "Flattened LQN (ms)", "Layered LQN (ms)", "Measured X", "Layered X"},
	}
	arch := workload.AppServF()
	arch.MPL = 5
	demands := map[workload.RequestType]workload.Demand{
		workload.Browse: {
			AppServerTime:     0.002,
			DBTimePerCall:     0.001,
			DBCallsPerRequest: 4,
			DBLatencyPerCall:  0.050,
		},
	}
	class := workload.ServiceClass{Name: "browse", Mix: workload.Mix{workload.Browse: 1}, ThinkTimeMean: 1.0}
	for _, n := range []int{10, 40, 80, 120} {
		load := workload.Workload{{Class: class, Clients: n}}
		meas, err := trade.Run(trade.Config{
			Server: arch, DB: workload.CaseStudyDB(), Demands: demands, Load: load,
			Seed: s.Opt.Seed, WarmUp: s.Opt.WarmUp, Duration: s.Opt.Duration,
		})
		if err != nil {
			return nil, err
		}
		model, err := lqn.NewTradeModel(arch, workload.CaseStudyDB(), demands, load)
		if err != nil {
			return nil, err
		}
		flat, err := lqn.Solve(model, s.LQNOpt)
		if err != nil {
			return nil, err
		}
		layered, err := lqn.Solve(model, lqn.Options{Convergence: s.LQNOpt.Convergence, TaskLayering: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(itoa(n), ms(meas.MeanRT),
			ms(flat.Classes["browse"].ResponseTime), ms(layered.Classes["browse"].ResponseTime),
			f1(meas.Throughput), f1(layered.Classes["browse"].Throughput))
	}
	t.AddNote("the flattened solver models only processors and misses queues at software servers; task layering (the 'layered' in LQN) recovers them")
	return t, nil
}

// AblationLastServer measures Algorithm 1's smallest-feasible-server
// exception: planned server usage with and without the rule.
func (s *Suite) AblationLastServer() (*Table, error) {
	t := &Table{
		ID:     "Ablation: last-server rule",
		Title:  "Algorithm 1 with vs without the smallest-feasible-last-server exception",
		Header: []string{"Clients", "Usage % (with rule)", "Usage % (without)", "Fail % (with)", "Fail % (without)"},
	}
	pred, truth, servers, err := s.RMSetup()
	if err != nil {
		return nil, err
	}
	loads := []int{2000, 5000, 8000, 11000}
	withPts, err := rm.SweepLoad(rm.CaseStudyShares(), servers, pred, truth, 1.1, loads, rm.Options{}, rm.EvalOptions{})
	if err != nil {
		return nil, err
	}
	withoutPts, err := rm.SweepLoad(rm.CaseStudyShares(), servers, pred, truth, 1.1, loads, rm.Options{DisableLastServerRule: true}, rm.EvalOptions{})
	if err != nil {
		return nil, err
	}
	for i, load := range loads {
		t.AddRow(itoa(load),
			f1(withPts[i].ServerUsagePct), f1(withoutPts[i].ServerUsagePct),
			f1(withPts[i].SLAFailurePct), f1(withoutPts[i].SLAFailurePct))
	}
	t.AddNote("the rule avoids burning a large server on a small remainder, lowering %% server usage at light load")
	return t, nil
}
