package bench

import (
	"context"
	"fmt"

	"perfpred/internal/parallel"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// measurement memoisation: the simulated testbed is deterministic for
// a fixed seed, so repeated experiments reuse identical runs. The
// singleflight Memo makes the cache safe for the parallel sweeps —
// concurrent requests for the same (arch, clients, mix, seed) cell
// share one simulation instead of racing the map or running it twice.
var curveCache parallel.Memo[string, *trade.Result]

func measureCached(s *Suite, arch workload.ServerArch, clients int, buyFrac float64) (*trade.Result, error) {
	key := fmt.Sprintf("%s/%d/%.4f/%d/%.0f/%.0f", arch.Name, clients, buyFrac, s.Opt.Seed, s.Opt.WarmUp, s.Opt.Duration)
	return curveCache.Do(key, func() (*trade.Result, error) {
		var load workload.Workload
		if buyFrac <= 0 {
			load = workload.TypicalWorkload(clients)
		} else {
			load = workload.MixedWorkload(clients, buyFrac)
		}
		return trade.Measure(arch, load, s.Opt)
	})
}

func measureCurveCached(s *Suite, arch workload.ServerArch, counts []int) ([]trade.CurvePoint, error) {
	results, err := parallel.Map(context.Background(), s.Opt.Workers, len(counts),
		func(_ context.Context, i int) (*trade.Result, error) {
			return measureCached(s, arch, counts[i], 0)
		})
	if err != nil {
		return nil, err
	}
	points := make([]trade.CurvePoint, len(counts))
	for i, res := range results {
		points[i] = trade.CurvePoint{Clients: counts[i], Res: res}
	}
	return points, nil
}

// measureCell identifies one simulated measurement of an experiment
// grid: an architecture under a client population and buy mix.
type measureCell struct {
	arch    workload.ServerArch
	clients int
	buyFrac float64
}

// prefetchMeasurements warms the measurement cache for a whole
// experiment grid on the suite's worker pool. Experiments call it with
// every cell they are about to read and then assemble their tables
// serially from cache hits, which keeps row order — and therefore
// output bytes — identical to the serial path while the simulations
// themselves run concurrently.
func prefetchMeasurements(s *Suite, cells []measureCell) error {
	_, err := parallel.Map(context.Background(), s.Opt.Workers, len(cells),
		func(_ context.Context, i int) (struct{}, error) {
			c := cells[i]
			_, err := measureCached(s, c.arch, c.clients, c.buyFrac)
			return struct{}{}, err
		})
	return err
}
