package bench

import (
	"fmt"

	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// measurement memoisation: the simulated testbed is deterministic for
// a fixed seed, so repeated experiments reuse identical runs.
var curveCache = map[string]*trade.Result{}

func measureCached(s *Suite, arch workload.ServerArch, clients int, buyFrac float64) (*trade.Result, error) {
	key := fmt.Sprintf("%s/%d/%.4f/%d/%.0f/%.0f", arch.Name, clients, buyFrac, s.Opt.Seed, s.Opt.WarmUp, s.Opt.Duration)
	if res, ok := curveCache[key]; ok {
		return res, nil
	}
	var load workload.Workload
	if buyFrac <= 0 {
		load = workload.TypicalWorkload(clients)
	} else {
		load = workload.MixedWorkload(clients, buyFrac)
	}
	res, err := trade.Measure(arch, load, s.Opt)
	if err != nil {
		return nil, err
	}
	curveCache[key] = res
	return res, nil
}

func measureCurveCached(s *Suite, arch workload.ServerArch, counts []int) ([]trade.CurvePoint, error) {
	points := make([]trade.CurvePoint, 0, len(counts))
	for _, n := range counts {
		res, err := measureCached(s, arch, n, 0)
		if err != nil {
			return nil, err
		}
		points = append(points, trade.CurvePoint{Clients: n, Res: res})
	}
	return points, nil
}
