package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// sharedSuite memoises calibration across tests in this package.
var sharedSuite = NewSuite(17)

func TestTable1Shape(t *testing.T) {
	tab, err := sharedSuite.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("Table 1 rows = %d, want 3 servers", len(tab.Rows))
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"AppServS", "AppServF", "AppServVF", "cL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2MatchesGroundTruthRatios(t *testing.T) {
	tab, err := sharedSuite.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("Table 2 rows = %d, want 2 request types", len(tab.Rows))
	}
	demands, err := sharedSuite.LQNDemands()
	if err != nil {
		t.Fatal(err)
	}
	browse := demands["browse"]
	buy := demands["buy"]
	ratio := buy.AppServerTime / browse.AppServerTime
	// Table 2's buy/browse demand ratio 8.761/4.505 ≈ 1.94 must be
	// recovered by calibration within ~10%.
	if ratio < 1.7 || ratio > 2.2 {
		t.Fatalf("buy/browse calibrated ratio = %v, want ≈1.94", ratio)
	}
}

func TestGradientExperiment(t *testing.T) {
	tab, err := sharedSuite.ThroughputGradient()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 { // 3 servers + shared fit
		t.Fatalf("gradient rows = %d", len(tab.Rows))
	}
	m, err := sharedSuite.Gradient()
	if err != nil {
		t.Fatal(err)
	}
	if m < 0.12 || m > 0.15 {
		t.Fatalf("shared gradient = %v, want ≈0.14", m)
	}
}

func TestFigure2ShapeHolds(t *testing.T) {
	accs, err := sharedSuite.Figure2Accuracies()
	if err != nil {
		t.Fatal(err)
	}
	for method, pair := range accs {
		for i, group := range []string{"established", "new"} {
			if pair[i] < 45 {
				t.Fatalf("%s accuracy on %s servers = %.1f%%, below floor", method, group, pair[i])
			}
		}
	}
	// The paper's qualitative finding that carries over directly: the
	// hybrid method's accuracy tracks the layered model it is built
	// from, not the measured data (§6). On this testbed the layered
	// model is structurally exact (the testbed IS a queueing network),
	// so LQN leads where the paper's physical testbed had it trail —
	// see EXPERIMENTS.md. The hybrid stays within the LQN's accuracy.
	if accs["hybrid"][0] > accs["lqn"][0]+10 {
		t.Fatalf("hybrid (%.1f%%) should not beat its generating LQN model (%.1f%%) by a wide margin",
			accs["hybrid"][0], accs["lqn"][0])
	}
}

func TestFigure3LowerImprovesWithSpacing(t *testing.T) {
	tab, err := sharedSuite.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 5 {
		t.Fatalf("figure 3 rows = %d", len(tab.Rows))
	}
	// The lower-equation accuracy at the widest spacing should beat
	// the narrowest — the paper's roughly-linear improvement.
	first := tab.Rows[0][1]
	last := tab.Rows[len(tab.Rows)-1][1]
	var a, b float64
	if _, err := fscan(first, &a); err != nil {
		t.Fatal(err)
	}
	if _, err := fscan(last, &b); err != nil {
		t.Fatal(err)
	}
	if b < a-2 {
		t.Fatalf("lower-equation accuracy fell with spacing: %v -> %v", a, b)
	}
}

func TestFigure4Heterogeneous(t *testing.T) {
	tab, err := sharedSuite.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 { // 3 buy mixes × 4 populations
		t.Fatalf("figure 4 rows = %d", len(tab.Rows))
	}
}

func TestPercentilesExperiment(t *testing.T) {
	tab, err := sharedSuite.Percentiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 24 { // 3 servers × 8 populations
		t.Fatalf("percentile rows = %d", len(tab.Rows))
	}
	b, err := sharedSuite.LaplaceScale()
	if err != nil {
		t.Fatal(err)
	}
	if b <= 0 {
		t.Fatalf("laplace scale = %v", b)
	}
}

func TestRMStudyFigures(t *testing.T) {
	tab, err := sharedSuite.Figure5and6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 22 {
		t.Fatalf("figure 5-6 rows = %d", len(tab.Rows))
	}
	f7, err := sharedSuite.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	// Failures at slack 0 reach 100% (no clients allocated).
	lastRow := f7.Rows[len(f7.Rows)-1]
	var fail float64
	if _, err := fscan(lastRow[1], &fail); err != nil {
		t.Fatal(err)
	}
	if fail < 99.9 {
		t.Fatalf("slack-0 average failures = %v, want 100", fail)
	}
	f8, err := sharedSuite.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(f8.Rows) < 8 {
		t.Fatalf("figure 8 rows = %d", len(f8.Rows))
	}
}

func TestUniformAndDelayAndSearch(t *testing.T) {
	tab, err := sharedSuite.UniformInaccuracy()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		var maxFail float64
		if _, err := fscan(row[1], &maxFail); err != nil {
			t.Fatal(err)
		}
		if maxFail > 0 {
			t.Fatalf("slack=y left %v%% failures for y=%s", maxFail, row[0])
		}
	}
	delay, err := sharedSuite.PredictionDelay()
	if err != nil {
		t.Fatal(err)
	}
	if len(delay.Rows) != 3 {
		t.Fatalf("delay rows = %d", len(delay.Rows))
	}
	search, err := sharedSuite.LQNMaxClientsCost()
	if err != nil {
		t.Fatal(err)
	}
	if len(search.Rows) != 9 {
		t.Fatalf("search rows = %d", len(search.Rows))
	}
}

func TestAblations(t *testing.T) {
	for _, name := range []string{"ablation-transition", "ablation-mva", "ablation-convergence", "ablation-lastserver"} {
		tab, err := sharedSuite.Run(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s produced no rows", name)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := sharedSuite.Run("nope"); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestExperimentsListMatchesRun(t *testing.T) {
	for _, name := range Experiments() {
		// Resolve only; heavy experiments already ran above and are
		// memoised, so this is cheap.
		if _, err := sharedSuite.Run(name); err != nil {
			t.Fatalf("experiment %s failed: %v", name, err)
		}
	}
}

// fscan parses the first float in a cell.
func fscan(cell string, v *float64) (int, error) {
	cell = strings.TrimSuffix(cell, "ms")
	cell = strings.TrimSuffix(cell, "%")
	return sscan(cell, v)
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(strings.TrimSpace(s), v)
}
