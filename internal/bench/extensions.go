package bench

import (
	"perfpred/internal/lqn"
	"perfpred/internal/rtdist"
	"perfpred/internal/sessioncache"
	"perfpred/internal/stats"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// Percentiles regenerates the §7.1 experiment: every figure-2 mean
// prediction converted to a 90th-percentile prediction via the
// exponential/Laplace distributions, scored against the measured 90th
// percentiles.
func (s *Suite) Percentiles() (*Table, error) {
	t := &Table{
		ID:     "Section 7.1",
		Title:  "90th-percentile response time predictions from mean predictions",
		Header: []string{"Server", "Clients", "Measured p90 (ms)", "Historical p90 (ms)", "LQN p90 (ms)", "Hybrid p90 (ms)"},
	}
	b, err := s.LaplaceScale()
	if err != nil {
		return nil, err
	}
	hyb, err := s.Hybrid()
	if err != nil {
		return nil, err
	}
	type agg struct{ pred, act []float64 }
	accs := map[string]map[string]*agg{}
	record := func(method, group string, pred, act float64) {
		if accs[method] == nil {
			accs[method] = map[string]*agg{}
		}
		if accs[method][group] == nil {
			accs[method][group] = &agg{}
		}
		a := accs[method][group]
		a.pred = append(a.pred, pred)
		a.act = append(a.act, act)
	}
	const p = 0.90
	for _, arch := range workload.CaseStudyServers() {
		hm, err := s.HistModelFor(arch)
		if err != nil {
			return nil, err
		}
		group := "new"
		if arch.Established {
			group = "established"
		}
		nStar := hm.SaturationClients()
		for _, frac := range figure2Fractions {
			n := int(frac * nStar)
			if n < 1 {
				n = 1
			}
			meas, err := measureCached(s, arch, n, 0)
			if err != nil {
				return nil, err
			}
			measured := meas.OverallPercentile(100 * p)
			saturated := hm.Saturated(float64(n))
			histP, err := hm.PredictPercentile(float64(n), p, b)
			if err != nil {
				return nil, err
			}
			lq, err := s.LQNPredict(arch, workload.TypicalWorkload(n))
			if err != nil {
				return nil, err
			}
			lqP, err := percentileFromMean(lq.MeanResponseTime(), saturated, b, p)
			if err != nil {
				return nil, err
			}
			hyP, err := hyb.PredictPercentile(arch.Name, float64(n), p, b)
			if err != nil {
				return nil, err
			}
			record("historical", group, histP, measured)
			record("lqn", group, lqP, measured)
			record("hybrid", group, hyP, measured)
			t.AddRow(arch.Name, itoa(n), ms(measured), ms(histP), ms(lqP), ms(hyP))
		}
	}
	for _, method := range []string{"historical", "lqn", "hybrid"} {
		est := accs[method]["established"]
		nw := accs[method]["new"]
		t.AddNote("%s p90 accuracy: %.1f%% established / %.1f%% new",
			method, stats.Accuracy(est.pred, est.act), stats.Accuracy(nw.pred, nw.act))
	}
	t.AddNote("calibrated Laplace scale b = %.1f ms (paper: 204.1 ms on its testbed)", b*1000)
	t.AddNote("paper: historical 88%%/80%%, LQN 69%%/77%%, hybrid 70%%/77%% (est/new); at most 4.6%% below the mean-RT accuracies")
	return t, nil
}

// CacheStudy regenerates the §7.2 investigation: the real LRU's miss
// rate and response time across cache sizes, the historical method's
// fitted cache-size model, and the layered fixed-point attempt with
// its distributional assumption.
func (s *Suite) CacheStudy() (*Table, error) {
	t := &Table{
		ID:     "Section 7.2",
		Title:  "Session-cache modelling: measured vs historical fit vs layered fixed point",
		Header: []string{"Cache (% of working set)", "Measured miss", "Historical miss", "LQN fixed-point miss", "Measured RT (ms)", "LQN RT (ms)"},
	}
	const clients = 400
	const sessionBytes = 4096
	workingSet := float64(clients) * sessionBytes
	demands, err := s.LQNDemands()
	if err != nil {
		return nil, err
	}
	measure := func(capFrac float64) (*trade.Result, error) {
		cfg := trade.Config{
			Server:   workload.AppServF(),
			DB:       workload.CaseStudyDB(),
			Demands:  workload.CaseStudyDemands(),
			Load:     workload.TypicalWorkload(clients),
			Seed:     s.Opt.Seed,
			WarmUp:   s.Opt.WarmUp,
			Duration: s.Opt.Duration,
			Cache: &trade.CacheConfig{
				SizeBytes:        int64(capFrac * workingSet),
				SessionBytesMean: sessionBytes,
				MissExtraDBCalls: 1,
			},
		}
		return trade.Run(cfg)
	}
	// Historical calibration at two cache sizes.
	calFracs := []float64{0.2, 0.85}
	var calPoints []sessioncache.CachePoint
	for _, f := range calFracs {
		res, err := measure(f)
		if err != nil {
			return nil, err
		}
		calPoints = append(calPoints, sessioncache.CachePoint{
			CapacityBytes: f * workingSet,
			MissRate:      res.CacheMissRate,
		})
	}
	missModel, err := sessioncache.FitMissRateModel(calPoints)
	if err != nil {
		return nil, err
	}
	for _, f := range []float64{0.1, 0.35, 0.6, 0.95} {
		meas, err := measure(f)
		if err != nil {
			return nil, err
		}
		histMiss := missModel.Predict(f * workingSet)
		fp, err := sessioncache.SolveWithCache(workload.AppServF(), workload.CaseStudyDB(),
			demands, workload.TypicalWorkload(clients),
			f*workingSet, sessionBytes, 1, 0, s.LQNOpt)
		if err != nil {
			return nil, err
		}
		t.AddRow(f1(f*100), f2(meas.CacheMissRate), f2(histMiss), f2(fp.MissRate),
			ms(meas.MeanRT), ms(fp.Result.MeanResponseTime()))
	}
	t.AddNote("historical method records cache size as a variable and fits the trend (works)")
	t.AddNote("layered fixed point needs an assumed replacement-volume distribution the solver cannot predict (§7.2's difficulty); its miss-rate estimates are structurally rough")
	return t, nil
}

// percentileFromMean applies the §7.1 distribution selection to a
// mean-value prediction.
func percentileFromMean(mean float64, saturated bool, b, p float64) (float64, error) {
	return rtdist.PercentileFromMean(mean, saturated, b, p)
}

// LQNMaxClientsCost reports the §8.2/§8.5 search-cost experiment: the
// solver evaluations needed to find a server's SLA capacity by search,
// versus the historical method's single closed-form inversion.
func (s *Suite) LQNMaxClientsCost() (*Table, error) {
	t := &Table{
		ID:     "Section 8.2",
		Title:  "Cost of SLA capacity queries: layered search vs historical inversion",
		Header: []string{"Server", "Goal (ms)", "LQN max clients", "LQN solver evals", "Historical max clients"},
	}
	demands, err := s.LQNDemands()
	if err != nil {
		return nil, err
	}
	for _, arch := range workload.CaseStudyServers() {
		hm, err := s.HistModelFor(arch)
		if err != nil {
			return nil, err
		}
		for _, goal := range []float64{0.150, 0.300, 0.600} {
			model, err := lqn.NewTradeModel(arch, workload.CaseStudyDB(), demands, workload.TypicalWorkload(1))
			if err != nil {
				return nil, err
			}
			n, evals, err := lqn.MaxClientsSearch(model, "browse", goal, 1<<18, s.LQNOpt)
			if err != nil {
				return nil, err
			}
			hN, err := hm.MaxClients(goal)
			if err != nil {
				return nil, err
			}
			t.AddRow(arch.Name, f1(goal*1000), itoa(n), itoa(evals), f1(hN))
		}
	}
	t.AddNote("the layered method must search (multiple solver evaluations per query, §8.2); the historical method inverts its equations in closed form")
	return t, nil
}
