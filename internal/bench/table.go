// Package bench is the experiment harness: it calibrates the three
// prediction methods against the simulated testbed exactly as the
// paper calibrates them against its physical testbed, then regenerates
// every table and figure of the evaluation. cmd/experiments drives it
// from the command line and bench_test.go wraps each experiment in a
// testing.B benchmark.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is one regenerated table or figure: a title, column headers,
// data rows and free-form notes (paper-reported values, caveats).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// FprintJSON renders the table as a JSON document, for scripted
// consumers of cmd/experiments.
func (t *Table) FprintJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Header, t.Rows, t.Notes})
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func ms(v float64) string { return fmt.Sprintf("%.1fms", v*1000) }
func g3(v float64) string { return fmt.Sprintf("%.3g", v) }
