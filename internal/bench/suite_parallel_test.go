package bench

import (
	"sync"
	"testing"

	"perfpred/internal/workload"
)

// shortSuite returns a suite with a short measurement window and the
// given worker count, cheap enough for race-detector runs. The seed is
// distinct from sharedSuite's so these tests never hit its cache keys.
func shortSuite(workers int) *Suite {
	s := NewSuite(1009)
	s.Opt.WarmUp = 5
	s.Opt.Duration = 20
	s.Opt.Workers = workers
	return s
}

// TestSuiteConcurrentCalibration hammers one Suite from many
// goroutines — the way concurrent figure generators would — and then
// checks every memoised artefact equals a serially-calibrated suite's.
// Run under -race (`make race`) this is the concurrency-safety proof
// for the singleflight Suite.
func TestSuiteConcurrentCalibration(t *testing.T) {
	concurrent := shortSuite(4)
	archs := []workload.ServerArch{workload.AppServF(), workload.AppServVF(), workload.AppServS()}
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 4 {
			case 0:
				if _, err := concurrent.Gradient(); err != nil {
					t.Errorf("Gradient: %v", err)
				}
			case 1:
				if _, err := concurrent.MaxThroughput(archs[g%len(archs)]); err != nil {
					t.Errorf("MaxThroughput: %v", err)
				}
			case 2:
				if _, err := concurrent.HistModelFor(archs[g%len(archs)]); err != nil {
					t.Errorf("HistModelFor: %v", err)
				}
			case 3:
				if _, err := concurrent.LaplaceScale(); err != nil {
					t.Errorf("LaplaceScale: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()

	serial := shortSuite(1)
	wantGrad, err := serial.Gradient()
	if err != nil {
		t.Fatal(err)
	}
	gotGrad, err := concurrent.Gradient()
	if err != nil {
		t.Fatal(err)
	}
	if gotGrad != wantGrad {
		t.Fatalf("concurrent gradient %v != serial %v", gotGrad, wantGrad)
	}
	for _, arch := range archs {
		want, err := serial.MaxThroughput(arch)
		if err != nil {
			t.Fatal(err)
		}
		got, err := concurrent.MaxThroughput(arch)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s: concurrent Xmax %v != serial %v", arch.Name, got, want)
		}
		wantHM, err := serial.HistModelFor(arch)
		if err != nil {
			t.Fatal(err)
		}
		gotHM, err := concurrent.HistModelFor(arch)
		if err != nil {
			t.Fatal(err)
		}
		if *gotHM != *wantHM {
			t.Fatalf("%s: concurrent historical model %+v != serial %+v", arch.Name, gotHM, wantHM)
		}
	}
	wantB, err := serial.LaplaceScale()
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := concurrent.LaplaceScale()
	if err != nil {
		t.Fatal(err)
	}
	if gotB != wantB {
		t.Fatalf("concurrent Laplace scale %v != serial %v", gotB, wantB)
	}
}

// TestSuiteParallelHybridMatchesSerial pins the hybrid model built on
// the worker pool against the serial build: identical calibrated
// parameters and solver-evaluation counts.
func TestSuiteParallelHybridMatchesSerial(t *testing.T) {
	serial, err := shortSuite(1).Hybrid()
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := shortSuite(8).Hybrid()
	if err != nil {
		t.Fatal(err)
	}
	if pooled.Evaluations != serial.Evaluations {
		t.Fatalf("pooled build ran %d solver evaluations, serial %d", pooled.Evaluations, serial.Evaluations)
	}
	if len(pooled.Servers) != len(serial.Servers) {
		t.Fatalf("pooled build has %d servers, serial %d", len(pooled.Servers), len(serial.Servers))
	}
	for name, want := range serial.Servers {
		got, ok := pooled.Servers[name]
		if !ok {
			t.Fatalf("pooled build missing server %s", name)
		}
		if *got != *want {
			t.Fatalf("%s: pooled model %+v != serial %+v", name, got, want)
		}
	}
}
