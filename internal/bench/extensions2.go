package bench

import (
	"perfpred/internal/hist"
	"perfpred/internal/lqn"
	"perfpred/internal/stats"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// Stabilisation exercises the §8.2 historical-only capability of
// modelling the time a server takes to settle toward steady state: a
// cold-start transient is measured on the simulated testbed and the
// exponential settling model fitted to it.
func (s *Suite) Stabilisation() (*Table, error) {
	t := &Table{
		ID:     "Section 8.2 (stabilisation)",
		Title:  "Cold-start settling: measured trajectory vs fitted stabilisation model",
		Header: []string{"Time (s)", "Measured RT (ms)", "Model RT (ms)"},
	}
	cfg := trade.Config{
		Server:   workload.AppServF(),
		DB:       workload.CaseStudyDB(),
		Demands:  workload.CaseStudyDemands(),
		Load:     workload.TypicalWorkload(1900),
		Seed:     s.Opt.Seed,
		Duration: 400,
	}
	curve, err := trade.TransientCurve(cfg, 20)
	if err != nil {
		return nil, err
	}
	var pts []hist.StabilisationPoint
	for _, p := range curve {
		if p.Completed > 0 {
			pts = append(pts, hist.StabilisationPoint{Time: p.Time, MeanRT: p.MeanRT})
		}
	}
	model, err := hist.FitStabilisation(pts)
	if err != nil {
		return nil, err
	}
	for i, p := range pts {
		if i%2 == 0 { // thin the table
			t.AddRow(f1(p.Time), ms(p.MeanRT), ms(model.At(p.Time)))
		}
	}
	t.AddNote("fitted: steady %.0f ms, tau %.0f s; within 5%% of steady after %.0f s",
		model.Steady*1000, model.Tau, model.TimeToSteady(0.05))
	t.AddNote("the layered queuing method makes only steady-state predictions (§8.2); the historical method records stabilisation as a variable")
	return t, nil
}

// ClusterStudy exercises the §2 system model's application-server
// tier: a heterogeneous three-server tier under the workload-manager
// routing policies, validating that the database's per-server FIFO
// queues and the tier's aggregate capacity behave.
func (s *Suite) ClusterStudy() (*Table, error) {
	t := &Table{
		ID:     "Section 2 (tier)",
		Title:  "Heterogeneous application tier under workload-manager routing policies",
		Header: []string{"Routing", "Mean RT (ms)", "Tier X (req/s)", "U(S)", "U(F)", "U(VF)"},
	}
	servers := []workload.ServerArch{workload.AppServS(), workload.AppServF(), workload.AppServVF()}
	for _, routing := range []trade.RoutingPolicy{trade.RouteSticky, trade.RouteRoundRobin, trade.RouteLeastBusy} {
		cfg := trade.Config{
			Servers:  servers,
			Routing:  routing,
			DB:       workload.CaseStudyDB(),
			Demands:  workload.CaseStudyDemands(),
			Load:     workload.TypicalWorkload(3600),
			Seed:     s.Opt.Seed,
			WarmUp:   s.Opt.WarmUp,
			Duration: s.Opt.Duration,
		}
		res, err := trade.Run(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(string(routing), ms(res.MeanRT), f1(res.Throughput),
			f2(res.PerServer[0].Utilization), f2(res.PerServer[1].Utilization), f2(res.PerServer[2].Utilization))
	}
	t.AddNote("tier capacity ≈ 86+186+320 = 592 req/s; speed-blind round robin overloads the slow member")
	return t, nil
}

// OpenWorkload validates the mixed-network extension (§8.1 "clients
// sending requests at a constant rate"): open-stream response times
// from the simulator versus the layered solver across arrival rates.
func (s *Suite) OpenWorkload() (*Table, error) {
	t := &Table{
		ID:     "Section 8.1 (open)",
		Title:  "Constant-rate (open) workload: measured vs layered queuing",
		Header: []string{"Rate (req/s)", "Measured RT (ms)", "LQN RT (ms)"},
	}
	class := workload.ServiceClass{Name: "stream", Mix: workload.Mix{workload.Browse: 1}}
	demands, err := s.LQNDemands()
	if err != nil {
		return nil, err
	}
	var preds, acts []float64
	for _, rate := range []float64{40, 80, 120, 150} {
		cfg := trade.Config{
			Server:   workload.AppServF(),
			DB:       workload.CaseStudyDB(),
			Demands:  workload.CaseStudyDemands(),
			Load:     workload.OpenWorkload(class, rate),
			Seed:     s.Opt.Seed,
			WarmUp:   s.Opt.WarmUp,
			Duration: s.Opt.Duration,
		}
		res, err := trade.Run(cfg)
		if err != nil {
			return nil, err
		}
		pred, err := lqn.PredictTrade(workload.AppServF(), demands, workload.OpenWorkload(class, rate), s.LQNOpt)
		if err != nil {
			return nil, err
		}
		p := pred.Classes["stream"].ResponseTime
		preds = append(preds, p)
		acts = append(acts, res.MeanRT)
		t.AddRow(f1(rate), ms(res.MeanRT), ms(p))
	}
	t.AddNote("open-workload LQN accuracy: %.1f%%", stats.Accuracy(preds, acts))
	return t, nil
}

// PercentileDirect compares the historical method's two routes to a
// percentile prediction on the new server: direct fitting of p90 data
// (§8.2) versus extrapolation from the mean through the §7.1
// distributions.
func (s *Suite) PercentileDirect() (*Table, error) {
	t := &Table{
		ID:     "Section 8.2 (direct percentile)",
		Title:  "New-server p90: direct historical fit vs extrapolation from mean",
		Header: []string{"Clients", "Measured p90 (ms)", "Direct fit (ms)", "From mean (ms)"},
	}
	gradient, err := s.Gradient()
	if err != nil {
		return nil, err
	}
	b, err := s.LaplaceScale()
	if err != nil {
		return nil, err
	}
	// Direct p90 models for the established servers, then
	// relationship 2 for the new one.
	var est []*hist.PercentileModel
	for _, arch := range []workload.ServerArch{workload.AppServF(), workload.AppServVF()} {
		xMax, err := s.MaxThroughput(arch)
		if err != nil {
			return nil, err
		}
		nStar := xMax / gradient
		var pts []hist.DataPoint
		for _, frac := range []float64{0.25, 0.55, 1.2, 1.6} {
			n := int(frac * nStar)
			res, err := measureCached(s, arch, n, 0)
			if err != nil {
				return nil, err
			}
			pts = append(pts, hist.DataPoint{Clients: float64(n), MeanRT: res.OverallPercentile(90)})
		}
		pm, err := hist.CalibratePercentile(arch, xMax, gradient, 0.9, pts)
		if err != nil {
			return nil, err
		}
		est = append(est, pm)
	}
	rel2p, err := hist.PercentileRelationship2(est)
	if err != nil {
		return nil, err
	}
	sArch := workload.AppServS()
	sMax, err := s.MaxThroughput(sArch)
	if err != nil {
		return nil, err
	}
	direct, err := hist.NewPercentileModel(rel2p, sArch, sMax, 0.9)
	if err != nil {
		return nil, err
	}
	meanModel, err := s.HistNewServer()
	if err != nil {
		return nil, err
	}
	var dPreds, ePreds, acts []float64
	nStar := sMax / gradient
	for _, frac := range []float64{0.3, 0.5, 1.3, 1.6} {
		n := int(frac * nStar)
		res, err := measureCached(s, sArch, n, 0)
		if err != nil {
			return nil, err
		}
		actual := res.OverallPercentile(90)
		dp := direct.Predict(float64(n))
		ep, err := meanModel.PredictPercentile(float64(n), 0.9, b)
		if err != nil {
			return nil, err
		}
		dPreds = append(dPreds, dp)
		ePreds = append(ePreds, ep)
		acts = append(acts, actual)
		t.AddRow(itoa(n), ms(actual), ms(dp), ms(ep))
	}
	t.AddNote("accuracy: direct %.1f%% vs from-mean %.1f%% (paper: direct recording avoids the ≤4.6%% extrapolation loss)",
		stats.Accuracy(dPreds, acts), stats.Accuracy(ePreds, acts))
	return t, nil
}
