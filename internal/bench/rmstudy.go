package bench

import (
	"context"
	"time"

	"perfpred/internal/parallel"
	"perfpred/internal/rm"
	"perfpred/internal/workload"
)

// RMSetup assembles the §9.1 study: the truth predictor is the more
// accurate historical model set (calibrated against the simulated
// testbed) and the planning predictor is the hybrid model — exactly
// the paper's choice of "the more accurate historical model ... to
// represent the real system response times, and the hybrid model ...
// as the less accurate predictions".
func (s *Suite) RMSetup() (pred, truth rm.Predictor, servers []rm.Server, err error) {
	truthSet := rm.ModelSet{}
	for name, arch := range servers16Arch() {
		m, e := s.HistModelFor(arch)
		if e != nil {
			return nil, nil, nil, e
		}
		truthSet[name] = m
	}
	hyb, err := s.Hybrid()
	if err != nil {
		return nil, nil, nil, err
	}
	return hyb, truthSet, rm.CaseStudyServers(), nil
}

func servers16Arch() map[string]workload.ServerArch {
	return map[string]workload.ServerArch{
		"AppServS":  workload.AppServS(),
		"AppServF":  workload.AppServF(),
		"AppServVF": workload.AppServVF(),
	}
}

// studyLoads sweeps the offered load like figures 5 and 6, up to and
// beyond the 16-server pool's capacity (~19k clients at the loosest
// goal), so the series include the saturation region where low-slack
// plans start failing (the spike at 9000 clients in the paper's
// figure 5 sits inside the corresponding range).
func studyLoads() []int {
	loads := make([]int, 0, 22)
	for n := 1000; n <= 22000; n += 1000 {
		loads = append(loads, n)
	}
	return loads
}

// Figure5and6 regenerates figures 5 and 6: % SLA failures and % server
// usage versus total clients at three slack levels.
func (s *Suite) Figure5and6() (*Table, error) {
	t := &Table{
		ID:     "Figures 5-6",
		Title:  "Resource manager cost metrics vs load at different slack levels",
		Header: []string{"Clients", "fail% s=1.1", "use% s=1.1", "fail% s=1.0", "use% s=1.0", "fail% s=0.9", "use% s=0.9"},
	}
	pred, truth, servers, err := s.RMSetup()
	if err != nil {
		return nil, err
	}
	// The three slack series are independent plan/evaluate sweeps over
	// read-only predictors, so they run concurrently on the pool.
	slacks := []float64{1.1, 1.0, 0.9}
	series, err := parallel.Map(context.Background(), s.Opt.Workers, len(slacks),
		func(_ context.Context, i int) ([]rm.SweepPoint, error) {
			// The study sweeps slack below 1 deliberately (figure 5's
			// 0.9 line), which Allocate otherwise rejects.
			return rm.SweepLoad(rm.CaseStudyShares(), servers, pred, truth, slacks[i], studyLoads(), rm.Options{AllowDeflation: true}, rm.EvalOptions{})
		})
	if err != nil {
		return nil, err
	}
	for j, load := range studyLoads() {
		t.AddRow(itoa(load),
			f1(series[0][j].SLAFailurePct), f1(series[0][j].ServerUsagePct),
			f1(series[1][j].SLAFailurePct), f1(series[1][j].ServerUsagePct),
			f1(series[2][j].SLAFailurePct), f1(series[2][j].ServerUsagePct))
	}
	t.AddNote("paper: slack 1.1 is the minimum with 0%% SLA failures before 100%% usage (SUmax=62.7%%); lower slack trades failures for usage")
	return t, nil
}

// Figure7 regenerates figure 7: the averaged cost metrics as the slack
// is reduced from 1.1 to 0.
func (s *Suite) Figure7() (*Table, error) {
	t := &Table{
		ID:     "Figure 7",
		Title:  "Average % SLA failures and % server usage saving, slack 1.1 -> 0",
		Header: []string{"Slack", "Avg fail %", "Avg usage %", "Avg usage saving %"},
	}
	pred, truth, servers, err := s.RMSetup()
	if err != nil {
		return nil, err
	}
	var slacks []float64
	for v := 1.1; v > 0.001; v -= 0.1 {
		slacks = append(slacks, v)
	}
	slacks = append(slacks, 0)
	points, err := rm.SweepSlack(rm.CaseStudyShares(), servers, pred, truth, slacks, studyLoads(), rm.Options{AllowDeflation: true}, rm.EvalOptions{})
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		t.AddRow(f2(p.Slack), f1(p.AvgFailPct), f1(p.AvgUsagePct), f1(p.AvgUsageSavingPct))
	}
	t.AddNote("paper: saving initially outpaces failures (first 0.1 of slack), the rates match between 1.0 and 0.9, then failures dominate toward 100%% at slack 0")
	return t, nil
}

// Figure8 regenerates figure 8: the fine-grained failure/saving
// trade-off between slack 1.1 and 0.9.
func (s *Suite) Figure8() (*Table, error) {
	t := &Table{
		ID:     "Figure 8",
		Title:  "SLA failures vs server usage saving, slack 1.1 -> 0.9",
		Header: []string{"Slack", "Avg fail %", "Avg usage saving %"},
	}
	pred, truth, servers, err := s.RMSetup()
	if err != nil {
		return nil, err
	}
	var slacks []float64
	for v := 1.10; v >= 0.899; v -= 0.025 {
		slacks = append(slacks, v)
	}
	points, err := rm.SweepSlack(rm.CaseStudyShares(), servers, pred, truth, slacks, studyLoads(), rm.Options{AllowDeflation: true}, rm.EvalOptions{})
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		t.AddRow(f3(p.Slack), f2(p.AvgFailPct), f2(p.AvgUsageSavingPct))
	}
	return t, nil
}

// UniformInaccuracy regenerates the §9.1 uniform-error experiment:
// with predictions that are y times reality, slack = y restores 0% SLA
// failures at a y-independent server usage.
func (s *Suite) UniformInaccuracy() (*Table, error) {
	t := &Table{
		ID:     "Section 9.1 (uniform)",
		Title:  "Uniform predictive inaccuracy compensated by slack = y",
		Header: []string{"y", "Max fail % (slack=y)", "Avg usage % (slack=y)", "Max fail % (slack=1)"},
	}
	truthSet := rm.ModelSet{}
	for name, arch := range servers16Arch() {
		m, err := s.HistModelFor(arch)
		if err != nil {
			return nil, err
		}
		truthSet[name] = m
	}
	servers := rm.CaseStudyServers()
	loads := []int{2000, 4000, 6000, 8000}
	for _, y := range []float64{0.9, 1.0, 1.1, 1.2, 1.3} {
		pred := rm.Biased{Base: truthSet, Y: y}
		// slack = y dips below 1 at y = 0.9.
		compensated, err := rm.SweepLoad(rm.CaseStudyShares(), servers, pred, truthSet, y, loads, rm.Options{AllowDeflation: true}, rm.EvalOptions{})
		if err != nil {
			return nil, err
		}
		uncompensated, err := rm.SweepLoad(rm.CaseStudyShares(), servers, pred, truthSet, 1.0, loads, rm.Options{}, rm.EvalOptions{})
		if err != nil {
			return nil, err
		}
		maxFail := 0.0
		for _, p := range compensated {
			if p.ServerUsagePct < 100 && p.SLAFailurePct > maxFail {
				maxFail = p.SLAFailurePct
			}
		}
		maxFailRaw := 0.0
		for _, p := range uncompensated {
			if p.ServerUsagePct < 100 && p.SLAFailurePct > maxFailRaw {
				maxFailRaw = p.SLAFailurePct
			}
		}
		_, usage := rm.AverageMetrics(compensated)
		t.AddRow(f2(y), f2(maxFail), f1(usage), f2(maxFailRaw))
	}
	t.AddNote("paper: slack = y gives 0%% SLA failures below 100%% usage and a constant %% server usage at any uniform accuracy")
	return t, nil
}

// Provider exercises the §2 outer loop: a service provider hosting
// two applications with shifting loads, the resource manager
// transferring isolated servers between them epoch by epoch.
func (s *Suite) Provider() (*Table, error) {
	t := &Table{
		ID:     "Section 2 (provider)",
		Title:  "Multi-application provider: server transfers as load shifts between applications",
		Header: []string{"Epoch", "Shop load", "Bank load", "Transfers", "Shop servers", "Bank servers", "Shop fail%", "Bank fail%"},
	}
	pred, truth, servers, err := s.RMSetup()
	if err != nil {
		return nil, err
	}
	shopLoad := []int{6000, 6000, 4000, 2000, 1000, 1000}
	bankLoad := []int{1000, 1000, 3000, 5000, 6000, 6000}
	apps := []rm.Application{
		{Name: "shop", Shares: rm.CaseStudyShares(), LoadPerEpoch: shopLoad},
		{Name: "bank", Shares: rm.CaseStudyShares(), LoadPerEpoch: bankLoad},
	}
	results, err := rm.RunProvider(apps, servers, pred, truth, rm.ProviderOptions{Slack: 1.1})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		t.AddRow(itoa(r.Epoch), itoa(shopLoad[i]), itoa(bankLoad[i]), itoa(r.Transfers),
			itoa(len(r.ServersByApp["shop"])), itoa(len(r.ServersByApp["bank"])),
			f1(r.FailurePctByApp["shop"]), f1(r.FailurePctByApp["bank"]))
	}
	t.AddNote("§2: 'a resource manager that controls the transfer of application servers between those applications'; servers are whole-unit isolated and follow the load")
	return t, nil
}

// PredictionDelay regenerates the §8.5 comparison: per-prediction
// evaluation delay for each method, plus the hybrid start-up delay.
func (s *Suite) PredictionDelay() (*Table, error) {
	t := &Table{
		ID:     "Section 8.5",
		Title:  "Prediction evaluation delay per method",
		Header: []string{"Method", "Per-prediction", "One-off start-up"},
	}
	hm, err := s.HistModel(workload.AppServF())
	if err != nil {
		return nil, err
	}
	const reps = 2000
	start := time.Now()
	for i := 0; i < reps; i++ {
		_ = hm.Predict(float64(100 + i))
	}
	histPer := time.Since(start) / reps

	demands, err := s.LQNDemands()
	if err != nil {
		return nil, err
	}
	const lqnReps = 50
	start = time.Now()
	for i := 0; i < lqnReps; i++ {
		if _, err := lqnPredictOnce(demands, 800+i, s); err != nil {
			return nil, err
		}
	}
	lqnPer := time.Since(start) / lqnReps

	hyb, err := s.Hybrid()
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for i := 0; i < reps; i++ {
		if _, err := hyb.Predict("AppServF", float64(100+i)); err != nil {
			return nil, err
		}
	}
	hybridPer := time.Since(start) / reps

	t.AddRow("historical", histPer.String(), "none")
	t.AddRow("layered queuing", lqnPer.String(), "none")
	t.AddRow("hybrid", hybridPer.String(), hyb.StartupDelay.String())
	t.AddNote("paper (Athlon 1.4GHz): LQNS up to 3s per solve; historical ≈instant; hybrid 11s start-up then ≈instant — the ordering, not the absolute times, is the reproducible claim")
	return t, nil
}

func lqnPredictOnce(demands map[workload.RequestType]workload.Demand, n int, s *Suite) (float64, error) {
	res, err := s.LQNPredict(workload.AppServF(), workload.TypicalWorkload(n))
	if err != nil {
		return 0, err
	}
	return res.MeanResponseTime(), nil
}
