package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"perfpred/internal/stats"
)

// TestFigure2AccuracyStableAcrossSeeds replicates the headline
// experiment across independent seeds and checks the per-method
// accuracies are stable — the reproduction's conclusions do not hinge
// on one lucky random stream.
func TestFigure2AccuracyStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("replication across seeds is expensive")
	}
	methods := []string{"historical", "lqn", "hybrid"}
	accs := map[string]*stats.Accumulator{}
	for _, m := range methods {
		accs[m] = &stats.Accumulator{}
	}
	for _, seed := range []int64{101, 202, 303} {
		s := NewSuite(seed)
		pairs, err := s.Figure2Accuracies()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range methods {
			accs[m].Add(pairs[m][1]) // new-server accuracy
		}
	}
	for _, m := range methods {
		mean, hw := accs[m].MeanCI(0.95)
		t.Logf("%s new-server accuracy across seeds: %.1f%% ± %.1f", m, mean, hw)
		if mean < 50 {
			t.Fatalf("%s replicated accuracy %.1f%% below floor", m, mean)
		}
		// Seed-to-seed spread stays bounded: conclusions are not
		// artefacts of one stream.
		if accs[m].Max()-accs[m].Min() > 25 {
			t.Fatalf("%s accuracy spread %.1f..%.1f too wide", m, accs[m].Min(), accs[m].Max())
		}
	}
}

func TestTableJSONOutput(t *testing.T) {
	tab := &Table{
		ID:     "X",
		Title:  "t",
		Header: []string{"a", "b"},
	}
	tab.AddRow("1", "2")
	tab.AddNote("n=%d", 1)
	var buf bytes.Buffer
	if err := tab.FprintJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID     string     `json:"id"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != "X" || len(decoded.Rows) != 1 || decoded.Rows[0][1] != "2" || decoded.Notes[0] != "n=1" {
		t.Fatalf("decoded = %+v", decoded)
	}
}
