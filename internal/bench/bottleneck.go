package bench

import (
	"perfpred/internal/hist"
	"perfpred/internal/lqn"
	"perfpred/internal/stats"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// bottleneck parameters: 30% of requests hold a global lock for a mean
// of 10 ms of CPU, dropping AppServF's effective ceiling from 186 to
// ~1/(5.4ms+3ms) ≈ 119 req/s.
const (
	csMeanTime = 0.010
	csFraction = 0.30
)

// Bottleneck reproduces the §8.1 implicit-queue discussion: a critical
// section creates a serialisation queue no model declares. The
// historical method calibrates straight over the measurements and
// absorbs it; the naive layered model misses it entirely; the profiled
// layered model (lock added as an explicit station) recovers most of
// it.
func (s *Suite) Bottleneck() (*Table, error) {
	t := &Table{
		ID:     "Section 8.1 (bottleneck)",
		Title:  "Implicit critical-section queue: measured vs historical vs naive/profiled LQN",
		Header: []string{"Clients", "Measured (ms)", "Historical (ms)", "Naive LQN (ms)", "Profiled LQN (ms)"},
	}
	arch := workload.AppServF()
	demands, err := s.LQNDemands()
	if err != nil {
		return nil, err
	}

	measure := func(n int) (*trade.Result, error) {
		cfg := trade.Config{
			Server:          arch,
			DB:              workload.CaseStudyDB(),
			Demands:         workload.CaseStudyDemands(),
			Load:            workload.TypicalWorkload(n),
			Seed:            s.Opt.Seed,
			WarmUp:          s.Opt.WarmUp,
			Duration:        s.Opt.Duration,
			CriticalSection: &trade.CriticalSectionConfig{MeanTime: csMeanTime, Fraction: csFraction},
		}
		return trade.Run(cfg)
	}

	// Historical method: benchmark + calibrate on the CS-enabled system
	// exactly as on any other system — nothing special to model.
	csMax, err := measure(2 * int(workload.MaxThroughputF*workload.ThinkTimeMean))
	if err != nil {
		return nil, err
	}
	xMax := csMax.Throughput
	gradient, err := s.Gradient()
	if err != nil {
		return nil, err
	}
	nStar := xMax / gradient
	var calPts []hist.DataPoint
	for _, frac := range []float64{0.25, 0.55, 1.2, 1.6} {
		res, err := measure(int(frac * nStar))
		if err != nil {
			return nil, err
		}
		calPts = append(calPts, hist.DataPoint{Clients: frac * nStar, MeanRT: res.MeanRT})
	}
	histModel, err := hist.CalibrateServer(arch, xMax, gradient, calPts)
	if err != nil {
		return nil, err
	}

	lqnRT := func(n int, profiled bool) (float64, error) {
		model, err := lqn.NewTradeModel(arch, workload.CaseStudyDB(), demands, workload.TypicalWorkload(n))
		if err != nil {
			return 0, err
		}
		if profiled {
			if err := lqn.AddCriticalSection(model, arch.Speed, csMeanTime, csFraction); err != nil {
				return 0, err
			}
		}
		res, err := lqn.Solve(model, s.LQNOpt)
		if err != nil {
			return 0, err
		}
		return res.MeanResponseTime(), nil
	}

	var histP, naiveP, profP, acts []float64
	for _, frac := range []float64{0.3, 0.6, 0.95, 1.3, 1.7} {
		n := int(frac * nStar)
		meas, err := measure(n)
		if err != nil {
			return nil, err
		}
		h := histModel.Predict(float64(n))
		naive, err := lqnRT(n, false)
		if err != nil {
			return nil, err
		}
		prof, err := lqnRT(n, true)
		if err != nil {
			return nil, err
		}
		histP = append(histP, h)
		naiveP = append(naiveP, naive)
		profP = append(profP, prof)
		acts = append(acts, meas.MeanRT)
		t.AddRow(itoa(n), ms(meas.MeanRT), ms(h), ms(naive), ms(prof))
	}
	t.AddNote("accuracy: historical %.1f%%, naive LQN %.1f%%, profiled LQN %.1f%%",
		stats.Accuracy(histP, acts), stats.Accuracy(naiveP, acts), stats.Accuracy(profP, acts))
	t.AddNote("bottleneck ceiling ≈%.0f req/s vs the unconstrained 186; the historical method absorbs implicit queues from data, the layered method needs them profiled into the model (§8.1)", xMax)
	return t, nil
}
