package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		out, err := Map(context.Background(), workers, 50, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 50 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapSerialRunsInOrderAndStopsAtError(t *testing.T) {
	var order []int
	boom := errors.New("boom")
	_, err := Map(context.Background(), 1, 10, func(_ context.Context, i int) (int, error) {
		order = append(order, i)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(order) != 4 {
		t.Fatalf("serial map ran %v; want exactly [0 1 2 3]", order)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial map order %v not ascending", order)
		}
	}
}

func TestMapFirstErrorIsDeterministic(t *testing.T) {
	// Index 2 always fails; later indices may fail only via knock-on
	// cancellation. The reported error must be index 2's, regardless of
	// scheduling.
	errAt := func(i int) error { return fmt.Errorf("cell %d failed", i) }
	for trial := 0; trial < 20; trial++ {
		_, err := Map(context.Background(), 8, 64, func(ctx context.Context, i int) (int, error) {
			if i == 2 {
				return 0, errAt(i)
			}
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			return i, nil
		})
		if err == nil || err.Error() != "cell 2 failed" {
			t.Fatalf("trial %d: err = %v, want cell 2's error", trial, err)
		}
	}
}

func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 4, 8, func(context.Context, int) (int, error) { return 0, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	_, err := Map(context.Background(), workers, 60, func(_ context.Context, i int) (int, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inFlight.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, pool bound is %d", p, workers)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 4, 0, func(context.Context, int) (int, error) {
		t.Fatal("fn called for empty input")
		return 0, nil
	})
	if err != nil || out != nil {
		t.Fatalf("got (%v, %v), want (nil, nil)", out, err)
	}
}

func TestGridShapeAndValues(t *testing.T) {
	out, err := Grid(context.Background(), 4, 3, 5, func(_ context.Context, r, c int) (string, error) {
		return fmt.Sprintf("%d/%d", r, c), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("rows = %d, want 3", len(out))
	}
	for r := range out {
		if len(out[r]) != 5 {
			t.Fatalf("cols(row %d) = %d, want 5", r, len(out[r]))
		}
		for c := range out[r] {
			if want := fmt.Sprintf("%d/%d", r, c); out[r][c] != want {
				t.Fatalf("out[%d][%d] = %q, want %q", r, c, out[r][c], want)
			}
		}
	}
}

func TestWorkersNormalisation(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("non-positive worker counts must normalise to >= 1")
	}
	if Workers(7) != 7 {
		t.Fatalf("Workers(7) = %d", Workers(7))
	}
}
