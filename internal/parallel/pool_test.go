package parallel

import (
	"sync/atomic"
	"testing"
)

// Every Run must execute every slot exactly once, across many
// repeated barriers, for serial and concurrent pool sizes.
func TestPoolRunsEverySlot(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		counts := make([]atomic.Int64, n)
		p := NewPool(n, func(slot int) { counts[slot].Add(1) })
		const rounds = 200
		for r := 0; r < rounds; r++ {
			p.Run()
		}
		p.Close()
		for i := range counts {
			if got := counts[i].Load(); got != rounds {
				t.Fatalf("n=%d slot %d ran %d times, want %d", n, i, got, rounds)
			}
		}
	}
}

// A single-slot pool must run inline on the calling goroutine — the
// serial path used by single-shard simulations must involve no
// scheduling at all.
func TestPoolSingleSlotInline(t *testing.T) {
	var ran bool
	p := NewPool(1, func(slot int) { ran = true })
	p.Run() // would race with a worker goroutine under -race if not inline
	if !ran {
		t.Fatal("slot did not run")
	}
	p.Close()
}

// Run must not return before all slots complete (it is a barrier).
func TestPoolRunIsBarrier(t *testing.T) {
	var inFlight, maxSeen atomic.Int64
	p := NewPool(4, func(slot int) {
		cur := inFlight.Add(1)
		for {
			m := maxSeen.Load()
			if cur <= m || maxSeen.CompareAndSwap(m, cur) {
				break
			}
		}
		inFlight.Add(-1)
	})
	for r := 0; r < 100; r++ {
		p.Run()
		if got := inFlight.Load(); got != 0 {
			t.Fatalf("Run returned with %d slots in flight", got)
		}
	}
	p.Close()
	if maxSeen.Load() < 1 {
		t.Fatal("no slot ever ran")
	}
}

// Close is idempotent and leaves a never-started (serial) pool usable.
func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(3, func(int) {})
	p.Run()
	p.Close()
	p.Close()
	s := NewPool(1, func(int) {})
	s.Close()
	s.Close()
}
