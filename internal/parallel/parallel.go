// Package parallel is the bounded worker pool behind the repository's
// concurrent sweeps. Every experiment grid in this reproduction — the
// figure 2/3 client-count curves, the resource-management slack
// series, the hybrid model's per-architecture pseudo-data generation —
// is a set of independent cells: each cell owns its own sim.Engine and
// seeded random streams, so cells can run on any number of workers and
// still produce bit-identical results per (arch, clients, seed) key.
// This package provides the fan-out primitives those sweeps share:
//
//   - Map runs an indexed function across a bounded pool and returns
//     results in index order, with context cancellation and
//     deterministic first-error propagation.
//   - Grid is Map over a two-dimensional sweep.
//   - Memo and Once (memo.go) are the singleflight-style memoisation
//     used to make shared calibration state safe for concurrent use.
//
// With workers == 1 every helper degenerates to a plain serial loop on
// the calling goroutine — the exact pre-parallel behaviour, which the
// determinism tests pin against the pooled path.
package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalises a worker-count knob: values <= 0 select
// runtime.GOMAXPROCS(0), anything else passes through. Sweeps expose
// the raw knob (0 = all cores, 1 = serial) and call this at the point
// of use.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines and returns the n results in index order. workers <= 0
// selects runtime.GOMAXPROCS(0); the pool never exceeds n.
//
// With one worker, fn runs inline on the calling goroutine in
// ascending index order and Map returns at the first error without
// touching later indices — exactly a serial loop. With more workers,
// indices are handed out in ascending order; on the first error the
// context passed to still-running fns is cancelled, the pool drains,
// and the error reported is the lowest-indexed real failure (context
// cancellations caused by that failure are not mistaken for it), so
// the returned error does not depend on goroutine scheduling.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := cctx.Err(); err != nil {
					errs[i] = err
					return
				}
				v, err := fn(cctx, i)
				if err != nil {
					errs[i] = err
					cancel()
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()

	// Deterministic first-error selection: prefer the lowest-indexed
	// error that is not a knock-on cancellation; fall back to the
	// lowest-indexed error of any kind (the parent context being
	// cancelled, typically).
	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if fallback == nil {
			fallback = err
		}
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if fallback != nil {
		return nil, fallback
	}
	return out, nil
}

// Grid runs fn over the rows×cols cartesian product on the pool and
// returns results indexed [row][col]. Cells are flattened row-major
// onto Map, so ordering, cancellation and error semantics are Map's.
func Grid[T any](ctx context.Context, workers, rows, cols int, fn func(ctx context.Context, row, col int) (T, error)) ([][]T, error) {
	if rows <= 0 || cols <= 0 {
		return nil, ctx.Err()
	}
	flat, err := Map(ctx, workers, rows*cols, func(ctx context.Context, i int) (T, error) {
		return fn(ctx, i/cols, i%cols)
	})
	if err != nil {
		return nil, err
	}
	out := make([][]T, rows)
	for r := range out {
		out[r] = flat[r*cols : (r+1)*cols]
	}
	return out, nil
}
