package parallel

import "sync"

// Pool is a persistent worker pool for repeated barrier-style fan-out
// over a fixed set of slots. Map spins up fresh goroutines per call,
// which is fine for experiment sweeps (thousands of cells, one
// fan-out) but far too heavy for the sharded simulator's coordinator,
// which fans the same shard set out once per synchronisation window —
// potentially millions of times per run. A Pool starts its goroutines
// once; each Run hands every slot index to a worker over a channel and
// blocks until all slots finish. The steady-state cost per Run is two
// channel operations per slot and one WaitGroup cycle: no goroutine
// creation, no closure allocation.
//
// The function executed per slot is fixed at construction, so callers
// communicate per-Run inputs through state the function reads (e.g.
// fields on the shard the index selects). Run must not be called
// concurrently with itself. A Pool with one slot runs inline on the
// calling goroutine — the exact serial behaviour, no goroutines at
// all — which keeps the single-shard path free of any scheduling
// nondeterminism.
type Pool struct {
	n    int
	fn   func(slot int)
	work chan int
	wg   sync.WaitGroup
	done chan struct{}
}

// NewPool starts a pool of n slots running fn. With n <= 1 no
// goroutines are started and Run executes fn(0) inline.
func NewPool(n int, fn func(slot int)) *Pool {
	p := &Pool{n: n, fn: fn}
	if n <= 1 {
		return p
	}
	p.work = make(chan int, n)
	p.done = make(chan struct{})
	for w := 0; w < n; w++ {
		go func() {
			for slot := range p.work {
				p.fn(slot)
				p.wg.Done()
			}
		}()
	}
	return p
}

// Run executes fn(slot) for every slot in [0, n), returning when all
// have completed. Slots run concurrently (up to n at once); the caller
// must not invoke Run again until it returns.
func (p *Pool) Run() {
	if p.n <= 1 {
		if p.n == 1 {
			p.fn(0)
		}
		return
	}
	p.wg.Add(p.n)
	for slot := 0; slot < p.n; slot++ {
		p.work <- slot
	}
	p.wg.Wait()
}

// Close shuts the pool's workers down. The pool must be idle. Close is
// idempotent; Run must not be called after Close.
func (p *Pool) Close() {
	if p.work == nil {
		return
	}
	select {
	case <-p.done:
		return
	default:
	}
	close(p.done)
	close(p.work)
}
