package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMemoSingleFlight(t *testing.T) {
	var m Memo[string, int]
	var calls atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.Do("k", func() (int, error) {
				calls.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = (%d, %v), want (42, nil)", v, err)
			}
		}()
	}
	wg.Wait()
	if c := calls.Load(); c != 1 {
		t.Fatalf("fn ran %d times for one key, want 1", c)
	}
}

func TestMemoDistinctKeys(t *testing.T) {
	var m Memo[int, int]
	for k := 0; k < 5; k++ {
		v, err := m.Do(k, func() (int, error) { return k * 10, nil })
		if err != nil || v != k*10 {
			t.Fatalf("Do(%d) = (%d, %v)", k, v, err)
		}
	}
	// Second pass must hit the memo, not recompute.
	for k := 0; k < 5; k++ {
		v, err := m.Do(k, func() (int, error) {
			t.Fatalf("recomputed key %d", k)
			return 0, nil
		})
		if err != nil || v != k*10 {
			t.Fatalf("memoised Do(%d) = (%d, %v)", k, v, err)
		}
	}
}

func TestMemoErrorsRetry(t *testing.T) {
	var m Memo[string, int]
	boom := errors.New("boom")
	if _, err := m.Do("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v, want boom", err)
	}
	v, err := m.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry Do = (%d, %v), want (7, nil): failures must not be memoised", v, err)
	}
}

// TestMemoStampede is the serving-cache contract: a thundering herd of
// cold requests for one key runs the underlying build exactly once,
// and every caller — leader and waiters alike — receives that build's
// value. The build is deliberately slow so all N goroutines really do
// pile onto one in-progress flight rather than racing past each other.
func TestMemoStampede(t *testing.T) {
	var m Memo[string, int]
	var builds atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	const herd = 64

	var wg sync.WaitGroup
	errs := make([]error, herd)
	vals := make([]int, herd)
	for g := 0; g < herd; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vals[g], errs[g] = m.Do("model", func() (int, error) {
				if builds.Add(1) == 1 {
					close(started)
				}
				<-release // hold the flight open while the herd gathers
				return 77, nil
			})
		}(g)
	}
	<-started
	// Give the rest of the herd time to join the flight, then let the
	// single build finish.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if b := builds.Load(); b != 1 {
		t.Fatalf("stampede ran %d builds for one key, want exactly 1", b)
	}
	for g := 0; g < herd; g++ {
		if errs[g] != nil || vals[g] != 77 {
			t.Fatalf("caller %d got (%d, %v), want (77, nil)", g, vals[g], errs[g])
		}
	}
}

// TestMemoStampedeErrorNotCached checks the failure half of the
// stampede contract: when the shared flight fails, every waiter sees
// the error, nothing is cached, and the next request retries the
// build.
func TestMemoStampedeErrorNotCached(t *testing.T) {
	var m Memo[string, int]
	boom := errors.New("build failed")
	var builds atomic.Int64
	release := make(chan struct{})
	const herd = 16

	var wg sync.WaitGroup
	var sawErr atomic.Int64
	for g := 0; g < herd; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := m.Do("k", func() (int, error) {
				builds.Add(1)
				<-release
				return 0, boom
			})
			if errors.Is(err, boom) {
				sawErr.Add(1)
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	close(release)
	wg.Wait()

	if b := builds.Load(); b < 1 {
		t.Fatalf("no build ran")
	}
	if sawErr.Load() == 0 {
		t.Fatalf("no caller saw the flight's error")
	}
	v, err := m.Do("k", func() (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("post-failure Do = (%d, %v), want (5, nil): errors must not be cached", v, err)
	}
}

// TestMemoCancelledWaitersDontPoison is the deadline contract: waiters
// whose context expires mid-flight get ctx.Err() and go away, but the
// flight itself completes and its value lands in the slot — an
// impatient caller must not poison the cache for everyone else.
func TestMemoCancelledWaitersDontPoison(t *testing.T) {
	var m Memo[string, int]
	var builds atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	// Leader: slow build.
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, err := m.Do("k", func() (int, error) {
			builds.Add(1)
			close(started)
			<-release
			return 31, nil
		})
		if err != nil || v != 31 {
			t.Errorf("leader got (%d, %v), want (31, nil)", v, err)
		}
	}()
	<-started

	// Waiters with already-expired deadlines: they must return
	// context errors promptly instead of blocking on the flight.
	for g := 0; g < 8; g++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := m.DoCtx(ctx, "k", func() (int, error) {
			t.Error("cancelled waiter became a second leader")
			return 0, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter err = %v, want context.Canceled", err)
		}
	}

	close(release)
	<-leaderDone

	// The slot must hold the leader's value: cancelled waiters did not
	// poison or clear it.
	v, err := m.DoCtx(context.Background(), "k", func() (int, error) {
		t.Fatal("slot was poisoned: build re-ran after cancelled waiters")
		return 0, nil
	})
	if err != nil || v != 31 {
		t.Fatalf("post-cancel Do = (%d, %v), want (31, nil)", v, err)
	}
	if b := builds.Load(); b != 1 {
		t.Fatalf("build ran %d times, want 1", b)
	}
}

// TestMemoForget drops completed flights but leaves in-progress ones
// alone, so eviction during a rebuild can never start a duplicate
// build.
func TestMemoForget(t *testing.T) {
	var m Memo[string, int]
	calls := 0
	if _, err := m.Do("k", func() (int, error) { calls++; return 1, nil }); err != nil {
		t.Fatal(err)
	}
	m.Forget("k")
	if v, err := m.Do("k", func() (int, error) { calls++; return 2, nil }); err != nil || v != 2 {
		t.Fatalf("post-Forget Do = (%d, %v), want (2, nil)", v, err)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2 (Forget must force a recompute)", calls)
	}

	// Forget during an in-progress flight is a no-op: the concurrent
	// caller still joins the existing flight.
	started := make(chan struct{})
	release := make(chan struct{})
	var builds atomic.Int64
	go func() {
		_, _ = m.Do("live", func() (int, error) {
			builds.Add(1)
			close(started)
			<-release
			return 9, nil
		})
	}()
	<-started
	m.Forget("live") // must not remove the running flight
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := m.Do("live", func() (int, error) {
			builds.Add(1)
			return -1, nil
		})
		if err != nil || v != 9 {
			t.Errorf("joiner got (%d, %v), want (9, nil)", v, err)
		}
	}()
	time.Sleep(5 * time.Millisecond)
	close(release)
	<-done
	if b := builds.Load(); b != 1 {
		t.Fatalf("Forget on a live flight caused %d builds, want 1", b)
	}
}

// TestOnceCachesZeroValue is the regression test for the suite's old
// `if s.gradient != 0` memoisation, which re-ran the calibration
// whenever the cached value was legitimately zero.
func TestOnceCachesZeroValue(t *testing.T) {
	var o Once[float64]
	calls := 0
	for i := 0; i < 3; i++ {
		v, err := o.Do(func() (float64, error) {
			calls++
			return 0, nil
		})
		if err != nil || v != 0 {
			t.Fatalf("Do = (%v, %v)", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("zero value recomputed: fn ran %d times, want 1", calls)
	}
}

func TestOnceConcurrent(t *testing.T) {
	var o Once[int]
	var calls atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v, err := o.Do(func() (int, error) {
				calls.Add(1)
				return 9, nil
			}); err != nil || v != 9 {
				t.Errorf("Do = (%d, %v)", v, err)
			}
		}()
	}
	wg.Wait()
	if c := calls.Load(); c != 1 {
		t.Fatalf("fn ran %d times, want 1", c)
	}
}
