package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMemoSingleFlight(t *testing.T) {
	var m Memo[string, int]
	var calls atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.Do("k", func() (int, error) {
				calls.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = (%d, %v), want (42, nil)", v, err)
			}
		}()
	}
	wg.Wait()
	if c := calls.Load(); c != 1 {
		t.Fatalf("fn ran %d times for one key, want 1", c)
	}
}

func TestMemoDistinctKeys(t *testing.T) {
	var m Memo[int, int]
	for k := 0; k < 5; k++ {
		v, err := m.Do(k, func() (int, error) { return k * 10, nil })
		if err != nil || v != k*10 {
			t.Fatalf("Do(%d) = (%d, %v)", k, v, err)
		}
	}
	// Second pass must hit the memo, not recompute.
	for k := 0; k < 5; k++ {
		v, err := m.Do(k, func() (int, error) {
			t.Fatalf("recomputed key %d", k)
			return 0, nil
		})
		if err != nil || v != k*10 {
			t.Fatalf("memoised Do(%d) = (%d, %v)", k, v, err)
		}
	}
}

func TestMemoErrorsRetry(t *testing.T) {
	var m Memo[string, int]
	boom := errors.New("boom")
	if _, err := m.Do("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v, want boom", err)
	}
	v, err := m.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry Do = (%d, %v), want (7, nil): failures must not be memoised", v, err)
	}
}

// TestOnceCachesZeroValue is the regression test for the suite's old
// `if s.gradient != 0` memoisation, which re-ran the calibration
// whenever the cached value was legitimately zero.
func TestOnceCachesZeroValue(t *testing.T) {
	var o Once[float64]
	calls := 0
	for i := 0; i < 3; i++ {
		v, err := o.Do(func() (float64, error) {
			calls++
			return 0, nil
		})
		if err != nil || v != 0 {
			t.Fatalf("Do = (%v, %v)", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("zero value recomputed: fn ran %d times, want 1", calls)
	}
}

func TestOnceConcurrent(t *testing.T) {
	var o Once[int]
	var calls atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v, err := o.Do(func() (int, error) {
				calls.Add(1)
				return 9, nil
			}); err != nil || v != 9 {
				t.Errorf("Do = (%d, %v)", v, err)
			}
		}()
	}
	wg.Wait()
	if c := calls.Load(); c != 1 {
		t.Fatalf("fn ran %d times, want 1", c)
	}
}
