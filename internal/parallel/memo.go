package parallel

import (
	"context"
	"sync"
)

// Memo is a concurrency-safe, singleflight-style memoisation table.
// The first caller of Do for a key runs fn; concurrent callers of the
// same key block until that flight finishes and share its result;
// later callers get the memoised value without running fn again.
// Different keys never block each other.
//
// A successful result is cached forever. A failed flight is NOT
// cached: its waiters receive the error, and the next Do for that key
// retries — the same semantics the serial suite had, where an errored
// calibration left the memo field unset.
//
// The zero value is ready to use.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*flight[V]
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do returns the memoised value for key, computing it with fn on the
// first call. fn runs at most once per key at a time, and at most once
// ever if it succeeds.
func (m *Memo[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	return m.DoCtx(context.Background(), key, fn)
}

// DoCtx is Do with a cancellable wait: a caller that joins an
// in-progress flight stops waiting when ctx is done and returns
// ctx.Err() with the zero value. The flight itself is *not* cancelled —
// the leader runs fn to completion regardless of any waiter's context
// (the computation is shared property, so one impatient caller must not
// poison the slot for the others), and its result is memoised exactly
// as with Do. A caller that becomes the leader likewise runs fn to
// completion; fn may consult its own context internally if the
// computation should observe deadlines.
func (m *Memo[K, V]) DoCtx(ctx context.Context, key K, fn func() (V, error)) (V, error) {
	m.mu.Lock()
	if m.m == nil {
		m.m = make(map[K]*flight[V])
	}
	if f, ok := m.m[key]; ok {
		m.mu.Unlock()
		select {
		case <-f.done:
			return f.val, f.err
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err()
		}
	}
	f := &flight[V]{done: make(chan struct{})}
	m.m[key] = f
	m.mu.Unlock()

	f.val, f.err = fn()
	if f.err != nil {
		m.mu.Lock()
		delete(m.m, key)
		m.mu.Unlock()
	}
	close(f.done)
	return f.val, f.err
}

// Forget drops the memoised value for key so the next Do recomputes
// it. An in-progress flight is left alone — removing it would let a
// second flight for the same key start while the first still runs,
// which is exactly the stampede Memo exists to prevent; callers
// evicting a key concurrently with its rebuild therefore cannot cause
// duplicate work.
func (m *Memo[K, V]) Forget(key K) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.m[key]
	if !ok {
		return
	}
	select {
	case <-f.done:
		delete(m.m, key)
	default:
	}
}

// Once memoises a single computed value: Memo with one key. It is the
// done-flag replacement for zero-value sentinels like
// `if s.gradient != 0 { return s.gradient }`, which misread a
// legitimately-zero cached value as "not yet computed" and are not
// safe for concurrent use. The zero value is ready to use.
type Once[V any] struct {
	memo Memo[struct{}, V]
}

// Do returns the memoised value, computing it with fn on the first
// call. Errors are not memoised; concurrent callers share one flight.
func (o *Once[V]) Do(fn func() (V, error)) (V, error) {
	return o.memo.Do(struct{}{}, fn)
}
