package regress

import (
	"math"
	"runtime"
	"testing"

	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// testArch is a slow synthetic architecture so tests measure small
// populations.
func testArch() workload.ServerArch {
	return workload.ServerArch{Name: "TestServ", Speed: 0.05, MPL: 50, MaxThroughputTypical: 0.05 * workload.MaxThroughputF}
}

// syntheticSamples builds samples whose response time is exactly
// linear in the offered app-server work: rt = base + slope·(n·dApp).
func syntheticSamples(arch workload.ServerArch, base, slope float64, pops []int) []Sample {
	demands := workload.CaseStudyDemands()
	appD := demands[workload.Browse].AppServerTime / arch.Speed
	out := make([]Sample, 0, len(pops))
	for _, n := range pops {
		out = append(out, Sample{
			Arch:    arch.Name,
			Clients: n,
			MeanRT:  base + slope*float64(n)*appD,
		})
	}
	return out
}

// A ridge fit with a vanishing penalty on exactly linear data must
// recover the generating line: near-zero error at training points and
// at interior queries the model never saw.
func TestRidgeRecoversSyntheticLinear(t *testing.T) {
	arch := testArch()
	pops := []int{5, 12, 20, 31, 44, 58, 71, 85, 92, 100}
	const base, slope = 0.080, 2.5
	samples := syntheticSamples(arch, base, slope, pops)
	m, err := Fit(samples, []workload.ServerArch{arch}, workload.CaseStudyDemands(), workload.ThinkTimeMean,
		FitConfig{Degree: 3, Lambda: 1e-9, Target: "rt"})
	if err != nil {
		t.Fatal(err)
	}
	demands := workload.CaseStudyDemands()
	appD := demands[workload.Browse].AppServerTime / arch.Speed
	for _, n := range []float64{5, 17, 26, 50, 63, 88, 100} {
		want := base + slope*n*appD
		got, err := m.Predict(arch.Name, n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want)/want > 1e-6 {
			t.Errorf("n=%v: predicted %v, want %v", n, got, want)
		}
	}
}

// MaxClients must invert Predict: the goal holds at the reported
// capacity and breaks just past it.
func TestMaxClientsInvertsPredict(t *testing.T) {
	arch := testArch()
	pops := []int{5, 12, 20, 31, 44, 58, 71, 85, 92, 100}
	samples := syntheticSamples(arch, 0.080, 2.5, pops)
	m, err := Fit(samples, []workload.ServerArch{arch}, workload.CaseStudyDemands(), workload.ThinkTimeMean,
		FitConfig{Degree: 2, Lambda: 1e-9, Target: "rt"})
	if err != nil {
		t.Fatal(err)
	}
	for _, goal := range []float64{0.5, 1.0, 5.0} {
		capN, err := m.MaxClients(arch.Name, goal)
		if err != nil {
			t.Fatal(err)
		}
		if capN < 1 {
			t.Fatalf("goal %v: capacity %v", goal, capN)
		}
		if rt, _ := m.Predict(arch.Name, capN); rt > goal {
			t.Errorf("goal %v: rt %v at reported capacity %v", goal, rt, capN)
		}
		if rt, _ := m.Predict(arch.Name, capN+1); rt <= goal && capN < 2*100 {
			t.Errorf("goal %v: capacity %v not maximal (rt %v at +1)", goal, capN, rt)
		}
	}
}

// The k-NN fallback must return the exact target on an exact feature
// match and stay within the sample range between neighbours.
func TestKNNFallback(t *testing.T) {
	arch := testArch()
	samples := []Sample{
		{Arch: arch.Name, Clients: 10, MeanRT: 0.1},
		{Arch: arch.Name, Clients: 20, MeanRT: 0.2},
		{Arch: arch.Name, Clients: 30, MeanRT: 0.3},
		{Arch: arch.Name, Clients: 40, MeanRT: 0.4},
		{Arch: arch.Name, Clients: 50, MeanRT: 0.5},
		{Arch: arch.Name, Clients: 60, MeanRT: 0.6},
		{Arch: arch.Name, Clients: 70, MeanRT: 0.7},
		{Arch: arch.Name, Clients: 80, MeanRT: 0.8},
	}
	m, err := Fit(samples, []workload.ServerArch{arch}, workload.CaseStudyDemands(), workload.ThinkTimeMean, FitConfig{Degree: 2, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	af := m.archs[arch.Name]
	raw := encode(af.traits, 30, 0, m.cfg.Degree, nil)
	for j := range raw {
		raw[j] = (raw[j] - af.mean[j]) / af.scale[j]
	}
	if got := knnPredict(af, raw, 3); got != 0.3 {
		t.Errorf("exact-match k-NN = %v, want 0.3", got)
	}
	// Past the trained range the model extrapolates via the k-NN edge
	// value scaled by population — monotone increasing.
	prev := 0.0
	for _, n := range []float64{90, 120, 150} {
		rt, err := m.Predict(arch.Name, n)
		if err != nil {
			t.Fatal(err)
		}
		if rt <= prev {
			t.Errorf("extrapolation not monotone: rt(%v) = %v after %v", n, rt, prev)
		}
		prev = rt
	}
}

// Simulator-backed training must be bit-identical at any worker count:
// the fitted weights are compared exactly, not within tolerance.
func TestTrainDeterministicAcrossWorkers(t *testing.T) {
	cfg := TrainConfig{
		Archs:         []workload.ServerArch{testArch()},
		SamplesPerMix: 8,
		Seed:          41,
		Opt:           trade.MeasureOptions{WarmUp: 2, Duration: 6, Workers: 1},
		Fit:           FitConfig{Degree: 2},
	}
	serial, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Opt.Workers = runtime.NumCPU()
	par, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws, wp := serial.Weights("TestServ"), par.Weights("TestServ")
	if len(ws) == 0 || len(ws) != len(wp) {
		t.Fatalf("weight vectors %d vs %d", len(ws), len(wp))
	}
	for i := range ws {
		if ws[i] != wp[i] {
			t.Errorf("weight %d differs across worker counts: %v vs %v", i, ws[i], wp[i])
		}
	}
	if serial.Stats.Samples != par.Stats.Samples || serial.Stats.SimSeconds != par.Stats.SimSeconds {
		t.Errorf("training stats differ: %+v vs %+v", serial.Stats, par.Stats)
	}
	// And a fresh run with the same seed reproduces the same model.
	again, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wa := again.Weights("TestServ")
	for i := range ws {
		if ws[i] != wa[i] {
			t.Errorf("weight %d not reproducible across runs: %v vs %v", i, ws[i], wa[i])
		}
	}
}

// K-fold must report a small error for clean synthetic data and
// reject degenerate fold counts.
func TestKFoldReporting(t *testing.T) {
	arch := testArch()
	var pops []int
	for n := 5; n <= 120; n += 5 {
		pops = append(pops, n)
	}
	samples := syntheticSamples(arch, 0.080, 2.5, pops)
	cv, err := KFold(samples, 4, []workload.ServerArch{arch}, workload.CaseStudyDemands(), workload.ThinkTimeMean,
		FitConfig{Degree: 2, Lambda: 1e-9, Target: "rt"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cv.Folds) != 4 {
		t.Fatalf("%d folds reported, want 4", len(cv.Folds))
	}
	held := 0
	for _, f := range cv.Folds {
		held += f.Held
	}
	if held != len(samples) {
		t.Errorf("folds held %d samples in total, want %d", held, len(samples))
	}
	// Not exactly zero: the fold holding out the largest population
	// forces its model past the trained range, where the deliberate
	// k-NN extrapolation takes over.
	if cv.MeanMAPEPct > 0.5 {
		t.Errorf("linear data cross-validated MAPE %v%%, want ≈ 0", cv.MeanMAPEPct)
	}
	if cv.MaxMAPEPct < cv.MeanMAPEPct {
		t.Errorf("max MAPE %v below mean %v", cv.MaxMAPEPct, cv.MeanMAPEPct)
	}
	if _, err := KFold(samples, 1, []workload.ServerArch{arch}, workload.CaseStudyDemands(), workload.ThinkTimeMean, FitConfig{}); err == nil {
		t.Error("k = 1 accepted")
	}
}

// Fit must reject malformed inputs loudly.
func TestFitValidation(t *testing.T) {
	arch := testArch()
	if _, err := Fit(nil, []workload.ServerArch{arch}, workload.CaseStudyDemands(), workload.ThinkTimeMean, FitConfig{}); err == nil {
		t.Error("empty sample set accepted")
	}
	few := syntheticSamples(arch, 0.1, 1, []int{5, 10, 15})
	if _, err := Fit(few, []workload.ServerArch{arch}, workload.CaseStudyDemands(), workload.ThinkTimeMean, FitConfig{Degree: 3}); err == nil {
		t.Error("underdetermined fit accepted")
	}
	bad := []Sample{{Arch: arch.Name, Clients: 0, MeanRT: 0.1}}
	if _, err := Fit(bad, []workload.ServerArch{arch}, workload.CaseStudyDemands(), workload.ThinkTimeMean, FitConfig{}); err == nil {
		t.Error("non-positive population accepted")
	}
	unknown := syntheticSamples(workload.ServerArch{Name: "Ghost", Speed: 1, MPL: 1, MaxThroughputTypical: 1}, 0.1, 1,
		[]int{5, 10, 15, 20, 25, 30, 35, 40})
	if _, err := Fit(unknown, []workload.ServerArch{arch}, workload.CaseStudyDemands(), workload.ThinkTimeMean, FitConfig{}); err == nil {
		t.Error("unknown architecture accepted")
	}
	if err := (FitConfig{Degree: 9}).Validate(); err == nil {
		t.Error("degree 9 accepted")
	}
	if err := (FitConfig{Lambda: -1}).Validate(); err == nil {
		t.Error("negative lambda accepted")
	}
	if err := (FitConfig{Target: "sqrt"}).Validate(); err == nil {
		t.Error("unknown target accepted")
	}
}

// The default log-response-time target must exactly recover data that
// is log-linear in the load feature — the regime the raw-seconds fit
// cannot represent — and always predict positive times.
func TestLogTargetRecoversExponential(t *testing.T) {
	arch := testArch()
	demands := workload.CaseStudyDemands()
	appD := demands[workload.Browse].AppServerTime / arch.Speed
	const a, b = -5.0, 1.9
	pops := []int{5, 12, 20, 31, 44, 58, 71, 85, 92, 100}
	samples := make([]Sample, 0, len(pops))
	for _, n := range pops {
		samples = append(samples, Sample{
			Arch:    arch.Name,
			Clients: n,
			MeanRT:  math.Exp(a + b*float64(n)*appD),
		})
	}
	m, err := Fit(samples, []workload.ServerArch{arch}, demands, workload.ThinkTimeMean,
		FitConfig{Degree: 3, Lambda: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []float64{5, 17, 26, 50, 63, 88, 100} {
		want := math.Exp(a + b*n*appD)
		got, err := m.Predict(arch.Name, n)
		if err != nil {
			t.Fatal(err)
		}
		if got <= 0 {
			t.Fatalf("n=%v: non-positive prediction %v", n, got)
		}
		if math.Abs(got-want)/want > 1e-6 {
			t.Errorf("n=%v: predicted %v, want %v", n, got, want)
		}
	}
}
