package regress

import (
	"context"
	"errors"
	"fmt"
	"time"

	"perfpred/internal/parallel"
	"perfpred/internal/sim"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// TrainConfig describes a simulator-backed training run.
type TrainConfig struct {
	// Archs are the architectures to train models for.
	Archs []workload.ServerArch
	// BuyFracs are the mixes sampled per architecture (nil = typical
	// all-browse workload only, i.e. []float64{0}).
	BuyFracs []float64
	// SamplesPerMix is how many populations are drawn per
	// (architecture, mix) cell (default 8).
	SamplesPerMix int
	// Seed drives the population draws and every measurement run;
	// equal seeds give bit-identical training sets and fits.
	Seed int64
	// MaxPopFactor scales the top of the sampled population range
	// relative to the architecture's saturation population
	// Xmax × think (default 1.6, comfortably past the knee).
	MaxPopFactor float64
	// Opt tunes the underlying simulator measurements. Opt.Workers
	// bounds measurement concurrency only — fits are bit-identical at
	// any worker count.
	Opt trade.MeasureOptions
	// Fit tunes the regression itself.
	Fit FitConfig
}

func (c TrainConfig) withDefaults() TrainConfig {
	if len(c.BuyFracs) == 0 {
		c.BuyFracs = []float64{0}
	}
	if c.SamplesPerMix == 0 {
		c.SamplesPerMix = 8
	}
	if c.MaxPopFactor == 0 {
		c.MaxPopFactor = 1.6
	}
	return c
}

// drawPopulations picks SamplesPerMix distinct populations for one
// (architecture, mix) cell: the two range endpoints plus seeded
// uniform draws in between, sorted ascending. All draws happen before
// any simulation starts, from a stream split deterministically per
// cell, so the training grid is a pure function of the config.
func drawPopulations(arch workload.ServerArch, cell uint64, cfg TrainConfig) []int {
	sat := arch.MaxThroughputTypical * workload.ThinkTimeMean
	maxPop := int(sat * cfg.MaxPopFactor)
	if maxPop < cfg.SamplesPerMix+2 {
		maxPop = cfg.SamplesPerMix + 2
	}
	minPop := maxPop / 50
	if minPop < 1 {
		minPop = 1
	}
	rng := sim.NewStream(sim.SplitSeed(cfg.Seed, cell))
	seen := map[int]bool{minPop: true, maxPop: true}
	pops := []int{minPop, maxPop}
	for len(pops) < cfg.SamplesPerMix {
		p := minPop + int(rng.Float64()*float64(maxPop-minPop))
		if p < 1 || seen[p] {
			continue
		}
		seen[p] = true
		pops = append(pops, p)
	}
	// Ascending order fixes the sample order the fit sees.
	for i := 1; i < len(pops); i++ {
		for j := i; j > 0 && pops[j] < pops[j-1]; j-- {
			pops[j], pops[j-1] = pops[j-1], pops[j]
		}
	}
	return pops
}

// Train measures a seeded grid of simulator runs and fits the model.
// The startup cost (simulated seconds, wall seconds, sample count) is
// recorded in Model.Stats — the number the four-family comparison
// holds against hybrid's calibration runs.
func Train(cfg TrainConfig) (*Model, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Archs) == 0 {
		return nil, errors.New("regress: no architectures to train")
	}
	for _, f := range cfg.BuyFracs {
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("regress: buy fraction %v outside [0,1]", f)
		}
	}
	start := time.Now()

	// Phase 1 (serial, seeded): lay out the full sample grid.
	type spec struct {
		arch    workload.ServerArch
		buyFrac float64
		clients int
	}
	var specs []spec
	cell := uint64(0)
	for _, arch := range cfg.Archs {
		for _, bf := range cfg.BuyFracs {
			for _, n := range drawPopulations(arch, cell, cfg) {
				specs = append(specs, spec{arch: arch, buyFrac: bf, clients: n})
			}
			cell++
		}
	}

	// Phase 2 (parallel): measure each grid point in its own seeded
	// run. Each cell's seed depends only on its grid index, so the
	// measurements are bit-identical at any worker count.
	opt := cfg.Opt
	results, err := parallel.Map(context.Background(), cfg.Opt.Workers, len(specs),
		func(_ context.Context, i int) (float64, error) {
			sp := specs[i]
			o := opt
			o.Seed = sim.SplitSeed(cfg.Seed, uint64(1_000_003+i))
			var load workload.Workload
			if sp.buyFrac <= 0 {
				load = workload.TypicalWorkload(sp.clients)
			} else {
				load = workload.MixedWorkload(sp.clients, sp.buyFrac)
			}
			res, err := trade.Measure(sp.arch, load, o)
			if err != nil {
				return 0, err
			}
			return res.MeanRT, nil
		})
	if err != nil {
		return nil, err
	}

	// Phase 3 (serial, fixed order): assemble samples and fit.
	samples := make([]Sample, len(specs))
	for i, sp := range specs {
		samples[i] = Sample{Arch: sp.arch.Name, Clients: sp.clients, BuyFrac: sp.buyFrac, MeanRT: results[i]}
	}
	m, err := Fit(samples, cfg.Archs, workload.CaseStudyDemands(), workload.ThinkTimeMean, cfg.Fit)
	if err != nil {
		return nil, err
	}
	m.QueryBuyFrac = cfg.BuyFracs[0]
	// Simulated seconds per sample mirror trade's measurement defaults
	// (60 s warm-up, 240 s horizon) when the options leave them zero.
	warm, dur := cfg.Opt.WarmUp, cfg.Opt.Duration
	if warm == 0 {
		warm = 60
	}
	if dur == 0 {
		dur = 240
	}
	m.Stats = TrainStats{
		Samples:     len(samples),
		SimSeconds:  float64(len(samples)) * (warm + dur),
		WallSeconds: time.Since(start).Seconds(),
	}
	return m, nil
}
