// Package regress implements the fourth predictor family: black-box
// regression on workload features, as Witt et al. (arXiv:1805.11877)
// survey for distributed workloads. Where the historical method fits
// an exponential/linear pair to one architecture's response-time curve
// and the layered method solves a queueing model, the regression
// family treats the system as opaque: it encodes each observation as a
// fixed-order feature vector (population, mix shares, think time,
// per-class demands scaled by architecture speed), fits a polynomial
// ridge model by closed-form normal equations, and falls back to
// inverse-distance-weighted k-NN where the polynomial extrapolates.
//
// Training data comes from `trade` simulator runs (Train) or from any
// externally measured samples (Fit) — e.g. the obs layer's response
// time aggregates. Training is deterministic: the feature order is
// fixed, sample populations are drawn from seeded streams before any
// parallelism starts, measurements fan out over workers with one
// seeded run per sample, and the fit itself is a serial pass in fixed
// order — so fits are bit-reproducible at any worker count.
package regress

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"perfpred/internal/workload"
)

// Sample is one training observation: a workload point and the mean
// response time measured there.
type Sample struct {
	// Arch names the application-server architecture measured.
	Arch string
	// Clients is the closed population.
	Clients int
	// BuyFrac is the buy share of the mix (0 = typical all-browse).
	BuyFrac float64
	// MeanRT is the measured mean response time, seconds.
	MeanRT float64
}

// FitConfig tunes the regression fit.
type FitConfig struct {
	// Degree is the polynomial degree on the load feature (default 3).
	Degree int
	// Lambda is the ridge penalty on non-intercept weights (default
	// 1e-6; 0 is permitted and falls back to ordinary least squares,
	// which the normal equations solve identically).
	Lambda float64
	// K is the neighbour count for the k-NN fallback (default 3; 0
	// disables the fallback entirely).
	K int
	// Target selects the regression target: "logrt" (default) fits
	// log response time — positivity comes for free and least squares
	// then minimises relative error, which keeps the fit honest on
	// both sides of the saturation knee where response times span
	// orders of magnitude — while "rt" fits the raw seconds (exact
	// recovery of polynomial truth curves).
	Target string
}

func (c FitConfig) withDefaults() FitConfig {
	if c.Degree == 0 {
		c.Degree = 3
	}
	if c.Lambda == 0 {
		c.Lambda = 1e-6
	}
	if c.K == 0 {
		c.K = 3
	}
	if c.Target == "" {
		c.Target = "logrt"
	}
	return c
}

// logTarget reports whether the fit runs in log-response-time space.
func (c FitConfig) logTarget() bool { return c.Target != "rt" }

// Validate reports the first structural problem.
func (c FitConfig) Validate() error {
	c = c.withDefaults()
	switch {
	case c.Degree < 1 || c.Degree > 6:
		return fmt.Errorf("regress: degree %d outside [1,6]", c.Degree)
	case c.Lambda < 0:
		return fmt.Errorf("regress: negative ridge penalty %v", c.Lambda)
	case c.K < 0:
		return fmt.Errorf("regress: negative neighbour count %d", c.K)
	case c.Target != "logrt" && c.Target != "rt":
		return fmt.Errorf("regress: unknown target %q (want logrt or rt)", c.Target)
	}
	return nil
}

// archTraits is the per-architecture demand/speed context features are
// computed against.
type archTraits struct {
	speed     float64
	appBrowse float64 // browse app-server demand on this arch, seconds
	appBuy    float64
	dbBrowse  float64 // total DB seconds per browse request
	dbBuy     float64
	think     float64
}

func traitsFor(arch workload.ServerArch, demands map[workload.RequestType]workload.Demand, think float64) archTraits {
	br, bu := demands[workload.Browse], demands[workload.Buy]
	return archTraits{
		speed:     arch.Speed,
		appBrowse: br.AppServerTime / arch.Speed,
		appBuy:    bu.AppServerTime / arch.Speed,
		dbBrowse:  br.TotalDBTime(),
		dbBuy:     bu.TotalDBTime(),
		think:     think,
	}
}

// encode builds the fixed-order feature vector for a query point. The
// order is part of the determinism contract and of the on-disk/table
// documentation — do not reorder:
//
//	[0] 1 (intercept)
//	[1..d]  x, x², …, x^d where x = clients × mix-weighted app demand
//	        (architecture-scaled offered app-server work, seconds)
//	[d+1]   clients × mix-weighted total DB time (offered DB work)
//	[d+2]   buy fraction of the mix
//	[d+3]   mean think time, seconds
func encode(tr archTraits, clients float64, buyFrac float64, degree int, dst []float64) []float64 {
	appD := buyFrac*tr.appBuy + (1-buyFrac)*tr.appBrowse
	dbD := buyFrac*tr.dbBuy + (1-buyFrac)*tr.dbBrowse
	x := clients * appD
	dst = dst[:0]
	dst = append(dst, 1)
	p := 1.0
	for i := 0; i < degree; i++ {
		p *= x
		dst = append(dst, p)
	}
	dst = append(dst, clients*dbD, buyFrac, tr.think)
	return dst
}

// featureCount returns the encoded vector length for a degree.
func featureCount(degree int) int { return 1 + degree + 3 }

// archFit is one architecture's fitted model plus the retained
// training set for the k-NN fallback.
type archFit struct {
	traits  archTraits
	beta    []float64 // ridge weights over standardized features
	mean    []float64 // feature standardization (index 0 untouched)
	scale   []float64
	samples []Sample  // fixed training order, retained for k-NN
	feats   [][]float64
	maxPop  float64 // largest trained population
	maxRT   float64 // largest trained response time
}

// Model is a fitted regression predictor family over one or more
// architectures. It satisfies the resource manager's Predictor
// interface, so it drops into Algorithm 1, the evaluation harness and
// the serving layer exactly where HYDRA/LQN/hybrid models do.
type Model struct {
	cfg   FitConfig
	archs map[string]*archFit
	// QueryBuyFrac is the mix the rm-facing Predict/MaxClients answer
	// for (the Predictor interface carries no mix). Defaults to the
	// first trained mix.
	QueryBuyFrac float64
	// Stats records what training cost — the startup-cost axis of the
	// four-family comparison.
	Stats TrainStats
}

// TrainStats accounts for what it cost to bring the model up.
type TrainStats struct {
	// Samples is the number of training observations.
	Samples int
	// SimSeconds is the total simulated seconds of measurement the
	// training set consumed (warm-up + measured horizon per sample) —
	// the startup-cost currency shared with hybrid's calibration runs.
	SimSeconds float64
	// WallSeconds is the wall-clock spent measuring + fitting.
	WallSeconds float64
}

// Fit builds a Model from externally measured samples. Samples are
// grouped by architecture; each architecture needs at least
// featureCount(degree)+1 observations. The fit is a serial pass in the
// given sample order — callers wanting bit-reproducibility must
// present samples in a deterministic order (Train does).
func Fit(samples []Sample, archs []workload.ServerArch, demands map[workload.RequestType]workload.Demand, think float64, cfg FitConfig) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if len(samples) == 0 {
		return nil, errors.New("regress: no training samples")
	}
	byArch := make(map[string][]Sample)
	for _, s := range samples {
		if s.Clients <= 0 || s.MeanRT <= 0 || s.BuyFrac < 0 || s.BuyFrac > 1 {
			return nil, fmt.Errorf("regress: bad sample %+v", s)
		}
		byArch[s.Arch] = append(byArch[s.Arch], s)
	}
	archByName := make(map[string]workload.ServerArch, len(archs))
	for _, a := range archs {
		archByName[a.Name] = a
	}
	m := &Model{cfg: cfg, archs: make(map[string]*archFit, len(byArch)), QueryBuyFrac: samples[0].BuyFrac}
	// Fit architectures in sorted-name order so float accumulation
	// order never depends on map iteration.
	names := make([]string, 0, len(byArch))
	for name := range byArch {
		names = append(names, name)
	}
	sort.Strings(names)
	nf := featureCount(cfg.Degree)
	for _, name := range names {
		arch, ok := archByName[name]
		if !ok {
			return nil, fmt.Errorf("regress: samples for unknown architecture %q", name)
		}
		group := byArch[name]
		if len(group) < nf+1 {
			return nil, fmt.Errorf("regress: architecture %q has %d samples, need ≥ %d for degree %d",
				name, len(group), nf+1, cfg.Degree)
		}
		af, err := fitArch(traitsFor(arch, demands, think), group, cfg)
		if err != nil {
			return nil, fmt.Errorf("regress: %q: %w", name, err)
		}
		m.archs[name] = af
	}
	m.Stats.Samples = len(samples)
	return m, nil
}

// fitArch standardizes features and solves the ridge normal equations
// for one architecture.
func fitArch(tr archTraits, group []Sample, cfg FitConfig) (*archFit, error) {
	nf := featureCount(cfg.Degree)
	af := &archFit{traits: tr, samples: group}
	af.feats = make([][]float64, len(group))
	for i, s := range group {
		af.feats[i] = encode(tr, float64(s.Clients), s.BuyFrac, cfg.Degree, make([]float64, 0, nf))
		if float64(s.Clients) > af.maxPop {
			af.maxPop = float64(s.Clients)
		}
		if s.MeanRT > af.maxRT {
			af.maxRT = s.MeanRT
		}
	}
	// Standardize non-intercept columns: ridge penalties only make
	// sense on comparable scales, and the k-NN metric needs them too.
	af.mean = make([]float64, nf)
	af.scale = make([]float64, nf)
	af.scale[0] = 1
	for j := 1; j < nf; j++ {
		var sum float64
		for _, f := range af.feats {
			sum += f[j]
		}
		mu := sum / float64(len(af.feats))
		var ss float64
		for _, f := range af.feats {
			d := f[j] - mu
			ss += d * d
		}
		sd := math.Sqrt(ss / float64(len(af.feats)))
		if sd < 1e-12 {
			sd = 1 // constant column: center only
		}
		af.mean[j], af.scale[j] = mu, sd
		for _, f := range af.feats {
			f[j] = (f[j] - mu) / sd
		}
	}
	y := make([]float64, len(group))
	for i, s := range group {
		if cfg.logTarget() {
			y[i] = math.Log(s.MeanRT)
		} else {
			y[i] = s.MeanRT
		}
	}
	beta, err := ridgeSolve(af.feats, y, cfg.Lambda)
	if err != nil {
		return nil, err
	}
	af.beta = beta
	return af, nil
}

// predictArch evaluates the ridge polynomial at a query, falling back
// to k-NN when the polynomial is untrustworthy: non-finite or
// non-positive output, or a query population beyond the trained range
// (polynomials explode off the grid; the nearest neighbours merely
// flatten, which is the safer failure for capacity search).
func (m *Model) predictArch(af *archFit, clients, buyFrac float64) float64 {
	raw := encode(af.traits, clients, buyFrac, m.cfg.Degree, make([]float64, 0, len(af.mean)))
	std := make([]float64, len(raw))
	for j := range raw {
		std[j] = (raw[j] - af.mean[j]) / af.scale[j]
	}
	var rt float64
	for j, b := range af.beta {
		rt += b * std[j]
	}
	if m.cfg.logTarget() {
		rt = math.Exp(rt)
	}
	if clients <= af.maxPop && rt > 0 && !math.IsNaN(rt) && !math.IsInf(rt, 0) {
		return rt
	}
	if m.cfg.K <= 0 {
		// No fallback: clamp into the trained response range.
		if rt <= 0 || math.IsNaN(rt) || math.IsInf(rt, 0) {
			return af.maxRT
		}
		return rt
	}
	knnRT := knnPredict(af, std, m.cfg.K)
	if clients > af.maxPop {
		// Beyond the grid the neighbour estimate flattens at the edge
		// of the data. Response time past saturation grows linearly in
		// the population (R ≈ N/Xmax − Z), so extend the k-NN edge
		// value proportionally — a deliberately rough black-box
		// extrapolation that at least preserves monotonicity for the
		// capacity search.
		return knnRT * (clients / af.maxPop)
	}
	return knnRT
}

// Predict returns the model's mean response time (seconds) for the
// architecture at n clients under the model's QueryBuyFrac mix. It is
// the rm.Predictor contract.
func (m *Model) Predict(arch string, n float64) (float64, error) {
	af, ok := m.archs[arch]
	if !ok {
		return 0, fmt.Errorf("regress: no model for architecture %q", arch)
	}
	if n < 1 {
		n = 1
	}
	return m.predictArch(af, n, m.QueryBuyFrac), nil
}

// Archs lists the trained architectures in sorted order.
func (m *Model) Archs() []string {
	names := make([]string, 0, len(m.archs))
	for name := range m.archs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TrainedRange returns the population range the architecture was
// trained on (0,0 for unknown architectures).
func (m *Model) TrainedRange(arch string) (minPop, maxPop float64) {
	af, ok := m.archs[arch]
	if !ok {
		return 0, 0
	}
	minPop = math.Inf(1)
	for _, s := range af.samples {
		if p := float64(s.Clients); p < minPop {
			minPop = p
		}
	}
	return minPop, af.maxPop
}

// Weights returns a copy of the fitted (standardized-feature) weights
// for the architecture — the bit-reproducibility witnesses the bench
// snapshot compares across worker counts.
func (m *Model) Weights(arch string) []float64 {
	af, ok := m.archs[arch]
	if !ok {
		return nil
	}
	return append([]float64(nil), af.beta...)
}
