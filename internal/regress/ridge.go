package regress

import (
	"errors"
	"math"
)

// ridgeSolve computes the closed-form ridge estimate
// β = (XᵀX + λI)⁻¹ Xᵀy with no penalty on the intercept (column 0).
// The normal equations are accumulated and eliminated serially in
// fixed index order, so the result is a pure function of (X, y, λ) —
// bit-identical however the samples were measured.
func ridgeSolve(X [][]float64, y []float64, lambda float64) ([]float64, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, errors.New("regress: shape mismatch in ridge solve")
	}
	nf := len(X[0])
	// A = XᵀX + λI (skip the intercept's diagonal), b = Xᵀy.
	A := make([][]float64, nf)
	b := make([]float64, nf)
	for j := range A {
		A[j] = make([]float64, nf)
	}
	for i, row := range X {
		if len(row) != nf {
			return nil, errors.New("regress: ragged feature matrix")
		}
		for j := 0; j < nf; j++ {
			for k := j; k < nf; k++ {
				A[j][k] += row[j] * row[k]
			}
			b[j] += row[j] * y[i]
		}
	}
	for j := 0; j < nf; j++ {
		for k := 0; k < j; k++ {
			A[j][k] = A[k][j]
		}
		if j > 0 {
			A[j][j] += lambda
		}
	}
	return gaussSolve(A, b)
}

// gaussSolve solves A·x = b in place by Gaussian elimination with
// partial pivoting. Pivot choice is deterministic: the largest
// absolute value, ties to the smallest row index.
func gaussSolve(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(A[pivot][col]) < 1e-14 {
			return nil, errors.New("regress: singular normal equations (too few distinct samples?)")
		}
		A[col], A[pivot] = A[pivot], A[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / A[col][col]
		for r := col + 1; r < n; r++ {
			f := A[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= A[r][c] * x[c]
		}
		x[r] = sum / A[r][r]
	}
	return x, nil
}
