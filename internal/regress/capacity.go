package regress

import (
	"fmt"
	"math"

	"perfpred/internal/rm"
)

// MaxClients returns the largest population whose predicted mean
// response time stays within goalRT, completing the rm.Predictor
// contract. It reuses the resource manager's shared doubling +
// bisection search; the search is capped at twice the trained
// population range, because a black-box fit has nothing trustworthy to
// say far off its grid (the k-NN extrapolation keeps the curve
// monotone out to the cap, so the clamped limit is still probed and
// verified, never assumed).
func (m *Model) MaxClients(arch string, goalRT float64) (float64, error) {
	af, ok := m.archs[arch]
	if !ok {
		return 0, fmt.Errorf("regress: no model for architecture %q", arch)
	}
	limit := int(math.Ceil(2 * af.maxPop))
	if limit < 1 {
		limit = 1
	}
	n, err := rm.CapacitySearch(func(n float64) (float64, error) {
		return m.predictArch(af, n, m.QueryBuyFrac), nil
	}, goalRT, limit)
	return float64(n), err
}
