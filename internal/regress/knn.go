package regress

import "sort"

// knnPredict returns the inverse-distance-weighted mean response time
// of the k nearest training samples in standardized feature space.
// Ordering is fully deterministic: distances tie-break on the training
// sample's index, and the weighted sum is accumulated in that sorted
// order. An exact feature match returns that sample's target directly.
func knnPredict(af *archFit, query []float64, k int) float64 {
	type cand struct {
		idx  int
		dist float64
	}
	cands := make([]cand, len(af.feats))
	for i, f := range af.feats {
		var d2 float64
		for j := range f {
			d := f[j] - query[j]
			d2 += d * d
		}
		cands[i] = cand{idx: i, dist: d2}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].dist != cands[b].dist {
			return cands[a].dist < cands[b].dist
		}
		return cands[a].idx < cands[b].idx
	})
	if k > len(cands) {
		k = len(cands)
	}
	if cands[0].dist == 0 {
		return af.samples[cands[0].idx].MeanRT
	}
	var num, den float64
	for _, c := range cands[:k] {
		w := 1 / c.dist
		num += w * af.samples[c.idx].MeanRT
		den += w
	}
	return num / den
}
