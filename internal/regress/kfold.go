package regress

import (
	"errors"
	"fmt"
	"math"

	"perfpred/internal/workload"
)

// FoldReport is one fold's held-out error.
type FoldReport struct {
	Fold int
	// Held is the number of held-out samples scored.
	Held int
	// MAPEPct is the mean absolute percentage error on the held-out
	// samples.
	MAPEPct float64
}

// CrossValidation is the k-fold error report.
type CrossValidation struct {
	Folds []FoldReport
	// MeanMAPEPct averages the folds' MAPE, weighting each held-out
	// sample equally.
	MeanMAPEPct float64
	// MaxMAPEPct is the worst fold.
	MaxMAPEPct float64
}

// KFold runs deterministic k-fold cross-validation: sample i belongs
// to fold i mod k (the training order is already a seeded shuffle of
// the grid, so contiguous striding is an unbiased split), each fold's
// model is fitted on the remainder and scored on the held-out part.
// It reports per-fold and aggregate MAPE — the error bar the bench
// snapshot attaches to the regression family's accuracy row.
func KFold(samples []Sample, k int, archs []workload.ServerArch, demands map[workload.RequestType]workload.Demand, think float64, cfg FitConfig) (*CrossValidation, error) {
	if k < 2 {
		return nil, fmt.Errorf("regress: k-fold needs k ≥ 2, got %d", k)
	}
	if len(samples) < k {
		return nil, errors.New("regress: fewer samples than folds")
	}
	cv := &CrossValidation{}
	var sumErr float64
	var scored int
	for fold := 0; fold < k; fold++ {
		var train, hold []Sample
		for i, s := range samples {
			if i%k == fold {
				hold = append(hold, s)
			} else {
				train = append(train, s)
			}
		}
		m, err := Fit(train, archs, demands, think, cfg)
		if err != nil {
			return nil, fmt.Errorf("regress: fold %d: %w", fold, err)
		}
		var foldErr float64
		var foldN int
		for _, s := range hold {
			af, ok := m.archs[s.Arch]
			if !ok {
				// The fold removed every sample of this architecture;
				// skip rather than score a model that was never fit.
				continue
			}
			pred := m.predictArch(af, float64(s.Clients), s.BuyFrac)
			foldErr += math.Abs(pred-s.MeanRT) / s.MeanRT
			foldN++
		}
		if foldN == 0 {
			continue
		}
		mape := 100 * foldErr / float64(foldN)
		cv.Folds = append(cv.Folds, FoldReport{Fold: fold, Held: foldN, MAPEPct: mape})
		if mape > cv.MaxMAPEPct {
			cv.MaxMAPEPct = mape
		}
		sumErr += foldErr
		scored += foldN
	}
	if scored == 0 {
		return nil, errors.New("regress: no fold produced a scoreable split")
	}
	cv.MeanMAPEPct = 100 * sumErr / float64(scored)
	return cv, nil
}
