package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestInterarrivalCV2Deterministic(t *testing.T) {
	times := make([]float64, 100)
	for i := range times {
		times[i] = float64(i) * 0.5
	}
	if cv2 := InterarrivalCV2(times); math.Abs(cv2) > 1e-12 {
		t.Fatalf("deterministic gaps: CV² = %v, want 0", cv2)
	}
}

func TestInterarrivalCV2Poisson(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	times := make([]float64, 0, 20000)
	now := 0.0
	for i := 0; i < 20000; i++ {
		now += r.ExpFloat64()
		times = append(times, now)
	}
	cv2 := InterarrivalCV2(times)
	if cv2 < 0.9 || cv2 > 1.1 {
		t.Fatalf("Poisson gaps: CV² = %v, want ≈ 1", cv2)
	}
}

func TestInterarrivalCV2Bursty(t *testing.T) {
	// On/off bursts: 50 tight arrivals then a long silence. The
	// estimator must report strong over-dispersion.
	var times []float64
	now := 0.0
	for burst := 0; burst < 40; burst++ {
		for i := 0; i < 50; i++ {
			now += 0.01
			times = append(times, now)
		}
		now += 20
	}
	if cv2 := InterarrivalCV2(times); cv2 < 2 {
		t.Fatalf("bursty gaps: CV² = %v, want ≫ 1", cv2)
	}
}

func TestInterarrivalCV2Degenerate(t *testing.T) {
	if !math.IsNaN(InterarrivalCV2(nil)) {
		t.Fatal("empty times must give NaN")
	}
	if !math.IsNaN(InterarrivalCV2([]float64{1, 2})) {
		t.Fatal("a single gap must give NaN")
	}
	if !math.IsNaN(InterarrivalCV2([]float64{1, 1, 1})) {
		t.Fatal("zero-mean gaps must give NaN")
	}
}

func TestIndexOfDispersionPoisson(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	times := make([]float64, 0, 50000)
	now := 0.0
	for i := 0; i < 50000; i++ {
		now += r.ExpFloat64() * 0.1 // rate 10/s
		times = append(times, now)
	}
	idc := IndexOfDispersion(times, 5)
	if idc < 0.8 || idc > 1.25 {
		t.Fatalf("Poisson counts: IDC = %v, want ≈ 1", idc)
	}
}

func TestIndexOfDispersionDeterministic(t *testing.T) {
	times := make([]float64, 1000)
	for i := range times {
		times[i] = float64(i) * 0.1
	}
	// Windows of exactly 10 gaps hold identical counts.
	if idc := IndexOfDispersion(times, 1.0); idc > 0.05 {
		t.Fatalf("deterministic counts: IDC = %v, want ≈ 0", idc)
	}
}

func TestIndexOfDispersionBursty(t *testing.T) {
	var times []float64
	now := 0.0
	for burst := 0; burst < 30; burst++ {
		for i := 0; i < 100; i++ {
			now += 0.01
			times = append(times, now)
		}
		now += 10
	}
	if idc := IndexOfDispersion(times, 5); idc < 5 {
		t.Fatalf("bursty counts: IDC = %v, want ≫ 1", idc)
	}
}

// Regression: when the span is an exact multiple of the window, the
// final arrival (and anything tied with it) lands exactly on the last
// window's upper edge. The old strictly-open edge dropped those
// arrivals, so a closing burst was invisible: one arrival per second
// for 20 s plus a 4-arrival batch at exactly t = 20 produced counts
// (5,5,5,5) and IDC = 0. The boundary-inclusive final window sees
// (5,5,5,9) and reports the over-dispersion the stream actually has.
func TestIndexOfDispersionFinalBoundaryInclusive(t *testing.T) {
	var times []float64
	for i := 0; i < 20; i++ {
		times = append(times, float64(i))
	}
	for i := 0; i < 4; i++ {
		times = append(times, 20.0) // ties exactly on the span end
	}
	idc := IndexOfDispersion(times, 5)
	if math.IsNaN(idc) {
		t.Fatal("exact-multiple span must not be NaN")
	}
	// Counts (5,5,5,9): mean 6, sample variance 4 → IDC = 2/3. The old
	// code reported exactly 0.
	if idc < 0.3 {
		t.Fatalf("end-of-span batch invisible: IDC = %v, want ≈ 0.67", idc)
	}
	// Purely deterministic arrivals whose last point sits on the edge:
	// counts (5,5,5,6), IDC small but strictly positive — the old code
	// returned exactly 0 by losing the final arrival.
	times = times[:0]
	for i := 0; i <= 20; i++ {
		times = append(times, float64(i))
	}
	idc = IndexOfDispersion(times, 5)
	if idc <= 0 || idc > 0.1 {
		t.Fatalf("final arrival on span end: IDC = %v, want small positive", idc)
	}
}

func TestIndexOfDispersionDegenerate(t *testing.T) {
	if !math.IsNaN(IndexOfDispersion(nil, 1)) {
		t.Fatal("empty times must give NaN")
	}
	if !math.IsNaN(IndexOfDispersion([]float64{0, 1, 2}, 0)) {
		t.Fatal("non-positive window must give NaN")
	}
	if !math.IsNaN(IndexOfDispersion([]float64{0, 0.1}, 1)) {
		t.Fatal("fewer than two windows must give NaN")
	}
}
