package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func near(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 7
	}
	m, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	near(t, m.Slope, 3, 1e-12, "slope")
	near(t, m.Intercept, 7, 1e-12, "intercept")
	near(t, m.R2, 1, 1e-12, "r2")
}

func TestFitLinearNoisy(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	ys := []float64{1.1, 2.9, 5.2, 6.8, 9.1, 10.9, 13.2, 14.8}
	m, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	near(t, m.Slope, 2, 0.1, "slope")
	near(t, m.Intercept, 1, 0.4, "intercept")
	if m.R2 < 0.99 {
		t.Fatalf("R2 = %v, want >= 0.99", m.R2)
	}
}

func TestFitLinearInvert(t *testing.T) {
	m := LinearModel{Slope: 2, Intercept: -4}
	x, err := m.InvertY(10)
	if err != nil {
		t.Fatal(err)
	}
	near(t, x, 7, 1e-12, "inverted x")
	if _, err := (LinearModel{Slope: 0, Intercept: 1}).InvertY(5); err == nil {
		t.Fatal("expected error inverting horizontal line")
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{2}); err == nil {
		t.Fatal("expected error for single point")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{2}); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
	if _, err := FitLinear([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected error for identical x values")
	}
}

func TestFitExponentialExact(t *testing.T) {
	// mrt = cL * e^(λL*N), the paper's lower equation (1).
	cL, lamL := 84.1, 0.0001 // AppServF row of Table 1
	xs := []float64{100, 500, 1000, 1500, 2000}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = cL * math.Exp(lamL*x)
	}
	m, err := FitExponential(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	near(t, m.Coeff, cL, 1e-9, "cL")
	near(t, m.Rate, lamL, 1e-12, "lambdaL")
}

func TestFitExponentialTwoPoints(t *testing.T) {
	// The paper shows accurate calibration with nldp = 2 data points.
	m, err := FitExponential([]float64{100, 900}, []float64{50, 150})
	if err != nil {
		t.Fatal(err)
	}
	near(t, m.Eval(100), 50, 1e-9, "y(100)")
	near(t, m.Eval(900), 150, 1e-9, "y(900)")
}

func TestFitExponentialRejectsNonPositive(t *testing.T) {
	if _, err := FitExponential([]float64{1, 2}, []float64{1, -1}); err == nil {
		t.Fatal("expected error for non-positive y")
	}
	if _, err := FitExponential([]float64{1, 2}, []float64{0, 1}); err == nil {
		t.Fatal("expected error for zero y")
	}
}

func TestExponentialInvert(t *testing.T) {
	m := ExponentialModel{Coeff: 84.1, Rate: 0.0001}
	// Round trip: number of clients giving a 300ms mean response time.
	x, err := m.InvertY(300)
	if err != nil {
		t.Fatal(err)
	}
	near(t, m.Eval(x), 300, 1e-9, "round trip")
	if _, err := m.InvertY(-5); err == nil {
		t.Fatal("expected error for negative target")
	}
	if _, err := (ExponentialModel{Coeff: 2, Rate: 0}).InvertY(5); err == nil {
		t.Fatal("expected error for zero rate")
	}
}

func TestFitPowerExact(t *testing.T) {
	// λL = C * X^Δ, the paper's relationship-2 equation (4).
	c, d := 3.5, -1.8
	xs := []float64{86, 186, 320}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = c * math.Pow(x, d)
	}
	m, err := FitPower(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	near(t, m.Coeff, c, 1e-9, "C")
	near(t, m.Exp, d, 1e-12, "Δ")
	if !math.IsNaN(m.Eval(-1)) {
		t.Fatal("Eval of negative x should be NaN")
	}
}

func TestFitProportional(t *testing.T) {
	// Throughput = m * clients with the paper's m = 0.14.
	xs := []float64{100, 200, 400, 800}
	ys := []float64{14, 28, 56, 112}
	m, err := FitProportional(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	near(t, m, 0.14, 1e-12, "gradient m")
	if _, err := FitProportional([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for all-zero x")
	}
}

// Property: a linear fit through points generated from any line
// recovers that line, for all finite slopes/intercepts.
func TestFitLinearRecoversLineProperty(t *testing.T) {
	f := func(slope, intercept float64) bool {
		if math.IsNaN(slope) || math.IsInf(slope, 0) || math.Abs(slope) > 1e6 {
			return true
		}
		if math.IsNaN(intercept) || math.IsInf(intercept, 0) || math.Abs(intercept) > 1e6 {
			return true
		}
		xs := []float64{-2, 1, 3, 8, 13}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = slope*x + intercept
		}
		m, err := FitLinear(xs, ys)
		if err != nil {
			return false
		}
		tol := 1e-6 * (1 + math.Abs(slope) + math.Abs(intercept))
		return math.Abs(m.Slope-slope) <= tol && math.Abs(m.Intercept-intercept) <= tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: exponential Eval/InvertY are mutual inverses on the
// positive domain.
func TestExponentialRoundTripProperty(t *testing.T) {
	f := func(coeff, rate, x float64) bool {
		coeff = 1 + math.Mod(math.Abs(coeff), 500)   // (1, 501)
		rate = 1e-5 + math.Mod(math.Abs(rate), 0.01) // small positive
		x = math.Mod(math.Abs(x), 2000)              // client counts
		if math.IsNaN(coeff) || math.IsNaN(rate) || math.IsNaN(x) {
			return true
		}
		m := ExponentialModel{Coeff: coeff, Rate: rate}
		y := m.Eval(x)
		back, err := m.InvertY(y)
		if err != nil {
			return false
		}
		return math.Abs(back-x) < 1e-6*(1+x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
