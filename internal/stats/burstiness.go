package stats

// Interarrival-burstiness estimators for arrival processes. The
// scenario layer's self-check uses them to verify that generated
// traffic carries the variability its spec declares: a Poisson stream
// has squared coefficient of variation ≈ 1 and index of dispersion
// ≈ 1, while a bursty MMPP stream is strictly over-dispersed on both
// measures (CV² > 1 and IDC growing with the window).

import "math"

// InterarrivalCV2 returns the squared coefficient of variation
// (variance over squared mean) of the gaps between consecutive
// arrival times. times must be ascending; fewer than three arrivals
// (two gaps) return NaN. Exponential gaps give ≈ 1, deterministic
// gaps 0, and burstier-than-Poisson processes > 1.
func InterarrivalCV2(times []float64) float64 {
	if len(times) < 3 {
		return math.NaN()
	}
	var acc Accumulator
	for i := 1; i < len(times); i++ {
		acc.Add(times[i] - times[i-1])
	}
	mean := acc.Mean()
	if mean <= 0 {
		return math.NaN()
	}
	sd := acc.StdDev()
	return sd * sd / (mean * mean)
}

// IndexOfDispersion buckets the arrivals into fixed-width windows
// spanning [times[0], times[last]] and returns the variance of the
// per-window counts over their mean (the index of dispersion for
// counts at that window size). A Poisson process gives ≈ 1 at every
// window; modulated (MMPP, diurnal) processes exceed 1 once the
// window passes the modulation timescale. Fewer than two complete
// windows, or a non-positive window, return NaN.
func IndexOfDispersion(times []float64, window float64) float64 {
	if len(times) == 0 || window <= 0 {
		return math.NaN()
	}
	span := times[len(times)-1] - times[0]
	n := int(span / window)
	if n < 2 {
		return math.NaN()
	}
	var acc Accumulator
	start, count := 0, 0
	for w := 0; w < n; w++ {
		hi := times[0] + float64(w+1)*window
		// Windows are half-open [lo, hi) except the last, which closes
		// at its upper edge: when the span is an exact multiple of the
		// window the final arrival lands exactly on hi and a strictly-
		// open edge would drop it (and any batch tied with it), biasing
		// the last count low.
		last := w == n-1
		count = 0
		for start < len(times) && (times[start] < hi || (last && times[start] <= hi)) {
			count++
			start++
		}
		acc.Add(float64(count))
	}
	if acc.Mean() <= 0 {
		return math.NaN()
	}
	sd := acc.StdDev()
	return sd * sd / acc.Mean()
}
