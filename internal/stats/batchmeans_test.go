package stats

import (
	"math"
	"testing"
)

func TestBatchMeansHalfWidth(t *testing.T) {
	var bm BatchMeans
	if !math.IsInf(bm.HalfWidth(0.95), 1) {
		t.Fatal("no batches: half-width should be +Inf")
	}
	bm.Add(3)
	if !math.IsInf(bm.HalfWidth(0.95), 1) {
		t.Fatal("one batch: half-width should be +Inf")
	}
	for _, x := range []float64{1, 2, 4, 5} {
		bm.Add(x)
	}
	// Batches {3,1,2,4,5}: mean 3, sample sd sqrt(2.5), df 4.
	if bm.Count() != 5 || bm.Mean() != 3 {
		t.Fatalf("count=%d mean=%v, want 5 and 3", bm.Count(), bm.Mean())
	}
	want := 2.776 * math.Sqrt(2.5) / math.Sqrt(5)
	if hw := bm.HalfWidth(0.95); math.Abs(hw-want) > 1e-9 {
		t.Errorf("half-width = %v, want %v", hw, want)
	}
	if rel := bm.RelHalfWidth(0.95); math.Abs(rel-want/3) > 1e-9 {
		t.Errorf("relative half-width = %v, want %v", rel, want/3)
	}
	if bm.Converged(0.5, 0.95) {
		t.Error("rel half-width ≈ 0.65 should not satisfy target 0.5")
	}
	if !bm.Converged(0.7, 0.95) {
		t.Error("rel half-width ≈ 0.65 should satisfy target 0.7")
	}
}

func TestBatchMeansZeroMean(t *testing.T) {
	var bm BatchMeans
	bm.Add(1)
	bm.Add(-1)
	if !math.IsInf(bm.RelHalfWidth(0.95), 1) {
		t.Fatal("zero grand mean: relative half-width should be +Inf")
	}
}

func TestBatchMeansNarrowsWithBatches(t *testing.T) {
	var bm BatchMeans
	for i := 0; i < 4; i++ {
		bm.Add(10 + float64(i%2)) // alternating 10, 11
	}
	wide := bm.RelHalfWidth(0.95)
	for i := 0; i < 60; i++ {
		bm.Add(10 + float64(i%2))
	}
	if narrow := bm.RelHalfWidth(0.95); narrow >= wide {
		t.Fatalf("more batches should narrow the interval: %v -> %v", wide, narrow)
	}
}

func TestTQuantile(t *testing.T) {
	cases := []struct {
		level float64
		df    int
		want  float64
	}{
		{0.95, 1, 12.706},
		{0.95, 30, 2.042},
		{0.95, 1000, 1.960}, // beyond the table: normal approximation
		{0.90, 5, 2.015},
		{0.99, 10, 3.169},
		{0.80, 5, 2.571}, // unknown level falls back to 0.95
		{0.95, 0, 12.706}, // df floor
	}
	for _, c := range cases {
		if got := tQuantile(c.level, c.df); got != c.want {
			t.Errorf("tQuantile(%v, %d) = %v, want %v", c.level, c.df, got, c.want)
		}
	}
}
