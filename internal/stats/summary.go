package stats

import (
	"math"
	"sort"
)

// Accumulator collects samples online using Welford's algorithm, so a
// simulation run can stream millions of response-time samples without
// retaining them. The zero value is ready to use.
type Accumulator struct {
	n        int
	mean     float64
	m2       float64
	min, max float64
	sum      float64
}

// Add records one sample.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.sum += x
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// Count returns the number of samples recorded.
func (a *Accumulator) Count() int { return a.n }

// Sum returns the total of all samples.
func (a *Accumulator) Sum() float64 { return a.sum }

// Mean returns the sample mean, or 0 when no samples have been added.
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than
// two samples.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest sample, or 0 when empty.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample, or 0 when empty.
func (a *Accumulator) Max() float64 { return a.max }

// Merge folds the samples of b into a, as if every sample added to b
// had been added to a. It lets per-worker accumulators be combined
// after a parallel simulation run.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	mean := a.mean + d*float64(b.n)/float64(n)
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.mean = mean
	a.sum += b.sum
	a.n = n
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
}

// MeanCI returns the sample mean and the half-width of its normal
// confidence interval at the given confidence level (0.90, 0.95 or
// 0.99; other levels fall back to 0.95). With fewer than two samples
// the half-width is 0. Experiments use it to report accuracy spread
// across replicated seeds.
func (a *Accumulator) MeanCI(level float64) (mean, halfWidth float64) {
	mean = a.Mean()
	if a.n < 2 {
		return mean, 0
	}
	var z float64
	switch level {
	case 0.90:
		z = 1.645
	case 0.99:
		z = 2.576
	default:
		z = 1.960
	}
	return mean, z * a.StdDev() / math.Sqrt(float64(a.n))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0 < p <= 100) of xs using
// linear interpolation between order statistics. It copies and sorts,
// leaving xs unmodified. An empty slice yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
