package stats

import "math"

// RelativeError returns |predicted-actual| / |actual|. When actual is 0
// it returns 0 for an exact prediction and +Inf otherwise, so a
// degenerate measurement cannot silently score as perfect.
func RelativeError(predicted, actual float64) float64 {
	if actual == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(predicted-actual) / math.Abs(actual)
}

// MAPE returns the mean absolute percentage error (0..∞, as a
// fraction, not a percentage) across paired prediction/measurement
// series. Pairs whose actual value is 0 are skipped unless the
// prediction is also non-zero, in which case the result is +Inf.
// Empty or fully-skipped input yields 0.
func MAPE(predicted, actual []float64) float64 {
	n := 0
	var sum float64
	for i := range predicted {
		if i >= len(actual) {
			break
		}
		if actual[i] == 0 && predicted[i] == 0 {
			continue
		}
		sum += RelativeError(predicted[i], actual[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Accuracy returns the paper's predictive-accuracy score as a
// percentage: 100 × (1 − MAPE), floored at 0. A perfect prediction
// scores 100; the paper reports e.g. "89.1% for the established
// servers" on this scale.
func Accuracy(predicted, actual []float64) float64 {
	acc := 100 * (1 - MAPE(predicted, actual))
	if acc < 0 || math.IsNaN(acc) {
		return 0
	}
	return acc
}

// PointAccuracy is the single-pair form of Accuracy.
func PointAccuracy(predicted, actual float64) float64 {
	return Accuracy([]float64{predicted}, []float64{actual})
}
