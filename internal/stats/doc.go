// Package stats provides the statistical substrate shared by the
// prediction methods: least-squares curve fitting (linear, exponential
// and power-law trend lines), summary statistics with online
// accumulation, percentile estimation and the predictive-accuracy
// metric used throughout the paper's evaluation.
//
// The historical method (internal/hist) fits its relationships with
// these routines; the experiment harness (internal/bench) scores every
// prediction with Accuracy.
package stats
