package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.Count() != 0 || a.Mean() != 0 || a.Variance() != 0 {
		t.Fatal("zero accumulator should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	near(t, a.Mean(), 5, 1e-12, "mean")
	near(t, a.Sum(), 40, 1e-12, "sum")
	near(t, a.Variance(), 32.0/7.0, 1e-12, "variance")
	near(t, a.Min(), 2, 0, "min")
	near(t, a.Max(), 9, 0, "max")
	if a.Count() != 8 {
		t.Fatalf("count = %d, want 8", a.Count())
	}
}

func TestAccumulatorSingleSample(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	near(t, a.Mean(), 3.5, 0, "mean")
	near(t, a.Variance(), 0, 0, "variance of one sample")
	near(t, a.Min(), 3.5, 0, "min")
	near(t, a.Max(), 3.5, 0, "max")
}

func TestAccumulatorMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var all, left, right Accumulator
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		all.Add(x)
		if i%2 == 0 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	near(t, left.Mean(), all.Mean(), 1e-9, "merged mean")
	near(t, left.Variance(), all.Variance(), 1e-9, "merged variance")
	near(t, left.Min(), all.Min(), 0, "merged min")
	near(t, left.Max(), all.Max(), 0, "merged max")
	if left.Count() != all.Count() {
		t.Fatalf("merged count = %d, want %d", left.Count(), all.Count())
	}
}

func TestAccumulatorMergeEmpty(t *testing.T) {
	var a, b Accumulator
	a.Add(1)
	a.Merge(&b) // merging empty is a no-op
	if a.Count() != 1 {
		t.Fatalf("count = %d, want 1", a.Count())
	}
	b.Merge(&a) // merging into empty copies
	if b.Count() != 1 || b.Mean() != 1 {
		t.Fatalf("merge into empty: count=%d mean=%v", b.Count(), b.Mean())
	}
}

func TestMeanAndPercentile(t *testing.T) {
	near(t, Mean(nil), 0, 0, "mean of empty")
	near(t, Mean([]float64{1, 2, 3}), 2, 1e-12, "mean")

	xs := []float64{15, 20, 35, 40, 50}
	near(t, Percentile(xs, 0), 15, 0, "p0")
	near(t, Percentile(xs, 100), 50, 0, "p100")
	near(t, Percentile(xs, 50), 35, 1e-12, "median")
	near(t, Percentile(xs, 25), 20, 1e-12, "p25")
	// Input must stay unsorted/unmodified.
	shuffled := []float64{40, 15, 50, 20, 35}
	_ = Percentile(shuffled, 90)
	if shuffled[0] != 40 {
		t.Fatal("Percentile modified its input")
	}
	near(t, Percentile(nil, 50), 0, 0, "empty percentile")
}

func TestAccuracyMetric(t *testing.T) {
	near(t, Accuracy([]float64{100}, []float64{100}), 100, 1e-12, "perfect")
	near(t, Accuracy([]float64{90}, []float64{100}), 90, 1e-12, "10% off")
	near(t, Accuracy([]float64{110}, []float64{100}), 90, 1e-12, "overprediction symmetric")
	// Gross mispredictions floor at zero rather than going negative.
	near(t, Accuracy([]float64{1000}, []float64{100}), 0, 0, "floor at 0")
	near(t, PointAccuracy(89.1, 100), 89.1, 1e-9, "point accuracy")
	// Zero-actual handling.
	if !math.IsInf(RelativeError(1, 0), 1) {
		t.Fatal("RelativeError(1,0) should be +Inf")
	}
	near(t, RelativeError(0, 0), 0, 0, "exact zero prediction")
	near(t, MAPE(nil, nil), 0, 0, "empty MAPE")
	near(t, MAPE([]float64{0, 50}, []float64{0, 100}), 0.5, 1e-12, "zero pairs skipped")
}

// Property: the streaming accumulator matches a direct two-pass
// computation for arbitrary sample sets.
func TestAccumulatorMatchesTwoPassProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			xs = append(xs, x)
		}
		if len(xs) < 2 {
			return true
		}
		var a Accumulator
		for _, x := range xs {
			a.Add(x)
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(xs)-1)
		tol := 1e-6 * (1 + math.Abs(mean) + variance)
		return math.Abs(a.Mean()-mean) < tol && math.Abs(a.Variance()-variance) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 = math.Mod(math.Abs(p1), 100)
		p2 = math.Mod(math.Abs(p2), 100)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		lo, hi := Percentile(xs, p1), Percentile(xs, p2)
		return lo <= hi && lo >= Percentile(xs, 0) && hi <= Percentile(xs, 100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanCI(t *testing.T) {
	var a Accumulator
	a.Add(5)
	if _, hw := a.MeanCI(0.95); hw != 0 {
		t.Fatalf("single-sample half-width = %v, want 0", hw)
	}
	rng := rand.New(rand.NewSource(8))
	a = Accumulator{}
	for i := 0; i < 400; i++ {
		a.Add(rng.NormFloat64()*2 + 10)
	}
	mean95, hw95 := a.MeanCI(0.95)
	_, hw90 := a.MeanCI(0.90)
	_, hw99 := a.MeanCI(0.99)
	if math.Abs(mean95-10) > 0.5 {
		t.Fatalf("mean = %v", mean95)
	}
	// Expected half-width ≈ 1.96×2/20 ≈ 0.196.
	if hw95 < 0.1 || hw95 > 0.3 {
		t.Fatalf("95%% half-width = %v", hw95)
	}
	if !(hw90 < hw95 && hw95 < hw99) {
		t.Fatalf("half-widths not ordered: %v %v %v", hw90, hw95, hw99)
	}
	// Unknown levels fall back to 95%.
	if _, hw := a.MeanCI(0.5); hw != hw95 {
		t.Fatalf("fallback half-width = %v, want %v", hw, hw95)
	}
}
