package stats

import (
	"math"
	"sort"
)

// P2Quantile is the Jain & Chlamtac P² streaming quantile estimator:
// it tracks one quantile of an unbounded stream with five markers and
// O(1) memory, adjusting marker heights with a piecewise-parabolic
// interpolation. A simulated measurement run can stream millions of
// response times through it instead of retaining a sample buffer.
// The zero value is not usable; construct with NewP2Quantile.
type P2Quantile struct {
	p   float64
	n   int        // observations seen
	q   [5]float64 // marker heights
	pos [5]float64 // marker positions (1-based)
	des [5]float64 // desired marker positions
	inc [5]float64 // desired-position increments per observation
}

// NewP2Quantile returns an estimator for the p-th quantile, p in (0,1).
func NewP2Quantile(p float64) *P2Quantile {
	if !(p > 0 && p < 1) {
		panic("stats: P² quantile must be in (0,1)")
	}
	e := &P2Quantile{p: p}
	e.des = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	e.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// P returns the tracked quantile probability.
func (e *P2Quantile) P() float64 { return e.p }

// Count returns the number of observations seen.
func (e *P2Quantile) Count() int { return e.n }

// Add records one observation.
func (e *P2Quantile) Add(x float64) {
	if e.n < 5 {
		e.q[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
			for i := range e.pos {
				e.pos[i] = float64(i + 1)
			}
		}
		return
	}
	// Find the cell k such that q[k] <= x < q[k+1], updating the
	// extreme markers as needed.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		k = 3
		for i := 1; i < 4; i++ {
			if x < e.q[i] {
				k = i - 1
				break
			}
		}
	}
	e.n++
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.des {
		e.des[i] += e.inc[i]
	}
	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.des[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			qn := e.parabolic(i, s)
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i by d (±1).
func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback height prediction when the parabola would
// leave the markers unordered.
func (e *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the exact quantile of what was seen;
// with none it returns 0.
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		buf := make([]float64, e.n)
		copy(buf, e.q[:e.n])
		sort.Float64s(buf)
		return Percentile(buf, e.p*100)
	}
	return e.q[2]
}

// Min and Max return the smallest and largest observations seen.
func (e *P2Quantile) Min() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		m := e.q[0]
		for _, v := range e.q[1:e.n] {
			m = math.Min(m, v)
		}
		return m
	}
	return e.q[0]
}

// Max returns the largest observation seen.
func (e *P2Quantile) Max() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		m := e.q[0]
		for _, v := range e.q[1:e.n] {
			m = math.Max(m, v)
		}
		return m
	}
	return e.q[4]
}

// StreamingQuantiles tracks a fixed set of quantiles of one stream
// with a P² estimator per quantile — O(len(ps)) memory regardless of
// stream length, the constant-space replacement for a reservoir sample
// buffer. The zero value is not usable; construct with
// NewStreamingQuantiles.
type StreamingQuantiles struct {
	ps  []float64
	est []*P2Quantile
}

// DefaultStreamQuantiles is the quantile set tracked when none is
// configured: the median plus the tail the SLA studies read.
func DefaultStreamQuantiles() []float64 { return []float64{0.5, 0.9, 0.95, 0.99} }

// NewStreamingQuantiles returns a tracker for the given quantile
// probabilities (each in (0,1)); nil or empty selects
// DefaultStreamQuantiles. The set is sorted ascending.
func NewStreamingQuantiles(ps []float64) *StreamingQuantiles {
	if len(ps) == 0 {
		ps = DefaultStreamQuantiles()
	}
	sorted := make([]float64, len(ps))
	copy(sorted, ps)
	sort.Float64s(sorted)
	s := &StreamingQuantiles{ps: sorted, est: make([]*P2Quantile, len(sorted))}
	for i, p := range sorted {
		s.est[i] = NewP2Quantile(p)
	}
	return s
}

// Probs returns the tracked quantile probabilities, ascending. Callers
// must not modify the slice.
func (s *StreamingQuantiles) Probs() []float64 { return s.ps }

// Count returns the number of observations recorded.
func (s *StreamingQuantiles) Count() int {
	if len(s.est) == 0 {
		return 0
	}
	return s.est[0].Count()
}

// Add records one observation into every tracked estimator.
func (s *StreamingQuantiles) Add(x float64) {
	for _, e := range s.est {
		e.Add(x)
	}
}

// Quantile returns the estimate for probability p in (0,1). Tracked
// probabilities return their estimator's value; intermediate
// probabilities interpolate linearly between the neighbouring tracked
// estimates, and probabilities outside the tracked range clamp to the
// stream minimum/maximum.
func (s *StreamingQuantiles) Quantile(p float64) float64 {
	if s.Count() == 0 {
		return 0
	}
	if p <= 0 {
		return s.est[0].Min()
	}
	if p >= 1 {
		return s.est[len(s.est)-1].Max()
	}
	i := sort.SearchFloat64s(s.ps, p)
	if i < len(s.ps) && s.ps[i] == p {
		return s.est[i].Value()
	}
	// Interpolate within (prev tracked or min) .. (next tracked or max).
	loP, loV := 0.0, s.est[0].Min()
	if i > 0 {
		loP, loV = s.ps[i-1], s.est[i-1].Value()
	}
	hiP, hiV := 1.0, s.est[len(s.est)-1].Max()
	if i < len(s.ps) {
		hiP, hiV = s.ps[i], s.est[i].Value()
	}
	if hiP == loP {
		return loV
	}
	frac := (p - loP) / (hiP - loP)
	return loV*(1-frac) + hiV*frac
}
