package stats

import "math"

// BatchMeans implements the batch-means method for simulation output
// analysis: the measurement window is cut into contiguous batches, the
// per-batch means are treated as approximately independent samples,
// and their confidence interval decides when the run has converged.
// The adaptive run control in internal/trade feeds one batch mean per
// simulated batch and stops when the relative half-width drops under
// the requested target. The zero value is ready to use.
type BatchMeans struct {
	acc Accumulator
}

// Add records one batch mean.
func (b *BatchMeans) Add(mean float64) { b.acc.Add(mean) }

// Count returns the number of batches recorded.
func (b *BatchMeans) Count() int { return b.acc.Count() }

// Mean returns the grand mean across batches.
func (b *BatchMeans) Mean() float64 { return b.acc.Mean() }

// HalfWidth returns the confidence-interval half-width of the grand
// mean at the given confidence level (0.90, 0.95 or 0.99; other
// levels fall back to 0.95), using the Student-t quantile for the
// batch count. With fewer than two batches it returns +Inf: no
// convergence claim is possible yet.
func (b *BatchMeans) HalfWidth(level float64) float64 {
	n := b.acc.Count()
	if n < 2 {
		return math.Inf(1)
	}
	t := tQuantile(level, n-1)
	return t * b.acc.StdDev() / math.Sqrt(float64(n))
}

// RelHalfWidth returns the half-width relative to the grand mean's
// magnitude — the stopping statistic of the adaptive run control. A
// zero grand mean returns +Inf.
func (b *BatchMeans) RelHalfWidth(level float64) float64 {
	m := math.Abs(b.acc.Mean())
	if m == 0 {
		return math.Inf(1)
	}
	return b.HalfWidth(level) / m
}

// Converged reports whether the relative half-width at the confidence
// level is within target.
func (b *BatchMeans) Converged(target, level float64) bool {
	return b.RelHalfWidth(level) <= target
}

// tTable95 holds two-sided Student-t quantiles t_{0.975,df} for
// df = 1..30; larger dfs use the normal approximation.
var tTable95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

var tTable90 = [...]float64{
	6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
	1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
	1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
}

var tTable99 = [...]float64{
	63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
	3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
	2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
}

// tQuantile returns the two-sided Student-t critical value for the
// given confidence level and degrees of freedom. Levels other than
// 0.90, 0.95 and 0.99 fall back to 0.95, matching Accumulator.MeanCI.
func tQuantile(level float64, df int) float64 {
	if df < 1 {
		df = 1
	}
	var table []float64
	var z float64
	switch level {
	case 0.90:
		table, z = tTable90[:], 1.645
	case 0.99:
		table, z = tTable99[:], 2.576
	default:
		table, z = tTable95[:], 1.960
	}
	if df <= len(table) {
		return table[df-1]
	}
	return z
}
