package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrInsufficientData is returned by the fitting routines when fewer
// than two distinct data points are supplied.
var ErrInsufficientData = errors.New("stats: need at least two distinct data points")

// ErrNonPositive is returned by the log-transform fits (exponential and
// power-law) when a coordinate that must be strictly positive is not.
var ErrNonPositive = errors.New("stats: log-transform fit requires strictly positive values")

// LinearModel is a least-squares trend line y = Slope*x + Intercept.
type LinearModel struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination of the fit on the
	// calibration data (1 is a perfect fit).
	R2 float64
}

// Eval returns the model's estimate of y at x.
func (m LinearModel) Eval(x float64) float64 { return m.Slope*x + m.Intercept }

// InvertY returns the x at which the model predicts y. It returns an
// error when the line is horizontal (slope 0), where no unique x exists.
func (m LinearModel) InvertY(y float64) (float64, error) {
	if m.Slope == 0 {
		return 0, fmt.Errorf("stats: cannot invert horizontal line y=%g", m.Intercept)
	}
	return (y - m.Intercept) / m.Slope, nil
}

// FitLinear computes the ordinary least-squares line through the points
// (xs[i], ys[i]). The slices must be the same length and contain at
// least two distinct x values.
func FitLinear(xs, ys []float64) (LinearModel, error) {
	if err := checkPaired(xs, ys); err != nil {
		return LinearModel{}, err
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearModel{}, ErrInsufficientData
	}
	m := LinearModel{
		Slope:     (n*sxy - sx*sy) / den,
		Intercept: (sy - (n*sxy-sx*sy)/den*sx) / n,
	}
	m.R2 = rSquared(xs, ys, m.Eval)
	return m, nil
}

// ExponentialModel is a least-squares exponential trend line
// y = Coeff * e^(Rate*x), fitted on log(y). This is the form of the
// paper's lower response-time equation (1): mrt = cL * e^(λL * N).
type ExponentialModel struct {
	Coeff float64 // cL in the paper
	Rate  float64 // λL in the paper
	R2    float64 // coefficient of determination in log space
}

// Eval returns the model's estimate of y at x.
func (m ExponentialModel) Eval(x float64) float64 { return m.Coeff * math.Exp(m.Rate*x) }

// InvertY returns the x at which the model predicts y. The historical
// method uses this to answer "how many clients can this server hold
// below a response-time goal" (§8.2). y and Coeff must be positive and
// Rate non-zero.
func (m ExponentialModel) InvertY(y float64) (float64, error) {
	if y <= 0 || m.Coeff <= 0 {
		return 0, ErrNonPositive
	}
	if m.Rate == 0 {
		return 0, fmt.Errorf("stats: cannot invert constant exponential y=%g", m.Coeff)
	}
	return math.Log(y/m.Coeff) / m.Rate, nil
}

// FitExponential fits y = c*e^(λx) by ordinary least squares on
// (x, ln y). All ys must be strictly positive.
func FitExponential(xs, ys []float64) (ExponentialModel, error) {
	if err := checkPaired(xs, ys); err != nil {
		return ExponentialModel{}, err
	}
	logy := make([]float64, len(ys))
	for i, y := range ys {
		if y <= 0 {
			return ExponentialModel{}, ErrNonPositive
		}
		logy[i] = math.Log(y)
	}
	lin, err := FitLinear(xs, logy)
	if err != nil {
		return ExponentialModel{}, err
	}
	return ExponentialModel{Coeff: math.Exp(lin.Intercept), Rate: lin.Slope, R2: lin.R2}, nil
}

// PowerModel is a least-squares power-law trend line y = Coeff * x^Exp,
// fitted on (ln x, ln y). This is the form of the paper's relationship-2
// equation (4): λL = C(λL) * mx_throughput^Δ(λL).
type PowerModel struct {
	Coeff float64 // C(λL) in the paper
	Exp   float64 // Δ(λL) in the paper
	R2    float64 // coefficient of determination in log-log space
}

// Eval returns the model's estimate of y at x. x must be positive for a
// meaningful result; Eval returns NaN otherwise.
func (m PowerModel) Eval(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	return m.Coeff * math.Pow(x, m.Exp)
}

// FitPower fits y = C*x^Δ by ordinary least squares on (ln x, ln y).
// All xs and ys must be strictly positive.
func FitPower(xs, ys []float64) (PowerModel, error) {
	if err := checkPaired(xs, ys); err != nil {
		return PowerModel{}, err
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return PowerModel{}, ErrNonPositive
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	lin, err := FitLinear(lx, ly)
	if err != nil {
		return PowerModel{}, err
	}
	return PowerModel{Coeff: math.Exp(lin.Intercept), Exp: lin.Slope, R2: lin.R2}, nil
}

// FitProportional computes the least-squares gradient m of the
// through-origin line y = m*x. The historical method uses it for the
// clients→throughput relationship of §4.1, whose gradient depends only
// on the think time and is shared across server architectures.
func FitProportional(xs, ys []float64) (float64, error) {
	if err := checkPaired(xs, ys); err != nil {
		return 0, err
	}
	var sxx, sxy float64
	for i := range xs {
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	if sxx == 0 {
		return 0, ErrInsufficientData
	}
	return sxy / sxx, nil
}

func checkPaired(xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("stats: mismatched series lengths %d and %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return ErrInsufficientData
	}
	first := xs[0]
	distinct := false
	for _, x := range xs[1:] {
		if x != first {
			distinct = true
			break
		}
	}
	if !distinct {
		return ErrInsufficientData
	}
	return nil
}

func rSquared(xs, ys []float64, f func(float64) float64) float64 {
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	var ssRes, ssTot float64
	for i := range ys {
		d := ys[i] - f(xs[i])
		ssRes += d * d
		t := ys[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
