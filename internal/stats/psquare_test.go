package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestP2QuantileUniform(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	med := NewP2Quantile(0.5)
	p90 := NewP2Quantile(0.9)
	for i := 0; i < 100000; i++ {
		x := r.Float64()
		med.Add(x)
		p90.Add(x)
	}
	if v := med.Value(); math.Abs(v-0.5) > 0.01 {
		t.Errorf("median of U(0,1) = %v, want 0.5 ± 0.01", v)
	}
	if v := p90.Value(); math.Abs(v-0.9) > 0.01 {
		t.Errorf("p90 of U(0,1) = %v, want 0.9 ± 0.01", v)
	}
}

func TestP2QuantileExponentialTail(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	est := NewP2Quantile(0.95)
	for i := 0; i < 200000; i++ {
		est.Add(r.ExpFloat64())
	}
	want := -math.Log(0.05) // ≈ 2.996
	if v := est.Value(); math.Abs(v-want)/want > 0.05 {
		t.Errorf("p95 of Exp(1) = %v, want %v ± 5%%", v, want)
	}
}

func TestP2QuantileSmallStreams(t *testing.T) {
	est := NewP2Quantile(0.5)
	if est.Value() != 0 {
		t.Fatal("empty estimator should report 0")
	}
	for _, x := range []float64{5, 1, 3} {
		est.Add(x)
	}
	// Below five observations the estimator answers exactly.
	if v, want := est.Value(), Percentile([]float64{1, 3, 5}, 50); v != want {
		t.Errorf("3-obs median = %v, want exact %v", v, want)
	}
	if est.Min() != 1 || est.Max() != 5 {
		t.Errorf("min/max = %v/%v, want 1/5", est.Min(), est.Max())
	}
	if est.Count() != 3 {
		t.Errorf("count = %d, want 3", est.Count())
	}
}

func TestP2QuantilePanicsOnBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%v should panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}

func TestStreamingQuantiles(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	sq := NewStreamingQuantiles(nil) // default set {0.5, 0.9, 0.95, 0.99}
	var all []float64
	for i := 0; i < 50000; i++ {
		x := r.ExpFloat64()
		sq.Add(x)
		all = append(all, x)
	}
	sort.Float64s(all)
	if sq.Count() != 50000 {
		t.Fatalf("count = %d", sq.Count())
	}
	for _, p := range []float64{0.5, 0.9, 0.95} {
		got := sq.Quantile(p)
		want := Percentile(all, p*100)
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("q(%v) = %v, want %v ± 5%%", p, got, want)
		}
	}
	// Interpolated (untracked) probability lies between its neighbours.
	if q70 := sq.Quantile(0.7); q70 < sq.Quantile(0.5) || q70 > sq.Quantile(0.9) {
		t.Errorf("q(0.7) = %v outside [q50, q90]", q70)
	}
	// Out-of-range probabilities clamp to the observed extremes.
	if sq.Quantile(0) != all[0] || sq.Quantile(1) != all[len(all)-1] {
		t.Errorf("clamp: q(0)=%v q(1)=%v, want %v and %v", sq.Quantile(0), sq.Quantile(1), all[0], all[len(all)-1])
	}
}

func TestStreamingQuantilesCustomSet(t *testing.T) {
	sq := NewStreamingQuantiles([]float64{0.8, 0.2})
	probs := sq.Probs()
	if len(probs) != 2 || probs[0] != 0.2 || probs[1] != 0.8 {
		t.Fatalf("probs = %v, want sorted [0.2 0.8]", probs)
	}
	if sq.Quantile(0.5) != 0 {
		t.Fatal("empty tracker should report 0")
	}
}
