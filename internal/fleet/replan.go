package fleet

import (
	"math"
	"time"

	"perfpred/internal/rm"
)

// pendingChange is one scheduled affinity-matrix edit: a server
// granted to a class warms up before it starts taking that class's
// traffic; a server revoked keeps accepting until its drain deadline.
type pendingChange struct {
	class, pool int
	allow       uint8
	at          float64
}

// classWindow is a class's cumulative completion state at the last
// replan — the baseline the next replan differences against.
type classWindow struct {
	completed uint64
	rtSum     float64
	rtCount   uint64
}

// replanState runs the resource manager in-loop: at every window
// barrier it applies matured affinity changes, and at each replan tick
// it snapshots the fleet, estimates the live per-class client totals
// by Little's law, cuts a plan with rm.Replanner (Algorithm 1 over
// warm-started solves) and schedules the affinity diff with
// warm-up/drain delays. Everything here runs on the coordinator
// goroutine between windows — off the routing hot path — and every
// input is a deterministic function of the simulated trajectory, so
// replan sequences are identical at any shard count.
type replanState struct {
	rp             *rm.Replanner
	router         *Router
	period         float64
	warmup, drain  float64
	next           float64
	names          []string  // class names, Load order
	goals          []float64 // class SLA goals
	thinks         []float64 // class think-time means
	configured     []int     // fleet-wide configured clients per class
	classIdx       map[string]int
	archNames      []string
	powers         []float64
	snap           rm.FleetSnapshot
	desired        []uint8 // scratch: the plan's allowed matrix
	pending        []pendingChange
	last           []classWindow
	lastTime       float64
	estimates      []int
	latencies      []time.Duration
	replans        int
	pendingApplied int
	err            error // first replan failure; surfaced by Run
}

func newReplanState(rp *rm.Replanner, router *Router, cfg *Config, archNames []string, powers []float64) *replanState {
	n := len(cfg.Load)
	rs := &replanState{
		rp:        rp,
		router:    router,
		period:    cfg.ReplanPeriod,
		warmup:    cfg.WarmupDelay,
		drain:     cfg.DrainDelay,
		next:      cfg.ReplanPeriod,
		names:     make([]string, n),
		goals:     make([]float64, n),
		thinks:    make([]float64, n),
		configured: make([]int, n),
		classIdx:  make(map[string]int, n),
		archNames: archNames,
		powers:    powers,
		desired:   make([]uint8, n*router.npools),
		last:      make([]classWindow, n),
		estimates: make([]int, n),
	}
	for i, pop := range cfg.Load {
		rs.names[i] = pop.Class.Name
		rs.goals[i] = pop.Class.GoalRT
		rs.thinks[i] = pop.Class.ThinkTimeMean
		rs.configured[i] = pop.Clients * cfg.Pools // every pool carries Load
		rs.classIdx[pop.Class.Name] = i
	}
	rs.snap.Classes = make([]rm.Class, n)
	rs.snap.Pools = make([]rm.PoolState, router.npools)
	return rs
}

// step runs at every window barrier, after Router.sync: matured
// affinity changes apply, then a due replan fires (one per barrier —
// the barrier cadence lower-bounds the effective period).
func (rs *replanState) step(now float64) {
	rs.sweep(now)
	if rs.err != nil || now < rs.next-timeEps {
		return
	}
	for now >= rs.next-timeEps {
		rs.next += rs.period
	}
	rs.replanNow(now)
	rs.sweep(now) // zero-delay changes take effect at this same barrier
}

// timeEps absorbs float drift between barrier times (multiples of the
// lookahead) and replan deadlines (multiples of the period).
const timeEps = 1e-9

func (rs *replanState) replanNow(now float64) {
	v := &rs.router.view
	span := now - rs.lastTime
	for c := range rs.names {
		completed, rtSum, rtCount := rs.router.classTotals(c)
		// Little's law over the window since the last replan:
		// N ≈ X·(Z + R). Before any completions (first replan, or a
		// drained class) fall back to the configured totals.
		est := rs.configured[c]
		if span > 0 {
			dc := completed - rs.last[c].completed
			drc := rtCount - rs.last[c].rtCount
			if dc > 0 && drc > 0 {
				thr := float64(dc) / span
				rt := (rtSum - rs.last[c].rtSum) / float64(drc)
				if e := int(math.Round(thr * (rs.thinks[c] + rt))); e >= 1 {
					est = e
				}
			}
		}
		rs.last[c] = classWindow{completed: completed, rtSum: rtSum, rtCount: rtCount}
		rs.estimates[c] = est
		rs.snap.Classes[c] = rm.Class{Name: rs.names[c], GoalRT: rs.goals[c], Clients: est}
	}
	rs.lastTime = now
	for p := 0; p < rs.router.npools; p++ {
		rs.snap.Pools[p] = rm.PoolState{
			Pool:     p,
			Arch:     rs.archNames[p],
			Power:    rs.powers[p],
			InFlight: v.InFlight[p],
			MeanRT:   v.RT[p],
		}
	}
	rs.snap.Now = now

	t0 := time.Now()
	plan, err := rs.rp.Replan(&rs.snap)
	rs.latencies = append(rs.latencies, time.Since(t0))
	if err != nil {
		rs.err = err
		return
	}
	rs.replans++

	// The plan's affinity matrix, then the diff against the live one,
	// rebuilt wholesale so a superseded pending change cannot fire.
	for i := range rs.desired {
		rs.desired[i] = 0
	}
	npools := rs.router.npools
	for _, a := range plan.Allocations {
		if ci, ok := rs.classIdx[a.Class]; ok {
			if pi, ok := poolFromServerName(a.Server, npools); ok {
				rs.desired[ci*npools+pi] = 1
			}
		}
	}
	rs.pending = rs.pending[:0]
	for c := range rs.names {
		row := c * npools
		for p := 0; p < npools; p++ {
			want := rs.desired[row+p]
			if want == v.Allowed[row+p] {
				continue
			}
			at := now + rs.warmup
			if want == 0 {
				at = now + rs.drain
			}
			rs.pending = append(rs.pending, pendingChange{class: c, pool: p, allow: want, at: at})
		}
	}
}

// sweep applies every pending change whose deadline has passed.
func (rs *replanState) sweep(now float64) {
	if len(rs.pending) == 0 {
		return
	}
	kept := rs.pending[:0]
	for _, pc := range rs.pending {
		if pc.at <= now+timeEps {
			rs.router.view.Allowed[pc.class*rs.router.npools+pc.pool] = pc.allow
			rs.pendingApplied++
		} else {
			kept = append(kept, pc)
		}
	}
	rs.pending = kept
}

// poolFromServerName inverts rm.PoolServerName ("p<i>") without
// allocating.
func poolFromServerName(name string, npools int) (int, bool) {
	if len(name) < 2 || name[0] != 'p' {
		return 0, false
	}
	n := 0
	for i := 1; i < len(name); i++ {
		d := name[i] - '0'
		if d > 9 {
			return 0, false
		}
		n = n*10 + int(d)
	}
	if n >= npools {
		return 0, false
	}
	return n, true
}
