package fleet

import (
	"strings"
	"testing"

	"perfpred/internal/scenario"
)

// fleetScenario declares a closed cohort with an SLA goal (so the
// replanner has something to plan for) plus a bursty open cohort —
// the time-varying load the in-loop resource manager must replan
// under.
func fleetScenario(t testing.TB) *scenario.Compiled {
	t.Helper()
	c, err := scenario.New("fleet-scenario").
		AddClosed("buy", 6, scenario.Exponential(7), map[string]float64{"buy": 1}).Goal(0.150).
		AddClosed("browse", 30, scenario.Lognormal(7, 1.2), map[string]float64{"browse": 1}).Goal(0.600).
		AddMMPP("burst", []scenario.MMPPStateSpec{{Rate: 1, MeanDwell: 3}, {Rate: 12, MeanDwell: 1}},
			map[string]float64{"browse": 1}).Goal(0.600).
		Compile("")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFleetScenarioMutuallyExclusiveWithLoad(t *testing.T) {
	cfg := testConfig(3, 2, nil)
	cfg.Scenario = fleetScenario(t)
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("Scenario+Load accepted: %v", err)
	}
}

// A scenario-driven fleet with in-loop replanning must run, replan,
// and stay deterministic across shard counts — the replanner sees the
// scenario's derived workload while the pools carry its time-varying
// arrivals.
func TestFleetScenarioReplanDeterministicAcrossShards(t *testing.T) {
	base := withReplanning(t, testConfig(3, 1, QueueDepth{}))
	base.Load = nil
	base.Scenario = fleetScenario(t)

	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if a.Replans == 0 {
		t.Fatal("scenario fleet run never replanned")
	}
	if a.Trade.PerClass["burst"].Completed == 0 {
		t.Fatal("MMPP cohort produced no completions")
	}
	cfg := base
	cfg.Shards = 3
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameFleetResult(t, "scenario shards=3 vs 1", a, b)
}
