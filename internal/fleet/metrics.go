package fleet

import (
	"sync/atomic"

	"perfpred/internal/obs"
)

// fleetMetrics are process-wide fleet-layer counters, aggregated over
// every run. The Router keeps plain per-origin/per-pool counters (each
// written only from its owning shard goroutine) and Run flushes the
// totals here once per run, so the routing hot path stays atomic-free
// and allocation-free even with metrics enabled.
type fleetMetrics struct {
	decisions       *obs.Counter   // routing decisions made
	remoteRoutes    *obs.Counter   // decisions that left the origin pool
	barriers        *obs.Counter   // window barriers executed
	replans         *obs.Counter   // resource-manager plans cut in-loop
	affinityChanges *obs.Counter   // affinity edits applied after warm-up/drain
	replanSeconds   *obs.Histogram // wall-clock plan latency, seconds
}

var metrics atomic.Pointer[fleetMetrics]

// EnableMetrics registers the fleet layer's counters on r and turns
// instrumentation on for every run in the process. A nil r disables
// instrumentation again.
func EnableMetrics(r *obs.Registry) {
	if r == nil {
		metrics.Store(nil)
		return
	}
	metrics.Store(&fleetMetrics{
		decisions:       r.Counter("fleet_routing_decisions"),
		remoteRoutes:    r.Counter("fleet_remote_routes"),
		barriers:        r.Counter("fleet_barriers"),
		replans:         r.Counter("fleet_replans"),
		affinityChanges: r.Counter("fleet_affinity_changes"),
		replanSeconds: r.Histogram("fleet_replan_seconds",
			1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1),
	})
}

// flushMetrics publishes one run's totals, once, at the end of Run.
func flushMetrics(res *Result) {
	m := metrics.Load()
	if m == nil {
		return
	}
	m.decisions.Add(res.Decisions)
	m.remoteRoutes.Add(res.Remote)
	m.barriers.Add(res.Barriers)
	m.replans.Add(uint64(res.Replans))
	m.affinityChanges.Add(uint64(res.AffinityChanges))
	for _, d := range res.ReplanLatencies {
		m.replanSeconds.Observe(d.Seconds())
	}
}
