package fleet

import "perfpred/internal/trade"

// rtAlpha is the EWMA weight of the latest barrier window's mean
// response time in the per-pool smoothed RT.
const rtAlpha = 0.3

// View is the routing state a Scorer reads. Every field except
// Assigned is written only at window barriers (Router.sync, on the
// coordinator goroutine while all shards are quiescent) and read during
// windows, so scorers on every shard see the identical snapshot — the
// property that keeps routing decisions invariant under the
// pool→shard mapping. Assigned is the one in-window layer: each origin
// pool's own row of the matrix, counting the decisions that origin has
// made since the last barrier so its scorers don't herd onto the pool
// the stale snapshot calls idle. A pool's own event order is
// mapping-invariant, so origin-local state is legal; reading another
// origin's live row would not be.
type View struct {
	// NPools and NClasses are the matrix dimensions.
	NPools, NClasses int
	// InFlight is the barrier snapshot of requests in service or queued
	// per pool (started − completed).
	InFlight []int
	// RT is the EWMA of each pool's per-window mean service-side
	// response time, seconds; 0 until the pool's first completion.
	RT []float64
	// Capacity is each pool's servlet-thread multiplicity (MPL) — the
	// static weight that makes load comparisons across heterogeneous
	// pools relative, not absolute.
	Capacity []int
	// Allowed is the nclasses×npools class-affinity matrix (row-major
	// by class): 1 when the resource manager's current plan places the
	// class on the pool. All ones until the first plan lands.
	Allowed []uint8
	// Assigned is the npools×npools in-window decision matrix
	// (row-major by origin): Assigned[origin*NPools+dst] counts the
	// requests origin has routed to dst since the last barrier. Scorers
	// may read only their own origin's row.
	Assigned []int32
}

// relLoad is the scorers' shared load signal for pool p as seen by
// origin: the barrier in-flight snapshot plus the origin's own
// in-window assignments, relative to the pool's thread capacity.
func (v *View) relLoad(origin, p int) float64 {
	return float64(v.InFlight[p]+int(v.Assigned[origin*v.NPools+p])) / float64(v.Capacity[p])
}

// classCount is the per-(pool, class) counter block: 32 bytes, padded
// to cache-line multiples per pool row by the Router's stride.
type classCount struct {
	started, completed uint64
	rtSum              float64
	rtCount            uint64
}

// originState is per-origin routing state, padded to a cache line so
// origins on different shards never write-share. dirty lists the
// Assigned-row slots the origin touched this window; clearing only
// those at the barrier keeps barrier cost proportional to decisions,
// not npools².
type originState struct {
	routes  uint64
	remotes uint64
	dirty   []int32
	_       [3]uint64 // pad to 64 bytes
}

// Router is the fleet's trade.PoolRouter: incrementally maintained
// per-pool state behind a pluggable Scorer. All hot-path methods
// (Route/Started/Completed) are O(1) counter updates or flat
// index-addressed scans with zero heap allocation; cross-pool state
// moves only at window barriers via sync.
type Router struct {
	scorer   Scorer
	npools   int
	nclasses int
	stride   int // classCounts per pool row, padded to a 64-byte multiple

	view View

	cc      []classCount // npools×stride, row-major by pool
	origins []originState

	// Per-pool RT-window baselines for the barrier EWMA.
	prevRTSum   []float64
	prevRTCount []uint64
}

var _ trade.PoolRouter = (*Router)(nil)

// NewRouter builds a router over len(capacities) pools with the given
// per-pool thread capacities (MPLs). Run builds one internally; the
// constructor is exported so benchmarks and callers wiring their own
// trade.Config can drive the hot path directly — install the router as
// trade.Config.Router and call Sync from the BarrierHook.
func NewRouter(scorer Scorer, capacities []int, nclasses int) *Router {
	npools := len(capacities)
	// Round the per-pool classCount row up to a whole number of 64-byte
	// lines (2 entries) so pools on different shards never write-share.
	stride := (nclasses + 1) &^ 1
	r := &Router{
		scorer:   scorer,
		npools:   npools,
		nclasses: nclasses,
		stride:   stride,
		cc:       make([]classCount, npools*stride),
		origins:  make([]originState, npools),
		view: View{
			NPools:   npools,
			NClasses: nclasses,
			InFlight: make([]int, npools),
			RT:       make([]float64, npools),
			Capacity: capacities,
			Allowed:  make([]uint8, nclasses*npools),
			Assigned: make([]int32, npools*npools),
		},
		prevRTSum:   make([]float64, npools),
		prevRTCount: make([]uint64, npools),
	}
	for i := range r.view.Allowed {
		r.view.Allowed[i] = 1 // everything allowed until a plan lands
	}
	for i := range r.origins {
		r.origins[i].dirty = make([]int32, 0, npools)
	}
	return r
}

// Route picks the serving pool for one request (trade.PoolRouter).
func (r *Router) Route(origin, class int) int {
	o := &r.origins[origin]
	o.routes++
	dst := r.scorer.Pick(&r.view, origin, class)
	if dst < 0 || dst >= r.npools {
		dst = origin
	}
	slot := origin*r.npools + dst
	if r.view.Assigned[slot] == 0 {
		o.dirty = append(o.dirty, int32(dst)) // cap preallocated: no alloc
	}
	r.view.Assigned[slot]++
	if dst != origin {
		o.remotes++
	}
	return dst
}

// Started records a service-side admission (trade.PoolRouter).
func (r *Router) Started(pool, class int) {
	r.cc[pool*r.stride+class].started++
}

// Completed records a service-side completion (trade.PoolRouter).
func (r *Router) Completed(pool, class int, rt float64) {
	c := &r.cc[pool*r.stride+class]
	c.completed++
	c.rtSum += rt
	c.rtCount++
}

// Sync publishes the barrier snapshot: per-pool in-flight counts and
// the RT EWMA from this window's completions, then clears every
// origin's in-window assignment row via its dirty list. Call it only
// while all shards are quiescent — Run invokes it from the window
// barrier hook on the coordinator goroutine.
func (r *Router) Sync() {
	for p := 0; p < r.npools; p++ {
		base := p * r.stride
		var started, completed, rtCount uint64
		var rtSum float64
		for c := 0; c < r.nclasses; c++ {
			cc := &r.cc[base+c]
			started += cc.started
			completed += cc.completed
			rtSum += cc.rtSum
			rtCount += cc.rtCount
		}
		r.view.InFlight[p] = int(started - completed)
		if dc := rtCount - r.prevRTCount[p]; dc > 0 {
			mean := (rtSum - r.prevRTSum[p]) / float64(dc)
			if r.view.RT[p] == 0 {
				r.view.RT[p] = mean
			} else {
				r.view.RT[p] += rtAlpha * (mean - r.view.RT[p])
			}
			r.prevRTSum[p] = rtSum
			r.prevRTCount[p] = rtCount
		}
	}
	for oi := range r.origins {
		o := &r.origins[oi]
		row := oi * r.npools
		for _, dst := range o.dirty {
			r.view.Assigned[row+int(dst)] = 0
		}
		o.dirty = o.dirty[:0]
	}
}

// PoolTotals returns pool p's lifetime started/completed counts and
// the live in-flight difference — the conservation identity
// started − completed == in-flight that the property tests assert.
// Call only while the fleet is quiescent (between Advance calls or at
// a barrier).
func (r *Router) PoolTotals(p int) (started, completed uint64, inflight int) {
	base := p * r.stride
	for c := 0; c < r.nclasses; c++ {
		cc := &r.cc[base+c]
		started += cc.started
		completed += cc.completed
	}
	return started, completed, int(started - completed)
}

// classTotals sums class c's completions across all pools — the
// replanner's Little's-law input. Pool-index order keeps the
// floating-point sum deterministic.
func (r *Router) classTotals(c int) (completed uint64, rtSum float64, rtCount uint64) {
	for p := 0; p < r.npools; p++ {
		cc := &r.cc[p*r.stride+c]
		completed += cc.completed
		rtSum += cc.rtSum
		rtCount += cc.rtCount
	}
	return completed, rtSum, rtCount
}

// Totals returns the fleet-wide routing decision and remote-decision
// counts. Call only while the fleet is quiescent.
func (r *Router) Totals() (decisions, remotes uint64) {
	for i := range r.origins {
		decisions += r.origins[i].routes
		remotes += r.origins[i].remotes
	}
	return decisions, remotes
}
