// Package fleet is the in-loop fleet resource manager: an event-driven
// layer over the sharded trade simulator (internal/trade, internal/sim)
// in which every request is routed across heterogeneous server pools
// by a pluggable scorer over incrementally maintained per-pool state,
// while the paper's Algorithm 1 resource manager (internal/rm) replans
// the class→pool affinity periodically from inside the simulation —
// the north-star system the ROADMAP describes.
//
// The layer has three moving parts. The Router (a trade.PoolRouter) is
// the zero-allocation hot path: O(1) counters on arrival/completion,
// flat index-addressed arrays, and scorers that read only barrier-
// synced snapshots plus origin-local in-window corrections, so seeded
// runs stay bit-identical at any shard count. The replanState runs at
// window barriers: it estimates live per-class client totals by
// Little's law, snapshots the pools, cuts a plan via rm.Replanner
// (Algorithm 1 over retained warm-started LQN solves) and phases the
// affinity diff in with warm-up/drain delays. Run wires both into a
// trade.ShardedRun and drives the measurement.
package fleet

import (
	"errors"
	"fmt"
	"time"

	"perfpred/internal/rm"
	"perfpred/internal/scenario"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// Config describes one fleet run.
type Config struct {
	// Pools is the number of server pools (each one application server
	// plus its own database replica, per the sharded trade model).
	// At least 2.
	Pools int
	// Shards is the engine-shard count the pools are partitioned
	// across; 0 or 1 runs single-engine (still windowed — the barrier
	// cadence is the hop latency).
	Shards int
	// Archs assigns pool architectures round-robin: pool i runs
	// Archs[i mod len(Archs)].
	Archs []workload.ServerArch
	// DB is each pool's database server.
	DB workload.DBServer
	// Demands maps request types to their per-request demands.
	Demands map[workload.RequestType]workload.Demand
	// Load is the per-pool workload: every pool carries these
	// populations (fleet totals are per-class Clients × Pools). Class
	// GoalRT values drive the replanner.
	Load workload.Workload
	// Scenario, when non-nil, replaces Load with a compiled declarative
	// scenario (internal/scenario): every pool carries the scenario's
	// cohorts, so the fleet replans under the time-varying load the
	// spec declares. The router and replanner see the scenario's
	// derived workload (stationary rates for open cohorts). Mutually
	// exclusive with Load.
	Scenario *scenario.Compiled
	// Seed fixes all random streams.
	Seed int64
	// WarmUp is the simulated ramp (seconds) discarded before
	// measurement.
	WarmUp float64
	// Duration is the measured window (seconds).
	Duration float64
	// Latency is the one-way cross-pool hop latency and conservative
	// lookahead, seconds; 0 selects trade.DefaultShardLatency.
	Latency float64
	// MaxRTSamples bounds per-class sample buffers (0 = trade default).
	MaxRTSamples int

	// Scorer picks the serving pool per request; nil selects Static
	// (every client stays on its own pool).
	Scorer Scorer

	// ReplanPeriod is the simulated seconds between resource-manager
	// replans; 0 disables replanning (the affinity matrix stays
	// all-allowed).
	ReplanPeriod float64
	// Replanner cuts the plans; required when ReplanPeriod > 0.
	Replanner *rm.Replanner
	// WarmupDelay is the simulated delay before a pool newly granted to
	// a class starts accepting its traffic (server warm-up).
	WarmupDelay float64
	// DrainDelay is the simulated delay before a pool revoked from a
	// class stops accepting its traffic (connection draining).
	DrainDelay float64
}

// validate reports fleet-level problems; the underlying trade.Config
// validation covers the rest.
func (c Config) validate() error {
	if c.Pools < 2 {
		return errors.New("fleet: need at least two pools")
	}
	if len(c.Archs) == 0 {
		return errors.New("fleet: need at least one architecture")
	}
	if c.WarmupDelay < 0 || c.DrainDelay < 0 {
		return errors.New("fleet: warm-up and drain delays must be non-negative")
	}
	if c.ReplanPeriod < 0 {
		return errors.New("fleet: replan period must be non-negative")
	}
	if c.Scenario != nil && len(c.Load) > 0 {
		return errors.New("fleet: Scenario and Load are mutually exclusive")
	}
	if c.ReplanPeriod > 0 {
		if c.Replanner == nil {
			return errors.New("fleet: ReplanPeriod needs a Replanner")
		}
		load := c.Load
		if c.Scenario != nil {
			load = c.Scenario.Workload()
		}
		seen := make(map[string]bool, len(load))
		for _, pop := range load {
			if pop.Class.GoalRT <= 0 {
				return fmt.Errorf("fleet: class %q needs a positive GoalRT to be replanned", pop.Class.Name)
			}
			if seen[pop.Class.Name] {
				return fmt.Errorf("fleet: duplicate class name %q (replanning needs unique names)", pop.Class.Name)
			}
			seen[pop.Class.Name] = true
		}
	}
	return nil
}

// Result is one fleet run's outcome.
type Result struct {
	// Trade is the merged fleet measurement (per-class response times,
	// namespaced per-server rows, events fired).
	Trade *trade.Result
	// Scorer is the scorer the run routed with.
	Scorer string
	// Decisions counts routing decisions (closed-client requests that
	// consulted the scorer); Remote of them left the origin pool.
	Decisions, Remote uint64
	// Barriers counts executed window barriers (sync + hook runs).
	Barriers uint64
	// Replans counts plans cut; ReplanLatencies holds each plan's
	// wall-clock solve time in cut order.
	Replans         int
	ReplanLatencies []time.Duration
	// AffinityChanges counts applied affinity-matrix edits (after
	// warm-up/drain maturation).
	AffinityChanges int
	// EstimatedClients is the last replan's per-class Little's-law
	// client estimates, Load order; nil when replanning is off.
	EstimatedClients []int
	// Wall is the run's wall-clock duration.
	Wall time.Duration
}

// Run executes one fleet measurement: build the router and (when
// configured) the in-loop replanner, wire them into a sharded trade
// run via the router and barrier-hook seams, warm up, measure, merge.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Scenario != nil {
		// Materialise the scenario's derived workload into the local copy
		// so router sizing and the replanner's Little's-law bookkeeping
		// work off the same class list the pools register; the trade
		// config below still carries the scenario itself, which drives
		// the actual (time-varying) arrivals.
		cfg.Load = cfg.Scenario.Workload()
	}
	scorer := cfg.Scorer
	if scorer == nil {
		scorer = Static{}
	}
	caps := make([]int, cfg.Pools)
	archNames := make([]string, cfg.Pools)
	powers := make([]float64, cfg.Pools)
	for i := 0; i < cfg.Pools; i++ {
		a := cfg.Archs[i%len(cfg.Archs)]
		caps[i] = a.MPL
		archNames[i] = a.Name
		powers[i] = a.MaxThroughputTypical
	}
	router := NewRouter(scorer, caps, len(cfg.Load))

	var rs *replanState
	if cfg.ReplanPeriod > 0 {
		rs = newReplanState(cfg.Replanner, router, &cfg, archNames, powers)
	}
	var barriers uint64
	hook := func(now float64) {
		router.Sync()
		barriers++
		if rs != nil {
			rs.step(now)
		}
	}

	tcfg := trade.Config{
		Server:       cfg.Archs[0], // placeholder; PoolArchs overrides every pool
		PoolArchs:    cfg.Archs,
		DB:           cfg.DB,
		Demands:      cfg.Demands,
		Load:         cfg.Load,
		Seed:         cfg.Seed,
		WarmUp:       cfg.WarmUp,
		Duration:     cfg.Duration,
		MaxRTSamples: cfg.MaxRTSamples,
		Pools:        cfg.Pools,
		Shards:       cfg.Shards,
		ShardLatency: cfg.Latency,
		Router:       router,
		BarrierHook:  hook,
	}
	if cfg.Scenario != nil {
		tcfg.Load = nil
		tcfg.Scenario = cfg.Scenario
	}
	start := time.Now()
	run, err := trade.NewSharded(tcfg)
	if err != nil {
		return nil, err
	}
	defer run.Close()
	run.Advance(cfg.WarmUp)
	run.BeginMeasurement()
	run.Advance(cfg.WarmUp + cfg.Duration)
	if rs != nil && rs.err != nil {
		return nil, fmt.Errorf("fleet: in-loop replan failed: %w", rs.err)
	}
	tres := run.Collect()

	decisions, remotes := router.Totals()
	res := &Result{
		Trade:     tres,
		Scorer:    scorer.Name(),
		Decisions: decisions,
		Remote:    remotes,
		Barriers:  barriers,
		Wall:      time.Since(start),
	}
	if rs != nil {
		res.Replans = rs.replans
		res.ReplanLatencies = rs.latencies
		res.AffinityChanges = rs.pendingApplied
		res.EstimatedClients = append([]int(nil), rs.estimates...)
	}
	flushMetrics(res)
	return res, nil
}
