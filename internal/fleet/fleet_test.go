package fleet

import (
	"sync/atomic"
	"testing"

	"perfpred/internal/lqn"
	"perfpred/internal/obs"
	"perfpred/internal/rm"
	"perfpred/internal/sim"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// testLoad is the per-pool workload every fleet test runs: a small buy
// class with a tight goal and a larger browse class with a loose one,
// both goal-bearing so the replanning tests can reuse it.
func testLoad() workload.Workload {
	return workload.Workload{
		{Class: workload.BuyClass(0.150), Clients: 6},
		{Class: workload.BrowseClass(0.600), Clients: 30},
	}
}

func testConfig(pools, shards int, scorer Scorer) Config {
	return Config{
		Pools:        pools,
		Shards:       shards,
		Archs:        []workload.ServerArch{workload.AppServS(), workload.AppServF(), workload.AppServVF()},
		DB:           workload.CaseStudyDB(),
		Demands:      workload.CaseStudyDemands(),
		Load:         testLoad(),
		Seed:         11,
		WarmUp:       2,
		Duration:     10,
		Latency:      0.005,
		MaxRTSamples: 64,
		Scorer:       scorer,
	}
}

func testReplanner(t testing.TB) *rm.Replanner {
	t.Helper()
	pred, err := rm.NewLQNPredictor(
		[]workload.ServerArch{workload.AppServS(), workload.AppServF(), workload.AppServVF()},
		workload.CaseStudyDB(), workload.CaseStudyDemands(),
		workload.BrowseClass(0.300), lqn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return &rm.Replanner{Pred: pred}
}

func withReplanning(t testing.TB, cfg Config) Config {
	cfg.ReplanPeriod = 2
	cfg.Replanner = testReplanner(t)
	cfg.WarmupDelay = 0.1
	cfg.DrainDelay = 0.4
	return cfg
}

// sameFleetResult asserts two runs of the same seeded config produced
// bit-identical trajectories and routing/replanning telemetry.
func sameFleetResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Trade.EventsFired != b.Trade.EventsFired {
		t.Errorf("%s: events fired %d vs %d", label, a.Trade.EventsFired, b.Trade.EventsFired)
	}
	if a.Trade.MeanRT != b.Trade.MeanRT {
		t.Errorf("%s: mean RT %v vs %v", label, a.Trade.MeanRT, b.Trade.MeanRT)
	}
	if a.Trade.Throughput != b.Trade.Throughput {
		t.Errorf("%s: throughput %v vs %v", label, a.Trade.Throughput, b.Trade.Throughput)
	}
	for name, ca := range a.Trade.PerClass {
		if cb := b.Trade.PerClass[name]; ca.Completed != cb.Completed || ca.MeanRT != cb.MeanRT {
			t.Errorf("%s: class %s completed/meanRT %d/%v vs %d/%v",
				label, name, ca.Completed, ca.MeanRT, cb.Completed, cb.MeanRT)
		}
	}
	if a.Decisions != b.Decisions || a.Remote != b.Remote {
		t.Errorf("%s: decisions %d/%d vs %d/%d", label, a.Decisions, a.Remote, b.Decisions, b.Remote)
	}
	if a.Barriers != b.Barriers {
		t.Errorf("%s: barriers %d vs %d", label, a.Barriers, b.Barriers)
	}
	if a.Replans != b.Replans || a.AffinityChanges != b.AffinityChanges {
		t.Errorf("%s: replans %d/%d vs %d/%d", label, a.Replans, a.AffinityChanges, b.Replans, b.AffinityChanges)
	}
	if len(a.EstimatedClients) != len(b.EstimatedClients) {
		t.Errorf("%s: estimate lengths %d vs %d", label, len(a.EstimatedClients), len(b.EstimatedClients))
	} else {
		for i := range a.EstimatedClients {
			if a.EstimatedClients[i] != b.EstimatedClients[i] {
				t.Errorf("%s: estimate[%d] %d vs %d", label, i, a.EstimatedClients[i], b.EstimatedClients[i])
			}
		}
	}
}

func TestFleetConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Pools = 1 },
		func(c *Config) { c.Archs = nil },
		func(c *Config) { c.WarmupDelay = -1 },
		func(c *Config) { c.DrainDelay = -1 },
		func(c *Config) { c.ReplanPeriod = -1 },
		func(c *Config) { c.ReplanPeriod = 1 }, // no Replanner
		func(c *Config) {
			c.ReplanPeriod, c.Replanner = 1, testReplanner(t)
			c.Load = workload.TypicalWorkload(10) // GoalRT 0
		},
		func(c *Config) {
			c.ReplanPeriod, c.Replanner = 1, testReplanner(t)
			c.Load = workload.Workload{
				{Class: workload.BuyClass(0.1), Clients: 5},
				{Class: workload.BuyClass(0.2), Clients: 5}, // duplicate name
			}
		},
	}
	for i, mutate := range bad {
		cfg := testConfig(4, 2, nil)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// Routing decisions must be invariant under the pool→shard mapping:
// the same seeded config produces bit-identical results at 1, 2 and 4
// shards, for every scorer.
func TestFleetDeterministicAcrossShards(t *testing.T) {
	for _, scorer := range []Scorer{Static{}, QueueDepth{}, LeastRT{}, ClassAffinity{}, DefaultWeighted()} {
		ref, err := Run(testConfig(4, 1, scorer))
		if err != nil {
			t.Fatal(err)
		}
		if ref.Trade.Throughput <= 0 {
			t.Fatalf("%s: reference run measured nothing", scorer.Name())
		}
		if ref.Decisions == 0 {
			t.Fatalf("%s: no routing decisions recorded", scorer.Name())
		}
		for _, shards := range []int{2, 4} {
			got, err := Run(testConfig(4, shards, scorer))
			if err != nil {
				t.Fatal(err)
			}
			sameFleetResult(t, scorer.Name(), ref, got)
		}
	}
}

// The in-loop replanner reads only barrier-synced state, so replan
// sequences — and the trajectories they steer — are also invariant
// under the shard mapping.
func TestFleetReplanDeterministicAcrossShards(t *testing.T) {
	ref, err := Run(withReplanning(t, testConfig(4, 1, ClassAffinity{})))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Replans == 0 {
		t.Fatal("reference run never replanned")
	}
	for _, shards := range []int{2, 4} {
		got, err := Run(withReplanning(t, testConfig(4, shards, ClassAffinity{})))
		if err != nil {
			t.Fatal(err)
		}
		sameFleetResult(t, "replan", ref, got)
	}
}

// Re-running the identical config must be exactly reproducible.
func TestFleetRunReproducible(t *testing.T) {
	cfg := withReplanning(t, testConfig(3, 3, DefaultWeighted()))
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameFleetResult(t, "rerun", a, b)
}

// The Static scorer serves every request locally, so a fleet run with
// it must be trajectory-identical to the plain sharded trade run of
// the same config with no router installed — pinning the router seam
// as behaviour-preserving when it makes no remote decisions.
func TestFleetStaticMatchesRouterlessRun(t *testing.T) {
	cfg := testConfig(4, 2, Static{})
	fres, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fres.Remote != 0 {
		t.Fatalf("static scorer made %d remote decisions", fres.Remote)
	}
	tres, err := trade.Run(trade.Config{
		Server:       cfg.Archs[0],
		PoolArchs:    cfg.Archs,
		DB:           cfg.DB,
		Demands:      cfg.Demands,
		Load:         cfg.Load,
		Seed:         cfg.Seed,
		WarmUp:       cfg.WarmUp,
		Duration:     cfg.Duration,
		MaxRTSamples: cfg.MaxRTSamples,
		Pools:        cfg.Pools,
		Shards:       cfg.Shards,
		ShardLatency: cfg.Latency,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fres.Trade.EventsFired != tres.EventsFired {
		t.Errorf("events fired %d vs routerless %d", fres.Trade.EventsFired, tres.EventsFired)
	}
	if fres.Trade.MeanRT != tres.MeanRT || fres.Trade.Throughput != tres.Throughput {
		t.Errorf("meanRT/throughput %v/%v vs routerless %v/%v",
			fres.Trade.MeanRT, fres.Trade.Throughput, tres.MeanRT, tres.Throughput)
	}
}

// countingRouter shadows every PoolRouter callback with an independent
// atomic tally, so the Router's internal bookkeeping can be checked
// against a second source of truth.
type countingRouter struct {
	inner     *Router
	routed    []atomic.Int64 // by destination pool
	started   []atomic.Int64
	completed []atomic.Int64
}

func (c *countingRouter) Route(origin, class int) int {
	dst := c.inner.Route(origin, class)
	c.routed[dst].Add(1)
	return dst
}

func (c *countingRouter) Started(pool, class int) {
	c.started[pool].Add(1)
	c.inner.Started(pool, class)
}

func (c *countingRouter) Completed(pool, class int, rt float64) {
	c.completed[pool].Add(1)
	c.inner.Completed(pool, class, rt)
}

// Conservation property: per pool, started − completed equals the
// in-flight count, independently tallied callbacks match the Router's
// counters, and no request is lost between a routing decision and its
// service-side admission (beyond hops still in the network).
func TestFleetConservationProperty(t *testing.T) {
	cfg := testConfig(4, 2, QueueDepth{})
	caps := make([]int, cfg.Pools)
	for i := range caps {
		caps[i] = cfg.Archs[i%len(cfg.Archs)].MPL
	}
	inner := NewRouter(QueueDepth{}, caps, len(cfg.Load))
	cr := &countingRouter{
		inner:     inner,
		routed:    make([]atomic.Int64, cfg.Pools),
		started:   make([]atomic.Int64, cfg.Pools),
		completed: make([]atomic.Int64, cfg.Pools),
	}
	run, err := trade.NewSharded(trade.Config{
		Server:       cfg.Archs[0],
		PoolArchs:    cfg.Archs,
		DB:           cfg.DB,
		Demands:      cfg.Demands,
		Load:         cfg.Load,
		Seed:         cfg.Seed,
		WarmUp:       cfg.WarmUp,
		Duration:     1e6, // driven manually
		MaxRTSamples: cfg.MaxRTSamples,
		Pools:        cfg.Pools,
		Shards:       cfg.Shards,
		ShardLatency: cfg.Latency,
		Router:       cr,
		BarrierHook:  func(float64) { inner.Sync() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()

	totalClients := 0
	for _, pop := range cfg.Load {
		totalClients += pop.Clients * cfg.Pools
	}
	var until float64
	for step := 0; step < 5; step++ {
		until += 3
		run.Advance(until)
		var sumStarted, sumInflight int64
		for p := 0; p < cfg.Pools; p++ {
			started, completed, inflight := inner.PoolTotals(p)
			if int64(started) != cr.started[p].Load() || int64(completed) != cr.completed[p].Load() {
				t.Fatalf("step %d pool %d: router counted %d/%d, independent tally %d/%d",
					step, p, started, completed, cr.started[p].Load(), cr.completed[p].Load())
			}
			if completed > started {
				t.Fatalf("step %d pool %d: completed %d > started %d", step, p, completed, started)
			}
			if inflight != int(started-completed) {
				t.Fatalf("step %d pool %d: inflight %d != started−completed %d",
					step, p, inflight, started-completed)
			}
			if inflight < 0 || inflight > totalClients {
				t.Fatalf("step %d pool %d: in-flight %d outside [0, %d]", step, p, inflight, totalClients)
			}
			sumStarted += int64(started)
			sumInflight += int64(inflight)
		}
		var sumRouted int64
		for p := range cr.routed {
			sumRouted += cr.routed[p].Load()
		}
		// Every decision is either admitted at its pool or still hopping
		// across the network; hops are bounded by the client population.
		if hops := sumRouted - sumStarted; hops < 0 || hops > int64(totalClients) {
			t.Fatalf("step %d: %d routed, %d admitted (%d in transit?)", step, sumRouted, sumStarted, hops)
		}
		if sumInflight > int64(totalClients) {
			t.Fatalf("step %d: fleet in-flight %d exceeds %d clients", step, sumInflight, totalClients)
		}
	}
	decisions, _ := inner.Totals()
	if decisions == 0 {
		t.Fatal("no routing decisions recorded")
	}
}

// Acceptance criterion: with metrics enabled, the steady-state routing
// loop — scorer picks, counter updates, barrier syncs — allocates
// nothing per advance.
func TestFleetSteadyStateZeroAllocWithMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	EnableMetrics(reg)
	trade.EnableMetrics(reg)
	sim.EnableMetrics(reg)
	defer EnableMetrics(nil)
	defer trade.EnableMetrics(nil)
	defer sim.EnableMetrics(nil)

	cfg := testConfig(4, 2, ClassAffinity{})
	caps := make([]int, cfg.Pools)
	for i := range caps {
		caps[i] = cfg.Archs[i%len(cfg.Archs)].MPL
	}
	router := NewRouter(ClassAffinity{}, caps, len(cfg.Load))
	run, err := trade.NewSharded(trade.Config{
		Server:       cfg.Archs[0],
		PoolArchs:    cfg.Archs,
		DB:           cfg.DB,
		Demands:      cfg.Demands,
		Load:         cfg.Load,
		Seed:         cfg.Seed,
		WarmUp:       cfg.WarmUp,
		Duration:     1e6, // driven manually
		MaxRTSamples: cfg.MaxRTSamples,
		Pools:        cfg.Pools,
		Shards:       cfg.Shards,
		ShardLatency: cfg.Latency,
		Router:       router,
		BarrierHook:  func(float64) { router.Sync() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	run.Advance(cfg.WarmUp)
	run.BeginMeasurement()
	until := cfg.WarmUp + 60 // fill sample reservoirs and scratch pools
	run.Advance(until)
	allocs := testing.AllocsPerRun(50, func() {
		until += 2
		run.Advance(until)
	})
	if allocs != 0 {
		t.Fatalf("fleet routing loop allocates %v objects per 2 simulated seconds, want 0", allocs)
	}
	decisions, remotes := router.Totals()
	if decisions == 0 || remotes == 0 {
		t.Fatalf("loop routed nothing (decisions %d, remote %d)", decisions, remotes)
	}
	if res := run.Collect(); res.Throughput <= 0 {
		t.Fatal("empty collection")
	}
	if snap := reg.Snapshot(); snap.Counters["trade_requests_completed"] == 0 {
		t.Fatal("metrics enabled but trade_requests_completed stayed zero")
	}
}

// The in-loop resource manager must actually steer the run: plans are
// cut on the configured period, affinity edits mature through the
// warm-up/drain pipeline, and the Little's-law estimates land near the
// configured populations once the fleet is in steady state.
func TestFleetReplanTakesEffect(t *testing.T) {
	reg := obs.NewRegistry()
	EnableMetrics(reg)
	defer EnableMetrics(nil)

	cfg := withReplanning(t, testConfig(4, 2, ClassAffinity{}))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantReplans := int((cfg.WarmUp + cfg.Duration) / cfg.ReplanPeriod)
	if res.Replans < wantReplans-1 || res.Replans > wantReplans+1 {
		t.Errorf("replans = %d, want about %d", res.Replans, wantReplans)
	}
	if len(res.ReplanLatencies) != res.Replans {
		t.Errorf("%d latencies for %d replans", len(res.ReplanLatencies), res.Replans)
	}
	if res.AffinityChanges == 0 {
		t.Error("no affinity changes ever applied")
	}
	if len(res.EstimatedClients) != len(cfg.Load) {
		t.Fatalf("estimates for %d classes, want %d", len(res.EstimatedClients), len(cfg.Load))
	}
	for i, est := range res.EstimatedClients {
		configured := cfg.Load[i].Clients * cfg.Pools
		if est < 1 || est > 3*configured {
			t.Errorf("class %d estimate %d implausible against configured %d", i, est, configured)
		}
	}
	pred := cfg.Replanner.Pred.(*rm.LQNPredictor)
	if st := pred.Stats(); st.Solves == 0 {
		t.Error("replanner never consulted the LQN predictor")
	}
	snap := reg.Snapshot()
	if snap.Counters["fleet_replans"] != uint64(res.Replans) {
		t.Errorf("fleet_replans metric %d, want %d", snap.Counters["fleet_replans"], res.Replans)
	}
	if snap.Counters["fleet_routing_decisions"] != res.Decisions {
		t.Errorf("fleet_routing_decisions metric %d, want %d",
			snap.Counters["fleet_routing_decisions"], res.Decisions)
	}
}

func TestScorerByNameRoundTrip(t *testing.T) {
	for _, name := range ScorerNames() {
		s, err := ScorerByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != name {
			t.Errorf("ScorerByName(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := ScorerByName("nope"); err == nil {
		t.Error("unknown scorer accepted")
	}
}

func TestPoolFromServerName(t *testing.T) {
	for i := 0; i < 12; i++ {
		got, ok := poolFromServerName(rm.PoolServerName(i), 12)
		if !ok || got != i {
			t.Errorf("round trip pool %d: got %d, %v", i, got, ok)
		}
	}
	for _, bad := range []string{"", "p", "q3", "p-1", "p3x", "p12"} {
		if _, ok := poolFromServerName(bad, 12); ok {
			t.Errorf("%q parsed as a pool name", bad)
		}
	}
}
