package fleet

import (
	"fmt"
	"math"
)

// Scorer picks the serving pool for one request. Pick runs on the
// origin pool's shard goroutine, on the zero-alloc routing path: it
// must not allocate, and it may read only the barrier-synced View
// fields plus the origin's own Assigned row (View documents why).
// Given the same View and arguments a Scorer must return the same
// pool — no hidden state, no randomness — which is what keeps seeded
// fleet runs bit-identical at any shard count.
type Scorer interface {
	// Name is the scorer's stable identifier ("queue", "affinity", ...).
	Name() string
	// Pick returns the serving pool for a request of the class issued
	// by origin. Out-of-range returns are clamped to origin.
	Pick(v *View, origin, class int) int
}

// Static always serves locally — the pre-fleet behaviour (every pool
// its own island) and the routing A/B baseline.
type Static struct{}

// Name implements Scorer.
func (Static) Name() string { return "static" }

// Pick implements Scorer.
func (Static) Pick(v *View, origin, class int) int { return origin }

// QueueDepth joins the relatively shortest queue: the pool minimising
// (in-flight + own in-window assignments) / capacity. Plan-oblivious;
// ties go to the lowest pool index.
type QueueDepth struct{}

// Name implements Scorer.
func (QueueDepth) Name() string { return "queue" }

// Pick implements Scorer.
func (QueueDepth) Pick(v *View, origin, class int) int {
	best, bestScore := 0, math.Inf(1)
	for p := 0; p < v.NPools; p++ {
		if s := v.relLoad(origin, p); s < bestScore {
			best, bestScore = p, s
		}
	}
	return best
}

// LeastRT chases the pool with the lowest smoothed service-side
// response time, breaking ties (including the all-zero state before
// first completions) by relative queue depth. Plan-oblivious.
type LeastRT struct{}

// Name implements Scorer.
func (LeastRT) Name() string { return "leastrt" }

// Pick implements Scorer.
func (LeastRT) Pick(v *View, origin, class int) int {
	best := 0
	bestRT, bestLoad := math.Inf(1), math.Inf(1)
	for p := 0; p < v.NPools; p++ {
		rt := v.RT[p]
		load := v.relLoad(origin, p)
		if rt < bestRT || (rt == bestRT && load < bestLoad) {
			best, bestRT, bestLoad = p, rt, load
		}
	}
	return best
}

// ClassAffinity is Algorithm 1 in the loop: it joins the relatively
// shortest queue among the pools the resource manager's current plan
// allows for the class (View.Allowed). When the plan allows the class
// nowhere — rejected workload, or no plan yet with a zeroed row — it
// falls back to plan-oblivious QueueDepth so clients are never
// stranded.
type ClassAffinity struct{}

// Name implements Scorer.
func (ClassAffinity) Name() string { return "affinity" }

// Pick implements Scorer.
func (ClassAffinity) Pick(v *View, origin, class int) int {
	arow := class * v.NPools
	best, bestScore := -1, math.Inf(1)
	for p := 0; p < v.NPools; p++ {
		if v.Allowed[arow+p] == 0 {
			continue
		}
		if s := v.relLoad(origin, p); s < bestScore {
			best, bestScore = p, s
		}
	}
	if best < 0 {
		return QueueDepth{}.Pick(v, origin, class)
	}
	return best
}

// Weighted blends the three signals: relative queue depth, smoothed RT
// (normalised by the fleet max so the blend is scale-free), and a flat
// penalty for pools outside the class's planned affinity set. Zero
// weights drop a signal; {1, 0, 0} is QueueDepth, {0, 0, big} tends to
// ClassAffinity.
type Weighted struct {
	// Queue weights the relative queue-depth term.
	Queue float64
	// RT weights the normalised smoothed-response-time term.
	RT float64
	// Affinity is the additive penalty for a pool the plan does not
	// allow for the class.
	Affinity float64
}

// Name implements Scorer.
func (Weighted) Name() string { return "weighted" }

// Pick implements Scorer.
func (w Weighted) Pick(v *View, origin, class int) int {
	maxRT := 0.0
	for p := 0; p < v.NPools; p++ {
		if v.RT[p] > maxRT {
			maxRT = v.RT[p]
		}
	}
	arow := class * v.NPools
	best, bestScore := 0, math.Inf(1)
	for p := 0; p < v.NPools; p++ {
		s := w.Queue * v.relLoad(origin, p)
		if maxRT > 0 {
			s += w.RT * (v.RT[p] / maxRT)
		}
		if v.Allowed[arow+p] == 0 {
			s += w.Affinity
		}
		if s < bestScore {
			best, bestScore = p, s
		}
	}
	return best
}

// DefaultWeighted is the stock blend ScorerByName("weighted") returns.
func DefaultWeighted() Weighted { return Weighted{Queue: 1, RT: 1, Affinity: 2} }

// ScorerNames lists the names ScorerByName accepts.
func ScorerNames() []string {
	return []string{"static", "queue", "leastrt", "affinity", "weighted"}
}

// ScorerByName resolves a scorer by its stable name — the -scorer flag
// surface of cmd/rmsim and cmd/fleetbench.
func ScorerByName(name string) (Scorer, error) {
	switch name {
	case "static":
		return Static{}, nil
	case "queue":
		return QueueDepth{}, nil
	case "leastrt":
		return LeastRT{}, nil
	case "affinity":
		return ClassAffinity{}, nil
	case "weighted":
		return DefaultWeighted(), nil
	}
	return nil, fmt.Errorf("fleet: unknown scorer %q (have %v)", name, ScorerNames())
}
