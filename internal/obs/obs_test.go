package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// Every metric method must be a no-op on a nil receiver, and a nil
	// registry must hand out nil metrics.
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	var m *MaxGauge
	m.Observe(7)
	if m.Value() != 0 {
		t.Fatal("nil max gauge must read 0")
	}
	var h *Histogram
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must read 0")
	}

	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.MaxGauge("x") != nil || r.Histogram("x", 1) != nil {
		t.Fatal("nil registry must return nil metrics")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestRegisterOrGet(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits")
	b := r.Counter("hits")
	if a != b {
		t.Fatal("Counter must return the same instance per name")
	}
	h1 := r.Histogram("lat", 1, 2, 3)
	h2 := r.Histogram("lat", 99) // bounds ignored on re-get
	if h1 != h2 {
		t.Fatal("Histogram must return the same instance per name")
	}
	if len(h1.bounds) != 3 {
		t.Fatal("first registration's bounds must win")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 10, 50, 100, 500} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	want := []uint64{2, 2, 2}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d: got %d want %d", i, got, w)
		}
	}
	if of := h.counts[3].Load(); of != 1 {
		t.Fatalf("overflow: got %d want 1", of)
	}
	if h.Count() != 7 {
		t.Fatalf("count: got %d want 7", h.Count())
	}
	if math.Abs(h.Sum()-666.5) > 1e-9 {
		t.Fatalf("sum: got %v want 666.5", h.Sum())
	}
}

func TestMaxGauge(t *testing.T) {
	var m MaxGauge
	m.Observe(5)
	m.Observe(3)
	m.Observe(9)
	if m.Value() != 9 {
		t.Fatalf("got %d want 9", m.Value())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	r.Gauge("b").Set(-4)
	r.MaxGauge("c").Observe(11)
	h := r.Histogram("d_seconds", 0.1, 1)
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot must round-trip JSON: %v", err)
	}
	if back.Counters["a"] != 2 || back.Gauges["b"] != -4 || back.MaxGauges["c"] != 11 {
		t.Fatalf("scalar values lost: %+v", back)
	}
	hs := back.Histograms["d_seconds"]
	if hs.Count != 2 || hs.Overflow != 1 || len(hs.Buckets) != 2 {
		t.Fatalf("histogram snapshot wrong: %+v", hs)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Inc()
	r.Counter("alpha").Add(3)
	r.Histogram("lat_seconds", 0.5).Observe(0.2)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "alpha 3\n") || !strings.Contains(out, "zeta 1\n") {
		t.Fatalf("missing counter lines:\n%s", out)
	}
	if strings.Index(out, "alpha") > strings.Index(out, "zeta") {
		t.Fatalf("output must be sorted by name:\n%s", out)
	}
	if !strings.Contains(out, `lat_seconds_bucket{le="+Inf"} 0`) {
		t.Fatalf("missing +Inf bucket line:\n%s", out)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("n")
			h := r.Histogram("v", 0.5, 1.0)
			m := r.MaxGauge("hw")
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i%3) / 2)
				m.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != workers*per {
		t.Fatalf("counter lost updates: got %d want %d", got, workers*per)
	}
	if got := r.Histogram("v").Count(); got != workers*per {
		t.Fatalf("histogram lost updates: got %d want %d", got, workers*per)
	}
	if got := r.MaxGauge("hw").Value(); got != workers*per-1 {
		t.Fatalf("max gauge wrong: got %d want %d", got, workers*per-1)
	}
	perWorkerSum := 0.0
	for i := 0; i < per; i++ {
		perWorkerSum += float64(i%3) / 2
	}
	if sum := r.Histogram("v").Sum(); math.Abs(sum-float64(workers)*perWorkerSum) > 1e-6 {
		t.Fatalf("histogram sum lost updates: got %v want %v", sum, float64(workers)*perWorkerSum)
	}
}

func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	m := r.MaxGauge("m")
	h := r.Histogram("h", 1, 2, 3, 4, 5)
	var nilC *Counter
	var nilH *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(2)
		m.Observe(42)
		h.Observe(2.5)
		nilC.Inc()
		nilH.Observe(1)
	})
	if allocs != 0 {
		t.Fatalf("metric hot path allocates: %v allocs/op", allocs)
	}
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("probe_hits").Add(7)
	addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if out := get("/metrics"); !strings.Contains(out, "probe_hits 7") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if out := get("/debug/pprof/"); !strings.Contains(out, "profile") {
		t.Fatalf("/debug/pprof/ index unexpected:\n%s", out)
	}
}

func TestWriteReport(t *testing.T) {
	r := NewRegistry()
	r.Counter("done").Inc()
	path := t.TempDir() + "/report.json"
	if err := WriteReport(path, r); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatalf("report must parse: %v", err)
	}
	if s.Counters["done"] != 1 {
		t.Fatalf("report lost counter: %+v", s)
	}
}
