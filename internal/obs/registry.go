package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Registry is a named collection of metrics. Accessors are
// register-or-get: the first call for a name creates the metric, later
// calls return the same instance, so subsystems can look metrics up by
// name without start-up ordering constraints.
//
// A nil *Registry is valid everywhere and returns nil metrics, which
// are themselves nil-safe no-ops — the disabled configuration costs one
// nil check per instrumented operation.
//
// Metric naming convention: `<subsystem>_<noun>[_<qualifier>]`, snake
// case, e.g. `lqn_solver_warm_hits`, `sim_events_fired`,
// `trade_cache_misses`. Counters count events since process start;
// gauges are instantaneous; `*_high_water` max-gauges are monotone
// maxima; histograms ending in `_seconds` hold wall-clock phases.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	maxGauges  map[string]*MaxGauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		maxGauges:  make(map[string]*MaxGauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// MaxGauge returns the named high-water gauge, creating it on first
// use. A nil registry returns a nil (no-op) gauge.
func (r *Registry) MaxGauge(name string) *MaxGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.maxGauges[name]
	if !ok {
		m = &MaxGauge{}
		r.maxGauges[name] = m
	}
	return m
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. Later calls ignore bounds and return the
// existing instance. A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's state at snapshot time. The
// overflow count (observations above the last bound) is kept out of
// Buckets so the snapshot round-trips through JSON without +Inf.
type HistogramSnapshot struct {
	Bounds   []float64 `json:"bounds"`
	Buckets  []uint64  `json:"buckets"`
	Overflow uint64    `json:"overflow"`
	Count    uint64    `json:"count"`
	Sum      float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of every metric in a registry,
// suitable for JSON encoding (the run-report format) or text dumping.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	MaxGauges  map[string]int64             `json:"max_gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every metric. A nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		MaxGauges:  map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, m := range r.maxGauges {
		s.MaxGauges[name] = m.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Bounds:  append([]float64(nil), h.bounds...),
			Buckets: make([]uint64, len(h.bounds)),
			Count:   h.Count(),
			Sum:     h.Sum(),
		}
		for i := range h.bounds {
			hs.Buckets[i] = h.counts[i].Load()
		}
		hs.Overflow = h.counts[len(h.bounds)].Load()
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes the snapshot in the plain-text exposition format
// served at /metrics: one `name value` line per scalar metric plus
// `name_bucket{le=...}` lines per histogram, sorted by name for a
// stable diffable dump.
func (s Snapshot) WriteText(w io.Writer) error {
	type line struct{ name, value string }
	var lines []line
	for name, v := range s.Counters {
		lines = append(lines, line{name, fmt.Sprintf("%d", v)})
	}
	for name, v := range s.Gauges {
		lines = append(lines, line{name, fmt.Sprintf("%d", v)})
	}
	for name, v := range s.MaxGauges {
		lines = append(lines, line{name, fmt.Sprintf("%d", v)})
	}
	for name, h := range s.Histograms {
		for i, b := range h.Bounds {
			lines = append(lines, line{
				fmt.Sprintf("%s_bucket{le=%q}", name, fmt.Sprintf("%g", b)),
				fmt.Sprintf("%d", h.Buckets[i]),
			})
		}
		lines = append(lines, line{fmt.Sprintf("%s_bucket{le=\"+Inf\"}", name), fmt.Sprintf("%d", h.Overflow)})
		lines = append(lines, line{name + "_count", fmt.Sprintf("%d", h.Count)})
		lines = append(lines, line{name + "_sum", fmt.Sprintf("%g", h.Sum)})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	for _, l := range lines {
		if _, err := fmt.Fprintf(w, "%s %s\n", l.name, l.value); err != nil {
			return err
		}
	}
	return nil
}

// Default is the process-wide registry enabled by the cmd tools'
// -metrics-addr / -report flags. Library code never touches it
// directly; each subsystem's EnableMetrics is handed this (or a
// test-local registry) explicitly.
var Default = NewRegistry()
