// Package obs is the repo's dependency-free observability layer:
// atomic counters, gauges and fixed-bucket histograms with a
// zero-allocation hot path, a named registry, and a snapshot API.
//
// The design follows the USE/RED-style counter sets every production
// serving stack carries, in the spirit of the measurement
// infrastructures the source paper builds on (PACE/HYDRA request-path
// accounting): subsystems register their metrics once at start-up and
// bump them from hot paths at atomic-add cost.
//
// Every metric type is nil-safe: calling any method on a nil *Counter,
// *Gauge, *MaxGauge or *Histogram is a no-op. Instrumented code can
// therefore hold metric pointers unconditionally and skip the "is
// observability on?" branch — with metrics disabled the pointers are
// nil and the instrumentation compiles down to a nil check.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil Counter discards all updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to
// use; a nil Gauge discards all updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d. No-op on a nil receiver.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// MaxGauge is a high-water mark: Observe keeps the largest value seen.
// The zero value is ready to use; a nil MaxGauge discards all updates.
type MaxGauge struct {
	v atomic.Int64
}

// Observe raises the high-water mark to v if v exceeds it. No-op on a
// nil receiver.
func (m *MaxGauge) Observe(v int64) {
	if m == nil {
		return
	}
	for {
		cur := m.v.Load()
		if v <= cur {
			return
		}
		if m.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the high-water mark (0 on a nil receiver).
func (m *MaxGauge) Value() int64 {
	if m == nil {
		return 0
	}
	return m.v.Load()
}

// Histogram is a fixed-bucket histogram: observations land in the
// first bucket whose upper bound is >= the value, with an overflow
// bucket past the last bound. Buckets are fixed at construction, so
// Observe performs no allocation — a branchless-ish linear scan over a
// small bound slice plus two atomic adds.
type Histogram struct {
	bounds []float64       // ascending upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last = overflow
	n      atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. It panics on unsorted or empty bounds — histogram shapes are
// compile-time decisions, never data-dependent.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	return h
}

// DurationBuckets is the default bound set for wall-clock phases, in
// seconds: 100µs to ~100s in roughly 1-3-10 steps.
func DurationBuckets() []float64 {
	return []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10, 30, 100}
}

// Observe records v. No-op on a nil receiver; never allocates.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		cur := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(cur) + v)
		if h.sum.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observations (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}
