package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
)

// Handler returns the observability HTTP mux for a registry:
//
//	/metrics      plain-text metric dump (WriteText)
//	/debug/vars   expvar JSON (stdlib runtime + cmdline vars)
//	/debug/pprof  full net/http/pprof suite
//
// The pprof handlers are mounted explicitly rather than via the
// package's init side effect on http.DefaultServeMux, so the returned
// mux is self-contained.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.Snapshot().WriteText(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability endpoint on addr in a background
// goroutine and returns the bound address (useful with ":0"). The
// listener lives for the rest of the process — the cmd tools exit
// rather than shut it down.
func Serve(addr string, r *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// WriteReport writes the registry's snapshot as indented JSON to path,
// the end-of-run report format produced by the cmd tools' -report flag.
func WriteReport(path string, r *Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: report: %w", err)
	}
	if err := r.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: report: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: report: %w", err)
	}
	return nil
}
