package trade

import (
	"sync/atomic"

	"perfpred/internal/obs"
)

// tradeMetrics are process-wide Trade-simulator counters, aggregated
// over every run. Each simulator keeps plain per-instance counters
// (one simulator is strictly single-goroutine) and flushes them into
// these atomics once per run, at collect time, so the request loop's
// zero-allocation guarantee is untouched.
type tradeMetrics struct {
	completed   *obs.Counter // measured request completions
	poolReuses  *obs.Counter // request records served from the free list
	poolAllocs  *obs.Counter // request records newly allocated
	cacheHits   *obs.Counter // session-cache hits (measured window)
	cacheMisses *obs.Counter // session-cache misses (measured window)
	cacheEvicts *obs.Counter // session-cache evictions (measured window)

	adaptiveRuns         *obs.Counter // RunAdaptive invocations
	adaptiveBatches      *obs.Counter // batch-means batches accumulated
	adaptiveNonConverged *obs.Counter // adaptive runs stopped by the duration cap
}

var metrics atomic.Pointer[tradeMetrics]

// EnableMetrics registers the Trade simulator's counters on r and turns
// instrumentation on for every run in the process. A nil r disables
// instrumentation again.
func EnableMetrics(r *obs.Registry) {
	if r == nil {
		metrics.Store(nil)
		return
	}
	metrics.Store(&tradeMetrics{
		completed:            r.Counter("trade_requests_completed"),
		poolReuses:           r.Counter("trade_request_pool_reuses"),
		poolAllocs:           r.Counter("trade_request_pool_allocs"),
		cacheHits:            r.Counter("trade_cache_hits"),
		cacheMisses:          r.Counter("trade_cache_misses"),
		cacheEvicts:          r.Counter("trade_cache_evicts"),
		adaptiveRuns:         r.Counter("trade_adaptive_runs"),
		adaptiveBatches:      r.Counter("trade_adaptive_batches"),
		adaptiveNonConverged: r.Counter("trade_adaptive_nonconverged"),
	})
}

// flushMetrics publishes one run's totals. Called from collect, once
// per simulator, with the measured completion count already summed.
func (s *simulator) flushMetrics(totalCompleted int) {
	m := metrics.Load()
	if m == nil {
		return
	}
	m.completed.Add(uint64(totalCompleted))
	m.poolReuses.Add(s.poolReuses)
	m.poolAllocs.Add(s.poolAllocs)
	for _, app := range s.apps {
		if app.cache != nil {
			m.cacheHits.Add(app.cache.hits)
			m.cacheMisses.Add(app.cache.misses)
			m.cacheEvicts.Add(app.cache.evicts)
		}
	}
}

// recordAdaptive publishes one adaptive run's stopping diagnostics.
func recordAdaptive(batches int, converged bool) {
	m := metrics.Load()
	if m == nil {
		return
	}
	m.adaptiveRuns.Inc()
	m.adaptiveBatches.Add(uint64(batches))
	if !converged {
		m.adaptiveNonConverged.Inc()
	}
}
