package trade

import (
	"math"
	"testing"

	"perfpred/internal/workload"
)

func TestBrowseOperationsTableSane(t *testing.T) {
	ops := BrowseOperations()
	if err := validateOperations(ops); err != nil {
		t.Fatal(err)
	}
	// Weights form a distribution.
	var w float64
	for _, op := range ops {
		w += op.Weight
	}
	if math.Abs(w-1) > 1e-9 {
		t.Fatalf("browse weights sum to %v", w)
	}
	// Demand scales average to 1: the operation-level model and the
	// coarse request-type model agree in aggregate.
	if got := meanBrowseScale(); math.Abs(got-1) > 0.02 {
		t.Fatalf("mean browse demand scale = %v, want ≈1", got)
	}
}

func TestValidateOperations(t *testing.T) {
	if err := validateOperations(nil); err == nil {
		t.Fatal("empty table should fail")
	}
	bad := []Operation{{Name: "", DemandScale: 1}}
	if err := validateOperations(bad); err == nil {
		t.Fatal("unnamed op should fail")
	}
	bad = []Operation{{Name: "x", DemandScale: 0}}
	if err := validateOperations(bad); err == nil {
		t.Fatal("zero scale should fail")
	}
	bad = []Operation{{Name: "x", DemandScale: 1, DBCalls: -1}}
	if err := validateOperations(bad); err == nil {
		t.Fatal("negative db calls should fail")
	}
}

func TestPortfolioScaleNormalised(t *testing.T) {
	// Over a 10-buy session (holdings 0..9) the scales average to 1.
	var sum float64
	for h := 0; h < 10; h++ {
		sum += portfolioScale(h)
	}
	if math.Abs(sum/10-1) > 1e-9 {
		t.Fatalf("session-average portfolio scale = %v, want 1", sum/10)
	}
	// And later buys cost more than earlier ones.
	if portfolioScale(9) <= portfolioScale(0) {
		t.Fatal("portfolio growth should raise demand")
	}
}

func detailedConfig(load workload.Workload) Config {
	return Config{
		Server:             workload.AppServF(),
		DB:                 workload.CaseStudyDB(),
		Demands:            workload.CaseStudyDemands(),
		Load:               load,
		Seed:               43,
		WarmUp:             40,
		Duration:           160,
		DetailedOperations: true,
	}
}

func TestDetailedBrowseOperationMix(t *testing.T) {
	res, err := Run(detailedConfig(workload.TypicalWorkload(500)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerOperation) != 4 {
		t.Fatalf("operations seen = %d, want 4", len(res.PerOperation))
	}
	total := 0
	byName := map[string]OperationResult{}
	for _, op := range res.PerOperation {
		total += op.Completed
		byName[op.Operation] = op
	}
	// Frequencies track the weights.
	for _, op := range BrowseOperations() {
		got := float64(byName[op.Name].Completed) / float64(total)
		if math.Abs(got-op.Weight) > 0.02 {
			t.Fatalf("%s frequency = %v, want ≈%v", op.Name, got, op.Weight)
		}
	}
	// Heavier operations take longer: portfolio (1.5×) vs home (0.7×).
	if byName["portfolio"].MeanRT <= byName["home"].MeanRT {
		t.Fatalf("portfolio RT %v should exceed home RT %v",
			byName["portfolio"].MeanRT, byName["home"].MeanRT)
	}
}

func TestDetailedBuySessionStructure(t *testing.T) {
	load := workload.Workload{{Class: workload.BuyClass(0), Clients: 300}}
	res, err := Run(detailedConfig(load))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]OperationResult{}
	for _, op := range res.PerOperation {
		byName[op.Operation] = op
	}
	reg := byName["register-login"].Completed
	buys := byName["buy"].Completed
	logoffs := byName["logoff"].Completed
	if reg == 0 || buys == 0 || logoffs == 0 {
		t.Fatalf("missing session phases: %d/%d/%d", reg, buys, logoffs)
	}
	// Sessions issue ~10 buys per register/logoff pair (§3.1).
	ratio := float64(buys) / float64(reg)
	if ratio < 8.5 || ratio > 11.5 {
		t.Fatalf("buys per session = %v, want ≈10", ratio)
	}
	if math.Abs(float64(logoffs-reg)) > 0.1*float64(reg) {
		t.Fatalf("registers %d and logoffs %d should balance", reg, logoffs)
	}
}

func TestDetailedAggregatesMatchCoarseModel(t *testing.T) {
	// The operation-level model must agree with the coarse request-type
	// model in aggregate: similar throughput and mean RT for the same
	// workload.
	load := workload.MixedWorkload(700, 0.25)
	coarseCfg := detailedConfig(load)
	coarseCfg.DetailedOperations = false
	coarse, err := Run(coarseCfg)
	if err != nil {
		t.Fatal(err)
	}
	detailed, err := Run(detailedConfig(load))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(detailed.Throughput-coarse.Throughput)/coarse.Throughput > 0.05 {
		t.Fatalf("throughput: detailed %v vs coarse %v", detailed.Throughput, coarse.Throughput)
	}
	if math.Abs(detailed.MeanRT-coarse.MeanRT)/coarse.MeanRT > 0.12 {
		t.Fatalf("mean RT: detailed %v vs coarse %v", detailed.MeanRT, coarse.MeanRT)
	}
	if len(detailed.PerOperation) < 6 {
		t.Fatalf("operations seen = %d", len(detailed.PerOperation))
	}
	if len(coarse.PerOperation) != 0 {
		t.Fatal("coarse run must not report operations")
	}
}
