package trade

import (
	"math"
	"testing"

	"perfpred/internal/workload"
)

func csConfig(clients int, cs *CriticalSectionConfig) Config {
	return Config{
		Server:          workload.AppServF(),
		DB:              workload.CaseStudyDB(),
		Demands:         workload.CaseStudyDemands(),
		Load:            workload.TypicalWorkload(clients),
		Seed:            47,
		WarmUp:          40,
		Duration:        140,
		CriticalSection: cs,
	}
}

func TestCriticalSectionValidation(t *testing.T) {
	bad := csConfig(100, &CriticalSectionConfig{MeanTime: 0, Fraction: 0.5})
	if err := bad.Validate(); err == nil {
		t.Fatal("zero mean time should fail")
	}
	bad = csConfig(100, &CriticalSectionConfig{MeanTime: 0.01, Fraction: 0})
	if err := bad.Validate(); err == nil {
		t.Fatal("zero fraction should fail")
	}
	bad = csConfig(100, &CriticalSectionConfig{MeanTime: 0.01, Fraction: 1.5})
	if err := bad.Validate(); err == nil {
		t.Fatal("fraction > 1 should fail")
	}
	if err := csConfig(100, &CriticalSectionConfig{MeanTime: 0.01, Fraction: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalSectionLowersCeiling(t *testing.T) {
	// 30% of requests burning an extra 10ms of locked CPU drop the
	// ceiling to ≈ 1/(5.38ms + 3ms) ≈ 119 req/s.
	cs := &CriticalSectionConfig{MeanTime: 0.010, Fraction: 0.30}
	res, err := Run(csConfig(2400, cs))
	if err != nil {
		t.Fatal(err)
	}
	d := workload.CaseStudyDemands()[workload.Browse]
	want := 1 / (d.AppServerTime + 0.30*0.010)
	if math.Abs(res.Throughput-want)/want > 0.06 {
		t.Fatalf("bottlenecked ceiling = %v, want ≈%v", res.Throughput, want)
	}
	// And the same load without the section runs at the normal ceiling.
	base, err := Run(csConfig(2400, nil))
	if err != nil {
		t.Fatal(err)
	}
	if base.Throughput <= res.Throughput {
		t.Fatal("removing the section should raise throughput")
	}
}

func TestCriticalSectionSerialisesUnderLoad(t *testing.T) {
	// Mid-load response time inflates well beyond the pure extra-CPU
	// effect because lock holders are slowed by CPU sharing, stretching
	// every queued waiter (the §8.1 implicit queue).
	cs := &CriticalSectionConfig{MeanTime: 0.010, Fraction: 0.30}
	withCS, err := Run(csConfig(700, cs))
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(csConfig(700, nil))
	if err != nil {
		t.Fatal(err)
	}
	// The naive expectation is +3ms (the extra CPU); the measured gap
	// must exceed it, showing genuine queueing at the lock.
	gap := withCS.MeanRT - base.MeanRT
	if gap < 0.004 {
		t.Fatalf("CS added only %v s at mid load; expected lock queueing beyond the 3ms work", gap)
	}
}
