package trade

import (
	"fmt"
	"sort"

	"perfpred/internal/sim"
	"perfpred/internal/stats"
	"perfpred/internal/workload"
)

// This file adds the operation-level view of the Trade benchmark
// (§3.1). The prediction methods work at the request-type granularity
// (browse/buy), but the workload itself is defined in terms of
// operations: browse clients randomly select among the application's
// read operations with Trade's representative probabilities, and buy
// clients run register/login → a run of buy operations → logoff, with
// the client's portfolio growing by one holding per buy. The paper
// calibrates the buy class at a mean portfolio size of 5.5 — the mean
// of 1..10 holdings over a 10-buy session — and names portfolio size
// as a canonical "hard to measure" variable worth persisting in a
// recalibration service (§2).

// Operation is one interface operation of the Trade application.
type Operation struct {
	// Name is the operation ("quote", "buy", ...).
	Name string
	// Type is the request type whose demand tables the operation
	// draws from.
	Type workload.RequestType
	// DemandScale multiplies the type's app-server demand for this
	// operation (1 = the type's mean).
	DemandScale float64
	// DBCalls overrides the type's mean database calls when > 0.
	DBCalls float64
	// Weight is the operation's relative selection probability within
	// its class mix.
	Weight float64
}

// BrowseOperations returns the browse class's operation mix, with
// weights shaped like Trade's representative browse behaviour and
// demand scales that average to exactly the browse request type's
// demand (so the coarse two-type model and the operation-level model
// agree in aggregate).
func BrowseOperations() []Operation {
	return []Operation{
		{Name: "home", Type: workload.Browse, DemandScale: 0.70, DBCalls: 1.0, Weight: 0.20},
		{Name: "quote", Type: workload.Browse, DemandScale: 0.80, DBCalls: 1.0, Weight: 0.40},
		{Name: "portfolio", Type: workload.Browse, DemandScale: 1.50, DBCalls: 1.4, Weight: 0.25},
		{Name: "account", Type: workload.Browse, DemandScale: 1.20, DBCalls: 1.2, Weight: 0.15},
	}
}

// BuySessionOperations returns the buy class's session operations.
// The buy operation's demand grows with the client's current
// portfolio size through PortfolioDemandSlope.
func BuySessionOperations() (register, buy, logoff Operation) {
	register = Operation{Name: "register-login", Type: workload.Buy, DemandScale: 0.85, DBCalls: 2, Weight: 0}
	buy = Operation{Name: "buy", Type: workload.Buy, DemandScale: 1.0, DBCalls: 2, Weight: 0}
	logoff = Operation{Name: "logoff", Type: workload.Buy, DemandScale: 0.45, DBCalls: 1, Weight: 0}
	return
}

// PortfolioDemandSlope is the fractional app-demand increase per
// holding in the portfolio: processing a buy touches every existing
// holding, so a client's n-th buy costs (1 + slope·(n−1)) times the
// base demand. The default keeps the session-average buy demand equal
// to the coarse model's at the mean portfolio size of 5.5.
const PortfolioDemandSlope = 0.04

// MeanPortfolioSize is the buy session's mean holdings count (§3.1).
const MeanPortfolioSize = 5.5

// portfolioScale returns the demand multiplier for a buy with n
// holdings already owned, normalised so a full 10-buy session averages
// to 1.0 (portfolio sizes 0..9 at purchase time, mean 4.5).
func portfolioScale(holdings int) float64 {
	base := 1 + PortfolioDemandSlope*float64(holdings)
	norm := 1 + PortfolioDemandSlope*4.5
	return base / norm
}

// OperationResult carries per-operation measurements from a detailed
// run.
type OperationResult struct {
	Operation string
	Completed int
	MeanRT    float64
}

// meanBrowseScale verifies at construction time that the browse mix's
// demand scales average to ~1; exposed for tests.
func meanBrowseScale() float64 {
	var wSum, sSum float64
	for _, op := range BrowseOperations() {
		wSum += op.Weight
		sSum += op.Weight * op.DemandScale
	}
	return sSum / wSum
}

// opAccumulators collects per-operation response times. It owns its
// reservoir stream and lazily creates one accumulator per operation
// name, deriving each from the operation's registration order — the
// hot-path record call needs no caller-supplied factory closure.
type opAccumulators struct {
	byName    map[string]*classAcc
	max       int
	rng       *sim.Stream
	streaming bool
	quants    []float64
}

func newOpAccumulators(max int, rng *sim.Stream, streaming bool, quants []float64) *opAccumulators {
	return &opAccumulators{byName: make(map[string]*classAcc), max: max, rng: rng, streaming: streaming, quants: quants}
}

func (o *opAccumulators) record(op string, rt float64) {
	acc, ok := o.byName[op]
	if !ok {
		acc = &classAcc{maxSample: o.max, rng: o.rng.Derive(uint64(len(o.byName)))}
		if o.streaming {
			acc.quant = stats.NewStreamingQuantiles(o.quants)
		}
		o.byName[op] = acc
	}
	acc.record(rt)
}

func (o *opAccumulators) results() []OperationResult {
	names := make([]string, 0, len(o.byName))
	for name := range o.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]OperationResult, 0, len(names))
	for _, name := range names {
		acc := o.byName[name]
		out = append(out, OperationResult{
			Operation: name,
			Completed: acc.rt.Count(),
			MeanRT:    acc.rt.Mean(),
		})
	}
	return out
}

// validateOperations sanity-checks an operation table.
func validateOperations(ops []Operation) error {
	if len(ops) == 0 {
		return fmt.Errorf("trade: empty operation table")
	}
	for _, op := range ops {
		if op.Name == "" {
			return fmt.Errorf("trade: unnamed operation")
		}
		if op.DemandScale <= 0 {
			return fmt.Errorf("trade: operation %q needs positive demand scale", op.Name)
		}
		if op.DBCalls < 0 || op.Weight < 0 {
			return fmt.Errorf("trade: operation %q has negative db calls or weight", op.Name)
		}
	}
	return nil
}
