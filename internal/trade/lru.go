package trade

import "container/list"

// lruCache is a byte-bounded least-recently-used cache over per-client
// session data (§7.2). It is a real cache, not a hit-rate formula: the
// simulator touches it on every request, so miss behaviour emerges
// from the interleaving of client requests exactly as it would in the
// application server's main memory.
type lruCache struct {
	capacity int64
	used     int64
	order    *list.List            // front = most recently used
	entries  map[int]*list.Element // client id -> element
	hits     uint64
	misses   uint64
	evicts   uint64
}

type lruEntry struct {
	client int
	bytes  int64
}

func newLRUCache(capacity int64) *lruCache {
	return &lruCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[int]*list.Element),
	}
}

// touch records an access to client's session of the given size. It
// returns true on a hit. On a miss the session is inserted, evicting
// least-recently-used sessions as needed; sessions larger than the
// whole cache are never admitted (every access misses).
func (c *lruCache) touch(client int, bytes int64) bool {
	if el, ok := c.entries[client]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return true
	}
	c.misses++
	if bytes > c.capacity {
		return false
	}
	for c.used+bytes > c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*lruEntry)
		c.order.Remove(back)
		delete(c.entries, ent.client)
		c.used -= ent.bytes
		c.evicts++
	}
	c.entries[client] = c.order.PushFront(&lruEntry{client: client, bytes: bytes})
	c.used += bytes
	return false
}

// missRate returns the observed miss fraction, or 0 before any access.
func (c *lruCache) missRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}

// resetStats zeroes hit/miss/eviction counters without touching
// contents, for warm-up handling.
func (c *lruCache) resetStats() {
	c.hits, c.misses, c.evicts = 0, 0, 0
}
