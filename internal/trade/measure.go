package trade

import (
	"context"
	"fmt"
	"math"

	"perfpred/internal/parallel"
	"perfpred/internal/workload"
)

// MeasureOptions tunes the benchmarking helpers. Zero values select
// defaults suitable for the case study.
type MeasureOptions struct {
	Seed     int64
	WarmUp   float64 // seconds, default 60 (the paper's 1-minute warm-up)
	Duration float64 // seconds, default 240

	// Workers bounds how many simulations sweep helpers like
	// MeasureCurve run concurrently. Every sweep cell owns its own
	// engine and seeded streams, so results are bit-identical for any
	// worker count; the knob only trades wall-clock for cores.
	// 0 selects runtime.GOMAXPROCS(0); 1 runs the exact serial loop.
	Workers int

	// TargetRelErr, when positive, switches every measurement to
	// adaptive run-length control (RunAdaptive): Duration becomes the
	// minimum window and the run extends in batches until the mean
	// response time's relative confidence-interval half-width drops
	// under the target. Zero keeps the fixed horizon — the default and
	// the golden-output path.
	TargetRelErr float64
	// Confidence is the adaptive stopping rule's confidence level
	// (0 selects 0.95). Ignored for fixed-horizon runs.
	Confidence float64
	// MaxDuration caps an adaptive run's measured window (0 selects
	// 8×Duration). Ignored for fixed-horizon runs.
	MaxDuration float64

	// StreamingPercentiles forwards Config.StreamingPercentiles:
	// constant-memory P² percentile estimators instead of sample
	// buffers.
	StreamingPercentiles bool
}

func (o MeasureOptions) withDefaults() MeasureOptions {
	if o.WarmUp == 0 {
		o.WarmUp = 60
	}
	if o.Duration == 0 {
		o.Duration = 240
	}
	return o
}

// baseConfig assembles a measurement run for the case-study database
// and demand tables.
func baseConfig(server workload.ServerArch, load workload.Workload, opt MeasureOptions) Config {
	opt = opt.withDefaults()
	return Config{
		Server:               server,
		DB:                   workload.CaseStudyDB(),
		Demands:              workload.CaseStudyDemands(),
		Load:                 load,
		Seed:                 opt.Seed,
		WarmUp:               opt.WarmUp,
		Duration:             opt.Duration,
		StreamingPercentiles: opt.StreamingPercentiles,
	}
}

// Measure runs one measurement of the given server under the given
// workload with case-study demands. A positive opt.TargetRelErr runs
// under adaptive run-length control; zero keeps the fixed horizon.
func Measure(server workload.ServerArch, load workload.Workload, opt MeasureOptions) (*Result, error) {
	cfg := baseConfig(server, load, opt)
	if opt.TargetRelErr > 0 {
		return RunAdaptive(cfg, RunControl{
			TargetRelErr: opt.TargetRelErr,
			Confidence:   opt.Confidence,
			MaxDuration:  opt.MaxDuration,
		})
	}
	return Run(cfg)
}

// MaxThroughput benchmarks the server's max throughput under the given
// workload shape — the paper's supporting service for calibrating new
// server architectures (§2). It loads the server far past saturation
// (about twice the saturation population) and reports the plateau
// throughput in requests/second.
func MaxThroughput(server workload.ServerArch, mixBuyFraction float64, opt MeasureOptions) (float64, error) {
	// Estimate the saturation population from the speed benchmark and
	// think time, then double it.
	think := workload.ThinkTimeMean
	estMax := server.Speed * workload.MaxThroughputF
	clients := int(2 * estMax * think)
	if clients < 50 {
		clients = 50
	}
	var load workload.Workload
	if mixBuyFraction <= 0 {
		load = workload.TypicalWorkload(clients)
	} else {
		load = workload.MixedWorkload(clients, mixBuyFraction)
	}
	res, err := Measure(server, load, opt)
	if err != nil {
		return 0, err
	}
	return res.Throughput, nil
}

// CurvePoint is one (clients, measurement) sample of a scalability
// curve.
type CurvePoint struct {
	Clients int
	Res     *Result
}

// MeasureCurve sweeps the client population and measures each point,
// producing the "measured" series of the paper's figure 2. Points run
// on opt.Workers concurrent simulations; each point is an independent
// run seeded identically to the serial path, so the curve is
// bit-identical for every worker count.
func MeasureCurve(server workload.ServerArch, clientCounts []int, buyFraction float64, opt MeasureOptions) ([]CurvePoint, error) {
	for _, n := range clientCounts {
		if n <= 0 {
			return nil, fmt.Errorf("trade: invalid client count %d", n)
		}
	}
	results, err := parallel.Map(context.Background(), opt.Workers, len(clientCounts),
		func(_ context.Context, i int) (*Result, error) {
			n := clientCounts[i]
			var load workload.Workload
			if buyFraction <= 0 {
				load = workload.TypicalWorkload(n)
			} else {
				load = workload.MixedWorkload(n, buyFraction)
			}
			return Measure(server, load, opt)
		})
	if err != nil {
		return nil, err
	}
	points := make([]CurvePoint, len(clientCounts))
	for i, res := range results {
		points[i] = CurvePoint{Clients: clientCounts[i], Res: res}
	}
	return points, nil
}

// SaturationClients estimates the client population at which the
// server reaches max throughput, from the benchmark and think time:
// N* ≈ Xmax × (Z + R₀) with R₀ the light-load response time. It is the
// population the historical method's lower/upper split keys on.
func SaturationClients(maxThroughput, thinkTime, lightLoadRT float64) int {
	return int(math.Ceil(maxThroughput * (thinkTime + lightLoadRT)))
}
