package trade

import (
	"math"
	"testing"

	"perfpred/internal/lqn"
	"perfpred/internal/workload"
)

func openConfig(rate float64, clients int) Config {
	load := workload.Workload{}
	if rate > 0 {
		load = append(load, workload.Population{Class: openClass(), ArrivalRate: rate})
	}
	if clients > 0 {
		load = append(load, workload.Population{Class: workload.BrowseClass(0), Clients: clients})
	}
	return Config{
		Server:   workload.AppServF(),
		DB:       workload.CaseStudyDB(),
		Demands:  workload.CaseStudyDemands(),
		Load:     load,
		Seed:     19,
		WarmUp:   40,
		Duration: 160,
	}
}

func openClass() workload.ServiceClass {
	return workload.ServiceClass{
		Name: "stream",
		Mix:  workload.Mix{workload.Browse: 1},
		// Think time is irrelevant for open streams but must validate.
		ThinkTimeMean: 0,
	}
}

func TestOpenWorkloadValidation(t *testing.T) {
	bad := workload.Workload{{Class: workload.BrowseClass(0), Clients: 5, ArrivalRate: 10}}
	if err := bad.Validate(); err == nil {
		t.Fatal("open+closed population should fail")
	}
	bad = workload.Workload{{Class: workload.BrowseClass(0), ArrivalRate: -1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative rate should fail")
	}
	if err := workload.OpenWorkload(openClass(), 50).Validate(); err != nil {
		t.Fatal(err)
	}
	empty := Config{
		Server: workload.AppServF(), DB: workload.CaseStudyDB(),
		Demands: workload.CaseStudyDemands(),
		Load:    workload.Workload{{Class: workload.BrowseClass(0)}},
		WarmUp:  1, Duration: 1,
	}
	if err := empty.Validate(); err == nil {
		t.Fatal("no clients and no streams should fail")
	}
}

func TestOpenStreamThroughputMatchesRate(t *testing.T) {
	res, err := Run(openConfig(80, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Throughput-80)/80 > 0.05 {
		t.Fatalf("open throughput = %v, want ≈80 (the arrival rate)", res.Throughput)
	}
	// At ρ = 80/186 ≈ 0.43 the mean RT is noticeably above the bare
	// demand but far below saturation levels.
	d := workload.CaseStudyDemands()[workload.Browse]
	if res.MeanRT < d.AppServerTime || res.MeanRT > 10*d.AppServerTime {
		t.Fatalf("open mean RT = %v", res.MeanRT)
	}
}

func TestOpenStreamMatchesLQNPrediction(t *testing.T) {
	// The mixed-network LQN solver should predict the simulator's open
	// response times: ρ = 120/186 ≈ 0.65, still stable.
	res, err := Run(openConfig(120, 0))
	if err != nil {
		t.Fatal(err)
	}
	pred, err := lqn.PredictTrade(workload.AppServF(), workload.CaseStudyDemands(),
		workload.OpenWorkload(openClass(), 120), lqn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := pred.Classes["stream"]
	if p.Throughput != 120 {
		t.Fatalf("LQN open throughput = %v", p.Throughput)
	}
	if math.Abs(p.ResponseTime-res.MeanRT)/res.MeanRT > 0.25 {
		t.Fatalf("LQN open RT %v vs measured %v", p.ResponseTime, res.MeanRT)
	}
}

func TestMixedOpenClosedWorkload(t *testing.T) {
	// Open load steals capacity from the closed clients: their RT rises
	// relative to a closed-only run.
	mixed, err := Run(openConfig(90, 600))
	if err != nil {
		t.Fatal(err)
	}
	closedOnly, err := Run(openConfig(0, 600))
	if err != nil {
		t.Fatal(err)
	}
	mixedBrowse := mixed.PerClass["browse"]
	baseBrowse := closedOnly.PerClass["browse"]
	if mixedBrowse.MeanRT <= baseBrowse.MeanRT {
		t.Fatalf("open load should slow closed clients: %v vs %v",
			mixedBrowse.MeanRT, baseBrowse.MeanRT)
	}
	if stream, ok := mixed.PerClass["stream"]; !ok || stream.Completed == 0 {
		t.Fatal("open stream produced no completions")
	}
	// LQN agrees on the direction for the closed class.
	pred, err := lqn.PredictTrade(workload.AppServF(), workload.CaseStudyDemands(),
		workload.Workload{
			{Class: openClass(), ArrivalRate: 90},
			{Class: workload.BrowseClass(0), Clients: 600},
		}, lqn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := lqn.PredictTrade(workload.AppServF(), workload.CaseStudyDemands(),
		workload.TypicalWorkload(600), lqn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Classes["browse"].ResponseTime <= base.Classes["browse"].ResponseTime {
		t.Fatal("LQN should predict open load slowing closed clients")
	}
}
