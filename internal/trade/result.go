package trade

import (
	"fmt"
	"sort"

	"perfpred/internal/stats"
)

// ClassResult holds one service class's measurements over the
// measurement window.
type ClassResult struct {
	Class string
	// Completed is the number of responses returned in the window.
	Completed int
	// MeanRT is the mean response time in seconds.
	MeanRT float64
	// RTStdDev is the response-time standard deviation in seconds.
	RTStdDev float64
	// Throughput is responses per second.
	Throughput float64
	// Samples are (possibly reservoir-sampled) response times for
	// percentile estimation, seconds. Nil when the run used streaming
	// percentiles (Config.StreamingPercentiles); read Quantiles then.
	Samples []float64
	// Quantiles holds the class's streaming P² quantile estimators when
	// the run used Config.StreamingPercentiles; nil otherwise.
	Quantiles *stats.StreamingQuantiles
}

// Percentile returns the class's p-th percentile response time
// (p in (0,100]) from the retained samples, or from the streaming
// estimators when the run kept no sample buffer.
func (c ClassResult) Percentile(p float64) float64 {
	if len(c.Samples) == 0 && c.Quantiles != nil {
		return c.Quantiles.Quantile(p / 100)
	}
	return stats.Percentile(c.Samples, p)
}

// ServerResult holds one application server's share of a tier
// measurement.
type ServerResult struct {
	// Name is the server architecture's name.
	Name string
	// Utilization is the server CPU's busy fraction.
	Utilization float64
	// MeanSlotsHeld is the time-average number of occupied threads.
	MeanSlotsHeld float64
	// Completed is the number of responses this server returned in the
	// window, and Throughput the corresponding rate.
	Completed  int
	Throughput float64
}

// Result is the outcome of one simulated measurement run.
type Result struct {
	// PerClass maps service-class name to its measurements.
	PerClass map[string]ClassResult
	// PerServer lists each application server's measurements, in tier
	// order (one entry for single-server runs).
	PerServer []ServerResult
	// PerOperation lists per-operation measurements when
	// DetailedOperations is enabled, sorted by operation name.
	PerOperation []OperationResult
	// MeanRT is the request-weighted mean response time across
	// classes, seconds.
	MeanRT float64
	// Throughput is total responses per second.
	Throughput float64
	// AppUtilization is the application server CPU's busy fraction.
	AppUtilization float64
	// DBUtilization is the database server CPU's busy fraction.
	DBUtilization float64
	// MeanAppSlotsHeld is the time-average number of occupied
	// application-server threads.
	MeanAppSlotsHeld float64
	// MeanAppQueue is the time-average number of requests waiting for
	// an application-server thread.
	MeanAppQueue float64
	// CacheMissRate is the observed session-cache miss fraction (0
	// when the cache variant is disabled).
	CacheMissRate float64
	// Duration is the measurement window in simulated seconds. Fixed
	// runs report Config.Duration; adaptive runs report the window the
	// stopping rule actually measured.
	Duration float64
	// OverallQuantiles holds cross-class streaming quantile estimators
	// when the run used Config.StreamingPercentiles; nil otherwise.
	OverallQuantiles *stats.StreamingQuantiles
	// EventsFired is the total number of simulation events executed
	// over the whole run (warm-up included; all shards in sharded
	// runs) — the denominator for events/sec benchmarking.
	EventsFired uint64
	// Converged, Batches and AchievedRelErr describe an adaptive run's
	// stopping state (RunAdaptive / MeasureOptions.TargetRelErr):
	// whether the relative confidence-interval half-width of the mean
	// response time reached the target, over how many batches, and the
	// half-width finally achieved. Zero-valued on fixed-horizon runs.
	Converged      bool
	Batches        int
	AchievedRelErr float64
}

// OverallPercentile returns the p-th percentile response time across
// all classes' retained samples, or from the cross-class streaming
// estimators when the run kept no sample buffers.
func (r *Result) OverallPercentile(p float64) float64 {
	var all []float64
	names := make([]string, 0, len(r.PerClass))
	for name := range r.PerClass {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		all = append(all, r.PerClass[name].Samples...)
	}
	if len(all) == 0 && r.OverallQuantiles != nil {
		return r.OverallQuantiles.Quantile(p / 100)
	}
	return stats.Percentile(all, p)
}

// String summarises the run for logs and CLI output.
func (r *Result) String() string {
	return fmt.Sprintf("meanRT=%.4fs X=%.1f/s appU=%.2f dbU=%.2f", r.MeanRT, r.Throughput, r.AppUtilization, r.DBUtilization)
}
