package trade

import (
	"errors"
	"fmt"

	"perfpred/internal/stats"
)

// RunControl tunes RunAdaptive's batch-means stopping rule. The zero
// value of every field but TargetRelErr selects a default derived from
// the Config.
type RunControl struct {
	// TargetRelErr is the requested relative confidence-interval
	// half-width of the mean response time: the run extends in batches
	// until t·s/(√n·mean) drops under it. Must be positive.
	TargetRelErr float64
	// Confidence is the interval's confidence level (0.90, 0.95 or
	// 0.99; 0 selects 0.95).
	Confidence float64
	// BatchLength is the simulated seconds per batch; 0 selects
	// Config.Duration/10, so the minimum adaptive run equals the fixed
	// horizon.
	BatchLength float64
	// MinBatches is the batch count required before the stopping rule
	// may fire (0 selects 10, a standard batch-means floor).
	MinBatches int
	// MaxDuration caps the total measured window in simulated seconds
	// (0 selects 8×Config.Duration). A run that hits the cap returns
	// with Converged=false rather than an error.
	MaxDuration float64
}

// RunAdaptive simulates the configured measurement under adaptive
// run-length control: after the usual warm-up, the measurement window
// grows one batch at a time and stops as soon as the batch-means
// confidence interval of the mean response time is relatively tighter
// than ctl.TargetRelErr — slightly loaded configurations stop early,
// saturated ones run longer, and every caller states precision instead
// of guessing a horizon. The result's Duration, per-class throughputs
// and stopping diagnostics (Converged, Batches, AchievedRelErr)
// reflect the window actually measured.
//
// The fixed-horizon Run is untouched by this path: RunAdaptive drives
// the same simulator, so a run whose stopping rule fires exactly at
// Config.Duration has made the identical event and draw sequence.
func RunAdaptive(cfg Config, ctl RunControl) (*Result, error) {
	if ctl.TargetRelErr <= 0 {
		return nil, errors.New("trade: adaptive run needs a positive target relative error")
	}
	if cfg.sharded() {
		return nil, errors.New("trade: adaptive runs are not supported on sharded configurations")
	}
	s, err := newSimulator(cfg, simOptions{})
	if err != nil {
		return nil, err
	}
	cfg = s.cfg // defaults applied
	conf := ctl.Confidence
	if conf == 0 {
		conf = 0.95
	}
	batch := ctl.BatchLength
	if batch <= 0 {
		batch = cfg.Duration / 10
	}
	minBatches := ctl.MinBatches
	if minBatches <= 0 {
		minBatches = 10
	}
	maxDur := ctl.MaxDuration
	if maxDur <= 0 {
		maxDur = 8 * cfg.Duration
	}
	if min := batch * float64(minBatches); maxDur < min {
		return nil, fmt.Errorf("trade: max duration %v cannot fit %d batches of %v", maxDur, minBatches, batch)
	}

	s.eng.Run(cfg.WarmUp, 0)
	s.resetStats()
	s.measuring = true

	var bm stats.BatchMeans
	var prevSum float64
	var prevCnt int
	elapsed := 0.0
	converged := false
	for elapsed < maxDur {
		elapsed += batch
		s.eng.Run(cfg.WarmUp+elapsed, 0)
		sum, cnt := s.measuredTotals()
		if cnt > prevCnt {
			bm.Add((sum - prevSum) / float64(cnt-prevCnt))
		}
		prevSum, prevCnt = sum, cnt
		if bm.Count() >= minBatches && bm.Converged(ctl.TargetRelErr, conf) {
			converged = true
			break
		}
	}
	s.measuredDur = elapsed
	res := s.collect()
	res.Converged = converged
	res.Batches = bm.Count()
	res.AchievedRelErr = bm.RelHalfWidth(conf)
	recordAdaptive(bm.Count(), converged)
	return res, nil
}
