package trade

import (
	"fmt"
	"math"

	"perfpred/internal/sim"
	"perfpred/internal/stats"
	"perfpred/internal/workload"
)

// This file is the sharded fleet model: Pools replicas of the
// configured network partitioned across Shards calendar-queue engines
// under a sim.Coordinator. Each pool is an ordinary simulator whose
// random streams are split from the run seed by stable pool index
// (sim.SplitSeed), owns all of its state, and — when RemoteFraction is
// enabled — forwards a fraction of client requests to sibling pools
// through the coordinator's conservative message exchange. Because no
// pool state is shared and every cross-pool interaction carries a
// mapping-invariant (time, pool, seq) key, the fleet's trajectory is
// identical at any shard count; shards only decide which engine a
// pool's events fire on.

// xreq is one cross-pool request in flight. It is owned by the ORIGIN
// pool: created and recycled there, with its continuations bound once
// at allocation so the steady-state remote path allocates nothing. The
// destination pool only reads its fields (demand, identity) and runs
// the request through an ordinary pooled reqState with xr set.
type xreq struct {
	s       *simulator // origin pool
	dst     *simulator
	c       *client
	acc     *classAcc
	cls     int // Config.Load index of the client's class (router key)
	d       workload.Demand
	arrival float64 // origin-pool issue time; rt includes both hops
	// homeShard is the origin's shard index, the Send destination for
	// the response hop.
	homeShard int

	next *xreq // free-list link

	arrive func() // bound once: runs on the destination shard
	ret    func() // bound once: runs back on the origin shard
}

// getXreq takes a cross-pool record from the origin's free list,
// binding continuations only on first allocation.
func (s *simulator) getXreq() *xreq {
	xr := s.xFree
	if xr != nil {
		s.xFree = xr.next
		xr.next = nil
		s.poolReuses++
		return xr
	}
	s.poolAllocs++
	xr = &xreq{s: s, homeShard: s.shard.ID()}
	xr.arrive = xr.doArrive
	xr.ret = xr.doReturn
	return xr
}

// putXreq retires a completed cross-pool record.
func (s *simulator) putXreq(xr *xreq) {
	xr.dst = nil
	xr.c = nil
	xr.acc = nil
	xr.next = s.xFree
	s.xFree = xr
}

// issueRemote forwards one client request to a uniformly chosen
// sibling pool — the RemoteFraction traffic model. The demand is drawn
// origin-side (on the origin's own streams, keeping every stream
// pool-local); the destination only executes it.
func (s *simulator) issueRemote(c *client) {
	idx := s.remote.Intn(len(s.pools) - 1)
	if idx >= int(s.poolID) {
		idx++
	}
	s.issueRemoteTo(c, idx)
}

// issueRemoteTo forwards one client request to pool idx. The hop delay
// equals the coordinator lookahead, so the send is always legal. Both
// the random RemoteFraction draw and the fleet router's per-request
// decisions funnel through here.
func (s *simulator) issueRemoteTo(c *client, idx int) {
	dst := s.pools[idx]
	d, _ := s.nextRequest(c)
	xr := s.getXreq()
	xr.dst = dst
	xr.c = c
	xr.acc = c.acc
	xr.cls = c.classIdx
	xr.d = d
	xr.arrival = s.eng.Now()
	s.sendSeq++
	s.shard.Send(dst.shard.ID(), s.poolID, s.sendSeq, s.xLatency, xr.arrive)
}

// doArrive runs on the destination shard when the request hop lands:
// the destination pool serves it like an open arrival — no session
// cache, no critical section, speed-weighted routing — on a pooled
// reqState carrying the xreq back-reference.
func (xr *xreq) doArrive() {
	d := xr.dst
	r := d.getReq()
	r.xr = xr
	r.cls = xr.cls
	r.d = xr.d
	r.arrival = d.eng.Now()
	r.srv = d.pickServerOpen()
	r.app = d.apps[r.srv]
	if d.router != nil {
		// Service-side accounting begins at hop arrival, on the serving
		// pool's shard — the router's threading contract.
		d.router.Started(int(d.poolID), xr.cls)
	}
	r.app.slots.Acquire(0, r.onSlot)
}

// doReturn runs back on the origin shard when the response hop lands:
// record the end-to-end response time (two hops plus remote service)
// and put the client back into its think loop.
func (xr *xreq) doReturn() {
	s := xr.s
	rt := s.eng.Now() - xr.arrival
	if s.measuring {
		xr.acc.record(rt)
	}
	c := xr.c
	s.eng.Schedule(s.thinkDelay(c), c.issue)
	s.putXreq(xr)
}

// shardedSim is a fleet of pool simulators under one coordinator.
type shardedSim struct {
	cfg   Config
	coord *sim.Coordinator
	pools []*simulator
}

// newShardedSim builds the coordinator, the per-pool simulators on
// their shard engines, and the cross-pool links.
func newShardedSim(cfg Config) (*shardedSim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nPools := cfg.effectivePools()
	nShards := cfg.effectiveShards()
	latency := cfg.ShardLatency
	if latency == 0 {
		latency = DefaultShardLatency
	}
	// With no cross-pool traffic and no barrier consumer the pools never
	// interact: an infinite lookahead collapses the run into one
	// barrier-free window. A router can send to any sibling at any time,
	// and a barrier hook needs barriers to fire on, so either forces the
	// conservative windowed mode.
	lookahead := math.Inf(1)
	if cfg.RemoteFraction > 0 || cfg.Router != nil || cfg.BarrierHook != nil {
		lookahead = latency
	}
	coord := sim.NewCoordinator(nShards, lookahead)
	if cfg.BarrierHook != nil {
		coord.SetBarrierHook(cfg.BarrierHook)
	}
	root := sim.NewStream(cfg.Seed)
	ss := &shardedSim{cfg: cfg, coord: coord, pools: make([]*simulator, nPools)}
	for i := 0; i < nPools; i++ {
		pcfg := cfg
		if len(cfg.PoolArchs) > 0 {
			// Heterogeneous fleet: the pool's single-server tier is its
			// assigned architecture.
			pcfg.Server = cfg.PoolArchs[i%len(cfg.PoolArchs)]
			pcfg.Servers = nil
		}
		p, err := newSimulator(pcfg, simOptions{
			shard:   coord.Shard(i % nShards),
			root:    root.Split(uint64(i)),
			poolID:  uint64(i),
			latency: latency,
		})
		if err != nil {
			coord.Close()
			return nil, err
		}
		ss.pools[i] = p
	}
	for _, p := range ss.pools {
		p.pools = ss.pools
	}
	return ss, nil
}

// ShardedRun is the stepped interface to a sharded fleet run: build
// once, advance the coordinator in caller-chosen strides, switch
// measurement on at the warm-up boundary, and collect the merged fleet
// result at the end. Run drives the whole lifecycle itself; the fleet
// layer (internal/fleet) steps the run so its barrier hook can replan
// in-loop while the caller still owns the clock.
type ShardedRun struct {
	ss     *shardedSim
	closed bool
}

// NewSharded builds a sharded fleet run without advancing it. The
// configuration must select the sharded model (Pools or Shards > 1).
func NewSharded(cfg Config) (*ShardedRun, error) {
	if !cfg.sharded() {
		return nil, fmt.Errorf("trade: NewSharded needs a sharded configuration (Pools or Shards > 1)")
	}
	ss, err := newShardedSim(cfg)
	if err != nil {
		return nil, err
	}
	return &ShardedRun{ss: ss}, nil
}

// Advance runs the fleet to simulated time until (monotone across
// calls) and returns the events fired by this stride.
func (r *ShardedRun) Advance(until float64) uint64 { return r.ss.coord.Run(until) }

// Now returns the fleet clock.
func (r *ShardedRun) Now() float64 { return r.ss.coord.Now() }

// BeginMeasurement discards everything observed so far and starts the
// measured window. Call it exactly once, at the configured WarmUp
// boundary: Collect divides by Config.Duration, so the measured window
// must span exactly that long.
func (r *ShardedRun) BeginMeasurement() {
	for _, p := range r.ss.pools {
		p.resetStats()
		p.measuring = true
	}
}

// Collect merges the fleet's measurements into one Result. The run can
// still be advanced afterwards, but the statistics keep accumulating.
func (r *ShardedRun) Collect() *Result { return r.ss.collect() }

// Close releases the coordinator's worker pool. The run must not be
// advanced afterwards. Safe to call twice.
func (r *ShardedRun) Close() {
	if !r.closed {
		r.closed = true
		r.ss.coord.Close()
	}
}

// runSharded is Run for sharded configurations: warm the whole fleet
// up, reset statistics at the barrier, measure, merge.
func runSharded(cfg Config) (*Result, error) {
	ss, err := newShardedSim(cfg)
	if err != nil {
		return nil, err
	}
	defer ss.coord.Close()
	ss.coord.Run(cfg.WarmUp)
	for _, p := range ss.pools {
		p.resetStats()
		p.measuring = true
	}
	ss.coord.Run(cfg.WarmUp + cfg.Duration)
	return ss.collect(), nil
}

// collect merges the pools' measurements into one fleet Result:
// Welford accumulators merge exactly, samples concatenate, utilisation
// is speed-weighted across every server in the fleet, and per-server
// rows are namespaced "p<pool>/". Pools are visited in index order so
// every floating-point reduction is deterministic.
func (ss *shardedSim) collect() *Result {
	dur := ss.cfg.Duration
	res := &Result{
		PerClass:    make(map[string]ClassResult),
		Duration:    dur,
		EventsFired: ss.coord.Fired(),
	}
	var speedSum, utilSum, heldSum, queueSum, dbUtilSum float64
	var hits, misses uint64
	for pi, p := range ss.pools {
		for _, app := range p.apps {
			u := app.cpu.Utilization()
			res.PerServer = append(res.PerServer, ServerResult{
				Name:          fmt.Sprintf("p%d/%s", pi, app.arch.Name),
				Utilization:   u,
				MeanSlotsHeld: app.slots.MeanHeld(),
				Completed:     int(app.completed),
				Throughput:    float64(app.completed) / dur,
			})
			speedSum += app.arch.Speed
			utilSum += u * app.arch.Speed
			heldSum += app.slots.MeanHeld()
			queueSum += app.slots.MeanQueued()
			if app.cache != nil {
				hits += app.cache.hits
				misses += app.cache.misses
			}
		}
		dbUtilSum += p.dbCPU.Utilization()
	}
	if speedSum > 0 {
		res.AppUtilization = utilSum / speedSum
	}
	res.MeanAppSlotsHeld = heldSum
	res.MeanAppQueue = queueSum
	res.DBUtilization = dbUtilSum / float64(len(ss.pools))
	if hits+misses > 0 {
		res.CacheMissRate = float64(misses) / float64(hits+misses)
	}
	// Classes: every pool registers the same class set, so merge by the
	// first pool's sorted names.
	var totalWeighted float64
	totalCompleted := 0
	for _, name := range ss.pools[0].classNames {
		var merged stats.Accumulator
		var samples []float64
		for _, p := range ss.pools {
			acc := p.acc[name]
			merged.Merge(&acc.rt)
			samples = append(samples, acc.samples...)
		}
		cr := ClassResult{
			Class:      name,
			Completed:  merged.Count(),
			MeanRT:     merged.Mean(),
			RTStdDev:   merged.StdDev(),
			Throughput: float64(merged.Count()) / dur,
			Samples:    samples,
		}
		res.PerClass[name] = cr
		totalWeighted += cr.MeanRT * float64(cr.Completed)
		totalCompleted += cr.Completed
	}
	if totalCompleted > 0 {
		res.MeanRT = totalWeighted / float64(totalCompleted)
	}
	res.Throughput = float64(totalCompleted) / dur
	for _, p := range ss.pools {
		var poolCompleted int
		for _, name := range p.classNames {
			poolCompleted += p.acc[name].rt.Count()
		}
		p.flushMetrics(poolCompleted)
	}
	return res
}
